package catalog

import (
	"fmt"
	"sort"
	"sync"
)

var registry = struct {
	mu   sync.RWMutex
	byID map[string]Spec
}{byID: make(map[string]Spec)}

// Register adds a spec to the catalog. Protocol packages call it from
// init; it panics on a structurally invalid spec or a duplicate ID — all
// programmer errors at link time, exactly like the experiment registry.
func Register(s Spec) {
	switch {
	case s.ID == "" || s.Title == "":
		panic("catalog: Register needs an ID and a Title")
	case s.Rounds == nil || s.New == nil:
		panic(fmt.Sprintf("catalog: %s registered without Rounds or New", s.ID))
	case s.Condition == "":
		panic(fmt.Sprintf("catalog: %s registered without a resilience condition", s.ID))
	case s.Model != Authenticated && s.Model != Unauthenticated && s.Model != CrashOnly:
		panic(fmt.Sprintf("catalog: %s registered with unknown model %q", s.ID, s.Model))
	}
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if _, dup := registry.byID[s.ID]; dup {
		panic(fmt.Sprintf("catalog: protocol %s registered twice", s.ID))
	}
	registry.byID[s.ID] = s
}

// Protocols returns every registered spec sorted by ID — a deterministic
// order independent of package-init sequencing, so listings and matrix
// grids are reproducible.
func Protocols() []Spec {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	out := make([]Spec, 0, len(registry.byID))
	for _, s := range registry.byID {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// IDs lists the registered protocol IDs in sorted order.
func IDs() []string {
	specs := Protocols()
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.ID
	}
	return out
}

// Lookup returns the spec registered under id.
func Lookup(id string) (Spec, bool) {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	s, ok := registry.byID[id]
	return s, ok
}

// Get returns the spec registered under id or the canonical
// unknown-protocol error naming the available IDs.
func Get(id string) (Spec, error) {
	s, ok := Lookup(id)
	if !ok {
		return Spec{}, fmt.Errorf("unknown protocol %q (have %v)", id, IDs())
	}
	return s, nil
}
