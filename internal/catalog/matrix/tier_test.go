package matrix_test

import (
	"encoding/json"
	"testing"

	"expensive/internal/adversary"
	"expensive/internal/catalog"
	_ "expensive/internal/catalog/all" // register every protocol
	"expensive/internal/catalog/matrix"
)

// supportedSize finds a grid size the spec's resilience predicate accepts.
func supportedSize(s catalog.Spec) (int, int, bool) {
	for _, size := range []matrix.Size{{N: 4, T: 1}, {N: 5, T: 1}, {N: 8, T: 2}, {N: 9, T: 2}} {
		if s.SupportedAt(size.N, size.T) {
			return size.N, size.T, true
		}
	}
	return 0, 0, false
}

// TestCampaignTierEquivalence sweeps every registered protocol under a
// seeded strategy sample at both recording tiers and asserts the
// CampaignReports are byte-identical: same decisions, round counts and
// message-complexity histograms, and — for the protocols the strategies
// break — violation replay reproducing the exact evidence (plan, witnesses,
// details) the full tier records.
func TestCampaignTierEquivalence(t *testing.T) {
	strategies := []adversary.Named{
		{ID: "targeted-withhold", Strategy: adversary.TargetedWithhold()},
		{ID: "random-omission", Strategy: adversary.RandomOmission(40)},
		{ID: "chaos", Strategy: adversary.Chaos()},
	}
	sawViolation := false
	for _, spec := range catalog.Protocols() {
		n, tf, ok := supportedSize(spec)
		if !ok {
			t.Errorf("%s: no supported size in the sample grid", spec.ID)
			continue
		}
		for _, strat := range strategies {
			t.Run(spec.ID+"/"+strat.ID, func(t *testing.T) {
				run := func(recordFull bool) *adversary.CampaignReport {
					c, err := matrix.CampaignFor(spec, catalog.DefaultParams(n, tf), strat.Strategy,
						adversary.SeedRange{From: 0, To: 12})
					if err != nil {
						t.Fatalf("campaign: %v", err)
					}
					c.RecordFull = recordFull
					c.Parallelism = 1
					rep, err := c.Run()
					if err != nil {
						t.Fatalf("run (full=%v): %v", recordFull, err)
					}
					return rep
				}
				full, lean := run(true), run(false)
				fj, err := json.Marshal(full)
				if err != nil {
					t.Fatal(err)
				}
				lj, err := json.Marshal(lean)
				if err != nil {
					t.Fatal(err)
				}
				if string(fj) != string(lj) {
					t.Fatalf("reports differ between tiers:\nfull: %s\nlean: %s", fj, lj)
				}
				if lean.Broken() {
					sawViolation = true
					for _, v := range lean.Violations {
						if v.Plan == nil && len(v.Proposals) == 0 {
							t.Fatalf("violation at seed %d carries no evidence", v.Seed)
						}
					}
				}
			})
		}
	}
	if !sawViolation {
		t.Fatal("no strategy broke any protocol — the violation-replay path was never exercised")
	}
}

// TestMatrixTierEquivalence runs the canonical small matrix with and
// without forced full recording and asserts byte-identical grids.
func TestMatrixTierEquivalence(t *testing.T) {
	lean := smallMatrix(1)
	g1, err := lean.Run()
	if err != nil {
		t.Fatal(err)
	}
	fullM := smallMatrix(1)
	fullM.RecordFull = true
	g2, err := fullM.Run()
	if err != nil {
		t.Fatal(err)
	}
	j1, err := json.Marshal(g1)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := json.Marshal(g2)
	if err != nil {
		t.Fatal(err)
	}
	if string(j1) != string(j2) {
		t.Fatalf("grids differ between tiers:\nlean: %s\nfull: %s", j1, j2)
	}
	if !g1.Broken() {
		t.Fatal("expected the small matrix to find the FloodSet split at both tiers")
	}
}
