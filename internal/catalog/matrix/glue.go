package matrix

import (
	"expensive/internal/adversary"
	"expensive/internal/adversary/fuzz"
	"expensive/internal/catalog"
	"expensive/internal/msg"
	"expensive/internal/sim"
	"expensive/internal/smr"
	"expensive/internal/transport"
)

// CampaignFor wires an adversarial hunt against a cataloged protocol: the
// factory, round bound, validity property and n-shrinking rebuild hook
// all come from the spec, so callers pick a protocol and a strategy and
// nothing else. Build validation applies — hunting a protocol outside its
// resilience condition is a typed error, not a doomed campaign.
func CampaignFor(s catalog.Spec, p catalog.Params, strategy adversary.Strategy, seeds adversary.SeedRange) (*adversary.Campaign, error) {
	factory, rounds, err := s.Build(p)
	if err != nil {
		return nil, err
	}
	return &adversary.Campaign{
		Protocol:  s.ID,
		Factory:   factory,
		Rounds:    rounds,
		N:         p.N,
		T:         p.T,
		Strategy:  strategy,
		Seeds:     seeds,
		Validity:  s.ValidityFor(p),
		Agreement: s.Agreement,
		New:       s.Rebuilder(p),
	}, nil
}

// FuzzerFor wires a coverage-guided adaptive hunt against a cataloged
// protocol: like CampaignFor, the factory, round bound, validity property
// and n-shrinking rebuild hook all come from the spec, so callers pick a
// protocol, a seed strategy and a probe budget and nothing else. Tune the
// returned fuzzer (Shrink, Corpus, StopOnViolation, Parallelism) before
// calling Run.
func FuzzerFor(s catalog.Spec, p catalog.Params, seed adversary.Strategy, budget int) (*fuzz.Fuzzer, error) {
	factory, rounds, err := s.Build(p)
	if err != nil {
		return nil, err
	}
	return &fuzz.Fuzzer{
		Protocol:  s.ID,
		Factory:   factory,
		Rounds:    rounds,
		N:         p.N,
		T:         p.T,
		Seed:      seed,
		Budget:    budget,
		Validity:  s.ValidityFor(p),
		Agreement: s.Agreement,
		New:       s.Rebuilder(p),
	}, nil
}

// ShrinkOptionsFor derives the shrink/recheck configuration for
// violations found against a cataloged protocol.
func ShrinkOptionsFor(s catalog.Spec, p catalog.Params) (adversary.ShrinkOptions, error) {
	factory, rounds, err := s.Build(p)
	if err != nil {
		return adversary.ShrinkOptions{}, err
	}
	return adversary.ShrinkOptions{
		Factory:   factory,
		Rounds:    rounds,
		N:         p.N,
		T:         p.T,
		New:       s.Rebuilder(p),
		Validity:  s.ValidityFor(p),
		Agreement: s.Agreement,
	}, nil
}

// LogFor builds a replicated log whose slots each run one instance of the
// cataloged protocol, constructed from the same validated parameters.
func LogFor(s catalog.Spec, p catalog.Params, noOp smr.Command) (*smr.Log, error) {
	factory, rounds, err := s.Build(p)
	if err != nil {
		return nil, err
	}
	protocol := func(int) (sim.Factory, int) { return factory, rounds }
	return smr.New(smr.Config{N: p.N, T: p.T, Protocol: protocol, NoOp: noOp})
}

// ClusterFor drives the cataloged protocol live over the given transport
// endpoints for its full round bound and returns per-node results.
func ClusterFor(s catalog.Spec, p catalog.Params, endpoints []transport.Endpoint, proposals []msg.Value) ([]transport.NodeResult, error) {
	factory, rounds, err := s.Build(p)
	if err != nil {
		return nil, err
	}
	c := transport.Cluster{N: p.N, Endpoints: endpoints, Factory: factory, Proposals: proposals, Rounds: rounds}
	return c.Run()
}
