package matrix_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"expensive/internal/adversary"
	"expensive/internal/catalog"
	_ "expensive/internal/catalog/all" // register every protocol
	"expensive/internal/catalog/matrix"
	"expensive/internal/msg"
	"expensive/internal/proc"
	"expensive/internal/transport/memnet"
)

// smallMatrix is the canonical test sweep: two breakable and one sound
// protocol, two strategies, two sizes — one of which excludes phase-king
// by resilience.
func smallMatrix(parallelism int) *matrix.Matrix {
	specs := []catalog.Spec{}
	for _, id := range []string{"floodset", "phase-king", "gradecast"} {
		s, ok := catalog.Lookup(id)
		if !ok {
			panic("missing " + id)
		}
		specs = append(specs, s)
	}
	tw, _ := adversary.FromLibrary("targeted-withhold", 0)
	ch, _ := adversary.FromLibrary("chaos", 0)
	return &matrix.Matrix{
		Protocols: specs,
		Strategies: []adversary.Named{
			{ID: "targeted-withhold", Strategy: tw},
			{ID: "chaos", Strategy: ch},
		},
		Sizes:       []matrix.Size{{N: 4, T: 1}, {N: 5, T: 1}},
		Seeds:       adversary.SeedRange{From: 0, To: 8},
		Parallelism: parallelism,
	}
}

// TestGridDeterminism is the parallelism contract: the JSON grid is
// byte-identical at parallelism 1 and NumCPU.
func TestGridDeterminism(t *testing.T) {
	encode := func(parallelism int) []byte {
		g, err := smallMatrix(parallelism).Run()
		if err != nil {
			t.Fatal(err)
		}
		out, err := json.MarshalIndent(g, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := encode(1)
	parallel := encode(8) // explicit width: exercises the pool even on one core
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("grids differ between parallelism levels:\nserial:\n%s\nparallel:\n%s", serial, parallel)
	}
}

// TestGridShape pins the cross-product: cell count, ordering, skipping by
// resilience, and the expected FloodSet violation.
func TestGridShape(t *testing.T) {
	g, err := smallMatrix(1).Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Cells) != 3*2*2 {
		t.Fatalf("grid has %d cells, want 12", len(g.Cells))
	}
	find := func(proto, strat string, n int) *matrix.Cell {
		for i := range g.Cells {
			c := &g.Cells[i]
			if c.Protocol == proto && c.Strategy == strat && c.N == n {
				return c
			}
		}
		t.Fatalf("cell %s × %s n=%d missing", proto, strat, n)
		return nil
	}
	// Phase-King at (4, 1) violates n > 4t: skipped, reason names the
	// condition, no probes counted.
	skipped := find("phase-king", "chaos", 4)
	if !skipped.Skipped || !strings.Contains(skipped.Reason, "n > 4t") || skipped.Probes != 0 {
		t.Fatalf("phase-king at n=4 should be skipped with the condition, got %+v", skipped)
	}
	// Phase-King at (5, 1) runs clean.
	sound := find("phase-king", "chaos", 5)
	if sound.Skipped || sound.Broken() || sound.Probes != 8 {
		t.Fatalf("phase-king at n=5 should run 8 clean probes, got %+v", sound)
	}
	// FloodSet splits under targeted withholding somewhere in the grid.
	broken := 0
	for i := range g.Cells {
		c := &g.Cells[i]
		if c.Protocol == "floodset" && c.Strategy == "targeted-withhold" && c.Broken() {
			broken++
			if len(c.Violations) == 0 {
				t.Fatalf("broken cell records no violation: %+v", c)
			}
		}
	}
	if broken == 0 {
		t.Fatal("targeted withholding never split FloodSet in the grid")
	}
	if g.ViolatingCells < broken || g.SkippedCells == 0 || !g.Broken() {
		t.Fatalf("summary inconsistent: %+v", g)
	}
}

// TestMatrixDefaultsCoverTheRegistry runs the zero-config matrix (tiny
// seed range) and checks every registered protocol and every library
// strategy appears.
func TestMatrixDefaultsCoverTheRegistry(t *testing.T) {
	m := &matrix.Matrix{
		Seeds: adversary.SeedRange{From: 0, To: 2},
		Sizes: []matrix.Size{{N: 4, T: 1}},
	}
	g, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Protocols) != len(catalog.Protocols()) {
		t.Fatalf("grid covers %d protocols, registry has %d", len(g.Protocols), len(catalog.Protocols()))
	}
	if len(g.Strategies) != len(adversary.Library(matrix.DefaultBias)) {
		t.Fatalf("grid covers %d strategies, library has %d", len(g.Strategies), len(adversary.Library(matrix.DefaultBias)))
	}
	if len(g.Cells) != len(g.Protocols)*len(g.Strategies) {
		t.Fatalf("cells %d, want %d", len(g.Cells), len(g.Protocols)*len(g.Strategies))
	}
}

// TestMatrixValidation rejects malformed sweeps.
func TestMatrixValidation(t *testing.T) {
	if _, err := (&matrix.Matrix{}).Run(); err == nil {
		t.Error("empty seed range accepted")
	}
	m := &matrix.Matrix{
		Seeds: adversary.SeedRange{From: 0, To: 1},
		Sizes: []matrix.Size{{N: 3, T: 0}},
	}
	if _, err := m.Run(); err == nil || !strings.Contains(err.Error(), "1 <= t < n") {
		t.Errorf("t=0 size accepted: %v", err)
	}
}

// TestMatrixSurfacesBadParams: a misconfigured Params hook must fail the
// sweep, not be silently recorded as skipped cells.
func TestMatrixSurfacesBadParams(t *testing.T) {
	spec, _ := catalog.Lookup("dolev-strong") // needs a scheme
	strat, _ := adversary.FromLibrary("chaos", 0)
	m := &matrix.Matrix{
		Protocols:  []catalog.Spec{spec},
		Strategies: []adversary.Named{{ID: "chaos", Strategy: strat}},
		Sizes:      []matrix.Size{{N: 4, T: 1}},
		Seeds:      adversary.SeedRange{From: 0, To: 1},
		Params:     func(n, t int) catalog.Params { return catalog.Params{N: n, T: t} },
	}
	_, err := m.Run()
	if !errors.Is(err, catalog.ErrBadParams) {
		t.Fatalf("err %v, want ErrBadParams surfaced (not a skipped cell)", err)
	}
}

// TestCampaignFor wires a catalog handle into a campaign: the FloodSet
// hunt finds the E10 split, the shrinker reduces it, and the certificate
// survives the catalog-derived recheck.
func TestCampaignFor(t *testing.T) {
	spec, ok := catalog.Lookup("floodset")
	if !ok {
		t.Fatal("floodset not registered")
	}
	params := catalog.DefaultParams(8, 2)
	strategy, _ := adversary.FromLibrary("targeted-withhold", 0)
	c, err := matrix.CampaignFor(spec, params, strategy, adversary.SeedRange{From: 0, To: 32})
	if err != nil {
		t.Fatal(err)
	}
	c.Shrink = true
	c.MaxViolations = 1
	c.Parallelism = 1
	rep, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Broken() {
		t.Fatal("targeted withholding should split FloodSet")
	}
	v := rep.Violations[0]
	if v.Shrunk == nil {
		t.Fatal("violation was not shrunk")
	}
	opts, err := matrix.ShrinkOptionsFor(spec, params)
	if err != nil {
		t.Fatal(err)
	}
	opts.Horizon = rep.Horizon
	if err := adversary.Recheck(v, opts); err != nil {
		t.Fatalf("recheck: %v", err)
	}
}

// TestCampaignForValidatesParams: hunting outside the resilience
// condition is a typed error.
func TestCampaignForValidatesParams(t *testing.T) {
	spec, _ := catalog.Lookup("phase-king")
	strategy, _ := adversary.FromLibrary("chaos", 0)
	_, err := matrix.CampaignFor(spec, catalog.DefaultParams(4, 1), strategy, adversary.SeedRange{From: 0, To: 1})
	if !errors.Is(err, catalog.ErrUnsupported) {
		t.Fatalf("err %v, want ErrUnsupported", err)
	}
}

// TestLogFor drives a replicated log off a catalog handle.
func TestLogFor(t *testing.T) {
	spec, _ := catalog.Lookup("phase-king")
	log, err := matrix.LogFor(spec, catalog.DefaultParams(5, 1), msg.Zero)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := log.Submit(proc.ID(i), msg.One); err != nil {
			t.Fatal(err)
		}
	}
	entry, err := log.CommitSlot()
	if err != nil {
		t.Fatal(err)
	}
	if entry.Command != msg.One {
		t.Fatalf("committed %q", entry.Command)
	}
}

// TestClusterFor drives a cataloged protocol over a live in-memory mesh.
func TestClusterFor(t *testing.T) {
	spec, _ := catalog.Lookup("weak-eig")
	params := catalog.DefaultParams(4, 1)
	proposals := []msg.Value{msg.One, msg.One, msg.One, msg.One}
	results, err := matrix.ClusterFor(spec, params, memnet.New(4, nil).Endpoints(), proposals)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if !r.Decided || r.Decision != msg.One {
			t.Fatalf("node %s: %+v", r.ID, r)
		}
	}
}
