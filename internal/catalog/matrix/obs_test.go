package matrix_test

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"expensive/internal/catalog/matrix"
	"expensive/internal/obs"
)

// TestGridTelemetryAndTimingDeterminism is the flight-recorder contract
// plus the satellite metrics applied to the matrix: the default grid is
// byte-identical with telemetry on or off at every parallelism level,
// violating cells carry the deterministic first_violation_probe metric,
// and the nondeterministic probes_per_sec block appears only behind the
// explicit Timing opt-in.
func TestGridTelemetryAndTimingDeterminism(t *testing.T) {
	encode := func(parallelism int, rec *obs.Recorder) []byte {
		m := smallMatrix(parallelism)
		m.Ctx = obs.Into(context.Background(), rec)
		g, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		out, err := json.MarshalIndent(g, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	baseline := encode(1, nil)
	rec := obs.New()
	var events bytes.Buffer
	rec.SetSink(obs.NewSink(&events))
	if got := encode(1, rec); !bytes.Equal(baseline, got) {
		t.Errorf("telemetry-on serial grid diverged from the telemetry-off baseline")
	}
	if got := encode(8, rec); !bytes.Equal(baseline, got) {
		t.Errorf("telemetry-on parallel grid diverged from the telemetry-off baseline")
	}

	// first_violation_probe: deterministic, per cell, only on violating
	// cells (omitempty keeps clean and skipped cells unchanged).
	var g matrix.Grid
	if err := json.Unmarshal(baseline, &g); err != nil {
		t.Fatal(err)
	}
	for _, c := range g.Cells {
		switch {
		case c.ViolationCount > 0 && (c.FirstViolationProbe < 1 || c.FirstViolationProbe > c.Probes):
			t.Errorf("cell %s×%s n=%d: first_violation_probe %d outside 1..%d",
				c.Protocol, c.Strategy, c.N, c.FirstViolationProbe, c.Probes)
		case c.ViolationCount == 0 && c.FirstViolationProbe != 0:
			t.Errorf("clean cell %s×%s n=%d carries first_violation_probe %d",
				c.Protocol, c.Strategy, c.N, c.FirstViolationProbe)
		}
	}
	if !bytes.Contains(baseline, []byte(`"first_violation_probe"`)) {
		t.Error("no cell carries first_violation_probe although the sweep breaks FloodSet")
	}
	if bytes.Contains(baseline, []byte(`"timing"`)) {
		t.Error("timing block present without the Timing opt-in")
	}

	// The matrix-level counters and cell events reached the recorder.
	cells := int64(len(g.Cells))
	if got := rec.Counter("matrix_cells").Value(); got != 2*cells {
		t.Errorf("matrix_cells = %d, want %d (2 instrumented runs)", got, 2*cells)
	}
	if got := rec.Counter("matrix_cells_violating").Value(); got == 0 {
		t.Error("matrix_cells_violating = 0 despite broken cells")
	}
	if got := rec.Counter("campaign_probes").Value(); got == 0 {
		t.Error("campaign_probes = 0: cell campaigns must aggregate into the shared recorder")
	}
	for _, want := range []string{`"name":"matrix-start"`, `"name":"matrix-cell"`, `"name":"matrix-end"`} {
		if !bytes.Contains(events.Bytes(), []byte(want)) {
			t.Errorf("trace sink missing %s events", want)
		}
	}

	// The Timing opt-in attaches probes_per_sec — and only that block
	// differs: nulling it out restores the deterministic baseline.
	m := smallMatrix(1)
	m.Timing = true
	timed, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if timed.Timing == nil || timed.Timing.Workers != timed.Workers {
		t.Fatalf("Timing opt-in produced no timing block: %+v", timed.Timing)
	}
	out, err := json.MarshalIndent(timed, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(out, []byte(`"probes_per_sec"`)) {
		t.Error("timed grid encoding carries no probes_per_sec")
	}
	timed.Timing = nil
	stripped, err := json.MarshalIndent(timed, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(baseline, stripped) {
		t.Error("timed grid differs from the baseline beyond the timing block")
	}
}
