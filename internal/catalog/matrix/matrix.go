// Package matrix is the registry-driven sweep engine on top of the
// protocol catalog: it fans the full protocol × strategy × (n, t)
// cross-product out over the experiment runner's worker pool, skipping
// cells outside a protocol's resilience condition, and emits a
// deterministic JSON grid report — byte-identical at every parallelism
// level, exactly like campaign reports and experiment tables. It also
// carries the campaign/SMR/cluster glue that wires catalog specs into
// the rest of the library.
package matrix

import (
	"context"
	"errors"
	"fmt"
	"time"

	"expensive/internal/adversary"
	"expensive/internal/catalog"
	"expensive/internal/experiments/runner"
	"expensive/internal/obs"
)

// DefaultBias is the omission percentage the default strategy library
// uses for its random-omission family.
const DefaultBias = 40

// Size is one (n, t) grid point.
type Size struct {
	N int `json:"n"`
	T int `json:"t"`
}

// DefaultSizes returns the canonical grid points: a size below every
// threshold family (4, 1), the smallest size admitting n > 4t protocols
// (5, 1), and a two-fault system (8, 2) that excludes the n > 4t and
// exact-Γ families — so a default grid always demonstrates resilience
// skipping.
func DefaultSizes() []Size { return []Size{{4, 1}, {5, 1}, {8, 2}} }

// Matrix sweeps protocols × strategies × sizes. The zero value plus a
// seed range is runnable: every unset field falls back to the full
// registry, the full strategy library, and the default sizes.
type Matrix struct {
	// Protocols defaults to every registered spec in ID order.
	Protocols []catalog.Spec
	// Strategies defaults to adversary.Library(DefaultBias).
	Strategies []adversary.Named
	// Sizes defaults to DefaultSizes(); every entry needs n >= 2 and
	// 1 <= t < n.
	Sizes []Size
	// Seeds is the per-cell seed range (required, non-empty).
	Seeds adversary.SeedRange
	// Params builds the cell construction parameters at (n, t); default
	// catalog.DefaultParams, which is what keeps grids reproducible.
	Params func(n, t int) catalog.Params
	// MaxViolations caps the violations recorded per cell (0 = 1; every
	// violating seed is still counted).
	MaxViolations int
	// Shrink minimizes recorded violations. Off by default: a matrix is a
	// breadth instrument; re-hunt one cell with `baexp hunt -shrink` for
	// depth.
	Shrink bool
	// RecordFull forces every cell's campaign to record full traces and
	// validate every probe (adversary.Campaign.RecordFull). Off by
	// default: cells probe at the lean sim.RecordDecisions tier and replay
	// only violating seeds at full — grids are byte-identical either way.
	RecordFull bool
	// Parallelism is the cell worker count; <= 0 means NumCPU, 1 serial.
	// Cells are the parallel unit — each cell's campaign runs serially —
	// so the grid is byte-identical at every level.
	Parallelism int
	// Timing attaches a wall-clock block (probes_per_sec and friends) to
	// the grid's JSON encoding. Off by default, and deliberately so: the
	// block varies run to run, so grids stop being byte-comparable the
	// moment it is on. Everything else in the encoding stays deterministic
	// either way.
	Timing bool
	// Ctx cancels the sweep; nil means context.Background().
	Ctx context.Context
}

// Cell is one grid entry: a protocol under a strategy at a size. Skipped
// cells carry the resilience condition that excluded them; run cells
// carry the campaign's deterministic statistics.
type Cell struct {
	Protocol string `json:"protocol"`
	Strategy string `json:"strategy"`
	N        int    `json:"n"`
	T        int    `json:"t"`
	// Skipped marks an (n, t) outside the protocol's resilience condition
	// (or a builder refusal); Reason says why.
	Skipped bool   `json:"skipped,omitempty"`
	Reason  string `json:"reason,omitempty"`
	// Probes counts executed seeds; ViolationCount the violating ones.
	Probes         int `json:"probes,omitempty"`
	ViolationCount int `json:"violation_count,omitempty"`
	// FirstViolationProbe is the 1-based index of the cell's first
	// violating probe in seed order, 0 (omitted) when the cell stayed
	// clean — the same probes-to-first-violation metric campaign and fuzz
	// reports carry, and just as deterministic.
	FirstViolationProbe int `json:"first_violation_probe,omitempty"`
	// Violations records up to MaxViolations violations in seed order.
	Violations []*adversary.Violation `json:"violations,omitempty"`
	// Messages and Rounds are the campaign's exact-value histograms.
	Messages adversary.Histogram `json:"messages"`
	Rounds   adversary.Histogram `json:"rounds"`
}

// Broken reports whether the cell found at least one violation.
func (c *Cell) Broken() bool { return c.ViolationCount > 0 }

// Grid is the deterministic matrix report: everything in the JSON
// encoding depends only on the matrix inputs, never on scheduling.
// Wall-clock statistics ride alongside, excluded from the encoding.
type Grid struct {
	Protocols  []string            `json:"protocols"`
	Strategies []string            `json:"strategies"`
	Sizes      []Size              `json:"sizes"`
	Seeds      adversary.SeedRange `json:"seeds"`
	// Cells holds one entry per (protocol, strategy, size), protocol-major
	// in the order of the Protocols/Strategies/Sizes headers.
	Cells []Cell `json:"cells"`
	// Probes totals the executed probes; SkippedCells and ViolatingCells
	// summarize the grid.
	Probes         int `json:"probes"`
	SkippedCells   int `json:"skipped_cells"`
	ViolatingCells int `json:"violating_cells"`
	// Timing is the opt-in wall-clock block (Matrix.Timing / `baexp matrix
	// -timing`). Nil — and absent from the encoding — by default, because
	// its values are intentionally nondeterministic: two runs of the same
	// matrix produce different timing blocks, so byte-comparing grids
	// requires leaving it off.
	Timing *GridTiming `json:"timing,omitempty"`

	// Timing statistics (always carried; excluded from the JSON encoding).
	Wall         time.Duration `json:"-"`
	WallMS       float64       `json:"-"`
	ProbesPerSec float64       `json:"-"`
	Workers      int           `json:"-"`
}

// GridTiming is the grid's opt-in wall-clock summary.
type GridTiming struct {
	WallMS       float64 `json:"wall_ms"`
	ProbesPerSec float64 `json:"probes_per_sec"`
	Workers      int     `json:"workers"`
}

// Broken reports whether any cell found a violation.
func (g *Grid) Broken() bool { return g.ViolatingCells > 0 }

// withDefaults resolves the unset fields against the registry.
func (m *Matrix) withDefaults() (Matrix, error) {
	r := *m
	if r.Protocols == nil {
		r.Protocols = catalog.Protocols()
	}
	if r.Strategies == nil {
		r.Strategies = adversary.Library(DefaultBias)
	}
	if r.Sizes == nil {
		r.Sizes = DefaultSizes()
	}
	if r.Params == nil {
		r.Params = catalog.DefaultParams
	}
	if r.MaxViolations <= 0 {
		r.MaxViolations = 1
	}
	switch {
	case len(r.Protocols) == 0:
		return r, fmt.Errorf("matrix: no protocols registered")
	case len(r.Strategies) == 0:
		return r, fmt.Errorf("matrix: no strategies")
	case r.Seeds.Count() == 0:
		return r, fmt.Errorf("matrix: empty seed range [%d, %d)", r.Seeds.From, r.Seeds.To)
	}
	for _, s := range r.Sizes {
		if s.N < 2 || s.T < 1 || s.T >= s.N {
			return r, fmt.Errorf("matrix: size needs n >= 2 and 1 <= t < n, got n=%d t=%d", s.N, s.T)
		}
	}
	return r, nil
}

// Run executes the sweep on the worker pool and returns the grid. Errors
// indicate harness failures (an engine-invalid trace, a non-conformant
// machine), never protocol-property violations — those land in the cells.
func (m *Matrix) Run() (*Grid, error) {
	r, err := m.withDefaults()
	if err != nil {
		return nil, err
	}
	nCells := len(r.Protocols) * len(r.Strategies) * len(r.Sizes)
	workers := runner.Workers(r.Parallelism)
	sw := runner.StartWall()
	mo := matrixObsFrom(r.Ctx)
	if mo.sink != nil {
		mo.sink.Emit("matrix-start",
			"protocols", len(r.Protocols), "strategies", len(r.Strategies),
			"sizes", len(r.Sizes), "cells", nCells,
			"seeds", r.Seeds.Count(), "workers", workers)
	}

	opts := CellOptions{
		Params:        r.Params,
		MaxViolations: r.MaxViolations,
		Shrink:        r.Shrink,
		RecordFull:    r.RecordFull,
		Parallelism:   1, // cells are the parallel unit; see Matrix.Parallelism
		Ctx:           r.Ctx,
	}
	cells, err := runner.Map(r.Ctx, workers, nCells, func(i int) (Cell, error) {
		pi, si, zi := CellIndex(i, len(r.Strategies), len(r.Sizes))
		return ProbeCell(r.Protocols[pi], r.Strategies[si], r.Sizes[zi], r.Seeds, opts)
	})
	if err != nil {
		return nil, err
	}

	protocols := make([]string, len(r.Protocols))
	for i, s := range r.Protocols {
		protocols[i] = s.ID
	}
	strategies := make([]string, len(r.Strategies))
	for i, s := range r.Strategies {
		strategies[i] = s.ID
	}
	g := AssembleGrid(protocols, strategies, r.Sizes, r.Seeds, cells)
	g.Workers = workers
	g.Wall, g.WallMS, g.ProbesPerSec = sw.WallStats(g.Probes)
	if r.Timing {
		g.Timing = &GridTiming{WallMS: g.WallMS, ProbesPerSec: g.ProbesPerSec, Workers: g.Workers}
	}
	mo.cellsSkipped.Add(int64(g.SkippedCells))
	mo.cellsViolating.Add(int64(g.ViolatingCells))
	if mo.sink != nil {
		mo.sink.Emit("matrix-end",
			"cells", len(g.Cells), "skipped", g.SkippedCells,
			"violating", g.ViolatingCells, "probes", g.Probes)
	}
	return g, nil
}

// matrixObs bundles the sweep's telemetry handles, resolved once per Run
// from the recorder on the context. Zero value = telemetry off. Per-probe
// accounting comes from the cells' campaigns (which share the context);
// this layer only adds cell-granularity counters and events.
type matrixObs struct {
	cells          *obs.Counter // matrix_cells: cells executed (skips included)
	cellsSkipped   *obs.Counter // matrix_cells_skipped: resilience refusals
	cellsViolating *obs.Counter // matrix_cells_violating: cells with violations
	sink           *obs.Sink
}

func matrixObsFrom(ctx context.Context) matrixObs {
	rec := obs.From(ctx)
	if rec == nil {
		return matrixObs{}
	}
	return matrixObs{
		cells:          rec.Counter("matrix_cells"),
		cellsSkipped:   rec.Counter("matrix_cells_skipped"),
		cellsViolating: rec.Counter("matrix_cells_violating"),
		sink:           rec.Sink(),
	}
}

// CellIndex decomposes a linear cell index into (protocol, strategy,
// size) indices — size fastest, protocol-major, matching the order of
// Grid.Cells. It is the shared unit-numbering contract between Run and
// the distributed coordinator: both enumerate cells identically, which is
// what makes a sharded grid byte-identical to a local one.
func CellIndex(i, nStrategies, nSizes int) (pi, si, zi int) {
	zi = i % nSizes
	si = i / nSizes % nStrategies
	pi = i / nSizes / nStrategies
	return pi, si, zi
}

// CellOptions configures a single cell probe (ProbeCell). The zero value
// is usable: default params, one recorded violation, lean tier, serial.
type CellOptions struct {
	// Params builds the cell construction parameters at (n, t); nil means
	// catalog.DefaultParams.
	Params func(n, t int) catalog.Params
	// MaxViolations caps the violations recorded (<= 0 = 1).
	MaxViolations int
	// Shrink and RecordFull mirror the Matrix fields.
	Shrink     bool
	RecordFull bool
	// Parallelism is the campaign parallelism inside the cell. Matrix.Run
	// passes 1 (cells are its parallel unit); distributed workers probing
	// one cell at a time may fan the cell's seeds out instead.
	Parallelism int
	// Ctx carries cancellation and telemetry; nil means background.
	Ctx context.Context
}

// ProbeCell runs one (protocol, strategy, size) campaign — or skips it
// when the resilience predicate (or the builder itself) refuses the size.
// It is the single-cell unit of work shared by Run and the distributed
// worker; the cell depends only on its inputs, never on scheduling.
func ProbeCell(spec catalog.Spec, strat adversary.Named, size Size, seeds adversary.SeedRange, o CellOptions) (Cell, error) {
	mo := matrixObsFrom(o.Ctx)
	cell := Cell{Protocol: spec.ID, Strategy: strat.ID, N: size.N, T: size.T}
	mo.cells.Inc()
	if !spec.SupportedAt(size.N, size.T) {
		cell.Skipped = true
		cell.Reason = fmt.Sprintf("requires %s", spec.Condition)
		return cell, nil
	}
	params := o.Params
	if params == nil {
		params = catalog.DefaultParams
	}
	c, err := CampaignFor(spec, params(size.N, size.T), strat.Strategy, seeds)
	if err != nil {
		// Only a resilience refusal is a legitimate skip. Anything else —
		// a misconfigured Params hook (ErrBadParams), a derivation
		// declining a size its Supports predicate claimed — is a harness
		// failure: silently skipping it would report a clean grid over
		// cells that never ran.
		if errors.Is(err, catalog.ErrUnsupported) {
			cell.Skipped = true
			cell.Reason = err.Error()
			return cell, nil
		}
		return cell, fmt.Errorf("matrix cell %s × %s n=%d t=%d: %w", spec.ID, strat.ID, size.N, size.T, err)
	}
	c.Shrink = o.Shrink
	c.RecordFull = o.RecordFull
	c.MaxViolations = o.MaxViolations
	if c.MaxViolations <= 0 {
		c.MaxViolations = 1
	}
	c.Parallelism = o.Parallelism
	c.Ctx = o.Ctx
	rep, err := c.Run()
	if err != nil {
		return cell, fmt.Errorf("matrix cell %s × %s n=%d t=%d: %w", spec.ID, strat.ID, size.N, size.T, err)
	}
	cell.Probes = rep.Probes
	cell.ViolationCount = rep.ViolationCount
	cell.FirstViolationProbe = rep.FirstViolationProbe
	cell.Violations = rep.Violations
	cell.Messages = rep.Messages
	cell.Rounds = rep.RoundsHist
	if mo.sink != nil {
		mo.sink.Emit("matrix-cell",
			"protocol", cell.Protocol, "strategy", cell.Strategy,
			"n", cell.N, "t", cell.T,
			"probes", cell.Probes, "violations", cell.ViolationCount)
	}
	return cell, nil
}

// AssembleGrid folds a complete cell slice (protocol-major, size fastest
// — the CellIndex order) into the deterministic grid report. Run and the
// distributed coordinator share it, so a grid's bytes depend only on its
// cells, never on where they were probed.
func AssembleGrid(protocols, strategies []string, sizes []Size, seeds adversary.SeedRange, cells []Cell) *Grid {
	g := &Grid{
		Protocols:  protocols,
		Strategies: strategies,
		Sizes:      sizes,
		Seeds:      seeds,
		Cells:      cells,
	}
	for i := range cells {
		c := &cells[i]
		switch {
		case c.Skipped:
			g.SkippedCells++
		case c.Broken():
			g.ViolatingCells++
		}
		g.Probes += c.Probes
	}
	return g
}
