package catalog_test

import (
	"errors"
	"strings"
	"testing"

	"expensive/internal/catalog"
	_ "expensive/internal/catalog/all" // register every protocol
	"expensive/internal/msg"
	"expensive/internal/proc"
	"expensive/internal/sim"
)

// expectedIDs is the registry tripwire: adding a protocol package without
// registering it (or removing a registration) fails here. Keep it in sync
// with the register.go files — that is the point.
var expectedIDs = []string{
	"derived-strong",
	"derived-weak",
	"dolev-strong",
	"eig",
	"external",
	"floodset",
	"floodset-early",
	"gradecast",
	"ic",
	"phase-king",
	"weak-eig",
	"weak-ic",
	"weak-phase-king",
}

func TestRegistryCoversTheLibrary(t *testing.T) {
	got := catalog.IDs()
	if strings.Join(got, " ") != strings.Join(expectedIDs, " ") {
		t.Fatalf("registered protocols %v, want %v — register new protocols (or update the tripwire)", got, expectedIDs)
	}
	for _, id := range expectedIDs {
		if _, ok := catalog.Lookup(id); !ok {
			t.Errorf("Lookup(%q) failed", id)
		}
	}
}

// smallestSupported finds the least (n, t) with t >= 1 the spec admits —
// the size the completeness run uses.
func smallestSupported(s catalog.Spec) (int, int, bool) {
	for n := 2; n <= 9; n++ {
		for t := 1; t < n; t++ {
			if s.SupportedAt(n, t) {
				return n, t, true
			}
		}
	}
	return 0, 0, false
}

// TestEveryProtocolRunsFaultFree is the registry completeness gate: every
// registered spec must build at a small supported (n, t), run fault-free
// to its round bound, terminate, agree (under its own Agreement relation
// when it has one), satisfy its validity property, and decode its
// decision when it carries a decoder. A broken or mis-registered spec
// fails CI here.
func TestEveryProtocolRunsFaultFree(t *testing.T) {
	for _, spec := range catalog.Protocols() {
		spec := spec
		t.Run(spec.ID, func(t *testing.T) {
			n, tf, ok := smallestSupported(spec)
			if !ok {
				t.Fatalf("no supported (n, t) with n <= 9 — condition %q", spec.Condition)
			}
			params := catalog.DefaultParams(n, tf)
			factory, rounds, err := spec.Build(params)
			if err != nil {
				t.Fatalf("Build at supported n=%d t=%d: %v", n, tf, err)
			}
			if rounds <= 0 {
				t.Fatalf("round bound %d is not positive", rounds)
			}
			proposals := make([]msg.Value, n)
			for i := range proposals {
				proposals[i] = msg.Bit(i % 2)
			}
			cfg := sim.Config{N: n, T: tf, Proposals: proposals, MaxRounds: rounds + 1}
			e, err := sim.Run(cfg, factory, sim.NoFaults{})
			if err != nil {
				t.Fatal(err)
			}
			// Termination at the round bound, for every process.
			decisions := make([]msg.Value, n)
			for i := 0; i < n; i++ {
				d, ok := e.Decision(proc.ID(i))
				if !ok {
					t.Fatalf("process %d undecided after %d rounds", i, e.Rounds)
				}
				decisions[i] = d
			}
			// Agreement — strict, or the spec's own compatibility relation.
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					if spec.Agreement != nil {
						if err := spec.Agreement(decisions[i], decisions[j]); err != nil {
							t.Fatalf("decisions %q / %q incompatible: %v", decisions[i], decisions[j], err)
						}
					} else if decisions[i] != decisions[j] {
						t.Fatalf("processes %d and %d decided %q and %q", i, j, decisions[i], decisions[j])
					}
				}
			}
			// The spec's validity property on the fault-free outcome.
			if check := spec.ValidityFor(params); check != nil {
				for i := range decisions {
					if err := check(proposals, proc.Universe(n), decisions[i]); err != nil {
						t.Fatalf("validity: %v", err)
					}
					if spec.Agreement == nil {
						break // common decision; one check suffices
					}
				}
			}
			// The decoder must parse real decisions.
			if spec.Decode != nil {
				if _, err := spec.Decode(decisions[0]); err != nil {
					t.Fatalf("Decode(%q): %v", decisions[0], err)
				}
			}
		})
	}
}

// unsupportedSize finds a structurally valid (n, t) the spec's resilience
// predicate rejects, if any exists in the small grid.
func unsupportedSize(s catalog.Spec) (int, int, bool) {
	for n := 2; n <= 9; n++ {
		for t := 1; t < n; t++ {
			if !s.SupportedAt(n, t) {
				return n, t, true
			}
		}
	}
	return 0, 0, false
}

// TestBuildValidatesParams is the central-validation table: for every
// registered protocol, structurally invalid and unsupported parameter
// combinations must yield typed errors — never a silently misbehaving
// protocol.
func TestBuildValidatesParams(t *testing.T) {
	for _, spec := range catalog.Protocols() {
		spec := spec
		t.Run(spec.ID, func(t *testing.T) {
			n, tf, ok := smallestSupported(spec)
			if !ok {
				t.Fatalf("no supported size for %s", spec.ID)
			}
			good := catalog.DefaultParams(n, tf)

			bad := func(name string, p catalog.Params, sentinel error) {
				t.Helper()
				_, _, err := spec.Build(p)
				if err == nil {
					t.Errorf("%s: Build accepted invalid params %+v", name, p)
					return
				}
				if !errors.Is(err, sentinel) {
					t.Errorf("%s: error %v does not wrap %v", name, err, sentinel)
				}
				var pe *catalog.ParamsError
				if !errors.As(err, &pe) {
					t.Errorf("%s: error %v is not a *ParamsError", name, err)
				} else if pe.Protocol != spec.ID {
					t.Errorf("%s: error names protocol %q, want %q", name, pe.Protocol, spec.ID)
				}
			}

			p := good
			p.T = p.N // t >= n
			bad("t >= n", p, catalog.ErrBadParams)

			p = good
			p.N = 1
			p.T = 0
			bad("n < 2", p, catalog.ErrBadParams)

			p = good
			p.T = -1
			bad("t < 0", p, catalog.ErrBadParams)

			if un, ut, ok := unsupportedSize(spec); ok {
				q := catalog.DefaultParams(un, ut)
				_, _, err := spec.Build(q)
				if !errors.Is(err, catalog.ErrUnsupported) {
					t.Errorf("unsupported n=%d t=%d: error %v does not wrap ErrUnsupported", un, ut, err)
				}
				if err == nil || !strings.Contains(err.Error(), spec.Condition) {
					t.Errorf("unsupported-size error %v does not name the condition %q", err, spec.Condition)
				}
			}

			if spec.NeedsScheme {
				p = good
				p.Scheme = nil
				bad("missing scheme", p, catalog.ErrBadParams)
			}
			if spec.NeedsSender {
				p = good
				p.Sender = proc.ID(p.N)
				bad("sender outside Π", p, catalog.ErrBadParams)
			}
			if spec.NeedsDefault {
				p = good
				p.Default = ""
				bad("missing default", p, catalog.ErrBadParams)
			}

			// And the good params must build.
			if _, _, err := spec.Build(good); err != nil {
				t.Fatalf("Build(%+v): %v", good, err)
			}
		})
	}
}

// TestRebuilderRefusesUnsupportedSizes pins the shrinker contract: the
// rebuild hook returns an error (rather than a protocol) outside the
// resilience condition.
func TestRebuilderRefusesUnsupportedSizes(t *testing.T) {
	spec, ok := catalog.Lookup("phase-king")
	if !ok {
		t.Fatal("phase-king not registered")
	}
	rebuild := spec.Rebuilder(catalog.DefaultParams(5, 1))
	if _, _, err := rebuild(4, 1); !errors.Is(err, catalog.ErrUnsupported) {
		t.Fatalf("rebuild at n=4 t=1: err %v, want ErrUnsupported", err)
	}
	if _, _, err := rebuild(5, 1); err != nil {
		t.Fatalf("rebuild at supported size: %v", err)
	}
}

// TestGetNamesTheAvailableIDs pins the unknown-protocol diagnostics.
func TestGetNamesTheAvailableIDs(t *testing.T) {
	_, err := catalog.Get("nope")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "unknown protocol") || !strings.Contains(err.Error(), "floodset") {
		t.Fatalf("error %q should name the available IDs", err)
	}
	if _, err := catalog.Get("floodset"); err != nil {
		t.Fatal(err)
	}
}

// TestRegisterRejectsProgrammerErrors pins the init-time panics. Only
// specs that fail before insertion are exercised, so the global registry
// stays untouched.
func TestRegisterRejectsProgrammerErrors(t *testing.T) {
	mustPanic := func(name string, s catalog.Spec) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: Register did not panic", name)
			}
		}()
		catalog.Register(s)
	}
	valid := catalog.Spec{
		ID:        "floodset", // duplicate of a real registration
		Title:     "dup",
		Model:     catalog.CrashOnly,
		Condition: "t < n",
		Rounds:    func(n, t int) int { return t + 1 },
		New:       func(catalog.Params) (sim.Factory, error) { return nil, nil },
	}
	mustPanic("duplicate ID", valid)
	s := valid
	s.ID = ""
	mustPanic("empty ID", s)
	s = valid
	s.Rounds = nil
	mustPanic("missing Rounds", s)
	s = valid
	s.New = nil
	mustPanic("missing New", s)
	s = valid
	s.Condition = ""
	mustPanic("missing condition", s)
	s = valid
	s.Model = "quantum"
	mustPanic("unknown model", s)
}
