// Package catalog makes "a protocol" a first-class, introspectable value.
//
// The paper's whole argument is a quantified statement over *every*
// Byzantine agreement protocol; this package gives the repo the matching
// vocabulary. A Spec carries a protocol's identity, its model
// (authenticated / unauthenticated / crash), its resilience condition as
// both a predicate and a human-readable string, its decision-round bound,
// and a builder from one uniform parameter struct. Protocol packages
// self-register at init (see the register.go file of each package under
// internal/protocols, and internal/catalog/all for the aggregate import),
// so every consumer — the adversary campaigns, the matrix engine, the CLI
// listings — derives its protocol offerings from one registry instead of
// hand-maintained tables.
package catalog

import (
	"errors"
	"fmt"

	"expensive/internal/crypto/sig"
	"expensive/internal/msg"
	"expensive/internal/proc"
	"expensive/internal/sim"
	"expensive/internal/validity"
)

// Model classifies a protocol's fault and authentication setting — the
// taxonomy axis of the survey literature (authenticated algorithms need a
// signature scheme; crash-only algorithms are sound only below omission
// faults).
type Model string

const (
	// Authenticated protocols rely on a signature scheme (§5.1) and
	// typically tolerate any t < n.
	Authenticated Model = "authenticated"
	// Unauthenticated protocols are signature-free; the solvability
	// frontier is n > 3t (Theorem 4).
	Unauthenticated Model = "unauthenticated"
	// CrashOnly protocols are sound under crash faults but not under the
	// omission adversary the lower bound is proven against (E10).
	CrashOnly Model = "crash"
)

// Bottom is the canonical default decision value.
const Bottom = msg.Value("⊥")

// Params is the uniform construction input of every cataloged protocol.
// A spec declares which fields it consumes via NeedsScheme, NeedsSender
// and NeedsDefault; Build validates the declared requirements centrally.
type Params struct {
	// N and T fix the system: |Π| = n, at most t faulty.
	N, T int
	// Sender is the designated sender of broadcast-style protocols.
	Sender proc.ID
	// Scheme is the signature scheme of authenticated protocols.
	Scheme sig.Scheme
	// Default is the fallback decision (equivocating sender, invalid
	// proposals, silent broadcast instances).
	Default msg.Value
}

// Sentinel errors for Build failures; match with errors.Is.
var (
	// ErrUnsupported marks an (n, t) outside the protocol's resilience
	// condition.
	ErrUnsupported = errors.New("unsupported (n, t)")
	// ErrBadParams marks structurally invalid parameters (t >= n, missing
	// scheme or default, sender outside Π).
	ErrBadParams = errors.New("invalid parameters")
)

// ParamsError is the typed validation failure returned by Spec.Build and
// Spec.Validate: which protocol refused, which field, and why. It wraps
// ErrUnsupported or ErrBadParams for errors.Is dispatch.
type ParamsError struct {
	Protocol string
	Field    string // "n/t", "sender", "scheme" or "default"
	Reason   string
	Err      error
}

// Error implements error.
func (e *ParamsError) Error() string {
	return fmt.Sprintf("%s: %s", e.Protocol, e.Reason)
}

// Unwrap exposes the sentinel.
func (e *ParamsError) Unwrap() error { return e.Err }

// Spec is a first-class protocol: identity, taxonomy, requirements, round
// bound, and builder. Specs are immutable values; the zero Spec is
// invalid (Register rejects it).
type Spec struct {
	// ID is the registry key ("dolev-strong", "floodset", ...).
	ID string
	// Title is a one-line human description.
	Title string
	// Model is the protocol's fault/authentication setting.
	Model Model
	// Condition is the human-readable resilience condition ("t < n",
	// "n > 3t", "n > 4t").
	Condition string
	// Supports is the resilience predicate beyond the universal
	// 0 <= t < n, n >= 2; nil means no further constraint.
	Supports func(n, t int) bool
	// NeedsScheme, NeedsSender and NeedsDefault declare which Params
	// fields the builder consumes; Build validates them centrally.
	NeedsScheme, NeedsSender, NeedsDefault bool
	// Rounds is the decision-round bound at (n, t).
	Rounds func(n, t int) int
	// New is the raw builder. It does not re-check the resilience
	// condition — that is the legacy-lenient path behind the api.New*
	// shims, which historically constructed protocols at any (n, t).
	// Errors are reserved for constructions that are genuinely impossible
	// (e.g. an Algorithm 2 derivation refused by Theorem 4).
	New func(p Params) (sim.Factory, error)
	// Decode optionally renders a decision value human-readable (IC
	// vectors, gradecast (grade, value) pairs).
	Decode func(v msg.Value) (string, error)
	// Validity optionally supplies the protocol's validity property for
	// adversarial campaigns (sender validity needs the designated sender,
	// hence the Params argument).
	Validity func(p Params) validity.Check
	// Agreement optionally replaces strict equal-decision Agreement with a
	// pairwise compatibility relation in campaigns — graded broadcast
	// promises G2/G3, not identical outputs.
	Agreement validity.Compat
}

// SupportedAt reports whether the protocol's resilience condition admits
// (n, t). Matrix sweeps use it to mark unsupported cells skipped instead
// of constructing protocols outside their guarantees.
func (s Spec) SupportedAt(n, t int) bool {
	if n < 2 || t < 0 || t >= n {
		return false
	}
	return s.Supports == nil || s.Supports(n, t)
}

// Validate checks p against the spec's declared requirements and returns
// a typed *ParamsError (wrapping ErrBadParams or ErrUnsupported) on the
// first failure.
func (s Spec) Validate(p Params) error {
	bad := func(field, format string, args ...any) error {
		return &ParamsError{Protocol: s.ID, Field: field, Reason: fmt.Sprintf(format, args...), Err: ErrBadParams}
	}
	switch {
	case p.N < 2:
		return bad("n/t", "need n >= 2, got n=%d", p.N)
	case p.T < 0:
		return bad("n/t", "need t >= 0, got t=%d", p.T)
	case p.T >= p.N:
		return bad("n/t", "need t < n, got n=%d t=%d", p.N, p.T)
	}
	if !s.SupportedAt(p.N, p.T) {
		return &ParamsError{
			Protocol: s.ID,
			Field:    "n/t",
			Reason:   fmt.Sprintf("requires %s, got n=%d t=%d", s.Condition, p.N, p.T),
			Err:      ErrUnsupported,
		}
	}
	if s.NeedsScheme && p.Scheme == nil {
		return bad("scheme", "requires a signature scheme (%s model)", s.Model)
	}
	if s.NeedsSender && (p.Sender < 0 || int(p.Sender) >= p.N) {
		return bad("sender", "sender %s outside Π = {0..%d}", p.Sender, p.N-1)
	}
	if s.NeedsDefault && p.Default == "" {
		return bad("default", "requires a default decision value")
	}
	return nil
}

// Build validates p centrally and constructs the protocol, returning the
// honest-machine factory and its decision-round bound. This is the
// checked path every new consumer should use; invalid (n, t) combinations
// yield typed errors instead of protocols that silently misbehave.
func (s Spec) Build(p Params) (sim.Factory, int, error) {
	if err := s.Validate(p); err != nil {
		return nil, 0, err
	}
	f, err := s.New(p)
	if err != nil {
		return nil, 0, fmt.Errorf("%s: %w", s.ID, err)
	}
	return f, s.Rounds(p.N, p.T), nil
}

// ValidityFor resolves the campaign validity property at p (nil when the
// spec declares none: Termination and Agreement are still checked).
func (s Spec) ValidityFor(p Params) validity.Check {
	if s.Validity == nil {
		return nil
	}
	return s.Validity(p)
}

// Rebuilder returns the (n, t) -> protocol hook that campaigns and the
// shrinker use to reduce system size, holding p's auxiliary fields
// (sender, scheme, default) fixed. Sizes outside the resilience condition
// are refused with a typed error, which the shrinker treats as "don't go
// there".
func (s Spec) Rebuilder(p Params) func(n, t int) (sim.Factory, int, error) {
	return func(n, t int) (sim.Factory, int, error) {
		q := p
		q.N, q.T = n, t
		return s.Build(q)
	}
}

// DefaultParams returns the canonical parameters at (n, t): sender 0, the
// idealized deterministic signature scheme, and ⊥ as the default
// decision. Every registry-driven sweep (hunts, the matrix engine, the
// completeness tests) uses these unless overridden, which is what keeps
// grid reports reproducible across machines.
func DefaultParams(n, t int) Params {
	return Params{N: n, T: t, Sender: 0, Scheme: sig.NewIdeal("catalog"), Default: Bottom}
}
