// Package all links every built-in protocol registration into the
// importer: protocol packages self-register with the catalog at init, so
// a consumer that wants the full library (the CLI, the facade, the
// registry tests) blank-imports this package instead of naming each
// protocol package.
package all

import (
	_ "expensive/internal/protocols/dolevstrong"
	_ "expensive/internal/protocols/eig"
	_ "expensive/internal/protocols/external"
	_ "expensive/internal/protocols/floodset"
	_ "expensive/internal/protocols/gradecast"
	_ "expensive/internal/protocols/ic"
	_ "expensive/internal/protocols/phaseking"
	_ "expensive/internal/protocols/weak"
	_ "expensive/internal/solve"
)
