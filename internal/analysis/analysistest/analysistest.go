// Package analysistest runs balint analyzers over fixture workspaces,
// mirroring golang.org/x/tools/go/analysis/analysistest: a workspace is
// a GOPATH-style src tree (testdata/src/<importpath>/...), and fixture
// files mark expected findings with trailing comments of the form
//
//	// want "substring"
//	// want `substring` "another substring"
//
// Each quoted string must be a substring of the message of a distinct
// unsuppressed diagnostic reported on that line; lines without a want
// comment must report nothing. Suppressed diagnostics are invisible to
// want matching — a fixture line carrying //balint:allow plus no want
// asserts the suppression worked.
package analysistest

import (
	"fmt"
	"go/scanner"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"

	"expensive/internal/analysis"
)

// Run loads the workspace at dir (which must contain src/), runs the
// analyzers over the named packages (or all packages when pkgs is
// empty), and checks the diagnostics against the fixtures' want
// comments. It returns all diagnostics for extra assertions.
func Run(t *testing.T, dir string, analyzers []*analysis.Analyzer, pkgs ...string) []analysis.Diagnostic {
	t.Helper()
	src := filepath.Join(dir, "src")
	prog, err := analysis.LoadTree(src)
	if err != nil {
		t.Fatalf("load workspace %s: %v", src, err)
	}
	diags, err := analysis.Run(prog, analyzers, nil)
	if err != nil {
		t.Fatalf("run analyzers: %v", err)
	}

	inScope := func(pkgPath string) bool {
		if len(pkgs) == 0 {
			return true
		}
		for _, p := range pkgs {
			if p == pkgPath {
				return true
			}
		}
		return false
	}

	// Index unsuppressed diagnostics by file:line.
	type key struct {
		file string
		line int
	}
	got := map[key][]analysis.Diagnostic{}
	for _, d := range analysis.Unsuppressed(diags) {
		k := key{d.Pos.Filename, d.Pos.Line}
		got[k] = append(got[k], d)
	}

	// Collect want expectations from every in-scope fixture file.
	for _, pkg := range prog.Packages {
		if !inScope(pkg.Path) {
			continue
		}
		for _, file := range pkg.Files {
			name := prog.Fset.Position(file.Pos()).Filename
			wants, err := wantsOf(name)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			for line, expected := range wants {
				k := key{name, line}
				matchWants(t, k.file, line, expected, got[k])
				delete(got, k)
			}
		}
	}

	// Anything left on in-scope files is unexpected.
	var leftovers []analysis.Diagnostic
	for k, ds := range got {
		for _, pkg := range prog.Packages {
			if inScope(pkg.Path) && strings.HasPrefix(k.file, pkg.Dir+string(filepath.Separator)) {
				leftovers = append(leftovers, ds...)
			}
		}
	}
	sort.Slice(leftovers, func(i, j int) bool { return leftovers[i].String() < leftovers[j].String() })
	for _, d := range leftovers {
		t.Errorf("unexpected diagnostic: %s", d)
	}
	return diags
}

// matchWants checks that each expected substring matches a distinct
// diagnostic on the line.
func matchWants(t *testing.T, file string, line int, expected []string, ds []analysis.Diagnostic) {
	t.Helper()
	used := make([]bool, len(ds))
outer:
	for _, want := range expected {
		for i, d := range ds {
			if !used[i] && strings.Contains(d.Message, want) {
				used[i] = true
				continue outer
			}
		}
		t.Errorf("%s:%d: no diagnostic matching %q (got %v)", filepath.Base(file), line, want, messages(ds))
	}
	for i, d := range ds {
		if !used[i] {
			t.Errorf("%s:%d: unexpected diagnostic: %s: %s", filepath.Base(file), line, d.Analyzer, d.Message)
		}
	}
}

func messages(ds []analysis.Diagnostic) []string {
	out := make([]string, len(ds))
	for i, d := range ds {
		out[i] = d.Message
	}
	return out
}

// wantsOf scans one fixture file for // want comments, returning
// expected message substrings per line.
func wantsOf(filename string) (map[int][]string, error) {
	src, err := os.ReadFile(filename)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	f := fset.AddFile(filename, -1, len(src))
	var s scanner.Scanner
	s.Init(f, src, nil, scanner.ScanComments)
	wants := map[int][]string{}
	for {
		pos, tok, lit := s.Scan()
		if tok == token.EOF {
			break
		}
		if tok != token.COMMENT {
			continue
		}
		rest, ok := strings.CutPrefix(lit, "// want ")
		if !ok {
			continue
		}
		line := fset.Position(pos).Line
		parsed, err := parseWant(rest)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		wants[line] = append(wants[line], parsed...)
	}
	return wants, nil
}

// parseWant splits a want payload into its quoted strings. Both "..."
// and `...` quoting are accepted.
func parseWant(s string) ([]string, error) {
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			break
		}
		if s[0] != '"' && s[0] != '`' {
			return nil, fmt.Errorf("want expects quoted strings, got %q", s)
		}
		prefix, err := strconv.QuotedPrefix(s)
		if err != nil {
			return nil, fmt.Errorf("bad want string %q: %w", s, err)
		}
		unq, err := strconv.Unquote(prefix)
		if err != nil {
			return nil, fmt.Errorf("bad want string %q: %w", prefix, err)
		}
		out = append(out, unq)
		s = s[len(prefix):]
	}
	return out, nil
}
