// Fixture for the globalrand analyzer.
package a

import "math/rand"

// Draw uses the process-global generator: flagged.
func Draw() int {
	return rand.Intn(10) // want "process-global generator"
}

// Shuffle mixes a global call (flagged) and a threaded one (clean).
func Shuffle(r *rand.Rand, xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "process-global generator"
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

// Build constructs the threaded generator: the blessed pattern, clean.
func Build(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Seeded draws from a threaded generator: clean.
func Seeded(r *rand.Rand) int {
	return r.Intn(10)
}
