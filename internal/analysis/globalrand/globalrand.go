// Package globalrand implements the balint analyzer that flags the
// top-level math/rand convenience functions (rand.Intn, rand.Shuffle,
// ...). The global generator is shared, unseeded (or racily seeded) and
// invisible to the replay machinery; every random choice in this module
// must come from a threaded, explicitly seeded *rand.Rand so that a seed
// in a report or corpus replays the exact execution.
package globalrand

import (
	"go/ast"
	"go/types"

	"expensive/internal/analysis"
)

// Analyzer is the globalrand analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "globalrand",
	Doc: "flags top-level math/rand functions; thread a seeded *rand.Rand instead\n\n" +
		"The package-level math/rand generator is process-global, so its draws\n" +
		"depend on everything else that ran. Seed-replayability — the property\n" +
		"that a seed printed in a hunt report reproduces the violation — needs\n" +
		"every draw to come from an explicitly seeded *rand.Rand.",
	Run: run,
}

// constructors are the package-level math/rand functions that are fine:
// they build the threaded generator rather than draw from the global one.
var constructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

func run(pass *analysis.Pass) error {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.FuncObject(info, call.Fun)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			path := fn.Pkg().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // a method on *rand.Rand — the blessed pattern
			}
			if constructors[fn.Name()] {
				return true
			}
			pass.Reportf(call.Pos(),
				"%s.%s draws from the process-global generator: thread a seeded *rand.Rand instead",
				path, fn.Name())
			return true
		})
	}
	return nil
}
