package globalrand_test

import (
	"testing"

	"expensive/internal/analysis"
	"expensive/internal/analysis/analysistest"
	"expensive/internal/analysis/globalrand"
)

func TestGlobalrand(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{globalrand.Analyzer}, "a")
}
