// Package obstaint implements the balint analyzer that keeps telemetry
// a strict side channel: values derived from obs instruments or the
// wall-clock stopwatch — counter/gauge/histogram reads, recorder
// snapshots, timer stops, Stopwatch.Wall and everything wrapping it —
// must never flow into a JSON-encoded field of a report struct or into
// a json.Marshal argument inside the report-producing packages. The
// determinism oracle diffs reports byte-for-byte across parallelism and
// worker count; one telemetry-derived field on an encoded path breaks
// every campaign replay.
//
// Wall-clock stats that reports deliberately carry are excluded from
// encoding with json:"-" — those writes stay clean here because only
// encoded fields are sinks. The one sanctioned encoded sink is the
// matrix Grid.Timing block (the -timing opt-in), listed in sanctioned
// below; everything else needs a //balint:allow obstaint with a reason.
package obstaint

import (
	"go/ast"
	"go/types"
	"strings"

	"expensive/internal/analysis"
	"expensive/internal/analysis/taint"
)

// Analyzer is the obstaint analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "obstaint",
	Doc: "flags obs/stopwatch-derived values flowing into encoded report fields or json.Marshal\n\n" +
		"Telemetry is a side channel: counter/gauge/histogram reads and\n" +
		"stopwatch walls must not reach any JSON-encoded struct field or\n" +
		"marshal call in report-producing packages. Wall stats a report\n" +
		"carries must be json:\"-\"; Grid.Timing is the one sanctioned\n" +
		"encoded timing block.",
	Run: run,
}

// scopes are the report-producing package prefixes the sink rule covers.
// obs itself is out: its JSONL metrics stream is the sanctioned side
// channel. cmd is out: stderr rendering of telemetry is the point.
var scopes = []string{
	"expensive/internal/adversary",
	"expensive/internal/catalog/matrix",
	"expensive/internal/dist",
	"expensive/internal/experiments",
	"expensive/internal/lowerbound",
	"expensive/internal/omission",
	"expensive/internal/sim",
	"expensive/internal/smr",
	"expensive/internal/solve",
	"expensive/internal/transport",
}

// sources seed the taint engine: every read that turns an obs instrument
// or stopwatch into a plain value. Wrappers like Stopwatch.WallStats are
// caught by the engine's one-level summaries, not listed here.
var sources = map[string]bool{
	"(expensive/internal/experiments/runner.Stopwatch).Wall": true,
	"(*expensive/internal/obs.Counter).Value":                true,
	"(*expensive/internal/obs.Gauge).Value":                  true,
	"(*expensive/internal/obs.Histogram).Count":              true,
	"(*expensive/internal/obs.Histogram).Sum":                true,
	"(*expensive/internal/obs.Histogram).Quantile":           true,
	"(*expensive/internal/obs.Histogram).Buckets":            true,
	"(expensive/internal/obs.Timer).Stop":                    true,
	"(*expensive/internal/obs.Recorder).Uptime":              true,
	"(*expensive/internal/obs.Recorder).Snapshot":            true,
	"(*expensive/internal/obs.Sink).Events":                  true,
}

// sanctioned names the encoded sinks that may carry telemetry-derived
// values: the whole GridTiming struct (the matrix -timing block exists
// to hold wall stats, and byte-identity diffs strip it) and the Grid
// field wiring the block in. Keys are "pkgpath.Type" for a whole struct
// or "pkgpath.Type.Field" for one field.
var sanctioned = map[string]bool{
	"expensive/internal/catalog/matrix.GridTiming":  true,
	"expensive/internal/catalog/matrix.Grid.Timing": true,
}

// marshalFuncs are the encoder entry points whose arguments are sinks.
var marshalFuncs = map[string]bool{
	"encoding/json.Marshal":           true,
	"encoding/json.MarshalIndent":     true,
	"(*encoding/json.Encoder).Encode": true,
}

func inScope(path string) bool {
	for _, s := range scopes {
		if path == s || strings.HasPrefix(path, s+"/") {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path) {
		return nil
	}
	eng := taint.For(pass.Program, "obstaint", taint.Config{Sources: sources})
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			res := eng.Function(pass.Pkg, fd)
			checkBody(pass, info, fd.Body, res)
		}
	}
	return nil
}

func checkBody(pass *analysis.Pass, info *types.Info, body ast.Node, res *taint.Result) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			tuple := len(s.Lhs) > 1 && len(s.Rhs) == 1
			for i, lhs := range s.Lhs {
				rhs := s.Rhs[0]
				if !tuple {
					if i >= len(s.Rhs) {
						continue
					}
					rhs = s.Rhs[i]
				}
				if res.Tainted(rhs) {
					checkFieldWrite(pass, info, lhs)
				}
			}
		case *ast.CompositeLit:
			checkLiteral(pass, info, s, res)
		case *ast.CallExpr:
			fn := analysis.FuncObject(info, s.Fun)
			if fn == nil || !marshalFuncs[fn.FullName()] {
				return true
			}
			for _, arg := range s.Args {
				if res.Tainted(arg) {
					pass.Reportf(arg.Pos(),
						"telemetry-derived value marshaled into a report: obs reads and stopwatch walls are a side channel, keep them out of %s",
						fn.FullName())
				}
			}
		}
		return true
	})
}

// checkFieldWrite flags lhs when it is an encoded field of a struct and
// not a sanctioned sink.
func checkFieldWrite(pass *analysis.Pass, info *types.Info, lhs ast.Expr) {
	sel, ok := analysis.Unparen(lhs).(*ast.SelectorExpr)
	if !ok {
		return
	}
	v, ok := info.ObjectOf(sel.Sel).(*types.Var)
	if !ok || !v.IsField() {
		return
	}
	named, st := structOf(info.TypeOf(sel.X))
	if st == nil {
		return
	}
	idx := fieldIndex(st, sel.Sel.Name)
	if idx < 0 || !taint.EncodedField(st, idx) {
		return
	}
	if isSanctioned(named, sel.Sel.Name) {
		return
	}
	pass.Reportf(lhs.Pos(),
		"telemetry-derived value written to encoded field %s.%s: tag it json:\"-\" or route it through the sanctioned timing block",
		shortName(named), sel.Sel.Name)
}

// checkLiteral flags tainted values placed in encoded fields of a
// struct composite literal.
func checkLiteral(pass *analysis.Pass, info *types.Info, lit *ast.CompositeLit, res *taint.Result) {
	named, st := structOf(info.TypeOf(lit))
	if st == nil {
		return
	}
	for i, elt := range lit.Elts {
		v := elt
		idx := i
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			v = kv.Value
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			idx = fieldIndex(st, key.Name)
		}
		if idx < 0 || idx >= st.NumFields() || !taint.EncodedField(st, idx) {
			continue
		}
		if !res.Tainted(v) {
			continue
		}
		name := st.Field(idx).Name()
		if isSanctioned(named, name) {
			continue
		}
		pass.Reportf(v.Pos(),
			"telemetry-derived value written to encoded field %s.%s: tag it json:\"-\" or route it through the sanctioned timing block",
			shortName(named), name)
	}
}

// structOf unwraps pointers and names down to a struct underlying type.
func structOf(t types.Type) (*types.Named, *types.Struct) {
	if t == nil {
		return nil, nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	st, _ := t.Underlying().(*types.Struct)
	if st == nil {
		return nil, nil
	}
	return named, st
}

func fieldIndex(st *types.Struct, name string) int {
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == name {
			return i
		}
	}
	return -1
}

// typeName renders the fully qualified name (sanctioned keys use it);
// shortName is the last-path-element form used in messages.
func typeName(named *types.Named) string {
	if named == nil {
		return "struct"
	}
	if named.Obj().Pkg() != nil {
		return named.Obj().Pkg().Path() + "." + named.Obj().Name()
	}
	return named.Obj().Name()
}

func shortName(named *types.Named) string {
	full := typeName(named)
	if i := strings.LastIndex(full, "/"); i >= 0 {
		return full[i+1:]
	}
	return full
}

func isSanctioned(named *types.Named, field string) bool {
	tn := typeName(named)
	return sanctioned[tn] || sanctioned[tn+"."+field]
}
