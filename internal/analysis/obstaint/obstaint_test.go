package obstaint_test

import (
	"testing"

	"expensive/internal/analysis"
	"expensive/internal/analysis/analysistest"
	"expensive/internal/analysis/obstaint"
)

func TestObstaint(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{obstaint.Analyzer},
		"expensive/internal/catalog/matrix",
		"expensive/internal/experiments/flagged",
		"expensive/internal/experiments/runner",
		"expensive/internal/obs",
		"outside")
}
