// Fixture stub of the matrix grid proving the sanctioned sink: wiring
// wall stats into GridTiming and Grid.Timing produces no findings, and
// the json:"-" wall fields on Grid itself are not sinks at all.
package matrix

import (
	"time"

	"expensive/internal/experiments/runner"
)

type GridTiming struct {
	WallMS       float64 `json:"wall_ms"`
	ProbesPerSec float64 `json:"probes_per_sec"`
}

type Grid struct {
	Probes int           `json:"probes"`
	Wall   time.Duration `json:"-"`
	WallMS float64       `json:"-"`
	Timing *GridTiming   `json:"timing,omitempty"`
}

// Fill mirrors the real grid fold epilogue: json:"-" fields may carry
// wall stats, and Grid.Timing is the one sanctioned encoded block.
func Fill(g *Grid, withTiming bool) {
	sw := runner.StartWall()
	wall, wallMS, perSec := sw.WallStats(g.Probes)
	g.Wall = wall
	g.WallMS = wallMS
	if withTiming {
		g.Timing = &GridTiming{WallMS: wallMS, ProbesPerSec: perSec}
	}
}
