// Fixture with real violations: telemetry-derived values reaching
// encoded report fields and marshal calls.
package flagged

import (
	"encoding/json"

	"expensive/internal/experiments/runner"
	"expensive/internal/obs"
)

type Report struct {
	Probes int     `json:"probes"`
	WallMS float64 `json:"wall_ms"`
	Wall   float64 `json:"-"`
}

// Build leaks a stopwatch wall and a counter read into encoded fields;
// the json:"-" field stays clean.
func Build(c *obs.Counter) *Report {
	sw := runner.StartWall()
	wall := sw.Wall()
	r := &Report{
		WallMS: float64(wall) / 1e6, // want "encoded field flagged.Report.WallMS"
	}
	r.Wall = float64(wall)
	r.Probes = int(c.Value()) // want "encoded field flagged.Report.Probes"
	return r
}

// ViaStats leaks through the WallStats wrapper: only the one-level
// summary connects the dots.
func ViaStats() Report {
	sw := runner.StartWall()
	_, ms, _ := sw.WallStats(10)
	var r Report
	r.WallMS = ms // want "encoded field flagged.Report.WallMS"
	return r
}

// Dump marshals a histogram read directly.
func Dump(h *obs.Histogram) ([]byte, error) {
	p99 := h.Quantile(0.99)
	return json.Marshal(p99) // want "marshaled into a report"
}
