// Fixture stub of runner.Stopwatch. Wall is the configured source;
// WallStats is deliberately NOT listed as a source — the engine's
// one-level summary must catch it because its results derive from Wall.
package runner

import "time"

type Stopwatch struct {
	start time.Time
}

func StartWall() Stopwatch { return Stopwatch{start: time.Now()} }

func (s Stopwatch) Wall() time.Duration { return time.Since(s.start) }

func (s Stopwatch) WallStats(probes int) (wall time.Duration, wallMS, perSec float64) {
	wall = s.Wall()
	wallMS = float64(wall) / 1e6
	if wallMS > 0 {
		perSec = float64(probes) / (wallMS / 1e3)
	}
	return wall, wallMS, perSec
}
