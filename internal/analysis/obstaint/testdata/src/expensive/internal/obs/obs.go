// Fixture stub of the real obs instruments: the read methods are the
// obstaint sources.
package obs

type Counter struct{ v int64 }

func (c *Counter) Inc()         { c.v++ }
func (c *Counter) Value() int64 { return c.v }

type Histogram struct{ sum int64 }

func (h *Histogram) Observe(v int64)          { h.sum += v }
func (h *Histogram) Quantile(q float64) int64 { return h.sum }
