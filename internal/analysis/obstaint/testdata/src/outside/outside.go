// Fixture outside the scoped packages: the same leak shapes produce no
// findings because the sink rule only covers report-producing packages.
package outside

import "expensive/internal/experiments/runner"

type Report struct {
	WallMS float64 `json:"wall_ms"`
}

func Build() Report {
	sw := runner.StartWall()
	return Report{WallMS: float64(sw.Wall()) / 1e6}
}
