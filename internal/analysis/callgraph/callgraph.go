// Package callgraph builds the static over-approximate call graph the
// balint reachability analyzers (maporder, leantier) share. It is a
// class-hierarchy-style analysis over one whole-program type universe:
//
//   - direct calls and method calls add call edges;
//   - any other use of a function — a method value, assignment into a
//     function-typed field or variable, passing a callback — adds a
//     reference edge, so functions handed to runner pools or stored in
//     fold structs stay reachable from whoever took the reference;
//   - a call through an interface method adds edges to that method on
//     every concrete type in the program implementing the interface;
//   - function literals are flattened into their enclosing named
//     function (or the package's init context for package-level vars).
//
// Over-approximation is the right polarity here: the analyzers forbid
// things on report/probe paths, so spurious edges can only make the
// suite stricter, never let a real offender through.
package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"expensive/internal/analysis"
)

// Node is one function in the graph. Named functions and methods map to
// their *types.Func; each package's init context (init funcs plus
// package-level variable initializers) is a synthetic node.
type Node struct {
	// Func is nil for the synthetic package-init node.
	Func *types.Func
	// Pkg is the package the body lives in.
	Pkg *analysis.Package
	// Decl is the enclosing declaration: *ast.FuncDecl, or nil for the
	// init context.
	Decl *ast.FuncDecl
	// Callees are the outgoing edges (calls and references), deduplicated,
	// in deterministic order.
	Callees []*Node
	// GoSites are the `go` statements in the node's body, in source
	// order. Goroutines launched inside function literals are recorded on
	// the enclosing named function, like every other literal site.
	GoSites []GoSite
	// ChanOps are the channel send/receive/close sites in the node's
	// body, in source order.
	ChanOps []ChanOp
}

// GoSite is one `go` statement: who gets launched, and how.
type GoSite struct {
	// Stmt is the `go` statement itself.
	Stmt *ast.GoStmt
	// Target is the statically resolved callee, when the launched
	// expression is a named function or method; nil for dynamic calls and
	// literals.
	Target *types.Func
	// Lit is the launched function literal for `go func(){...}()` sites;
	// nil otherwise.
	Lit *ast.FuncLit
}

// OpKind classifies a channel operation site.
type OpKind int

// Channel operation kinds.
const (
	OpSend OpKind = iota
	OpRecv
	OpClose
)

// ChanOp is one channel operation site.
type ChanOp struct {
	Kind OpKind
	Pos  token.Pos
	// Done marks a receive wired to shutdown: a receive from ctx.Done()
	// (any method named Done) or from a channel whose name matches the
	// done/stop/quit/close idiom. Always false for sends and closes.
	Done bool
}

// Name renders the node for diagnostics: the types.Func FullName, or
// "<init:pkgpath>" for an init context.
func (n *Node) Name() string {
	if n.Func != nil {
		return n.Func.FullName()
	}
	return "<init:" + n.Pkg.Path + ">"
}

// Graph is the program-wide call graph.
type Graph struct {
	prog  *analysis.Program
	nodes map[*types.Func]*Node
	inits map[*analysis.Package]*Node
	// impls maps each interface method in the program to the concrete
	// methods that may stand behind it.
	impls map[*types.Func][]*types.Func
}

const cacheKey = "callgraph"

// Of returns the call graph of prog, building it on first use and
// caching it on the program.
func Of(prog *analysis.Program) *Graph {
	if g, ok := prog.Cache[cacheKey].(*Graph); ok {
		return g
	}
	g := build(prog)
	prog.Cache[cacheKey] = g
	return g
}

// Node returns the graph node of fn, or nil if fn has no body in the
// program (stdlib, interface methods).
func (g *Graph) Node(fn *types.Func) *Node { return g.nodes[fn] }

// InitNode returns the synthetic node covering pkg's init funcs and
// package-level variable initializers.
func (g *Graph) InitNode(pkg *analysis.Package) *Node { return g.inits[pkg] }

// Implementations returns the concrete program methods that may stand
// behind fn when fn is an interface method without a body, in
// deterministic order; nil for concrete functions. Dataflow analyzers
// use this to widen through interface calls the same way edge does.
func (g *Graph) Implementations(fn *types.Func) []*types.Func { return g.impls[fn] }

// Reachable walks the graph from roots and returns every node reachable
// from them, roots included. stop, if non-nil, prunes traversal: a node
// for which stop returns true is included but its callees are not
// followed (used by leantier, which must not dive through APIs that
// already reject lean traces at runtime).
func (g *Graph) Reachable(roots []*Node, stop func(*Node) bool) map[*Node]bool {
	seen := make(map[*Node]bool)
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil || seen[n] {
			return
		}
		seen[n] = true
		if stop != nil && stop(n) {
			return
		}
		for _, c := range n.Callees {
			walk(c)
		}
	}
	for _, r := range roots {
		walk(r)
	}
	return seen
}

func build(prog *analysis.Program) *Graph {
	g := &Graph{
		prog:  prog,
		nodes: map[*types.Func]*Node{},
		inits: map[*analysis.Package]*Node{},
	}

	// Pass 1: a node per declared function/method, plus one init node per
	// package; collect the program's concrete method sets for interface
	// dispatch resolution.
	var concrete []types.Type
	for _, pkg := range prog.Packages {
		g.inits[pkg] = &Node{Pkg: pkg}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			obj := scope.Lookup(name)
			if tn, ok := obj.(*types.TypeName); ok && !tn.IsAlias() {
				concrete = append(concrete, tn.Type())
			}
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				g.nodes[fn] = &Node{Func: fn, Pkg: pkg, Decl: fd}
			}
		}
	}
	g.impls = implementations(g, concrete)

	// Pass 2: edges. Function literals contribute to the node of the
	// function (or init context) whose declaration encloses them.
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					fn, _ := pkg.Info.Defs[d.Name].(*types.Func)
					if node := g.nodes[fn]; node != nil && d.Body != nil {
						g.addEdges(node, pkg, d.Body)
					}
				case *ast.GenDecl:
					// Package-level var initializers run at init time.
					for _, spec := range d.Specs {
						if vs, ok := spec.(*ast.ValueSpec); ok {
							for _, v := range vs.Values {
								g.addEdges(g.inits[pkg], pkg, v)
							}
						}
					}
				}
			}
		}
	}

	// init funcs fold into the init node: merge their callees.
	for _, pkg := range prog.Packages {
		initNode := g.inits[pkg]
		for fn, node := range g.nodes {
			if fn.Name() == "init" && fn.Pkg() == pkg.Types && fn.Type().(*types.Signature).Recv() == nil {
				initNode.Callees = append(initNode.Callees, node)
			}
		}
	}

	for _, n := range g.nodes {
		n.Callees = dedup(n.Callees)
	}
	for _, n := range g.inits {
		n.Callees = dedup(n.Callees)
	}
	return g
}

// addEdges scans one body (or initializer expression) and appends edges
// and go/channel sites to from.
func (g *Graph) addEdges(from *Node, pkg *analysis.Package, root ast.Node) {
	info := pkg.Info
	// Call expressions get call edges; every *other* use of a function
	// identifier gets a reference edge. Track the Fun idents of calls so
	// the generic ident walk below skips them.
	callFuns := map[*ast.Ident]bool{}
	ast.Inspect(root, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.GoStmt:
			site := GoSite{Stmt: s, Target: analysis.FuncObject(info, s.Call.Fun)}
			if lit, ok := analysis.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
				site.Lit = lit
			}
			from.GoSites = append(from.GoSites, site)
			return true
		case *ast.SendStmt:
			from.ChanOps = append(from.ChanOps, ChanOp{Kind: OpSend, Pos: s.Pos()})
			return true
		case *ast.UnaryExpr:
			if s.Op == token.ARROW {
				from.ChanOps = append(from.ChanOps, ChanOp{Kind: OpRecv, Pos: s.Pos(), Done: DoneChan(s.X)})
			}
			return true
		case *ast.RangeStmt:
			// Ranging over a channel receives until it closes.
			if t := info.TypeOf(s.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					from.ChanOps = append(from.ChanOps, ChanOp{Kind: OpRecv, Pos: s.X.Pos(), Done: DoneChan(s.X)})
				}
			}
			return true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := analysis.Unparen(call.Fun).(type) {
		case *ast.Ident:
			callFuns[fun] = true
			if b, ok := info.Uses[fun].(*types.Builtin); ok && b.Name() == "close" {
				from.ChanOps = append(from.ChanOps, ChanOp{Kind: OpClose, Pos: call.Pos()})
			}
		case *ast.SelectorExpr:
			callFuns[fun.Sel] = true
		}
		fn := analysis.FuncObject(info, call.Fun)
		if fn == nil {
			return true
		}
		g.edge(from, fn)
		return true
	})
	ast.Inspect(root, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || callFuns[id] {
			return true
		}
		if fn, ok := info.Uses[id].(*types.Func); ok {
			// Method value, callback argument, function-typed field or
			// variable assignment: a reference edge.
			g.edge(from, fn)
		}
		return true
	})
}

// edge records from → fn, expanding interface methods to their concrete
// implementations.
func (g *Graph) edge(from *Node, fn *types.Func) {
	if to := g.nodes[fn]; to != nil {
		from.Callees = append(from.Callees, to)
		return
	}
	// No body in the program: either stdlib (ignore — the analyzers only
	// reason about module code) or an interface method — expand it.
	for _, impl := range g.impls[fn] {
		if to := g.nodes[impl]; to != nil {
			from.Callees = append(from.Callees, to)
		}
	}
}

// implementations maps every interface method used in the program to the
// concrete methods of program types that satisfy it.
func implementations(g *Graph, concrete []types.Type) map[*types.Func][]*types.Func {
	// Collect the interfaces declared anywhere in the program.
	var ifaces []*types.Interface
	for _, pkg := range g.prog.Packages {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			if iface, ok := tn.Type().Underlying().(*types.Interface); ok && iface.NumMethods() > 0 {
				ifaces = append(ifaces, iface)
			}
		}
	}
	out := map[*types.Func][]*types.Func{}
	for _, iface := range ifaces {
		for _, t := range concrete {
			for _, typ := range []types.Type{t, types.NewPointer(t)} {
				if types.IsInterface(typ.Underlying()) || !types.Implements(typ, iface) {
					continue
				}
				ms := types.NewMethodSet(typ)
				for i := 0; i < iface.NumMethods(); i++ {
					im := iface.Method(i)
					sel := ms.Lookup(im.Pkg(), im.Name())
					if sel == nil {
						continue
					}
					if cm, ok := sel.Obj().(*types.Func); ok {
						out[im] = append(out[im], cm)
					}
				}
			}
		}
	}
	for im := range out {
		out[im] = dedupFuncs(out[im])
	}
	return out
}

// DoneChan reports whether e, the operand of a channel receive, is a
// shutdown channel by idiom: the result of calling a method named Done
// (context.Context and everything shaped like it), or a channel whose
// root identifier / selected field name contains done, stop, quit or
// clos (close/closed/closing). Name-based on purpose — the repo's
// shutdown channels (stopHB, stopCh, p.stop, m.done, m.epDone, waited
// aside) follow the idiom, and goleak's verdicts must be explainable
// from the source line alone.
func DoneChan(e ast.Expr) bool {
	switch x := analysis.Unparen(e).(type) {
	case *ast.CallExpr:
		if sel, ok := analysis.Unparen(x.Fun).(*ast.SelectorExpr); ok {
			return sel.Sel.Name == "Done"
		}
	case *ast.Ident:
		return doneName(x.Name)
	case *ast.SelectorExpr:
		return doneName(x.Sel.Name)
	case *ast.IndexExpr:
		return DoneChan(x.X)
	}
	return false
}

func doneName(name string) bool {
	n := strings.ToLower(name)
	return strings.Contains(n, "done") || strings.Contains(n, "stop") ||
		strings.Contains(n, "quit") || strings.Contains(n, "clos")
}

func dedup(nodes []*Node) []*Node {
	seen := make(map[*Node]bool, len(nodes))
	out := nodes[:0]
	for _, n := range nodes {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

func dedupFuncs(fns []*types.Func) []*types.Func {
	seen := make(map[*types.Func]bool, len(fns))
	out := fns[:0]
	for _, f := range fns {
		if !seen[f] {
			seen[f] = true
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].FullName() < out[j].FullName() })
	return out
}
