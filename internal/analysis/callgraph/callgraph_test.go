package callgraph_test

import (
	"go/types"
	"testing"

	"expensive/internal/analysis"
	"expensive/internal/analysis/callgraph"
)

func loadCG(t *testing.T) (*callgraph.Graph, *analysis.Package) {
	t.Helper()
	prog, err := analysis.LoadTree("testdata/src")
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	pkg := prog.Package("cg")
	if pkg == nil {
		t.Fatal("fixture package cg not loaded")
	}
	return callgraph.Of(prog), pkg
}

func funcOf(t *testing.T, pkg *analysis.Package, name string) *types.Func {
	t.Helper()
	fn, _ := pkg.Types.Scope().Lookup(name).(*types.Func)
	if fn == nil {
		t.Fatalf("function %s not found in cg", name)
	}
	return fn
}

func methodOf(t *testing.T, pkg *analysis.Package, typeName, method string) *types.Func {
	t.Helper()
	tn, _ := pkg.Types.Scope().Lookup(typeName).(*types.TypeName)
	if tn == nil {
		t.Fatalf("type %s not found in cg", typeName)
	}
	named, _ := tn.Type().(*types.Named)
	for i := 0; i < named.NumMethods(); i++ {
		if m := named.Method(i); m.Name() == method {
			return m
		}
	}
	t.Fatalf("method %s.%s not found", typeName, method)
	return nil
}

func calleeNames(n *callgraph.Node) map[string]bool {
	out := map[string]bool{}
	for _, c := range n.Callees {
		out[c.Name()] = true
	}
	return out
}

// TestEdgeKinds checks that Use gains edges for a method value, a
// function stored into a function-typed field, and an interface call
// expanded to its concrete implementation — none of which are direct
// calls.
func TestEdgeKinds(t *testing.T) {
	g, pkg := loadCG(t)
	use := g.Node(funcOf(t, pkg, "Use"))
	if use == nil {
		t.Fatal("no node for cg.Use")
	}
	names := calleeNames(use)
	for _, want := range []string{
		"cg.target",     // via Pool{fold: target}
		"(cg.T).Method", // via the method value t.Method
		"(cg.Impl).Run", // via interface dispatch on Runner
	} {
		if !names[want] {
			t.Errorf("Use is missing callee %s (got %v)", want, names)
		}
	}
	if names["cg.Isolated"] {
		t.Error("Use must not reach cg.Isolated")
	}
}

// TestReachable checks transitive reachability — Use reaches helper
// only through the interface-dispatched (Impl).Run — and that the stop
// predicate includes the stopping node but prunes what lies behind it.
func TestReachable(t *testing.T) {
	g, pkg := loadCG(t)
	use := g.Node(funcOf(t, pkg, "Use"))
	run := g.Node(methodOf(t, pkg, "Impl", "Run"))
	helper := g.Node(funcOf(t, pkg, "helper"))
	isolated := g.Node(funcOf(t, pkg, "Isolated"))
	if use == nil || run == nil || helper == nil || isolated == nil {
		t.Fatal("missing graph nodes for fixture functions")
	}

	reach := g.Reachable([]*callgraph.Node{use}, nil)
	if !reach[helper] {
		t.Error("helper should be reachable from Use via (Impl).Run")
	}
	if reach[isolated] {
		t.Error("Isolated must not be reachable from Use")
	}

	pruned := g.Reachable([]*callgraph.Node{use}, func(n *callgraph.Node) bool { return n == run })
	if !pruned[run] {
		t.Error("the stopping node itself should be included")
	}
	if pruned[helper] {
		t.Error("helper lies behind the stop node and must be pruned")
	}
}
