package callgraph_test

import (
	"go/types"
	"testing"

	"expensive/internal/analysis"
	"expensive/internal/analysis/callgraph"
)

func loadCG(t *testing.T) (*callgraph.Graph, *analysis.Package) {
	t.Helper()
	prog, err := analysis.LoadTree("testdata/src")
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	pkg := prog.Package("cg")
	if pkg == nil {
		t.Fatal("fixture package cg not loaded")
	}
	return callgraph.Of(prog), pkg
}

func funcOf(t *testing.T, pkg *analysis.Package, name string) *types.Func {
	t.Helper()
	fn, _ := pkg.Types.Scope().Lookup(name).(*types.Func)
	if fn == nil {
		t.Fatalf("function %s not found in cg", name)
	}
	return fn
}

func methodOf(t *testing.T, pkg *analysis.Package, typeName, method string) *types.Func {
	t.Helper()
	tn, _ := pkg.Types.Scope().Lookup(typeName).(*types.TypeName)
	if tn == nil {
		t.Fatalf("type %s not found in cg", typeName)
	}
	named, _ := tn.Type().(*types.Named)
	for i := 0; i < named.NumMethods(); i++ {
		if m := named.Method(i); m.Name() == method {
			return m
		}
	}
	t.Fatalf("method %s.%s not found", typeName, method)
	return nil
}

func calleeNames(n *callgraph.Node) map[string]bool {
	out := map[string]bool{}
	for _, c := range n.Callees {
		out[c.Name()] = true
	}
	return out
}

// TestEdgeKinds checks that Use gains edges for a method value, a
// function stored into a function-typed field, and an interface call
// expanded to its concrete implementation — none of which are direct
// calls.
func TestEdgeKinds(t *testing.T) {
	g, pkg := loadCG(t)
	use := g.Node(funcOf(t, pkg, "Use"))
	if use == nil {
		t.Fatal("no node for cg.Use")
	}
	names := calleeNames(use)
	for _, want := range []string{
		"cg.target",     // via Pool{fold: target}
		"(cg.T).Method", // via the method value t.Method
		"(cg.Impl).Run", // via interface dispatch on Runner
	} {
		if !names[want] {
			t.Errorf("Use is missing callee %s (got %v)", want, names)
		}
	}
	if names["cg.Isolated"] {
		t.Error("Use must not reach cg.Isolated")
	}
}

// TestReachable checks transitive reachability — Use reaches helper
// only through the interface-dispatched (Impl).Run — and that the stop
// predicate includes the stopping node but prunes what lies behind it.
func TestReachable(t *testing.T) {
	g, pkg := loadCG(t)
	use := g.Node(funcOf(t, pkg, "Use"))
	run := g.Node(methodOf(t, pkg, "Impl", "Run"))
	helper := g.Node(funcOf(t, pkg, "helper"))
	isolated := g.Node(funcOf(t, pkg, "Isolated"))
	if use == nil || run == nil || helper == nil || isolated == nil {
		t.Fatal("missing graph nodes for fixture functions")
	}

	reach := g.Reachable([]*callgraph.Node{use}, nil)
	if !reach[helper] {
		t.Error("helper should be reachable from Use via (Impl).Run")
	}
	if reach[isolated] {
		t.Error("Isolated must not be reachable from Use")
	}

	pruned := g.Reachable([]*callgraph.Node{use}, func(n *callgraph.Node) bool { return n == run })
	if !pruned[run] {
		t.Error("the stopping node itself should be included")
	}
	if pruned[helper] {
		t.Error("helper lies behind the stop node and must be pruned")
	}
}

// TestGoSites checks that Spawn records both launch sites — the static
// worker target and the inline literal — and that go targets still get
// call edges.
func TestGoSites(t *testing.T) {
	g, pkg := loadCG(t)
	spawn := g.Node(funcOf(t, pkg, "Spawn"))
	if spawn == nil {
		t.Fatal("no node for cg.Spawn")
	}
	if len(spawn.GoSites) != 2 {
		t.Fatalf("Spawn should record 2 go sites, got %d", len(spawn.GoSites))
	}
	if tgt := spawn.GoSites[0].Target; tgt == nil || tgt.Name() != "worker" {
		t.Errorf("first go site should statically target worker, got %v", tgt)
	}
	if spawn.GoSites[0].Lit != nil {
		t.Error("first go site is a named call, Lit must be nil")
	}
	if spawn.GoSites[1].Lit == nil {
		t.Error("second go site launches a literal, Lit must be set")
	}
	if spawn.GoSites[1].Target != nil {
		t.Error("literal go site must not report a static target")
	}
	if !calleeNames(spawn)["cg.worker"] {
		t.Error("go worker(ch) should still contribute a call edge")
	}
}

// TestChanOps checks send/receive/close recording and done-receive
// classification: the stop-named channel and the c.Done() call are
// shutdown receives, the value receive and the range receive are not.
func TestChanOps(t *testing.T) {
	g, pkg := loadCG(t)
	spawn := g.Node(funcOf(t, pkg, "Spawn"))
	worker := g.Node(funcOf(t, pkg, "worker"))
	if spawn == nil || worker == nil {
		t.Fatal("missing nodes for Spawn/worker")
	}
	counts := map[callgraph.OpKind]int{}
	doneRecvs := 0
	for _, op := range spawn.ChanOps {
		counts[op.Kind]++
		if op.Kind == callgraph.OpRecv && op.Done {
			doneRecvs++
		}
	}
	if counts[callgraph.OpSend] != 1 || counts[callgraph.OpClose] != 1 {
		t.Errorf("Spawn should record 1 send and 1 close, got %v", counts)
	}
	if counts[callgraph.OpRecv] != 3 {
		t.Errorf("Spawn should record 3 receives (literal flattened in), got %d", counts[callgraph.OpRecv])
	}
	if doneRecvs != 2 {
		t.Errorf("Spawn should classify 2 receives as done receives (<-stop, <-c.Done()), got %d", doneRecvs)
	}
	if len(worker.ChanOps) != 1 || worker.ChanOps[0].Kind != callgraph.OpRecv {
		t.Errorf("worker's range over ch should record one receive, got %v", worker.ChanOps)
	}
	if worker.ChanOps[0].Done {
		t.Error("range over a data channel is not a done receive")
	}
}

// TestImplementations checks the exported interface-dispatch map: the
// Runner.Run interface method expands to (Impl).Run.
func TestImplementations(t *testing.T) {
	g, pkg := loadCG(t)
	tn, _ := pkg.Types.Scope().Lookup("Runner").(*types.TypeName)
	if tn == nil {
		t.Fatal("type Runner not found")
	}
	iface := tn.Type().Underlying().(*types.Interface)
	impls := g.Implementations(iface.Method(0))
	names := map[string]bool{}
	for _, f := range impls {
		names[f.FullName()] = true
	}
	if !names["(cg.Impl).Run"] {
		t.Errorf("Runner.Run should expand to (cg.Impl).Run, got %v", names)
	}
}
