// Fixture exercising the v2 site recording: go statements (static
// target and literal), channel send/receive/close, and done-receive
// detection for ctx.Done() calls and done-named channels.
package cg

type ctxLike struct{}

func (ctxLike) Done() <-chan struct{} { return nil }

// Spawn launches one named worker and one literal, then drives the
// channel: a send, a close, and — inside the literal — plain and
// shutdown receives.
func Spawn(c ctxLike) {
	ch := make(chan int)
	stop := make(chan struct{})
	go worker(ch) // go site with static target
	go func() {   // go site with literal
		for {
			select {
			case v := <-ch: // plain receive
				_ = v
			case <-stop: // done receive by name
				return
			case <-c.Done(): // done receive via Done()
				return
			}
		}
	}()
	ch <- 1
	close(ch)
}

// worker ranges over the channel: a receive site that ends when the
// channel closes.
func worker(ch chan int) {
	for range ch {
	}
}
