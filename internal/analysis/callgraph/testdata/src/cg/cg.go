// Fixture exercising the three edge kinds beyond plain calls: method
// values, functions stored into function-typed fields, and interface
// dispatch.
package cg

func target() {}

func helper() {}

type T struct{}

func (T) Method() {}

// Pool holds a function-typed field; storing target there must keep
// target reachable from the storer.
type Pool struct {
	fold func()
}

type Runner interface{ Run() }

type Impl struct{}

func (Impl) Run() { helper() }

// Use takes no direct call to target or T.Method — only references —
// and calls Run only through the interface.
func Use(r Runner, t T) {
	mv := t.Method // method value: reference edge
	_ = mv
	p := Pool{fold: target} // function-typed field: reference edge
	p.fold()                // dynamic call, statically unresolvable
	r.Run()                 // interface dispatch: expands to (Impl).Run
}

// Isolated is referenced by nobody; it must not be reachable from Use.
func Isolated() {}
