// Package regcheck implements the balint analyzer that enforces the
// protocol-registry contract from PR 3: every package constructing a
// catalog.Spec must register it with catalog.Register during package
// init, and must be imported by expensive/internal/catalog/all — the
// package whose blank imports make the whole catalog visible to the
// registry-driven matrix and the CLIs. A spec that misses either leg
// silently vanishes from `baexp matrix` grids and `-list` output.
package regcheck

import (
	"go/ast"
	"go/types"

	"expensive/internal/analysis"
	"expensive/internal/analysis/callgraph"
)

// Analyzer is the regcheck analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "regcheck",
	Doc: "packages defining a catalog.Spec must Register it in init and be imported by catalog/all\n\n" +
		"The registry-driven matrix only sees specs that reached\n" +
		"catalog.Register during init of a package that catalog/all imports;\n" +
		"this analyzer flags spec-constructing packages missing either leg.",
	Run: run,
}

const (
	catalogPath = "expensive/internal/catalog"
	allPath     = "expensive/internal/catalog/all"
)

func run(pass *analysis.Pass) error {
	pkg := pass.Pkg
	if pkg.Path == catalogPath || pkg.Path == allPath {
		return nil // the registry itself and the import aggregator
	}
	cat := pass.Program.Package(catalogPath)
	if cat == nil {
		return nil // no catalog in this program (foreign fixture)
	}
	specType := cat.Types.Scope().Lookup("Spec")
	registerFn, _ := cat.Types.Scope().Lookup("Register").(*types.Func)
	if specType == nil || registerFn == nil {
		return nil
	}

	// Does this package construct a catalog.Spec?
	var firstLit ast.Node
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if firstLit != nil {
				return false
			}
			cl, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			if t := pkg.Info.TypeOf(cl); t != nil && t == specType.Type() {
				firstLit = cl
			}
			return true
		})
		if firstLit != nil {
			break
		}
	}
	if firstLit == nil {
		return nil
	}

	// Leg 1: catalog.Register reachable from this package's init context.
	g := callgraph.Of(pass.Program)
	registered := false
	if regNode := g.Node(registerFn); regNode != nil {
		reach := g.Reachable([]*callgraph.Node{g.InitNode(pkg)}, nil)
		registered = reach[regNode]
	}
	if !registered {
		pass.Reportf(firstLit.Pos(),
			"package %s constructs a catalog.Spec but never calls catalog.Register from init; the spec is invisible to the registry",
			pkg.Path)
	}

	// Leg 2: imported by catalog/all.
	if all := pass.Program.Package(allPath); all != nil {
		imported := false
		for _, imp := range all.Types.Imports() {
			if imp.Path() == pkg.Path {
				imported = true
				break
			}
		}
		if !imported {
			pass.Reportf(firstLit.Pos(),
				"package %s constructs a catalog.Spec but is not imported by %s; registry-driven commands cannot see it",
				pkg.Path, allPath)
		}
	}
	return nil
}
