// badreg constructs a spec but never registers it.
package badreg

import "expensive/internal/catalog"

var Orphan = catalog.Spec{ID: "orphan"} // want "never calls catalog.Register"
