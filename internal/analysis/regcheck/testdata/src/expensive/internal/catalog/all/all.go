// Fixture stub of the import aggregator: goodproto and badreg are
// linked in, noimport is not.
package all

import (
	_ "badreg"
	_ "goodproto"
)
