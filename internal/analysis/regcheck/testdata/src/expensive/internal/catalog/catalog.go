// Fixture stub of the real catalog package.
package catalog

type Spec struct {
	ID string
}

var registry []Spec

func Register(s Spec) { registry = append(registry, s) }
