// goodproto registers its spec in init and is imported by catalog/all:
// clean on both legs.
package goodproto

import "expensive/internal/catalog"

func init() {
	catalog.Register(catalog.Spec{ID: "good"})
}
