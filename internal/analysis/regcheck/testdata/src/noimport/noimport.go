// noimport registers (transitively, through a helper — init reachability
// must see through the call) but catalog/all does not import it.
package noimport

import "expensive/internal/catalog"

func init() {
	register()
}

func register() {
	catalog.Register(catalog.Spec{ID: "hidden"}) // want "not imported by"
}
