package regcheck_test

import (
	"testing"

	"expensive/internal/analysis"
	"expensive/internal/analysis/analysistest"
	"expensive/internal/analysis/regcheck"
)

func TestRegcheck(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{regcheck.Analyzer},
		"goodproto", "badreg", "noimport")
}
