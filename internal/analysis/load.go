package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// The whole suite shares one FileSet and one stdlib importer: the source
// importer type-checks stdlib packages from GOROOT source (no export
// data is shipped with modern toolchains, and this module must build
// offline) and caches them per process, so every Program loaded in one
// binary — the real module and each analyzer's fixture workspaces —
// reuses the same stdlib type objects.
var (
	sharedFset *token.FileSet
	sharedStd  types.ImporterFrom
	sharedMu   sync.Mutex
)

func shared() (*token.FileSet, types.ImporterFrom) {
	sharedMu.Lock()
	defer sharedMu.Unlock()
	if sharedFset == nil {
		// cgo-tagged files cannot be type-checked from source; with cgo
		// off, go/build selects the pure-Go variants (net, os/user, ...).
		build.Default.CgoEnabled = false
		sharedFset = token.NewFileSet()
		sharedStd = importer.ForCompiler(sharedFset, "source", nil).(types.ImporterFrom)
	}
	return sharedFset, sharedStd
}

var moduleRE = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// LoadModule loads the Go module rooted at dir (the directory holding
// go.mod): every package of the module, non-test files only, parsed and
// type-checked into one Program. testdata, vendor and dot/underscore
// directories are skipped, exactly like the go tool.
func LoadModule(dir string) (*Program, error) {
	raw, err := os.ReadFile(filepath.Join(dir, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("load module: %w", err)
	}
	m := moduleRE.FindSubmatch(raw)
	if m == nil {
		return nil, fmt.Errorf("load module: no module line in %s/go.mod", dir)
	}
	return loadTree(dir, string(m[1]))
}

// LoadTree loads a GOPATH-style workspace: every package directory under
// src, with import paths relative to it. This is what analysistest uses
// for fixture workspaces (testdata/src/<importpath>/...), mirroring the
// x/tools analysistest layout — fixtures can stub repo packages under
// their real import paths.
func LoadTree(src string) (*Program, error) {
	return loadTree(src, "")
}

func loadTree(root, module string) (*Program, error) {
	fset, std := shared()
	l := &loader{
		fset:  fset,
		std:   std,
		dirs:  map[string]string{},
		pkgs:  map[string]*Package{},
		state: map[string]int{},
	}
	if err := l.discover(root, module); err != nil {
		return nil, err
	}
	paths := make([]string, 0, len(l.dirs))
	for p := range l.dirs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if _, err := l.load(p); err != nil {
			return nil, err
		}
	}
	prog := &Program{
		Fset:   fset,
		byPath: map[string]*Package{},
		Cache:  map[string]any{},
	}
	for _, p := range paths {
		pkg := l.pkgs[p]
		prog.Packages = append(prog.Packages, pkg)
		prog.byPath[p] = pkg
	}
	return prog, nil
}

type loader struct {
	fset  *token.FileSet
	std   types.ImporterFrom
	dirs  map[string]string // import path -> directory
	pkgs  map[string]*Package
	state map[string]int // 0 unseen, 1 loading, 2 done
}

// discover maps every package directory under root to its import path:
// module-rooted when module is non-empty, root-relative otherwise.
func (l *loader) discover(root, module string) error {
	return filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(root, filepath.Dir(path))
		if err != nil {
			return err
		}
		imp := filepath.ToSlash(rel)
		switch {
		case module == "":
			if imp == "." {
				return nil // a bare src root is not a package
			}
		case imp == ".":
			imp = module
		default:
			imp = module + "/" + imp
		}
		l.dirs[imp] = filepath.Dir(path)
		return nil
	})
}

// load parses and type-checks one local package, loading its local
// dependencies first.
func (l *loader) load(path string) (*Package, error) {
	switch l.state[path] {
	case 2:
		return l.pkgs[path], nil
	case 1:
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.state[path] = 1

	dir := l.dirs[path]
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	var directives []directive
	for _, n := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, n), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		directives = append(directives, parseDirectives(l.fset, f)...)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}

	// Preload local imports so type-checking never recurses.
	for _, f := range files {
		for _, spec := range f.Imports {
			imp, err := strconv.Unquote(spec.Path.Value)
			if err != nil {
				continue
			}
			if _, local := l.dirs[imp]; local {
				if _, err := l.load(imp); err != nil {
					return nil, fmt.Errorf("%s: %w", path, err)
				}
			}
		}
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	var typeErrs []error
	cfg := &types.Config{
		Importer: importerFunc{l},
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := cfg.Check(path, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("type-check %s: %v", path, typeErrs[0])
	}

	pkg := &Package{
		Path:       path,
		Dir:        dir,
		Files:      files,
		Types:      tpkg,
		Info:       info,
		directives: directives,
	}
	l.pkgs[path] = pkg
	l.state[path] = 2
	return pkg, nil
}

// importerFunc adapts the loader to types.ImporterFrom: local packages
// resolve within the program, everything else falls through to the
// shared stdlib source importer.
type importerFunc struct{ l *loader }

func (i importerFunc) Import(path string) (*types.Package, error) {
	return i.ImportFrom(path, "", 0)
}

func (i importerFunc) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if _, local := i.l.dirs[path]; local {
		pkg, err := i.l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return i.l.std.ImportFrom(path, dir, 0)
}
