// Package balint assembles the repo's analyzer suite: maporder,
// wallclock, globalrand, leantier and regcheck, the five checks that
// mechanically enforce the determinism, lean-tier and registry contracts
// documented in the README's "Static analysis" section. cmd/balint and
// `baexp lint` are thin frontends over this package.
package balint

import (
	"expensive/internal/analysis"
	"expensive/internal/analysis/globalrand"
	"expensive/internal/analysis/leantier"
	"expensive/internal/analysis/maporder"
	"expensive/internal/analysis/regcheck"
	"expensive/internal/analysis/wallclock"
)

// Suite returns the full analyzer suite, in the order findings are
// attributed in listings.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		maporder.Analyzer,
		wallclock.Analyzer,
		globalrand.Analyzer,
		leantier.Analyzer,
		regcheck.Analyzer,
	}
}

// Names returns the suite's analyzer names, the set //balint:allow
// directives may reference.
func Names() []string {
	var out []string
	for _, a := range Suite() {
		out = append(out, a.Name)
	}
	return out
}

// LintModule loads the module rooted at dir and runs the whole suite,
// returning every diagnostic (suppressed ones marked) in position order.
func LintModule(dir string) ([]analysis.Diagnostic, error) {
	prog, err := analysis.LoadModule(dir)
	if err != nil {
		return nil, err
	}
	return analysis.Run(prog, Suite(), Names())
}
