// Package balint assembles the repo's analyzer suite: maporder,
// wallclock, globalrand, leantier and regcheck enforce the determinism,
// lean-tier and registry contracts; obstaint, errcmp and goleak — the
// dataflow tier built on the taint engine and callgraph v2 — enforce
// the telemetry side-channel, sentinel-classification and
// goroutine-shutdown contracts of the concurrent subsystems. All eight
// are documented in the README's "Static analysis" section. cmd/balint
// and `baexp lint` are thin frontends over this package.
package balint

import (
	"encoding/json"
	"io"

	"expensive/internal/analysis"
	"expensive/internal/analysis/errcmp"
	"expensive/internal/analysis/globalrand"
	"expensive/internal/analysis/goleak"
	"expensive/internal/analysis/leantier"
	"expensive/internal/analysis/maporder"
	"expensive/internal/analysis/obstaint"
	"expensive/internal/analysis/regcheck"
	"expensive/internal/analysis/wallclock"
)

// Suite returns the full analyzer suite, in the order findings are
// attributed in listings.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		maporder.Analyzer,
		wallclock.Analyzer,
		globalrand.Analyzer,
		leantier.Analyzer,
		regcheck.Analyzer,
		obstaint.Analyzer,
		errcmp.Analyzer,
		goleak.Analyzer,
	}
}

// Names returns the suite's analyzer names, the set //balint:allow
// directives may reference.
func Names() []string {
	var out []string
	for _, a := range Suite() {
		out = append(out, a.Name)
	}
	return out
}

// LintModule loads the module rooted at dir and runs the whole suite,
// returning every diagnostic (suppressed ones marked) in position order.
func LintModule(dir string) ([]analysis.Diagnostic, error) {
	prog, err := analysis.LoadModule(dir)
	if err != nil {
		return nil, err
	}
	return analysis.Run(prog, Suite(), Names())
}

// Finding is the machine-readable form of one diagnostic, the element
// type of `balint -json` output and the CI findings artifact.
type Finding struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
	Reason     string `json:"reason,omitempty"`
}

// Findings converts diagnostics to their machine-readable form,
// preserving the deterministic position order analysis.Run returns.
func Findings(diags []analysis.Diagnostic) []Finding {
	out := make([]Finding, 0, len(diags))
	for _, d := range diags {
		out = append(out, Finding{
			File:       d.Pos.Filename,
			Line:       d.Pos.Line,
			Col:        d.Pos.Column,
			Analyzer:   d.Analyzer,
			Message:    d.Message,
			Suppressed: d.Suppressed,
			Reason:     d.Reason,
		})
	}
	return out
}

// EncodeJSON writes every diagnostic — suppressed ones marked, so the
// artifact records the allow decisions too — as one JSON array followed
// by a newline. The array is never null: a clean tree encodes as [],
// keeping downstream jq pipelines unconditional.
func EncodeJSON(w io.Writer, diags []analysis.Diagnostic) error {
	enc := json.NewEncoder(w)
	return enc.Encode(Findings(diags))
}
