// Fixture for malformed //balint: directives: every variant must be
// reported as an unsuppressable "balint" diagnostic, and a broken
// directive must never silence the finding it sits next to.
package m

import "math/rand"

func missingReason() int {
	//balint:allow globalrand
	return rand.Intn(3)
}

func missingEverything() int {
	//balint:allow
	return rand.Intn(3)
}

func unknownVerb() int {
	//balint:deny globalrand because
	return rand.Intn(3)
}

func unknownAnalyzer() int {
	//balint:allow nosuch reason text
	return rand.Intn(3)
}
