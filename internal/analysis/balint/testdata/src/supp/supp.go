// Fixture for the //balint:allow suppression semantics, driven through
// the globalrand analyzer (its diagnostics are line-local and easy to
// provoke).
package supp

import "math/rand"

// above: the directive on the preceding line suppresses the finding.
func above() int {
	//balint:allow globalrand fixture demonstrates line-above suppression
	return rand.Intn(3)
}

// trailing: a directive on the flagged line itself suppresses too.
func trailing() int {
	return rand.Intn(3) //balint:allow globalrand fixture demonstrates same-line suppression
}

// wrongAnalyzer: a directive naming a different analyzer suppresses
// nothing — the globalrand finding still fires.
func wrongAnalyzer() int {
	//balint:allow maporder reason aimed at the wrong analyzer
	return rand.Intn(3) // want "process-global generator"
}

// wrongLine: a directive two lines up is out of range.
func wrongLine() int {
	//balint:allow globalrand too far away to apply

	return rand.Intn(3) // want "process-global generator"
}
