package balint_test

import (
	"strings"
	"testing"

	"expensive/internal/analysis"
	"expensive/internal/analysis/analysistest"
	"expensive/internal/analysis/balint"
)

// TestSuppression runs the whole suite over the supp fixture: a
// //balint:allow directive silences exactly the named analyzer
// (globalrand suppressed, a maporder-addressed directive leaves the
// globalrand finding live) on exactly the annotated line (directive
// above or trailing works, two lines away does not).
func TestSuppression(t *testing.T) {
	diags := analysistest.Run(t, "testdata", balint.Suite(), "supp")
	var suppressed []analysis.Diagnostic
	for _, d := range diags {
		if d.Suppressed {
			suppressed = append(suppressed, d)
		}
	}
	if len(suppressed) != 2 {
		t.Fatalf("suppressed %d diagnostics, want 2 (directive above + trailing): %v", len(suppressed), suppressed)
	}
	for _, d := range suppressed {
		if d.Analyzer != "globalrand" {
			t.Errorf("suppressed a %s diagnostic; only globalrand findings carry directives", d.Analyzer)
		}
		if d.Reason == "" {
			t.Errorf("%s: suppressed without a recorded reason", d.Pos)
		}
	}
}

// TestMalformedDirectives loads the malformed workspace directly (want
// comments cannot share a line with a //balint: directive — the
// directive runs to end of line) and checks that every broken directive
// is reported as an unsuppressable "balint" diagnostic and silences
// nothing.
func TestMalformedDirectives(t *testing.T) {
	prog, err := analysis.LoadTree("testdata/malformed/src")
	if err != nil {
		t.Fatalf("load malformed workspace: %v", err)
	}
	diags, err := analysis.Run(prog, balint.Suite(), balint.Names())
	if err != nil {
		t.Fatalf("run suite: %v", err)
	}

	var directiveMsgs []string
	var randHits int
	for _, d := range diags {
		if d.Suppressed {
			t.Errorf("%s: malformed directive must never suppress, but this is marked suppressed", d.Pos)
		}
		switch d.Analyzer {
		case analysis.DirectiveAnalyzer:
			directiveMsgs = append(directiveMsgs, d.Message)
		case "globalrand":
			randHits++
		default:
			t.Errorf("unexpected %s diagnostic: %s", d.Analyzer, d)
		}
	}
	if randHits != 4 {
		t.Errorf("globalrand findings = %d, want 4 (one per broken directive)", randHits)
	}
	for _, want := range []string{
		"//balint:allow globalrand needs a reason",
		"needs an analyzer name and a reason",
		"unknown //balint: directive verb",
		`names unknown analyzer "nosuch"`,
	} {
		found := false
		for _, msg := range directiveMsgs {
			if strings.Contains(msg, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no balint diagnostic containing %q (got %v)", want, directiveMsgs)
		}
	}
	if len(directiveMsgs) != 4 {
		t.Errorf("balint directive diagnostics = %d, want 4: %v", len(directiveMsgs), directiveMsgs)
	}
}

// TestModuleIsClean lints the real repository: the tree must carry no
// unsuppressed findings, and every suppression must state its reason.
// Deleting any //balint:allow in the tree, or re-introducing a map
// range on a report path, fails this test the same way scripts/lint.sh
// and the CI lint job would fail.
func TestModuleIsClean(t *testing.T) {
	diags, err := balint.LintModule("../../..")
	if err != nil {
		t.Fatalf("lint module: %v", err)
	}
	for _, d := range analysis.Unsuppressed(diags) {
		t.Errorf("unsuppressed finding: %s", d)
	}
	suppressedBy := map[string]int{}
	for _, d := range diags {
		if d.Suppressed {
			suppressedBy[d.Analyzer]++
			if strings.TrimSpace(d.Reason) == "" {
				t.Errorf("%s: suppression without a reason", d.Pos)
			}
		}
	}
	if len(suppressedBy) == 0 {
		t.Error("expected at least one suppressed finding in the module (the lean-tier annotations)")
	}
	// The dataflow tier is live: each of these analyzers found its known
	// sanctioned site in the real tree (runner.Result.wall_ms for
	// obstaint, the DebugServer Serve launch for goleak). A zero here
	// means the analyzer silently stopped seeing the module.
	for _, name := range []string{"obstaint", "goleak"} {
		if suppressedBy[name] == 0 {
			t.Errorf("analyzer %s reported no suppressed findings in the module; its known sanctioned site should still be visible", name)
		}
	}
}

// TestSuiteNames pins the suite composition: the dataflow analyzers are
// registered and every name is directive-addressable.
func TestSuiteNames(t *testing.T) {
	names := balint.Names()
	want := []string{"maporder", "wallclock", "globalrand", "leantier", "regcheck", "obstaint", "errcmp", "goleak"}
	if len(names) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d: %v", len(names), len(want), names)
	}
	for i, n := range want {
		if names[i] != n {
			t.Errorf("suite[%d] = %s, want %s", i, names[i], n)
		}
	}
}
