// Package taint implements the intraprocedural forward taint engine the
// balint dataflow analyzers (obstaint) build on. Taint is seeded at
// calls to configured source functions — matched by types.Func FullName
// over the shared whole-program type universe — and propagated to a
// fixpoint through assignments, composite literals, field reads and
// writes, conversions, arithmetic, and range statements. Precision is
// per-object plus per-(object, field): writing a tainted value into g.Wall
// taints exactly that field of g, so reading g.Probes next to it stays
// clean.
//
// Interprocedural reasoning is deliberately one level deep: every module
// function gets a summary — "returns a source-derived value" and "passes
// parameter i through to a result" — computed with the same
// intraprocedural engine but consulting no further summaries. Call sites
// consult callee summaries (interface calls widen over every concrete
// implementation via the callgraph), which is exactly enough to catch
// wrappers like Stopwatch.WallStats without whole-program fixpoints.
// Deeper chains (a wrapper of a wrapper) are invisible by design; the
// analyzers that need more list the wrapper itself as a source.
//
// Known propagation limits, chosen for explainable verdicts: taint does
// not flow through channels, does not follow values stored via method
// calls on other objects, and a method call on a tainted receiver is
// considered tainted (reading any projection of a tainted value stays
// tainted).
package taint

import (
	"go/ast"
	"go/types"
	"strings"

	"expensive/internal/analysis"
	"expensive/internal/analysis/callgraph"
)

// Config selects the taint sources.
type Config struct {
	// Sources are the FullNames of functions and methods whose call
	// results are tainted, e.g. "(expensive/internal/experiments/runner.Stopwatch).Wall".
	Sources map[string]bool
}

// Engine runs taint analysis for one source configuration over one
// program, memoizing function summaries.
type Engine struct {
	prog      *analysis.Program
	graph     *callgraph.Graph
	cfg       Config
	summaries map[*types.Func]*summary
}

// summary is the one-level interprocedural abstraction of a module
// function.
type summary struct {
	// sourceReturn: some result is derived from a source call in the body.
	sourceReturn bool
	// passThrough[i]: taint entering parameter i can reach a result.
	passThrough []bool
}

// For returns the engine for (prog, key), building and caching it on
// first use. Analyzers use their own name as key so source sets never
// collide in the program cache.
func For(prog *analysis.Program, key string, cfg Config) *Engine {
	cacheKey := "taint." + key
	if e, ok := prog.Cache[cacheKey].(*Engine); ok {
		return e
	}
	e := &Engine{
		prog:      prog,
		graph:     callgraph.Of(prog),
		cfg:       cfg,
		summaries: map[*types.Func]*summary{},
	}
	prog.Cache[cacheKey] = e
	return e
}

// fieldRef keys per-field taint: base is the root object of the selector
// chain, field the selected field name. Nested chains collapse onto the
// leaf field, an over-approximation with the strict polarity.
type fieldRef struct {
	base  types.Object
	field string
}

// state is the monotone fact set of one fixpoint run.
type state struct {
	objs   map[types.Object]bool
	fields map[fieldRef]bool
}

func newState() *state {
	return &state{objs: map[types.Object]bool{}, fields: map[fieldRef]bool{}}
}

// Result answers taint queries about one analyzed function body.
type Result struct {
	eng  *Engine
	pkg  *analysis.Package
	st   *state
	srcs bool
}

// Tainted reports whether expr evaluates to a source-derived value in
// the analyzed body's fixpoint state.
func (r *Result) Tainted(expr ast.Expr) bool {
	return r.eng.taintedExpr(r.pkg, r.st, expr, r.srcs)
}

// Function analyzes fd's body (function literals inside it included) to
// a fixpoint and returns the query handle. fd must belong to pkg.
func (e *Engine) Function(pkg *analysis.Package, fd *ast.FuncDecl) *Result {
	st := newState()
	if fd.Body != nil {
		e.fixpoint(pkg, fd.Body, st, true)
	}
	return &Result{eng: e, pkg: pkg, st: st, srcs: true}
}

// fixpoint applies the statement transfer functions until no new fact
// appears. Facts only grow, so termination is bounded by the number of
// objects and fields mentioned in the body.
func (e *Engine) fixpoint(pkg *analysis.Package, body ast.Node, st *state, srcs bool) {
	for e.pass(pkg, body, st, srcs) {
	}
}

// pass runs one transfer sweep; reports whether the state grew.
func (e *Engine) pass(pkg *analysis.Package, body ast.Node, st *state, srcs bool) bool {
	changed := false
	mark := func(lhs ast.Expr) {
		if e.setTaint(pkg, st, lhs) {
			changed = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) > 1 && len(s.Rhs) == 1 {
				// Tuple assignment from a call, map index or type assert:
				// one tainted producer taints every destination.
				if e.taintedExpr(pkg, st, s.Rhs[0], srcs) {
					for _, lhs := range s.Lhs {
						mark(lhs)
					}
				}
				return true
			}
			for i, rhs := range s.Rhs {
				if i < len(s.Lhs) && e.taintedExpr(pkg, st, rhs, srcs) {
					mark(s.Lhs[i])
				}
			}
		case *ast.DeclStmt:
			gd, ok := s.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				if len(vs.Names) > 1 && len(vs.Values) == 1 {
					if e.taintedExpr(pkg, st, vs.Values[0], srcs) {
						for _, name := range vs.Names {
							mark(name)
						}
					}
					continue
				}
				for i, v := range vs.Values {
					if i < len(vs.Names) && e.taintedExpr(pkg, st, v, srcs) {
						mark(vs.Names[i])
					}
				}
			}
		case *ast.RangeStmt:
			if e.taintedExpr(pkg, st, s.X, srcs) {
				if s.Key != nil {
					mark(s.Key)
				}
				if s.Value != nil {
					mark(s.Value)
				}
			}
		}
		return true
	})
	return changed
}

// setTaint records taint at an assignment destination; reports whether
// the fact is new. Blank identifiers absorb taint silently.
func (e *Engine) setTaint(pkg *analysis.Package, st *state, lhs ast.Expr) bool {
	switch x := analysis.Unparen(lhs).(type) {
	case *ast.Ident:
		if x.Name == "_" {
			return false
		}
		obj := pkg.Info.ObjectOf(x)
		if obj == nil || st.objs[obj] {
			return false
		}
		st.objs[obj] = true
		return true
	case *ast.SelectorExpr:
		obj := pkg.Info.ObjectOf(x.Sel)
		if v, ok := obj.(*types.Var); ok && !v.IsField() {
			// Package-qualified variable.
			if st.objs[v] {
				return false
			}
			st.objs[v] = true
			return true
		}
		root := rootObject(pkg.Info, x.X)
		if root == nil {
			return false
		}
		ref := fieldRef{base: root, field: x.Sel.Name}
		if st.fields[ref] {
			return false
		}
		st.fields[ref] = true
		return true
	case *ast.IndexExpr:
		// m[k] = tainted taints the whole container.
		return e.setTaint(pkg, st, x.X)
	case *ast.StarExpr:
		// *p = tainted taints what p names, coarsely.
		return e.setTaint(pkg, st, x.X)
	}
	return false
}

// rootObject walks a selector/index/deref chain down to its base
// identifier's object.
func rootObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := analysis.Unparen(e).(type) {
		case *ast.Ident:
			return info.ObjectOf(x)
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// taintedExpr evaluates whether expr produces a tainted value under st.
// srcs gates source seeding: summary computation for pass-through runs
// with sources off so the two summary bits stay independent.
func (e *Engine) taintedExpr(pkg *analysis.Package, st *state, expr ast.Expr, srcs bool) bool {
	info := pkg.Info
	switch x := analysis.Unparen(expr).(type) {
	case *ast.Ident:
		obj := info.ObjectOf(x)
		return obj != nil && st.objs[obj]
	case *ast.SelectorExpr:
		obj := info.ObjectOf(x.Sel)
		if v, ok := obj.(*types.Var); ok && !v.IsField() {
			return st.objs[v]
		}
		if root := rootObject(info, x.X); root != nil {
			if st.fields[fieldRef{base: root, field: x.Sel.Name}] {
				return true
			}
		}
		// A projection of a tainted value is tainted.
		return e.taintedExpr(pkg, st, x.X, srcs)
	case *ast.CallExpr:
		return e.taintedCall(pkg, st, x, srcs)
	case *ast.CompositeLit:
		for _, elt := range x.Elts {
			v := elt
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				v = kv.Value
			}
			if e.taintedExpr(pkg, st, v, srcs) {
				return true
			}
		}
		return false
	case *ast.UnaryExpr:
		return e.taintedExpr(pkg, st, x.X, srcs)
	case *ast.BinaryExpr:
		return e.taintedExpr(pkg, st, x.X, srcs) || e.taintedExpr(pkg, st, x.Y, srcs)
	case *ast.StarExpr:
		return e.taintedExpr(pkg, st, x.X, srcs)
	case *ast.IndexExpr:
		return e.taintedExpr(pkg, st, x.X, srcs)
	case *ast.SliceExpr:
		return e.taintedExpr(pkg, st, x.X, srcs)
	case *ast.TypeAssertExpr:
		return e.taintedExpr(pkg, st, x.X, srcs)
	case *ast.KeyValueExpr:
		return e.taintedExpr(pkg, st, x.Value, srcs)
	}
	return false
}

// taintedCall handles the call forms: conversions propagate their
// operand, source calls seed, module callees answer via their one-level
// summary, interface calls widen over every concrete implementation,
// and any method call on a tainted receiver stays tainted.
func (e *Engine) taintedCall(pkg *analysis.Package, st *state, call *ast.CallExpr, srcs bool) bool {
	info := pkg.Info
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		// Conversion: T(x).
		for _, arg := range call.Args {
			if e.taintedExpr(pkg, st, arg, srcs) {
				return true
			}
		}
		return false
	}
	// A method call on a tainted receiver (wall.Microseconds() where wall
	// came from a source) reads a projection of the tainted value.
	if sel, ok := analysis.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if selInfo, ok := info.Selections[sel]; ok && selInfo.Kind() == types.MethodVal {
			if e.taintedExpr(pkg, st, sel.X, srcs) {
				return true
			}
		}
	}
	fn := analysis.FuncObject(info, call.Fun)
	if fn == nil {
		return false
	}
	if srcs && e.cfg.Sources[fn.FullName()] {
		return true
	}
	targets := []*types.Func{fn}
	if e.graph.Node(fn) == nil {
		// No body in the program: stdlib (no summary, stays clean unless
		// listed as a source) or an interface method — widen.
		targets = e.graph.Implementations(fn)
	}
	for _, t := range targets {
		sum := e.summaryOf(t)
		if sum == nil {
			continue
		}
		if srcs && sum.sourceReturn {
			return true
		}
		for i, arg := range call.Args {
			if i < len(sum.passThrough) && sum.passThrough[i] && e.taintedExpr(pkg, st, arg, srcs) {
				return true
			}
		}
	}
	return false
}

// summaryOf computes (and memoizes) fn's one-level summary. Summary
// bodies consult no further summaries — taintedCall is only reentered
// from top-level Function runs — because summary fixpoints run the same
// engine with an empty summary view: summaryOf returns a zero summary
// for fn itself while it is being computed, which also breaks recursion.
func (e *Engine) summaryOf(fn *types.Func) *summary {
	if sum, ok := e.summaries[fn]; ok {
		return sum
	}
	node := e.graph.Node(fn)
	if node == nil || node.Decl == nil || node.Decl.Body == nil {
		e.summaries[fn] = nil
		return nil
	}
	sum := &summary{}
	e.summaries[fn] = sum // breaks self-recursion: the in-flight view is zero

	pkg := node.Pkg
	sig := fn.Type().(*types.Signature)
	if sig.Results().Len() > 0 {
		// sourceReturn: seed nothing, let sources fire, check returns.
		st := newState()
		e.fixpoint(pkg, node.Decl.Body, st, true)
		sum.sourceReturn = e.taintedReturn(pkg, node.Decl, st, true)

		// passThrough: seed one parameter at a time, sources off.
		params := paramObjects(pkg, node.Decl)
		sum.passThrough = make([]bool, len(params))
		for i, p := range params {
			if p == nil {
				continue
			}
			st := newState()
			st.objs[p] = true
			e.fixpoint(pkg, node.Decl.Body, st, false)
			sum.passThrough[i] = e.taintedReturn(pkg, node.Decl, st, false)
		}
	}
	return sum
}

// taintedReturn reports whether any return statement of fd's own body
// (not of nested literals) yields a tainted value, or — for named
// results — whether a named result object is tainted.
func (e *Engine) taintedReturn(pkg *analysis.Package, fd *ast.FuncDecl, st *state, srcs bool) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false // literal returns are not fd's returns
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, r := range ret.Results {
			if e.taintedExpr(pkg, st, r, srcs) {
				found = true
			}
		}
		return true
	})
	if found {
		return true
	}
	// Named results assigned then returned bare.
	if fd.Type.Results != nil {
		for _, f := range fd.Type.Results.List {
			for _, name := range f.Names {
				if obj := pkg.Info.ObjectOf(name); obj != nil && st.objs[obj] {
					return true
				}
			}
		}
	}
	return false
}

// paramObjects lists fd's parameter objects in declaration order,
// receiver excluded.
func paramObjects(pkg *analysis.Package, fd *ast.FuncDecl) []types.Object {
	var out []types.Object
	if fd.Type.Params == nil {
		return out
	}
	for _, f := range fd.Type.Params.List {
		if len(f.Names) == 0 {
			out = append(out, nil) // unnamed parameter cannot carry taint
			continue
		}
		for _, name := range f.Names {
			out = append(out, pkg.Info.ObjectOf(name))
		}
	}
	return out
}

// EncodedField reports whether field i of struct st is encoded by
// encoding/json: exported and not tagged json:"-". Sink checks share
// this so "write into an encoded field" means the same thing in every
// analyzer.
func EncodedField(st *types.Struct, i int) bool {
	f := st.Field(i)
	if !f.Exported() {
		return false
	}
	tag := parseJSONTag(st.Tag(i))
	return tag != "-"
}

// parseJSONTag extracts the json tag name portion from a struct tag
// literal, "" when untagged. A hand-rolled reflect.StructTag.Get: the
// analysis packages avoid reflect so fixture behavior matches go/types
// exactly.
func parseJSONTag(tag string) string {
	for tag != "" {
		// Skip leading space.
		i := 0
		for i < len(tag) && tag[i] == ' ' {
			i++
		}
		tag = tag[i:]
		if tag == "" {
			break
		}
		// Key ends at ':'.
		i = 0
		for i < len(tag) && tag[i] != ':' && tag[i] != ' ' && tag[i] != '"' {
			i++
		}
		if i == len(tag) || tag[i] != ':' || i+1 >= len(tag) || tag[i+1] != '"' {
			break
		}
		key := tag[:i]
		tag = tag[i+2:]
		// Value ends at the closing unescaped quote.
		j := 0
		for j < len(tag) && tag[j] != '"' {
			if tag[j] == '\\' {
				j++
			}
			j++
		}
		if j >= len(tag) {
			break
		}
		val := tag[:j]
		tag = tag[j+1:]
		if key == "json" {
			if k := strings.IndexByte(val, ','); k >= 0 {
				return val[:k]
			}
			return val
		}
	}
	return ""
}
