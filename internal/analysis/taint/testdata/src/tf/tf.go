// Fixture for the taint engine: a source method, a source-returning
// wrapper, a pass-through scaler, field-precision records, and an
// interface standing in front of a source-derived implementation.
package tf

type Clock struct{}

// Wall is the configured taint source.
func (Clock) Wall() int64 { return 0 }

// Stats derives both results from the source: its summary must say
// sourceReturn.
func Stats(c Clock) (int64, float64) {
	w := c.Wall()
	return w, float64(w) / 1e6
}

// Scale passes its parameter through to the result: its summary must
// say passThrough[0].
func Scale(v int64) float64 { return float64(v) / 1e3 }

type rec struct {
	A int64
	B int64
}

// Use exercises every propagation rule the engine claims.
func Use(c Clock, n int64) {
	w := c.Wall()    // seeded
	ms := float64(w) // conversion
	sum := w + n     // arithmetic
	s, _ := Stats(c) // one-level summary: source return
	sc := Scale(w)   // one-level summary: pass-through of tainted arg
	cleanScale := Scale(n)
	var r rec
	r.A = w
	a := r.A // per-field taint
	b := r.B // sibling field stays clean
	lit := rec{A: w}
	clean := n + 1
	_, _, _, _, _, _, _, _, _, _ = w, ms, sum, s, sc, cleanScale, a, b, lit, clean
}

type Src interface{ Get() int64 }

type Impl struct{}

func (Impl) Get() int64 {
	var c Clock
	return c.Wall()
}

// UseIface calls through the interface: the engine must widen to Impl
// and pick up its source-return summary.
func UseIface(s Src) {
	v := s.Get()
	_ = v
}

// Rep pins the EncodedField contract: exported+untagged and
// exported+named are encoded, json:"-" and unexported are not.
type Rep struct {
	Probes int     `json:"probes"`
	Wall   float64 `json:"-"`
	hidden int
	Plain  int
}
