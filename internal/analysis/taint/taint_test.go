package taint_test

import (
	"go/ast"
	"go/types"
	"testing"

	"expensive/internal/analysis"
	"expensive/internal/analysis/taint"
)

func loadTF(t *testing.T) (*analysis.Program, *analysis.Package) {
	t.Helper()
	prog, err := analysis.LoadTree("testdata/src")
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	pkg := prog.Package("tf")
	if pkg == nil {
		t.Fatal("fixture package tf not loaded")
	}
	return prog, pkg
}

func declOf(t *testing.T, pkg *analysis.Package, name string) *ast.FuncDecl {
	t.Helper()
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Name.Name == name {
				return fd
			}
		}
	}
	t.Fatalf("function %s not found in tf", name)
	return nil
}

// lastIdent finds the final occurrence of an identifier in a body — the
// fixture's trailing blank assignment mentions every local, so this is
// a use site after all taint has flowed.
func lastIdent(t *testing.T, fd *ast.FuncDecl, name string) *ast.Ident {
	t.Helper()
	var found *ast.Ident
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			found = id
		}
		return true
	})
	if found == nil {
		t.Fatalf("identifier %s not found in %s", name, fd.Name.Name)
	}
	return found
}

func engine(prog *analysis.Program) *taint.Engine {
	return taint.For(prog, "test", taint.Config{
		Sources: map[string]bool{"(tf.Clock).Wall": true},
	})
}

// TestPropagation checks the intraprocedural rules plus both one-level
// summary kinds against the Use fixture.
func TestPropagation(t *testing.T) {
	prog, pkg := loadTF(t)
	fd := declOf(t, pkg, "Use")
	res := engine(prog).Function(pkg, fd)

	wantTainted := []string{
		"w",   // direct source call
		"ms",  // conversion of tainted
		"sum", // arithmetic with tainted operand
		"s",   // Stats() source-return summary
		"sc",  // Scale(w) pass-through summary
		"a",   // read of the tainted field r.A
		"lit", // composite literal holding tainted value
	}
	for _, name := range wantTainted {
		if !res.Tainted(lastIdent(t, fd, name)) {
			t.Errorf("%s should be tainted", name)
		}
	}
	wantClean := []string{
		"b",          // sibling field of a tainted field
		"clean",      // untainted arithmetic
		"cleanScale", // pass-through of a clean argument
		"n",          // plain parameter
	}
	for _, name := range wantClean {
		if res.Tainted(lastIdent(t, fd, name)) {
			t.Errorf("%s should be clean", name)
		}
	}
}

// TestInterfaceWidening checks that a call through Src picks up the
// source-return summary of the concrete Impl behind it.
func TestInterfaceWidening(t *testing.T) {
	prog, pkg := loadTF(t)
	fd := declOf(t, pkg, "UseIface")
	res := engine(prog).Function(pkg, fd)
	if !res.Tainted(lastIdent(t, fd, "v")) {
		t.Error("v should be tainted via the Impl.Get implementation summary")
	}
}

// TestEncodedField pins the sink-side field classification on Rep.
func TestEncodedField(t *testing.T) {
	_, pkg := loadTF(t)
	tn, _ := pkg.Types.Scope().Lookup("Rep").(*types.TypeName)
	if tn == nil {
		t.Fatal("type Rep not found")
	}
	st := tn.Type().Underlying().(*types.Struct)
	want := map[string]bool{"Probes": true, "Wall": false, "hidden": false, "Plain": true}
	for i := 0; i < st.NumFields(); i++ {
		name := st.Field(i).Name()
		if got := taint.EncodedField(st, i); got != want[name] {
			t.Errorf("EncodedField(%s) = %v, want %v", name, got, want[name])
		}
	}
}
