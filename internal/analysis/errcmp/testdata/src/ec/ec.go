// Fixture with every errcmp shape: raw equality, switch cases, %w-less
// wrapping — against module sentinels (stubbed transport and this
// package's own Err* var) and stdlib ones. errors.Is, nil comparisons
// and %w wrapping stay clean.
package ec

import (
	"errors"
	"fmt"
	"io"

	"expensive/internal/transport"
)

var ErrLocal = errors.New("ec: local")

func Classify(err error) string {
	if err == transport.ErrTimeout { // want "transport.ErrTimeout compared with =="
		return "timeout"
	}
	if err != io.EOF { // want "io.EOF compared with !="
		return "other"
	}
	if ErrLocal == err { // want "ec.ErrLocal compared with =="
		return "local"
	}
	switch err {
	case transport.ErrClosed: // want "transport.ErrClosed matched by switch case"
		return "closed"
	case nil:
		return ""
	}
	return ""
}

func Wrap(err error) error {
	if errors.Is(err, transport.ErrTimeout) {
		return fmt.Errorf("attempt: %w", transport.ErrTimeout)
	}
	return fmt.Errorf("attempt: %v", transport.ErrTimeout) // want "wrapped without %w"
}

func NilChecks(err error) bool {
	// Comparisons against nil are the sanctioned use of ==.
	return err == nil || transport.ErrTimeout != nil
}

func NonError(s string) bool {
	// A string switch sharing a sentinel-ish name is no error switch.
	switch s {
	case "ErrTimeout":
		return true
	}
	return false
}
