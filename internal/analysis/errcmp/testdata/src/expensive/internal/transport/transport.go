// Fixture stub of the transport sentinels.
package transport

import "errors"

var (
	ErrTimeout = errors.New("transport: timeout")
	ErrClosed  = errors.New("transport: closed")
)
