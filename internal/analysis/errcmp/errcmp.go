// Package errcmp implements the balint analyzer that enforces sentinel
// error hygiene everywhere in the module: comparisons against typed
// sentinels — the module's own Err* package variables (transport.ErrTimeout,
// transport.ErrClosed, dist.ErrDrained, ...) and the usual stdlib set
// (io.EOF, net.ErrClosed, os.ErrDeadlineExceeded, ...) — must go through
// errors.Is, never `==`, `!=` or `switch err { case sentinel }`. The
// classification paths in dist and transport wrap socket errors in
// fmt.Errorf chains; a raw equality silently stops matching the moment
// anyone adds context with %w, and that kind of misclassification
// quarantines healthy workers. For the same reason, wrapping a sentinel
// with fmt.Errorf requires the %w verb — %v flattens the chain and
// errors.Is on the far side goes blind.
package errcmp

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"expensive/internal/analysis"
)

// Analyzer is the errcmp analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "errcmp",
	Doc: "flags ==/!=/switch comparisons against error sentinels and %w-less sentinel wrapping\n\n" +
		"Typed sentinels classify link and scheduler errors across wrap\n" +
		"boundaries; only errors.Is follows the chain. Raw equality breaks\n" +
		"silently when a call site adds fmt.Errorf context, and fmt.Errorf\n" +
		"without %w is exactly that break, one level earlier.",
	Run: run,
}

// stdlibSentinels are well-known stdlib error values compared by
// identity in careless code; the module's own sentinels are any
// package-level error variable named Err*.
var stdlibSentinels = map[string]bool{
	"io.EOF":                   true,
	"io.ErrUnexpectedEOF":      true,
	"io.ErrClosedPipe":         true,
	"net.ErrClosed":            true,
	"os.ErrDeadlineExceeded":   true,
	"os.ErrNotExist":           true,
	"os.ErrExist":              true,
	"io/fs.ErrNotExist":        true,
	"io/fs.ErrClosed":          true,
	"context.Canceled":         true,
	"context.DeadlineExceeded": true,
}

const sentinelsKey = "errcmp.sentinels"

// sentinels collects the sentinel objects once per program: every
// package-level var of an error-implementing type whose name starts
// with Err in a program package, plus the stdlib set (matched by
// qualified name so it works through any import).
func sentinels(prog *analysis.Program) map[types.Object]bool {
	if s, ok := prog.Cache[sentinelsKey].(map[types.Object]bool); ok {
		return s
	}
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	set := map[types.Object]bool{}
	for _, pkg := range prog.Packages {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			v, ok := scope.Lookup(name).(*types.Var)
			if !ok || !strings.HasPrefix(name, "Err") {
				continue
			}
			if types.Implements(v.Type(), errType) {
				set[v] = true
			}
		}
	}
	prog.Cache[sentinelsKey] = set
	return set
}

// sentinelOf resolves e to a sentinel object, returning its display
// name ("transport.ErrTimeout", "io.EOF") or "" when e is no sentinel.
func sentinelOf(prog *analysis.Program, info *types.Info, e ast.Expr) string {
	var obj types.Object
	switch x := analysis.Unparen(e).(type) {
	case *ast.Ident:
		obj = info.ObjectOf(x)
	case *ast.SelectorExpr:
		obj = info.ObjectOf(x.Sel)
	default:
		return ""
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil {
		return ""
	}
	qualified := v.Pkg().Path() + "." + v.Name()
	if stdlibSentinels[qualified] || sentinels(prog)[v] {
		short := qualified
		if i := strings.LastIndex(short, "/"); i >= 0 {
			short = short[i+1:]
		}
		return short
	}
	return ""
}

func isNil(info *types.Info, e ast.Expr) bool {
	id, ok := analysis.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNilObj := info.ObjectOf(id).(*types.Nil)
	return isNilObj
}

func run(pass *analysis.Pass) error {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.BinaryExpr:
				if s.Op != token.EQL && s.Op != token.NEQ {
					return true
				}
				for _, pair := range [2][2]ast.Expr{{s.X, s.Y}, {s.Y, s.X}} {
					name := sentinelOf(pass.Program, info, pair[0])
					if name == "" || isNil(info, pair[1]) {
						continue
					}
					pass.Reportf(s.Pos(),
						"%s compared with %s: use errors.Is so wrapped sentinels still classify",
						name, s.Op)
					break
				}
			case *ast.SwitchStmt:
				if s.Tag == nil {
					return true
				}
				if t := info.TypeOf(s.Tag); t == nil || !isErrorType(t) {
					return true
				}
				for _, clause := range s.Body.List {
					cc, ok := clause.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, e := range cc.List {
						if name := sentinelOf(pass.Program, info, e); name != "" {
							pass.Reportf(e.Pos(),
								"%s matched by switch case: use errors.Is so wrapped sentinels still classify",
								name)
						}
					}
				}
			case *ast.CallExpr:
				checkErrorf(pass, info, s)
			}
			return true
		})
	}
	return nil
}

// checkErrorf flags fmt.Errorf calls that pass a sentinel without
// wrapping it: a literal format string with no %w verb loses the chain.
// Non-literal formats are skipped — the verb cannot be read statically.
func checkErrorf(pass *analysis.Pass, info *types.Info, call *ast.CallExpr) {
	fn := analysis.FuncObject(info, call.Fun)
	if fn == nil || fn.FullName() != "fmt.Errorf" || len(call.Args) < 2 {
		return
	}
	lit, ok := analysis.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING || strings.Contains(lit.Value, "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		if name := sentinelOf(pass.Program, info, arg); name != "" {
			pass.Reportf(arg.Pos(),
				"%s wrapped without %%w: fmt.Errorf with %%v/%%s breaks errors.Is downstream",
				name)
		}
	}
}

func isErrorType(t types.Type) bool {
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return types.Implements(t, errType)
}
