package errcmp_test

import (
	"testing"

	"expensive/internal/analysis"
	"expensive/internal/analysis/analysistest"
	"expensive/internal/analysis/errcmp"
)

func TestErrcmp(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{errcmp.Analyzer},
		"ec", "expensive/internal/transport")
}
