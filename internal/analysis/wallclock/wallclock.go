// Package wallclock implements the balint analyzer that flags direct
// wall-clock reads (time.Now, time.Since) in probe, engine and fold
// code. Wall-clock values leak into reports as timing stats; reading the
// clock anywhere else on those paths either perturbs byte-identical
// output or tempts logic into depending on real time. All timing goes
// through the runner.Stopwatch wrappers, which are the allowlist.
//
// Two kinds of sites are sanctioned. The allowed map lists individual
// wrapper functions inside scoped packages (runner.StartWall and
// Stopwatch.Wall). The sanctioned map lists entire clock-owning packages
// — expensive/internal/obs, the flight recorder — whose whole purpose is
// to keep wall-clock reads off the deterministic fold path: scoped probe
// loops call obs instruments (Counter.Inc, Histogram.StartTimer) instead
// of time.Now, so instrumenting a hot loop never trips this gate while a
// raw clock read in the same loop still does.
package wallclock

import (
	"go/ast"
	"go/types"
	"strings"

	"expensive/internal/analysis"
)

// Analyzer is the wallclock analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "wallclock",
	Doc: "flags time.Now/time.Since in probe, engine and fold code outside the Stopwatch wrappers\n\n" +
		"Probe and fold code must not read the wall clock directly: timing\n" +
		"stats go through expensive/internal/experiments/runner.Stopwatch so\n" +
		"that exactly one sanctioned site produces the nondeterministic\n" +
		"fields reports already exclude from byte-identity diffs.",
	Run: run,
}

// scopes are the package paths (exact or prefix/) where the rule
// applies: the probe engines, the fold/report layers, and the simulator.
var scopes = []string{
	"expensive/internal/adversary",
	"expensive/internal/catalog/matrix",
	"expensive/internal/dist",
	"expensive/internal/experiments",
	"expensive/internal/lowerbound",
	"expensive/internal/obs",
	"expensive/internal/omission",
	"expensive/internal/sim",
	"expensive/internal/solve",
	"expensive/internal/transport/chaosnet",
}

// sanctioned are whole packages allowed to read the clock: the telemetry
// layer owns every time.Now so the scoped engines never have to. Listing
// obs in scopes AND here is deliberate — the package is inside the fence
// (its callers are checked callees of scoped code) but its own bodies are
// the sanctioned clock site, exactly like Stopwatch's methods. The dist
// coordinator/worker layer is sanctioned for the same reason: heartbeat
// cadence, dial backoff and dead-worker detection are inherently
// wall-clock concerns, and the layer keeps them out of the deterministic
// fold (its reports exclude scheduling stats from the JSON encoding).
// chaosnet and churn join dist in the sanctioned set: a fault injector's
// delays and a churn harness's kill schedule are wall-clock by nature,
// and both keep their nondeterminism off the fold path by contract —
// chaos plans draw faults from (seed, link, seq) hashes, never from the
// clock, and churned campaigns must still merge byte-identically.
var sanctioned = map[string]bool{
	"expensive/internal/dist":               true,
	"expensive/internal/dist/churn":         true,
	"expensive/internal/obs":                true,
	"expensive/internal/transport/chaosnet": true,
}

// clockFuncs are the forbidden direct reads.
var clockFuncs = map[string]bool{
	"time.Now":   true,
	"time.Since": true,
}

// allowed are the timing-stat wrappers whose bodies may read the clock.
var allowed = map[string]bool{
	"expensive/internal/experiments/runner.StartWall":        true,
	"(expensive/internal/experiments/runner.Stopwatch).Wall": true,
}

func inScope(path string) bool {
	for _, s := range scopes {
		if path == s || strings.HasPrefix(path, s+"/") {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path) || sanctioned[pass.Pkg.Path] {
		return nil
	}
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, _ := info.Defs[fd.Name].(*types.Func); fn != nil && allowed[fn.FullName()] {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := analysis.FuncObject(info, call.Fun)
				if fn != nil && clockFuncs[fn.FullName()] {
					pass.Reportf(call.Pos(),
						"%s in %s code: thread timing through runner.Stopwatch instead of reading the wall clock",
						fn.FullName(), shortScope(pass.Pkg.Path))
				}
				return true
			})
		}
	}
	return nil
}

func shortScope(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}
