package wallclock_test

import (
	"testing"

	"expensive/internal/analysis"
	"expensive/internal/analysis/analysistest"
	"expensive/internal/analysis/wallclock"
)

func TestWallclock(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{wallclock.Analyzer},
		"expensive/internal/adversary", "expensive/internal/dist",
		"expensive/internal/experiments/runner",
		"expensive/internal/obs", "outside")
}
