package wallclock_test

import (
	"testing"

	"expensive/internal/analysis"
	"expensive/internal/analysis/analysistest"
	"expensive/internal/analysis/wallclock"
)

func TestWallclock(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{wallclock.Analyzer},
		"expensive/internal/adversary", "expensive/internal/dist",
		"expensive/internal/dist/churn",
		"expensive/internal/experiments/runner",
		"expensive/internal/obs",
		"expensive/internal/transport/chaosnet",
		"expensive/internal/transport/chaosnet/replay",
		"outside")
}
