// Out-of-scope package: wall-clock reads are fine here.
package outside

import "time"

func Now() time.Time { return time.Now() }
