// Fixture for the wallclock analyzer: chaosnet is scoped AND
// sanctioned, like obs — the fault injector owns delay timing (holding a
// reordered frame, pacing an injected latency), so its own clock reads
// are clean while scoped callers of it are still checked. The replay
// subpackage next door proves the scope prefix fences unsanctioned
// chaosnet code.
package chaosnet

import "time"

// holdUntil paces an injected delay — the sanctioned clock site.
func holdUntil(deadline time.Time) {
	for time.Now().Before(deadline) {
	}
}

// age measures how long a held frame has waited.
func age(since time.Time) time.Duration {
	return time.Since(since)
}
