// Fixture for the wallclock analyzer: a chaosnet subpackage is inside
// the fence (the scopes list fences by prefix) but NOT sanctioned — only
// the injector package itself owns the clock. A raw read here flags.
package replay

import "time"

// Stamp reads the clock on the replay path — flagged: replayed chaos
// must be a pure function of the recorded plan, never of real time.
func Stamp() time.Time {
	return time.Now() // want "thread timing through runner.Stopwatch"
}
