// Fixture for the wallclock analyzer: churn is inside the dist/ scope
// prefix but sanctioned — a kill schedule is a wall-clock artifact by
// nature (sleep until the next event, stamp the kill), and the harness
// keeps that nondeterminism out of the fold by contract: churned
// campaigns must still merge byte-identically.
package churn

import "time"

// nextKill sleeps out the schedule gap and stamps the kill — real clock
// work, clean here because the package is sanctioned.
func nextKill(after time.Duration) time.Time {
	start := time.Now()
	for time.Since(start) < after {
	}
	return time.Now()
}
