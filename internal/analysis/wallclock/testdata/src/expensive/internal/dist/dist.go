// Fixture for the wallclock analyzer: dist is listed in scopes AND in
// the sanctioned package map, so its heartbeat/timeout clock reads — the
// coordinator's dead-worker detection and the worker's heartbeat cadence
// are inherently wall-clock concerns — produce no findings. The
// adversary fixture next door proves a raw time.Now on the probe side
// still flags.
package dist

import "time"

// heartbeat paces one worker's liveness messages — a real clock loop.
func heartbeat(every time.Duration, send func()) {
	last := time.Now()
	for i := 0; i < 3; i++ {
		if time.Since(last) >= every {
			send()
			last = time.Now()
		}
	}
}

// deadline computes a worker's death sentence from the heartbeat timeout.
func deadline(timeout time.Duration) time.Time {
	return time.Now().Add(timeout)
}
