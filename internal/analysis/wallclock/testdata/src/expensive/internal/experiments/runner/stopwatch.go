// Fixture stub of the real runner.Stopwatch: these two functions are the
// wallclock allowlist, so their clock reads are clean.
package runner

import "time"

type Stopwatch struct {
	start time.Time
}

func StartWall() Stopwatch { return Stopwatch{start: time.Now()} }

func (s Stopwatch) Wall() time.Duration { return time.Since(s.start) }

// Other functions in the scope package are still checked.
func NotAllowed() time.Time {
	return time.Now() // want "thread timing through runner.Stopwatch"
}
