// Fixture for the wallclock analyzer: the adversary package is in scope.
package adversary

import (
	"time"

	"expensive/internal/experiments/runner"
)

// Probe reads the clock directly (flagged) and via the Stopwatch (clean).
func Probe() time.Duration {
	sw := runner.StartWall()
	start := time.Now()   // want "thread timing through runner.Stopwatch"
	_ = time.Since(start) // want "thread timing through runner.Stopwatch"
	_ = time.Unix(0, 0)   // not a clock read: clean
	return sw.Wall()
}
