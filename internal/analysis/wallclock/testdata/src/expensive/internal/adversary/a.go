// Fixture for the wallclock analyzer: the adversary package is in scope.
package adversary

import (
	"time"

	"expensive/internal/experiments/runner"
	"expensive/internal/obs"
)

// Probe reads the clock directly (flagged) and via the Stopwatch (clean).
func Probe() time.Duration {
	sw := runner.StartWall()
	start := time.Now()   // want "thread timing through runner.Stopwatch"
	_ = time.Since(start) // want "thread timing through runner.Stopwatch"
	_ = time.Unix(0, 0)   // not a clock read: clean
	return sw.Wall()
}

// ProbeLoop instruments a hot probe loop with obs: the telemetry calls do
// all the clock reading inside the sanctioned package, so nothing here is
// flagged — while a raw read in the same loop still is.
func ProbeLoop(probes *obs.Counter, lat *obs.Histogram) {
	for i := 0; i < 8; i++ {
		t := lat.StartTimer() // clean: obs owns the clock
		probes.Inc()          // clean: no clock involved
		t.Stop()              // clean: obs owns the clock
		_ = time.Now()        // want "thread timing through runner.Stopwatch"
	}
}
