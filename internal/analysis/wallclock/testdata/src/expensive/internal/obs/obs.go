// Fixture for the wallclock analyzer: obs is listed in scopes AND in the
// sanctioned package map, so its own time.Now/time.Since reads — the
// telemetry layer's whole job — produce no findings.
package obs

import "time"

// Counter is the nil-safe counter stub scoped fixtures instrument with.
type Counter struct{ n int64 }

// Inc adds 1 (no-op on the nil handle).
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.n++
}

// Histogram is the nil-safe latency histogram stub.
type Histogram struct{ sum int64 }

// Timer times one operation into a histogram.
type Timer struct {
	h     *Histogram
	start time.Time
}

// StartTimer reads the clock — sanctioned: obs owns the wall clock so
// probe loops never touch it.
func (h *Histogram) StartTimer() Timer {
	if h == nil {
		return Timer{}
	}
	return Timer{h: h, start: time.Now()}
}

// Stop observes the elapsed nanoseconds — sanctioned for the same reason.
func (t Timer) Stop() int64 {
	if t.h == nil {
		return 0
	}
	ns := time.Since(t.start).Nanoseconds()
	t.h.sum += ns
	return ns
}
