// Package analysis is the repo's static-analysis core: a minimal,
// stdlib-only re-implementation of the golang.org/x/tools/go/analysis
// vocabulary — Analyzer, Pass, Diagnostic — plus a whole-program loader
// and the `//balint:allow` suppression mechanism the balint suite
// (cmd/balint, internal/analysis/*) is built on.
//
// Why not golang.org/x/tools itself: this module is dependency-free and
// builds offline, and the contracts balint enforces (map-iteration
// determinism on report paths, lean-tier API discipline) are
// whole-program reachability properties. x/tools' unitchecker protocol
// analyzes one package at a time with fact propagation; loading the
// entire module into a single type universe (go/parser + go/types with
// the stdlib source importer) makes the call-graph analyzers both
// simpler and stronger. The API shape deliberately mirrors x/tools so
// analyzers could be ported onto the real framework if the dependency
// ever lands.
//
// Suppression: a diagnostic is silenced by a comment of the form
//
//	//balint:allow <analyzer> <reason>
//
// on the flagged line (trailing) or on the line directly above it. The
// reason is mandatory and the directive silences exactly the named
// analyzer; a malformed directive (missing reason, unknown analyzer) is
// itself reported as an unsuppressable "balint" diagnostic.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named check over a package in the context of the whole
// loaded program. The first line of Doc is the one-line summary listing
// UIs print (`balint -list`, `baexp lint -list`).
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Summary returns the first line of Doc.
func (a *Analyzer) Summary() string {
	for i := 0; i < len(a.Doc); i++ {
		if a.Doc[i] == '\n' {
			return a.Doc[:i]
		}
	}
	return a.Doc
}

// Diagnostic is one reported finding, resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	// Suppressed marks diagnostics silenced by a //balint:allow
	// directive; Reason carries the directive's justification.
	Suppressed bool
	Reason     string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Package is one loaded, type-checked package of the program.
type Package struct {
	// Path is the import path ("expensive/internal/sim").
	Path string
	// Dir is the directory the package was loaded from.
	Dir string
	// Files are the parsed non-test sources, in file-name order.
	Files []*ast.File
	// Types and Info are the go/types results.
	Types *types.Package
	Info  *types.Info
	// directives are the parsed //balint: comments, per file line.
	directives []directive
}

// Program is the whole loaded module (or fixture workspace): every
// package shares one FileSet and one type universe, so types.Object
// identities are comparable across packages — what the call-graph
// analyzers rely on.
type Program struct {
	Fset *token.FileSet
	// Packages in import-path order.
	Packages []*Package
	byPath   map[string]*Package
	// Cache holds per-program computations shared across the per-package
	// passes of one analyzer (call graphs, reachability sets). Keyed by
	// analyzer-chosen strings; not for cross-analyzer communication.
	Cache map[string]any
}

// Package returns the loaded package with the given import path.
func (p *Program) Package(path string) *Package { return p.byPath[path] }

// Pass carries one (analyzer, package) unit of work.
type Pass struct {
	Analyzer *Analyzer
	Program  *Program
	Pkg      *Package

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Program.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of expression e in this package, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

// FuncObject resolves the *types.Func a call or reference expression
// statically targets: a plain identifier, a package-qualified function,
// a method selection, or a method value. It returns nil for dynamic
// targets (function-typed variables and fields, interface values are
// still resolved to the interface method).
func FuncObject(info *types.Info, e ast.Expr) *types.Func {
	switch e := Unparen(e).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[e].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[e.Sel].(*types.Func)
		return fn
	}
	return nil
}

// Run executes every analyzer over every package of the program,
// applies the //balint:allow suppressions, validates directives against
// knownNames (defaulting to the analyzers run), and returns all
// diagnostics — suppressed ones included, marked — sorted by position.
func Run(prog *Program, analyzers []*Analyzer, knownNames []string) ([]Diagnostic, error) {
	if knownNames == nil {
		for _, a := range analyzers {
			knownNames = append(knownNames, a.Name)
		}
	}
	known := make(map[string]bool, len(knownNames))
	for _, n := range knownNames {
		known[n] = true
	}

	var diags []Diagnostic
	for _, pkg := range prog.Packages {
		for _, d := range pkg.directives {
			if d.malformed != "" {
				diags = append(diags, Diagnostic{
					Pos:      d.pos,
					Analyzer: DirectiveAnalyzer,
					Message:  d.malformed,
				})
			} else if !known[d.analyzer] {
				diags = append(diags, Diagnostic{
					Pos:      d.pos,
					Analyzer: DirectiveAnalyzer,
					Message:  fmt.Sprintf("//balint:allow names unknown analyzer %q", d.analyzer),
				})
			}
		}
	}

	for _, a := range analyzers {
		for _, pkg := range prog.Packages {
			pass := &Pass{Analyzer: a, Program: prog, Pkg: pkg, diags: &diags}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}

	// Apply suppressions: a well-formed directive silences diagnostics of
	// its analyzer on its own line and on the line directly below.
	index := make(map[string]map[int]directive)
	for _, pkg := range prog.Packages {
		for _, d := range pkg.directives {
			if d.malformed != "" {
				continue
			}
			byLine := index[d.pos.Filename]
			if byLine == nil {
				byLine = make(map[int]directive)
				index[d.pos.Filename] = byLine
			}
			byLine[d.pos.Line] = d
		}
	}
	for i := range diags {
		dg := &diags[i]
		if dg.Analyzer == DirectiveAnalyzer {
			continue // directive problems are never suppressable
		}
		byLine := index[dg.Pos.Filename]
		for _, line := range [2]int{dg.Pos.Line, dg.Pos.Line - 1} {
			if d, ok := byLine[line]; ok && d.analyzer == dg.Analyzer {
				dg.Suppressed = true
				dg.Reason = d.reason
				break
			}
		}
	}

	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		switch {
		case a.Pos.Filename != b.Pos.Filename:
			return a.Pos.Filename < b.Pos.Filename
		case a.Pos.Line != b.Pos.Line:
			return a.Pos.Line < b.Pos.Line
		case a.Pos.Column != b.Pos.Column:
			return a.Pos.Column < b.Pos.Column
		case a.Analyzer != b.Analyzer:
			return a.Analyzer < b.Analyzer
		default:
			return a.Message < b.Message
		}
	})
	return diags, nil
}

// Unparen strips parentheses around e. (ast.Unparen needs go1.22; the
// module language version is 1.21.)
func Unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// Unsuppressed filters diags down to the findings that fail a lint run.
func Unsuppressed(diags []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if !d.Suppressed {
			out = append(out, d)
		}
	}
	return out
}
