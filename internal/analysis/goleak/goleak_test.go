package goleak_test

import (
	"testing"

	"expensive/internal/analysis"
	"expensive/internal/analysis/analysistest"
	"expensive/internal/analysis/goleak"
)

func TestGoleak(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{goleak.Analyzer},
		"expensive/internal/dist", "outside")
}
