// Package goleak implements the balint analyzer that demands a shutdown
// path for every goroutine launched in the concurrent subsystems (dist,
// transport, smr, obs, churn). The worker-churn soak kills and respawns
// processes for hours; one goroutine that outlives its owner leaks a
// connection or a timer per churn event and the harness drowns. A
// launch is provably stoppable when every unbounded loop in what it
// runs either receives from a shutdown channel (ctx.Done(), or a
// channel named like done/stop/quit/close) or is a Recv/Accept loop
// that returns on error once its endpoint closes. Bounded loops —
// conditioned, range — need no proof.
//
// The proof looks at the launched body plus one level of statically
// resolved module callees: `go h.run()` is judged by run's body, and
// `go func(){ w.Run() }()` by the literal plus Run. Launches whose
// target has no body in the module (stdlib, dynamic calls through
// function values or interfaces) cannot be judged at all and are
// findings by default — the //balint:allow reason is where the
// lifecycle argument gets written down, as with http.Server.Serve,
// whose accept loop is tied to DebugServer.Close.
package goleak

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"

	"expensive/internal/analysis"
	"expensive/internal/analysis/callgraph"
)

// Analyzer is the goleak analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "goleak",
	Doc: "flags goroutines in the concurrent subsystems without a provable shutdown path\n\n" +
		"Every go statement in dist, transport, smr and obs (churn and the\n" +
		"transport substrates included) must be stoppable: unbounded loops\n" +
		"need a done/ctx receive or a Recv/Accept return, and launches of\n" +
		"bodiless targets need a written lifecycle argument in a\n" +
		"//balint:allow reason.",
	Run: run,
}

// scopes are the package prefixes whose goroutines must prove a
// shutdown path: the long-lived concurrent subsystems the churn soak
// exercises. dist covers churn, transport covers the substrates.
var scopes = []string{
	"expensive/internal/dist",
	"expensive/internal/obs",
	"expensive/internal/smr",
	"expensive/internal/transport",
}

func inScope(path string) bool {
	for _, s := range scopes {
		if path == s || strings.HasPrefix(path, s+"/") {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path) {
		return nil
	}
	g := callgraph.Of(pass.Program)
	check := func(node *callgraph.Node) {
		if node == nil {
			return
		}
		for _, site := range node.GoSites {
			checkSite(pass, g, site)
		}
	}
	// Walk the package's declared functions in file order: the go sites
	// recorded on their graph nodes are exactly the go statements in this
	// package's files (literals flatten into the enclosing declaration).
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fn, _ := pass.Pkg.Info.Defs[fd.Name].(*types.Func); fn != nil {
				check(g.Node(fn))
			}
		}
	}
	// Package-level variable initializers launching goroutines land on
	// the synthetic init node.
	check(g.InitNode(pass.Pkg))
	return nil
}

// checkSite judges one go statement.
func checkSite(pass *analysis.Pass, g *callgraph.Graph, site callgraph.GoSite) {
	var root *ast.BlockStmt
	switch {
	case site.Lit != nil:
		root = site.Lit.Body
	case site.Target != nil:
		node := g.Node(site.Target)
		if node == nil || node.Decl == nil || node.Decl.Body == nil {
			pass.Reportf(site.Stmt.Pos(),
				"goroutine launches %s, which has no body in the module: not provably stoppable — tie its lifetime to a Close and record the argument in a //balint:allow reason",
				site.Target.FullName())
			return
		}
		root = node.Decl.Body
	default:
		pass.Reportf(site.Stmt.Pos(),
			"goroutine launches a dynamic call: not provably stoppable — launch a named function, or record the lifecycle argument in a //balint:allow reason")
		return
	}

	// The proof obligation: the launched body plus one level of static
	// module callees.
	bodies := []*ast.BlockStmt{root}
	seen := map[*ast.BlockStmt]bool{root: true}
	for _, body := range directCallees(pass, g, root) {
		if !seen[body] {
			seen[body] = true
			bodies = append(bodies, body)
		}
	}
	for _, body := range bodies {
		if pos, ok := unstoppableLoop(body); ok {
			p := pass.Program.Fset.Position(pos)
			pass.Reportf(site.Stmt.Pos(),
				"goroutine is not provably stoppable: unbounded loop at %s:%d has no done/ctx receive and no Recv/Accept return",
				filepath.Base(p.Filename), p.Line)
			return
		}
	}
}

// directCallees resolves the static module calls made directly by body,
// returning their bodies. One level only, by contract: deeper loops are
// the callee's own obligation when it is itself launched, and launching
// a deep wrapper around an unbounded loop should restructure, not lint
// its way through.
func directCallees(pass *analysis.Pass, g *callgraph.Graph, body *ast.BlockStmt) []*ast.BlockStmt {
	var out []*ast.BlockStmt
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.FuncObject(pass.Pkg.Info, call.Fun)
		if fn == nil {
			return true
		}
		if node := g.Node(fn); node != nil && node.Decl != nil && node.Decl.Body != nil {
			out = append(out, node.Decl.Body)
		}
		return true
	})
	return out
}

// unstoppableLoop finds the first unbounded for loop in body with no
// shutdown path, returning its position. Unbounded means no loop
// condition (`for {` and `for ; ; {` alike — an init/post clause bounds
// nothing). A loop is cleared by a receive from a shutdown channel
// (callgraph.DoneChan) or by a Recv/Accept call paired with a return
// statement — the endpoint-close-tied reader idiom, where Close makes
// Recv fail and the error path exits. Nested function literals are
// skipped in the clearing scan: their receives and returns run on some
// other goroutine's clock.
func unstoppableLoop(body *ast.BlockStmt) (token.Pos, bool) {
	var found token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		if found != token.NoPos {
			return false
		}
		loop, ok := n.(*ast.ForStmt)
		if !ok || loop.Cond != nil {
			return true
		}
		if !stoppable(loop.Body) {
			found = loop.Pos()
			return false
		}
		return true
	})
	return found, found != token.NoPos
}

// stoppable scans one unbounded loop body for a shutdown path.
func stoppable(body *ast.BlockStmt) bool {
	doneRecv, recvCall, returns := false, false, false
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if s.Op == token.ARROW && callgraph.DoneChan(s.X) {
				doneRecv = true
			}
		case *ast.CallExpr:
			if sel, ok := analysis.Unparen(s.Fun).(*ast.SelectorExpr); ok {
				if sel.Sel.Name == "Recv" || sel.Sel.Name == "Accept" {
					recvCall = true
				}
			}
		case *ast.ReturnStmt:
			returns = true
		}
		return true
	})
	return doneRecv || (recvCall && returns)
}
