// Fixture covering every goleak verdict: done-channel and ctx-style
// selects, Recv/Accept reader loops, bounded loops and one-level callee
// proofs stay clean; unbounded loops without a shutdown path, bodiless
// targets and dynamic launches are findings.
package dist

import "time"

type conn struct{}

func (conn) Recv() (int, error) { return 0, nil }

type ctxLike struct{}

func (ctxLike) Done() <-chan struct{} { return nil }

type worker struct {
	stopCh chan struct{}
	ch     chan int
}

// run owns the done-select loop the one-level proof finds.
func (w *worker) run() {
	for {
		select {
		case <-w.stopCh:
			return
		case v := <-w.ch:
			_ = v
		}
	}
}

func work() {}

// Clean launches: every shape with a provable shutdown path.
func Clean(c conn, ctx ctxLike, w *worker, n int) {
	done := make(chan struct{})
	go func() { // done-channel select
		for {
			select {
			case <-done:
				return
			case v := <-w.ch:
				_ = v
			}
		}
	}()
	go func() { // ctx.Done() receive
		for {
			select {
			case <-ctx.Done():
				return
			}
		}
	}()
	go reader(c) // Recv loop returning on error
	go func() {  // bounded loop needs no proof
		for i := 0; i < n; i++ {
			work()
		}
	}()
	go func() { w.run() }() // one level deep: run's loop is cleared
}

// reader is the endpoint-close-tied idiom: Close makes Recv fail and
// the error path exits the loop.
func reader(c conn) {
	for {
		if _, err := c.Recv(); err != nil {
			return
		}
	}
}

// Leaky launches: findings.
func Leaky(fn func()) {
	go func() { // want "unbounded loop at dist.go:"
		for {
			work()
		}
	}()
	go spin()                  // want "unbounded loop at dist.go:"
	go time.Sleep(time.Second) // want "no body in the module"
	go fn()                    // want "dynamic call"
}

// spin has the unbounded loop the named-target judgment must find.
func spin() {
	for {
		work()
	}
}
