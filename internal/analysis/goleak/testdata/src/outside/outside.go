// Fixture outside the concurrent subsystems: the same leaky shape is
// not goleak's business here.
package outside

func work() {}

func Leaky() {
	go func() {
		for {
			work()
		}
	}()
}
