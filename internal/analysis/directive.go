package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// DirectiveAnalyzer is the pseudo-analyzer name malformed //balint:
// directives are reported under. These diagnostics cannot be suppressed:
// a broken suppression must never silently suppress.
const DirectiveAnalyzer = "balint"

// directive is one parsed //balint: comment.
type directive struct {
	pos      token.Position
	analyzer string
	reason   string
	// malformed carries the error message when the directive does not
	// parse; analyzer/reason are then empty.
	malformed string
}

const directivePrefix = "//balint:"

// parseDirectives extracts every //balint: comment of a parsed file.
// Like //go: directives, the marker must open the comment with no space.
func parseDirectives(fset *token.FileSet, file *ast.File) []directive {
	var out []directive
	for _, group := range file.Comments {
		for _, c := range group.List {
			text, ok := strings.CutPrefix(c.Text, directivePrefix)
			if !ok {
				continue
			}
			d := directive{pos: fset.Position(c.Pos())}
			verb, rest, _ := strings.Cut(text, " ")
			if verb != "allow" {
				d.malformed = "unknown //balint: directive verb \"" + verb + "\" (only \"allow\" exists)"
				out = append(out, d)
				continue
			}
			name, reason, _ := strings.Cut(strings.TrimSpace(rest), " ")
			reason = strings.TrimSpace(reason)
			switch {
			case name == "":
				d.malformed = "//balint:allow needs an analyzer name and a reason"
			case reason == "":
				d.malformed = "//balint:allow " + name + " needs a reason"
			default:
				d.analyzer, d.reason = name, reason
			}
			out = append(out, d)
		}
	}
	return out
}
