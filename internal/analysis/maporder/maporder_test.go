package maporder_test

import (
	"testing"

	"expensive/internal/analysis"
	"expensive/internal/analysis/analysistest"
	"expensive/internal/analysis/maporder"
)

func TestMaporder(t *testing.T) {
	analysistest.Run(t, "testdata", []*analysis.Analyzer{maporder.Analyzer}, "a")
}
