// Fixture for the maporder analyzer: Save anchors a JSON report path;
// everything it reaches is checked, everything else is not.
package a

import (
	"encoding/json"
	"sort"
)

type Report struct {
	Keys    []string
	Buckets []int
}

// Save is a maporder root: it calls a JSON encoder.
func Save(m map[string]int) ([]byte, error) {
	r := Report{Keys: fold(m), Buckets: foldStruct(m).Buckets}
	bad(m)
	collectNoSort(m)
	return json.Marshal(r)
}

// fold uses the canonical collect-append-sort idiom: clean.
func fold(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

type hist struct {
	Buckets []int
}

// foldStruct appends into a struct field and sorts it: clean.
func foldStruct(m map[string]int) hist {
	var h hist
	for _, v := range m {
		h.Buckets = append(h.Buckets, v)
	}
	sort.Ints(h.Buckets)
	return h
}

// bad iterates the map directly on the report path.
func bad(m map[string]int) {
	for k := range m { // want "iteration order is nondeterministic"
		_ = k
	}
}

// collectNoSort appends but never sorts the destination.
func collectNoSort(m map[string]int) []string {
	var keys []string
	for k := range m { // want "iteration order is nondeterministic"
		keys = append(keys, k)
	}
	return keys
}

// unreachable is on no encoding path: clean even though it ranges a map.
func unreachable(m map[string]int) {
	for k := range m {
		_ = k
	}
}
