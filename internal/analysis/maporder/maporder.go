// Package maporder implements the balint analyzer that flags `range`
// over map types in functions reachable from JSON-encoding, report-fold
// or corpus-save call paths. Go randomizes map iteration order, so one
// unsorted range in a fold silently breaks the byte-identical
// serial-vs-parallel report diffs the CI determinism gates rely on.
//
// A map range is clean when it only collects keys or values into slices
// that are sorted later in the same statement list (the repo's canonical
// collect-append-sort idiom), e.g.:
//
//	for v := range set {
//		keys = append(keys, v)
//	}
//	sort.Strings(keys)
package maporder

import (
	"go/ast"
	"go/types"

	"expensive/internal/analysis"
	"expensive/internal/analysis/callgraph"
)

// Analyzer is the maporder analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc: "flags map ranges on report/corpus encoding paths unless keys are sorted first\n\n" +
		"Map iteration order is randomized; any range over a map in a function\n" +
		"reachable from a JSON-encoding call path must collect and sort keys\n" +
		"before iterating, or the bytes of reports and corpora stop being\n" +
		"deterministic across runs and parallelism levels.",
	Run: run,
}

// encoders are the JSON entry points whose callers anchor report paths.
var encoders = map[string]bool{
	"encoding/json.Marshal":           true,
	"encoding/json.MarshalIndent":     true,
	"(*encoding/json.Encoder).Encode": true,
}

// sorters make a collected slice deterministic again: sorting functions
// plus the repo's canonicalizing constructors (a proc.Set is a bitset,
// so NewSet is insertion-order-independent).
var sorters = map[string]bool{
	"sort.Strings":                   true,
	"sort.Ints":                      true,
	"sort.Float64s":                  true,
	"sort.Slice":                     true,
	"sort.SliceStable":               true,
	"sort.Sort":                      true,
	"sort.Stable":                    true,
	"slices.Sort":                    true,
	"slices.SortFunc":                true,
	"slices.SortStableFunc":          true,
	"expensive/internal/msg.Sort":    true,
	"expensive/internal/proc.NewSet": true,
}

const reachKey = "maporder.reachable"

func run(pass *analysis.Pass) error {
	g := callgraph.Of(pass.Program)
	reach, ok := pass.Program.Cache[reachKey].(map[*callgraph.Node]bool)
	if !ok {
		reach = reachable(pass.Program, g)
		pass.Program.Cache[reachKey] = reach
	}

	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
			if fn == nil || !reach[g.Node(fn)] {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// reachable computes the functions reachable from any module function
// that calls a JSON encoder, roots included.
func reachable(prog *analysis.Program, g *callgraph.Graph) map[*callgraph.Node]bool {
	var roots []*callgraph.Node
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if !callsEncoder(pkg, fd.Body) {
					continue
				}
				if fn, _ := pkg.Info.Defs[fd.Name].(*types.Func); fn != nil {
					if n := g.Node(fn); n != nil {
						roots = append(roots, n)
					}
				}
			}
		}
	}
	return g.Reachable(roots, nil)
}

func callsEncoder(pkg *analysis.Package, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := analysis.FuncObject(pkg.Info, call.Fun); fn != nil && encoders[fn.FullName()] {
			found = true
		}
		return !found
	})
	return found
}

// checkFunc flags non-exempt map ranges in one function body.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	// Walk every statement list so a range can be matched against the
	// statements that follow it in its own block.
	var walkList func(list []ast.Stmt)
	var walkStmt func(s ast.Stmt, rest []ast.Stmt)
	walkList = func(list []ast.Stmt) {
		for i, s := range list {
			walkStmt(s, list[i+1:])
		}
	}
	walkStmt = func(s ast.Stmt, rest []ast.Stmt) {
		switch s := s.(type) {
		case *ast.RangeStmt:
			if isMapType(pass.TypeOf(s.X)) && !sortedCollect(pass, s, rest) {
				pass.Reportf(s.For,
					"range over map %s on a report-encoding path: iteration order is nondeterministic; collect and sort keys first",
					types.TypeString(pass.TypeOf(s.X), types.RelativeTo(pass.Pkg.Types)))
			}
			walkList(s.Body.List)
		case *ast.BlockStmt:
			walkList(s.List)
		case *ast.IfStmt:
			walkList(s.Body.List)
			if s.Else != nil {
				walkStmt(s.Else, nil)
			}
		case *ast.ForStmt:
			walkList(s.Body.List)
		case *ast.SwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					walkList(cc.Body)
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					walkList(cc.Body)
				}
			}
		case *ast.SelectStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					walkList(cc.Body)
				}
			}
		case *ast.LabeledStmt:
			walkStmt(s.Stmt, rest)
		case *ast.GoStmt, *ast.DeferStmt, *ast.ExprStmt, *ast.AssignStmt, *ast.DeclStmt, *ast.ReturnStmt:
			// Function literals inside these get their own FuncDecl-less
			// bodies; ranges inside them belong to the enclosing function's
			// flattened node, so walk them too.
			ast.Inspect(s, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					walkList(fl.Body.List)
					return false
				}
				return true
			})
		}
	}
	walkList(fd.Body.List)
}

func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// dest identifies an append destination: a plain variable, or a field
// selection on a variable (h.Buckets).
type dest struct {
	base  types.Object
	field types.Object // nil for a plain variable
}

// destOf resolves an expression to a destination key.
func destOf(info *types.Info, e ast.Expr) (dest, bool) {
	switch e := analysis.Unparen(e).(type) {
	case *ast.Ident:
		if obj := info.Uses[e]; obj != nil {
			return dest{base: obj}, true
		}
	case *ast.SelectorExpr:
		base, ok := analysis.Unparen(e.X).(*ast.Ident)
		if !ok {
			return dest{}, false
		}
		obj, field := info.Uses[base], info.Uses[e.Sel]
		if obj != nil && field != nil {
			return dest{base: obj, field: field}, true
		}
	}
	return dest{}, false
}

// sortedCollect reports whether the range body only appends to slices
// that are sorted by a later statement in the same list.
func sortedCollect(pass *analysis.Pass, rng *ast.RangeStmt, rest []ast.Stmt) bool {
	info := pass.Pkg.Info
	dests := map[dest]bool{}
	for _, s := range rng.Body.List {
		as, ok := s.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return false
		}
		lhs, ok := destOf(info, as.Lhs[0])
		if !ok {
			return false
		}
		call, ok := analysis.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || len(call.Args) < 2 {
			return false
		}
		fun, ok := analysis.Unparen(call.Fun).(*ast.Ident)
		if !ok || fun.Name != "append" {
			return false
		}
		if b, ok := info.Uses[fun].(*types.Builtin); !ok || b.Name() != "append" {
			return false
		}
		first, ok := destOf(info, call.Args[0])
		if !ok || first != lhs {
			return false
		}
		dests[lhs] = true
	}
	if len(dests) == 0 {
		return false
	}
	// Every destination must be handed to a sorter later in this block.
	sorted := map[dest]bool{}
	for _, s := range rest {
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.FuncObject(info, call.Fun)
			if fn == nil || !sorters[fn.FullName()] {
				return true
			}
			for _, arg := range call.Args {
				if d, ok := destOf(info, arg); ok && dests[d] {
					sorted[d] = true
				}
			}
			return true
		})
	}
	for d := range dests {
		if !sorted[d] {
			return false
		}
	}
	return true
}
