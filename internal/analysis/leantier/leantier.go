// Package leantier implements the balint analyzer that flags uses of
// full-trace-only APIs from code reachable from lean (RecordDecisions)
// probe loops. The lean tier records only decisions and message counts;
// APIs that reconstruct full message traces (sim.Conforms,
// omission.Validate, Behavior.AllSent/...) return errors or empty data
// on lean executions. PR 4's runtime rejections catch such calls only
// after a probe has already burned; this analyzer catches them at build
// time.
//
// Call sites that are dynamically guarded — checked against the
// recording tier before touching the full-trace API — are annotated
// with //balint:allow leantier and a reason naming the guard.
package leantier

import (
	"go/ast"
	"go/types"

	"expensive/internal/analysis"
	"expensive/internal/analysis/callgraph"
)

// Analyzer is the leantier analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "leantier",
	Doc: "flags full-trace-only APIs reachable from RecordDecisions probe loops\n\n" +
		"Functions reachable from a lean-tier probe loop (one that mentions\n" +
		"sim.RecordDecisions) must not call APIs that need the full message\n" +
		"trace — sim.Conforms, omission.Validate, Behavior.AllSent and\n" +
		"friends — unless the call is tier-guarded and annotated.",
	Run: run,
}

// sinks are the full-trace-only APIs. Behavior.Frag and the All* slices
// are empty on lean traces; Conforms and Validate reject them outright.
// MessagesSentBy is deliberately absent: it has a lean-safe count path.
var sinks = map[string]bool{
	"expensive/internal/sim.Conforms":                      true,
	"expensive/internal/omission.Validate":                 true,
	"(*expensive/internal/sim.Behavior).AllSent":           true,
	"(*expensive/internal/sim.Behavior).AllSendOmitted":    true,
	"(*expensive/internal/sim.Behavior).AllReceiveOmitted": true,
	"(*expensive/internal/sim.Behavior).Frag":              true,
}

const (
	simPath  = "expensive/internal/sim"
	leanName = "RecordDecisions"
	reachKey = "leantier.reachable"
)

func run(pass *analysis.Pass) error {
	g := callgraph.Of(pass.Program)
	reach, ok := pass.Program.Cache[reachKey].(map[*callgraph.Node]bool)
	if !ok {
		reach = reachable(pass.Program, g)
		pass.Program.Cache[reachKey] = reach
	}

	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			node := g.Node(fn)
			if !reach[node] || isSinkNode(node) {
				// Sink bodies themselves already reject lean at runtime;
				// diving into them would flood their internals.
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				if sfn, ok := info.Uses[id].(*types.Func); ok && sinks[sfn.FullName()] {
					pass.Reportf(id.Pos(),
						"%s needs the full message trace but is reachable from a RecordDecisions probe loop; guard on the recording tier or restructure",
						sfn.FullName())
				}
				return true
			})
		}
	}
	return nil
}

func isSinkNode(n *callgraph.Node) bool {
	return n != nil && n.Func != nil && sinks[n.Func.FullName()]
}

// reachable computes the functions reachable from lean probe roots —
// functions whose bodies mention the sim.RecordDecisions constant —
// without expanding through the sinks themselves.
func reachable(prog *analysis.Program, g *callgraph.Graph) map[*callgraph.Node]bool {
	var leanConst types.Object
	if sim := prog.Package(simPath); sim != nil {
		leanConst = sim.Types.Scope().Lookup(leanName)
	}
	if leanConst == nil {
		return map[*callgraph.Node]bool{}
	}
	var roots []*callgraph.Node
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if !mentions(pkg.Info, fd.Body, leanConst) {
					continue
				}
				if fn, _ := pkg.Info.Defs[fd.Name].(*types.Func); fn != nil {
					if n := g.Node(fn); n != nil {
						roots = append(roots, n)
					}
				}
			}
		}
	}
	return g.Reachable(roots, isSinkNode)
}

func mentions(info *types.Info, body ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}
