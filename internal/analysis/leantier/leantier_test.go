package leantier_test

import (
	"testing"

	"expensive/internal/analysis"
	"expensive/internal/analysis/analysistest"
	"expensive/internal/analysis/leantier"
)

func TestLeantier(t *testing.T) {
	diags := analysistest.Run(t, "testdata", []*analysis.Analyzer{leantier.Analyzer}, "probe")
	// The annotated guarded call must be present but suppressed — deleting
	// the //balint:allow in the fixture turns it into a failure.
	suppressed := 0
	for _, d := range diags {
		if d.Suppressed {
			suppressed++
			if d.Reason == "" {
				t.Errorf("suppressed diagnostic without a reason: %s", d)
			}
		}
	}
	if suppressed != 1 {
		t.Errorf("suppressed = %d, want exactly the annotated AllSent call", suppressed)
	}
}
