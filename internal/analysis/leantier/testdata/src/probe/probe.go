// Fixture for the leantier analyzer: LeanProbe mentions RecordDecisions,
// making it (and everything it reaches) lean-tier code.
package probe

import (
	"expensive/internal/omission"
	"expensive/internal/sim"
)

// LeanProbe is a leantier root.
func LeanProbe() error {
	cfg := sim.Config{Recording: sim.RecordDecisions}
	e := sim.Run(cfg)
	if err := omission.Validate(e); err != nil { // want "needs the full message trace"
		return err
	}
	_ = guarded(e)
	_ = e.MessagesSentBy() // lean-safe count path: clean
	return helper(e)
}

// helper is reachable from LeanProbe, so its sink call is flagged too.
func helper(e *sim.Execution) error {
	return sim.Conforms(e) // want "needs the full message trace"
}

// guarded is reachable but its sink use is tier-guarded and annotated.
func guarded(e *sim.Execution) []sim.Message {
	if e.Recording != sim.RecordFull {
		return nil
	}
	//balint:allow leantier guarded by the Recording check above
	return e.Behaviors[0].AllSent()
}

// FullProbe never mentions the lean tier: identical calls are clean.
func FullProbe() error {
	e := sim.Run(sim.Config{Recording: sim.RecordFull})
	if err := omission.Validate(e); err != nil {
		return err
	}
	return sim.Conforms(e)
}
