// Fixture stub of the real omission package.
package omission

import "expensive/internal/sim"

func Validate(e *sim.Execution) error { return nil }
