// Fixture stub of the real sim package: just enough surface for the
// leantier analyzer's roots (RecordDecisions) and sinks (Conforms,
// Behavior.All*/Frag).
package sim

type Recording int

const (
	RecordFull Recording = iota
	RecordDecisions
)

type Message struct{}

type Fragment struct {
	Received []Message
}

type LeanTrace struct {
	Sent []int
}

type Behavior struct {
	Lean      *LeanTrace
	Fragments []Fragment
}

func (b *Behavior) Frag(r int) Fragment { return Fragment{} }

func (b *Behavior) AllSent() []Message { return nil }

func (b *Behavior) AllSendOmitted() []Message { return nil }

func (b *Behavior) AllReceiveOmitted() []Message { return nil }

type Execution struct {
	Recording Recording
	Behaviors []*Behavior
}

// MessagesSentBy is lean-safe: counting never needs the full trace.
func (e *Execution) MessagesSentBy() int { return 0 }

type Config struct {
	Recording Recording
}

type Factory func() *Behavior

func Run(cfg Config) *Execution { return &Execution{Recording: cfg.Recording} }

func Conforms(e *Execution) error { return nil }
