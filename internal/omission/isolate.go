package omission

import (
	"fmt"

	"expensive/internal/msg"
	"expensive/internal/proc"
	"expensive/internal/sim"
)

// Isolation returns the fault plan of Definition 1: every process of group
// is corrupted, commits no send-omission faults, and receive-omits exactly
// the messages arriving from outside the group in rounds >= fromRound.
func Isolation(group proc.Set, fromRound int) sim.OmissionPlan {
	return sim.OmissionPlan{
		F: group,
		ReceiveFn: func(m msg.Message) bool {
			return group.Contains(m.Receiver) && !group.Contains(m.Sender) && m.Round >= fromRound
		},
	}
}

// CheckIsolated verifies that, in execution e, group is isolated from
// fromRound exactly as Definition 1 demands: members are faulty, never
// send-omit, and receive-omit a message iff it comes from outside the
// group in a round >= fromRound.
func CheckIsolated(e *sim.Execution, group proc.Set, fromRound int) error {
	for _, id := range group.Members() {
		if !e.Faulty.Contains(id) {
			return fmt.Errorf("isolation: %s is not faulty", id)
		}
		b := e.Behavior(id)
		//balint:allow leantier Definition 1 checks need full traces; RunIsolatedAt gates this on RecordFull
		if n := len(b.AllSendOmitted()); n > 0 {
			return fmt.Errorf("isolation: %s send-omits %d messages", id, n)
		}
		for _, f := range b.Fragments {
			for _, m := range f.Received {
				if !group.Contains(m.Sender) && m.Round >= fromRound {
					return fmt.Errorf("isolation: %s received %v from outside the group after round %d",
						id, m, fromRound)
				}
			}
			for _, m := range f.ReceiveOmitted {
				if group.Contains(m.Sender) {
					return fmt.Errorf("isolation: %s receive-omitted in-group message %v", id, m)
				}
				if m.Round < fromRound {
					return fmt.Errorf("isolation: %s receive-omitted %v before round %d", id, m, fromRound)
				}
			}
		}
	}
	return nil
}

// RunIsolated runs factory with every process proposing prop and the given
// group isolated from round fromRound — the executions E_G(k)_b of
// Table 1. The returned execution is validated against Appendix A.1.6.
func RunIsolated(n, t int, factory sim.Factory, prop msg.Value, group proc.Set, fromRound, horizon int) (*sim.Execution, error) {
	return RunIsolatedAt(n, t, factory, prop, group, fromRound, horizon, sim.RecordFull)
}

// RunIsolatedAt is RunIsolated at an explicit recording tier. Lean
// executions skip the Appendix A.1.6 and Definition 1 validation (both
// need message identities); callers that probe lean re-run the same
// deterministic configuration at sim.RecordFull — where the checks do
// run — before using the trace as evidence.
func RunIsolatedAt(n, t int, factory sim.Factory, prop msg.Value, group proc.Set, fromRound, horizon int, rec sim.Recording) (*sim.Execution, error) {
	proposals := make([]msg.Value, n)
	for i := range proposals {
		proposals[i] = prop
	}
	cfg := sim.Config{N: n, T: t, Proposals: proposals, MaxRounds: horizon, Recording: rec}
	exec, err := sim.Run(cfg, factory, Isolation(group, fromRound))
	if err != nil {
		return nil, fmt.Errorf("run isolated %v from round %d: %w", group, fromRound, err)
	}
	if rec != sim.RecordFull {
		return exec, nil
	}
	//balint:allow leantier guarded: non-full recordings returned early above
	if err := Validate(exec); err != nil {
		return nil, fmt.Errorf("isolated execution invalid: %w", err)
	}
	if err := CheckIsolated(exec, group, fromRound); err != nil {
		return nil, err
	}
	return exec, nil
}
