// Package omission implements the omission-failure machinery of §3 and
// Appendix A: the execution-validity guarantees, group isolation
// (Definition 1), mergeability (Definition 2), indistinguishability, the
// swap_omission procedure (Algorithm 4) and the merge procedure
// (Algorithm 5).
//
// Everything operates on sim.Execution traces. The paper proves its
// constructed objects are executions; this package *checks* them instead —
// every construction is re-validated against the five guarantees of
// Appendix A.1.6, turning each proof obligation into a runtime assertion.
package omission

import (
	"fmt"

	"expensive/internal/msg"
	"expensive/internal/proc"
	"expensive/internal/sim"
)

// Validate checks the five guarantees an Appendix A.1.6 execution must
// satisfy: Faulty processes, Composition, Send-validity, Receive-validity
// and Omission-validity. It returns a descriptive error naming the first
// violated guarantee.
func Validate(e *sim.Execution) error {
	if e.Recording != sim.RecordFull {
		return fmt.Errorf("validate: requires a full trace, got recording level %q — re-run the configuration at sim.RecordFull", e.Recording)
	}
	// Faulty processes: F is a set of at most t processes within Π.
	if e.Faulty.Len() > e.T {
		return fmt.Errorf("faulty-processes: |F|=%d exceeds t=%d", e.Faulty.Len(), e.T)
	}
	if !e.Faulty.SubsetOf(proc.Universe(e.N)) {
		return fmt.Errorf("faulty-processes: F=%v not within Π", e.Faulty)
	}
	if len(e.Behaviors) != e.N {
		return fmt.Errorf("composition: %d behaviors for n=%d", len(e.Behaviors), e.N)
	}

	// Composition: every behavior is well-formed.
	for i, b := range e.Behaviors {
		if b.ID != proc.ID(i) {
			return fmt.Errorf("composition: behavior %d has ID %s", i, b.ID)
		}
		if err := validateBehavior(b); err != nil {
			return fmt.Errorf("composition: %s: %w", b.ID, err)
		}
	}

	// Index all successfully sent messages by identity.
	sent := make(map[msg.Key]msg.Message)
	for _, b := range e.Behaviors {
		for _, f := range b.Fragments {
			for _, m := range f.Sent {
				sent[m.Key()] = m
			}
		}
	}

	for _, b := range e.Behaviors {
		for _, f := range b.Fragments {
			// Receive-validity: everything received or receive-omitted was
			// successfully sent in the same round with the same payload.
			for _, in := range [2][]msg.Message{f.Received, f.ReceiveOmitted} {
				for _, m := range in {
					got, ok := sent[m.Key()]
					if !ok || got != m {
						return fmt.Errorf("receive-validity: %s holds %v which was never sent", b.ID, m)
					}
				}
			}
			// Omission-validity: omissions only at faulty processes.
			if (len(f.SendOmitted) > 0 || len(f.ReceiveOmitted) > 0) && !e.Faulty.Contains(b.ID) {
				return fmt.Errorf("omission-validity: correct %s commits omission faults in round %d", b.ID, f.Round)
			}
		}
	}

	// Send-validity: every sent message is received or receive-omitted by
	// its receiver in the same round. Checked in canonical message order
	// so the witness named by the error is deterministic.
	sentMsgs := make([]msg.Message, 0, len(sent))
	for _, m := range sent {
		sentMsgs = append(sentMsgs, m)
	}
	msg.Sort(sentMsgs)
	for _, m := range sentMsgs {
		rb := e.Behaviors[m.Receiver]
		f := rb.Frag(m.Round)
		if !containsMsg(f.Received, m) && !containsMsg(f.ReceiveOmitted, m) {
			return fmt.Errorf("send-validity: %v sent but neither received nor receive-omitted", m)
		}
	}
	return nil
}

func validateBehavior(b *sim.Behavior) error {
	decided := false
	var decision msg.Value
	for idx, f := range b.Fragments {
		if f.Round != idx+1 {
			return fmt.Errorf("fragment %d has round %d", idx, f.Round)
		}
		// Fragment conditions (3)-(10) of Appendix A.1.4.
		receivers := make(map[proc.ID]bool)
		for _, out := range [2][]msg.Message{f.Sent, f.SendOmitted} {
			for _, m := range out {
				if m.Round != f.Round {
					return fmt.Errorf("round %d: outgoing %v has wrong round", f.Round, m)
				}
				if m.Sender != b.ID {
					return fmt.Errorf("round %d: outgoing %v has sender != %s", f.Round, m, b.ID)
				}
				if m.Receiver == b.ID {
					return fmt.Errorf("round %d: self-message %v", f.Round, m)
				}
				if receivers[m.Receiver] {
					return fmt.Errorf("round %d: two messages to %s", f.Round, m.Receiver)
				}
				receivers[m.Receiver] = true
			}
		}
		senders := make(map[proc.ID]bool)
		for _, in := range [2][]msg.Message{f.Received, f.ReceiveOmitted} {
			for _, m := range in {
				if m.Round != f.Round {
					return fmt.Errorf("round %d: incoming %v has wrong round", f.Round, m)
				}
				if m.Receiver != b.ID {
					return fmt.Errorf("round %d: incoming %v has receiver != %s", f.Round, m, b.ID)
				}
				if m.Sender == b.ID {
					return fmt.Errorf("round %d: self-message %v", f.Round, m)
				}
				if senders[m.Sender] {
					return fmt.Errorf("round %d: two messages from %s", f.Round, m.Sender)
				}
				senders[m.Sender] = true
			}
		}
		// Behavior condition (6): decisions are stable.
		if decided {
			if !f.Decided || f.Decision != decision {
				return fmt.Errorf("round %d: decision changed after deciding %q", f.Round, decision)
			}
		} else if f.Decided {
			decided, decision = true, f.Decision
		}
	}
	return nil
}

func containsMsg(ms []msg.Message, m msg.Message) bool {
	for _, x := range ms {
		if x == m {
			return true
		}
	}
	return false
}

// Indistinguishable reports whether executions e1 and e2 are
// indistinguishable to process id: same proposal and identical received
// messages in every round (§3). On distinguishability it returns a
// descriptive error locating the first difference.
func Indistinguishable(e1, e2 *sim.Execution, id proc.ID) error {
	b1, b2 := e1.Behavior(id), e2.Behavior(id)
	if b1.Proposal != b2.Proposal {
		return fmt.Errorf("%s proposes %q vs %q", id, b1.Proposal, b2.Proposal)
	}
	rounds := max(len(b1.Fragments), len(b2.Fragments))
	for r := 1; r <= rounds; r++ {
		//balint:allow leantier §3 indistinguishability compares full received views; lowerbound drivers record full
		r1, r2 := b1.Frag(r).Received, b2.Frag(r).Received
		if !msg.SameSet(r1, r2) {
			return fmt.Errorf("%s receives different messages in round %d (%d vs %d msgs)",
				id, r, len(r1), len(r2))
		}
	}
	return nil
}

// MessagesFromTo returns the messages receive-omitted by p whose sender
// lies in from — the paper's M_{X→p} sets used by Lemma 2.
func MessagesFromTo(e *sim.Execution, from proc.Set, p proc.ID) []msg.Message {
	var out []msg.Message
	//balint:allow leantier Lemma 2 message sets exist only in full traces; callers construct them at RecordFull
	for _, m := range e.Behavior(p).AllReceiveOmitted() {
		if from.Contains(m.Sender) {
			out = append(out, m)
		}
	}
	return out
}
