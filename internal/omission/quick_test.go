package omission

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"expensive/internal/msg"
	"expensive/internal/proc"
	"expensive/internal/sim"
)

// TestEngineAlwaysProducesValidExecutions is the central soundness
// property: for random omission plans (random faulty sets, random drop
// patterns) the engine's trace always satisfies the five Appendix A.1.6
// guarantees and conforms to the machines that generated it.
func TestEngineAlwaysProducesValidExecutions(t *testing.T) {
	factory := echoFactory(tn, 3)
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var faulty proc.Set
		for faulty.Len() < 1+r.Intn(tt) {
			faulty = faulty.Add(proc.ID(r.Intn(tn)))
		}
		sendSeed, recvSeed := r.Int63(), r.Int63()
		plan := sim.OmissionPlan{
			F:         faulty,
			SendFn:    func(m msg.Message) bool { return pseudo(sendSeed, m) },
			ReceiveFn: func(m msg.Message) bool { return pseudo(recvSeed, m) },
		}
		props := make([]msg.Value, tn)
		for i := range props {
			props[i] = msg.Bit(r.Intn(2))
		}
		e, err := sim.Run(sim.Config{N: tn, T: tt, Proposals: props, MaxRounds: 8}, factory, plan)
		if err != nil {
			return false
		}
		if Validate(e) != nil {
			return false
		}
		return sim.Conforms(e, factory, proc.Set{}) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// pseudo derives a deterministic boolean from (seed, message identity).
func pseudo(seed int64, m msg.Message) bool {
	x := seed ^ int64(m.Sender)<<17 ^ int64(m.Receiver)<<7 ^ int64(m.Round)
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	return x&3 == 0
}

// TestSwapIdentityWithoutOmissions: swapping a process that never
// receive-omitted anything changes nothing except (possibly) shrinking the
// faulty set to the processes that actually misbehave.
func TestSwapIdentityWithoutOmissions(t *testing.T) {
	e := runFull(t, msg.Zero)
	e.Faulty = proc.NewSet(3) // nominally corrupted, but committed no fault
	swapped, err := SwapOmission(e, 3)
	if err != nil {
		t.Fatalf("SwapOmission: %v", err)
	}
	if !swapped.Faulty.Empty() {
		t.Errorf("faulty after identity swap = %v, want empty", swapped.Faulty)
	}
	for i := range e.Behaviors {
		a, b := e.Behaviors[i], swapped.Behaviors[i]
		if !reflect.DeepEqual(a.Fragments, b.Fragments) {
			t.Errorf("behavior of p%d changed under identity swap", i)
		}
	}
}

// TestSwapPreservesMessageMultiset: the swap moves messages between Sent
// and SendOmitted but never creates or destroys any.
func TestSwapPreservesMessageMultiset(t *testing.T) {
	group := proc.NewSet(6, 7)
	prop := func(pick uint8) bool {
		e, err := RunIsolated(tn, tt, echoFactory(tn, 3), msg.Zero, group, 1+int(pick%3), 8)
		if err != nil {
			return false
		}
		victim := group.Members()[int(pick)%group.Len()]
		swapped, err := SwapOmission(e, victim)
		if err != nil {
			return false
		}
		for i := range e.Behaviors {
			before := len(e.Behaviors[i].AllSent()) + len(e.Behaviors[i].AllSendOmitted())
			after := len(swapped.Behaviors[i].AllSent()) + len(swapped.Behaviors[i].AllSendOmitted())
			if before != after {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestMergeDeterminism: merging the same pair twice yields identical
// executions — required for the falsifier's replayability.
func TestMergeDeterminism(t *testing.T) {
	part, err := proc.NewPartition(tn, tt)
	if err != nil {
		t.Fatal(err)
	}
	eB, err := RunIsolated(tn, tt, echoFactory(tn, 3), msg.Zero, part.B, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	eC, err := RunIsolated(tn, tt, echoFactory(tn, 3), msg.Zero, part.C, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	spec := MergeSpec{Part: part, EB: eB, KB: 2, EC: eC, KC: 3}
	m1, err := Merge(spec, echoFactory(tn, 3), 8)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Merge(spec, echoFactory(tn, 3), 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m1.Behaviors, m2.Behaviors) {
		t.Error("merge is not deterministic")
	}
}
