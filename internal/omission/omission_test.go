package omission

import (
	"strings"
	"testing"

	"expensive/internal/msg"
	"expensive/internal/proc"
	"expensive/internal/protocols/cheap"
	"expensive/internal/sim"
)

// echoMachine broadcasts its proposal for `rounds` rounds, then decides 0
// iff every expected message in every round carried "0" and its own
// proposal is "0" (a deliberately fault-sensitive rule, ideal for
// exercising isolation).
type echoMachine struct {
	n, rounds int
	id        proc.ID
	sawOther  bool
	proposal  msg.Value
	decided   bool
	decision  msg.Value
	done      bool
}

func echoFactory(n, rounds int) sim.Factory {
	return func(id proc.ID, proposal msg.Value) sim.Machine {
		return &echoMachine{n: n, rounds: rounds, id: id, proposal: proposal}
	}
}

func (m *echoMachine) broadcast() []sim.Outgoing {
	var out []sim.Outgoing
	for p := proc.ID(0); p < proc.ID(m.n); p++ {
		if p != m.id {
			out = append(out, sim.Outgoing{To: p, Payload: string(m.proposal)})
		}
	}
	return out
}

func (m *echoMachine) Init() []sim.Outgoing { return m.broadcast() }

func (m *echoMachine) Step(round int, received []msg.Message) []sim.Outgoing {
	if m.done {
		return nil
	}
	if len(received) != m.n-1 {
		m.sawOther = true // someone was silent: fault detected
	}
	for _, rm := range received {
		if msg.Value(rm.Payload) != msg.Zero {
			m.sawOther = true
		}
	}
	if round >= m.rounds {
		m.decision = msg.Zero
		if m.proposal != msg.Zero || m.sawOther {
			m.decision = msg.One
		}
		m.decided, m.done = true, true
		return nil
	}
	return m.broadcast()
}

func (m *echoMachine) Decision() (msg.Value, bool) {
	if !m.decided {
		return msg.NoDecision, false
	}
	return m.decision, true
}

func (m *echoMachine) Quiescent() bool { return m.done }

func uniform(n int, v msg.Value) []msg.Value {
	out := make([]msg.Value, n)
	for i := range out {
		out[i] = v
	}
	return out
}

const (
	tn = 8 // system size for these tests
	tt = 4 // fault budget
)

func runFull(t *testing.T, prop msg.Value) *sim.Execution {
	t.Helper()
	cfg := sim.Config{N: tn, T: tt, Proposals: uniform(tn, prop), MaxRounds: 8}
	e, err := sim.Run(cfg, echoFactory(tn, 3), sim.NoFaults{})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return e
}

func TestValidateFullCorrectExecution(t *testing.T) {
	e := runFull(t, msg.Zero)
	if err := Validate(e); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	d, err := e.CommonDecision(proc.Universe(tn))
	if err != nil || d != msg.Zero {
		t.Fatalf("decision %q err %v", d, err)
	}
}

func TestValidateRejectsMutations(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(e *sim.Execution)
		want string
	}{
		{
			"too many faulty",
			func(e *sim.Execution) { e.Faulty = proc.Range(0, proc.ID(tt+1)) },
			"faulty-processes",
		},
		{
			"phantom received",
			func(e *sim.Execution) {
				f := &e.Behavior(0).Fragments[0]
				f.Received = append(f.Received, msg.Message{Sender: 5, Receiver: 0, Round: 1, Payload: "ghost"})
			},
			"",
		},
		{
			"dropped delivery",
			func(e *sim.Execution) {
				f := &e.Behavior(1).Fragments[0]
				f.Received = f.Received[1:]
			},
			"send-validity",
		},
		{
			"omission at correct process",
			func(e *sim.Execution) {
				f := &e.Behavior(2).Fragments[0]
				f.ReceiveOmitted = append(f.ReceiveOmitted, f.Received[0])
				f.Received = f.Received[1:]
			},
			"omission-validity",
		},
		{
			"decision instability",
			func(e *sim.Execution) {
				last := len(e.Behavior(3).Fragments) - 1
				e.Behavior(3).Fragments[last].Decision = "42"
				e.Behavior(3).Fragments[last-1].Decided = true
				e.Behavior(3).Fragments[last-1].Decision = "7"
			},
			"decision",
		},
		{
			"self message",
			func(e *sim.Execution) {
				f := &e.Behavior(0).Fragments[0]
				f.Sent = append(f.Sent, msg.Message{Sender: 0, Receiver: 0, Round: 1, Payload: "x"})
			},
			"self-message",
		},
	}
	for _, tc := range mutations {
		t.Run(tc.name, func(t *testing.T) {
			e := runFull(t, msg.Zero)
			tc.mut(e)
			err := Validate(e)
			if err == nil {
				t.Fatal("mutation not detected")
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestIsolationDefinition(t *testing.T) {
	group := proc.NewSet(6, 7)
	e, err := RunIsolated(tn, tt, echoFactory(tn, 3), msg.Zero, group, 2, 8)
	if err != nil {
		t.Fatalf("RunIsolated: %v", err)
	}
	// Before round 2 the isolated group receives everything.
	for _, id := range group.Members() {
		f1 := e.Behavior(id).Frag(1)
		if len(f1.Received) != tn-1 || len(f1.ReceiveOmitted) != 0 {
			t.Errorf("%s round 1: received %d, omitted %d", id, len(f1.Received), len(f1.ReceiveOmitted))
		}
		f2 := e.Behavior(id).Frag(2)
		if len(f2.ReceiveOmitted) != tn-group.Len() {
			t.Errorf("%s round 2: omitted %d, want %d", id, len(f2.ReceiveOmitted), tn-group.Len())
		}
		for _, m := range f2.Received {
			if !group.Contains(m.Sender) {
				t.Errorf("%s received out-of-group message %v after isolation", id, m)
			}
		}
	}
	// The isolated processes detect the silence and decide the default.
	for _, id := range group.Members() {
		if d, _ := e.Decision(id); d != msg.One {
			t.Errorf("isolated %s decided %q, want default 1", id, d)
		}
	}
	// The correct processes saw every message (isolation is receive-side) so
	// they decide 0.
	d, err := e.CommonDecision(group.Complement(tn))
	if err != nil || d != msg.Zero {
		t.Errorf("correct decision %q err %v", d, err)
	}
}

func TestCheckIsolatedRejectsWrongRound(t *testing.T) {
	group := proc.NewSet(6, 7)
	e, err := RunIsolated(tn, tt, echoFactory(tn, 3), msg.Zero, group, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckIsolated(e, group, 3); err == nil {
		t.Error("expected CheckIsolated to reject earlier-than-claimed omissions")
	}
	if err := CheckIsolated(e, proc.NewSet(0), 1); err == nil {
		t.Error("expected CheckIsolated to reject non-faulty group")
	}
}

func TestIndistinguishablePrefix(t *testing.T) {
	// Figure 1: E0 and E_G(k) are indistinguishable to everyone through
	// round k-1 and to G's complement... — here we check process views.
	group := proc.NewSet(6, 7)
	e0 := runFull(t, msg.Zero)
	eIso, err := RunIsolated(tn, tt, echoFactory(tn, 3), msg.Zero, group, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Isolation from round 3 of a 3-round protocol changes what 6,7 receive
	// in round 3 only; correct processes' received sets never change because
	// isolation drops inbound messages of the isolated group only.
	for id := proc.ID(0); id < 6; id++ {
		if err := Indistinguishable(e0, eIso, id); err != nil {
			t.Errorf("correct %s distinguishes: %v", id, err)
		}
	}
	for _, id := range group.Members() {
		if err := Indistinguishable(e0, eIso, id); err == nil {
			t.Errorf("isolated %s should distinguish E0 from E_G(3)", id)
		}
	}
}

func TestMessagesFromTo(t *testing.T) {
	group := proc.NewSet(6, 7)
	e, err := RunIsolated(tn, tt, echoFactory(tn, 3), msg.Zero, group, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	correct := group.Complement(tn)
	got := MessagesFromTo(e, correct, 6)
	// p6 receive-omits (n-2) out-of-group messages per round × 3 rounds.
	want := (tn - 2) * 3
	if len(got) != want {
		t.Errorf("M_{X→p6} = %d, want %d", len(got), want)
	}
	if in := MessagesFromTo(e, proc.NewSet(7), 6); len(in) != 0 {
		t.Errorf("in-group messages counted: %d", len(in))
	}
}

func TestSwapOmissionLemma15(t *testing.T) {
	// Use a genuinely cheap protocol (only the leader sends) so the swap
	// keeps |F'| <= t — Lemma 15's precondition.
	factory := cheap.Leader(tn)
	group := proc.NewSet(6, 7)
	e, err := RunIsolated(tn, tt, factory, msg.Zero, group, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	p := proc.ID(6)
	swapped, err := SwapOmission(e, p)
	if err != nil {
		t.Fatalf("SwapOmission: %v", err)
	}
	// (1) Valid execution with at most t faults.
	if err := Validate(swapped); err != nil {
		t.Errorf("swapped execution invalid: %v", err)
	}
	// (2) Indistinguishable to every process.
	for id := proc.ID(0); id < tn; id++ {
		if err := Indistinguishable(e, swapped, id); err != nil {
			t.Errorf("%s distinguishes swapped execution: %v", id, err)
		}
	}
	// (3) p is correct now; the new faulty set is exactly the leader (whose
	// message to p was swapped into a send-omission) and p7 (which keeps
	// its own receive-omission).
	if !swapped.Faulty.Equal(proc.NewSet(0, 7)) {
		t.Errorf("faulty after swap = %v, want {p0,p7}", swapped.Faulty)
	}
	// The trace still conforms to the protocol.
	if err := sim.Conforms(swapped, factory, proc.Set{}); err != nil {
		t.Errorf("Conforms: %v", err)
	}
	// Decisions are preserved verbatim — so correct p6 (decided 1, never saw
	// the leader) now disagrees with correct p1 (decided 0): the Lemma 2
	// contradiction, concretely.
	d6, _ := swapped.Decision(6)
	d1, _ := swapped.Decision(1)
	if d6 != msg.One || d1 != msg.Zero {
		t.Errorf("expected disagreement 1 vs 0, got p6=%q p1=%q", d6, d1)
	}
	for id := proc.ID(0); id < tn; id++ {
		x1, ok1 := e.Decision(id)
		x2, ok2 := swapped.Decision(id)
		if x1 != x2 || ok1 != ok2 {
			t.Errorf("%s decision changed across swap", id)
		}
	}
}

func TestSwapOmissionRequiresNoSendOmissions(t *testing.T) {
	// Build an execution where p0 send-omits.
	plan := sim.OmissionPlan{
		F:      proc.NewSet(0),
		SendFn: func(m msg.Message) bool { return m.Round == 1 },
	}
	cfg := sim.Config{N: tn, T: tt, Proposals: uniform(tn, msg.Zero), MaxRounds: 8}
	e, err := sim.Run(cfg, echoFactory(tn, 3), plan)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SwapOmission(e, 0); err == nil {
		t.Error("expected error: p0 commits send-omission faults")
	}
}

func TestMergeableSpec(t *testing.T) {
	cases := []struct {
		k1, k2 int
		pb, pc msg.Value
		want   bool
	}{
		{1, 1, msg.Zero, msg.One, true},
		{1, 1, msg.Zero, msg.Zero, true},
		{3, 3, msg.Zero, msg.Zero, true},
		{3, 4, msg.Zero, msg.Zero, true},
		{4, 3, msg.Zero, msg.Zero, true},
		{3, 5, msg.Zero, msg.Zero, false},
		{3, 3, msg.Zero, msg.One, false},
		{2, 1, msg.Zero, msg.One, false},
	}
	for _, tc := range cases {
		if got := Mergeable(tc.k1, tc.k2, tc.pb, tc.pc); got != tc.want {
			t.Errorf("Mergeable(%d,%d,%s,%s) = %v, want %v", tc.k1, tc.k2, tc.pb, tc.pc, got, tc.want)
		}
	}
}

func TestMergeLemma16(t *testing.T) {
	part, err := proc.NewPartition(tn, tt)
	if err != nil {
		t.Fatal(err)
	}
	eB, err := RunIsolated(tn, tt, echoFactory(tn, 3), msg.Zero, part.B, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	eC, err := RunIsolated(tn, tt, echoFactory(tn, 3), msg.Zero, part.C, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := Merge(MergeSpec{Part: part, EB: eB, KB: 2, EC: eC, KC: 3}, echoFactory(tn, 3), 8)
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	// Lemma 16 conclusions are checked inside Merge; assert the basics here.
	if !merged.Faulty.Equal(part.B.Union(part.C)) {
		t.Errorf("faulty = %v", merged.Faulty)
	}
	if err := sim.Conforms(merged, echoFactory(tn, 3), proc.Set{}); err != nil {
		t.Errorf("merged trace does not conform: %v", err)
	}
	// Isolation is receive-side only: B and C keep broadcasting their
	// proposals, so group A sees a fault-free unanimous-0 pattern and
	// decides 0 — while the isolated groups detect the silence they
	// inflicted on themselves and default to 1. The merged execution thus
	// realizes the disagreement pattern of Figure 2.
	d, err := merged.CommonDecision(part.A)
	if err != nil {
		t.Fatalf("A decision: %v", err)
	}
	if d != msg.Zero {
		t.Errorf("A decided %q, want 0 (it sees no faults)", d)
	}
	for _, id := range part.B.Union(part.C).Members() {
		if di, _ := merged.Decision(id); di != msg.One {
			t.Errorf("isolated %s decided %q, want default 1", id, di)
		}
	}
}

func TestMergeRejectsNonMergeable(t *testing.T) {
	part, err := proc.NewPartition(tn, tt)
	if err != nil {
		t.Fatal(err)
	}
	eB, err := RunIsolated(tn, tt, echoFactory(tn, 3), msg.Zero, part.B, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	eC, err := RunIsolated(tn, tt, echoFactory(tn, 3), msg.One, part.C, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Different proposals with k1 != 1: not mergeable.
	if _, err := Merge(MergeSpec{Part: part, EB: eB, KB: 2, EC: eC, KC: 3}, echoFactory(tn, 3), 8); err == nil {
		t.Error("expected mergeability error")
	}
}

func TestMergeRound1PairWithDifferentProposals(t *testing.T) {
	part, err := proc.NewPartition(tn, tt)
	if err != nil {
		t.Fatal(err)
	}
	eB, err := RunIsolated(tn, tt, echoFactory(tn, 3), msg.Zero, part.B, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	eC, err := RunIsolated(tn, tt, echoFactory(tn, 3), msg.One, part.C, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := Merge(MergeSpec{Part: part, EB: eB, KB: 1, EC: eC, KC: 1}, echoFactory(tn, 3), 8)
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	// C proposed 1 in its source, so the merged proposals are mixed.
	if p := merged.Behavior(part.C.Min()).Proposal; p != msg.One {
		t.Errorf("C proposal = %q, want 1", p)
	}
	if p := merged.Behavior(0).Proposal; p != msg.Zero {
		t.Errorf("A proposal = %q, want 0", p)
	}
}

func TestUniformProposal(t *testing.T) {
	e := runFull(t, msg.Zero)
	v, err := UniformProposal(e)
	if err != nil || v != msg.Zero {
		t.Errorf("UniformProposal = %q, %v", v, err)
	}
	e.Behavior(3).Proposal = msg.One
	if _, err := UniformProposal(e); err == nil {
		t.Error("expected non-uniform error")
	}
}
