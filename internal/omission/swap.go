package omission

import (
	"fmt"

	"expensive/internal/msg"
	"expensive/internal/proc"
	"expensive/internal/sim"
)

// SwapOmission implements Algorithm 4: given an execution e and a process
// pi, it constructs the execution e' in which every receive-omission fault
// of pi is "swapped" for a send-omission fault of the corresponding
// sender. The new faulty set F' contains exactly the processes that commit
// an omission fault in e'.
//
// Per Lemma 15, if pi commits no send-omission faults in e, then e' is a
// valid execution indistinguishable from e to every process, with pi
// correct in e'. The caller is responsible for checking |F'| <= t (Lemma
// 15's precondition); this function only performs the transformation and
// structural checks.
func SwapOmission(e *sim.Execution, pi proc.ID) (*sim.Execution, error) {
	if e.Recording != sim.RecordFull {
		return nil, fmt.Errorf("swap_omission: requires a full trace, got recording level %q — re-run the configuration at sim.RecordFull", e.Recording)
	}
	//balint:allow leantier guarded: SwapOmission rejects non-full recordings above
	if n := len(e.Behavior(pi).AllSendOmitted()); n > 0 {
		return nil, fmt.Errorf("swap_omission: %s commits %d send-omission faults", pi, n)
	}

	// M: all messages receive-omitted by pi, keyed by identity (line 2).
	swapped := make(map[msg.Key]bool)
	//balint:allow leantier guarded: SwapOmission rejects non-full recordings above
	for _, m := range e.Behavior(pi).AllReceiveOmitted() {
		swapped[m.Key()] = true
	}

	newBehaviors := make([]*sim.Behavior, e.N)
	var newFaulty proc.Set
	for z := 0; z < e.N; z++ {
		src := e.Behaviors[z]
		nb := &sim.Behavior{ID: src.ID, Proposal: src.Proposal}
		faultyZ := false
		for _, f := range src.Fragments {
			nf := sim.Fragment{
				Round:    f.Round,
				Decided:  f.Decided,
				Decision: f.Decision,
				Received: append([]msg.Message{}, f.Received...),
			}
			// Move pi-bound messages in M from Sent to SendOmitted (line 9).
			for _, m := range f.Sent {
				if swapped[m.Key()] {
					nf.SendOmitted = append(nf.SendOmitted, m)
				} else {
					nf.Sent = append(nf.Sent, m)
				}
			}
			for _, m := range f.SendOmitted {
				nf.SendOmitted = append(nf.SendOmitted, m)
			}
			// Drop M from receive-omissions (only pi holds them).
			for _, m := range f.ReceiveOmitted {
				if !swapped[m.Key()] {
					nf.ReceiveOmitted = append(nf.ReceiveOmitted, m)
				}
			}
			if len(nf.SendOmitted) > 0 || len(nf.ReceiveOmitted) > 0 {
				faultyZ = true
			}
			nb.Fragments = append(nb.Fragments, nf)
		}
		if faultyZ {
			newFaulty = newFaulty.Add(proc.ID(z))
		}
		newBehaviors[z] = nb
	}

	out := &sim.Execution{
		N:         e.N,
		T:         e.T,
		Faulty:    newFaulty,
		Behaviors: newBehaviors,
		Rounds:    e.Rounds,
		Quiesced:  e.Quiesced,
	}
	if out.Faulty.Contains(pi) {
		return nil, fmt.Errorf("swap_omission: %s still faulty after swap", pi)
	}
	return out, nil
}
