package omission

import (
	"fmt"

	"expensive/internal/msg"
	"expensive/internal/proc"
	"expensive/internal/sim"
)

// Mergeable implements Definition 2, generalized over the proposal bit:
// the executions E_B(k1) (uniform proposal propB) and E_C(k2) (uniform
// proposal propC) are mergeable iff both groups are isolated from round 1,
// or the isolation rounds are at most one apart and the proposals agree.
func Mergeable(k1, k2 int, propB, propC msg.Value) bool {
	if k1 == 1 && k2 == 1 {
		return true
	}
	d := k1 - k2
	if d < 0 {
		d = -d
	}
	return d <= 1 && propB == propC
}

// MergeSpec names the ingredients of the merge procedure (Algorithm 5).
type MergeSpec struct {
	Part proc.Partition
	// EB is the execution in which group B is isolated from round KB.
	EB *sim.Execution
	KB int
	// EC is the execution in which group C is isolated from round KC.
	EC *sim.Execution
	KC int
}

// UniformProposal returns the proposal shared by every process of e, or an
// error if proposals are not uniform. The Table 1 executions are all
// uniform-proposal by construction.
func UniformProposal(e *sim.Execution) (msg.Value, error) {
	p := e.Behavior(0).Proposal
	for _, b := range e.Behaviors {
		if b.Proposal != p {
			return msg.NoDecision, fmt.Errorf("proposals not uniform: %s proposes %q, %s proposes %q",
				b.ID, b.Proposal, e.Behavior(0).ID, p)
		}
	}
	return p, nil
}

// Merge implements Algorithm 5: it constructs the merged execution in
// which group A runs live machines, group B replays its behavior from
// spec.EB and group C replays its behavior from spec.EC. Per Lemma 16, the
// result is a valid execution, indistinguishable from the sources to every
// process of B and C, with B (resp. C) isolated from KB (resp. KC). All
// three properties are checked before returning; a failure means the
// mergeability precondition did not hold and is reported as an error.
func Merge(spec MergeSpec, factory sim.Factory, horizon int) (*sim.Execution, error) {
	part := spec.Part
	if err := part.Validate(); err != nil {
		return nil, fmt.Errorf("merge: %w", err)
	}
	if spec.EB.Recording != sim.RecordFull || spec.EC.Recording != sim.RecordFull {
		return nil, fmt.Errorf("merge: requires full traces, got EB=%q EC=%q — re-run the configurations at sim.RecordFull",
			spec.EB.Recording, spec.EC.Recording)
	}
	if !spec.EB.Faulty.Equal(part.B) {
		return nil, fmt.Errorf("merge: EB faulty set %v != B %v", spec.EB.Faulty, part.B)
	}
	if !spec.EC.Faulty.Equal(part.C) {
		return nil, fmt.Errorf("merge: EC faulty set %v != C %v", spec.EC.Faulty, part.C)
	}
	propB, err := UniformProposal(spec.EB)
	if err != nil {
		return nil, fmt.Errorf("merge: EB: %w", err)
	}
	propC, err := UniformProposal(spec.EC)
	if err != nil {
		return nil, fmt.Errorf("merge: EC: %w", err)
	}
	if !Mergeable(spec.KB, spec.KC, propB, propC) {
		return nil, fmt.Errorf("merge: executions not mergeable (kB=%d kC=%d propB=%q propC=%q)",
			spec.KB, spec.KC, propB, propC)
	}
	n := spec.EB.N
	if horizon < spec.EB.Rounds || horizon < spec.EC.Rounds {
		return nil, fmt.Errorf("merge: horizon %d shorter than sources (%d, %d)",
			horizon, spec.EB.Rounds, spec.EC.Rounds)
	}

	// Initial states: A and B take EB's proposals, C takes EC's (lines 4-7).
	behaviors := make([]*sim.Behavior, n)
	proposalOf := func(id proc.ID) msg.Value {
		if part.C.Contains(id) {
			return spec.EC.Behavior(id).Proposal
		}
		return spec.EB.Behavior(id).Proposal
	}
	for i := 0; i < n; i++ {
		behaviors[i] = &sim.Behavior{ID: proc.ID(i), Proposal: proposalOf(proc.ID(i))}
	}

	// Live machines for group A only.
	machines := make(map[proc.ID]sim.Machine, part.A.Len())
	pending := make(map[proc.ID][]sim.Outgoing, part.A.Len())
	for _, id := range part.A.Members() {
		m := factory(id, proposalOf(id))
		machines[id] = m
		pending[id] = m.Init()
	}

	// sourceFrag returns the recorded fragment of a replayed process. Past
	// the source's recorded (quiescent) end the process is silent but stays
	// decided, so its final decision is carried forward.
	sourceFrag := func(id proc.ID, r int) sim.Fragment {
		b := spec.EB.Behavior(id)
		if part.C.Contains(id) {
			b = spec.EC.Behavior(id)
		}
		if r <= len(b.Fragments) {
			//balint:allow leantier merge inputs are Validate-checked full traces (Lemma 16 precondition)
			return b.Frag(r)
		}
		f := sim.Fragment{Round: r}
		if v, ok := b.FinalDecision(); ok {
			f.Decided, f.Decision = true, v
		}
		return f
	}

	for r := 1; r <= horizon; r++ {
		frags := make([]sim.Fragment, n)
		inboxes := make([][]msg.Message, n)
		for i := range frags {
			frags[i] = sim.Fragment{Round: r}
		}

		route := func(m msg.Message) {
			inboxes[m.Receiver] = append(inboxes[m.Receiver], m)
		}

		// Send phase: A live, B/C replayed (line 19 vs. recorded behaviors).
		for _, id := range part.A.Members() {
			seen := make(map[proc.ID]bool, len(pending[id]))
			for _, out := range pending[id] {
				if out.To == id || out.To < 0 || int(out.To) >= n || seen[out.To] {
					return nil, fmt.Errorf("merge: round %d: live %s emitted invalid message set", r, id)
				}
				seen[out.To] = true
				m := msg.Message{Sender: id, Receiver: out.To, Round: r, Payload: out.Payload}
				frags[id].Sent = append(frags[id].Sent, m)
				route(m)
			}
		}
		for _, id := range append(part.B.Members(), part.C.Members()...) {
			sf := sourceFrag(id, r)
			if len(sf.SendOmitted) > 0 {
				return nil, fmt.Errorf("merge: replayed %s send-omits in source execution (round %d)", id, r)
			}
			for _, m := range sf.Sent {
				frags[id].Sent = append(frags[id].Sent, m)
				route(m)
			}
		}

		// Receive phase.
		for j := 0; j < n; j++ {
			id := proc.ID(j)
			msg.Sort(inboxes[j])
			switch {
			case part.A.Contains(id):
				frags[j].Received = inboxes[j]
			default:
				// Replayed process: it receives exactly what it received in
				// its source execution; everything else addressed to it is
				// receive-omitted (line 18). The containment assertion is the
				// construction-validity argument of Lemma 16.
				recorded := sourceFrag(id, r).Received
				have := msg.SetOf(inboxes[j])
				for _, m := range recorded {
					got, ok := have[m.Key()]
					if !ok || got != m {
						return nil, fmt.Errorf("merge: round %d: %s received %v in its source execution "+
							"but that message is not sent in the merged execution (mergeability violated)",
							r, id, m)
					}
				}
				recordedSet := msg.SetOf(recorded)
				for _, m := range inboxes[j] {
					if _, ok := recordedSet[m.Key()]; ok {
						frags[j].Received = append(frags[j].Received, m)
					} else {
						frags[j].ReceiveOmitted = append(frags[j].ReceiveOmitted, m)
					}
				}
			}
		}

		// Compute phase: step A live, copy decisions for B/C from sources.
		for _, id := range part.A.Members() {
			received := append([]msg.Message{}, frags[id].Received...)
			msg.Sort(received)
			pending[id] = machines[id].Step(r, received)
			if v, ok := machines[id].Decision(); ok {
				frags[id].Decided, frags[id].Decision = true, v
			}
		}
		for _, id := range append(part.B.Members(), part.C.Members()...) {
			sf := sourceFrag(id, r)
			frags[id].Decided, frags[id].Decision = sf.Decided, sf.Decision
		}
		for i := 0; i < n; i++ {
			behaviors[i].Fragments = append(behaviors[i].Fragments, frags[i])
		}
	}

	out := &sim.Execution{
		N:         n,
		T:         spec.EB.T,
		Faulty:    part.B.Union(part.C),
		Behaviors: behaviors,
		Rounds:    horizon,
	}

	// Lemma 16's three conclusions, checked.
	//balint:allow leantier the merged output is a constructed full trace by definition
	if err := Validate(out); err != nil {
		return nil, fmt.Errorf("merge: result is not a valid execution: %w", err)
	}
	if err := CheckIsolated(out, part.B, spec.KB); err != nil {
		return nil, fmt.Errorf("merge: %w", err)
	}
	if err := CheckIsolated(out, part.C, spec.KC); err != nil {
		return nil, fmt.Errorf("merge: %w", err)
	}
	for _, id := range part.B.Members() {
		if err := Indistinguishable(out, spec.EB, id); err != nil {
			return nil, fmt.Errorf("merge: B not indistinguishable from source: %w", err)
		}
	}
	for _, id := range part.C.Members() {
		if err := Indistinguishable(out, spec.EC, id); err != nil {
			return nil, fmt.Errorf("merge: C not indistinguishable from source: %w", err)
		}
	}
	return out, nil
}
