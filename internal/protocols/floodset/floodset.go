// Package floodset implements the classical FloodSet consensus algorithm
// for the crash-failure model [82]: every process floods the set of values
// it has seen for t+1 rounds and decides the minimum. With at most t
// crashes some round is crash-free, after which all correct processes hold
// identical sets — Agreement follows.
//
// FloodSet is in this library as a *negative control* for the failure-model
// hierarchy (experiment E10): it is correct under crashes but breaks under
// general omission faults — a faulty process that withholds its value until
// the very last round and then reveals it to a single victim splits the
// decision. The paper's lower bound is proven against omission faults, and
// this protocol shows the model gap is real, not cosmetic.
package floodset

import (
	"sort"

	"expensive/internal/msg"
	"expensive/internal/proc"
	"expensive/internal/sim"
)

// Config parameterizes FloodSet.
type Config struct {
	N int
	T int
}

// RoundBound returns the decision round: t+1.
func RoundBound(t int) int { return t + 1 }

// New returns the honest-machine factory.
func New(cfg Config) sim.Factory {
	return func(id proc.ID, proposal msg.Value) sim.Machine {
		return &machine{cfg: cfg, id: id, seen: map[msg.Value]bool{proposal: true}, dirty: true}
	}
}

type payload struct {
	W []msg.Value
}

// decodePayload memoizes payload decoding (msg.CachedDecoder): probe
// sweeps run FloodSet millions of rounds over a tiny payload universe
// (subsets of the proposal values, usually {0, 1}), so nearly every
// decode is a repeat. Decoded sets are shared and read-only.
var decodePayload = msg.CachedDecoder[payload]()

func decodeW(body string) ([]msg.Value, bool) {
	p, ok := decodePayload(body)
	if !ok {
		return nil, false
	}
	return p.W, true
}

type machine struct {
	cfg  Config
	id   proc.ID
	seen map[msg.Value]bool

	// encoded caches the broadcast body; it is rebuilt only when seen
	// changed since the last encode (after round 1 it rarely does).
	encoded string
	dirty   bool

	decided  bool
	decision msg.Value
	done     bool
}

var _ sim.Machine = (*machine)(nil)

func (m *machine) sorted() []msg.Value {
	out := make([]msg.Value, 0, len(m.seen))
	for v := range m.seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (m *machine) broadcast() []sim.Outgoing {
	if m.dirty {
		m.encoded = msg.Encode(payload{W: m.sorted()})
		m.dirty = false
	}
	out := make([]sim.Outgoing, 0, m.cfg.N-1)
	for p := proc.ID(0); p < proc.ID(m.cfg.N); p++ {
		if p != m.id {
			out = append(out, sim.Outgoing{To: p, Payload: m.encoded})
		}
	}
	return out
}

// Init implements sim.Machine.
func (m *machine) Init() []sim.Outgoing { return m.broadcast() }

// Step implements sim.Machine.
func (m *machine) Step(round int, received []msg.Message) []sim.Outgoing {
	if m.done {
		return nil
	}
	for _, rm := range received {
		w, ok := decodeW(rm.Payload)
		if !ok {
			continue
		}
		for _, v := range w {
			if !m.seen[v] {
				m.seen[v] = true
				m.dirty = true
			}
		}
	}
	if round >= RoundBound(m.cfg.T) {
		m.decision = m.sorted()[0] // min of W
		m.decided, m.done = true, true
		return nil
	}
	return m.broadcast()
}

// Decision implements sim.Machine.
func (m *machine) Decision() (msg.Value, bool) {
	if !m.decided {
		return msg.NoDecision, false
	}
	return m.decision, true
}

// Quiescent implements sim.Machine.
func (m *machine) Quiescent() bool { return m.done }

// LastRoundReveal is the omission attack that defeats FloodSet: the faulty
// attacker holds a uniquely small value, send-omits everything until the
// final round, then delivers only to the victim. The victim's set gains
// the small value at decision time; everyone else never sees it.
func LastRoundReveal(attacker, victim proc.ID, t int) sim.OmissionPlan {
	return sim.OmissionPlan{
		F: proc.NewSet(attacker),
		SendFn: func(m msg.Message) bool {
			if m.Sender != attacker {
				return false
			}
			if m.Round < RoundBound(t) {
				return true // withhold everything before the last round
			}
			return m.Receiver != victim // reveal to the victim only
		},
	}
}
