package floodset_test

import (
	"fmt"
	"testing"

	"expensive/internal/msg"
	"expensive/internal/omission"
	"expensive/internal/proc"
	"expensive/internal/protocols/floodset"
	"expensive/internal/sim"
)

// decisionRound returns the first round by which every process in group
// has decided.
func decisionRound(e *sim.Execution, group proc.Set) int {
	maxR := 0
	for _, id := range group.Members() {
		b := e.Behavior(id)
		r := len(b.Fragments) + 1
		for i, f := range b.Fragments {
			if f.Decided {
				r = i + 1
				break
			}
		}
		if r > maxR {
			maxR = r
		}
	}
	return maxR
}

func TestEarlyStopDecidesInTwoRoundsFaultFree(t *testing.T) {
	n, tf := 6, 3
	factory := floodset.NewEarlyStopping(floodset.Config{N: n, T: tf})
	proposals := []msg.Value{"4", "2", "9", "7", "5", "3"}
	cfg := sim.Config{N: n, T: tf, Proposals: proposals, MaxRounds: floodset.RoundBound(tf) + 1}
	e, err := sim.Run(cfg, factory, sim.NoFaults{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := e.CommonDecision(proc.Universe(n))
	if err != nil || d != "2" {
		t.Fatalf("decision %q err %v", d, err)
	}
	if got := decisionRound(e, proc.Universe(n)); got != 2 {
		t.Errorf("decided at round %d, want 2 (f=0 ⇒ f+2)", got)
	}
}

func TestEarlyStopAgreementUnderAllSingleCrashSchedules(t *testing.T) {
	// Exhaustive search over single-crash schedules: every crash round and
	// every partial-delivery prefix. Agreement and validity must hold in
	// all of them, and the decision round must never exceed t+1.
	n, tf := 5, 2
	factory := floodset.NewEarlyStopping(floodset.Config{N: n, T: tf})
	proposals := []msg.Value{"0", "9", "9", "9", "9"}
	for crashRound := 1; crashRound <= tf+1; crashRound++ {
		for deliverPrefix := 0; deliverPrefix < n; deliverPrefix++ {
			name := fmt.Sprintf("crash-r%d-deliver%d", crashRound, deliverPrefix)
			t.Run(name, func(t *testing.T) {
				deliver := proc.Range(1, proc.ID(1+deliverPrefix))
				plan := sim.Crash(map[proc.ID]sim.CrashSpec{
					0: {Round: crashRound, DeliverTo: deliver},
				})
				cfg := sim.Config{N: n, T: tf, Proposals: proposals, MaxRounds: floodset.RoundBound(tf) + 1}
				e, err := sim.Run(cfg, factory, plan)
				if err != nil {
					t.Fatal(err)
				}
				correct := proc.Range(1, proc.ID(n))
				if _, err := e.CommonDecision(correct); err != nil {
					t.Fatalf("agreement: %v", err)
				}
				if got := decisionRound(e, correct); got > floodset.RoundBound(tf) {
					t.Errorf("decision round %d exceeds t+1=%d", got, floodset.RoundBound(tf))
				}
				if err := omission.Validate(e); err != nil {
					t.Errorf("trace: %v", err)
				}
			})
		}
	}
}

func TestEarlyStopAgreementUnderCascadingCrashes(t *testing.T) {
	// Two crashes, one per round, each with adversarial partial delivery —
	// the schedule that forces late decisions.
	n, tf := 6, 2
	factory := floodset.NewEarlyStopping(floodset.Config{N: n, T: tf})
	proposals := []msg.Value{"0", "9", "9", "9", "9", "9"}
	plan := sim.Crash(map[proc.ID]sim.CrashSpec{
		0: {Round: 1, DeliverTo: proc.NewSet(1)},
		1: {Round: 2, DeliverTo: proc.NewSet(2)},
	})
	cfg := sim.Config{N: n, T: tf, Proposals: proposals, MaxRounds: floodset.RoundBound(tf) + 1}
	e, err := sim.Run(cfg, factory, plan)
	if err != nil {
		t.Fatal(err)
	}
	correct := proc.Range(2, proc.ID(n))
	d, err := e.CommonDecision(correct)
	if err != nil {
		t.Fatalf("agreement: %v", err)
	}
	// "0" reached p1 (crashed) then p2: whether it survives to the correct
	// set depends on the schedule; what matters is agreement + validity.
	if d != "0" && d != "9" {
		t.Errorf("decision %q outside proposal set", d)
	}
}

func TestEarlyStopLatencyAdapts(t *testing.T) {
	// f crashes (all in round 1, full delivery) ⇒ decision by round f+2.
	n, tf := 8, 3
	proposals := make([]msg.Value, n)
	for i := range proposals {
		proposals[i] = msg.Value(fmt.Sprintf("%d", 9-i))
	}
	for f := 0; f <= tf; f++ {
		specs := make(map[proc.ID]sim.CrashSpec, f)
		for i := 0; i < f; i++ {
			// Crash i at round i+1 with empty delivery: worst cascading shape.
			specs[proc.ID(i)] = sim.CrashSpec{Round: i + 1}
		}
		factory := floodset.NewEarlyStopping(floodset.Config{N: n, T: tf})
		cfg := sim.Config{N: n, T: tf, Proposals: proposals, MaxRounds: floodset.RoundBound(tf) + 1}
		e, err := sim.Run(cfg, factory, sim.Crash(specs))
		if err != nil {
			t.Fatal(err)
		}
		correct := proc.Range(proc.ID(f), proc.ID(n))
		if _, err := e.CommonDecision(correct); err != nil {
			t.Fatalf("f=%d: %v", f, err)
		}
		got := decisionRound(e, correct)
		if got > f+2 {
			t.Errorf("f=%d: decided at round %d > f+2", f, got)
		}
	}
}
