package floodset

import (
	"expensive/internal/msg"
	"expensive/internal/proc"
	"expensive/internal/sim"
)

// NewEarlyStopping returns the early-deciding FloodSet variant for the
// crash model: a process decides at the end of the first round r >= 2 in
// which it heard from exactly the same set of processes as in round r-1 —
// a "clean" round with no fresh crash evidence — and at round t+1 at the
// latest. With f <= t actual crashes every correct process decides within
// f+2 rounds, the classical early-stopping guarantee; the worst case stays
// t+1.
//
// The optimization is latency-only: processes keep flooding their value
// sets until round t+1 even after deciding, so slower processes still
// learn everything. This is the E12 demonstration that worst-case bounds
// (Dolev-Strong's fixed t+1 rounds; the paper's Ω(t²) messages) coexist
// with good-case adaptivity on orthogonal metrics.
func NewEarlyStopping(cfg Config) sim.Factory {
	return func(id proc.ID, proposal msg.Value) sim.Machine {
		return &earlyMachine{
			machine: machine{cfg: cfg, id: id, seen: map[msg.Value]bool{proposal: true}, dirty: true},
		}
	}
}

type earlyMachine struct {
	machine
	prevHeard proc.Set
	hasPrev   bool
}

var _ sim.Machine = (*earlyMachine)(nil)

// Step overrides the base FloodSet step with the early-deciding rule.
func (m *earlyMachine) Step(round int, received []msg.Message) []sim.Outgoing {
	if m.done {
		return nil
	}
	var heard proc.Set
	for _, rm := range received {
		heard = heard.Add(rm.Sender)
		w, ok := decodeW(rm.Payload)
		if !ok {
			continue
		}
		for _, v := range w {
			if !m.seen[v] {
				m.seen[v] = true
				m.dirty = true
			}
		}
	}

	clean := m.hasPrev && heard.Equal(m.prevHeard)
	m.prevHeard, m.hasPrev = heard, true

	if !m.decided && (clean || round >= RoundBound(m.cfg.T)) {
		m.decision, m.decided = m.sorted()[0], true
	}
	if round >= RoundBound(m.cfg.T) {
		m.done = true
		return nil
	}
	// Keep flooding until round t+1 even when already decided.
	return m.broadcast()
}
