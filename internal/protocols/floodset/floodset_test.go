package floodset_test

import (
	"testing"

	"expensive/internal/msg"
	"expensive/internal/omission"
	"expensive/internal/proc"
	"expensive/internal/protocols/floodset"
	"expensive/internal/sim"
)

func runFS(t *testing.T, n, tf int, proposals []msg.Value, plan sim.FaultPlan) *sim.Execution {
	t.Helper()
	cfg := sim.Config{N: n, T: tf, Proposals: proposals, MaxRounds: floodset.RoundBound(tf) + 2}
	e, err := sim.Run(cfg, floodset.New(floodset.Config{N: n, T: tf}), plan)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return e
}

func TestFloodSetFaultFree(t *testing.T) {
	proposals := []msg.Value{"3", "1", "2", "5", "4"}
	e := runFS(t, 5, 2, proposals, sim.NoFaults{})
	d, err := e.CommonDecision(proc.Universe(5))
	if err != nil || d != "1" {
		t.Fatalf("decision %q err %v, want min=1", d, err)
	}
	if err := omission.Validate(e); err != nil {
		t.Errorf("trace invalid: %v", err)
	}
}

func TestFloodSetSurvivesCascadingCrashes(t *testing.T) {
	// The hard crash schedule: one crash per round, each with partial
	// delivery — the scenario the t+1 round count exists for.
	n, tf := 6, 2
	proposals := []msg.Value{"0", "9", "9", "9", "9", "9"}
	plan := sim.Crash(map[proc.ID]sim.CrashSpec{
		0: {Round: 1, DeliverTo: proc.NewSet(1)}, // tells only p1 about "0"
		1: {Round: 2, DeliverTo: proc.NewSet(2)}, // p1 crashes mid-relay
	})
	e, err := sim.Run(sim.Config{N: n, T: tf, Proposals: proposals, MaxRounds: floodset.RoundBound(tf) + 2},
		floodset.New(floodset.Config{N: n, T: tf}), plan)
	if err != nil {
		t.Fatal(err)
	}
	correct := proc.NewSet(2, 3, 4, 5)
	if _, err := e.CommonDecision(correct); err != nil {
		t.Fatalf("Agreement violated under crashes: %v", err)
	}
}

func TestFloodSetBreaksUnderOmission(t *testing.T) {
	// The last-round-reveal omission adversary: crash-tolerance is not
	// omission-tolerance. A single faulty process splits the decision.
	n, tf := 6, 2
	proposals := []msg.Value{"0", "9", "9", "9", "9", "9"}
	plan := floodset.LastRoundReveal(0, 1, tf)
	e := runFS(t, n, tf, proposals, plan)
	if err := omission.Validate(e); err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
	d1, _ := e.Decision(1)
	d2, _ := e.Decision(2)
	if d1 != "0" {
		t.Errorf("victim decided %q, want 0 (the revealed value)", d1)
	}
	if d2 != "9" {
		t.Errorf("bystander decided %q, want 9", d2)
	}
	if _, err := e.CommonDecision(proc.Range(1, 6)); err == nil {
		t.Fatal("expected agreement violation among correct processes")
	}
}

func TestFloodSetDecidesWithinBound(t *testing.T) {
	e := runFS(t, 4, 1, []msg.Value{"b", "a", "c", "d"}, sim.NoFaults{})
	if e.Rounds > floodset.RoundBound(1)+1 {
		t.Errorf("rounds = %d", e.Rounds)
	}
	d, _ := e.Decision(0)
	if d != "a" {
		t.Errorf("decision %q", d)
	}
}
