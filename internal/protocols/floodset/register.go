package floodset

import (
	"expensive/internal/catalog"
	"expensive/internal/sim"
	"expensive/internal/validity"
)

// The catalog entries: both FloodSet variants. They are registered under
// the crash model — correct below crash faults, deliberately breakable by
// the omission adversary (experiment E10) — which is exactly why matrix
// sweeps want them: they are the negative control of the failure-model
// hierarchy.
func init() {
	weakValidity := func(catalog.Params) validity.Check { return validity.WeakCheck }
	catalog.Register(catalog.Spec{
		ID:        "floodset",
		Title:     "FloodSet crash-model consensus (min of seen values)",
		Model:     catalog.CrashOnly,
		Condition: "t < n (crash faults)",
		Rounds:    func(n, t int) int { return RoundBound(t) },
		New: func(p catalog.Params) (sim.Factory, error) {
			return New(Config{N: p.N, T: p.T}), nil
		},
		Validity: weakValidity,
	})
	catalog.Register(catalog.Spec{
		ID:        "floodset-early",
		Title:     "early-stopping FloodSet (decides in f+2 rounds under f crashes)",
		Model:     catalog.CrashOnly,
		Condition: "t < n (crash faults)",
		Rounds:    func(n, t int) int { return RoundBound(t) },
		New: func(p catalog.Params) (sim.Factory, error) {
			return NewEarlyStopping(Config{N: p.N, T: p.T}), nil
		},
		Validity: weakValidity,
	})
}
