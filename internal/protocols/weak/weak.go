// Package weak provides *sound* binary weak consensus algorithms — the
// upper-bound side of Theorem 2. All of them have Ω(n²) message
// complexity, as the theorem says they must, and the lower-bound falsifier
// certifies that their probe executions exceed the t²/32 budget instead of
// producing a violation (experiment E1).
//
// Three constructions are provided, matching the three substrates of the
// paper's landscape:
//
//   - ViaIC: authenticated, tolerates any t < n. Interactive consistency
//     (n × Dolev-Strong) composed with Γ_weak through Algorithm 2.
//   - ViaEIG: unauthenticated, n > 3t. EIG interactive consistency composed
//     with Γ_weak — the unauthenticated solvability frontier of Theorem 4.
//   - ViaPhaseKing: unauthenticated, n > 4t, polynomial messages. Binary
//     Strong Validity implies Weak Validity, so Phase-King solves weak
//     consensus directly.
package weak

import (
	"expensive/internal/crypto/sig"
	"expensive/internal/msg"
	"expensive/internal/protocols/eig"
	"expensive/internal/protocols/ic"
	"expensive/internal/protocols/phaseking"
	"expensive/internal/protocols/reduction"
	"expensive/internal/sim"
)

// Default is the fallback decision when unanimity is not observed.
const Default = msg.One

// ViaIC returns an authenticated weak consensus factory (any t < n) and
// its decision-round bound.
func ViaIC(n, t int, scheme sig.Scheme) (sim.Factory, int) {
	icf := ic.New(ic.Config{N: n, T: t, Scheme: scheme, Default: Default})
	return reduction.FromIC(icf, reduction.GammaWeak(Default)), ic.RoundBound(t)
}

// ViaEIG returns an unauthenticated weak consensus factory (n > 3t) and
// its decision-round bound.
func ViaEIG(n, t int) (sim.Factory, int) {
	eigf := eig.New(eig.Config{N: n, T: t, Default: Default})
	return reduction.FromIC(eigf, reduction.GammaWeak(Default)), eig.RoundBound(t)
}

// ViaPhaseKing returns an unauthenticated polynomial weak consensus
// factory (n > 4t) and its decision-round bound.
func ViaPhaseKing(n, t int) (sim.Factory, int) {
	return phaseking.New(phaseking.Config{N: n, T: t}), phaseking.RoundBound(t)
}
