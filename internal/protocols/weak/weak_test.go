package weak_test

import (
	"testing"

	"expensive/internal/crypto/sig"
	"expensive/internal/msg"
	"expensive/internal/proc"
	"expensive/internal/protocols/weak"
	"expensive/internal/sim"
)

func uniform(n int, v msg.Value) []msg.Value {
	out := make([]msg.Value, n)
	for i := range out {
		out[i] = v
	}
	return out
}

// All three constructions must satisfy Weak Validity on unanimous
// fault-free executions and Agreement on mixed ones.
func TestAllConstructions(t *testing.T) {
	cases := []struct {
		name    string
		n, t    int
		factory sim.Factory
		rounds  int
	}{}
	f1, r1 := weak.ViaIC(4, 2, sig.NewIdeal("weak-test"))
	cases = append(cases, struct {
		name    string
		n, t    int
		factory sim.Factory
		rounds  int
	}{"via-ic t<n", 4, 2, f1, r1})
	f2, r2 := weak.ViaEIG(4, 1)
	cases = append(cases, struct {
		name    string
		n, t    int
		factory sim.Factory
		rounds  int
	}{"via-eig n>3t", 4, 1, f2, r2})
	f3, r3 := weak.ViaPhaseKing(5, 1)
	cases = append(cases, struct {
		name    string
		n, t    int
		factory sim.Factory
		rounds  int
	}{"via-phase-king n>4t", 5, 1, f3, r3})

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, b := range []msg.Value{msg.Zero, msg.One} {
				cfg := sim.Config{N: tc.n, T: tc.t, Proposals: uniform(tc.n, b), MaxRounds: tc.rounds + 1}
				e, err := sim.Run(cfg, tc.factory, sim.NoFaults{})
				if err != nil {
					t.Fatal(err)
				}
				d, err := e.CommonDecision(proc.Universe(tc.n))
				if err != nil || d != b {
					t.Errorf("unanimous %s: decided %q err %v (Weak Validity)", b, d, err)
				}
			}
			mixed := uniform(tc.n, msg.Zero)
			mixed[0] = msg.One
			cfg := sim.Config{N: tc.n, T: tc.t, Proposals: mixed, MaxRounds: tc.rounds + 1}
			e, err := sim.Run(cfg, tc.factory, sim.NoFaults{})
			if err != nil {
				t.Fatal(err)
			}
			d, err := e.CommonDecision(proc.Universe(tc.n))
			if err != nil {
				t.Fatalf("Agreement: %v", err)
			}
			if !msg.IsBit(d) {
				t.Errorf("non-binary decision %q", d)
			}
		})
	}
}
