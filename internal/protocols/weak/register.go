package weak

import (
	"expensive/internal/catalog"
	"expensive/internal/protocols/eig"
	"expensive/internal/protocols/ic"
	"expensive/internal/protocols/phaseking"
	"expensive/internal/sim"
	"expensive/internal/validity"
)

// The catalog entries: the three sound weak consensus constructions, one
// per substrate of the paper's landscape. All of them pay the Theorem 2
// quadratic price — that is experiment E1's point.
func init() {
	weakValidity := func(catalog.Params) validity.Check { return validity.WeakCheck }
	catalog.Register(catalog.Spec{
		ID:          "weak-ic",
		Title:       "weak consensus via authenticated IC + Γ_weak (Algorithm 2)",
		Model:       catalog.Authenticated,
		Condition:   "t < n",
		NeedsScheme: true,
		Rounds:      func(n, t int) int { return ic.RoundBound(t) },
		New: func(p catalog.Params) (sim.Factory, error) {
			f, _ := ViaIC(p.N, p.T, p.Scheme)
			return f, nil
		},
		Validity: weakValidity,
	})
	catalog.Register(catalog.Spec{
		ID:        "weak-eig",
		Title:     "weak consensus via EIG + Γ_weak (Algorithm 2)",
		Model:     catalog.Unauthenticated,
		Condition: "n > 3t",
		Supports:  func(n, t int) bool { return n > 3*t },
		Rounds:    func(n, t int) int { return eig.RoundBound(t) },
		New: func(p catalog.Params) (sim.Factory, error) {
			f, _ := ViaEIG(p.N, p.T)
			return f, nil
		},
		Validity: weakValidity,
	})
	catalog.Register(catalog.Spec{
		ID:        "weak-phase-king",
		Title:     "weak consensus via Phase-King (strong ⇒ weak for binary values)",
		Model:     catalog.Unauthenticated,
		Condition: "n > 4t",
		Supports:  func(n, t int) bool { return n > 4*t },
		Rounds:    func(n, t int) int { return phaseking.RoundBound(t) },
		New: func(p catalog.Params) (sim.Factory, error) {
			f, _ := ViaPhaseKing(p.N, p.T)
			return f, nil
		},
		Validity: weakValidity,
	})
}
