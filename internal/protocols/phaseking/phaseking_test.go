package phaseking_test

import (
	"testing"

	"expensive/internal/msg"
	"expensive/internal/omission"
	"expensive/internal/proc"
	"expensive/internal/protocols/phaseking"
	"expensive/internal/sim"
)

func runPK(t *testing.T, cfg phaseking.Config, proposals []msg.Value, plan sim.FaultPlan, rounds int) *sim.Execution {
	t.Helper()
	sc := sim.Config{N: cfg.N, T: cfg.T, Proposals: proposals, MaxRounds: rounds}
	e, err := sim.Run(sc, phaseking.New(cfg), plan)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return e
}

func bits(pattern ...int) []msg.Value {
	out := make([]msg.Value, len(pattern))
	for i, b := range pattern {
		out[i] = msg.Bit(b)
	}
	return out
}

func TestStrongValidityFaultFree(t *testing.T) {
	for _, b := range []int{0, 1} {
		cfg := phaseking.Config{N: 5, T: 1}
		pattern := []int{b, b, b, b, b}
		e := runPK(t, cfg, bits(pattern...), sim.NoFaults{}, phaseking.RoundBound(1)+2)
		d, err := e.CommonDecision(proc.Universe(5))
		if err != nil {
			t.Fatalf("CommonDecision: %v", err)
		}
		if d != msg.Bit(b) {
			t.Errorf("decided %q, want %d", d, b)
		}
		if err := omission.Validate(e); err != nil {
			t.Errorf("trace invalid: %v", err)
		}
	}
}

func TestMixedProposalsAgree(t *testing.T) {
	cfg := phaseking.Config{N: 5, T: 1}
	e := runPK(t, cfg, bits(0, 1, 0, 1, 1), sim.NoFaults{}, phaseking.RoundBound(1)+2)
	if _, err := e.CommonDecision(proc.Universe(5)); err != nil {
		t.Fatalf("Agreement: %v", err)
	}
}

// splitKing equivocates: in exchange rounds it reports 0 to the first half
// and 1 to the rest; in its king round it sends the same split.
type splitKing struct {
	n, t int
	id   proc.ID
}

func (m *splitKing) emit() []sim.Outgoing {
	var out []sim.Outgoing
	for p := 0; p < m.n; p++ {
		if proc.ID(p) == m.id {
			continue
		}
		v := msg.Zero
		if p >= m.n/2 {
			v = msg.One
		}
		out = append(out, sim.Outgoing{To: proc.ID(p), Payload: msg.Encode(struct{ V msg.Value }{v})})
	}
	return out
}

func (m *splitKing) Init() []sim.Outgoing { return m.emit() }

func (m *splitKing) Step(round int, _ []msg.Message) []sim.Outgoing {
	if round >= 2*(m.t+1) {
		return nil
	}
	return m.emit()
}

func (m *splitKing) Decision() (msg.Value, bool) { return msg.NoDecision, false }
func (m *splitKing) Quiescent() bool             { return false }

func TestAgreementDespiteByzantineKing(t *testing.T) {
	// n = 9 > 4t with t = 2; kings of phases 1 and 2 are Byzantine splitters.
	cfg := phaseking.Config{N: 9, T: 2}
	plan := sim.ByzantinePlan{Machines: map[proc.ID]sim.Machine{
		0: &splitKing{n: 9, t: 2, id: 0},
		1: &splitKing{n: 9, t: 2, id: 1},
	}}
	e := runPK(t, cfg, bits(0, 0, 0, 1, 1, 0, 1, 0, 1), plan, phaseking.RoundBound(2)+2)
	if _, err := e.CommonDecision(proc.Range(2, 9)); err != nil {
		t.Fatalf("Agreement violated: %v", err)
	}
}

func TestValidityPersistsUnderByzantineMinority(t *testing.T) {
	// All correct processes propose 1; the adversary must not flip it.
	cfg := phaseking.Config{N: 9, T: 2}
	plan := sim.ByzantinePlan{Machines: map[proc.ID]sim.Machine{
		0: &splitKing{n: 9, t: 2, id: 0},
		5: &splitKing{n: 9, t: 2, id: 5},
	}}
	e := runPK(t, cfg, bits(1, 1, 1, 1, 1, 1, 1, 1, 1), plan, phaseking.RoundBound(2)+2)
	d, err := e.CommonDecision(proc.NewSet(1, 2, 3, 4, 6, 7, 8))
	if err != nil {
		t.Fatalf("Agreement: %v", err)
	}
	if d != msg.One {
		t.Errorf("decided %q, want 1 (Strong Validity)", d)
	}
}

func TestPhaseAblation(t *testing.T) {
	// With only t phases (instead of t+1) and the t kings Byzantine, the
	// adversary keeps the correct processes split: no phase has a correct
	// king. t+1 phases restore agreement — the pigeonhole is load-bearing.
	n, tf := 5, 1
	adv := sim.ByzantinePlan{Machines: map[proc.ID]sim.Machine{
		0: &splitKing{n: n, t: tf, id: 0},
	}}
	// Mixed proposals so no one reaches the mult > n/2+t fast path.
	proposals := bits(0, 0, 0, 1, 1)

	ablated := phaseking.Config{N: n, T: tf, PhasesOverride: tf}
	e := runPK(t, ablated, proposals, adv, 2*tf+2)
	if _, err := e.CommonDecision(proc.Range(1, 5)); err == nil {
		t.Error("expected disagreement with t phases and all kings Byzantine")
	}

	full := phaseking.Config{N: n, T: tf}
	e = runPK(t, full, proposals, adv, phaseking.RoundBound(tf)+2)
	if _, err := e.CommonDecision(proc.Range(1, 5)); err != nil {
		t.Errorf("full protocol violated agreement: %v", err)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (phaseking.Config{N: 8, T: 2}).Validate(); err == nil {
		t.Error("expected n > 4t validation error")
	}
	if err := (phaseking.Config{N: 9, T: 2}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestNonBinaryProposalClamped(t *testing.T) {
	cfg := phaseking.Config{N: 5, T: 1}
	proposals := []msg.Value{"junk", "0", "0", "0", "0"}
	e := runPK(t, cfg, proposals, sim.NoFaults{}, phaseking.RoundBound(1)+2)
	d, err := e.CommonDecision(proc.Universe(5))
	if err != nil {
		t.Fatalf("CommonDecision: %v", err)
	}
	if d != msg.Zero {
		t.Errorf("decided %q, want 0", d)
	}
}
