package phaseking

import (
	"expensive/internal/catalog"
	"expensive/internal/sim"
	"expensive/internal/validity"
)

// The catalog entry: binary strong consensus with polynomial messages,
// the library's unauthenticated matching protocol (n > 4t).
func init() {
	catalog.Register(catalog.Spec{
		ID:        "phase-king",
		Title:     "Phase-King binary strong consensus, polynomial messages",
		Model:     catalog.Unauthenticated,
		Condition: "n > 4t",
		Supports:  func(n, t int) bool { return n > 4*t },
		Rounds:    func(n, t int) int { return RoundBound(t) },
		New: func(p catalog.Params) (sim.Factory, error) {
			return New(Config{N: p.N, T: p.T}), nil
		},
		Validity: func(catalog.Params) validity.Check { return validity.StrongCheck },
	})
}
