// Package phaseking implements the Phase-King strong consensus protocol in
// the two-round-per-phase form (Berman–Garay–Perry [20], as presented by
// Attiya–Welch [17]): binary strong consensus tolerating t Byzantine
// faults for n > 4t, deciding after t+1 phases (2(t+1) rounds), with
// polynomial message complexity Θ(n²·t).
//
// It is the library's unauthenticated polynomial baseline: a classical
// "matching protocol" whose measured message complexity sits a constant
// factor above the paper's t²/32 floor (experiment E9), and — because
// Strong Validity implies Weak Validity for binary values — also a sound
// weak consensus algorithm that the lower-bound falsifier cannot break
// (experiment E1).
//
// Each phase k has a designated king p_{k-1}. Round 2k-1: every process
// broadcasts its preference and computes the majority value and its
// multiplicity. Round 2k: the king broadcasts its majority value; a
// process keeps its own majority if its multiplicity exceeded n/2 + t,
// otherwise it adopts the king's value. With t+1 phases at least one king
// is correct, which establishes agreement; n > 4t makes an established
// agreement persist.
package phaseking

import (
	"fmt"

	"expensive/internal/msg"
	"expensive/internal/proc"
	"expensive/internal/sim"
)

// Config parameterizes the protocol.
type Config struct {
	N int
	T int
	// PhasesOverride replaces the default t+1 phase count. It exists as an
	// ablation hook: with only t phases an adversary corrupting the first t
	// kings splits the correct processes. Never set outside experiments.
	PhasesOverride int
}

// phases returns the number of phases to run.
func (c Config) phases() int {
	if c.PhasesOverride > 0 {
		return c.PhasesOverride
	}
	return c.T + 1
}

// Validate checks the resilience precondition n > 4t.
func (c Config) Validate() error {
	if c.N <= 4*c.T {
		return fmt.Errorf("phaseking: requires n > 4t, got n=%d t=%d", c.N, c.T)
	}
	return nil
}

// RoundBound returns the decision round: 2(t+1).
func RoundBound(t int) int { return 2 * (t + 1) }

// New returns the honest-machine factory. Proposals must be binary; any
// non-binary proposal is treated as 0, which keeps the machine total
// without affecting the binary agreement problems this protocol serves.
func New(cfg Config) sim.Factory {
	return func(id proc.ID, proposal msg.Value) sim.Machine {
		pref := proposal
		if !msg.IsBit(pref) {
			pref = msg.Zero
		}
		return &machine{cfg: cfg, id: id, pref: pref}
	}
}

type payload struct {
	V msg.Value
}

// The honest protocol only ever exchanges the two binary payloads;
// pre-encoding them (and string-matching on decode) keeps the probe-loop
// hot path free of JSON work. Bytes are identical to msg.Encode output.
var (
	bodyZero = msg.Encode(payload{V: msg.Zero})
	bodyOne  = msg.Encode(payload{V: msg.One})
)

// decodeV parses a payload into a binary value; non-binary or malformed
// payloads (a Byzantine sender's) report ok=false.
func decodeV(body string) (msg.Value, bool) {
	switch body {
	case bodyZero:
		return msg.Zero, true
	case bodyOne:
		return msg.One, true
	}
	var p payload
	if err := msg.Decode(body, &p); err != nil || !msg.IsBit(p.V) {
		return msg.NoDecision, false
	}
	return p.V, true
}

type machine struct {
	cfg  Config
	id   proc.ID
	pref msg.Value

	maj  msg.Value
	mult int

	decided  bool
	decision msg.Value
	done     bool
}

var _ sim.Machine = (*machine)(nil)

func (m *machine) broadcast(v msg.Value) []sim.Outgoing {
	var body string
	switch v {
	case msg.Zero:
		body = bodyZero
	case msg.One:
		body = bodyOne
	default:
		body = msg.Encode(payload{V: v})
	}
	out := make([]sim.Outgoing, 0, m.cfg.N-1)
	for p := proc.ID(0); p < proc.ID(m.cfg.N); p++ {
		if p != m.id {
			out = append(out, sim.Outgoing{To: p, Payload: body})
		}
	}
	return out
}

// king returns the king of phase k (1-based): process k-1.
func king(k int) proc.ID { return proc.ID(k - 1) }

// phaseOf maps a round to (phase, isSecondRound).
func phaseOf(round int) (int, bool) {
	return (round + 1) / 2, round%2 == 0
}

// Init implements sim.Machine: round 1 is the first exchange of phase 1.
func (m *machine) Init() []sim.Outgoing {
	return m.broadcast(m.pref)
}

// Step implements sim.Machine.
func (m *machine) Step(round int, received []msg.Message) []sim.Outgoing {
	if m.done {
		return nil
	}
	phase, second := phaseOf(round)

	if !second {
		// End of the exchange round: tally preferences (own included).
		counts := map[msg.Value]int{m.pref: 1}
		for _, rm := range received {
			v, ok := decodeV(rm.Payload)
			if !ok {
				continue
			}
			counts[v]++
		}
		if counts[msg.Zero] >= counts[msg.One] {
			m.maj, m.mult = msg.Zero, counts[msg.Zero]
		} else {
			m.maj, m.mult = msg.One, counts[msg.One]
		}
		if king(phase) == m.id {
			return m.broadcast(m.maj) // king round
		}
		return nil
	}

	// End of the king round: adopt.
	kingValue := m.maj // the king trusts its own tally
	if king(phase) != m.id {
		kingValue = msg.Zero // default when the king stays silent
		for _, rm := range received {
			if rm.Sender != king(phase) {
				continue
			}
			if v, ok := decodeV(rm.Payload); ok {
				kingValue = v
			}
		}
	}
	if 2*m.mult > m.cfg.N+2*m.cfg.T {
		m.pref = m.maj
	} else {
		m.pref = kingValue
	}

	if phase >= m.cfg.phases() {
		m.decision, m.decided, m.done = m.pref, true, true
		return nil
	}
	return m.broadcast(m.pref) // next phase's exchange round
}

// Decision implements sim.Machine.
func (m *machine) Decision() (msg.Value, bool) {
	if !m.decided {
		return msg.NoDecision, false
	}
	return m.decision, true
}

// Quiescent implements sim.Machine.
func (m *machine) Quiescent() bool { return m.done }
