package external_test

import (
	"testing"

	"expensive/internal/crypto/sig"
	"expensive/internal/lowerbound"
	"expensive/internal/msg"
	"expensive/internal/proc"
	"expensive/internal/protocols/external"
	"expensive/internal/protocols/reduction"
	"expensive/internal/sim"
)

func setup(t *testing.T, n int) (*external.Authority, sig.Scheme, []msg.Value) {
	t.Helper()
	scheme := sig.NewIdeal("ext-test")
	auth := external.NewAuthority(scheme)
	txs := make([]msg.Value, 3)
	for i := range txs {
		tx, err := auth.NewTx(external.ClientBase+proc.ID(i), "pay-alice")
		if err != nil {
			t.Fatalf("NewTx: %v", err)
		}
		txs[i] = tx
	}
	return auth, scheme, txs
}

func TestAuthorityValidation(t *testing.T) {
	auth, scheme, txs := setup(t, 4)
	if !auth.Valid(txs[0]) {
		t.Error("genuine tx rejected")
	}
	if auth.Valid("tx|1000|pay-alice|deadbeef") {
		t.Error("tampered signature accepted")
	}
	if auth.Valid("not-a-tx") {
		t.Error("garbage accepted")
	}
	if auth.Valid("tx|xx|p|s") {
		t.Error("bad client id accepted")
	}
	// A tx signed under a different authority seed is invalid here.
	other := external.NewAuthority(sig.NewIdeal("other-seed"))
	if other.Valid(txs[0]) {
		t.Error("foreign-authority tx accepted")
	}
	if _, err := auth.NewTx(external.ClientBase, "bad|payload"); err == nil {
		t.Error("payload with separator accepted")
	}
	_ = scheme
}

func uniform(n int, v msg.Value) []msg.Value {
	out := make([]msg.Value, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func TestSoundExternalAgreement(t *testing.T) {
	n, tf := 4, 1
	auth, scheme, txs := setup(t, n)
	fallback := txs[2]
	factory := external.New(external.Config{N: n, T: tf, Scheme: scheme, Authority: auth, Fallback: fallback})

	// Unanimous valid proposal is decided (the Corollary 1 precondition).
	cfg := sim.Config{N: n, T: tf, Proposals: uniform(n, txs[0]), MaxRounds: external.RoundBound(tf) + 2}
	e, err := sim.Run(cfg, factory, sim.NoFaults{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := e.CommonDecision(proc.Universe(n))
	if err != nil || d != txs[0] {
		t.Fatalf("unanimous tx0: decided %q err %v", d, err)
	}

	// A different unanimous proposal yields a different decision: the two
	// fully-correct executions Corollary 1 requires.
	cfg.Proposals = uniform(n, txs[1])
	e, err = sim.Run(cfg, factory, sim.NoFaults{})
	if err != nil {
		t.Fatal(err)
	}
	d2, err := e.CommonDecision(proc.Universe(n))
	if err != nil || d2 != txs[1] {
		t.Fatalf("unanimous tx1: decided %q err %v", d2, err)
	}
	if d == d2 {
		t.Fatal("the two fully-correct executions decide the same value")
	}

	// Mixed valid/invalid proposals: External Validity — the decision
	// always satisfies the predicate.
	cfg.Proposals = []msg.Value{"garbage", txs[1], "junk", txs[0]}
	e, err = sim.Run(cfg, factory, sim.NoFaults{})
	if err != nil {
		t.Fatal(err)
	}
	d3, err := e.CommonDecision(proc.Universe(n))
	if err != nil {
		t.Fatal(err)
	}
	if !auth.Valid(d3) {
		t.Errorf("decided invalid value %q", d3)
	}
}

func TestCorollary1CheapExternalFalsified(t *testing.T) {
	// Corollary 1 end-to-end: the sub-quadratic external-validity protocol
	// has two fully-correct executions deciding different transactions, so
	// Algorithm 1 lifts it to weak consensus at zero extra messages — and
	// the Theorem 2 falsifier breaks that weak consensus, certifying the
	// violation against the *external* protocol's machines.
	n, tf := 40, 16
	scheme := sig.NewIdeal("ext-corollary")
	auth := external.NewAuthority(scheme)
	tx0, err := auth.NewTx(external.ClientBase, "block-0")
	if err != nil {
		t.Fatal(err)
	}
	tx1, err := auth.NewTx(external.ClientBase+1, "block-1")
	if err != nil {
		t.Fatal(err)
	}
	inner := external.CheapLeader(n, auth, tx0)

	spec, err := reduction.DeriveAlg1(inner, n, tf, external.CheapLeaderRounds+1, uniform(n, tx0), uniform(n, tx1))
	if err != nil {
		t.Fatalf("DeriveAlg1: %v", err)
	}
	if spec.V0 != tx0 {
		t.Fatalf("V0 = %q", spec.V0)
	}
	wrapped := reduction.WeakFromAgreement(inner, spec)

	rep, err := lowerbound.Falsify("cheap-external-via-alg1", wrapped, external.CheapLeaderRounds, n, tf, lowerbound.Options{})
	if err != nil {
		t.Fatalf("Falsify: %v", err)
	}
	if !rep.Broken() {
		t.Fatalf("expected the lifted cheap external protocol to be falsified; log:\n%v", rep.Log)
	}
	if err := lowerbound.CheckViolation(rep.Violation, wrapped, external.CheapLeaderRounds); err != nil {
		t.Fatalf("certificate does not verify: %v", err)
	}
	t.Logf("corollary 1 violation: %v", rep.Violation)
}
