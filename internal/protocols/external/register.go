package external

import (
	"fmt"

	"expensive/internal/catalog"
	"expensive/internal/msg"
	"expensive/internal/proc"
	"expensive/internal/sim"
	"expensive/internal/validity"
)

// The catalog entry: agreement with External Validity (§4.3). The
// authority is derived from the params' scheme; the fallback is the
// params' default value. The validity property is the blockchain one: the
// decision must be a correctly client-signed transaction, or the
// well-known fallback when no proposal validates.
func init() {
	catalog.Register(catalog.Spec{
		ID:           "external",
		Title:        "agreement with External Validity (client-signed transactions)",
		Model:        catalog.Authenticated,
		Condition:    "t < n",
		NeedsScheme:  true,
		NeedsDefault: true,
		Rounds:       func(n, t int) int { return RoundBound(t) },
		New: func(p catalog.Params) (sim.Factory, error) {
			cfg := Config{N: p.N, T: p.T, Scheme: p.Scheme, Authority: NewAuthority(p.Scheme), Fallback: p.Default}
			return New(cfg), nil
		},
		Validity: func(p catalog.Params) validity.Check {
			authority := NewAuthority(p.Scheme)
			fallback := p.Default
			return func(_ []msg.Value, _ proc.Set, decision msg.Value) error {
				if decision == fallback || authority.Valid(decision) {
					return nil
				}
				return fmt.Errorf("decision %q is neither a valid transaction nor the fallback %q", decision, fallback)
			}
		},
	})
}
