// Package external implements the blockchain-style agreement problem of
// §4.3: Byzantine agreement with External Validity [29] — the decided
// value must satisfy a globally verifiable predicate valid(·), here
// "carries a correct client signature".
//
// The sound construction composes interactive consistency with the
// first-valid selector (Algorithm 2 shape), and — like every known
// external-validity algorithm the paper cites [28, 45, 79, 101] — it has
// two fully-correct executions deciding different values, so Corollary 1
// applies: Algorithm 1 turns it into weak consensus at zero extra
// messages, and the Ω(t²) bound carries over. CheapLeader is the
// sub-quadratic strawman the falsifier breaks through that pipeline
// (experiment E8).
package external

import (
	"fmt"
	"strings"

	"expensive/internal/crypto/sig"
	"expensive/internal/msg"
	"expensive/internal/proc"
	"expensive/internal/protocols/ic"
	"expensive/internal/protocols/reduction"
	"expensive/internal/sim"
)

// ClientBase offsets client identities away from process identities in the
// signature scheme's keyspace.
const ClientBase proc.ID = 1000

// Authority issues and verifies client-signed transactions. Transactions
// are the values of the agreement problem: "tx|<client>|<payload>|<sig>".
type Authority struct {
	scheme sig.Scheme
}

// NewAuthority wraps a signature scheme that knows the client keys
// (processes verify only).
func NewAuthority(scheme sig.Scheme) *Authority {
	return &Authority{scheme: scheme}
}

// NewTx creates a transaction signed by the given client.
func (a *Authority) NewTx(client proc.ID, payload string) (msg.Value, error) {
	if strings.ContainsAny(payload, "|") {
		return "", fmt.Errorf("tx payload must not contain '|'")
	}
	s, err := a.scheme.Sign(client, txData(client, payload))
	if err != nil {
		return "", fmt.Errorf("sign tx: %w", err)
	}
	return msg.Value(fmt.Sprintf("tx|%d|%s|%s", int(client), payload, s)), nil
}

func txData(client proc.ID, payload string) []byte {
	return []byte(fmt.Sprintf("tx-data|%d|%s", int(client), payload))
}

// Valid is the globally verifiable predicate: the transaction parses and
// its client signature verifies.
func (a *Authority) Valid(v msg.Value) bool {
	parts := strings.SplitN(string(v), "|", 4)
	if len(parts) != 4 || parts[0] != "tx" {
		return false
	}
	var client int
	if _, err := fmt.Sscanf(parts[1], "%d", &client); err != nil {
		return false
	}
	return a.scheme.Verify(proc.ID(client), txData(proc.ID(client), parts[2]), sig.Signature(parts[3]))
}

// Config parameterizes the sound external-validity agreement.
type Config struct {
	N      int
	T      int
	Scheme sig.Scheme
	// Authority validates transactions.
	Authority *Authority
	// Fallback is a well-known valid value decided when no proposal
	// validates (e.g. a genesis transaction).
	Fallback msg.Value
}

// RoundBound returns the decision round: t+1 (one IC pass).
func RoundBound(t int) int { return ic.RoundBound(t) }

// New returns the sound agreement factory: interactive consistency plus
// the first-valid selector. If all processes are correct and propose the
// same valid transaction, that transaction is decided — the property
// Corollary 1 needs.
func New(cfg Config) sim.Factory {
	icf := ic.New(ic.Config{N: cfg.N, T: cfg.T, Scheme: cfg.Scheme, Default: "invalid"})
	return reduction.FromIC(icf, reduction.GammaFirstValid(cfg.Authority.Valid, cfg.Fallback))
}

// CheapLeader is the sub-quadratic strawman: the leader broadcasts its
// proposal; processes decide it if valid, else the fallback. n-1 messages,
// decides in round 1 — and, per Corollary 1, necessarily broken: the
// falsifier exhibits the violation after Algorithm 1 lifts it to weak
// consensus.
func CheapLeader(n int, a *Authority, fallback msg.Value) sim.Factory {
	return func(id proc.ID, proposal msg.Value) sim.Machine {
		return &leaderMachine{n: n, id: id, proposal: proposal, authority: a, fallback: fallback}
	}
}

// CheapLeaderRounds is the decision round of CheapLeader.
const CheapLeaderRounds = 1

type leaderMachine struct {
	n         int
	id        proc.ID
	proposal  msg.Value
	authority *Authority
	fallback  msg.Value

	decided  bool
	decision msg.Value
}

var _ sim.Machine = (*leaderMachine)(nil)

func (m *leaderMachine) Init() []sim.Outgoing {
	if m.id != 0 {
		return nil
	}
	out := make([]sim.Outgoing, 0, m.n-1)
	for p := proc.ID(1); p < proc.ID(m.n); p++ {
		out = append(out, sim.Outgoing{To: p, Payload: string(m.proposal)})
	}
	return out
}

func (m *leaderMachine) Step(round int, received []msg.Message) []sim.Outgoing {
	if round != 1 {
		return nil
	}
	m.decided = true
	m.decision = m.fallback
	if m.id == 0 {
		if m.authority.Valid(m.proposal) {
			m.decision = m.proposal
		}
		return nil
	}
	for _, rm := range received {
		if rm.Sender == 0 && m.authority.Valid(msg.Value(rm.Payload)) {
			m.decision = msg.Value(rm.Payload)
		}
	}
	return nil
}

func (m *leaderMachine) Decision() (msg.Value, bool) {
	if !m.decided {
		return msg.NoDecision, false
	}
	return m.decision, true
}

func (m *leaderMachine) Quiescent() bool { return m.decided }
