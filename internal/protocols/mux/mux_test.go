package mux_test

import (
	"strings"
	"testing"

	"expensive/internal/msg"
	"expensive/internal/proc"
	"expensive/internal/protocols/mux"
	"expensive/internal/sim"
)

// pingMachine broadcasts its tagged proposal in round 1 and decides the
// sorted concatenation of everything it saw after round 2.
type pingMachine struct {
	n        int
	id       proc.ID
	tag      string
	proposal msg.Value
	seen     []string
	decided  bool
	decision msg.Value
}

func pingFactory(n int, tag string) sim.Factory {
	return func(id proc.ID, proposal msg.Value) sim.Machine {
		return &pingMachine{n: n, id: id, tag: tag, proposal: proposal}
	}
}

func (m *pingMachine) Init() []sim.Outgoing {
	var out []sim.Outgoing
	for p := proc.ID(0); p < proc.ID(m.n); p++ {
		if p != m.id {
			out = append(out, sim.Outgoing{To: p, Payload: m.tag + ":" + string(m.proposal)})
		}
	}
	return out
}

func (m *pingMachine) Step(round int, received []msg.Message) []sim.Outgoing {
	for _, rm := range received {
		m.seen = append(m.seen, rm.Payload)
	}
	if round >= 1 {
		m.decided = true
		m.decision = msg.Value(strings.Join(m.seen, "|"))
	}
	return nil
}

func (m *pingMachine) Decision() (msg.Value, bool) {
	if !m.decided {
		return msg.NoDecision, false
	}
	return m.decision, true
}

func (m *pingMachine) Quiescent() bool { return m.decided }

func muxFactory(n int) sim.Factory {
	return func(id proc.ID, proposal msg.Value) sim.Machine {
		subs := []sim.Machine{
			pingFactory(n, "a")(id, proposal),
			pingFactory(n, "b")(id, proposal),
		}
		return mux.New(subs, mux.VectorCombiner)
	}
}

func TestMuxRoutesPerInstance(t *testing.T) {
	cfg := sim.Config{N: 3, T: 0, Proposals: []msg.Value{"x", "y", "z"}, MaxRounds: 4}
	e, err := sim.Run(cfg, muxFactory(3), sim.NoFaults{})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	d, ok := e.Decision(0)
	if !ok {
		t.Fatal("p0 undecided")
	}
	vec, err := msg.DecodeVector(d)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(vec) != 2 {
		t.Fatalf("vector len = %d", len(vec))
	}
	// Instance "a" saw only a-tagged payloads, in sender order.
	if vec[0] != "a:y|a:z" {
		t.Errorf("instance a decision = %q", vec[0])
	}
	if vec[1] != "b:y|b:z" {
		t.Errorf("instance b decision = %q", vec[1])
	}
	// Exactly one wire message per peer per round despite two instances.
	if got := len(e.Behavior(0).Frag(1).Sent); got != 2 {
		t.Errorf("p0 sent %d messages in round 1, want 2 (muxed)", got)
	}
}

// garbageSender emits unparseable bundles.
type garbageSender struct{ n int }

func (m *garbageSender) Init() []sim.Outgoing {
	var out []sim.Outgoing
	for p := 1; p < m.n; p++ {
		out = append(out, sim.Outgoing{To: proc.ID(p), Payload: "{{{not json"})
	}
	return out
}
func (m *garbageSender) Step(int, []msg.Message) []sim.Outgoing { return nil }
func (m *garbageSender) Decision() (msg.Value, bool)            { return msg.NoDecision, false }
func (m *garbageSender) Quiescent() bool                        { return true }

func TestMuxToleratesGarbage(t *testing.T) {
	plan := sim.ByzantinePlan{Machines: map[proc.ID]sim.Machine{0: &garbageSender{n: 3}}}
	cfg := sim.Config{N: 3, T: 1, Proposals: []msg.Value{"x", "y", "z"}, MaxRounds: 4}
	e, err := sim.Run(cfg, muxFactory(3), plan)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, id := range []proc.ID{1, 2} {
		if _, ok := e.Decision(id); !ok {
			t.Errorf("%s undecided after garbage bundle", id)
		}
	}
}

// collisionSender emits bundles whose keys collide after decoding: "0"
// and "00" both parse to instance 0. A map-order iteration over the
// bundle would deliver the two payloads in random order; demux must
// iterate keys sorted so the inner inbox — and every downstream decision
// — is byte-identical across runs.
type collisionSender struct{ n int }

func (m *collisionSender) Init() []sim.Outgoing {
	var out []sim.Outgoing
	for p := 1; p < m.n; p++ {
		out = append(out, sim.Outgoing{To: proc.ID(p), Payload: `{"I":{"0":"one","00":"two"}}`})
	}
	return out
}
func (m *collisionSender) Step(int, []msg.Message) []sim.Outgoing { return nil }
func (m *collisionSender) Decision() (msg.Value, bool)            { return msg.NoDecision, false }
func (m *collisionSender) Quiescent() bool                        { return true }

func TestMuxCollidingBundleKeysDeterministic(t *testing.T) {
	run := func() msg.Value {
		plan := sim.ByzantinePlan{Machines: map[proc.ID]sim.Machine{0: &collisionSender{n: 3}}}
		cfg := sim.Config{N: 3, T: 1, Proposals: []msg.Value{"x", "y", "z"}, MaxRounds: 4}
		e, err := sim.Run(cfg, muxFactory(3), plan)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		d, ok := e.Decision(1)
		if !ok {
			t.Fatal("p1 undecided")
		}
		return d
	}
	first := run()
	// Key "0" sorts before "00", so instance 0 hears "one" before "two".
	vec, err := msg.DecodeVector(first)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !strings.Contains(string(vec[0]), "one|two") {
		t.Errorf("instance 0 decision = %q, want colliding payloads in sorted key order", vec[0])
	}
	for i := 0; i < 20; i++ {
		if d := run(); d != first {
			t.Fatalf("decision changed across runs: %q vs %q — bundle demux is map-order dependent", d, first)
		}
	}
}
