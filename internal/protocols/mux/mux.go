// Package mux composes several independent protocol instances into a
// single machine per process.
//
// The computational model (Appendix A.1) allows at most one message per
// sender/receiver pair per round, so running n parallel Byzantine
// broadcast instances — as interactive consistency does — requires
// bundling the per-instance messages into one payload. The multiplexer
// does exactly that: payloads are canonical JSON maps from instance index
// to inner payload, and received bundles are demultiplexed back into
// per-instance synthetic messages.
package mux

import (
	"sort"
	"strconv"

	"expensive/internal/msg"
	"expensive/internal/proc"
	"expensive/internal/sim"
)

// Combiner folds the decisions of all sub-machines (in instance order)
// into the composite decision.
type Combiner func(sub []msg.Value) msg.Value

// VectorCombiner encodes the sub-decisions as an I_n vector — the natural
// combiner for interactive consistency.
func VectorCombiner(sub []msg.Value) msg.Value { return msg.EncodeVector(sub) }

// Machine multiplexes k sub-machines over the single-message-per-peer
// channel model.
type Machine struct {
	subs    []sim.Machine
	combine Combiner

	decided  bool
	decision msg.Value
}

var _ sim.Machine = (*Machine)(nil)

// New builds a multiplexed machine over subs. The composite decides once
// every sub-machine has decided, combining their decisions with combine.
func New(subs []sim.Machine, combine Combiner) *Machine {
	return &Machine{subs: subs, combine: combine}
}

type bundle struct {
	// I maps instance index (decimal string, for canonical JSON ordering)
	// to the inner payload.
	I map[string]string
}

// decodeBundle memoizes bundle decoding (msg.CachedDecoder): the demux hot
// path sees the same bundle bodies over and over across probe sweeps.
// Decoded bundles are shared and read-only; demux iterates I in sorted
// key order, so the shared map is never a source of nondeterminism even
// for adversarial bundles with colliding keys.
var decodeBundle = msg.CachedDecoder[bundle]()

// Init implements sim.Machine.
func (m *Machine) Init() []sim.Outgoing {
	perInstance := make([][]sim.Outgoing, len(m.subs))
	for i, s := range m.subs {
		perInstance[i] = s.Init()
	}
	return m.muxOutgoing(perInstance)
}

// Step implements sim.Machine.
func (m *Machine) Step(round int, received []msg.Message) []sim.Outgoing {
	// Demultiplex: per instance, per sender, the synthetic inner message.
	inner := make([][]msg.Message, len(m.subs))
	for _, outerMsg := range received {
		b, ok := decodeBundle(outerMsg.Payload)
		if !ok {
			continue // malformed bundle from a Byzantine sender: ignore
		}
		// Iterate bundle keys in sorted order: a Byzantine sender can put
		// colliding keys in one bundle ("0" and "00" both decode to
		// instance 0), and map order would then make the inner inbox —
		// and everything downstream — nondeterministic.
		keys := make([]string, 0, len(b.I))
		for key := range b.I {
			keys = append(keys, key)
		}
		sort.Strings(keys)
		for _, key := range keys {
			idx, err := strconv.Atoi(key)
			if err != nil || idx < 0 || idx >= len(m.subs) {
				continue
			}
			inner[idx] = append(inner[idx], msg.Message{
				Sender:   outerMsg.Sender,
				Receiver: outerMsg.Receiver,
				Round:    outerMsg.Round,
				Payload:  b.I[key],
			})
		}
	}
	perInstance := make([][]sim.Outgoing, len(m.subs))
	for i, s := range m.subs {
		msg.Sort(inner[i])
		perInstance[i] = s.Step(round, inner[i])
	}
	m.refreshDecision()
	return m.muxOutgoing(perInstance)
}

func (m *Machine) refreshDecision() {
	if m.decided {
		return
	}
	decisions := make([]msg.Value, len(m.subs))
	for i, s := range m.subs {
		v, ok := s.Decision()
		if !ok {
			return
		}
		decisions[i] = v
	}
	m.decided, m.decision = true, m.combine(decisions)
}

func (m *Machine) muxOutgoing(perInstance [][]sim.Outgoing) []sim.Outgoing {
	byReceiver := make(map[proc.ID]*bundle)
	var order []proc.ID
	for i, outs := range perInstance {
		key := strconv.Itoa(i)
		for _, o := range outs {
			b, ok := byReceiver[o.To]
			if !ok {
				b = &bundle{I: make(map[string]string)}
				byReceiver[o.To] = b
				order = append(order, o.To)
			}
			b.I[key] = o.Payload
		}
	}
	proc.SortIDs(order)
	out := make([]sim.Outgoing, 0, len(order))
	for _, to := range order {
		out = append(out, sim.Outgoing{To: to, Payload: msg.Encode(byReceiver[to])})
	}
	return out
}

// Decision implements sim.Machine.
func (m *Machine) Decision() (msg.Value, bool) {
	if !m.decided {
		return msg.NoDecision, false
	}
	return m.decision, true
}

// Quiescent implements sim.Machine.
func (m *Machine) Quiescent() bool {
	for _, s := range m.subs {
		if !s.Quiescent() {
			return false
		}
	}
	return true
}
