package ic

import (
	"fmt"
	"strings"

	"expensive/internal/catalog"
	"expensive/internal/msg"
	"expensive/internal/sim"
	"expensive/internal/validity"
)

// The catalog entry: authenticated interactive consistency (n parallel
// Dolev-Strong instances), decisions are encoded n-vectors.
func init() {
	catalog.Register(catalog.Spec{
		ID:           "ic",
		Title:        "authenticated interactive consistency (n × Dolev-Strong)",
		Model:        catalog.Authenticated,
		Condition:    "t < n",
		NeedsScheme:  true,
		NeedsDefault: true,
		Rounds:       func(n, t int) int { return RoundBound(t) },
		New: func(p catalog.Params) (sim.Factory, error) {
			return New(Config{N: p.N, T: p.T, Scheme: p.Scheme, Default: p.Default}), nil
		},
		Decode:   DecodeDecision,
		Validity: func(catalog.Params) validity.Check { return validity.VectorCheck },
	})
}

// DecodeDecision renders an IC decision vector human-readable:
// "[v0 v1 ... vn-1]".
func DecodeDecision(v msg.Value) (string, error) {
	vec, err := msg.DecodeVector(v)
	if err != nil {
		return "", fmt.Errorf("not an IC vector: %w", err)
	}
	parts := make([]string, len(vec))
	for i, e := range vec {
		parts[i] = string(e)
	}
	return "[" + strings.Join(parts, " ") + "]", nil
}
