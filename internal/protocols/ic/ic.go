// Package ic implements interactive consistency [18, 54, 78]: every
// process proposes a value and all correct processes decide the same
// vector of n values such that the entry of every correct process is its
// actual proposal (IC-Validity). §5.2 of the paper makes IC the universal
// substrate: any non-trivial agreement problem satisfying the containment
// condition reduces to IC plus a computable selector Γ (Algorithm 2).
//
// The authenticated construction runs n parallel Dolev-Strong broadcast
// instances — one per process — multiplexed over the one-message-per-peer
// channel model, and therefore tolerates any t < n (Dolev-Strong [52]).
// The unauthenticated construction lives in package eig and requires
// n > 3t [55, 78].
package ic

import (
	"strconv"

	"expensive/internal/crypto/sig"
	"expensive/internal/msg"
	"expensive/internal/proc"
	"expensive/internal/protocols/dolevstrong"
	"expensive/internal/protocols/mux"
	"expensive/internal/sim"
)

// Config parameterizes authenticated interactive consistency.
type Config struct {
	N      int
	T      int
	Scheme sig.Scheme
	// Default fills vector entries of silent or equivocating processes.
	Default msg.Value
}

// RoundBound returns the decision round: t+1 (all broadcast instances run
// in parallel).
func RoundBound(t int) int { return dolevstrong.RoundBound(t) }

// New returns the honest-machine factory: n multiplexed Dolev-Strong
// instances, instance j broadcast by process j; the decision is the
// canonical encoding of the vector of instance decisions.
func New(cfg Config) sim.Factory {
	return func(id proc.ID, proposal msg.Value) sim.Machine {
		subs := make([]sim.Machine, cfg.N)
		for j := 0; j < cfg.N; j++ {
			bc := dolevstrong.Config{
				N:       cfg.N,
				T:       cfg.T,
				Sender:  proc.ID(j),
				Scheme:  cfg.Scheme,
				Tag:     "ic/" + strconv.Itoa(j),
				Default: cfg.Default,
			}
			subs[j] = dolevstrong.New(bc)(id, proposal)
		}
		return mux.New(subs, mux.VectorCombiner)
	}
}
