package ic_test

import (
	"testing"

	"expensive/internal/crypto/sig"
	"expensive/internal/msg"
	"expensive/internal/omission"
	"expensive/internal/proc"
	"expensive/internal/protocols/ic"
	"expensive/internal/sim"
)

func runIC(t *testing.T, n, tf int, proposals []msg.Value, plan sim.FaultPlan) *sim.Execution {
	t.Helper()
	scheme := sig.NewIdeal("ic-test")
	cfg := sim.Config{N: n, T: tf, Proposals: proposals, MaxRounds: ic.RoundBound(tf) + 2}
	e, err := sim.Run(cfg, ic.New(ic.Config{N: n, T: tf, Scheme: scheme, Default: "⊥"}), plan)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return e
}

func TestICValidityFaultFree(t *testing.T) {
	proposals := []msg.Value{"a", "b", "c", "d"}
	e := runIC(t, 4, 1, proposals, sim.NoFaults{})
	d, err := e.CommonDecision(proc.Universe(4))
	if err != nil {
		t.Fatalf("CommonDecision: %v", err)
	}
	vec, err := msg.DecodeVector(d)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	for i, v := range vec {
		if v != proposals[i] {
			t.Errorf("vec[%d] = %q, want %q (IC-Validity)", i, v, proposals[i])
		}
	}
	if err := omission.Validate(e); err != nil {
		t.Errorf("trace invalid: %v", err)
	}
}

// silent never sends.
type silent struct{}

func (silent) Init() []sim.Outgoing                   { return nil }
func (silent) Step(int, []msg.Message) []sim.Outgoing { return nil }
func (silent) Decision() (msg.Value, bool)            { return msg.NoDecision, false }
func (silent) Quiescent() bool                        { return true }

func TestICWithSilentByzantine(t *testing.T) {
	proposals := []msg.Value{"a", "b", "c", "d", "e"}
	plan := sim.ByzantinePlan{Machines: map[proc.ID]sim.Machine{2: silent{}}}
	e := runIC(t, 5, 1, proposals, plan)
	d, err := e.CommonDecision(proc.NewSet(0, 1, 3, 4))
	if err != nil {
		t.Fatalf("Agreement violated: %v", err)
	}
	vec, err := msg.DecodeVector(d)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	// Correct entries survive; the silent process's slot is the default.
	for _, i := range []int{0, 1, 3, 4} {
		if vec[i] != proposals[i] {
			t.Errorf("vec[%d] = %q, want %q", i, vec[i], proposals[i])
		}
	}
	if vec[2] != "⊥" {
		t.Errorf("vec[2] = %q, want default", vec[2])
	}
}

func TestICDecidesWithinBound(t *testing.T) {
	e := runIC(t, 4, 2, []msg.Value{"a", "b", "c", "d"}, sim.NoFaults{})
	if e.Rounds > ic.RoundBound(2)+1 {
		t.Errorf("decided after %d rounds, bound %d", e.Rounds, ic.RoundBound(2))
	}
}
