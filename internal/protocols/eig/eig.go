// Package eig implements unauthenticated interactive consistency by
// exponential information gathering (EIG) — the classical unrolling of the
// Pease–Shostak–Lamport oral-messages algorithm [78], as presented by
// Lynch [82]. It tolerates t Byzantine faults when n > 3t, which §5.2
// shows is exactly the unauthenticated solvability frontier, and runs for
// t+1 rounds (optimal for deterministic algorithms [52, 54]).
//
// Every process maintains an EIG tree: nodes are labeled by sequences of
// distinct process IDs of length <= t+1. In round r each process relays
// every level-(r-1) entry whose label does not contain itself; an entry
// (σ, v) received from p_j populates node σ·j. After round t+1 the tree is
// resolved bottom-up by strict majority, and entry j of the decided vector
// is the resolved value of subtree ⟨j⟩. For n > 3t all correct processes
// resolve every subtree identically, and subtree ⟨j⟩ of a correct p_j
// resolves to p_j's proposal — IC-Validity.
//
// The message size is exponential in t (levels have n·(n-1)···(n-l+1)
// nodes); this substrate is intended for the small configurations where
// the solvability experiments run it, exactly like the original algorithm.
package eig

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"expensive/internal/msg"
	"expensive/internal/proc"
	"expensive/internal/sim"
)

// Config parameterizes an EIG interactive-consistency instance.
type Config struct {
	N int
	T int
	// Default stands in for missing values (silent or garbled relays).
	Default msg.Value
}

// RoundBound returns the decision round: t+1.
func RoundBound(t int) int { return t + 1 }

// Validate checks the resilience precondition n > 3t — the unauthenticated
// solvability frontier (Theorem 4 / [55, 78]).
func (c Config) Validate() error {
	if c.N <= 3*c.T {
		return fmt.Errorf("eig: requires n > 3t, got n=%d t=%d", c.N, c.T)
	}
	return nil
}

// New returns the honest-machine factory. The decision is the canonical
// encoding of the resolved n-vector (IC semantics); consensus variants are
// obtained by composing with reduction.FromIC.
func New(cfg Config) sim.Factory {
	return func(id proc.ID, proposal msg.Value) sim.Machine {
		return &machine{cfg: cfg, id: id, proposal: proposal, val: map[string]msg.Value{"": proposal}}
	}
}

type machine struct {
	cfg      Config
	id       proc.ID
	proposal msg.Value

	// val maps a label key ("3.0.5"; "" is the root ε) to the stored value.
	val map[string]msg.Value

	decided  bool
	decision msg.Value
	done     bool
}

var _ sim.Machine = (*machine)(nil)

type pair struct {
	L []int
	V msg.Value
}

type payload struct {
	P []pair
}

// decodePayload memoizes payload decoding (msg.CachedDecoder): level
// relays repeat the same bodies across probes. Decoded payloads are
// shared and read-only — labels are copied before extension.
var decodePayload = msg.CachedDecoder[payload]()

func key(label []int) string {
	parts := make([]string, len(label))
	for i, x := range label {
		parts[i] = strconv.Itoa(x)
	}
	return strings.Join(parts, ".")
}

func contains(label []int, id int) bool {
	for _, x := range label {
		if x == id {
			return true
		}
	}
	return false
}

// labels enumerates all valid labels of the given length in lexicographic
// order (sequences of distinct IDs from 0..n-1).
func labels(n, length int) [][]int {
	if length == 0 {
		return [][]int{{}}
	}
	var out [][]int
	for _, prefix := range labels(n, length-1) {
		for j := 0; j < n; j++ {
			if !contains(prefix, j) {
				lab := append(append([]int{}, prefix...), j)
				out = append(out, lab)
			}
		}
	}
	return out
}

func (m *machine) broadcastLevel(level int) []sim.Outgoing {
	var pairs []pair
	for _, lab := range labels(m.cfg.N, level) {
		if contains(lab, int(m.id)) {
			continue
		}
		v, ok := m.val[key(lab)]
		if !ok {
			v = m.cfg.Default
		}
		pairs = append(pairs, pair{L: lab, V: v})
		// The channel model has no self-messages; deliver our own relay to
		// ourselves directly (node σ·i).
		if level+1 <= m.cfg.T+1 {
			child := append(append([]int{}, lab...), int(m.id))
			if _, ok := m.val[key(child)]; !ok {
				m.val[key(child)] = v
			}
		}
	}
	if len(pairs) == 0 {
		return nil
	}
	body := msg.Encode(payload{P: pairs})
	out := make([]sim.Outgoing, 0, m.cfg.N-1)
	for p := proc.ID(0); p < proc.ID(m.cfg.N); p++ {
		if p != m.id {
			out = append(out, sim.Outgoing{To: p, Payload: body})
		}
	}
	return out
}

// Init implements sim.Machine: round 1 broadcasts the root value (own
// proposal) as the pair (ε, x_i).
func (m *machine) Init() []sim.Outgoing {
	return m.broadcastLevel(0)
}

// Step implements sim.Machine.
func (m *machine) Step(round int, received []msg.Message) []sim.Outgoing {
	if m.done {
		return nil
	}
	for _, rm := range received {
		p, ok := decodePayload(rm.Payload)
		if !ok {
			continue
		}
		for _, pr := range p.P {
			if len(pr.L) != round-1 {
				continue
			}
			if !validLabel(pr.L, m.cfg.N) || contains(pr.L, int(rm.Sender)) {
				continue
			}
			child := append(append([]int{}, pr.L...), int(rm.Sender))
			if len(child) > m.cfg.T+1 {
				continue
			}
			k := key(child)
			if _, ok := m.val[k]; !ok {
				m.val[k] = pr.V
			}
		}
	}
	// Fill missing level-round entries with the default so later rounds
	// relay a complete level.
	for _, lab := range labels(m.cfg.N, round) {
		if len(lab) > m.cfg.T+1 {
			break
		}
		if _, ok := m.val[key(lab)]; !ok {
			m.val[key(lab)] = m.cfg.Default
		}
	}

	if round >= RoundBound(m.cfg.T) {
		m.decide()
		return nil
	}
	return m.broadcastLevel(round)
}

func validLabel(lab []int, n int) bool {
	seen := make(map[int]bool, len(lab))
	for _, x := range lab {
		if x < 0 || x >= n || seen[x] {
			return false
		}
		seen[x] = true
	}
	return true
}

// resolve computes newval(σ) bottom-up: leaves keep their stored value;
// internal nodes take the strict majority of their resolved children, or
// the default when no strict majority exists.
func (m *machine) resolve(label []int) msg.Value {
	if len(label) == m.cfg.T+1 {
		if v, ok := m.val[key(label)]; ok {
			return v
		}
		return m.cfg.Default
	}
	counts := make(map[msg.Value]int)
	total := 0
	for j := 0; j < m.cfg.N; j++ {
		if contains(label, j) {
			continue
		}
		child := append(append([]int{}, label...), j)
		counts[m.resolve(child)]++
		total++
	}
	var best msg.Value
	bestCount := -1
	keys := make([]msg.Value, 0, len(counts))
	for v := range counts {
		keys = append(keys, v)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, v := range keys {
		if counts[v] > bestCount {
			best, bestCount = v, counts[v]
		}
	}
	if bestCount*2 > total {
		return best
	}
	return m.cfg.Default
}

func (m *machine) decide() {
	vec := make([]msg.Value, m.cfg.N)
	for j := 0; j < m.cfg.N; j++ {
		vec[j] = m.resolve([]int{j})
	}
	m.decision = msg.EncodeVector(vec)
	m.decided, m.done = true, true
}

// Decision implements sim.Machine.
func (m *machine) Decision() (msg.Value, bool) {
	if !m.decided {
		return msg.NoDecision, false
	}
	return m.decision, true
}

// Quiescent implements sim.Machine.
func (m *machine) Quiescent() bool { return m.done }
