package eig_test

import (
	"testing"

	"expensive/internal/msg"
	"expensive/internal/omission"
	"expensive/internal/proc"
	"expensive/internal/protocols/eig"
	"expensive/internal/sim"
)

func runEIG(t *testing.T, n, tf int, proposals []msg.Value, plan sim.FaultPlan) *sim.Execution {
	t.Helper()
	cfg := sim.Config{N: n, T: tf, Proposals: proposals, MaxRounds: eig.RoundBound(tf) + 2}
	e, err := sim.Run(cfg, eig.New(eig.Config{N: n, T: tf, Default: "⊥"}), plan)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return e
}

func decodeCommon(t *testing.T, e *sim.Execution, group proc.Set) []msg.Value {
	t.Helper()
	d, err := e.CommonDecision(group)
	if err != nil {
		t.Fatalf("Agreement violated: %v", err)
	}
	vec, err := msg.DecodeVector(d)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return vec
}

func TestEIGValidityFaultFree(t *testing.T) {
	proposals := []msg.Value{"a", "b", "c", "d"}
	e := runEIG(t, 4, 1, proposals, sim.NoFaults{})
	vec := decodeCommon(t, e, proc.Universe(4))
	for i, v := range vec {
		if v != proposals[i] {
			t.Errorf("vec[%d] = %q, want %q (IC-Validity)", i, v, proposals[i])
		}
	}
	if err := omission.Validate(e); err != nil {
		t.Errorf("trace invalid: %v", err)
	}
}

// twoFace tells even-numbered peers one value and odd-numbered peers
// another, in every round and for every tree label it relays.
type twoFace struct {
	n, t int
	id   proc.ID
}

func (m *twoFace) Init() []sim.Outgoing { return m.emit(0) }

func (m *twoFace) emit(round int) []sim.Outgoing {
	var out []sim.Outgoing
	for p := 0; p < m.n; p++ {
		if proc.ID(p) == m.id {
			continue
		}
		v := "L"
		if p%2 == 0 {
			v = "R"
		}
		// Claim (ε, v) in round 1; relay fabricated level entries later.
		var pairs []map[string]any
		if round == 0 {
			pairs = append(pairs, map[string]any{"L": []int{}, "V": v})
		} else {
			for j := 0; j < m.n; j++ {
				if j == int(m.id) {
					continue
				}
				pairs = append(pairs, map[string]any{"L": []int{j}, "V": v})
			}
		}
		out = append(out, sim.Outgoing{To: proc.ID(p), Payload: msg.Encode(map[string]any{"P": pairs})})
	}
	return out
}

func (m *twoFace) Step(round int, _ []msg.Message) []sim.Outgoing {
	if round >= m.t+1 {
		return nil
	}
	return m.emit(round)
}

func (m *twoFace) Decision() (msg.Value, bool) { return msg.NoDecision, false }
func (m *twoFace) Quiescent() bool             { return false }

func TestEIGAgreementUnderEquivocation(t *testing.T) {
	// n = 7 > 3t with t = 2: two colluding equivocators.
	n, tf := 7, 2
	proposals := []msg.Value{"a", "b", "c", "d", "e", "f", "g"}
	plan := sim.ByzantinePlan{Machines: map[proc.ID]sim.Machine{
		1: &twoFace{n: n, t: tf, id: 1},
		4: &twoFace{n: n, t: tf, id: 4},
	}}
	e := runEIG(t, n, tf, proposals, plan)
	correct := proc.NewSet(0, 2, 3, 5, 6)
	vec := decodeCommon(t, e, correct)
	// IC-Validity for correct entries.
	for _, i := range []int{0, 2, 3, 5, 6} {
		if vec[i] != proposals[i] {
			t.Errorf("vec[%d] = %q, want %q", i, vec[i], proposals[i])
		}
	}
}

func TestEIGSingleByzantineSmall(t *testing.T) {
	// The minimal resilient configuration: n = 4, t = 1.
	n, tf := 4, 1
	proposals := []msg.Value{"a", "b", "c", "d"}
	plan := sim.ByzantinePlan{Machines: map[proc.ID]sim.Machine{3: &twoFace{n: n, t: tf, id: 3}}}
	e := runEIG(t, n, tf, proposals, plan)
	correct := proc.NewSet(0, 1, 2)
	vec := decodeCommon(t, e, correct)
	for _, i := range []int{0, 1, 2} {
		if vec[i] != proposals[i] {
			t.Errorf("vec[%d] = %q, want %q", i, vec[i], proposals[i])
		}
	}
}

func TestEIGResilienceValidation(t *testing.T) {
	if err := (eig.Config{N: 3, T: 1}).Validate(); err == nil {
		t.Error("expected n > 3t validation error")
	}
	if err := (eig.Config{N: 4, T: 1}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestEIGDecidesWithinBound(t *testing.T) {
	e := runEIG(t, 4, 1, []msg.Value{"a", "b", "c", "d"}, sim.NoFaults{})
	if e.Rounds > eig.RoundBound(1)+1 {
		t.Errorf("decided after %d rounds, bound %d", e.Rounds, eig.RoundBound(1))
	}
}
