package eig

import (
	"expensive/internal/catalog"
	"expensive/internal/protocols/ic"
	"expensive/internal/sim"
	"expensive/internal/validity"
)

// The catalog entry: unauthenticated interactive consistency by
// exponential information gathering — the n > 3t solvability frontier.
func init() {
	catalog.Register(catalog.Spec{
		ID:           "eig",
		Title:        "unauthenticated interactive consistency (EIG)",
		Model:        catalog.Unauthenticated,
		Condition:    "n > 3t",
		NeedsDefault: true,
		Supports:     func(n, t int) bool { return n > 3*t },
		Rounds:       func(n, t int) int { return RoundBound(t) },
		New: func(p catalog.Params) (sim.Factory, error) {
			return New(Config{N: p.N, T: p.T, Default: p.Default}), nil
		},
		Decode:   ic.DecodeDecision,
		Validity: func(catalog.Params) validity.Check { return validity.VectorCheck },
	})
}
