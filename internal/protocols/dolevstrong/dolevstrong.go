// Package dolevstrong implements the authenticated Byzantine broadcast
// protocol of Dolev and Strong [52]: a designated sender broadcasts a
// value; after t+1 rounds every correct process decides the sender's value
// if the sender is correct (Sender Validity), and all correct processes
// decide the same value regardless (Agreement). The protocol tolerates any
// t < n corruptions — the maximum possible — and is the substrate for the
// authenticated interactive consistency used by the general solvability
// construction (Algorithm 2 / Lemma 9).
//
// Mechanics: a value is "accepted in round r" when it carries a chain of r
// signatures from r distinct processes beginning with the sender. Each
// correct process forwards a newly accepted value once, appending its own
// signature, and tracks at most two accepted values (two are enough to
// prove sender equivocation). After round t+1 a process decides the unique
// accepted value, or the default if it accepted zero or two values.
//
// Message complexity: each correct process forwards at most two values,
// each to n-1 peers, so correct processes send at most 2n(n-1)+n messages —
// the classical O(n²) upper bound that brackets the paper's Ω(t²) lower
// bound from above.
package dolevstrong

import (
	"fmt"
	"sort"

	"expensive/internal/crypto/sig"
	"expensive/internal/msg"
	"expensive/internal/proc"
	"expensive/internal/sim"
)

// Config parameterizes one broadcast instance.
type Config struct {
	N      int
	T      int
	Sender proc.ID
	Scheme sig.Scheme
	// Tag domain-separates signatures across instances (e.g. "bb", "ic/3").
	Tag string
	// Default is decided when the sender provably equivocated or stayed
	// silent.
	Default msg.Value
	// UnsafeNoRelay disables the forwarding of newly accepted values. This
	// is an ablation hook for tests and experiments: without relaying, an
	// equivocating sender splits the correct processes and Agreement fails.
	// Never enable outside experiments.
	UnsafeNoRelay bool
}

// RoundBound returns the number of rounds after which every correct
// process has decided: t+1.
func RoundBound(t int) int { return t + 1 }

// Link is one signature in a relay chain.
type Link struct {
	S int           // signer
	G sig.Signature // signature over SignedData(tag, value)
}

// Item is a value together with its signature chain.
type Item struct {
	V msg.Value
	C []Link
}

// Payload is the wire format: the items a process relays this round.
type Payload struct {
	Items []Item
}

// decodePayload memoizes payload decoding (msg.CachedDecoder): relayed
// item sets recur across rounds, probes and seeds. Decoded payloads are
// shared and read-only — chains are copied before extension (chainFor).
var decodePayload = msg.CachedDecoder[Payload]()

// SignedData is the byte string each chain signature covers.
func SignedData(tag string, v msg.Value) []byte {
	return []byte(tag + "\x00" + string(v))
}

// New returns the honest-machine factory for one broadcast instance.
func New(cfg Config) sim.Factory {
	return func(id proc.ID, proposal msg.Value) sim.Machine {
		return &machine{cfg: cfg, id: id, proposal: proposal}
	}
}

type machine struct {
	cfg      cfg2
	id       proc.ID
	proposal msg.Value

	extracted []msg.Value
	decided   bool
	decision  msg.Value
	done      bool
}

// cfg2 aliases Config so the struct literal in New stays short.
type cfg2 = Config

var _ sim.Machine = (*machine)(nil)

func (m *machine) broadcast(items []Item) []sim.Outgoing {
	if len(items) == 0 {
		return nil
	}
	payload := msg.Encode(Payload{Items: items})
	out := make([]sim.Outgoing, 0, m.cfg.N-1)
	for p := proc.ID(0); p < proc.ID(m.cfg.N); p++ {
		if p != m.id {
			out = append(out, sim.Outgoing{To: p, Payload: payload})
		}
	}
	return out
}

// Init implements sim.Machine: the sender signs and broadcasts its
// proposal in round 1.
func (m *machine) Init() []sim.Outgoing {
	if m.id != m.cfg.Sender {
		return nil
	}
	m.extracted = append(m.extracted, m.proposal)
	s, err := m.cfg.Scheme.Sign(m.id, SignedData(m.cfg.Tag, m.proposal))
	if err != nil {
		// An honest machine can always sign for itself; failing to means the
		// harness wired a wrong scheme. Stay silent; the run will surface it.
		return nil
	}
	return m.broadcast([]Item{{V: m.proposal, C: []Link{{S: int(m.id), G: s}}}})
}

// validChain checks that item carries round-many valid, distinct
// signatures beginning with the sender.
func (m *machine) validChain(it Item, round int) bool {
	if len(it.C) != round {
		return false
	}
	if proc.ID(it.C[0].S) != m.cfg.Sender {
		return false
	}
	seen := make(map[int]bool, len(it.C))
	data := SignedData(m.cfg.Tag, it.V)
	for _, l := range it.C {
		if l.S < 0 || l.S >= m.cfg.N || seen[l.S] {
			return false
		}
		seen[l.S] = true
		if !m.cfg.Scheme.Verify(proc.ID(l.S), data, l.G) {
			return false
		}
	}
	return true
}

func (m *machine) hasExtracted(v msg.Value) bool {
	for _, x := range m.extracted {
		if x == v {
			return true
		}
	}
	return false
}

// Step implements sim.Machine.
func (m *machine) Step(round int, received []msg.Message) []sim.Outgoing {
	if m.done {
		return nil
	}
	var newlyAccepted []msg.Value
	for _, rm := range received {
		p, ok := decodePayload(rm.Payload)
		if !ok {
			continue // garbage from a Byzantine peer
		}
		for _, it := range p.Items {
			if len(m.extracted) >= 2 || m.hasExtracted(it.V) {
				continue
			}
			if !m.validChain(it, round) {
				continue
			}
			inChain := false
			for _, l := range it.C {
				if proc.ID(l.S) == m.id {
					inChain = true
					break
				}
			}
			if inChain {
				continue
			}
			m.extracted = append(m.extracted, it.V)
			newlyAccepted = append(newlyAccepted, it.V)
		}
	}

	if round >= RoundBound(m.cfg.T) {
		// End of round t+1: decide.
		if len(m.extracted) == 1 {
			m.decision = m.extracted[0]
		} else {
			m.decision = m.cfg.Default
		}
		m.decided, m.done = true, true
		return nil
	}

	// Forward newly accepted values in round+1 with our signature appended.
	if m.cfg.UnsafeNoRelay {
		return nil
	}
	sort.Slice(newlyAccepted, func(i, j int) bool { return newlyAccepted[i] < newlyAccepted[j] })
	items := make([]Item, 0, len(newlyAccepted))
	for _, v := range newlyAccepted {
		s, err := m.cfg.Scheme.Sign(m.id, SignedData(m.cfg.Tag, v))
		if err != nil {
			continue
		}
		chain := m.chainFor(v, received, round)
		if chain == nil {
			continue
		}
		items = append(items, Item{V: v, C: append(chain, Link{S: int(m.id), G: s})})
	}
	return m.broadcast(items)
}

// chainFor recovers the valid chain that caused v's acceptance this round.
func (m *machine) chainFor(v msg.Value, received []msg.Message, round int) []Link {
	for _, rm := range received {
		p, ok := decodePayload(rm.Payload)
		if !ok {
			continue
		}
		for _, it := range p.Items {
			if it.V != v || !m.validChain(it, round) {
				continue
			}
			return append([]Link{}, it.C...)
		}
	}
	return nil
}

// Decision implements sim.Machine.
func (m *machine) Decision() (msg.Value, bool) {
	if !m.decided {
		return msg.NoDecision, false
	}
	return m.decision, true
}

// Quiescent implements sim.Machine.
func (m *machine) Quiescent() bool { return m.done }

// Validate sanity-checks a config.
func (c Config) Validate() error {
	switch {
	case c.N < 2 || c.T < 0 || c.T >= c.N:
		return fmt.Errorf("dolevstrong: need 0 <= t < n, n >= 2; got n=%d t=%d", c.N, c.T)
	case c.Sender < 0 || int(c.Sender) >= c.N:
		return fmt.Errorf("dolevstrong: sender %v outside Π", c.Sender)
	case c.Scheme == nil:
		return fmt.Errorf("dolevstrong: nil signature scheme")
	}
	return nil
}
