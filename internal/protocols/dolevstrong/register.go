package dolevstrong

import (
	"expensive/internal/catalog"
	"expensive/internal/sim"
	"expensive/internal/validity"
)

// The catalog entry: authenticated Byzantine broadcast with a designated
// sender, the maximum-resilience substrate (any t < n).
func init() {
	catalog.Register(catalog.Spec{
		ID:           "dolev-strong",
		Title:        "Dolev-Strong authenticated broadcast, designated sender",
		Model:        catalog.Authenticated,
		Condition:    "t < n",
		NeedsScheme:  true,
		NeedsSender:  true,
		NeedsDefault: true,
		Rounds:       func(n, t int) int { return RoundBound(t) },
		New: func(p catalog.Params) (sim.Factory, error) {
			return New(Config{N: p.N, T: p.T, Sender: p.Sender, Scheme: p.Scheme, Tag: "bb", Default: p.Default}), nil
		},
		Validity: func(p catalog.Params) validity.Check {
			return validity.SenderCheck(p.Sender)
		},
	})
}
