package dolevstrong_test

import (
	"testing"

	"expensive/internal/crypto/sig"
	"expensive/internal/msg"
	"expensive/internal/omission"
	"expensive/internal/proc"
	"expensive/internal/protocols/dolevstrong"
	"expensive/internal/sim"
)

func newCfg(n, t int, scheme sig.Scheme) dolevstrong.Config {
	return dolevstrong.Config{N: n, T: t, Sender: 0, Scheme: scheme, Tag: "bb", Default: "⊥"}
}

func run(t *testing.T, cfg dolevstrong.Config, proposals []msg.Value, plan sim.FaultPlan) *sim.Execution {
	t.Helper()
	sc := sim.Config{
		N:         cfg.N,
		T:         cfg.T,
		Proposals: proposals,
		MaxRounds: dolevstrong.RoundBound(cfg.T) + 2,
	}
	e, err := sim.Run(sc, dolevstrong.New(cfg), plan)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return e
}

func uniform(n int, v msg.Value) []msg.Value {
	out := make([]msg.Value, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func TestCorrectSenderAllSchemes(t *testing.T) {
	for name, scheme := range map[string]sig.Scheme{
		"ideal":   sig.NewIdeal("ds-test"),
		"ed25519": sig.NewEd25519("ds-test", 5),
	} {
		t.Run(name, func(t *testing.T) {
			cfg := newCfg(5, 2, scheme)
			e := run(t, cfg, uniform(5, "vote-42"), sim.NoFaults{})
			d, err := e.CommonDecision(proc.Universe(5))
			if err != nil {
				t.Fatalf("CommonDecision: %v", err)
			}
			if d != "vote-42" {
				t.Errorf("decided %q, want sender's value", d)
			}
			if e.Rounds > dolevstrong.RoundBound(2)+1 {
				t.Errorf("decided after %d rounds, bound is %d", e.Rounds, dolevstrong.RoundBound(2))
			}
			if err := omission.Validate(e); err != nil {
				t.Errorf("trace invalid: %v", err)
			}
		})
	}
}

func TestMessageComplexityQuadratic(t *testing.T) {
	scheme := sig.NewIdeal("ds-complexity")
	for _, n := range []int{4, 8, 16} {
		tf := n/2 - 1
		cfg := newCfg(n, tf, scheme)
		e := run(t, cfg, uniform(n, "v"), sim.NoFaults{})
		// Each correct process forwards each accepted value at most once:
		// with a correct sender there is one value, so <= n(n-1)+n messages.
		limit := 2*n*(n-1) + n
		if got := e.CorrectMessages(); got > limit {
			t.Errorf("n=%d: %d messages > O(n²) bound %d", n, got, limit)
		}
	}
}

// silentMachine is a Byzantine sender that never speaks.
type silentMachine struct{}

func (silentMachine) Init() []sim.Outgoing                   { return nil }
func (silentMachine) Step(int, []msg.Message) []sim.Outgoing { return nil }
func (silentMachine) Decision() (msg.Value, bool)            { return msg.NoDecision, false }
func (silentMachine) Quiescent() bool                        { return true }

func TestSilentSenderDecidesDefault(t *testing.T) {
	scheme := sig.NewIdeal("ds-silent")
	cfg := newCfg(5, 2, scheme)
	plan := sim.ByzantinePlan{Machines: map[proc.ID]sim.Machine{0: silentMachine{}}}
	e := run(t, cfg, uniform(5, "v"), plan)
	d, err := e.CommonDecision(proc.Range(1, 5))
	if err != nil {
		t.Fatalf("CommonDecision: %v", err)
	}
	if d != "⊥" {
		t.Errorf("decided %q, want default", d)
	}
}

// equivocator sends value vA (signed) to the first half of the peers and
// vB to the rest in round 1, then stays silent.
type equivocator struct {
	cfg    dolevstrong.Config
	vA, vB msg.Value
	signer sig.Scheme
}

func (m *equivocator) item(v msg.Value) dolevstrong.Item {
	s, err := m.signer.Sign(m.cfg.Sender, dolevstrong.SignedData(m.cfg.Tag, v))
	if err != nil {
		panic("test adversary cannot sign: " + err.Error())
	}
	return dolevstrong.Item{V: v, C: []dolevstrong.Link{{S: int(m.cfg.Sender), G: s}}}
}

func (m *equivocator) Init() []sim.Outgoing {
	var out []sim.Outgoing
	for p := 1; p < m.cfg.N; p++ {
		it := m.item(m.vA)
		if p > m.cfg.N/2 {
			it = m.item(m.vB)
		}
		out = append(out, sim.Outgoing{
			To:      proc.ID(p),
			Payload: msg.Encode(dolevstrong.Payload{Items: []dolevstrong.Item{it}}),
		})
	}
	return out
}

func (m *equivocator) Step(int, []msg.Message) []sim.Outgoing { return nil }
func (m *equivocator) Decision() (msg.Value, bool)            { return msg.NoDecision, false }
func (m *equivocator) Quiescent() bool                        { return true }

func TestEquivocatingSenderAgreementHolds(t *testing.T) {
	scheme := sig.NewIdeal("ds-equiv")
	cfg := newCfg(7, 2, scheme)
	adv := &equivocator{cfg: cfg, vA: "A", vB: "B", signer: scheme}
	plan := sim.ByzantinePlan{Machines: map[proc.ID]sim.Machine{0: adv}}
	e := run(t, cfg, uniform(7, "ignored"), plan)
	d, err := e.CommonDecision(proc.Range(1, 7))
	if err != nil {
		t.Fatalf("Agreement violated under equivocation: %v", err)
	}
	if d != "⊥" {
		t.Errorf("decided %q, want default (sender equivocated)", d)
	}
}

func TestEquivocationBreaksWithoutRelay(t *testing.T) {
	// Ablation: with relaying disabled the halves never learn about the
	// other value — Agreement fails. This is why Dolev-Strong needs its
	// (quadratic) relay traffic.
	scheme := sig.NewIdeal("ds-norelay")
	cfg := newCfg(7, 2, scheme)
	cfg.UnsafeNoRelay = true
	adv := &equivocator{cfg: cfg, vA: "A", vB: "B", signer: scheme}
	plan := sim.ByzantinePlan{Machines: map[proc.ID]sim.Machine{0: adv}}
	e := run(t, cfg, uniform(7, "ignored"), plan)
	if _, err := e.CommonDecision(proc.Range(1, 7)); err == nil {
		t.Fatal("expected Agreement violation with relaying ablated")
	}
}

// forger injects a value with an invalid signature chain.
type forger struct {
	cfg dolevstrong.Config
	id  proc.ID
}

func (m *forger) Init() []sim.Outgoing {
	it := dolevstrong.Item{V: "forged", C: []dolevstrong.Link{{S: 0, G: "deadbeef"}}}
	var out []sim.Outgoing
	for p := 0; p < m.cfg.N; p++ {
		if proc.ID(p) == m.id {
			continue
		}
		out = append(out, sim.Outgoing{
			To:      proc.ID(p),
			Payload: msg.Encode(dolevstrong.Payload{Items: []dolevstrong.Item{it}}),
		})
	}
	return out
}

func (m *forger) Step(int, []msg.Message) []sim.Outgoing { return nil }
func (m *forger) Decision() (msg.Value, bool)            { return msg.NoDecision, false }
func (m *forger) Quiescent() bool                        { return true }

func TestForgedChainRejected(t *testing.T) {
	scheme := sig.NewIdeal("ds-forge")
	cfg := newCfg(5, 1, scheme)
	plan := sim.ByzantinePlan{Machines: map[proc.ID]sim.Machine{3: &forger{cfg: cfg, id: 3}}}
	e := run(t, cfg, uniform(5, "real"), plan)
	d, err := e.CommonDecision(proc.NewSet(0, 1, 2, 4))
	if err != nil {
		t.Fatalf("CommonDecision: %v", err)
	}
	if d != "real" {
		t.Errorf("decided %q despite forged injection, want sender's value", d)
	}
}

// lateChain is a two-collaborator attack: the Byzantine sender signs a
// second value and hands it to a Byzantine accomplice, which releases the
// double-signed chain to exactly one correct process in the final round.
type lateSender struct {
	cfg    dolevstrong.Config
	signer sig.Scheme
}

func (m *lateSender) Init() []sim.Outgoing {
	s, err := m.signer.Sign(0, dolevstrong.SignedData(m.cfg.Tag, "good"))
	if err != nil {
		panic(err)
	}
	it := dolevstrong.Item{V: "good", C: []dolevstrong.Link{{S: 0, G: s}}}
	var out []sim.Outgoing
	for p := 1; p < m.cfg.N; p++ {
		out = append(out, sim.Outgoing{
			To:      proc.ID(p),
			Payload: msg.Encode(dolevstrong.Payload{Items: []dolevstrong.Item{it}}),
		})
	}
	return out
}

func (m *lateSender) Step(int, []msg.Message) []sim.Outgoing { return nil }
func (m *lateSender) Decision() (msg.Value, bool)            { return msg.NoDecision, false }
func (m *lateSender) Quiescent() bool                        { return true }

type accomplice struct {
	cfg    dolevstrong.Config
	signer sig.Scheme
	victim proc.ID
}

func (m *accomplice) Init() []sim.Outgoing { return nil }

func (m *accomplice) Step(round int, _ []msg.Message) []sim.Outgoing {
	// Release a 2-signature chain for "evil" at the start of round 2 — with
	// t=2 that is still before the t+1 cutoff, so the victim must relay it
	// and everyone converges on the default.
	if round != 1 {
		return nil
	}
	s0, err := m.signer.Sign(0, dolevstrong.SignedData(m.cfg.Tag, "evil"))
	if err != nil {
		panic(err)
	}
	s1, err := m.signer.Sign(1, dolevstrong.SignedData(m.cfg.Tag, "evil"))
	if err != nil {
		panic(err)
	}
	it := dolevstrong.Item{V: "evil", C: []dolevstrong.Link{{S: 0, G: s0}, {S: 1, G: s1}}}
	return []sim.Outgoing{{To: m.victim, Payload: msg.Encode(dolevstrong.Payload{Items: []dolevstrong.Item{it}})}}
}

func (m *accomplice) Decision() (msg.Value, bool) { return msg.NoDecision, false }
func (m *accomplice) Quiescent() bool             { return false }

func TestLateChainAttackAgreementHolds(t *testing.T) {
	scheme := sig.NewIdeal("ds-late")
	cfg := newCfg(6, 2, scheme)
	adv := sim.ByzantinePlan{Machines: map[proc.ID]sim.Machine{
		0: &lateSender{cfg: cfg, signer: scheme},
		1: &accomplice{cfg: cfg, signer: scheme, victim: 2},
	}}
	e := run(t, cfg, uniform(6, "ignored"), adv)
	d, err := e.CommonDecision(proc.Range(2, 6))
	if err != nil {
		t.Fatalf("Agreement violated by late chain release: %v", err)
	}
	// The victim relays the second value, so everyone sees the
	// equivocation and decides the default.
	if d != "⊥" {
		t.Errorf("decided %q, want default", d)
	}
}

func TestConfigValidate(t *testing.T) {
	scheme := sig.NewIdeal("x")
	cases := []dolevstrong.Config{
		{N: 1, T: 0, Sender: 0, Scheme: scheme},
		{N: 4, T: 4, Sender: 0, Scheme: scheme},
		{N: 4, T: 1, Sender: 9, Scheme: scheme},
		{N: 4, T: 1, Sender: 0, Scheme: nil},
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	if err := newCfg(4, 1, scheme).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}
