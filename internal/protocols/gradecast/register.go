package gradecast

import (
	"fmt"

	"expensive/internal/catalog"
	"expensive/internal/msg"
	"expensive/internal/proc"
	"expensive/internal/sim"
	"expensive/internal/validity"
)

// Compat is the graded-broadcast agreement relation: two correct outputs
// are compatible when their grades differ by at most one (G2: a grade-2
// output forces everyone to grade >= 1) and, whenever both grades are
// >= 1, their values match (G3). Identical outputs are NOT promised —
// neighboring grades are legitimate under a Byzantine sender — which is
// why the catalog entry replaces strict Agreement with this relation.
func Compat(a, b msg.Value) error {
	ga, va, err := Parse(a)
	if err != nil {
		return fmt.Errorf("output %q is not graded: %w", a, err)
	}
	gb, vb, err := Parse(b)
	if err != nil {
		return fmt.Errorf("output %q is not graded: %w", b, err)
	}
	if ga-gb > 1 || gb-ga > 1 {
		return fmt.Errorf("grades %d and %d differ by more than one (G2)", ga, gb)
	}
	if ga >= 1 && gb >= 1 && va != vb {
		return fmt.Errorf("grade >= 1 outputs carry different values %q and %q (G3)", va, vb)
	}
	return nil
}

// The catalog entry: Feldman–Micali graded broadcast. The validity
// property is G1 — a correct sender's value must be output by every
// correct process with grade 2; Agreement is the Compat relation above.
func init() {
	catalog.Register(catalog.Spec{
		ID:          "gradecast",
		Title:       "Feldman–Micali graded broadcast, designated sender, 3 rounds",
		Model:       catalog.Unauthenticated,
		Condition:   "n > 3t",
		NeedsSender: true,
		Supports:    func(n, t int) bool { return n > 3*t },
		Rounds:      func(n, t int) int { return RoundBound() },
		New: func(p catalog.Params) (sim.Factory, error) {
			return New(Config{N: p.N, T: p.T, Sender: p.Sender}), nil
		},
		Agreement: Compat,
		Decode: func(v msg.Value) (string, error) {
			grade, val, err := Parse(v)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("grade=%d value=%s", grade, val), nil
		},
		Validity: func(p catalog.Params) validity.Check {
			sender := p.Sender
			return func(proposals []msg.Value, correct proc.Set, decision msg.Value) error {
				if !correct.Contains(sender) {
					return nil // G1 binds only while the sender is correct
				}
				grade, v, err := Parse(decision)
				if err != nil {
					return fmt.Errorf("decision %q is not a graded output: %w", decision, err)
				}
				if grade != 2 || v != proposals[sender] {
					return fmt.Errorf("correct sender %s proposed %q but correct processes output grade %d value %q",
						sender, proposals[sender], grade, v)
				}
				return nil
			}
		},
	})
}
