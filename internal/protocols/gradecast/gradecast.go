// Package gradecast implements Feldman–Micali graded broadcast for n > 3t:
// a designated sender distributes a value and every correct process
// outputs a (value, grade) pair with grade ∈ {0, 1, 2} such that
//
//	(G1) a correct sender's value is output by every correct process with
//	     grade 2;
//	(G2) if any correct process outputs grade 2, every correct process
//	     outputs the same value with grade >= 1; and
//	(G3) any two correct processes with grade >= 1 output the same value.
//
// Gradecast is the classical "detectable broadcast" building block of
// round-efficient Byzantine agreement (Feldman–Micali 1988) and of the
// crusader-broadcast lineage the paper's related work cites [13]. It is
// included as an additional unauthenticated substrate: three rounds,
// Θ(n²) messages — another data point above the paper's quadratic floor.
//
// Protocol: round 1 the sender sends v to all; round 2 every process
// echoes what it received; round 3 a process that saw n-t matching echoes
// supports the value; outputs: grade 2 on n-t supports, grade 1 on t+1
// supports, grade 0 otherwise.
package gradecast

import (
	"fmt"
	"sort"
	"strings"

	"expensive/internal/msg"
	"expensive/internal/proc"
	"expensive/internal/sim"
)

// Config parameterizes one gradecast instance.
type Config struct {
	N      int
	T      int
	Sender proc.ID
}

// Validate checks the resilience precondition n > 3t.
func (c Config) Validate() error {
	if c.N <= 3*c.T {
		return fmt.Errorf("gradecast: requires n > 3t, got n=%d t=%d", c.N, c.T)
	}
	if c.Sender < 0 || int(c.Sender) >= c.N {
		return fmt.Errorf("gradecast: sender %v outside Π", c.Sender)
	}
	return nil
}

// RoundBound returns the decision round: 3.
func RoundBound() int { return 3 }

// Output encodes a graded output as a Value: "g|<grade>|<value>".
func Output(grade int, v msg.Value) msg.Value {
	return msg.Value(fmt.Sprintf("g|%d|%s", grade, v))
}

// Parse splits a graded output.
func Parse(out msg.Value) (grade int, v msg.Value, err error) {
	parts := strings.SplitN(string(out), "|", 3)
	if len(parts) != 3 || parts[0] != "g" {
		return 0, "", fmt.Errorf("gradecast: malformed output %q", out)
	}
	if _, err := fmt.Sscanf(parts[1], "%d", &grade); err != nil {
		return 0, "", fmt.Errorf("gradecast: malformed grade in %q", out)
	}
	return grade, msg.Value(parts[2]), nil
}

// New returns the honest-machine factory. The machine's decision is the
// encoded graded output after round 3.
func New(cfg Config) sim.Factory {
	return func(id proc.ID, proposal msg.Value) sim.Machine {
		return &machine{cfg: cfg, id: id, proposal: proposal}
	}
}

type machine struct {
	cfg      Config
	id       proc.ID
	proposal msg.Value

	fromSender msg.Value
	hasValue   bool
	support    msg.Value
	hasSupport bool

	decided  bool
	decision msg.Value
	done     bool
}

var _ sim.Machine = (*machine)(nil)

func (m *machine) broadcast(body string) []sim.Outgoing {
	out := make([]sim.Outgoing, 0, m.cfg.N-1)
	for p := proc.ID(0); p < proc.ID(m.cfg.N); p++ {
		if p != m.id {
			out = append(out, sim.Outgoing{To: p, Payload: body})
		}
	}
	return out
}

// Init implements sim.Machine: the sender distributes its value.
func (m *machine) Init() []sim.Outgoing {
	if m.id != m.cfg.Sender {
		return nil
	}
	m.fromSender, m.hasValue = m.proposal, true
	return m.broadcast(string(m.proposal))
}

// tally returns the value with the highest count (ties broken by value
// order) and its count, over senders' single votes.
func tally(votes map[proc.ID]msg.Value) (msg.Value, int) {
	counts := make(map[msg.Value]int, len(votes))
	//balint:allow maporder commutative count fold; winners are read back in sorted key order below
	for _, v := range votes {
		counts[v]++
	}
	keys := make([]msg.Value, 0, len(counts))
	for v := range counts {
		keys = append(keys, v)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	best, bestN := msg.NoDecision, 0
	for _, v := range keys {
		if counts[v] > bestN {
			best, bestN = v, counts[v]
		}
	}
	return best, bestN
}

func votesFrom(received []msg.Message) map[proc.ID]msg.Value {
	votes := make(map[proc.ID]msg.Value, len(received))
	for _, rm := range received {
		votes[rm.Sender] = msg.Value(rm.Payload)
	}
	return votes
}

// Step implements sim.Machine.
func (m *machine) Step(round int, received []msg.Message) []sim.Outgoing {
	if m.done {
		return nil
	}
	switch round {
	case 1:
		// Record the sender's value; echo it in round 2.
		for _, rm := range received {
			if rm.Sender == m.cfg.Sender {
				m.fromSender, m.hasValue = msg.Value(rm.Payload), true
			}
		}
		if !m.hasValue {
			return nil // nothing to echo
		}
		return m.broadcast(string(m.fromSender))
	case 2:
		// Count echoes (own echo included); support on n-t agreement.
		votes := votesFrom(received)
		if m.hasValue {
			votes[m.id] = m.fromSender
		}
		best, count := tally(votes)
		if count >= m.cfg.N-m.cfg.T {
			m.support, m.hasSupport = best, true
			return m.broadcast(string(best))
		}
		return nil
	default: // round 3: grade
		votes := votesFrom(received)
		if m.hasSupport {
			votes[m.id] = m.support
		}
		best, count := tally(votes)
		switch {
		case count >= m.cfg.N-m.cfg.T:
			m.decision = Output(2, best)
		case count >= m.cfg.T+1:
			m.decision = Output(1, best)
		default:
			m.decision = Output(0, "")
		}
		m.decided, m.done = true, true
		return nil
	}
}

// Decision implements sim.Machine.
func (m *machine) Decision() (msg.Value, bool) {
	if !m.decided {
		return msg.NoDecision, false
	}
	return m.decision, true
}

// Quiescent implements sim.Machine.
func (m *machine) Quiescent() bool { return m.done }

// CheckProperties verifies G1–G3 on a recorded execution: pass the
// correct set, whether the sender is correct, and the sender's proposal.
func CheckProperties(decisions map[proc.ID]msg.Value, correct proc.Set, senderCorrect bool, senderValue msg.Value) error {
	type graded struct {
		grade int
		v     msg.Value
	}
	outs := make(map[proc.ID]graded, correct.Len())
	for _, id := range correct.Members() {
		d, ok := decisions[id]
		if !ok {
			return fmt.Errorf("gradecast: correct %s has no output", id)
		}
		g, v, err := Parse(d)
		if err != nil {
			return err
		}
		outs[id] = graded{grade: g, v: v}
	}
	// G1.
	if senderCorrect {
		for id, o := range outs {
			if o.grade != 2 || o.v != senderValue {
				return fmt.Errorf("gradecast G1: correct sender, but %s output grade %d value %q", id, o.grade, o.v)
			}
		}
	}
	// G2 and G3.
	for id1, o1 := range outs {
		for id2, o2 := range outs {
			if o1.grade == 2 && o2.grade < 1 {
				return fmt.Errorf("gradecast G2: %s has grade 2 but %s has grade 0", id1, id2)
			}
			if o1.grade >= 1 && o2.grade >= 1 && o1.v != o2.v {
				return fmt.Errorf("gradecast G3: %s outputs %q, %s outputs %q", id1, o1.v, id2, o2.v)
			}
		}
	}
	return nil
}
