package gradecast_test

import (
	"testing"

	"expensive/internal/msg"
	"expensive/internal/omission"
	"expensive/internal/proc"
	"expensive/internal/protocols/gradecast"
	"expensive/internal/sim"
)

func runGC(t *testing.T, cfg gradecast.Config, proposals []msg.Value, plan sim.FaultPlan) map[proc.ID]msg.Value {
	t.Helper()
	sc := sim.Config{N: cfg.N, T: cfg.T, Proposals: proposals, MaxRounds: gradecast.RoundBound() + 1}
	e, err := sim.Run(sc, gradecast.New(cfg), plan)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := omission.Validate(e); err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
	out := make(map[proc.ID]msg.Value, cfg.N)
	for i := 0; i < cfg.N; i++ {
		if d, ok := e.Decision(proc.ID(i)); ok {
			out[proc.ID(i)] = d
		}
	}
	return out
}

func uniform(n int, v msg.Value) []msg.Value {
	out := make([]msg.Value, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func TestCorrectSenderGradeTwo(t *testing.T) {
	cfg := gradecast.Config{N: 7, T: 2, Sender: 3}
	decisions := runGC(t, cfg, uniform(7, "payload"), sim.NoFaults{})
	if err := gradecast.CheckProperties(decisions, proc.Universe(7), true, "payload"); err != nil {
		t.Fatal(err)
	}
}

// splitDealer sends "L" to low ids and "R" to high ids, then behaves
// honestly in later rounds (echoing nothing).
type splitDealer struct{ n int }

func (m *splitDealer) Init() []sim.Outgoing {
	var out []sim.Outgoing
	for p := 1; p < m.n; p++ {
		v := "L"
		if p > m.n/2 {
			v = "R"
		}
		out = append(out, sim.Outgoing{To: proc.ID(p), Payload: v})
	}
	return out
}
func (m *splitDealer) Step(int, []msg.Message) []sim.Outgoing { return nil }
func (m *splitDealer) Decision() (msg.Value, bool)            { return msg.NoDecision, false }
func (m *splitDealer) Quiescent() bool                        { return true }

func TestEquivocatingDealerConsistency(t *testing.T) {
	// G2/G3 must hold even when the dealer equivocates: no two correct
	// processes with positive grades may disagree.
	cfg := gradecast.Config{N: 7, T: 2, Sender: 0}
	plan := sim.ByzantinePlan{Machines: map[proc.ID]sim.Machine{0: &splitDealer{n: 7}}}
	decisions := runGC(t, cfg, uniform(7, "ignored"), plan)
	correct := proc.Range(1, 7)
	if err := gradecast.CheckProperties(decisions, correct, false, ""); err != nil {
		t.Fatal(err)
	}
}

func TestSilentDealerGradeZero(t *testing.T) {
	cfg := gradecast.Config{N: 4, T: 1, Sender: 0}
	plan := sim.ByzantinePlan{Machines: map[proc.ID]sim.Machine{0: silent{}}}
	decisions := runGC(t, cfg, uniform(4, "x"), plan)
	for _, id := range []proc.ID{1, 2, 3} {
		g, _, err := gradecast.Parse(decisions[id])
		if err != nil {
			t.Fatal(err)
		}
		if g != 0 {
			t.Errorf("%s got grade %d for a silent dealer", id, g)
		}
	}
}

type silent struct{}

func (silent) Init() []sim.Outgoing                   { return nil }
func (silent) Step(int, []msg.Message) []sim.Outgoing { return nil }
func (silent) Decision() (msg.Value, bool)            { return msg.NoDecision, false }
func (silent) Quiescent() bool                        { return true }

// echoLiar is a corrupt non-dealer that echoes a fabricated value in
// rounds 2 and 3, trying to drag honest processes to a bogus grade.
type echoLiar struct {
	n  int
	id proc.ID
}

func (m *echoLiar) emit() []sim.Outgoing {
	var out []sim.Outgoing
	for p := 0; p < m.n; p++ {
		if proc.ID(p) != m.id {
			out = append(out, sim.Outgoing{To: proc.ID(p), Payload: "bogus"})
		}
	}
	return out
}
func (m *echoLiar) Init() []sim.Outgoing { return nil }
func (m *echoLiar) Step(round int, _ []msg.Message) []sim.Outgoing {
	if round < 3 {
		return m.emit()
	}
	return nil
}
func (m *echoLiar) Decision() (msg.Value, bool) { return msg.NoDecision, false }
func (m *echoLiar) Quiescent() bool             { return false }

func TestLyingEchoersCannotOverrideCorrectDealer(t *testing.T) {
	cfg := gradecast.Config{N: 7, T: 2, Sender: 0}
	plan := sim.ByzantinePlan{Machines: map[proc.ID]sim.Machine{
		5: &echoLiar{n: 7, id: 5},
		6: &echoLiar{n: 7, id: 6},
	}}
	decisions := runGC(t, cfg, uniform(7, "truth"), plan)
	correct := proc.NewSet(0, 1, 2, 3, 4)
	if err := gradecast.CheckProperties(decisions, correct, true, "truth"); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (gradecast.Config{N: 6, T: 2, Sender: 0}).Validate(); err == nil {
		t.Error("expected n > 3t error")
	}
	if err := (gradecast.Config{N: 7, T: 2, Sender: 9}).Validate(); err == nil {
		t.Error("expected sender range error")
	}
	if err := (gradecast.Config{N: 7, T: 2, Sender: 0}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	if _, _, err := gradecast.Parse("junk"); err == nil {
		t.Error("expected parse error")
	}
	if _, _, err := gradecast.Parse("g|x|v"); err == nil {
		t.Error("expected grade parse error")
	}
	g, v, err := gradecast.Parse(gradecast.Output(2, "val"))
	if err != nil || g != 2 || v != "val" {
		t.Errorf("round trip: %d %q %v", g, v, err)
	}
}

func TestMessageComplexityQuadratic(t *testing.T) {
	n := 10
	cfg := gradecast.Config{N: n, T: 3, Sender: 0}
	sc := sim.Config{N: n, T: 3, Proposals: uniform(n, "v"), MaxRounds: gradecast.RoundBound() + 1}
	e, err := sim.Run(sc, gradecast.New(cfg), sim.NoFaults{})
	if err != nil {
		t.Fatal(err)
	}
	// One dealer round + two all-to-all rounds: <= (n-1) + 2n(n-1).
	limit := (n - 1) + 2*n*(n-1)
	if got := e.CorrectMessages(); got > limit {
		t.Errorf("%d messages > bound %d", got, limit)
	}
}
