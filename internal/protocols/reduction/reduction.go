// Package reduction implements the paper's two constructive reductions:
//
//   - Algorithm 1 (§4.2): a zero-message reduction from weak consensus to
//     any solvable non-trivial agreement problem P. Proposing 0 (resp. 1)
//     feeds P the fixed fully-correct input configuration c0 (resp. c1);
//     deciding v'_0 from P maps to 0, anything else to 1. Lemma 18 shows
//     this is a correct weak consensus algorithm with *exactly* the message
//     complexity of P — which is how the Ω(t²) bound generalizes
//     (Theorem 3).
//
//   - Algorithm 2 (§5.2.2): a reduction from any agreement problem P
//     satisfying the containment condition to interactive consistency. A
//     process forwards its proposal to IC and decides Γ(vec) on the decided
//     vector. This is the sufficiency half of the general solvability
//     theorem (Theorem 4) and the way this library *derives protocols
//     automatically* from validity properties.
package reduction

import (
	"fmt"

	"expensive/internal/msg"
	"expensive/internal/proc"
	"expensive/internal/sim"
)

// Gamma is the Turing-computable selector of Definition 3: it maps a
// decided I_n vector to a value admissible under every contained input
// configuration.
type Gamma func(vec []msg.Value) msg.Value

// FromIC implements Algorithm 2: wrap an interactive-consistency factory
// so that the machine decides Γ(vec) once IC decides vec. The reduction
// adds no messages.
func FromIC(icFactory sim.Factory, gamma Gamma) sim.Factory {
	return func(id proc.ID, proposal msg.Value) sim.Machine {
		return &gammaMachine{inner: icFactory(id, proposal), gamma: gamma}
	}
}

type gammaMachine struct {
	inner sim.Machine
	gamma Gamma

	decided  bool
	decision msg.Value
}

var _ sim.Machine = (*gammaMachine)(nil)

func (m *gammaMachine) Init() []sim.Outgoing { return m.inner.Init() }

func (m *gammaMachine) Step(round int, received []msg.Message) []sim.Outgoing {
	out := m.inner.Step(round, received)
	if !m.decided {
		if v, ok := m.inner.Decision(); ok {
			vec, err := msg.DecodeVector(v)
			if err == nil {
				m.decided, m.decision = true, m.gamma(vec)
			}
		}
	}
	return out
}

func (m *gammaMachine) Decision() (msg.Value, bool) {
	if !m.decided {
		return msg.NoDecision, false
	}
	return m.decision, true
}

func (m *gammaMachine) Quiescent() bool { return m.inner.Quiescent() }

// Alg1Spec fixes the ingredients of Algorithm 1 (Table 2): the two
// fully-correct input configurations and the value P decides under c0.
type Alg1Spec struct {
	// C0 is an input configuration of P with all processes correct
	// (π(c0) = Π); proposing 0 to weak consensus proposes C0[i] to P.
	C0 []msg.Value
	// C1 is a fully-correct input configuration containing some c1* with
	// v'_0 ∉ val(c1*); proposing 1 proposes C1[i].
	C1 []msg.Value
	// V0 is the value P decides in the fully-correct execution on C0.
	V0 msg.Value
}

// WeakFromAgreement implements Algorithm 1: builds a binary weak consensus
// factory on top of any factory solving P, adding zero messages.
func WeakFromAgreement(inner sim.Factory, spec Alg1Spec) sim.Factory {
	return func(id proc.ID, proposal msg.Value) sim.Machine {
		prop := spec.C0[id]
		if proposal == msg.One {
			prop = spec.C1[id]
		}
		return &alg1Machine{inner: inner(id, prop), v0: spec.V0}
	}
}

type alg1Machine struct {
	inner sim.Machine
	v0    msg.Value

	decided  bool
	decision msg.Value
}

var _ sim.Machine = (*alg1Machine)(nil)

func (m *alg1Machine) Init() []sim.Outgoing { return m.inner.Init() }

func (m *alg1Machine) Step(round int, received []msg.Message) []sim.Outgoing {
	out := m.inner.Step(round, received)
	if !m.decided {
		if v, ok := m.inner.Decision(); ok {
			m.decided = true
			if v == m.v0 {
				m.decision = msg.Zero
			} else {
				m.decision = msg.One
			}
		}
	}
	return out
}

func (m *alg1Machine) Decision() (msg.Value, bool) {
	if !m.decided {
		return msg.NoDecision, false
	}
	return m.decision, true
}

func (m *alg1Machine) Quiescent() bool { return m.inner.Quiescent() }

// DeriveAlg1 computes V0 for Algorithm 1 by running P's fully-correct
// execution E0 on configuration c0 (Table 2: v'_0 is well-defined because
// P satisfies Termination and Agreement and fully-correct executions are
// determined by the proposals).
func DeriveAlg1(inner sim.Factory, n, t, horizon int, c0, c1 []msg.Value) (Alg1Spec, error) {
	if len(c0) != n || len(c1) != n {
		return Alg1Spec{}, fmt.Errorf("derive alg1: configurations must assign all %d processes", n)
	}
	cfg := sim.Config{N: n, T: t, Proposals: append([]msg.Value{}, c0...), MaxRounds: horizon}
	exec, err := sim.Run(cfg, inner, sim.NoFaults{})
	if err != nil {
		return Alg1Spec{}, fmt.Errorf("derive alg1: run E0: %w", err)
	}
	v0, err := exec.CommonDecision(proc.Universe(n))
	if err != nil {
		return Alg1Spec{}, fmt.Errorf("derive alg1: E0 has no common decision: %w", err)
	}
	return Alg1Spec{C0: append([]msg.Value{}, c0...), C1: append([]msg.Value{}, c1...), V0: v0}, nil
}

// Closed-form Γ selectors for the standard validity properties, usable at
// any n (the validity package synthesizes Γ for arbitrary finite
// properties at small n).

// GammaWeak selects the unanimous value of the vector, or def when the
// vector is not unanimous. It realizes Weak Validity through Algorithm 2:
// Γ(vec) ∈ ⋂_{c' ⊑ vec} val_weak(c') because only the full configuration
// constrains the decision.
func GammaWeak(def msg.Value) Gamma {
	return func(vec []msg.Value) msg.Value {
		if len(vec) == 0 {
			return def
		}
		v := vec[0]
		for _, x := range vec[1:] {
			if x != v {
				return def
			}
		}
		return v
	}
}

// GammaStrong selects the value held by at least n-t entries (unique when
// n > 2t), or def when none exists. It realizes Strong Validity through
// Algorithm 2 for n > 2t — the solvability frontier Theorem 5 establishes.
func GammaStrong(n, t int, def msg.Value) Gamma {
	return func(vec []msg.Value) msg.Value {
		counts := make(map[msg.Value]int, len(vec))
		for _, v := range vec {
			counts[v]++
		}
		best, bestN := def, -1
		for v, c := range counts {
			if c > bestN || (c == bestN && v < best) {
				best, bestN = v, c
			}
		}
		if bestN >= n-t {
			return best
		}
		return def
	}
}

// GammaFirstValid selects the first entry (in process order) satisfying
// the predicate, or fallback — the External Validity selector of §4.3.
func GammaFirstValid(valid func(msg.Value) bool, fallback msg.Value) Gamma {
	return func(vec []msg.Value) msg.Value {
		for _, v := range vec {
			if valid(v) {
				return v
			}
		}
		return fallback
	}
}
