package reduction_test

import (
	"testing"

	"expensive/internal/crypto/sig"
	"expensive/internal/msg"
	"expensive/internal/proc"
	"expensive/internal/protocols/eig"
	"expensive/internal/protocols/ic"
	"expensive/internal/protocols/phaseking"
	"expensive/internal/protocols/reduction"
	"expensive/internal/sim"
)

func uniform(n int, v msg.Value) []msg.Value {
	out := make([]msg.Value, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func run(t *testing.T, factory sim.Factory, n, tf, rounds int, proposals []msg.Value, plan sim.FaultPlan) *sim.Execution {
	t.Helper()
	cfg := sim.Config{N: n, T: tf, Proposals: proposals, MaxRounds: rounds}
	e, err := sim.Run(cfg, factory, plan)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return e
}

func TestAlgorithm2WeakConsensusViaEIG(t *testing.T) {
	n, tf := 4, 1
	inner := eig.New(eig.Config{N: n, T: tf, Default: msg.One})
	factory := reduction.FromIC(inner, reduction.GammaWeak(msg.One))
	for _, b := range []msg.Value{msg.Zero, msg.One} {
		e := run(t, factory, n, tf, eig.RoundBound(tf)+2, uniform(n, b), sim.NoFaults{})
		d, err := e.CommonDecision(proc.Universe(n))
		if err != nil || d != b {
			t.Errorf("unanimous %s: decided %q err %v", b, d, err)
		}
	}
	// Mixed proposals: Γ_weak falls to the default.
	e := run(t, factory, n, tf, eig.RoundBound(tf)+2, []msg.Value{"0", "1", "0", "1"}, sim.NoFaults{})
	d, err := e.CommonDecision(proc.Universe(n))
	if err != nil || d != msg.One {
		t.Errorf("mixed: decided %q err %v", d, err)
	}
}

func TestAlgorithm2StrongConsensusViaIC(t *testing.T) {
	// Authenticated strong consensus at the Theorem 5 frontier n = 2t+1:
	// impossible for n = 2t, derived here mechanically for n = 5, t = 2.
	n, tf := 5, 2
	scheme := sig.NewIdeal("alg2-strong")
	inner := ic.New(ic.Config{N: n, T: tf, Scheme: scheme, Default: msg.One})
	factory := reduction.FromIC(inner, reduction.GammaStrong(n, tf, msg.One))

	// All correct processes propose 0; two Byzantine processes stay silent.
	silent := sim.ByzantinePlan{Machines: map[proc.ID]sim.Machine{
		3: silentMachine{},
		4: silentMachine{},
	}}
	e := run(t, factory, n, tf, ic.RoundBound(tf)+2, uniform(n, msg.Zero), silent)
	d, err := e.CommonDecision(proc.NewSet(0, 1, 2))
	if err != nil {
		t.Fatalf("Agreement: %v", err)
	}
	if d != msg.Zero {
		t.Errorf("decided %q, want 0 (Strong Validity: all correct proposed 0)", d)
	}
}

type silentMachine struct{}

func (silentMachine) Init() []sim.Outgoing                   { return nil }
func (silentMachine) Step(int, []msg.Message) []sim.Outgoing { return nil }
func (silentMachine) Decision() (msg.Value, bool)            { return msg.NoDecision, false }
func (silentMachine) Quiescent() bool                        { return true }

func TestAlgorithm1ZeroMessageOverhead(t *testing.T) {
	// Lemma 18: the Algorithm 1 wrapper has *identical* message complexity
	// to the underlying protocol. Compare fault-free runs message for
	// message.
	n, tf := 5, 1
	inner := phaseking.New(phaseking.Config{N: n, T: tf})
	spec, err := reduction.DeriveAlg1(inner, n, tf, phaseking.RoundBound(tf)+2,
		uniform(n, msg.Zero), uniform(n, msg.One))
	if err != nil {
		t.Fatalf("DeriveAlg1: %v", err)
	}
	if spec.V0 != msg.Zero {
		t.Fatalf("V0 = %q, want 0", spec.V0)
	}
	wrapped := reduction.WeakFromAgreement(inner, spec)

	for _, b := range []msg.Value{msg.Zero, msg.One} {
		ew := run(t, wrapped, n, tf, phaseking.RoundBound(tf)+2, uniform(n, b), sim.NoFaults{})
		proposalsInner := spec.C0
		if b == msg.One {
			proposalsInner = spec.C1
		}
		ei := run(t, inner, n, tf, phaseking.RoundBound(tf)+2, proposalsInner, sim.NoFaults{})
		if mw, mi := ew.CorrectMessages(), ei.CorrectMessages(); mw != mi {
			t.Errorf("proposal %s: wrapped sends %d, inner sends %d — reduction must add zero messages", b, mw, mi)
		}
		d, err := ew.CommonDecision(proc.Universe(n))
		if err != nil || d != b {
			t.Errorf("proposal %s: decided %q err %v (Weak Validity)", b, d, err)
		}
	}
}

func TestAlgorithm1OverInteractiveConsistency(t *testing.T) {
	// Weak consensus from IC: the decided objects of P are whole vectors;
	// the reduction only compares against v'_0.
	n, tf := 4, 1
	scheme := sig.NewIdeal("alg1-ic")
	inner := ic.New(ic.Config{N: n, T: tf, Scheme: scheme, Default: msg.One})
	c0 := uniform(n, msg.Zero)
	c1 := uniform(n, msg.One)
	spec, err := reduction.DeriveAlg1(inner, n, tf, ic.RoundBound(tf)+2, c0, c1)
	if err != nil {
		t.Fatalf("DeriveAlg1: %v", err)
	}
	wrapped := reduction.WeakFromAgreement(inner, spec)
	for _, b := range []msg.Value{msg.Zero, msg.One} {
		e := run(t, wrapped, n, tf, ic.RoundBound(tf)+2, uniform(n, b), sim.NoFaults{})
		d, err := e.CommonDecision(proc.Universe(n))
		if err != nil || d != b {
			t.Errorf("proposal %s: decided %q err %v", b, d, err)
		}
	}
}

func TestDeriveAlg1Errors(t *testing.T) {
	inner := phaseking.New(phaseking.Config{N: 5, T: 1})
	if _, err := reduction.DeriveAlg1(inner, 5, 1, 6, uniform(4, msg.Zero), uniform(5, msg.One)); err == nil {
		t.Error("expected length error")
	}
}

func TestGammaSelectors(t *testing.T) {
	if v := reduction.GammaWeak("d")([]msg.Value{"x", "x", "x"}); v != "x" {
		t.Errorf("GammaWeak unanimous = %q", v)
	}
	if v := reduction.GammaWeak("d")([]msg.Value{"x", "y"}); v != "d" {
		t.Errorf("GammaWeak mixed = %q", v)
	}
	if v := reduction.GammaWeak("d")(nil); v != "d" {
		t.Errorf("GammaWeak empty = %q", v)
	}
	gs := reduction.GammaStrong(5, 2, "d")
	if v := gs([]msg.Value{"a", "a", "a", "b", "c"}); v != "a" {
		t.Errorf("GammaStrong n-t majority = %q", v)
	}
	if v := gs([]msg.Value{"a", "a", "b", "b", "c"}); v != "d" {
		t.Errorf("GammaStrong no n-t majority = %q", v)
	}
	gf := reduction.GammaFirstValid(func(v msg.Value) bool { return v == "ok" }, "fb")
	if v := gf([]msg.Value{"no", "ok", "ok2"}); v != "ok" {
		t.Errorf("GammaFirstValid = %q", v)
	}
	if v := gf([]msg.Value{"no"}); v != "fb" {
		t.Errorf("GammaFirstValid fallback = %q", v)
	}
}
