package cheap_test

import (
	"testing"

	"expensive/internal/msg"
	"expensive/internal/omission"
	"expensive/internal/proc"
	"expensive/internal/protocols/cheap"
	"expensive/internal/sim"
)

func uniform(n int, v msg.Value) []msg.Value {
	out := make([]msg.Value, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func runCheap(t *testing.T, factory sim.Factory, n int, proposals []msg.Value) *sim.Execution {
	t.Helper()
	cfg := sim.Config{N: n, T: n / 4, Proposals: proposals, MaxRounds: 4}
	e, err := sim.Run(cfg, factory, sim.NoFaults{})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return e
}

// All cheap protocols must satisfy Weak Validity in fault-free unanimous
// executions and stay within their advertised message budget — the two
// properties that make them plausible-looking candidates.
func TestWeakValidityAndBudget(t *testing.T) {
	const n = 12
	cases := []struct {
		name    string
		factory sim.Factory
		budget  int
	}{
		{"silent", cheap.Silent(), 0},
		{"leader", cheap.Leader(n), n - 1},
		{"star", cheap.Star(n), 2 * (n - 1)},
		{"gossip-k3", cheap.Gossip(n, 3), 3 * n},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, b := range []msg.Value{msg.Zero, msg.One} {
				e := runCheap(t, tc.factory, n, uniform(n, b))
				d, err := e.CommonDecision(proc.Universe(n))
				if err != nil {
					t.Fatalf("unanimous %s: %v", b, err)
				}
				if d != b {
					t.Errorf("unanimous %s: decided %q (Weak Validity)", b, d)
				}
				if got := e.CorrectMessages(); got > tc.budget {
					t.Errorf("sent %d messages, budget %d", got, tc.budget)
				}
				if err := omission.Validate(e); err != nil {
					t.Errorf("trace invalid: %v", err)
				}
			}
		})
	}
}

func TestLeaderSplitsUnderOmission(t *testing.T) {
	// The direct attack the falsifier generalizes: the leader send-omits
	// toward p1 only, splitting the decision.
	const n = 6
	plan := sim.OmissionPlan{
		F:      proc.NewSet(0),
		SendFn: func(m msg.Message) bool { return m.Receiver == 1 },
	}
	cfg := sim.Config{N: n, T: 1, Proposals: uniform(n, msg.Zero), MaxRounds: 3}
	e, err := sim.Run(cfg, cheap.Leader(n), plan)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if d, _ := e.Decision(1); d != msg.One {
		t.Errorf("victim decided %q, want default 1", d)
	}
	if d, _ := e.Decision(2); d != msg.Zero {
		t.Errorf("bystander decided %q, want 0", d)
	}
}

func TestGossipClamping(t *testing.T) {
	// k out of range is clamped, keeping the factory total.
	for _, k := range []int{-1, 0, 99} {
		factory := cheap.Gossip(6, k)
		e := runCheap(t, factory, 6, uniform(6, msg.Zero))
		if _, err := e.CommonDecision(proc.Universe(6)); err != nil {
			t.Errorf("k=%d: %v", k, err)
		}
	}
}

func TestNonBinaryProposalsClamped(t *testing.T) {
	proposals := uniform(6, msg.Zero)
	proposals[3] = "garbage"
	e := runCheap(t, cheap.Star(6), 6, proposals)
	// Proposal clamped to 0, so the unanimity check still passes.
	d, err := e.CommonDecision(proc.Universe(6))
	if err != nil {
		t.Fatalf("CommonDecision: %v", err)
	}
	if d != msg.Zero {
		t.Errorf("decided %q", d)
	}
}
