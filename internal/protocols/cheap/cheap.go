// Package cheap provides deliberately sub-quadratic weak consensus
// candidates — the "too good to be true" algorithms whose impossibility
// Theorem 2 establishes. Each protocol satisfies Weak Validity and decides
// quickly in fault-free runs, sends o(t²) messages, and looks plausible:
// every one of them picks the default value 1 the moment it detects any
// fault, which is exactly the strategy the paper's introduction explains
// classical proof techniques cannot handle.
//
// The lower-bound falsifier (package lowerbound) constructs, for every
// protocol here, the execution sequence of Lemmas 2–5 and extracts a
// concrete valid execution in which two correct processes disagree or a
// correct process never decides — the machine-checked counterpart of the
// paper's impossibility argument (experiment E1).
package cheap

import (
	"expensive/internal/msg"
	"expensive/internal/proc"
	"expensive/internal/sim"
)

func clampBit(v msg.Value) msg.Value {
	if msg.IsBit(v) {
		return v
	}
	return msg.Zero
}

// base carries the common decided/quiescent plumbing.
type base struct {
	decided  bool
	decision msg.Value
	done     bool
}

func (b *base) Decision() (msg.Value, bool) {
	if !b.decided {
		return msg.NoDecision, false
	}
	return b.decision, true
}

func (b *base) Quiescent() bool { return b.done }

func (b *base) decide(v msg.Value) {
	b.decided, b.decision, b.done = true, v, true
}

// Silent is the zero-message protocol: every process immediately decides
// its own proposal. Weak Validity holds (a unanimous fault-free execution
// decides the common proposal); Agreement is the casualty. Message
// complexity: 0. Decision round: 1.
func Silent() sim.Factory {
	return func(id proc.ID, proposal msg.Value) sim.Machine {
		return &silentMachine{proposal: clampBit(proposal)}
	}
}

// SilentRounds is the decision round of Silent.
const SilentRounds = 1

type silentMachine struct {
	base
	proposal msg.Value
}

var _ sim.Machine = (*silentMachine)(nil)

func (m *silentMachine) Init() []sim.Outgoing { return nil }

func (m *silentMachine) Step(round int, _ []msg.Message) []sim.Outgoing {
	if round == 1 {
		m.decide(m.proposal)
	}
	return nil
}

// Leader is the (n-1)-message protocol: process 0 broadcasts its proposal
// in round 1; every process decides the received value, defaulting to 1
// when the leader's message is missing (fault detected). Weak Validity
// holds because a correct leader reaches everyone; a leader whose messages
// are dropped toward a subset splits the decision. Message complexity:
// n-1. Decision round: 1.
func Leader(n int) sim.Factory {
	return func(id proc.ID, proposal msg.Value) sim.Machine {
		return &leaderMachine{n: n, id: id, proposal: clampBit(proposal)}
	}
}

// LeaderRounds is the decision round of Leader.
const LeaderRounds = 1

type leaderMachine struct {
	base
	n        int
	id       proc.ID
	proposal msg.Value
}

var _ sim.Machine = (*leaderMachine)(nil)

func (m *leaderMachine) Init() []sim.Outgoing {
	if m.id != 0 {
		return nil
	}
	out := make([]sim.Outgoing, 0, m.n-1)
	for p := proc.ID(1); p < proc.ID(m.n); p++ {
		out = append(out, sim.Outgoing{To: p, Payload: string(m.proposal)})
	}
	return out
}

func (m *leaderMachine) Step(round int, received []msg.Message) []sim.Outgoing {
	if round != 1 {
		return nil
	}
	if m.id == 0 {
		m.decide(m.proposal)
		return nil
	}
	decision := msg.One // default on detected fault
	for _, rm := range received {
		if rm.Sender == 0 && msg.IsBit(msg.Value(rm.Payload)) {
			decision = msg.Value(rm.Payload)
		}
	}
	m.decide(decision)
	return nil
}

// Star is the ~2n-message protocol: round 1, everyone reports its proposal
// to process 0; round 2, process 0 broadcasts a verdict (0 iff it saw a 0
// report from every process, else 1); everyone decides the verdict,
// defaulting to 1 when it is missing. Weak Validity holds in fault-free
// unanimous runs; a hub that omits reports or verdicts splits decisions.
// Message complexity: 2(n-1). Decision round: 2.
func Star(n int) sim.Factory {
	return func(id proc.ID, proposal msg.Value) sim.Machine {
		return &starMachine{n: n, id: id, proposal: clampBit(proposal)}
	}
}

// StarRounds is the decision round of Star.
const StarRounds = 2

type starMachine struct {
	base
	n        int
	id       proc.ID
	proposal msg.Value
	verdict  msg.Value
}

var _ sim.Machine = (*starMachine)(nil)

func (m *starMachine) Init() []sim.Outgoing {
	if m.id == 0 {
		return nil
	}
	return []sim.Outgoing{{To: 0, Payload: string(m.proposal)}}
}

func (m *starMachine) Step(round int, received []msg.Message) []sim.Outgoing {
	switch {
	case round == 1 && m.id == 0:
		// Verdict: 0 iff every process (self included) reported 0.
		m.verdict = msg.Zero
		if m.proposal != msg.Zero {
			m.verdict = msg.One
		}
		reports := make(map[proc.ID]msg.Value, len(received))
		for _, rm := range received {
			reports[rm.Sender] = msg.Value(rm.Payload)
		}
		for p := proc.ID(1); p < proc.ID(m.n); p++ {
			if reports[p] != msg.Zero {
				m.verdict = msg.One
			}
		}
		out := make([]sim.Outgoing, 0, m.n-1)
		for p := proc.ID(1); p < proc.ID(m.n); p++ {
			out = append(out, sim.Outgoing{To: p, Payload: string(m.verdict)})
		}
		return out
	case round == 2:
		if m.id == 0 {
			m.decide(m.verdict)
			return nil
		}
		decision := msg.One
		for _, rm := range received {
			if rm.Sender == 0 && msg.IsBit(msg.Value(rm.Payload)) {
				decision = msg.Value(rm.Payload)
			}
		}
		m.decide(decision)
	}
	return nil
}

// Gossip is the n·k-message protocol: in round 1 every process sends its
// proposal to its k successors (mod n); a process decides 0 iff its own
// proposal and all k expected reports are 0, and 1 otherwise (missing or
// non-zero reports count as detected faults). Weak Validity holds; the
// total message count n·k is sub-quadratic whenever k = o(t²/n). Decision
// round: 1.
func Gossip(n, k int) sim.Factory {
	if k < 0 {
		k = 0
	}
	if k > n-1 {
		k = n - 1
	}
	return func(id proc.ID, proposal msg.Value) sim.Machine {
		return &gossipMachine{n: n, k: k, id: id, proposal: clampBit(proposal)}
	}
}

// GossipRounds is the decision round of Gossip.
const GossipRounds = 1

type gossipMachine struct {
	base
	n, k     int
	id       proc.ID
	proposal msg.Value
}

var _ sim.Machine = (*gossipMachine)(nil)

func (m *gossipMachine) Init() []sim.Outgoing {
	out := make([]sim.Outgoing, 0, m.k)
	for d := 1; d <= m.k; d++ {
		to := proc.ID((int(m.id) + d) % m.n)
		out = append(out, sim.Outgoing{To: to, Payload: string(m.proposal)})
	}
	return out
}

func (m *gossipMachine) Step(round int, received []msg.Message) []sim.Outgoing {
	if round != 1 {
		return nil
	}
	reports := make(map[proc.ID]msg.Value, len(received))
	for _, rm := range received {
		reports[rm.Sender] = msg.Value(rm.Payload)
	}
	decision := m.proposal
	for d := 1; d <= m.k; d++ {
		from := proc.ID((int(m.id) - d + m.n) % m.n)
		if reports[from] != msg.Zero {
			decision = msg.One
		}
	}
	if m.proposal != msg.Zero {
		decision = msg.One
	}
	m.decide(decision)
	return nil
}
