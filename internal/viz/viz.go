// Package viz renders recorded executions as text timelines in the visual
// language of the paper's Figures 1 and 2: one row per process, one column
// per round, with glyphs for sending activity, omission faults and
// decisions. The falsifier CLI uses it to print counterexample executions
// a human can audit at a glance.
package viz

import (
	"fmt"
	"sort"
	"strings"

	"expensive/internal/msg"
	"expensive/internal/proc"
	"expensive/internal/sim"
)

// Glyphs of the timeline. Each round cell combines activity and fault
// markers:
//
//	.   silent (nothing sent, nothing dropped)
//	s   sent at least one message
//	x   send-omitted at least one message (faulty sender)
//	r   receive-omitted at least one message (faulty receiver)
//	*   both send- and receive-omissions in the round
//
// A decision is appended once, in the round it becomes visible: "=v".
const legend = ". silent | s sent | x send-omit | r recv-omit | * both | =v decided v"

// Options tune the rendering.
type Options struct {
	// MaxRounds truncates the timeline (0 = all rounds).
	MaxRounds int
	// Groups optionally labels process ranges (e.g. the (A, B, C)
	// partition); the label of the first matching group is shown.
	Groups map[string]proc.Set
}

// Timeline renders the execution.
func Timeline(e *sim.Execution, opts Options) string {
	rounds := e.Rounds
	if opts.MaxRounds > 0 && opts.MaxRounds < rounds {
		rounds = opts.MaxRounds
	}
	var b strings.Builder
	fmt.Fprintf(&b, "execution: n=%d t=%d faulty=%v rounds=%d\n", e.N, e.T, e.Faulty, e.Rounds)
	fmt.Fprintf(&b, "legend: %s\n", legend)

	groupNames := make([]string, 0, len(opts.Groups))
	for name := range opts.Groups {
		groupNames = append(groupNames, name)
	}
	sort.Strings(groupNames)

	// Header row with round numbers.
	idWidth := len(fmt.Sprintf("p%d", e.N-1))
	groupWidth := 0
	for _, name := range groupNames {
		if len(name) > groupWidth {
			groupWidth = len(name)
		}
	}
	fmt.Fprintf(&b, "%*s %*s |", idWidth, "", groupWidth, "")
	for r := 1; r <= rounds; r++ {
		fmt.Fprintf(&b, "%3d", r)
	}
	b.WriteString("\n")

	for i := 0; i < e.N; i++ {
		id := proc.ID(i)
		label := ""
		for _, name := range groupNames {
			if opts.Groups[name].Contains(id) {
				label = name
				break
			}
		}
		fmt.Fprintf(&b, "%*s %*s |", idWidth, id.String(), groupWidth, label)
		beh := e.Behavior(id)
		decidedShown := false
		for r := 1; r <= rounds; r++ {
			f := beh.Frag(r)
			cell := glyph(f)
			if f.Decided && !decidedShown {
				decidedShown = true
				cell += "=" + trim(f.Decision)
			}
			fmt.Fprintf(&b, "%3s", cell)
		}
		if e.Faulty.Contains(id) {
			b.WriteString("  (faulty)")
		}
		b.WriteString("\n")
	}
	return b.String()
}

func glyph(f sim.Fragment) string {
	so, ro := len(f.SendOmitted) > 0, len(f.ReceiveOmitted) > 0
	switch {
	case so && ro:
		return "*"
	case so:
		return "x"
	case ro:
		return "r"
	case len(f.Sent) > 0:
		return "s"
	default:
		return "."
	}
}

func trim(v msg.Value) string {
	s := string(v)
	if len(s) > 1 {
		return s[:1] + "…"
	}
	return s
}

// Diff renders, round by round, where two executions diverge from the
// perspective of each process's received messages — the
// indistinguishability structure the proofs argue about.
func Diff(e1, e2 *sim.Execution) string {
	var b strings.Builder
	rounds := max(e1.Rounds, e2.Rounds)
	fmt.Fprintf(&b, "per-process received-view divergence (first differing round, '-' = identical):\n")
	for i := 0; i < e1.N && i < e2.N; i++ {
		id := proc.ID(i)
		b1, b2 := e1.Behavior(id), e2.Behavior(id)
		first := "-"
		if b1.Proposal != b2.Proposal {
			first = "proposal"
		} else {
			for r := 1; r <= rounds; r++ {
				if !msg.SameSet(b1.Frag(r).Received, b2.Frag(r).Received) {
					first = fmt.Sprintf("round %d", r)
					break
				}
			}
		}
		fmt.Fprintf(&b, "  %s: %s\n", id, first)
	}
	return b.String()
}
