package viz_test

import (
	"strings"
	"testing"

	"expensive/internal/msg"
	"expensive/internal/omission"
	"expensive/internal/proc"
	"expensive/internal/protocols/cheap"
	"expensive/internal/viz"
)

func TestTimelineRendersGlyphsAndGroups(t *testing.T) {
	group := proc.NewSet(6, 7)
	e, err := omission.RunIsolated(8, 4, cheap.Leader(8), msg.Zero, group, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	out := viz.Timeline(e, viz.Options{Groups: map[string]proc.Set{"B": group}})
	for _, want := range []string{"p0", "p7", "legend", "(faulty)", "B |", "=0", "=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
	// The isolated processes receive-omit the leader's message in round 1.
	if !strings.Contains(out, "r") {
		t.Errorf("no receive-omission glyph:\n%s", out)
	}
}

func TestTimelineTruncation(t *testing.T) {
	e, err := omission.RunIsolated(8, 4, cheap.Star(8), msg.Zero, proc.NewSet(7), 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	full := viz.Timeline(e, viz.Options{})
	short := viz.Timeline(e, viz.Options{MaxRounds: 1})
	if len(short) >= len(full) {
		t.Error("truncated timeline not shorter")
	}
}

func TestDiffLocatesDivergence(t *testing.T) {
	group := proc.NewSet(6, 7)
	e1, err := omission.RunIsolated(8, 4, cheap.Leader(8), msg.Zero, group, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := omission.RunIsolated(8, 4, cheap.Leader(8), msg.Zero, group, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	out := viz.Diff(e1, e2)
	// The isolated processes' views differ in round 1 (omitted vs received);
	// everyone else is identical.
	if !strings.Contains(out, "p6: round 1") {
		t.Errorf("diff should locate p6's divergence at round 1:\n%s", out)
	}
	if !strings.Contains(out, "p0: -") {
		t.Errorf("diff should report p0 identical:\n%s", out)
	}
}

func TestTimelineGroupsDeterministic(t *testing.T) {
	groupB := proc.NewSet(6, 7)
	groupA := proc.NewSet(0, 1)
	e, err := omission.RunIsolated(8, 4, cheap.Leader(8), msg.Zero, groupB, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Group labels and the label column width must come from the sorted
	// name list, never from map iteration, so renders are byte-identical
	// however the Groups map was built.
	mk := func(names ...string) map[string]proc.Set {
		groups := make(map[string]proc.Set)
		for _, n := range names {
			if n == "widest-label" || n == "A" {
				groups[n] = groupA
			} else {
				groups[n] = groupB
			}
		}
		return groups
	}
	first := viz.Timeline(e, viz.Options{Groups: mk("A", "B", "widest-label")})
	for i := 0; i < 20; i++ {
		again := viz.Timeline(e, viz.Options{Groups: mk("widest-label", "B", "A")})
		if again != first {
			t.Fatalf("timeline depends on Groups map construction order:\n%s\nvs\n%s", first, again)
		}
	}
	// "A" sorts first so it wins the label for p0/p1, but the column is
	// still sized by the widest name: "A" padded to len("widest-label").
	if !strings.Contains(first, "           A |") {
		t.Errorf("label column not sized to widest group name:\n%s", first)
	}
}
