package viz_test

import (
	"strings"
	"testing"

	"expensive/internal/msg"
	"expensive/internal/omission"
	"expensive/internal/proc"
	"expensive/internal/protocols/cheap"
	"expensive/internal/viz"
)

func TestTimelineRendersGlyphsAndGroups(t *testing.T) {
	group := proc.NewSet(6, 7)
	e, err := omission.RunIsolated(8, 4, cheap.Leader(8), msg.Zero, group, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	out := viz.Timeline(e, viz.Options{Groups: map[string]proc.Set{"B": group}})
	for _, want := range []string{"p0", "p7", "legend", "(faulty)", "B |", "=0", "=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
	// The isolated processes receive-omit the leader's message in round 1.
	if !strings.Contains(out, "r") {
		t.Errorf("no receive-omission glyph:\n%s", out)
	}
}

func TestTimelineTruncation(t *testing.T) {
	e, err := omission.RunIsolated(8, 4, cheap.Star(8), msg.Zero, proc.NewSet(7), 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	full := viz.Timeline(e, viz.Options{})
	short := viz.Timeline(e, viz.Options{MaxRounds: 1})
	if len(short) >= len(full) {
		t.Error("truncated timeline not shorter")
	}
}

func TestDiffLocatesDivergence(t *testing.T) {
	group := proc.NewSet(6, 7)
	e1, err := omission.RunIsolated(8, 4, cheap.Leader(8), msg.Zero, group, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := omission.RunIsolated(8, 4, cheap.Leader(8), msg.Zero, group, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	out := viz.Diff(e1, e2)
	// The isolated processes' views differ in round 1 (omitted vs received);
	// everyone else is identical.
	if !strings.Contains(out, "p6: round 1") {
		t.Errorf("diff should locate p6's divergence at round 1:\n%s", out)
	}
	if !strings.Contains(out, "p0: -") {
		t.Errorf("diff should report p0 identical:\n%s", out)
	}
}
