// Package solve is the constructive half of the general solvability
// theorem (Theorem 4) as a library feature: given any Byzantine agreement
// problem — expressed as a validity property over finite domains — it
// decides solvability and, when the containment condition holds,
// *derives a working protocol automatically*:
//
//	problem  --CheckCC-->  Γ  --Algorithm 2-->  IC + Γ  =  protocol
//
// Authenticated derivations run n parallel Dolev-Strong broadcasts (any
// t < n); unauthenticated derivations run EIG (n > 3t). Trivial problems
// are solved with zero communication by deciding the always-admissible
// value, exactly as §4.1 observes.
package solve

import (
	"fmt"

	"expensive/internal/crypto/sig"
	"expensive/internal/msg"
	"expensive/internal/proc"
	"expensive/internal/protocols/eig"
	"expensive/internal/protocols/ic"
	"expensive/internal/protocols/reduction"
	"expensive/internal/sim"
	"expensive/internal/validity"
)

// Derived is a protocol synthesized from a validity property.
type Derived struct {
	// Factory builds the honest machines.
	Factory sim.Factory
	// Rounds is the decision-round bound.
	Rounds int
	// Mode names the substrate: "trivial", "authenticated-ic" or
	// "unauthenticated-eig".
	Mode string
	// Verdict is the full Theorem 4 evaluation.
	Verdict validity.Solvability
}

// ErrUnsolvable is wrapped by derivation failures caused by the theorem
// itself (CC fails, or n <= 3t without authentication).
var ErrUnsolvable = fmt.Errorf("problem is unsolvable (Theorem 4)")

// Authenticated derives an authenticated protocol for p, valid for any
// t < n. It fails with ErrUnsolvable iff p is non-trivial and violates the
// containment condition.
func Authenticated(p validity.Problem, scheme sig.Scheme) (*Derived, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	verdict := p.Solve()
	if verdict.Trivial {
		return trivial(p, verdict), nil
	}
	if !verdict.CC {
		return nil, fmt.Errorf("%s (n=%d, t=%d): containment condition fails (%v): %w",
			p.Name, p.N, p.T, verdict.CCWitness, ErrUnsolvable)
	}
	gamma, err := gammaFor(p)
	if err != nil {
		return nil, err
	}
	icf := ic.New(ic.Config{N: p.N, T: p.T, Scheme: scheme, Default: p.Inputs[0]})
	return &Derived{
		Factory: reduction.FromIC(icf, gamma),
		Rounds:  ic.RoundBound(p.T),
		Mode:    "authenticated-ic",
		Verdict: verdict,
	}, nil
}

// Unauthenticated derives a signature-free protocol for p, requiring
// n > 3t. It fails with ErrUnsolvable iff p is non-trivial and either CC
// fails or n <= 3t (Lemma 10: below that resilience only trivial problems
// are unauthenticated-solvable).
func Unauthenticated(p validity.Problem) (*Derived, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	verdict := p.Solve()
	if verdict.Trivial {
		return trivial(p, verdict), nil
	}
	if !verdict.CC {
		return nil, fmt.Errorf("%s (n=%d, t=%d): containment condition fails (%v): %w",
			p.Name, p.N, p.T, verdict.CCWitness, ErrUnsolvable)
	}
	if p.N <= 3*p.T {
		return nil, fmt.Errorf("%s: n=%d <= 3t=%d without authentication: %w",
			p.Name, p.N, 3*p.T, ErrUnsolvable)
	}
	gamma, err := gammaFor(p)
	if err != nil {
		return nil, err
	}
	eigf := eig.New(eig.Config{N: p.N, T: p.T, Default: p.Inputs[0]})
	return &Derived{
		Factory: reduction.FromIC(eigf, gamma),
		Rounds:  eig.RoundBound(p.T),
		Mode:    "unauthenticated-eig",
		Verdict: verdict,
	}, nil
}

func gammaFor(p validity.Problem) (reduction.Gamma, error) {
	cc := p.CheckCC()
	fn, err := p.GammaFunc(cc)
	if err != nil {
		return nil, err
	}
	return reduction.Gamma(fn), nil
}

func trivial(p validity.Problem, verdict validity.Solvability) *Derived {
	v := verdict.TrivialValue
	return &Derived{
		Factory: func(proc.ID, msg.Value) sim.Machine { return &trivialMachine{v: v} },
		Rounds:  1,
		Mode:    "trivial",
		Verdict: verdict,
	}
}

// trivialMachine decides the always-admissible value with zero messages.
type trivialMachine struct {
	v       msg.Value
	decided bool
}

var _ sim.Machine = (*trivialMachine)(nil)

func (m *trivialMachine) Init() []sim.Outgoing { return nil }

func (m *trivialMachine) Step(round int, _ []msg.Message) []sim.Outgoing {
	if round == 1 {
		m.decided = true
	}
	return nil
}

func (m *trivialMachine) Decision() (msg.Value, bool) {
	if !m.decided {
		return msg.NoDecision, false
	}
	return m.v, true
}

func (m *trivialMachine) Quiescent() bool { return true }

// Check runs the derived protocol on an input configuration under a fault
// plan and verifies Termination, Agreement and the problem's validity
// property on the outcome. It is the library's acceptance test for derived
// protocols and the engine behind the solvability experiment (E6).
func Check(p validity.Problem, d *Derived, c validity.InputConfig, byzantine map[proc.ID]sim.Machine) error {
	if c.N() != p.N {
		return fmt.Errorf("config is for n=%d, problem has n=%d", c.N(), p.N)
	}
	correct := c.Pi()
	faulty := correct.Complement(p.N)
	if faulty.Len() > p.T {
		return fmt.Errorf("config leaves %d faulty > t=%d", faulty.Len(), p.T)
	}
	proposals := make([]msg.Value, p.N)
	for i := 0; i < p.N; i++ {
		if v, ok := c.Proposal(proc.ID(i)); ok {
			proposals[i] = v
		} else {
			proposals[i] = p.Inputs[0] // nominal value; the process is faulty
		}
	}
	machines := make(map[proc.ID]sim.Machine)
	for _, id := range faulty.Members() {
		if m, ok := byzantine[id]; ok && m != nil {
			machines[id] = m
		} else {
			machines[id] = &silentMachine{}
		}
	}
	cfg := sim.Config{N: p.N, T: p.T, Proposals: proposals, MaxRounds: d.Rounds + 2}
	exec, err := sim.Run(cfg, d.Factory, sim.ByzantinePlan{Machines: machines})
	if err != nil {
		return fmt.Errorf("run derived protocol: %w", err)
	}
	decision, err := exec.CommonDecision(correct)
	if err != nil {
		return fmt.Errorf("termination/agreement: %w", err)
	}
	if !p.Admissible(c, decision) {
		return fmt.Errorf("decided %q, which is not admissible under %v (validity violated)", decision, c)
	}
	return nil
}

// silentMachine is the default Byzantine behavior in Check.
type silentMachine struct{}

func (*silentMachine) Init() []sim.Outgoing                   { return nil }
func (*silentMachine) Step(int, []msg.Message) []sim.Outgoing { return nil }
func (*silentMachine) Decision() (msg.Value, bool)            { return msg.NoDecision, false }
func (*silentMachine) Quiescent() bool                        { return true }
