package solve

import (
	"expensive/internal/catalog"
	"expensive/internal/protocols/ic"
	"expensive/internal/sim"
	"expensive/internal/validity"
)

// SpecForProblem is the adapter from the validity-property formalism to
// the protocol catalog: it wraps a problem family (n, t) -> Problem as a
// catalog spec whose builder runs the Algorithm 2 derivation at build
// time and whose campaign validity property is the problem's own
// admissibility predicate. The exact finite-domain checkers enumerate
// input configurations, so adapted specs must cap n via supports — the
// registered derived protocols use n <= 6.
func SpecForProblem(id, title, condition string, supports func(n, t int) bool, rounds func(n, t int) int, problem func(n, t int) validity.Problem) catalog.Spec {
	return catalog.Spec{
		ID:          id,
		Title:       title,
		Model:       catalog.Authenticated,
		Condition:   condition,
		NeedsScheme: true,
		Supports:    supports,
		Rounds:      rounds,
		New: func(p catalog.Params) (sim.Factory, error) {
			d, err := Authenticated(problem(p.N, p.T), p.Scheme)
			if err != nil {
				return nil, err
			}
			return d.Factory, nil
		},
		Validity: func(p catalog.Params) validity.Check {
			return validity.AdmissibleCheck(problem(p.N, p.T))
		},
	}
}

// The catalog entries: protocols that exist only because Theorem 4 says
// they must — synthesized from their validity property through the
// containment condition and interactive consistency, then hunted and
// matrixed exactly like the hand-written protocols.
func init() {
	catalog.Register(SpecForProblem(
		"derived-weak",
		"weak consensus derived from its validity property (Theorem 4 / Algorithm 2)",
		"t < n, n ≤ 6 (exact Γ)",
		func(n, t int) bool { return n <= 6 },
		func(n, t int) int { return ic.RoundBound(t) },
		validity.Weak,
	))
	catalog.Register(SpecForProblem(
		"derived-strong",
		"strong consensus derived from its validity property (Theorem 5 frontier)",
		"n > 2t, n ≤ 6 (exact Γ)",
		func(n, t int) bool { return n > 2*t && n <= 6 },
		func(n, t int) int { return ic.RoundBound(t) },
		validity.Strong,
	))
}
