package solve

import (
	"testing"

	"expensive/internal/adversary"
	"expensive/internal/crypto/sig"
	"expensive/internal/validity"
)

// TestHuntCampaign hunts a derived protocol and checks the problem's own
// validity property on every probe (moved here from package adversary
// when ForProblem became solve.HuntCampaign).
func TestHuntCampaign(t *testing.T) {
	p := validity.Weak(4, 1)
	d, err := Authenticated(p, sig.NewIdeal("adversary-problem"))
	if err != nil {
		t.Fatal(err)
	}
	c, err := HuntCampaign(p, d, adversary.Chaos(), adversary.SeedRange{From: 0, To: 15})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Broken() {
		t.Fatalf("derived weak consensus broken under chaos: %v", rep.Violations[0])
	}
	if rep.Protocol != "weak-consensus/authenticated-ic" {
		t.Fatalf("unexpected protocol label %q", rep.Protocol)
	}
}

// TestHuntCampaignRejectsBroken rejects problems without derivations.
func TestHuntCampaignRejectsBroken(t *testing.T) {
	p := validity.Weak(4, 1)
	if _, err := HuntCampaign(p, nil, adversary.Chaos(), adversary.SeedRange{From: 0, To: 1}); err == nil {
		t.Fatal("expected error for nil derivation")
	}
	if _, err := HuntCampaign(p, &Derived{}, adversary.Chaos(), adversary.SeedRange{From: 0, To: 1}); err == nil {
		t.Fatal("expected error for derivation without factory")
	}
}
