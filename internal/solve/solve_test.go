package solve_test

import (
	"errors"
	"testing"

	"expensive/internal/crypto/sig"
	"expensive/internal/msg"
	"expensive/internal/proc"
	"expensive/internal/sim"
	"expensive/internal/solve"
	"expensive/internal/validity"
)

// liar broadcasts alternating bits to confuse derived protocols.
type liar struct {
	n  int
	id proc.ID
}

func (m *liar) Init() []sim.Outgoing {
	var out []sim.Outgoing
	for p := 0; p < m.n; p++ {
		if proc.ID(p) == m.id {
			continue
		}
		out = append(out, sim.Outgoing{To: proc.ID(p), Payload: string(msg.Bit(p % 2))})
	}
	return out
}
func (m *liar) Step(int, []msg.Message) []sim.Outgoing { return nil }
func (m *liar) Decision() (msg.Value, bool)            { return msg.NoDecision, false }
func (m *liar) Quiescent() bool                        { return true }

// checkAll exercises the derived protocol on every input configuration of
// the problem (faulty slots silent or lying) and verifies the outcome.
func checkAll(t *testing.T, p validity.Problem, d *solve.Derived) {
	t.Helper()
	for _, c := range p.Configs() {
		if err := solve.Check(p, d, c, nil); err != nil {
			t.Fatalf("config %v (silent faulty): %v", c, err)
		}
		byz := make(map[proc.ID]sim.Machine)
		for _, id := range c.Pi().Complement(p.N).Members() {
			byz[id] = &liar{n: p.N, id: id}
		}
		if len(byz) > 0 {
			if err := solve.Check(p, d, c, byz); err != nil {
				t.Fatalf("config %v (lying faulty): %v", c, err)
			}
		}
	}
}

func TestDeriveAuthenticatedWeak(t *testing.T) {
	p := validity.Weak(4, 2) // n <= 3t: authenticated-only territory
	d, err := solve.Authenticated(p, sig.NewIdeal("solve-weak"))
	if err != nil {
		t.Fatalf("Authenticated: %v", err)
	}
	if d.Mode != "authenticated-ic" {
		t.Errorf("mode = %q", d.Mode)
	}
	checkAll(t, p, d)
}

func TestDeriveAuthenticatedStrongAtFrontier(t *testing.T) {
	// n = 2t+1: exactly the Theorem 5 frontier.
	p := validity.Strong(5, 2)
	d, err := solve.Authenticated(p, sig.NewIdeal("solve-strong"))
	if err != nil {
		t.Fatalf("Authenticated: %v", err)
	}
	checkAll(t, p, d)
}

func TestDeriveAuthenticatedBroadcast(t *testing.T) {
	p := validity.Broadcast(4, 2, 1)
	d, err := solve.Authenticated(p, sig.NewIdeal("solve-bb"))
	if err != nil {
		t.Fatalf("Authenticated: %v", err)
	}
	checkAll(t, p, d)
}

func TestDeriveUnauthenticatedWeak(t *testing.T) {
	p := validity.Weak(4, 1) // n > 3t
	d, err := solve.Unauthenticated(p)
	if err != nil {
		t.Fatalf("Unauthenticated: %v", err)
	}
	if d.Mode != "unauthenticated-eig" {
		t.Errorf("mode = %q", d.Mode)
	}
	checkAll(t, p, d)
}

func TestDeriveUnauthenticatedCorrectSource(t *testing.T) {
	p := validity.CorrectSource(5, 1)
	d, err := solve.Unauthenticated(p)
	if err != nil {
		t.Fatalf("Unauthenticated: %v", err)
	}
	checkAll(t, p, d)
}

func TestDeriveTrivial(t *testing.T) {
	p := validity.Constant(4, 3, msg.One)
	d, err := solve.Unauthenticated(p)
	if err != nil {
		t.Fatalf("trivial derivation: %v", err)
	}
	if d.Mode != "trivial" {
		t.Errorf("mode = %q", d.Mode)
	}
	// Zero messages, decides in round 1.
	proposals := []msg.Value{"0", "1", "0", "1"}
	cfg := sim.Config{N: 4, T: 3, Proposals: proposals, MaxRounds: 2}
	e, err := sim.Run(cfg, d.Factory, sim.NoFaults{})
	if err != nil {
		t.Fatal(err)
	}
	if e.CorrectMessages() != 0 {
		t.Errorf("trivial protocol sent %d messages", e.CorrectMessages())
	}
	dec, err := e.CommonDecision(proc.Universe(4))
	if err != nil || dec != msg.One {
		t.Errorf("decided %q err %v", dec, err)
	}
}

func TestUnsolvableVerdicts(t *testing.T) {
	// Strong consensus at n = 2t: CC fails — no protocol in either model.
	if _, err := solve.Authenticated(validity.Strong(4, 2), sig.NewIdeal("x")); !errors.Is(err, solve.ErrUnsolvable) {
		t.Errorf("expected ErrUnsolvable, got %v", err)
	}
	// Weak consensus at n <= 3t without signatures (Lemma 10 territory).
	if _, err := solve.Unauthenticated(validity.Weak(4, 2)); !errors.Is(err, solve.ErrUnsolvable) {
		t.Errorf("expected ErrUnsolvable, got %v", err)
	}
}

func TestCheckRejectsBadInputs(t *testing.T) {
	p := validity.Weak(4, 1)
	d, err := solve.Authenticated(p, sig.NewIdeal("solve-chk"))
	if err != nil {
		t.Fatal(err)
	}
	// Too many faulty processes for the problem's t.
	c, err := validity.NewConfig(4, map[proc.ID]msg.Value{0: "0", 1: "0"})
	if err != nil {
		t.Fatal(err)
	}
	if err := solve.Check(p, d, c, nil); err == nil {
		t.Error("expected fault-budget error")
	}
	// Mismatched n.
	c5 := validity.FullConfig([]msg.Value{"0", "0", "0", "0", "0"})
	if err := solve.Check(p, d, c5, nil); err == nil {
		t.Error("expected size mismatch error")
	}
}
