package solve

import (
	"fmt"

	"expensive/internal/adversary"
	"expensive/internal/validity"
)

// HuntCampaign builds a campaign that hunts a problem's derived protocol:
// the adversary attacks the Algorithm 2 synthesis while every probe
// checks Termination, Agreement, and the problem's own validity property
// (the decision must be admissible under the correct processes' input
// configuration). Proposals are drawn seed-deterministically from the
// problem's input domain.
//
// This used to live in package adversary as ForProblem; it moved here so
// the adversary layer stays below the protocol catalog in the import
// graph (catalog → adversary, solve → catalog).
func HuntCampaign(p validity.Problem, d *Derived, strategy adversary.Strategy, seeds adversary.SeedRange) (*adversary.Campaign, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if d == nil || d.Factory == nil {
		return nil, fmt.Errorf("solve: problem %s has no derived protocol", p.Name)
	}
	return &adversary.Campaign{
		Protocol:  p.Name + "/" + d.Mode,
		Factory:   d.Factory,
		Rounds:    d.Rounds,
		N:         p.N,
		T:         p.T,
		Strategy:  strategy,
		Seeds:     seeds,
		Proposals: adversary.DomainProposals(p.Inputs),
		Validity:  adversary.ProblemValidity(p),
	}, nil
}
