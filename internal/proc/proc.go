// Package proc provides process identities and deterministic process-set
// algebra for the synchronous distributed system Π = {p_0, ..., p_{n-1}}.
//
// The paper indexes processes from 1; this implementation uses 0-based IDs
// throughout. All set operations are value-semantic and deterministic:
// Members always returns IDs in increasing order, so no behavior ever
// depends on map iteration order.
package proc

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// ID identifies a process in Π.
type ID int

// String returns the conventional name of the process, e.g. "p3".
func (id ID) String() string { return fmt.Sprintf("p%d", int(id)) }

const wordBits = 64

// Set is an immutable-by-convention set of process IDs backed by a bitset.
// The zero value is the empty set.
type Set struct {
	words []uint64
}

// NewSet returns a set containing exactly the given IDs.
func NewSet(ids ...ID) Set {
	maxID := ID(-1)
	for _, id := range ids {
		if id > maxID {
			maxID = id
		}
	}
	if maxID < 0 {
		return Set{}
	}
	s := Set{words: make([]uint64, int(maxID)/wordBits+1)}
	for _, id := range ids {
		if id >= 0 {
			s.words[int(id)/wordBits] |= 1 << uint(int(id)%wordBits)
		}
	}
	return s
}

// Range returns the set {lo, lo+1, ..., hi-1}. An empty range yields the
// empty set.
func Range(lo, hi ID) Set {
	if lo < 0 {
		lo = 0
	}
	if hi <= lo {
		return Set{}
	}
	s := Set{words: make([]uint64, (int(hi)-1)/wordBits+1)}
	for id := lo; id < hi; id++ {
		s.words[int(id)/wordBits] |= 1 << uint(int(id)%wordBits)
	}
	return s
}

// Universe returns the full process set {0, ..., n-1}.
func Universe(n int) Set { return Range(0, ID(n)) }

func (s Set) clone() Set {
	w := make([]uint64, len(s.words))
	copy(w, s.words)
	return Set{words: w}
}

// Add returns s ∪ {id}.
func (s Set) Add(id ID) Set {
	if id < 0 {
		return s
	}
	out := s.clone()
	word, bit := int(id)/wordBits, uint(int(id)%wordBits)
	for len(out.words) <= word {
		out.words = append(out.words, 0)
	}
	out.words[word] |= 1 << bit
	return out
}

// Remove returns s \ {id}.
func (s Set) Remove(id ID) Set {
	if !s.Contains(id) {
		return s
	}
	out := s.clone()
	word, bit := int(id)/wordBits, uint(int(id)%wordBits)
	out.words[word] &^= 1 << bit
	return out
}

// Contains reports whether id ∈ s.
func (s Set) Contains(id ID) bool {
	if id < 0 {
		return false
	}
	word, bit := int(id)/wordBits, uint(int(id)%wordBits)
	if word >= len(s.words) {
		return false
	}
	return s.words[word]&(1<<bit) != 0
}

// Len returns |s|.
func (s Set) Len() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether s is the empty set.
func (s Set) Empty() bool { return s.Len() == 0 }

// Union returns s ∪ o.
func (s Set) Union(o Set) Set {
	long, short := s.words, o.words
	if len(short) > len(long) {
		long, short = short, long
	}
	w := make([]uint64, len(long))
	copy(w, long)
	for i, v := range short {
		w[i] |= v
	}
	return Set{words: w}
}

// Intersect returns s ∩ o.
func (s Set) Intersect(o Set) Set {
	n := min(len(s.words), len(o.words))
	w := make([]uint64, n)
	for i := 0; i < n; i++ {
		w[i] = s.words[i] & o.words[i]
	}
	return Set{words: w}
}

// Diff returns s \ o.
func (s Set) Diff(o Set) Set {
	w := make([]uint64, len(s.words))
	copy(w, s.words)
	for i := 0; i < len(w) && i < len(o.words); i++ {
		w[i] &^= o.words[i]
	}
	return Set{words: w}
}

// Complement returns Π \ s where Π = {0, ..., n-1}. This is the paper's
// notation Ḡ for a group G.
func (s Set) Complement(n int) Set {
	return Universe(n).Diff(s)
}

// Equal reports whether s and o contain the same IDs.
func (s Set) Equal(o Set) bool {
	long, short := s.words, o.words
	if len(short) > len(long) {
		long, short = short, long
	}
	for i := range short {
		if long[i] != short[i] {
			return false
		}
	}
	for i := len(short); i < len(long); i++ {
		if long[i] != 0 {
			return false
		}
	}
	return true
}

// SubsetOf reports whether s ⊆ o.
func (s Set) SubsetOf(o Set) bool { return s.Diff(o).Empty() }

// Members returns the IDs in s in increasing order.
func (s Set) Members() []ID {
	out := make([]ID, 0, s.Len())
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, ID(wi*wordBits+b))
			w &^= 1 << uint(b)
		}
	}
	return out
}

// String renders the set as "{p0,p3,p7}".
func (s Set) String() string {
	ms := s.Members()
	parts := make([]string, len(ms))
	for i, id := range ms {
		parts[i] = id.String()
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// Min returns the smallest ID in s, or -1 if s is empty.
func (s Set) Min() ID {
	for wi, w := range s.words {
		if w != 0 {
			return ID(wi*wordBits + bits.TrailingZeros64(w))
		}
	}
	return -1
}

// Partition is a three-way partition (A, B, C) of Π as used throughout §3
// of the paper: |B| = |C| = t/4 and A holds the remaining n - t/2 processes.
type Partition struct {
	N int
	A Set
	B Set
	C Set
}

// NewPartition builds the canonical partition of Π = {0..n-1} used by the
// lower-bound construction: B is the first ⌊t/4⌋ IDs after A, C the last
// ⌊t/4⌋ IDs, A everything before them. It returns an error when n or t make
// the partition degenerate.
func NewPartition(n, t int) (Partition, error) {
	if t < 4 || t >= n {
		return Partition{}, fmt.Errorf("partition requires 4 <= t < n, got n=%d t=%d", n, t)
	}
	g := t / 4
	if n-2*g < 1 {
		return Partition{}, fmt.Errorf("partition requires n - 2*(t/4) >= 1, got n=%d t=%d", n, t)
	}
	a := Range(0, ID(n-2*g))
	b := Range(ID(n-2*g), ID(n-g))
	c := Range(ID(n-g), ID(n))
	return Partition{N: n, A: a, B: b, C: c}, nil
}

// Validate checks that (A, B, C) is indeed a partition of {0..n-1}.
func (p Partition) Validate() error {
	if !p.A.Intersect(p.B).Empty() || !p.A.Intersect(p.C).Empty() || !p.B.Intersect(p.C).Empty() {
		return fmt.Errorf("partition groups overlap: A=%v B=%v C=%v", p.A, p.B, p.C)
	}
	if !p.A.Union(p.B).Union(p.C).Equal(Universe(p.N)) {
		return fmt.Errorf("partition does not cover Π (n=%d): A=%v B=%v C=%v", p.N, p.A, p.B, p.C)
	}
	return nil
}

// Subsets enumerates every subset of s, invoking fn for each. Enumeration
// order is deterministic (binary counting over the sorted members). It is
// intended for the small n used by the validity checkers; the caller is
// responsible for keeping |s| small.
func (s Set) Subsets(fn func(Set) bool) {
	ms := s.Members()
	if len(ms) > 20 {
		// Guard against accidental exponential blow-up.
		panic("proc: Subsets called on a set with more than 20 members")
	}
	total := 1 << len(ms)
	for mask := 0; mask < total; mask++ {
		var sub Set
		for i, id := range ms {
			if mask&(1<<i) != 0 {
				sub = sub.Add(id)
			}
		}
		if !fn(sub) {
			return
		}
	}
}

// SortIDs sorts a slice of IDs in increasing order, in place, and returns it.
func SortIDs(ids []ID) []ID {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
