package proc

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestSetBasics(t *testing.T) {
	s := NewSet(3, 1, 7)
	if got := s.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
	for _, id := range []ID{1, 3, 7} {
		if !s.Contains(id) {
			t.Errorf("Contains(%v) = false", id)
		}
	}
	for _, id := range []ID{0, 2, 8, -1} {
		if s.Contains(id) {
			t.Errorf("Contains(%v) = true", id)
		}
	}
	if got := s.String(); got != "{p1,p3,p7}" {
		t.Errorf("String = %q", got)
	}
	if got := s.Min(); got != 1 {
		t.Errorf("Min = %v, want 1", got)
	}
	if got := (Set{}).Min(); got != -1 {
		t.Errorf("empty Min = %v, want -1", got)
	}
}

func TestSetAddRemoveImmutability(t *testing.T) {
	s := NewSet(1, 2)
	s2 := s.Add(5)
	if s.Contains(5) {
		t.Error("Add mutated the receiver")
	}
	s3 := s2.Remove(1)
	if !s2.Contains(1) {
		t.Error("Remove mutated the receiver")
	}
	if s3.Contains(1) || !s3.Contains(5) {
		t.Errorf("Remove result wrong: %v", s3)
	}
	if got := s.Remove(99); !got.Equal(s) {
		t.Error("removing absent member changed set")
	}
}

func TestRangeAndUniverse(t *testing.T) {
	if got := Range(2, 5).Members(); !reflect.DeepEqual(got, []ID{2, 3, 4}) {
		t.Errorf("Range(2,5) = %v", got)
	}
	if got := Range(5, 2); !got.Empty() {
		t.Errorf("empty range not empty: %v", got)
	}
	if got := Universe(3).Members(); !reflect.DeepEqual(got, []ID{0, 1, 2}) {
		t.Errorf("Universe(3) = %v", got)
	}
}

func TestComplement(t *testing.T) {
	g := NewSet(1, 3)
	want := []ID{0, 2, 4}
	if got := g.Complement(5).Members(); !reflect.DeepEqual(got, want) {
		t.Errorf("Complement = %v, want %v", got, want)
	}
}

// randomSet builds a set from a seed for property tests.
func randomSet(r *rand.Rand, n int) Set {
	var s Set
	for i := 0; i < n; i++ {
		if r.Intn(2) == 1 {
			s = s.Add(ID(i))
		}
	}
	return s
}

func TestSetAlgebraProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	// De Morgan within a universe of 80 processes (multi-word bitsets).
	deMorgan := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomSet(r, 80), randomSet(r, 80)
		lhs := a.Union(b).Complement(80)
		rhs := a.Complement(80).Intersect(b.Complement(80))
		return lhs.Equal(rhs)
	}
	if err := quick.Check(deMorgan, cfg); err != nil {
		t.Errorf("De Morgan: %v", err)
	}
	// Diff is intersection with complement.
	diff := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomSet(r, 80), randomSet(r, 80)
		return a.Diff(b).Equal(a.Intersect(b.Complement(80)))
	}
	if err := quick.Check(diff, cfg); err != nil {
		t.Errorf("Diff: %v", err)
	}
	// Union is commutative and idempotent; lengths obey inclusion-exclusion.
	lens := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomSet(r, 80), randomSet(r, 80)
		if !a.Union(b).Equal(b.Union(a)) || !a.Union(a).Equal(a) {
			return false
		}
		return a.Union(b).Len() == a.Len()+b.Len()-a.Intersect(b).Len()
	}
	if err := quick.Check(lens, cfg); err != nil {
		t.Errorf("lengths: %v", err)
	}
	// Members round-trips through NewSet.
	roundTrip := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomSet(r, 80)
		return NewSet(a.Members()...).Equal(a)
	}
	if err := quick.Check(roundTrip, cfg); err != nil {
		t.Errorf("round trip: %v", err)
	}
	// SubsetOf is consistent with Diff.
	subset := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomSet(r, 80), randomSet(r, 80)
		return a.SubsetOf(b) == a.Diff(b).Empty() && a.Intersect(b).SubsetOf(a)
	}
	if err := quick.Check(subset, cfg); err != nil {
		t.Errorf("subset: %v", err)
	}
}

func TestEqualAcrossWordLengths(t *testing.T) {
	a := NewSet(1)
	b := NewSet(1).Add(100).Remove(100) // longer word slice, same contents
	if !a.Equal(b) || !b.Equal(a) {
		t.Error("Equal not robust to trailing zero words")
	}
}

func TestPartition(t *testing.T) {
	p, err := NewPartition(40, 16)
	if err != nil {
		t.Fatalf("NewPartition: %v", err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if p.B.Len() != 4 || p.C.Len() != 4 || p.A.Len() != 32 {
		t.Errorf("sizes: |A|=%d |B|=%d |C|=%d", p.A.Len(), p.B.Len(), p.C.Len())
	}
	if _, err := NewPartition(5, 2); err == nil {
		t.Error("expected error for t < 4")
	}
	if _, err := NewPartition(4, 4); err == nil {
		t.Error("expected error for t >= n")
	}
	bad := Partition{N: 4, A: NewSet(0, 1), B: NewSet(1, 2), C: NewSet(3)}
	if err := bad.Validate(); err == nil {
		t.Error("expected overlap error")
	}
	gap := Partition{N: 4, A: NewSet(0), B: NewSet(1), C: NewSet(2)}
	if err := gap.Validate(); err == nil {
		t.Error("expected coverage error")
	}
}

func TestSubsets(t *testing.T) {
	var count int
	NewSet(0, 1, 2).Subsets(func(s Set) bool {
		count++
		return true
	})
	if count != 8 {
		t.Errorf("enumerated %d subsets, want 8", count)
	}
	// Early termination.
	count = 0
	NewSet(0, 1, 2).Subsets(func(s Set) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Errorf("early stop after %d, want 3", count)
	}
}

func TestSortIDs(t *testing.T) {
	ids := []ID{5, 1, 3}
	if got := SortIDs(ids); !reflect.DeepEqual(got, []ID{1, 3, 5}) {
		t.Errorf("SortIDs = %v", got)
	}
}

func TestIDString(t *testing.T) {
	if got := ID(7).String(); got != "p7" {
		t.Errorf("String = %q", got)
	}
}
