// Package msg defines the message and value vocabulary shared by every
// layer of the library: the simulation engine, the omission-failure model,
// the protocol implementations, and the transports.
//
// Following Appendix A.1.1 of the paper, a message is uniquely identified
// by its sender, receiver and round: the computational model guarantees
// that no process sends two messages to the same peer in one round, so a
// Message value doubles as a unique message identity. Payloads are
// deterministic strings (protocols encode structured payloads as
// canonical JSON), which makes messages comparable and hashable for the
// indistinguishability machinery.
package msg

import (
	"encoding/json"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"

	"expensive/internal/proc"
)

// Value is a protocol value: a proposal from V_I or a decision from V_O.
// Values are opaque deterministic strings; structured values (e.g. the
// I_n vectors decided by interactive consistency) use canonical encodings
// provided by this package.
type Value string

// Common binary values used by weak/strong consensus.
const (
	Zero Value = "0"
	One  Value = "1"
)

// Bit converts 0/1 to the corresponding binary Value.
func Bit(b int) Value {
	if b == 0 {
		return Zero
	}
	return One
}

// FlipBit returns the other binary value. It panics on non-binary input,
// which is a programming error in the caller.
func FlipBit(v Value) Value {
	switch v {
	case Zero:
		return One
	case One:
		return Zero
	}
	panic(fmt.Sprintf("msg: FlipBit on non-binary value %q", v))
}

// IsBit reports whether v ∈ {0, 1}.
func IsBit(v Value) bool { return v == Zero || v == One }

// NoDecision is the sentinel used in traces for "has not decided".
// It is not a legal protocol value.
const NoDecision Value = "\x00<undecided>"

// Message is a round-stamped message between two processes. All fields are
// comparable, so Message values can be used as map keys.
type Message struct {
	Sender   proc.ID
	Receiver proc.ID
	Round    int
	Payload  string
}

// String renders the message for diagnostics.
func (m Message) String() string {
	p := m.Payload
	if len(p) > 32 {
		p = p[:29] + "..."
	}
	return fmt.Sprintf("[r%d %s->%s %q]", m.Round, m.Sender, m.Receiver, p)
}

// Key is the identity of a message within an execution (sender, receiver,
// round). Per the computational model there is at most one message per key.
type Key struct {
	Sender   proc.ID
	Receiver proc.ID
	Round    int
}

// Key returns the identity of m.
func (m Message) Key() Key {
	return Key{Sender: m.Sender, Receiver: m.Receiver, Round: m.Round}
}

// Sort orders messages deterministically (round, sender, receiver) in
// place and returns the slice. Message keys are unique within an inbox or
// trace, so the order is total and the (non-stable) sort deterministic.
func Sort(ms []Message) []Message {
	slices.SortFunc(ms, func(a, b Message) int {
		if a.Round != b.Round {
			return a.Round - b.Round
		}
		if a.Sender != b.Sender {
			return int(a.Sender) - int(b.Sender)
		}
		return int(a.Receiver) - int(b.Receiver)
	})
	return ms
}

// SetOf builds a set keyed by message identity.
func SetOf(ms []Message) map[Key]Message {
	out := make(map[Key]Message, len(ms))
	for _, m := range ms {
		out[m.Key()] = m
	}
	return out
}

// SameSet reports whether two message slices contain exactly the same
// messages (identity and payload), regardless of order.
func SameSet(a, b []Message) bool {
	if len(a) != len(b) {
		return false
	}
	sa := SetOf(a)
	for _, m := range b {
		got, ok := sa[m.Key()]
		if !ok || got != m {
			return false
		}
	}
	return true
}

// Encode canonically serializes any JSON-marshalable payload struct.
// encoding/json is deterministic for structs (field order) and maps
// (sorted keys), which is what makes simulated executions replayable.
func Encode(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		// Payload types are defined by this library and always marshalable;
		// reaching this is a programming error.
		panic(fmt.Sprintf("msg: encode payload: %v", err))
	}
	return string(b)
}

// Decode parses a payload produced by Encode into out.
func Decode(payload string, out any) error {
	if err := json.Unmarshal([]byte(payload), out); err != nil {
		return fmt.Errorf("decode payload %q: %w", payload, err)
	}
	return nil
}

// EncodeVector canonically encodes a vector of n values (the I_n elements
// decided by interactive consistency).
func EncodeVector(vec []Value) Value {
	return Value(Encode(vec))
}

// decodeCacheCap bounds each CachedDecoder's memo. Honest payload
// universes are tiny; only an adversary flooding unbounded distinct
// payloads ever reaches the cap, after which misses decode uncached.
const decodeCacheCap = 1 << 14

// CachedDecoder returns a process-wide memoizing decoder for payloads of
// type T. Probe sweeps decode the same small universe of payload strings
// millions of times; the memo turns those repeats into a map lookup.
//
// The returned value is shared between all callers that present the same
// payload string: treat it as immutable. ok=false marks a payload that
// does not decode as T (a Byzantine sender's garbage) — that verdict is
// memoized too.
func CachedDecoder[T any]() func(payload string) (*T, bool) {
	type entry struct {
		val *T
		ok  bool
	}
	var (
		cache sync.Map // string -> entry
		size  atomic.Int64
	)
	return func(payload string) (*T, bool) {
		if e, hit := cache.Load(payload); hit {
			en := e.(entry)
			return en.val, en.ok
		}
		v := new(T)
		en := entry{}
		if err := Decode(payload, v); err == nil {
			en = entry{val: v, ok: true}
		}
		if size.Load() < decodeCacheCap {
			if _, loaded := cache.LoadOrStore(payload, en); !loaded {
				size.Add(1)
			}
		}
		return en.val, en.ok
	}
}

// DecodeVector parses a vector encoded by EncodeVector.
func DecodeVector(v Value) ([]Value, error) {
	var out []Value
	if err := Decode(string(v), &out); err != nil {
		return nil, fmt.Errorf("vector: %w", err)
	}
	return out, nil
}
