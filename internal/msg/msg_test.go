package msg

import (
	"reflect"
	"testing"
	"testing/quick"

	"expensive/internal/proc"
)

func TestBitHelpers(t *testing.T) {
	if Bit(0) != Zero || Bit(1) != One || Bit(7) != One {
		t.Error("Bit mapping wrong")
	}
	if FlipBit(Zero) != One || FlipBit(One) != Zero {
		t.Error("FlipBit wrong")
	}
	if !IsBit(Zero) || !IsBit(One) || IsBit("2") || IsBit(NoDecision) {
		t.Error("IsBit wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("FlipBit on non-bit should panic")
		}
	}()
	FlipBit("x")
}

func TestMessageKeyAndString(t *testing.T) {
	m := Message{Sender: 1, Receiver: 2, Round: 3, Payload: "hello"}
	if m.Key() != (Key{Sender: 1, Receiver: 2, Round: 3}) {
		t.Errorf("Key = %+v", m.Key())
	}
	if got := m.String(); got != `[r3 p1->p2 "hello"]` {
		t.Errorf("String = %q", got)
	}
	long := Message{Payload: "0123456789012345678901234567890123456789"}
	if len(long.String()) > 60 {
		t.Errorf("long payload not truncated: %q", long.String())
	}
}

func TestSortDeterminism(t *testing.T) {
	ms := []Message{
		{Sender: 2, Receiver: 0, Round: 1},
		{Sender: 1, Receiver: 3, Round: 2},
		{Sender: 1, Receiver: 0, Round: 1},
		{Sender: 1, Receiver: 2, Round: 1},
	}
	Sort(ms)
	want := []Message{
		{Sender: 1, Receiver: 0, Round: 1},
		{Sender: 1, Receiver: 2, Round: 1},
		{Sender: 2, Receiver: 0, Round: 1},
		{Sender: 1, Receiver: 3, Round: 2},
	}
	if !reflect.DeepEqual(ms, want) {
		t.Errorf("Sort = %v", ms)
	}
}

func TestSameSet(t *testing.T) {
	a := []Message{{Sender: 1, Receiver: 2, Round: 1, Payload: "x"}}
	b := []Message{{Sender: 1, Receiver: 2, Round: 1, Payload: "x"}}
	if !SameSet(a, b) {
		t.Error("identical sets not equal")
	}
	c := []Message{{Sender: 1, Receiver: 2, Round: 1, Payload: "y"}}
	if SameSet(a, c) {
		t.Error("payload difference not detected")
	}
	if SameSet(a, nil) {
		t.Error("length difference not detected")
	}
	if !SameSet(nil, nil) {
		t.Error("empty sets should be equal")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	type inner struct {
		A int
		B string
	}
	v := inner{A: 7, B: "x"}
	var got inner
	if err := Decode(Encode(v), &got); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got != v {
		t.Errorf("round trip = %+v", got)
	}
	if err := Decode("{not json", &got); err == nil {
		t.Error("expected decode error")
	}
}

func TestVectorRoundTripProperty(t *testing.T) {
	f := func(raw []string) bool {
		vec := make([]Value, len(raw))
		for i, s := range raw {
			vec[i] = Value(s)
		}
		got, err := DecodeVector(EncodeVector(vec))
		if err != nil {
			return false
		}
		if len(got) != len(vec) {
			return false
		}
		for i := range vec {
			if got[i] != vec[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDecodeVectorErrors(t *testing.T) {
	if _, err := DecodeVector("not-json"); err == nil {
		t.Error("expected error")
	}
}

func TestEncodeDeterminism(t *testing.T) {
	// Map keys are sorted by encoding/json: canonical form.
	m1 := map[string]string{"b": "2", "a": "1"}
	m2 := map[string]string{"a": "1", "b": "2"}
	if Encode(m1) != Encode(m2) {
		t.Error("map encoding not canonical")
	}
}

func TestSetOf(t *testing.T) {
	ms := []Message{
		{Sender: proc.ID(1), Receiver: 2, Round: 1, Payload: "a"},
		{Sender: proc.ID(3), Receiver: 2, Round: 1, Payload: "b"},
	}
	set := SetOf(ms)
	if len(set) != 2 {
		t.Fatalf("SetOf len = %d", len(set))
	}
	if set[ms[0].Key()].Payload != "a" {
		t.Error("SetOf lookup wrong")
	}
}
