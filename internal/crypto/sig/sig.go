// Package sig provides the authentication substrate of §5.1: digital
// signatures that let a process sign messages "in a way that prevents the
// signature from being forged by any other process" (the idealized model
// of [Canetti 04] the paper builds on).
//
// Two interchangeable schemes are provided:
//
//   - Ideal: an idealized signature oracle backed by per-process HMAC-SHA256
//     keys derived from a master seed. It models the paper's idealized
//     authenticated setting exactly and is extremely fast, which matters for
//     the benchmark sweeps.
//   - Ed25519: real public-key signatures from crypto/ed25519 with
//     deterministic key generation, demonstrating that every authenticated
//     protocol in this library runs unchanged on a production scheme.
//
// Unforgeability inside the simulator is enforced by Restrict: protocol
// code and Byzantine adversaries receive a Signer restricted to the
// identities they legitimately control, so a faulty process can never
// produce a valid signature for a correct one.
package sig

import (
	"crypto/ed25519"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"

	"expensive/internal/proc"
)

// Signature is a detached signature over a byte string, hex-encoded so it
// can travel inside canonical JSON payloads.
type Signature string

// Scheme can sign on behalf of process identities and verify signatures.
type Scheme interface {
	// Sign produces id's signature over data. It returns an error when this
	// scheme instance is not allowed to sign for id (see Restrict).
	Sign(id proc.ID, data []byte) (Signature, error)
	// Verify reports whether sig is id's valid signature over data.
	Verify(id proc.ID, data []byte, sig Signature) bool
	// Name identifies the scheme for diagnostics.
	Name() string
}

// Ideal is the idealized HMAC-backed signature oracle. Each process id has
// an independent secret key derived from the master seed; a signature is
// valid iff it was produced with that key over exactly that data.
//
// The oracle memoizes derived keys and signatures: authenticated probe
// sweeps sign the same small universe of (id, data) pairs millions of
// times, and HMAC construction dominated their machine cost. Signatures
// are deterministic, so cached and fresh results are identical. The cache
// is concurrency-safe (one scheme instance is shared across a campaign's
// workers) and capped — an adversary signing unbounded distinct data past
// the cap simply stops populating it.
type Ideal struct {
	seed []byte
	keys sync.Map // proc.ID -> []byte
	sigs sync.Map // sigCacheKey -> Signature
	nsig atomic.Int64
}

type sigCacheKey struct {
	id   proc.ID
	data string
}

const sigCacheCap = 1 << 15

var _ Scheme = (*Ideal)(nil)

// NewIdeal creates an idealized scheme from a master seed. Two schemes with
// the same seed accept each other's signatures, which is how all processes
// of one system share a PKI.
func NewIdeal(seed string) *Ideal {
	sum := sha256.Sum256([]byte("ideal-master|" + seed))
	return &Ideal{seed: sum[:]}
}

func (s *Ideal) key(id proc.ID) []byte {
	if k, ok := s.keys.Load(id); ok {
		return k.([]byte)
	}
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(int64(id)))
	mac := hmac.New(sha256.New, s.seed)
	mac.Write([]byte("key|"))
	mac.Write(buf[:])
	k, _ := s.keys.LoadOrStore(id, mac.Sum(nil))
	return k.([]byte)
}

// Sign implements Scheme.
func (s *Ideal) Sign(id proc.ID, data []byte) (Signature, error) {
	ck := sigCacheKey{id: id, data: string(data)}
	if v, ok := s.sigs.Load(ck); ok {
		return v.(Signature), nil
	}
	mac := hmac.New(sha256.New, s.key(id))
	mac.Write(data)
	out := Signature(hex.EncodeToString(mac.Sum(nil)))
	if s.nsig.Load() < sigCacheCap {
		if _, loaded := s.sigs.LoadOrStore(ck, out); !loaded {
			s.nsig.Add(1)
		}
	}
	return out, nil
}

// Verify implements Scheme.
func (s *Ideal) Verify(id proc.ID, data []byte, sig Signature) bool {
	want, err := s.Sign(id, data)
	if err != nil {
		return false
	}
	return hmac.Equal([]byte(want), []byte(sig))
}

// Name implements Scheme.
func (s *Ideal) Name() string { return "ideal-hmac" }

// Ed25519 is a real public-key scheme with deterministic per-id keypairs.
type Ed25519 struct {
	seed string
	pub  map[proc.ID]ed25519.PublicKey
	priv map[proc.ID]ed25519.PrivateKey
}

var _ Scheme = (*Ed25519)(nil)

// NewEd25519 creates a deterministic Ed25519 scheme covering ids 0..n-1
// plus extraIDs (e.g. blockchain client identities outside Π).
func NewEd25519(seed string, n int, extraIDs ...proc.ID) *Ed25519 {
	s := &Ed25519{
		seed: seed,
		pub:  make(map[proc.ID]ed25519.PublicKey, n+len(extraIDs)),
		priv: make(map[proc.ID]ed25519.PrivateKey, n+len(extraIDs)),
	}
	for id := proc.ID(0); id < proc.ID(n); id++ {
		s.addKey(id)
	}
	for _, id := range extraIDs {
		s.addKey(id)
	}
	return s
}

func (s *Ed25519) addKey(id proc.ID) {
	material := sha256.Sum256([]byte(fmt.Sprintf("ed25519|%s|%d", s.seed, id)))
	priv := ed25519.NewKeyFromSeed(material[:])
	s.priv[id] = priv
	pubAny := priv.Public()
	pub, ok := pubAny.(ed25519.PublicKey)
	if !ok {
		// ed25519.PrivateKey.Public always returns ed25519.PublicKey.
		panic("sig: unexpected public key type")
	}
	s.pub[id] = pub
}

// Sign implements Scheme.
func (s *Ed25519) Sign(id proc.ID, data []byte) (Signature, error) {
	priv, ok := s.priv[id]
	if !ok {
		return "", fmt.Errorf("sign: no key for %s", id)
	}
	return Signature(hex.EncodeToString(ed25519.Sign(priv, data))), nil
}

// Verify implements Scheme.
func (s *Ed25519) Verify(id proc.ID, data []byte, sig Signature) bool {
	pub, ok := s.pub[id]
	if !ok {
		return false
	}
	raw, err := hex.DecodeString(string(sig))
	if err != nil {
		return false
	}
	return ed25519.Verify(pub, data, raw)
}

// Name implements Scheme.
func (s *Ed25519) Name() string { return "ed25519" }

// Restricted wraps a Scheme and only allows signing for an explicit set of
// identities. Verification is unrestricted. This is how the simulator
// enforces unforgeability: each process (and the Byzantine adversary) gets
// a Restricted scheme over exactly the identities it controls.
type Restricted struct {
	inner   Scheme
	allowed proc.Set
}

var _ Scheme = (*Restricted)(nil)

// Restrict returns a scheme that signs only for ids in allowed.
func Restrict(inner Scheme, allowed proc.Set) *Restricted {
	return &Restricted{inner: inner, allowed: allowed}
}

// Sign implements Scheme, refusing identities outside the allowed set.
func (r *Restricted) Sign(id proc.ID, data []byte) (Signature, error) {
	if !r.allowed.Contains(id) {
		return "", fmt.Errorf("sign: %s not controlled by this signer (allowed %v)", id, r.allowed)
	}
	return r.inner.Sign(id, data)
}

// Verify implements Scheme.
func (r *Restricted) Verify(id proc.ID, data []byte, sig Signature) bool {
	return r.inner.Verify(id, data, sig)
}

// Name implements Scheme.
func (r *Restricted) Name() string { return r.inner.Name() + "-restricted" }
