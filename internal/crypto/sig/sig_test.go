package sig

import (
	"testing"
	"testing/quick"

	"expensive/internal/proc"
)

func schemes(t *testing.T) map[string]Scheme {
	t.Helper()
	return map[string]Scheme{
		"ideal":   NewIdeal("test-seed"),
		"ed25519": NewEd25519("test-seed", 8),
	}
}

func TestSignVerify(t *testing.T) {
	for name, s := range schemes(t) {
		t.Run(name, func(t *testing.T) {
			data := []byte("the-message")
			g, err := s.Sign(3, data)
			if err != nil {
				t.Fatalf("Sign: %v", err)
			}
			if !s.Verify(3, data, g) {
				t.Error("valid signature rejected")
			}
			if s.Verify(4, data, g) {
				t.Error("signature accepted for wrong signer")
			}
			if s.Verify(3, []byte("tampered"), g) {
				t.Error("signature accepted for tampered message")
			}
			if s.Verify(3, data, g+"00") {
				t.Error("tampered signature accepted")
			}
			if s.Verify(3, data, "zz-not-hex") {
				t.Error("garbage signature accepted")
			}
		})
	}
}

func TestDeterministicAcrossInstances(t *testing.T) {
	a, b := NewIdeal("seed-x"), NewIdeal("seed-x")
	data := []byte("m")
	ga, _ := a.Sign(1, data)
	if !b.Verify(1, data, ga) {
		t.Error("same-seed ideal schemes do not share a PKI")
	}
	c := NewIdeal("seed-y")
	if c.Verify(1, data, ga) {
		t.Error("different-seed ideal scheme accepted foreign signature")
	}

	e1, e2 := NewEd25519("seed-x", 4), NewEd25519("seed-x", 4)
	ge, _ := e1.Sign(2, data)
	if !e2.Verify(2, data, ge) {
		t.Error("same-seed ed25519 schemes do not share a PKI")
	}
}

func TestEd25519ExtraIDs(t *testing.T) {
	s := NewEd25519("seed", 3, 1000, 1001)
	data := []byte("client-tx")
	g, err := s.Sign(1000, data)
	if err != nil {
		t.Fatalf("Sign client: %v", err)
	}
	if !s.Verify(1000, data, g) {
		t.Error("client signature rejected")
	}
	if _, err := s.Sign(55, data); err == nil {
		t.Error("expected error signing for unknown id")
	}
	if s.Verify(55, data, g) {
		t.Error("verify for unknown id succeeded")
	}
}

func TestRestricted(t *testing.T) {
	inner := NewIdeal("seed")
	r := Restrict(inner, proc.NewSet(1, 2))
	data := []byte("m")
	if _, err := r.Sign(1, data); err != nil {
		t.Errorf("allowed id refused: %v", err)
	}
	if _, err := r.Sign(3, data); err == nil {
		t.Error("restricted signer signed for foreign id — forgery possible")
	}
	// Verification is unrestricted.
	g, _ := inner.Sign(3, data)
	if !r.Verify(3, data, g) {
		t.Error("restricted scheme rejects valid foreign signature")
	}
	if r.Name() == "" || inner.Name() == "" {
		t.Error("names empty")
	}
}

func TestUnforgeabilityProperty(t *testing.T) {
	s := NewIdeal("prop-seed")
	f := func(data []byte, wrongSigner uint8) bool {
		signer := proc.ID(wrongSigner % 8)
		other := proc.ID((int(signer) + 1) % 8)
		g, err := s.Sign(signer, data)
		if err != nil {
			return false
		}
		// A signature never verifies for a different identity or message.
		if s.Verify(other, data, g) {
			return false
		}
		return s.Verify(signer, data, g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkIdealSign(b *testing.B) {
	s := NewIdeal("bench")
	data := []byte("benchmark-message")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.Sign(1, data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEd25519Sign(b *testing.B) {
	s := NewEd25519("bench", 4)
	data := []byte("benchmark-message")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.Sign(1, data); err != nil {
			b.Fatal(err)
		}
	}
}
