package dist

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"time"

	"expensive/internal/transport"
)

// ProtocolVersion gates coordinator/worker compatibility: a hello with a
// different version is rejected at handshake. Version 2 added
// MsgUnitFailed (unit-level failure without worker death).
const ProtocolVersion = 2

// maxFrame bounds one wire frame (64 MiB) — far above any real message,
// low enough that a corrupt length prefix cannot allocate the machine
// away.
const maxFrame = 64 << 20

// MsgKind discriminates wire messages.
type MsgKind string

const (
	// MsgHello is the worker's opening message.
	MsgHello MsgKind = "hello"
	// MsgJob is the coordinator's reply: the campaign to work on.
	MsgJob MsgKind = "job"
	// MsgUnit assigns one work unit to a worker.
	MsgUnit MsgKind = "unit"
	// MsgResult returns one completed unit.
	MsgResult MsgKind = "result"
	// MsgHeartbeat is the worker's periodic liveness beacon.
	MsgHeartbeat MsgKind = "heartbeat"
	// MsgEvent forwards one obs trace event (a JSONL line) from worker
	// to coordinator.
	MsgEvent MsgKind = "event"
	// MsgUnitFailed reports that one unit failed worker-side; the worker
	// stays alive and keeps serving other units. The coordinator requeues
	// the unit against its retry budget, quarantining it when exhausted.
	MsgUnitFailed MsgKind = "unit_failed"
	// MsgError reports a fatal worker-side harness failure.
	MsgError MsgKind = "error"
	// MsgDone tells a worker the campaign is over; the worker exits
	// cleanly.
	MsgDone MsgKind = "done"
)

// UnitFailed is the MsgUnitFailed payload.
type UnitFailed struct {
	Unit  int    `json:"unit"`
	Error string `json:"error"`
}

// Hello opens a worker connection.
type Hello struct {
	Version int    `json:"version"`
	Name    string `json:"name"`
}

// Message is the wire envelope: Kind plus the matching payload field.
type Message struct {
	Kind   MsgKind         `json:"kind"`
	Hello  *Hello          `json:"hello,omitempty"`
	Job    *Job            `json:"job,omitempty"`
	Unit   *Unit           `json:"unit,omitempty"`
	Result *Result         `json:"result,omitempty"`
	Failed *UnitFailed     `json:"failed,omitempty"`
	Event  json.RawMessage `json:"event,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// Conn frames messages over a TCP connection: a 4-byte big-endian length
// prefix followed by the JSON body, written in a single Write (tcpnet's
// framing discipline, with an explicit prefix instead of newlines so
// bodies may contain anything). Sends are serialized by a mutex —
// heartbeats and results share one connection — while Recv is
// single-reader by construction.
type Conn struct {
	c net.Conn

	wmu sync.Mutex
}

// NewConn wraps an established connection.
func NewConn(c net.Conn) *Conn { return &Conn{c: c} }

// Dial connects to a coordinator with bounded-backoff retry.
func Dial(addr string, attempts int, backoff time.Duration) (*Conn, error) {
	c, err := transport.DialRetry("tcp", addr, attempts, backoff)
	if err != nil {
		return nil, err
	}
	return NewConn(c), nil
}

// Send marshals and writes one framed message.
func (c *Conn) Send(m *Message) error {
	body, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("dist: marshal %s: %w", m.Kind, err)
	}
	if len(body) > maxFrame {
		return fmt.Errorf("dist: %s frame %d bytes exceeds %d", m.Kind, len(body), maxFrame)
	}
	frame := make([]byte, 4+len(body))
	binary.BigEndian.PutUint32(frame, uint32(len(body)))
	copy(frame[4:], body)
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if _, err := c.c.Write(frame); err != nil {
		return fmt.Errorf("dist: write %s: %w", m.Kind, classify(err))
	}
	return nil
}

// classify folds raw socket errors into the transport sentinels, so the
// scheduler's dead-worker detector and the worker's reconnect loop can
// decide with errors.Is instead of string matching: a blown read deadline
// is transport.ErrTimeout (the peer stalled), a vanished connection is
// transport.ErrClosed (the peer is gone, or we were told to go).
func classify(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, os.ErrDeadlineExceeded):
		return fmt.Errorf("%w (%v)", transport.ErrTimeout, err)
	case errors.Is(err, net.ErrClosed), errors.Is(err, io.EOF), errors.Is(err, io.ErrUnexpectedEOF):
		return fmt.Errorf("%w (%v)", transport.ErrClosed, err)
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return fmt.Errorf("%w (%v)", transport.ErrTimeout, err)
	}
	var oe *net.OpError
	if errors.As(err, &oe) {
		return fmt.Errorf("%w (%v)", transport.ErrClosed, err)
	}
	return err
}

// Recv reads one framed message. A positive timeout arms a read deadline
// covering the whole frame — the coordinator's dead-worker detector and
// the worker's handshake guard; 0 blocks indefinitely.
func (c *Conn) Recv(timeout time.Duration) (*Message, error) {
	if timeout > 0 {
		if err := c.c.SetReadDeadline(time.Now().Add(timeout)); err != nil {
			return nil, fmt.Errorf("dist: arm read deadline: %w", err)
		}
	} else {
		if err := c.c.SetReadDeadline(time.Time{}); err != nil {
			return nil, fmt.Errorf("dist: clear read deadline: %w", err)
		}
	}
	var prefix [4]byte
	if _, err := io.ReadFull(c.c, prefix[:]); err != nil {
		return nil, fmt.Errorf("dist: read frame length: %w", classify(err))
	}
	n := binary.BigEndian.Uint32(prefix[:])
	if n == 0 || n > maxFrame {
		return nil, fmt.Errorf("dist: frame length %d outside (0, %d]", n, maxFrame)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(c.c, body); err != nil {
		return nil, fmt.Errorf("dist: read frame body: %w", classify(err))
	}
	var m Message
	if err := json.Unmarshal(body, &m); err != nil {
		return nil, fmt.Errorf("dist: decode frame: %w", err)
	}
	return &m, nil
}

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.c.Close() }
