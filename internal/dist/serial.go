package dist

import (
	"context"
	"fmt"

	"expensive/internal/adversary"
	"expensive/internal/catalog"
	"expensive/internal/catalog/matrix"
)

// Serial runs a job single-process through the exact engine construction
// the workers use and returns the Report a distributed run of the same
// job is contractually byte-identical to. It is the soak harness's
// oracle: after a campaign survives churn and chaos, its report and
// corpus are diffed against this baseline, and any divergence is a
// determinism bug, not noise.
func Serial(ctx context.Context, job *Job) (*Report, error) {
	if job == nil {
		return nil, fmt.Errorf("dist: serial: nil job")
	}
	job.normalize()
	if err := job.validate(); err != nil {
		return nil, err
	}
	report := &Report{Kind: job.Kind, Workers: 1}
	switch {
	case job.Hunt != nil:
		j := job.Hunt
		c, err := campaignFor(j)
		if err != nil {
			return nil, err
		}
		c.Shrink = j.Shrink
		c.Ctx = ctx
		rep, err := c.Run()
		if err != nil {
			return nil, err
		}
		report.Hunt = rep
		report.Units = j.Units
	case job.Fuzz != nil:
		j := job.Fuzz
		f, err := fuzzerFor(j)
		if err != nil {
			return nil, err
		}
		f.Shrink = j.Shrink
		f.MaxViolations = j.MaxViolations
		f.StopOnViolation = j.StopOnViolation
		f.Ctx = ctx
		rep, err := f.Run()
		if err != nil {
			return nil, err
		}
		report.Fuzz = rep
		report.Corpus = f.Corpus
	case job.Matrix != nil:
		j := job.Matrix
		specs := make([]catalog.Spec, len(j.Protocols))
		for i, id := range j.Protocols {
			s, err := catalog.Get(id)
			if err != nil {
				return nil, err
			}
			specs[i] = s
		}
		named := make([]adversary.Named, len(j.Strategies))
		for i, id := range j.Strategies {
			strat, ok := adversary.FromLibrary(id, j.Bias)
			if !ok {
				return nil, fmt.Errorf("dist: unknown strategy %q", id)
			}
			named[i] = adversary.Named{ID: id, Strategy: strat}
		}
		m := &matrix.Matrix{
			Protocols:     specs,
			Strategies:    named,
			Sizes:         j.Sizes,
			Seeds:         j.Seeds,
			MaxViolations: j.MaxViolations,
			Shrink:        j.Shrink,
			RecordFull:    j.RecordFull,
			Ctx:           ctx,
		}
		grid, err := m.Run()
		if err != nil {
			return nil, err
		}
		report.Grid = grid
		report.Units = len(grid.Cells)
	}
	return report, nil
}
