package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"expensive/internal/adversary"
	"expensive/internal/transport/chaosnet"
)

// serialHuntJSON is the soak oracle for hunt jobs: the Serial baseline's
// hunt report bytes.
func serialHuntJSON(t *testing.T, job *Job) []byte {
	t.Helper()
	rep, err := Serial(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	out, _ := json.Marshal(rep.Hunt)
	return out
}

// TestSerialMatchesEngineBaselines pins Serial to the same bytes the
// test-local single-process helpers produce — the exported oracle and
// the historical one must never drift apart.
func TestSerialMatchesEngineBaselines(t *testing.T) {
	if got, want := serialHuntJSON(t, huntJob()), singleHunt(t, huntJob().Hunt); !bytes.Equal(got, want) {
		t.Errorf("Serial hunt diverged from engine baseline\ngot:  %s\nwant: %s", got, want)
	}
	rep, err := Serial(context.Background(), fuzzJob())
	if err != nil {
		t.Fatal(err)
	}
	wantRep, wantCorpus := singleFuzz(t, fuzzJob().Fuzz)
	gotRep, _ := json.Marshal(rep.Fuzz)
	gotCorpus, _ := json.Marshal(rep.Corpus)
	if !bytes.Equal(gotRep, wantRep) || !bytes.Equal(gotCorpus, wantCorpus) {
		t.Error("Serial fuzz report/corpus diverged from engine baseline")
	}
	mrep, err := Serial(context.Background(), matrixJob())
	if err != nil {
		t.Fatal(err)
	}
	if mrep.Grid == nil || len(mrep.Grid.Cells) == 0 {
		t.Error("Serial matrix produced no grid")
	}
}

// TestDistQuarantineAfterRetryBudget is the poisoned-unit edge case: a
// worker that fails every unit must quarantine them all within the
// retry budget instead of hanging the campaign, a late result for a
// quarantined unit must be dropped, and the report must name the
// quarantined units.
func TestDistQuarantineAfterRetryBudget(t *testing.T) {
	job := huntJob()
	job.Hunt.Units = 2
	job.Hunt.Shrink = false
	c := &Coordinator{Job: job, RetryBudget: 1, HeartbeatTimeout: 5 * time.Second}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}

	// The poisoned worker: fails every unit; after unit 0 is quarantined
	// (its second failure spends the budget of 1), it smuggles in a late
	// result for it, which the done-map dedup must drop.
	conn, err := Dial(c.ListenAddr(), 3, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Send(&Message{Kind: MsgHello, Hello: &Hello{Version: ProtocolVersion, Name: "poisoned"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Recv(5 * time.Second); err != nil { // the job
		t.Fatal(err)
	}
	go func() {
		sentLate := false
		for {
			m, err := conn.Recv(10 * time.Second)
			if err != nil || m.Kind == MsgDone {
				return
			}
			if m.Kind != MsgUnit {
				continue
			}
			if m.Unit.ID == 1 && !sentLate {
				sentLate = true
				_ = conn.Send(&Message{Kind: MsgResult, Result: &Result{
					Unit: 0, Probes: 999, Hunt: &adversary.CampaignReport{Probes: 999},
				}})
			}
			_ = conn.Send(&Message{Kind: MsgUnitFailed, Failed: &UnitFailed{Unit: m.Unit.ID, Error: "synthetic unit failure"}})
		}
	}()

	done := make(chan struct{})
	var rep *Report
	var runErr error
	go func() {
		rep, runErr = c.Run()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("campaign hung on a poisoned worker — quarantine did not fire")
	}
	if runErr != nil {
		t.Fatalf("campaign failed instead of degrading: %v", runErr)
	}
	if len(rep.Quarantined) != 2 || rep.Quarantined[0] != 0 || rep.Quarantined[1] != 1 {
		t.Errorf("Quarantined = %v, want [0 1]", rep.Quarantined)
	}
	// The late result for quarantined unit 0 claimed 999 probes; a fold
	// of it would leak into the merged report.
	if rep.Hunt == nil || rep.Hunt.Probes != 0 {
		t.Errorf("late result for a quarantined unit folded: %+v", rep.Hunt)
	}
	var enc bytes.Buffer
	_ = json.NewEncoder(&enc).Encode(rep)
	if !bytes.Contains(enc.Bytes(), []byte(`"quarantined":[0,1]`)) {
		t.Errorf("report JSON does not surface the quarantine: %s", enc.String())
	}
}

// TestDistStragglerReassignedWhileAlive is the heartbeat-boundary edge
// case: a worker that heartbeats just under the timeout (so it is never
// declared dead) but sits on its unit past the unit deadline must lose
// the assignment to a healthy worker — and the report must not notice.
func TestDistStragglerReassignedWhileAlive(t *testing.T) {
	want := serialHuntJSON(t, huntJob())
	c := &Coordinator{
		Job:               huntJob(),
		LocalWorkers:      1,
		WorkerParallelism: 2,
		HeartbeatTimeout:  600 * time.Millisecond,
		UnitDeadline:      250 * time.Millisecond,
		RetryBudget:       -1, // straggles must never quarantine here
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}

	// The straggler: joins first (so it receives the first unit), sends a
	// heartbeat every 500ms — inside the 600ms timeout, at its boundary —
	// and never returns a result.
	conn, err := Dial(c.ListenAddr(), 3, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Send(&Message{Kind: MsgHello, Hello: &Hello{Version: ProtocolVersion, Name: "straggler"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Recv(5 * time.Second); err != nil { // the job
		t.Fatal(err)
	}
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		t := time.NewTicker(500 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				if err := conn.Send(&Message{Kind: MsgHeartbeat}); err != nil {
					return
				}
			case <-stop:
				return
			}
		}
	}()
	go func() {
		for {
			if _, err := conn.Recv(30 * time.Second); err != nil {
				return
			}
		}
	}()

	rep, err := c.Run()
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	if rep.Reassigned < 1 {
		t.Errorf("straggler kept its unit (reassigned=%d)", rep.Reassigned)
	}
	if len(rep.Quarantined) != 0 {
		t.Errorf("unlimited retry budget quarantined units: %v", rep.Quarantined)
	}
	got, _ := json.Marshal(rep.Hunt)
	if !bytes.Equal(got, want) {
		t.Errorf("report diverged after straggle reassignment\ngot:  %s\nwant: %s", got, want)
	}
}

// TestDistWorkerJoinsMidFuzzGeneration: a worker joining while a fuzz
// generation is in flight picks up queued batches without perturbing
// the report or corpus bytes.
func TestDistWorkerJoinsMidFuzzGeneration(t *testing.T) {
	// A budget big enough that the single local worker is still inside a
	// generation when the second worker joins.
	job := func() *Job {
		j := fuzzJob()
		j.Fuzz.Budget = 1024
		return j
	}
	wantRep, wantCorpus := singleFuzz(t, job().Fuzz)
	c := &Coordinator{Job: job(), LocalWorkers: 1, WorkerParallelism: 1}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	joined := make(chan error, 1)
	go func() {
		time.Sleep(40 * time.Millisecond) // land mid-generation
		w := &Worker{Addr: c.ListenAddr(), Name: "late-joiner", Parallelism: 2}
		joined <- w.Run()
	}()
	rep, err := c.Run()
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	if err := <-joined; err != nil {
		t.Fatalf("late joiner: %v", err)
	}
	gotRep, _ := json.Marshal(rep.Fuzz)
	gotCorpus, _ := json.Marshal(rep.Corpus)
	if !bytes.Equal(gotRep, wantRep) {
		t.Errorf("fuzz report diverged with a mid-generation joiner\ngot:  %s\nwant: %s", gotRep, wantRep)
	}
	if !bytes.Equal(gotCorpus, wantCorpus) {
		t.Error("fuzz corpus diverged with a mid-generation joiner")
	}
}

// soakPlan builds one worker's wire-chaos plan: drop + delay +
// periodic partition everywhere, plus — for kill victims — a cut that
// severs the connection at a fixed sequence point, which is the
// in-process analogue of a scheduled worker kill.
//
// The windows matter: chaos seqs reset at every reconnect, so a fault
// pinned on the first couple of seqs recurs at the same point of EVERY
// incarnation. The partition therefore starts at seq 4 (never eating a
// fresh session's first exchanges) and the cut at seq 2 — late enough
// that each victim incarnation can round-trip at least one unit before
// dying, early enough that it dies on the next assignment wave.
func soakPlan(slot int, victim bool, seed int64) *chaosnet.Plan {
	rules := []chaosnet.Rule{
		{Kind: chaosnet.Drop, Pct: 8},
		{Kind: chaosnet.Delay, Pct: 20, MaxDelay: 3 * time.Millisecond},
		{Kind: chaosnet.Partition, Period: 32, Width: 2, Lo: 4},
	}
	if victim {
		rules = append(rules, chaosnet.Rule{Kind: chaosnet.Cut, Pct: 100, Lo: 2})
	}
	return chaosnet.NewPlan(fmt.Sprintf("soak-%d", slot), seed+int64(slot), chaosnet.Env{}, rules...)
}

// runSoak drives one kill-resume-under-chaos campaign: `workers` worker
// slots with chaotic coordinator links, the first two slots carrying cut
// rules that kill them deterministically; each slot respawns its worker
// (incarnation + 1) until the campaign completes. Returns the report and
// the number of kills (worker deaths followed by a respawn) observed.
func runSoak(t *testing.T, job *Job, workers int, seed int64) (*Report, int) {
	t.Helper()
	c := &Coordinator{
		Job:              job,
		HeartbeatTimeout: 2 * time.Second,
		UnitDeadline:     400 * time.Millisecond,
		RetryBudget:      -1, // chaos losses must degrade to retries, never quarantine
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	campaignDone := make(chan struct{})
	var kills atomic.Int64
	var wg sync.WaitGroup
	for slot := 0; slot < workers; slot++ {
		slot, victim := slot, slot < 2
		wg.Add(1)
		go func() {
			defer wg.Done()
			for incarnation := 0; incarnation < 100; incarnation++ {
				w := &Worker{
					Addr:        c.ListenAddr(),
					Name:        fmt.Sprintf("soak-%d-%d", slot, incarnation),
					Parallelism: 2,
					Chaos:       soakPlan(slot, victim, seed),
					ChaosNode:   slot + 1, // 63 is the coordinator's end of the link

				}
				err := w.Run()
				if err == nil {
					return // campaign completed
				}
				select {
				case <-campaignDone:
					return
				default:
				}
				kills.Add(1)
			}
			t.Error("soak worker exceeded 100 incarnations — kill loop did not converge")
			c.Drain() // fail fast rather than hang the coordinator forever
		}()
	}
	rep, err := c.Run()
	close(campaignDone)
	wg.Wait()
	if err != nil {
		t.Fatalf("soak coordinator (%d workers): %v", workers, err)
	}
	return rep, int(kills.Load())
}

// TestSoakHuntKillResumeUnderChaos is the PR's acceptance gate for hunt:
// at 2 and 4 workers, with at least two deterministic kills and a
// drop + delay + partition wire profile, the merged report must be
// byte-identical to the serial baseline and nothing may be quarantined.
func TestSoakHuntKillResumeUnderChaos(t *testing.T) {
	// 16 units (vs huntJob's 8): with 4 workers at parallelism 2 the first
	// wave assigns 8 at once, and only a second wave pushes the victims'
	// links past the cut seq — fewer units would let a 4-worker run finish
	// without a single kill.
	soakHunt := func() *Job {
		j := huntJob()
		j.Hunt.Units = 16
		return j
	}
	want := serialHuntJSON(t, soakHunt())
	for _, workers := range []int{2, 4} {
		rep, kills := runSoak(t, soakHunt(), workers, 9000)
		if kills < 2 {
			t.Errorf("%d workers: %d kills, want >= 2 — the cut rules did not fire", workers, kills)
		}
		if len(rep.Quarantined) != 0 {
			t.Errorf("%d workers: quarantined %v under unlimited retries", workers, rep.Quarantined)
		}
		got, _ := json.Marshal(rep.Hunt)
		if !bytes.Equal(got, want) {
			t.Errorf("%d workers: hunt report diverged under churn+chaos\ngot:  %s\nwant: %s", workers, got, want)
		}
	}
}

// TestSoakFuzzKillResumeUnderChaos: the same gate for fuzzing — report
// AND corpus bytes survive kills, reconnects, and wire chaos.
func TestSoakFuzzKillResumeUnderChaos(t *testing.T) {
	soakFuzz := func() *Job {
		j := fuzzJob()
		// Enough budget that every worker sees several batches per
		// generation: at 4 workers a smaller run drains before the second
		// victim's link reaches the cut seq, and no kill ever fires.
		j.Fuzz.Budget = 512
		return j
	}
	wantRep, wantCorpus := singleFuzz(t, soakFuzz().Fuzz)
	for _, workers := range []int{2, 4} {
		rep, kills := runSoak(t, soakFuzz(), workers, 9100)
		if kills < 2 {
			t.Errorf("%d workers: %d kills, want >= 2 — the cut rules did not fire", workers, kills)
		}
		gotRep, _ := json.Marshal(rep.Fuzz)
		gotCorpus, _ := json.Marshal(rep.Corpus)
		if !bytes.Equal(gotRep, wantRep) {
			t.Errorf("%d workers: fuzz report diverged under churn+chaos\ngot:  %s\nwant: %s", workers, gotRep, wantRep)
		}
		if !bytes.Equal(gotCorpus, wantCorpus) {
			t.Errorf("%d workers: fuzz corpus diverged under churn+chaos", workers)
		}
	}
}

// TestDistDrainCheckpointsAndResumes: Drain mid-campaign returns
// ErrDrained with a saved checkpoint; a fresh coordinator resumes it to
// the byte-identical report — the SIGTERM-triggered path of baexp coord.
func TestDistDrainCheckpointsAndResumes(t *testing.T) {
	want := serialHuntJSON(t, huntJob())
	path := t.TempDir() + "/checkpoint.json"

	c1 := &Coordinator{Job: huntJob(), LocalWorkers: 2, WorkerParallelism: 2, CheckpointPath: path}
	if err := c1.Start(); err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(120 * time.Millisecond)
		c1.Drain()
	}()
	_, err := c1.Run()
	if err != nil && !errors.Is(err, ErrDrained) {
		t.Fatalf("drained run: got %v, want ErrDrained or clean completion", err)
	}
	drained := errors.Is(err, ErrDrained)

	c2 := &Coordinator{Job: huntJob(), LocalWorkers: 2, WorkerParallelism: 2, CheckpointPath: path}
	rep, err := c2.Run()
	if err != nil {
		t.Fatalf("resume after drain: %v", err)
	}
	if drained && !rep.Resumed {
		t.Error("resumed run did not load the drained checkpoint")
	}
	got, _ := json.Marshal(rep.Hunt)
	if !bytes.Equal(got, want) {
		t.Errorf("report diverged across drain+resume\ngot:  %s\nwant: %s", got, want)
	}
}
