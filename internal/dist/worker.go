package dist

import (
	"context"
	"errors"
	"fmt"
	"os"
	"time"

	"expensive/internal/adversary"
	"expensive/internal/adversary/fuzz"
	"expensive/internal/catalog"
	"expensive/internal/catalog/matrix"
	"expensive/internal/experiments/runner"
	"expensive/internal/obs"
	"expensive/internal/proc"
	"expensive/internal/transport/chaosnet"
)

// Worker is one probe-executing process: it dials a coordinator, reports
// in, and loops — receive a unit, run it on the existing engines, ship
// the result back — until the coordinator says done. Workers hold no
// campaign state; killing one costs at most its in-flight unit, which
// the coordinator reassigns.
type Worker struct {
	// Addr is the coordinator's listen address (required).
	Addr string
	// Name identifies the worker in coordinator logs and telemetry;
	// default "worker-<pid>".
	Name string
	// Parallelism is the probe parallelism inside each unit; <= 0 means
	// NumCPU. It never changes result bytes — units are
	// scheduling-independent.
	Parallelism int
	// DialAttempts and DialBackoff configure the connect retry (defaults
	// 10 attempts, 100ms initial backoff) — workers routinely start
	// before their coordinator finishes binding.
	DialAttempts int
	DialBackoff  time.Duration
	// Reconnect is how many times a dropped coordinator connection is
	// redialed with a fresh session after the initial one (the job is
	// re-shipped at the new handshake; lost in-flight units are the
	// coordinator's to reassign). Zero keeps the historical
	// fail-on-disconnect behavior. Protocol rejections never retry.
	Reconnect int
	// Chaos optionally injects deterministic faults into this worker's
	// coordinator link — the soak harness's wire-level churn. Control
	// messages (hello, job, done) are immune; units, results, heartbeats
	// and events are fair game. Nil means a clean link.
	Chaos *chaosnet.Plan
	// ChaosNode is this worker's identity in the chaos plan's link space
	// (the coordinator is node 63); only meaningful with Chaos set.
	ChaosNode int
	// Ctx cancels the worker; nil means background.
	Ctx context.Context
}

// errFatal marks worker errors a reconnect cannot cure: protocol
// rejections, malformed jobs, executor construction failures.
var errFatal = errors.New("dist: worker error is not retryable")

// Run executes worker sessions until the coordinator completes the
// campaign (nil), a non-retryable error occurs, or the reconnect budget
// is spent. Each session dials fresh, handshakes, and works the unit
// loop; a dropped connection burns one reconnect and starts over.
func (w *Worker) Run() error {
	name := w.Name
	if name == "" {
		name = fmt.Sprintf("worker-%d", os.Getpid())
	}
	var err error
	for attempt := 0; ; attempt++ {
		err = w.session(name)
		if err == nil || errors.Is(err, errFatal) || attempt >= w.Reconnect {
			return err
		}
		if ctx := w.Ctx; ctx != nil {
			select {
			case <-ctx.Done():
				return err
			default:
			}
		}
	}
}

// session runs one connect-handshake-work cycle.
func (w *Worker) session(name string) error {
	attempts := w.DialAttempts
	if attempts <= 0 {
		attempts = 10
	}
	backoff := w.DialBackoff
	if backoff <= 0 {
		backoff = 100 * time.Millisecond
	}
	raw, err := Dial(w.Addr, attempts, backoff)
	if err != nil {
		return err
	}
	var conn wireConn = raw
	if w.Chaos != nil {
		conn = newChaosConn(raw, w.Chaos, proc.ID(w.ChaosNode))
	}
	defer conn.Close()
	if err := conn.Send(&Message{Kind: MsgHello, Hello: &Hello{Version: ProtocolVersion, Name: name}}); err != nil {
		return err
	}
	m, err := conn.Recv(30 * time.Second)
	if err != nil {
		return fmt.Errorf("dist: %s: waiting for job: %w", name, err)
	}
	if m.Kind == MsgError {
		return fmt.Errorf("%w: %s: coordinator rejected: %s", errFatal, name, m.Error)
	}
	if m.Kind != MsgJob || m.Job == nil {
		return fmt.Errorf("%w: %s: expected a job, got %s", errFatal, name, m.Kind)
	}
	job := m.Job
	job.normalize()

	ctx := w.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	if job.WantEvents {
		// Forward engine telemetry to the coordinator: a local recorder
		// whose sink writes each JSONL event line as one wire message.
		rec := obs.New()
		rec.SetSink(obs.NewSink(&eventForwarder{conn: conn}))
		ctx = obs.Into(ctx, rec)
	}

	ex, err := newExecutor(job, ctx, w.Parallelism)
	if err != nil {
		_ = conn.Send(&Message{Kind: MsgError, Error: err.Error()})
		return fmt.Errorf("%w: %s: %v", errFatal, name, err)
	}

	// Heartbeats keep the coordinator's liveness tracking fed while this
	// goroutine crunches a unit.
	stopHB := make(chan struct{})
	defer close(stopHB)
	if job.HeartbeatMS > 0 {
		go func() {
			t := time.NewTicker(time.Duration(job.HeartbeatMS) * time.Millisecond)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					if err := conn.Send(&Message{Kind: MsgHeartbeat}); err != nil {
						return
					}
				case <-stopHB:
					return
				}
			}
		}()
	}

	for {
		m, err := conn.Recv(0)
		if err != nil {
			return fmt.Errorf("dist: %s: %w", name, err)
		}
		switch m.Kind {
		case MsgDone:
			return nil
		case MsgUnit:
			res, err := ex.run(m.Unit)
			if err != nil {
				// A failed unit is the unit's problem, not the worker's:
				// report it and stay in the loop. The coordinator charges
				// the unit's retry budget and quarantines repeat offenders.
				if serr := conn.Send(&Message{Kind: MsgUnitFailed, Failed: &UnitFailed{Unit: m.Unit.ID, Error: err.Error()}}); serr != nil {
					return fmt.Errorf("dist: %s: %w", name, serr)
				}
				continue
			}
			if err := conn.Send(&Message{Kind: MsgResult, Result: res}); err != nil {
				return fmt.Errorf("dist: %s: %w", name, err)
			}
		default:
			return fmt.Errorf("%w: %s: unexpected %s message", errFatal, name, m.Kind)
		}
	}
}

// eventForwarder adapts the obs JSONL sink to the wire: every Write is
// one complete event line (json.Encoder writes each value in a single
// call), shipped as an event message. Forwarding failures are swallowed
// — telemetry must never fail the work.
type eventForwarder struct {
	conn wireConn
}

func (f *eventForwarder) Write(p []byte) (int, error) {
	line := make([]byte, len(p))
	copy(line, p)
	for len(line) > 0 && line[len(line)-1] == '\n' {
		line = line[:len(line)-1]
	}
	if len(line) > 0 {
		_ = f.conn.Send(&Message{Kind: MsgEvent, Event: line})
	}
	return len(p), nil
}

// executor resolves a job's probe engines once and runs its units. The
// hunt campaign and fuzz prober are built from the registries exactly as
// the coordinator's merge-side twins are, so both ends agree on every
// derived constant (round bounds, horizons, validity properties).
type executor struct {
	job         *Job
	ctx         context.Context
	parallelism int

	campaign *adversary.Campaign // hunt template (Seeds overridden per unit)
	prober   *fuzz.Prober        // fuzz probe executor
}

func newExecutor(job *Job, ctx context.Context, parallelism int) (*executor, error) {
	if err := job.validate(); err != nil {
		return nil, err
	}
	ex := &executor{job: job, ctx: ctx, parallelism: parallelism}
	switch {
	case job.Hunt != nil:
		c, err := campaignFor(job.Hunt)
		if err != nil {
			return nil, err
		}
		c.Ctx = ctx
		ex.campaign = c
	case job.Fuzz != nil:
		f, err := fuzzerFor(job.Fuzz)
		if err != nil {
			return nil, err
		}
		f.Ctx = ctx
		ex.prober = f.Prober()
	}
	return ex, nil
}

// campaignFor rebuilds the hunt campaign from registry IDs. Shrinking is
// off and stays off worker-side — the coordinator shrinks the merged
// report once.
func campaignFor(j *HuntJob) (*adversary.Campaign, error) {
	spec, err := catalog.Get(j.Protocol)
	if err != nil {
		return nil, err
	}
	strat, ok := adversary.FromLibrary(j.Strategy, j.Bias)
	if !ok {
		return nil, fmt.Errorf("dist: unknown strategy %q", j.Strategy)
	}
	c, err := matrix.CampaignFor(spec, catalog.DefaultParams(j.N, j.T), strat, j.Seeds)
	if err != nil {
		return nil, err
	}
	c.MaxViolations = j.MaxViolations
	c.RecordFull = j.RecordFull
	return c, nil
}

// fuzzerFor rebuilds the fuzzer from registry IDs. Only the probe
// environment matters worker-side (Prober); session-level knobs like
// Shrink and StopOnViolation live with the coordinator.
func fuzzerFor(j *FuzzJob) (*fuzz.Fuzzer, error) {
	spec, err := catalog.Get(j.Protocol)
	if err != nil {
		return nil, err
	}
	var seed adversary.Strategy
	if j.SeedStrategy != "" {
		var ok bool
		seed, ok = adversary.FromLibrary(j.SeedStrategy, j.Bias)
		if !ok {
			return nil, fmt.Errorf("dist: unknown seed strategy %q", j.SeedStrategy)
		}
	}
	f, err := matrix.FuzzerFor(spec, catalog.DefaultParams(j.N, j.T), seed, j.Budget)
	if err != nil {
		return nil, err
	}
	f.SeedProbes = j.SeedProbes
	f.GenSize = j.GenSize
	f.FuzzSeed = j.FuzzSeed
	f.Horizon = j.Horizon
	return f, nil
}

// run executes one unit.
func (ex *executor) run(u *Unit) (*Result, error) {
	if u == nil {
		return nil, fmt.Errorf("dist: nil unit")
	}
	switch {
	case u.Seeds != nil && ex.campaign != nil:
		return ex.runHunt(u)
	case u.Batch != nil && ex.prober != nil:
		return ex.runFuzz(u)
	case u.Cell != nil && ex.job.Matrix != nil:
		return ex.runCell(u)
	}
	return nil, fmt.Errorf("dist: unit %d does not match job kind %q", u.ID, ex.job.Kind)
}

func (ex *executor) runHunt(u *Unit) (*Result, error) {
	c := *ex.campaign
	c.Seeds = *u.Seeds
	c.Parallelism = ex.parallelism
	rep, err := c.Run()
	if err != nil {
		return nil, err
	}
	return &Result{Unit: u.ID, Probes: rep.Probes, Hunt: rep}, nil
}

func (ex *executor) runFuzz(u *Unit) (*Result, error) {
	b := u.Batch
	outs, err := runner.Map(ex.ctx, runner.Workers(ex.parallelism), b.Count, func(i int) (fuzz.Outcome, error) {
		if b.Seed {
			return ex.prober.Seed(b.Start + i)
		}
		return ex.prober.Candidate(&b.Candidates[i])
	})
	if err != nil {
		return nil, err
	}
	if !b.Seed {
		// The coordinator reattaches its own candidates — shipping them
		// back would only echo what it already derived.
		for i := range outs {
			outs[i].Cand = nil
		}
	}
	return &Result{Unit: u.ID, Probes: b.Count, Fuzz: outs}, nil
}

func (ex *executor) runCell(u *Unit) (*Result, error) {
	j := ex.job.Matrix
	ref := u.Cell
	if ref.Protocol >= len(j.Protocols) || ref.Strategy >= len(j.Strategies) || ref.Size >= len(j.Sizes) {
		return nil, fmt.Errorf("dist: unit %d cell reference out of range", u.ID)
	}
	spec, err := catalog.Get(j.Protocols[ref.Protocol])
	if err != nil {
		return nil, err
	}
	id := j.Strategies[ref.Strategy]
	strat, ok := adversary.FromLibrary(id, j.Bias)
	if !ok {
		return nil, fmt.Errorf("dist: unknown strategy %q", id)
	}
	cell, err := matrix.ProbeCell(spec, adversary.Named{ID: id, Strategy: strat}, j.Sizes[ref.Size], j.Seeds, matrix.CellOptions{
		MaxViolations: j.MaxViolations,
		Shrink:        j.Shrink,
		RecordFull:    j.RecordFull,
		Parallelism:   ex.parallelism,
		Ctx:           ex.ctx,
	})
	if err != nil {
		return nil, err
	}
	return &Result{Unit: u.ID, Probes: cell.Probes, Cell: &cell}, nil
}
