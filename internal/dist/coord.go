package dist

import (
	"context"
	"errors"
	"fmt"
	"net"
	"time"

	"expensive/internal/adversary"
	"expensive/internal/adversary/fuzz"
	"expensive/internal/catalog/matrix"
	"expensive/internal/experiments/runner"
	"expensive/internal/obs"
)

// ErrStopped is returned by Coordinator.Run when the stop-after-units
// test hook fires: the campaign is checkpointed but unfinished.
var ErrStopped = errors.New("dist: coordinator stopped before completion")

// ErrDrained is returned by Coordinator.Run after Drain: no new units
// were assigned, in-flight units folded, and the checkpoint was saved. A
// later run with the same CheckpointPath resumes where the drain left
// off.
var ErrDrained = errors.New("dist: coordinator drained: progress checkpointed")

// Report is the coordinator's outcome. The JSON encoding is exactly the
// inner engine report — byte-identical to the single-process run of the
// same campaign — while the dist-level statistics ride alongside,
// excluded from the encoding like every other timing block in the repo.
type Report struct {
	Kind string                    `json:"kind"`
	Hunt *adversary.CampaignReport `json:"hunt,omitempty"`
	Fuzz *fuzz.Report              `json:"fuzz,omitempty"`
	Grid *matrix.Grid              `json:"grid,omitempty"`

	// Corpus is the merged fuzz corpus (fuzz kind only).
	Corpus *fuzz.Corpus `json:"-"`
	// Units counts completed work units; Reassigned the units re-issued
	// after a worker death; Workers the distinct workers that joined.
	Units      int `json:"-"`
	Reassigned int `json:"-"`
	Workers    int `json:"-"`
	// Resumed reports whether a checkpoint was loaded.
	Resumed bool          `json:"-"`
	Wall    time.Duration `json:"-"`

	// Quarantined lists unit IDs abandoned after exhausting the retry
	// budget, in quarantine order. It IS part of the JSON encoding — a
	// degraded report must say so — but is omitted when empty, which keeps
	// clean runs byte-identical to the single-process baseline.
	Quarantined []int `json:"quarantined,omitempty"`
}

// Coordinator owns one distributed campaign: it listens for workers,
// cuts the job into deterministic units, schedules them over the live
// worker population, folds results in unit order, and checkpoints
// progress. The report is byte-identical to a single-process run at any
// worker count, join order, or death schedule.
type Coordinator struct {
	// Job is the campaign to distribute (required).
	Job *Job
	// Addr is the TCP listen address; default "127.0.0.1:0".
	Addr string
	// CheckpointPath enables checkpoint/resume: progress is persisted
	// there, and an existing checkpoint for the same job is loaded and
	// continued.
	CheckpointPath string
	// CheckpointEvery is the number of completed hunt/matrix units
	// between checkpoint saves (default 1: every unit). Fuzz campaigns
	// checkpoint after every folded generation regardless.
	CheckpointEvery int
	// HeartbeatTimeout declares a silent worker dead (default 10s);
	// workers are told to heartbeat at a third of it.
	HeartbeatTimeout time.Duration
	// UnitDeadline bounds one unit's execution: an assignment held past
	// it is reassigned to an idle worker (the straggler stays alive — its
	// late result is deduped). Zero disables straggler detection;
	// heartbeats remain the liveness channel either way.
	UnitDeadline time.Duration
	// RetryBudget caps how many times a lost unit (worker death, unit
	// failure, or blown deadline) is requeued before being quarantined
	// and reported instead of retried forever. 0 means the default of 3;
	// negative means unlimited retries.
	RetryBudget int
	// LocalWorkers forks that many in-process workers connected over
	// loopback TCP — the `-workers N` convenience mode. Zero means only
	// external workers probe.
	LocalWorkers int
	// WorkerParallelism is passed to local workers (<= 0 means NumCPU).
	WorkerParallelism int
	// Corpus optionally seeds a fuzz campaign with a resumed corpus,
	// exactly like fuzz.Fuzzer.Corpus.
	Corpus *fuzz.Corpus
	// Ctx cancels the run; it also carries the obs recorder that
	// receives coordinator telemetry and forwarded worker events.
	Ctx context.Context

	// stopAfterUnits is a test hook: checkpoint and return ErrStopped
	// after this many units (hunt/matrix) or generations (fuzz) complete
	// in this run. Zero disables it.
	stopAfterUnits int

	ln    net.Listener
	sched *scheduler
}

// Start binds the listener and begins accepting workers. Run calls it
// implicitly; calling it first lets the caller learn ListenAddr before
// any worker exists.
func (c *Coordinator) Start() error {
	if c.ln != nil {
		return nil
	}
	if c.Job == nil {
		return fmt.Errorf("dist: coordinator needs a job")
	}
	c.Job.normalize()
	if c.HeartbeatTimeout <= 0 {
		c.HeartbeatTimeout = 10 * time.Second
	}
	c.Job.HeartbeatMS = int(c.HeartbeatTimeout.Milliseconds() / 3)
	if rec := obs.From(c.Ctx); rec != nil && rec.Sink() != nil {
		c.Job.WantEvents = true
	}
	if err := c.Job.validate(); err != nil {
		return err
	}
	addr := c.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("dist: listen %s: %w", addr, err)
	}
	c.ln = ln
	ctx := c.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	budget := c.RetryBudget
	switch {
	case budget == 0:
		budget = 3
	case budget < 0:
		budget = 0 // scheduler convention: 0 = unlimited
	}
	c.sched = newScheduler(ctx, c.Job, c.HeartbeatTimeout, c.UnitDeadline, budget)
	go c.sched.acceptLoop(ln)
	return nil
}

// Drain asks a running campaign to stop gracefully: no new units are
// assigned, in-flight units finish and fold, the checkpoint is saved,
// and Run returns ErrDrained. Safe to call from any goroutine (signal
// handlers included); before Start it is a no-op.
func (c *Coordinator) Drain() {
	if c.sched != nil {
		c.sched.requestDrain()
	}
}

// ListenAddr returns the bound address (after Start).
func (c *Coordinator) ListenAddr() string {
	if c.ln == nil {
		return ""
	}
	return c.ln.Addr().String()
}

// Run executes the campaign to completion and returns the merged report.
func (c *Coordinator) Run() (*Report, error) {
	if err := c.Start(); err != nil {
		return nil, err
	}
	defer c.shutdown()
	sw := runner.StartWall()

	var cp *Checkpoint
	if c.CheckpointPath != "" {
		loaded, err := loadCheckpoint(c.CheckpointPath, c.Job)
		if err != nil {
			return nil, err
		}
		cp = loaded
	}
	report := &Report{Kind: c.Job.Kind, Resumed: cp != nil}
	if cp == nil {
		cp = &Checkpoint{Version: checkpointVersion, Job: c.Job, Units: make(map[int]*Result)}
	}
	if cp.Units == nil {
		cp.Units = make(map[int]*Result)
	}

	// The -workers N convenience mode: in-process workers over loopback
	// TCP, exercising the identical wire path as external processes.
	for i := 0; i < c.LocalWorkers; i++ {
		w := &Worker{
			Addr:        c.ListenAddr(),
			Name:        fmt.Sprintf("local-%d", i),
			Parallelism: c.WorkerParallelism,
			Ctx:         c.Ctx,
		}
		go func() {
			if err := w.Run(); err != nil {
				c.sched.log("local-worker-error", "error", err.Error())
			}
		}()
	}

	var err error
	switch {
	case c.Job.Hunt != nil:
		err = c.runHunt(cp, report)
	case c.Job.Fuzz != nil:
		err = c.runFuzz(cp, report)
	case c.Job.Matrix != nil:
		err = c.runMatrix(cp, report)
	}
	if errors.Is(err, ErrDrained) {
		// The drain path's contract is the checkpoint, not the report:
		// persist whatever folded before returning.
		if serr := c.save(cp); serr != nil {
			return nil, serr
		}
	}
	if err != nil {
		return nil, err
	}
	report.Reassigned = c.sched.reassigned
	report.Workers = len(c.sched.workers)
	report.Quarantined = append([]int(nil), c.sched.quarantined...)
	report.Wall = sw.Wall()
	return report, nil
}

// save persists the checkpoint when checkpointing is enabled.
func (c *Coordinator) save(cp *Checkpoint) error {
	if c.CheckpointPath == "" {
		return nil
	}
	return saveCheckpoint(c.CheckpointPath, cp)
}

// runHunt distributes the seed-range units and merges the sub-reports.
func (c *Coordinator) runHunt(cp *Checkpoint, report *Report) error {
	units := huntUnits(c.Job.Hunt)
	results := make([]*Result, len(units))
	var pending []*Unit
	for _, u := range units {
		if r := cp.Units[u.ID]; r != nil {
			results[u.ID] = r
		} else {
			pending = append(pending, u)
		}
	}
	every := c.CheckpointEvery
	if every <= 0 {
		every = 1
	}
	completed := 0
	err := c.sched.execute(pending, func(r *Result) error {
		results[r.Unit] = r
		cp.Units[r.Unit] = r
		completed++
		report.Units++
		if completed%every == 0 {
			if err := c.save(cp); err != nil {
				return err
			}
		}
		if c.stopAfterUnits > 0 && completed >= c.stopAfterUnits && completed < len(pending) {
			if err := c.save(cp); err != nil {
				return err
			}
			return ErrStopped
		}
		return nil
	})
	if err != nil {
		return err
	}
	if err := c.save(cp); err != nil {
		return err
	}
	camp, err := campaignFor(c.Job.Hunt)
	if err != nil {
		return err
	}
	camp.Ctx = c.Ctx
	merged, err := mergeHunt(camp, results, c.sched.quarantineSet())
	if err != nil {
		return err
	}
	if c.Job.Hunt.Shrink {
		opts := camp.RecheckOptions()
		opts.Obs = obs.From(c.Ctx)
		for _, v := range merged.Violations {
			if v.Plan == nil {
				continue // not replayable: report unshrunk
			}
			sh, err := adversary.Shrink(v, opts)
			if err != nil {
				return fmt.Errorf("dist: campaign %s seed %d: shrink: %w", merged.Protocol, v.Seed, err)
			}
			v.Shrunk = sh
		}
	}
	report.Hunt = merged
	return nil
}

// runMatrix distributes one unit per cell and assembles the grid.
func (c *Coordinator) runMatrix(cp *Checkpoint, report *Report) error {
	j := c.Job.Matrix
	units := matrixUnits(j)
	results := make([]*Result, len(units))
	var pending []*Unit
	for _, u := range units {
		if r := cp.Units[u.ID]; r != nil {
			results[u.ID] = r
		} else {
			pending = append(pending, u)
		}
	}
	every := c.CheckpointEvery
	if every <= 0 {
		every = 1
	}
	completed := 0
	err := c.sched.execute(pending, func(r *Result) error {
		results[r.Unit] = r
		cp.Units[r.Unit] = r
		completed++
		report.Units++
		if completed%every == 0 {
			if err := c.save(cp); err != nil {
				return err
			}
		}
		if c.stopAfterUnits > 0 && completed >= c.stopAfterUnits && completed < len(pending) {
			if err := c.save(cp); err != nil {
				return err
			}
			return ErrStopped
		}
		return nil
	})
	if err != nil {
		return err
	}
	if err := c.save(cp); err != nil {
		return err
	}
	cells := make([]matrix.Cell, len(results))
	quarantined := c.sched.quarantineSet()
	for i, r := range results {
		if r == nil || r.Cell == nil {
			if quarantined[i] {
				return fmt.Errorf("dist: matrix cell unit %d quarantined after repeated failures; the grid cannot be assembled without it", i)
			}
			return fmt.Errorf("dist: missing cell result for unit %d", i)
		}
		cells[i] = *r.Cell
	}
	report.Grid = matrix.AssembleGrid(j.Protocols, j.Strategies, j.Sizes, j.Seeds, cells)
	return nil
}

// runFuzz drives the coordinator-owned fuzz session: candidates derive
// sequentially here, probe batches ship to workers, outcomes fold back
// in slot order — the same Session a local Fuzzer.Run drives, which is
// why the report and corpus are byte-identical.
func (c *Coordinator) runFuzz(cp *Checkpoint, report *Report) error {
	f, err := fuzzerFor(c.Job.Fuzz)
	if err != nil {
		return err
	}
	j := c.Job.Fuzz
	f.Shrink = j.Shrink
	f.MaxViolations = j.MaxViolations
	f.StopOnViolation = j.StopOnViolation
	f.Corpus = c.Corpus
	f.Ctx = c.Ctx

	var s *fuzz.Session
	if cp.Fuzz != nil {
		s, err = f.ResumeSession(cp.Fuzz)
	} else {
		s, err = f.NewSession()
	}
	if err != nil {
		return err
	}

	nextID := 0
	gens := 0
	for g := s.NextGeneration(); g != nil; g = s.NextGeneration() {
		units := batchUnits(g, j.Batch, &nextID)
		firstID := units[0].ID
		outs := make([]fuzz.Outcome, g.Count)
		filled := make([]bool, len(units))
		err := c.sched.execute(units, func(r *Result) error {
			i := r.Unit - firstID
			if i < 0 || i >= len(units) {
				return fmt.Errorf("dist: fuzz result for unknown unit %d", r.Unit)
			}
			b := units[i].Batch
			if len(r.Fuzz) != b.Count {
				return fmt.Errorf("dist: fuzz unit %d returned %d outcomes, want %d", r.Unit, len(r.Fuzz), b.Count)
			}
			copy(outs[b.Start:b.Start+b.Count], r.Fuzz)
			filled[i] = true
			report.Units++
			return nil
		})
		if err != nil {
			return err
		}
		for i, ok := range filled {
			if !ok {
				if c.sched.quarantineSet()[units[i].ID] {
					return fmt.Errorf("dist: fuzz unit %d quarantined after repeated failures; the generation fold cannot proceed without it", units[i].ID)
				}
				return fmt.Errorf("dist: fuzz unit %d never completed", units[i].ID)
			}
		}
		if !g.Seed {
			// Reattach the coordinator-derived candidates the workers
			// stripped: the fold reads parent/op/plan off them.
			for i := range outs {
				outs[i].Cand = &g.Candidates[i]
			}
		}
		s.Fold(g, outs)
		gens++
		cp.Fuzz = s.State()
		if err := c.save(cp); err != nil {
			return err
		}
		if c.stopAfterUnits > 0 && gens >= c.stopAfterUnits {
			return ErrStopped
		}
	}
	rep, err := s.Finish()
	if err != nil {
		return err
	}
	report.Fuzz = rep
	report.Corpus = f.Corpus
	return nil
}

// shutdown releases the listener and tells every live worker the
// campaign is over.
func (c *Coordinator) shutdown() {
	if c.ln != nil {
		_ = c.ln.Close()
	}
	if c.sched != nil {
		c.sched.shutdown()
	}
}
