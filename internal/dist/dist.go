// Package dist is the distributed campaign layer: a coordinator/worker
// subsystem that shards hunt, fuzz, and matrix campaigns across OS
// processes (and machines) while preserving the repo's signature
// invariant — reports and corpora byte-identical to a single-process run
// at any worker count.
//
// The architecture follows the determinism discipline of every other
// engine in the library, lifted one level up. Work is cut into units
// whose number and content depend only on the job, never on the worker
// population: hunt seed ranges split into a fixed count of contiguous
// sub-ranges (SeedRange.Split), matrix grids into one unit per cell in
// CellIndex order, and fuzz budgets into generation batches derived
// sequentially by the coordinator-owned fuzz.Session. Workers execute
// units with the existing Campaign/Prober/ProbeCell engines — whose
// outputs are themselves scheduling-independent — and the coordinator
// folds results back in unit order: campaign sub-reports merge with
// offset-shifted first-violation indices and exact-value histogram
// merges, fuzz outcomes fold through the same Session.Fold a local run
// uses, and matrix cells assemble through matrix.AssembleGrid. Where a
// probe lands therefore never changes a byte of what comes back.
//
// Transport is a length-prefixed JSON wire protocol over TCP (wire.go),
// with worker liveness tracked by heartbeats: a worker that stalls past
// the heartbeat timeout is declared dead and its in-flight unit is
// reassigned. The coordinator periodically persists completed-unit state
// (plus the merged fuzz session) to a JSON checkpoint, and a restarted
// coordinator re-issues only the incomplete units — a kill-and-resume
// run finishes with the same bytes as an uninterrupted one.
//
// This package legitimately deals in wall-clock time (heartbeats, dial
// backoff, read deadlines), so it is sanctioned for the wallclock
// analyzer; none of that time ever reaches a report.
package dist

import (
	"fmt"

	"expensive/internal/adversary"
	"expensive/internal/catalog"
	"expensive/internal/catalog/matrix"
)

// Job is the one campaign a coordinator distributes: exactly one of
// Hunt, Fuzz, Matrix is set, matching Kind. A job carries everything a
// worker needs to rebuild its probe engines from the registries — specs
// and strategies travel as catalog/library IDs, never as code.
type Job struct {
	// Kind selects the campaign: "hunt", "fuzz" or "matrix".
	Kind string `json:"kind"`
	// HeartbeatMS is the worker heartbeat interval the coordinator
	// derives from its timeout and ships with the job.
	HeartbeatMS int `json:"heartbeat_ms,omitempty"`
	// WantEvents asks workers to instrument their engines and forward
	// telemetry events over the wire (set when the coordinator itself has
	// a trace sink). Purely observational — reports are byte-identical
	// either way.
	WantEvents bool `json:"want_events,omitempty"`

	Hunt   *HuntJob   `json:"hunt,omitempty"`
	Fuzz   *FuzzJob   `json:"fuzz,omitempty"`
	Matrix *MatrixJob `json:"matrix,omitempty"`
}

// HuntJob distributes one adversary.Campaign: the seed range splits into
// Units contiguous sub-ranges, each swept by a worker campaign at the
// lean tier with shrinking deferred to the coordinator's merge.
type HuntJob struct {
	// Protocol and Strategy are registry IDs (catalog.Get,
	// adversary.FromLibrary); Bias parameterizes the random-omission
	// strategy family.
	Protocol string `json:"protocol"`
	Strategy string `json:"strategy"`
	Bias     int    `json:"bias,omitempty"`
	N        int    `json:"n"`
	T        int    `json:"t"`
	// Seeds is the full half-open seed range of the hunt.
	Seeds adversary.SeedRange `json:"seeds"`
	// Units is the work-unit count the range splits into (default 16).
	// It must not depend on the worker population — the same job always
	// cuts the same units, which is what keeps reassignment and resume
	// deterministic.
	Units int `json:"units,omitempty"`
	// Shrink, MaxViolations and RecordFull mirror the campaign fields.
	// Shrinking runs once, coordinator-side, on the merged report.
	Shrink        bool `json:"shrink,omitempty"`
	MaxViolations int  `json:"max_violations,omitempty"`
	RecordFull    bool `json:"record_full,omitempty"`
}

// FuzzJob distributes one fuzz.Fuzzer. The coordinator owns the corpus
// and the session — candidates derive sequentially exactly as in a local
// run — and ships probe batches of size Batch out to workers.
type FuzzJob struct {
	// Protocol is the catalog ID; SeedStrategy the library ID of the
	// generation-0 strategy; Bias its omission parameter.
	Protocol     string `json:"protocol"`
	SeedStrategy string `json:"seed_strategy"`
	Bias         int    `json:"bias,omitempty"`
	N            int    `json:"n"`
	T            int    `json:"t"`
	// Budget, SeedProbes, GenSize, FuzzSeed and Horizon mirror the
	// fuzzer fields (zero = the fuzzer's own defaults).
	Budget     int   `json:"budget"`
	SeedProbes int   `json:"seed_probes,omitempty"`
	GenSize    int   `json:"gen_size,omitempty"`
	FuzzSeed   int64 `json:"fuzz_seed,omitempty"`
	Horizon    int   `json:"horizon,omitempty"`
	// Batch is the probes-per-unit shipped to workers (default 16).
	Batch int `json:"batch,omitempty"`
	// Shrink, MaxViolations and StopOnViolation mirror the fuzzer
	// fields; shrinking runs coordinator-side in Session.Finish.
	Shrink          bool `json:"shrink,omitempty"`
	MaxViolations   int  `json:"max_violations,omitempty"`
	StopOnViolation bool `json:"stop_on_violation,omitempty"`
}

// MatrixJob distributes one catalog/matrix sweep: one unit per cell in
// matrix.CellIndex order. Cells run complete on workers (shrinking
// included — cells are independent), and the coordinator assembles the
// grid. Cell parameters always come from catalog.DefaultParams, the
// reproducible default.
type MatrixJob struct {
	// Protocols and Strategies are registry/library ID lists; Sizes the
	// (n, t) grid points. All are required and ordered — they define the
	// cell enumeration.
	Protocols  []string      `json:"protocols"`
	Strategies []string      `json:"strategies"`
	Sizes      []matrix.Size `json:"sizes"`
	Bias       int           `json:"bias,omitempty"`
	// Seeds is the per-cell seed range.
	Seeds adversary.SeedRange `json:"seeds"`
	// MaxViolations, Shrink and RecordFull mirror the matrix fields.
	MaxViolations int  `json:"max_violations,omitempty"`
	Shrink        bool `json:"shrink,omitempty"`
	RecordFull    bool `json:"record_full,omitempty"`
}

// normalize fills job defaults in place (idempotent).
func (j *Job) normalize() {
	if j.Hunt != nil && j.Hunt.Units <= 0 {
		j.Hunt.Units = 16
	}
	if j.Fuzz != nil && j.Fuzz.Batch <= 0 {
		j.Fuzz.Batch = 16
	}
}

// validate checks the job shape and that every registry ID resolves —
// cheap coordinator-side rejection before anything ships to a worker.
func (j *Job) validate() error {
	if j == nil {
		return fmt.Errorf("dist: nil job")
	}
	set := 0
	for _, ok := range []bool{j.Hunt != nil, j.Fuzz != nil, j.Matrix != nil} {
		if ok {
			set++
		}
	}
	if set != 1 {
		return fmt.Errorf("dist: job needs exactly one of hunt/fuzz/matrix, has %d", set)
	}
	switch {
	case j.Hunt != nil:
		if j.Kind != "hunt" {
			return fmt.Errorf("dist: hunt job with kind %q", j.Kind)
		}
		if _, err := catalog.Get(j.Hunt.Protocol); err != nil {
			return fmt.Errorf("dist: %w", err)
		}
		if _, ok := adversary.FromLibrary(j.Hunt.Strategy, j.Hunt.Bias); !ok {
			return fmt.Errorf("dist: unknown strategy %q", j.Hunt.Strategy)
		}
		if err := j.Hunt.Seeds.Err(); err != nil {
			return fmt.Errorf("dist: %w", err)
		}
	case j.Fuzz != nil:
		if j.Kind != "fuzz" {
			return fmt.Errorf("dist: fuzz job with kind %q", j.Kind)
		}
		if _, err := catalog.Get(j.Fuzz.Protocol); err != nil {
			return fmt.Errorf("dist: %w", err)
		}
		if j.Fuzz.SeedStrategy != "" {
			if _, ok := adversary.FromLibrary(j.Fuzz.SeedStrategy, j.Fuzz.Bias); !ok {
				return fmt.Errorf("dist: unknown seed strategy %q", j.Fuzz.SeedStrategy)
			}
		}
		if j.Fuzz.Budget <= 0 {
			return fmt.Errorf("dist: fuzz budget must be positive, got %d", j.Fuzz.Budget)
		}
	case j.Matrix != nil:
		if j.Kind != "matrix" {
			return fmt.Errorf("dist: matrix job with kind %q", j.Kind)
		}
		m := j.Matrix
		if len(m.Protocols) == 0 || len(m.Strategies) == 0 || len(m.Sizes) == 0 {
			return fmt.Errorf("dist: matrix job needs protocols, strategies and sizes")
		}
		for _, id := range m.Protocols {
			if _, err := catalog.Get(id); err != nil {
				return fmt.Errorf("dist: %w", err)
			}
		}
		for _, id := range m.Strategies {
			if _, ok := adversary.FromLibrary(id, m.Bias); !ok {
				return fmt.Errorf("dist: unknown strategy %q", id)
			}
		}
		if err := m.Seeds.Err(); err != nil {
			return fmt.Errorf("dist: %w", err)
		}
	}
	return nil
}
