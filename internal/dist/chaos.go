package dist

import (
	"fmt"
	"sync"
	"time"

	"expensive/internal/proc"
	"expensive/internal/transport"
	"expensive/internal/transport/chaosnet"
)

// wireConn is the worker-side view of the coordinator link: the subset of
// Conn the worker loop needs, so a chaos wrapper can slot in between.
type wireConn interface {
	Send(m *Message) error
	Recv(timeout time.Duration) (*Message, error)
	Close() error
}

var (
	_ wireConn = (*Conn)(nil)
	_ wireConn = (*chaosConn)(nil)
)

// CoordinatorChaosNode is the coordinator's identity in a chaos plan's
// link space: worker w's uplink is the (w -> 63) stream, its downlink
// (63 -> w). Plans built with Env{N: 0} (the opaque-ID default) cover it.
const CoordinatorChaosNode proc.ID = 63

// chaosConn injects deterministic faults into a worker's coordinator
// link. Faults are drawn from a chaosnet.Plan keyed by direction and a
// per-direction message sequence number, so a given (plan, node) pair
// always loses the same messages — the soak harness's reproducibility
// hinges on that.
//
// Control messages that establish or end a session (hello, job, done,
// error) are immune: faulting those models a connect failure, which the
// dial retry already covers, not a lossy link. Everything else — units,
// results, unit failures, heartbeats, events — is droppable or delayable,
// and every loss is one the dist recovery machinery must absorb: a lost
// unit surfaces via the unit deadline, a lost result via dedup plus
// reassignment, lost heartbeats via worker death and reconnect.
type chaosConn struct {
	inner *Conn
	plan  *chaosnet.Plan
	node  proc.ID

	mu      sync.Mutex
	sendSeq int
	recvSeq int
}

func newChaosConn(inner *Conn, plan *chaosnet.Plan, node proc.ID) *chaosConn {
	return &chaosConn{inner: inner, plan: plan, node: node}
}

// immune reports whether a message kind is exempt from fault injection.
func immune(k MsgKind) bool {
	switch k {
	case MsgHello, MsgJob, MsgDone, MsgError:
		return true
	}
	return false
}

func (c *chaosConn) Send(m *Message) error {
	if immune(m.Kind) {
		return c.inner.Send(m)
	}
	c.mu.Lock()
	seq := c.sendSeq
	c.sendSeq++
	c.mu.Unlock()
	f := c.plan.Faults(c.node, CoordinatorChaosNode, seq)
	if f.Cut {
		_ = c.inner.Close()
		return fmt.Errorf("dist: chaos cut uplink at seq %d: %w", seq, transport.ErrClosed)
	}
	if f.Delay > 0 {
		time.Sleep(f.Delay)
	}
	if f.Drop {
		return nil // swallowed by the wire; recovery is the coordinator's job
	}
	return c.inner.Send(m)
}

func (c *chaosConn) Recv(timeout time.Duration) (*Message, error) {
	for {
		m, err := c.inner.Recv(timeout)
		if err != nil {
			return nil, err
		}
		if immune(m.Kind) {
			return m, nil
		}
		c.mu.Lock()
		seq := c.recvSeq
		c.recvSeq++
		c.mu.Unlock()
		f := c.plan.Faults(CoordinatorChaosNode, c.node, seq)
		if f.Cut {
			_ = c.inner.Close()
			return nil, fmt.Errorf("dist: chaos cut downlink at seq %d: %w", seq, transport.ErrClosed)
		}
		if f.Delay > 0 {
			time.Sleep(f.Delay)
		}
		if f.Drop {
			continue // lost in flight; the unit deadline or dedup recovers it
		}
		return m, nil
	}
}

func (c *chaosConn) Close() error {
	return c.inner.Close()
}
