package dist

import (
	"bytes"
	"encoding/json"
	"errors"
	"path/filepath"
	"testing"
	"time"

	"expensive/internal/adversary"
	"expensive/internal/catalog"
	_ "expensive/internal/catalog/all" // register every protocol
	"expensive/internal/catalog/matrix"
)

// huntJob is the canonical distributed hunt: FloodSet at t = n-1 under
// targeted withholding, a range wide enough to span several units and
// violating seeds to exercise the merge's violation paths.
func huntJob() *Job {
	return &Job{Kind: "hunt", Hunt: &HuntJob{
		Protocol: "floodset",
		Strategy: "targeted-withhold",
		N:        4,
		T:        3,
		Seeds:    adversary.SeedRange{From: 0, To: 64},
		Units:    8,
		Shrink:   true,

		MaxViolations: 3,
	}}
}

func fuzzJob() *Job {
	return &Job{Kind: "fuzz", Fuzz: &FuzzJob{
		Protocol:     "floodset",
		SeedStrategy: "random-send-omission",
		Bias:         40,
		N:            4,
		T:            3,
		Budget:       256,
		Batch:        16,
		Shrink:       true,

		MaxViolations: 2,
	}}
}

func matrixJob() *Job {
	return &Job{Kind: "matrix", Matrix: &MatrixJob{
		Protocols:  []string{"floodset", "phase-king"},
		Strategies: []string{"silent-crash", "targeted-withhold"},
		Sizes:      []matrix.Size{{N: 4, T: 1}, {N: 8, T: 2}},
		Bias:       40,
		Seeds:      adversary.SeedRange{From: 0, To: 8},

		MaxViolations: 1,
	}}
}

// singleHunt runs the hunt single-process through the same engine
// construction the workers use and returns the report JSON.
func singleHunt(t *testing.T, j *HuntJob) []byte {
	t.Helper()
	c, err := campaignFor(j)
	if err != nil {
		t.Fatal(err)
	}
	c.Shrink = j.Shrink
	rep, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	out, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// singleFuzz runs the fuzz campaign single-process and returns report
// and corpus JSON.
func singleFuzz(t *testing.T, j *FuzzJob) ([]byte, []byte) {
	t.Helper()
	f, err := fuzzerFor(j)
	if err != nil {
		t.Fatal(err)
	}
	f.Shrink = j.Shrink
	f.MaxViolations = j.MaxViolations
	f.StopOnViolation = j.StopOnViolation
	rep, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	repJSON, _ := json.Marshal(rep)
	corpusJSON, _ := json.Marshal(f.Corpus)
	return repJSON, corpusJSON
}

// coordinate runs a job through a coordinator with n local workers.
func coordinate(t *testing.T, job *Job, workers int, tune func(*Coordinator)) *Report {
	t.Helper()
	c := &Coordinator{Job: job, LocalWorkers: workers, WorkerParallelism: 2}
	if tune != nil {
		tune(c)
	}
	rep, err := c.Run()
	if err != nil {
		t.Fatalf("coordinator (%d workers): %v", workers, err)
	}
	return rep
}

// TestDistHuntByteIdentical is the subsystem's core acceptance: the
// merged hunt report is byte-identical to the single-process run at
// every worker count.
func TestDistHuntByteIdentical(t *testing.T) {
	want := singleHunt(t, huntJob().Hunt)
	for _, n := range []int{1, 2, 4} {
		rep := coordinate(t, huntJob(), n, nil)
		got, _ := json.Marshal(rep.Hunt)
		if !bytes.Equal(got, want) {
			t.Errorf("%d workers: merged hunt report diverged\ngot:  %s\nwant: %s", n, got, want)
		}
	}
}

// TestDistFuzzByteIdentical: distributed fuzzing reproduces the local
// report and corpus bytes at every worker count.
func TestDistFuzzByteIdentical(t *testing.T) {
	wantRep, wantCorpus := singleFuzz(t, fuzzJob().Fuzz)
	for _, n := range []int{1, 2, 4} {
		rep := coordinate(t, fuzzJob(), n, nil)
		gotRep, _ := json.Marshal(rep.Fuzz)
		gotCorpus, _ := json.Marshal(rep.Corpus)
		if !bytes.Equal(gotRep, wantRep) {
			t.Errorf("%d workers: fuzz report diverged\ngot:  %s\nwant: %s", n, gotRep, wantRep)
		}
		if !bytes.Equal(gotCorpus, wantCorpus) {
			t.Errorf("%d workers: fuzz corpus diverged from the local run's", n)
		}
	}
}

// TestDistMatrixByteIdentical: the assembled grid matches matrix.Run.
func TestDistMatrixByteIdentical(t *testing.T) {
	j := matrixJob().Matrix
	specs := make([]catalog.Spec, len(j.Protocols))
	for i, id := range j.Protocols {
		s, err := catalog.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		specs[i] = s
	}
	named := make([]adversary.Named, len(j.Strategies))
	for i, id := range j.Strategies {
		strat, ok := adversary.FromLibrary(id, j.Bias)
		if !ok {
			t.Fatalf("unknown strategy %q", id)
		}
		named[i] = adversary.Named{ID: id, Strategy: strat}
	}
	m := &matrix.Matrix{
		Protocols:     specs,
		Strategies:    named,
		Sizes:         j.Sizes,
		Seeds:         j.Seeds,
		MaxViolations: j.MaxViolations,
	}
	grid, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(grid)
	for _, n := range []int{1, 4} {
		rep := coordinate(t, matrixJob(), n, nil)
		got, _ := json.Marshal(rep.Grid)
		if !bytes.Equal(got, want) {
			t.Errorf("%d workers: grid diverged\ngot:  %s\nwant: %s", n, got, want)
		}
	}
}

// TestDistHuntKillResume kills the coordinator after three units (the
// checkpoint survives), resumes from the checkpoint, and requires the
// final report byte-identical to an uninterrupted run.
func TestDistHuntKillResume(t *testing.T) {
	want := singleHunt(t, huntJob().Hunt)
	path := filepath.Join(t.TempDir(), "checkpoint.json")

	c1 := &Coordinator{Job: huntJob(), LocalWorkers: 2, WorkerParallelism: 2, CheckpointPath: path, stopAfterUnits: 3}
	if _, err := c1.Run(); !errors.Is(err, ErrStopped) {
		t.Fatalf("stop hook: got %v, want ErrStopped", err)
	}

	c2 := &Coordinator{Job: huntJob(), LocalWorkers: 2, WorkerParallelism: 2, CheckpointPath: path}
	rep, err := c2.Run()
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if !rep.Resumed {
		t.Error("resumed run did not load the checkpoint")
	}
	got, _ := json.Marshal(rep.Hunt)
	if !bytes.Equal(got, want) {
		t.Errorf("resumed hunt report diverged\ngot:  %s\nwant: %s", got, want)
	}
}

// TestDistFuzzKillResume: same contract for fuzzing — the corpus and
// report survive a mid-campaign kill byte-for-byte.
func TestDistFuzzKillResume(t *testing.T) {
	wantRep, wantCorpus := singleFuzz(t, fuzzJob().Fuzz)
	path := filepath.Join(t.TempDir(), "checkpoint.json")

	c1 := &Coordinator{Job: fuzzJob(), LocalWorkers: 2, WorkerParallelism: 2, CheckpointPath: path, stopAfterUnits: 2}
	if _, err := c1.Run(); !errors.Is(err, ErrStopped) {
		t.Fatalf("stop hook: got %v, want ErrStopped", err)
	}

	c2 := &Coordinator{Job: fuzzJob(), LocalWorkers: 2, WorkerParallelism: 2, CheckpointPath: path}
	rep, err := c2.Run()
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if !rep.Resumed {
		t.Error("resumed run did not load the checkpoint")
	}
	gotRep, _ := json.Marshal(rep.Fuzz)
	gotCorpus, _ := json.Marshal(rep.Corpus)
	if !bytes.Equal(gotRep, wantRep) {
		t.Errorf("resumed fuzz report diverged\ngot:  %s\nwant: %s", gotRep, wantRep)
	}
	if !bytes.Equal(gotCorpus, wantCorpus) {
		t.Error("resumed fuzz corpus diverged from the uninterrupted run's")
	}
}

// TestDistReassignsDeadWorkerUnits connects a worker that accepts a unit
// and then goes silent: the coordinator must declare it dead after the
// heartbeat timeout, reassign its unit to the healthy worker, and still
// produce the byte-identical report.
func TestDistReassignsDeadWorkerUnits(t *testing.T) {
	want := singleHunt(t, huntJob().Hunt)
	c := &Coordinator{Job: huntJob(), LocalWorkers: 1, WorkerParallelism: 2, HeartbeatTimeout: 300 * time.Millisecond}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}

	// The stalled worker: a valid hello, then silence. It joins before
	// any local worker exists, so the first unit lands on it.
	stalled, err := Dial(c.ListenAddr(), 3, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer stalled.Close()
	if err := stalled.Send(&Message{Kind: MsgHello, Hello: &Hello{Version: ProtocolVersion, Name: "stalled"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := stalled.Recv(5 * time.Second); err != nil { // the job
		t.Fatal(err)
	}

	rep, err := c.Run()
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	if rep.Reassigned < 1 {
		t.Errorf("no unit was reassigned (reassigned=%d, workers=%d)", rep.Reassigned, rep.Workers)
	}
	got, _ := json.Marshal(rep.Hunt)
	if !bytes.Equal(got, want) {
		t.Errorf("report diverged after reassignment\ngot:  %s\nwant: %s", got, want)
	}
}

// TestDistJobValidation rejects malformed jobs before any socket work.
func TestDistJobValidation(t *testing.T) {
	bad := []*Job{
		nil,
		{},
		{Kind: "hunt"},
		{Kind: "fuzz", Hunt: huntJob().Hunt},
		{Kind: "hunt", Hunt: &HuntJob{Protocol: "no-such-protocol", Strategy: "chaos", N: 4, T: 1, Seeds: adversary.SeedRange{From: 0, To: 8}}},
		{Kind: "hunt", Hunt: &HuntJob{Protocol: "floodset", Strategy: "no-such-strategy", N: 4, T: 1, Seeds: adversary.SeedRange{From: 0, To: 8}}},
		{Kind: "hunt", Hunt: &HuntJob{Protocol: "floodset", Strategy: "chaos", N: 4, T: 1, Seeds: adversary.SeedRange{From: 8, To: 8}}},
		{Kind: "fuzz", Fuzz: &FuzzJob{Protocol: "floodset", SeedStrategy: "chaos", N: 4, T: 3}},
		{Kind: "matrix", Matrix: &MatrixJob{}},
	}
	for i, j := range bad {
		if err := j.validate(); err == nil {
			t.Errorf("job %d validated; want error", i)
		}
	}
	good := huntJob()
	good.normalize()
	if err := good.validate(); err != nil {
		t.Errorf("good job rejected: %v", err)
	}
}
