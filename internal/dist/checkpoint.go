package dist

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"expensive/internal/adversary/fuzz"
)

// checkpointVersion gates checkpoint compatibility.
const checkpointVersion = 1

// Checkpoint is the coordinator's persisted progress: the job (for
// identity checking on resume), the completed units of a hunt or matrix
// campaign, and the fuzz session state (which subsumes the merged corpus
// and the report-so-far). It marshals deterministically — encoding/json
// sorts the unit-map keys.
type Checkpoint struct {
	Version int  `json:"version"`
	Job     *Job `json:"job"`
	// Units holds the completed units by ID (hunt and matrix kinds).
	Units map[int]*Result `json:"units,omitempty"`
	// Fuzz is the session snapshot after the last folded generation.
	Fuzz *fuzz.SessionState `json:"fuzz,omitempty"`
}

// jobIdentity is the job's resume-identity encoding: the campaign
// definition with the purely operational knobs (heartbeat cadence,
// telemetry forwarding) zeroed, so changing them does not orphan a
// checkpoint.
func jobIdentity(j *Job) ([]byte, error) {
	cp := *j
	cp.HeartbeatMS = 0
	cp.WantEvents = false
	return json.Marshal(&cp)
}

// saveCheckpoint writes the checkpoint atomically: marshal, write to a
// temp file in the same directory, rename over the target. A coordinator
// killed mid-save leaves the previous checkpoint intact.
func saveCheckpoint(path string, cp *Checkpoint) error {
	body, err := json.MarshalIndent(cp, "", "  ")
	if err != nil {
		return fmt.Errorf("dist: marshal checkpoint: %w", err)
	}
	body = append(body, '\n')
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".checkpoint-*.json")
	if err != nil {
		return fmt.Errorf("dist: checkpoint temp file: %w", err)
	}
	if _, err := tmp.Write(body); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("dist: write checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("dist: close checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("dist: install checkpoint: %w", err)
	}
	return nil
}

// loadCheckpoint reads a checkpoint and verifies it belongs to job. A
// missing file is a fresh start (nil, nil); a version or job mismatch is
// an error — resuming a different campaign's checkpoint would silently
// corrupt the report.
func loadCheckpoint(path string, job *Job) (*Checkpoint, error) {
	body, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("dist: read checkpoint: %w", err)
	}
	var cp Checkpoint
	if err := json.Unmarshal(body, &cp); err != nil {
		return nil, fmt.Errorf("dist: decode checkpoint %s: %w", path, err)
	}
	if cp.Version != checkpointVersion {
		return nil, fmt.Errorf("dist: checkpoint %s has version %d, want %d", path, cp.Version, checkpointVersion)
	}
	if cp.Job == nil {
		return nil, fmt.Errorf("dist: checkpoint %s carries no job", path)
	}
	want, err := jobIdentity(job)
	if err != nil {
		return nil, err
	}
	have, err := jobIdentity(cp.Job)
	if err != nil {
		return nil, err
	}
	if !bytes.Equal(want, have) {
		return nil, fmt.Errorf("dist: checkpoint %s belongs to a different job; refusing to resume", path)
	}
	return &cp, nil
}
