package dist

import (
	"fmt"

	"expensive/internal/adversary"
	"expensive/internal/adversary/fuzz"
	"expensive/internal/catalog/matrix"
)

// Unit is one work assignment. Exactly one of Seeds, Cell, Batch is set,
// matching the job kind. Unit IDs are dense and ascending; for hunt and
// matrix they enumerate the whole campaign up front, for fuzz they grow
// generation by generation.
type Unit struct {
	ID int `json:"id"`
	// Seeds is a hunt sub-range (a contiguous slice of the job's range).
	Seeds *adversary.SeedRange `json:"seeds,omitempty"`
	// Cell is a matrix cell reference.
	Cell *CellRef `json:"cell,omitempty"`
	// Batch is a fuzz probe batch.
	Batch *FuzzBatch `json:"batch,omitempty"`
}

// CellRef addresses one matrix cell by index into the MatrixJob's
// ordered Protocols/Strategies/Sizes headers.
type CellRef struct {
	Protocol int `json:"protocol"`
	Strategy int `json:"strategy"`
	Size     int `json:"size"`
}

// FuzzBatch is a contiguous slice [Start, Start+Count) of one fuzz
// generation's probes. For the seeding generation (Seed true) probe
// Start+i is the seed strategy's (Start+i)-th plan; otherwise probe i of
// the batch executes Candidates[i].
type FuzzBatch struct {
	Gen        int              `json:"gen"`
	Seed       bool             `json:"seed,omitempty"`
	Start      int              `json:"start"`
	Count      int              `json:"count"`
	Candidates []fuzz.Candidate `json:"candidates,omitempty"`
}

// Result is one completed unit, shipped back from a worker. Probes
// counts executed probes (for progress accounting); the payload field
// matches the unit kind.
type Result struct {
	Unit   int                       `json:"unit"`
	Probes int                       `json:"probes"`
	Hunt   *adversary.CampaignReport `json:"hunt,omitempty"`
	Cell   *matrix.Cell              `json:"cell,omitempty"`
	Fuzz   []fuzz.Outcome            `json:"fuzz,omitempty"`
}

// huntUnits cuts the hunt's seed range into the job's fixed unit count —
// contiguous, ascending, worker-count-independent.
func huntUnits(j *HuntJob) []*Unit {
	parts := j.Seeds.Split(j.Units)
	units := make([]*Unit, len(parts))
	for i := range parts {
		r := parts[i]
		units[i] = &Unit{ID: i, Seeds: &r}
	}
	return units
}

// matrixUnits enumerates one unit per cell in matrix.CellIndex order —
// the exact order matrix.Run probes and Grid.Cells lists them.
func matrixUnits(j *MatrixJob) []*Unit {
	n := len(j.Protocols) * len(j.Strategies) * len(j.Sizes)
	units := make([]*Unit, n)
	for i := 0; i < n; i++ {
		pi, si, zi := matrix.CellIndex(i, len(j.Strategies), len(j.Sizes))
		units[i] = &Unit{ID: i, Cell: &CellRef{Protocol: pi, Strategy: si, Size: zi}}
	}
	return units
}

// batchUnits cuts one fuzz generation into batches of at most size
// probes. IDs continue from *nextID (advanced in place) so fuzz unit IDs
// stay globally unique across generations.
func batchUnits(g *fuzz.Generation, size int, nextID *int) []*Unit {
	var units []*Unit
	for start := 0; start < g.Count; start += size {
		count := min(size, g.Count-start)
		b := &FuzzBatch{Gen: g.Gen, Seed: g.Seed, Start: start, Count: count}
		if !g.Seed {
			b.Candidates = g.Candidates[start : start+count]
		}
		units = append(units, &Unit{ID: *nextID, Batch: b})
		*nextID++
	}
	return units
}

// mergeHunt folds per-unit campaign sub-reports (unit order = ascending
// seed order) into the report a single-process campaign over the full
// range produces. The merge works because sub-campaigns record up to the
// same MaxViolations cap the merged report enforces: the global first-K
// violations are a prefix-selection of the concatenated per-unit
// first-K lists, first-violation indices shift by the probe count of the
// preceding units, and exact-value histograms merge losslessly.
// Shrinking is the caller's job (it runs once, on the merged report).
//
// quarantined marks units abandoned after exhausting their retry budget:
// their nil results are skipped instead of erred on, degrading the report
// (those probes are simply missing, and Report.Quarantined says so)
// rather than failing the whole campaign.
func mergeHunt(c *adversary.Campaign, results []*Result, quarantined map[int]bool) (*adversary.CampaignReport, error) {
	env := c.RecheckOptions()
	report := &adversary.CampaignReport{
		Protocol: c.Protocol,
		Strategy: c.Strategy.Name,
		N:        c.N,
		T:        c.T,
		Rounds:   c.Rounds,
		Horizon:  env.Horizon,
		Seeds:    c.Seeds,
	}
	for i, r := range results {
		if r == nil || r.Hunt == nil {
			if quarantined[i] {
				continue // abandoned unit: its seeds go unprobed, reported via Quarantined
			}
			return nil, fmt.Errorf("dist: merge: missing hunt result for unit %d", i)
		}
		sub := r.Hunt
		if report.FirstViolationProbe == 0 && sub.FirstViolationProbe > 0 {
			report.FirstViolationProbe = report.Probes + sub.FirstViolationProbe
		}
		report.ViolationCount += sub.ViolationCount
		report.Violations = append(report.Violations, sub.Violations...)
		report.Probes += sub.Probes
		report.Messages = report.Messages.Merge(sub.Messages)
		report.RoundsHist = report.RoundsHist.Merge(sub.RoundsHist)
	}
	if c.MaxViolations > 0 && len(report.Violations) > c.MaxViolations {
		report.Violations = report.Violations[:c.MaxViolations]
	}
	return report, nil
}
