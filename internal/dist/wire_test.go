package dist

import (
	"encoding/binary"
	"net"
	"strings"
	"testing"
	"time"
)

// pipeConns returns both ends of an in-memory connection wrapped as wire
// Conns.
func pipeConns() (*Conn, *Conn) {
	a, b := net.Pipe()
	return NewConn(a), NewConn(b)
}

func TestWireRoundTrip(t *testing.T) {
	a, b := pipeConns()
	defer a.Close()
	defer b.Close()

	sent := &Message{Kind: MsgJob, Job: huntJob()}
	errc := make(chan error, 1)
	go func() { errc <- a.Send(sent) }()
	got, err := b.Recv(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if got.Kind != MsgJob || got.Job == nil || got.Job.Hunt == nil {
		t.Fatalf("round trip dropped payload: %+v", got)
	}
	if got.Job.Hunt.Protocol != "floodset" || got.Job.Hunt.Seeds.To != 64 {
		t.Errorf("job fields corrupted in transit: %+v", got.Job.Hunt)
	}
}

func TestWireRecvTimeout(t *testing.T) {
	a, b := pipeConns()
	defer a.Close()
	defer b.Close()

	start := time.Now()
	if _, err := b.Recv(50 * time.Millisecond); err == nil {
		t.Fatal("Recv on a silent connection returned without error")
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("Recv took %v; the deadline did not bound it", d)
	}
	_ = a
}

// TestWireOversizeFrame: a peer announcing a frame beyond maxFrame is
// rejected before any allocation of that size.
func TestWireOversizeFrame(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	conn := NewConn(b)
	defer conn.Close()

	var prefix [4]byte
	binary.BigEndian.PutUint32(prefix[:], uint32(maxFrame+1))
	go a.Write(prefix[:])
	_, err := conn.Recv(time.Second)
	if err == nil || !strings.Contains(err.Error(), "frame") {
		t.Fatalf("oversize frame not rejected: %v", err)
	}
}
