package dist

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"expensive/internal/obs"
	"expensive/internal/transport"
)

// schedEvent is one occurrence posted by the accept/reader goroutines
// into the scheduler's single-threaded core: a worker joined, returned a
// result, reported a unit-level failure, or died.
type schedEvent struct {
	w      *remoteWorker
	join   bool
	result *Result
	failed *UnitFailed
	fail   error
}

// remoteWorker is the coordinator's view of one connected worker. All
// fields past the connection are owned by the scheduler goroutine (the
// one running execute) — readers only post events.
type remoteWorker struct {
	id   int
	name string
	conn *Conn

	unit       *Unit     // in-flight unit, nil when idle
	assignedAt time.Time // when the in-flight unit was handed out
	dead       bool
}

// scheduler multiplexes work units over the live worker population. Its
// core is deliberately single-threaded: execute owns all worker state
// and consumes a single event channel, so assignment, reassignment and
// result folding never race — determinism comes from folding in unit
// order, not from scheduling order.
//
// Graceful degradation is layered on the same core. A unit whose worker
// dies, reports a failure, or exceeds the unit deadline is requeued at
// the front; each requeue spends from the unit's retry budget, and a unit
// that exhausts it is quarantined — marked done without a result and
// reported, so one poisoned unit can never hang the campaign or starve
// the healthy ones. Quarantine is final: a late result for a quarantined
// unit is dropped like any other duplicate, which keeps the fold
// deterministic (whether the straggler's bytes arrive is a race; whether
// they are used must not be).
type scheduler struct {
	ctx          context.Context
	job          *Job
	hbTimeout    time.Duration
	unitDeadline time.Duration
	retryBudget  int
	sink         *obs.Sink
	quarantinedC *obs.Counter
	straggledC   *obs.Counter

	events    chan schedEvent
	closed    chan struct{}
	drainCh   chan struct{}
	once      sync.Once
	drainOnce sync.Once
	draining  bool

	// workers is every worker that ever joined, in join order; dead ones
	// stay (slots keep history, and slices keep map iteration out of the
	// fold path).
	workers    []*remoteWorker
	nextID     int
	reassigned int

	// attempts counts requeues per unit ID; quarantined lists the units
	// abandoned after exhausting the retry budget, in quarantine order;
	// lastWorker remembers each unit's most recent assignee so a requeued
	// unit prefers a different worker — without it, a live-but-slow
	// straggler at the head of the worker list would win every
	// reassignment of the unit it just lost and ping-pong it forever.
	attempts    map[int]int
	quarantined []int
	lastWorker  map[int]int
}

func newScheduler(ctx context.Context, job *Job, hbTimeout, unitDeadline time.Duration, retryBudget int) *scheduler {
	rec := obs.From(ctx)
	return &scheduler{
		ctx:          ctx,
		job:          job,
		hbTimeout:    hbTimeout,
		unitDeadline: unitDeadline,
		retryBudget:  retryBudget,
		sink:         rec.Sink(),
		quarantinedC: rec.Counter("dist_units_quarantined"),
		straggledC:   rec.Counter("dist_units_straggled"),
		events:       make(chan schedEvent, 256),
		closed:       make(chan struct{}),
		drainCh:      make(chan struct{}),
		attempts:     make(map[int]int),
		lastWorker:   make(map[int]int),
	}
}

// log emits a coordinator trace event when telemetry is on.
func (s *scheduler) log(name string, kv ...any) {
	if s.sink != nil {
		s.sink.Emit(name, kv...)
	}
}

// post delivers an event unless the scheduler has shut down.
func (s *scheduler) post(ev schedEvent) {
	select {
	case s.events <- ev:
	case <-s.closed:
	}
}

// requestDrain asks the scheduler to stop assigning new units, fold the
// in-flight ones, and return ErrDrained. Safe from any goroutine.
func (s *scheduler) requestDrain() {
	s.drainOnce.Do(func() { close(s.drainCh) })
}

// acceptLoop admits workers until the listener closes.
func (s *scheduler) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go s.handshake(NewConn(conn))
	}
}

// handshake validates a new worker, ships it the job, and starts its
// reader. Runs on its own goroutine so a stalled dialer cannot block
// admission of others.
func (s *scheduler) handshake(conn *Conn) {
	m, err := conn.Recv(s.hbTimeout)
	if err != nil || m.Kind != MsgHello || m.Hello == nil {
		_ = conn.Close()
		return
	}
	if m.Hello.Version != ProtocolVersion {
		_ = conn.Send(&Message{Kind: MsgError, Error: fmt.Sprintf("protocol version %d, want %d", m.Hello.Version, ProtocolVersion)})
		_ = conn.Close()
		return
	}
	if err := conn.Send(&Message{Kind: MsgJob, Job: s.job}); err != nil {
		_ = conn.Close()
		return
	}
	w := &remoteWorker{name: m.Hello.Name, conn: conn}
	s.post(schedEvent{w: w, join: true})
	go s.reader(w)
}

// reader drains one worker's connection. Every Recv is bounded by the
// heartbeat timeout, so a worker that goes silent — crashed, wedged, or
// partitioned — surfaces as a fail event and its unit gets reassigned.
// Failures are classified through the transport sentinels so the death
// cause in logs distinguishes a stall from a teardown.
func (s *scheduler) reader(w *remoteWorker) {
	for {
		m, err := w.conn.Recv(s.hbTimeout)
		if err != nil {
			switch {
			case errors.Is(err, transport.ErrTimeout):
				err = fmt.Errorf("dist: worker %s: heartbeat timeout: %w", w.name, err)
			case errors.Is(err, transport.ErrClosed):
				err = fmt.Errorf("dist: worker %s: connection closed: %w", w.name, err)
			default:
				err = fmt.Errorf("dist: worker %s: %w", w.name, err)
			}
			s.post(schedEvent{w: w, fail: err})
			return
		}
		switch m.Kind {
		case MsgHeartbeat:
			// Liveness only; the bounded Recv above is the detector.
		case MsgResult:
			if m.Result != nil {
				s.post(schedEvent{w: w, result: m.Result})
			}
		case MsgUnitFailed:
			if m.Failed != nil {
				s.post(schedEvent{w: w, failed: m.Failed})
			}
		case MsgEvent:
			// Forwarded worker telemetry: re-emitted under the worker's
			// name, with the original event carried verbatim.
			s.log("worker-event", "worker", w.name, "event", m.Event)
		case MsgError:
			s.post(schedEvent{w: w, fail: fmt.Errorf("dist: worker %s: %s", w.name, m.Error)})
			return
		}
	}
}

// execute distributes units over the worker population and invokes
// onResult once per completed unit, in completion order. It returns when
// every unit has a result or is quarantined, the context is cancelled,
// drain finishes, or onResult errs. Workers may join at any time; lost
// units requeue at the front of the queue through requeue, which charges
// the retry budget. Duplicate results (a slow worker racing its own
// death sentence or a straggle reassignment) are dropped — first result
// wins, and since results are deterministic, which copy wins is
// unobservable.
func (s *scheduler) execute(pending []*Unit, onResult func(*Result) error) error {
	if len(pending) == 0 {
		return nil
	}
	queue := make([]*Unit, len(pending))
	copy(queue, pending)
	done := make(map[int]bool, len(pending))
	outstanding := len(pending)

	// The straggler detector: with a unit deadline configured, a ticker
	// sweeps the in-flight assignments. This is the only timer on the
	// scheduling path — heartbeat timeouts live in the readers.
	var tick <-chan time.Time
	if s.unitDeadline > 0 {
		t := time.NewTicker(s.unitDeadline / 4)
		defer t.Stop()
		tick = t.C
	}
	drainCh := s.drainCh

	for outstanding > 0 {
		if s.draining && s.inFlight() == 0 {
			return ErrDrained
		}
		if !s.draining {
			// Hand queued units to idle live workers.
			for len(queue) > 0 {
				u := queue[0]
				w := s.idleFor(u)
				if w == nil {
					break
				}
				queue = queue[1:]
				w.unit = u
				w.assignedAt = time.Now()
				s.lastWorker[u.ID] = w.id
				if err := w.conn.Send(&Message{Kind: MsgUnit, Unit: u}); err != nil {
					queue, outstanding = s.drop(w, queue, outstanding, done, err)
				}
			}
		}
		select {
		case ev := <-s.events:
			switch {
			case ev.join:
				ev.w.id = s.nextID
				s.nextID++
				s.workers = append(s.workers, ev.w)
				s.log("worker-join", "worker", ev.w.name, "id", ev.w.id)
			case ev.result != nil:
				if !ev.w.dead && ev.w.unit != nil && ev.w.unit.ID == ev.result.Unit {
					ev.w.unit = nil
				}
				if done[ev.result.Unit] {
					continue // duplicate, or late result for a quarantined unit
				}
				done[ev.result.Unit] = true
				outstanding--
				if err := onResult(ev.result); err != nil {
					return err
				}
			case ev.failed != nil:
				// Unit-level failure: the worker stays alive and idle; only
				// the unit is charged.
				var u *Unit
				if !ev.w.dead && ev.w.unit != nil && ev.w.unit.ID == ev.failed.Unit {
					u = ev.w.unit
					ev.w.unit = nil
				}
				if u == nil || done[u.ID] {
					continue // stale failure for an already reassigned unit
				}
				queue, outstanding = s.requeue(u, queue, outstanding, done,
					fmt.Errorf("dist: worker %s: unit %d: %s", ev.w.name, ev.failed.Unit, ev.failed.Error))
			case ev.fail != nil:
				queue, outstanding = s.drop(ev.w, queue, outstanding, done, ev.fail)
			}
		case <-tick:
			queue, outstanding = s.stragglers(queue, outstanding, done)
		case <-drainCh:
			s.draining = true
			drainCh = nil
			s.log("drain-requested", "in_flight", s.inFlight(), "queued", len(queue))
		case <-s.ctx.Done():
			return s.ctx.Err()
		}
	}
	return nil
}

// idleFor returns a live idle worker for a unit, preferring one that is
// not the unit's previous assignee; when the previous assignee is the
// only idle worker it is still used (a lone worker must make progress).
func (s *scheduler) idleFor(u *Unit) *remoteWorker {
	last, reassigned := s.lastWorker[u.ID]
	var fallback *remoteWorker
	for _, w := range s.workers {
		if w.dead || w.unit != nil {
			continue
		}
		if reassigned && w.id == last {
			if fallback == nil {
				fallback = w
			}
			continue
		}
		return w
	}
	return fallback
}

// inFlight counts live workers with an assigned unit.
func (s *scheduler) inFlight() int {
	n := 0
	for _, w := range s.workers {
		if !w.dead && w.unit != nil {
			n++
		}
	}
	return n
}

// stragglers reassigns units whose workers have held them past the unit
// deadline. The worker is NOT declared dead — a straggler may be slow,
// not gone, and heartbeats are the liveness channel — it just loses the
// assignment and becomes idle again; its eventual result is deduped.
func (s *scheduler) stragglers(queue []*Unit, outstanding int, done map[int]bool) ([]*Unit, int) {
	now := time.Now()
	for _, w := range s.workers {
		if w.dead || w.unit == nil || now.Sub(w.assignedAt) < s.unitDeadline {
			continue
		}
		u := w.unit
		w.unit = nil
		s.straggledC.Inc()
		s.log("unit-straggled", "unit", u.ID, "worker", w.name)
		queue, outstanding = s.requeue(u, queue, outstanding, done,
			fmt.Errorf("dist: unit %d exceeded deadline %v on worker %s", u.ID, s.unitDeadline, w.name))
	}
	return queue, outstanding
}

// requeue puts a lost unit back at the front of the queue (front, not
// back: the lost unit is the oldest outstanding work, and resuming it
// first keeps fold latency bounded) — unless its retry budget is spent,
// in which case the unit is quarantined: counted done without a result,
// reported, and never retried, so the campaign completes around it.
func (s *scheduler) requeue(u *Unit, queue []*Unit, outstanding int, done map[int]bool, cause error) ([]*Unit, int) {
	if u == nil || done[u.ID] {
		return queue, outstanding
	}
	s.attempts[u.ID]++
	if s.retryBudget > 0 && s.attempts[u.ID] > s.retryBudget {
		done[u.ID] = true
		s.quarantined = append(s.quarantined, u.ID)
		s.quarantinedC.Inc()
		s.log("unit-quarantined", "unit", u.ID, "attempts", s.attempts[u.ID], "cause", cause.Error())
		return queue, outstanding - 1
	}
	s.reassigned++
	s.log("unit-reassigned", "unit", u.ID, "attempt", s.attempts[u.ID], "cause", cause.Error())
	return append([]*Unit{u}, queue...), outstanding
}

// quarantineSet returns the quarantined unit IDs as a membership map for
// the merge paths. Safe only after execute returns.
func (s *scheduler) quarantineSet() map[int]bool {
	set := make(map[int]bool, len(s.quarantined))
	for _, id := range s.quarantined {
		set[id] = true
	}
	return set
}

// drop declares a worker dead and requeues its in-flight unit.
func (s *scheduler) drop(w *remoteWorker, queue []*Unit, outstanding int, done map[int]bool, cause error) ([]*Unit, int) {
	if w.dead {
		return queue, outstanding
	}
	w.dead = true
	_ = w.conn.Close()
	s.log("worker-dead", "worker", w.name, "cause", cause.Error())
	if u := w.unit; u != nil {
		w.unit = nil
		return s.requeue(u, queue, outstanding, done, cause)
	}
	return queue, outstanding
}

// shutdown sends done to every live worker and stops event delivery.
func (s *scheduler) shutdown() {
	s.once.Do(func() {
		close(s.closed)
		for _, w := range s.workers {
			if !w.dead {
				_ = w.conn.Send(&Message{Kind: MsgDone})
				_ = w.conn.Close()
			}
		}
	})
}
