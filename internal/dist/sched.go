package dist

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"expensive/internal/obs"
)

// schedEvent is one occurrence posted by the accept/reader goroutines
// into the scheduler's single-threaded core: a worker joined, returned a
// result, or failed.
type schedEvent struct {
	w      *remoteWorker
	join   bool
	result *Result
	fail   error
}

// remoteWorker is the coordinator's view of one connected worker. All
// fields past the connection are owned by the scheduler goroutine (the
// one running execute) — readers only post events.
type remoteWorker struct {
	id   int
	name string
	conn *Conn

	unit *Unit // in-flight unit, nil when idle
	dead bool
}

// scheduler multiplexes work units over the live worker population. Its
// core is deliberately single-threaded: execute owns all worker state
// and consumes a single event channel, so assignment, reassignment and
// result folding never race — determinism comes from folding in unit
// order, not from scheduling order.
type scheduler struct {
	ctx       context.Context
	job       *Job
	hbTimeout time.Duration
	sink      *obs.Sink

	events chan schedEvent
	closed chan struct{}
	once   sync.Once

	// workers is every worker that ever joined, in join order; dead ones
	// stay (slots keep history, and slices keep map iteration out of the
	// fold path).
	workers    []*remoteWorker
	nextID     int
	reassigned int
}

func newScheduler(ctx context.Context, job *Job, hbTimeout time.Duration) *scheduler {
	return &scheduler{
		ctx:       ctx,
		job:       job,
		hbTimeout: hbTimeout,
		sink:      obs.From(ctx).Sink(),
		events:    make(chan schedEvent, 256),
		closed:    make(chan struct{}),
	}
}

// log emits a coordinator trace event when telemetry is on.
func (s *scheduler) log(name string, kv ...any) {
	if s.sink != nil {
		s.sink.Emit(name, kv...)
	}
}

// post delivers an event unless the scheduler has shut down.
func (s *scheduler) post(ev schedEvent) {
	select {
	case s.events <- ev:
	case <-s.closed:
	}
}

// acceptLoop admits workers until the listener closes.
func (s *scheduler) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go s.handshake(NewConn(conn))
	}
}

// handshake validates a new worker, ships it the job, and starts its
// reader. Runs on its own goroutine so a stalled dialer cannot block
// admission of others.
func (s *scheduler) handshake(conn *Conn) {
	m, err := conn.Recv(s.hbTimeout)
	if err != nil || m.Kind != MsgHello || m.Hello == nil {
		_ = conn.Close()
		return
	}
	if m.Hello.Version != ProtocolVersion {
		_ = conn.Send(&Message{Kind: MsgError, Error: fmt.Sprintf("protocol version %d, want %d", m.Hello.Version, ProtocolVersion)})
		_ = conn.Close()
		return
	}
	if err := conn.Send(&Message{Kind: MsgJob, Job: s.job}); err != nil {
		_ = conn.Close()
		return
	}
	w := &remoteWorker{name: m.Hello.Name, conn: conn}
	s.post(schedEvent{w: w, join: true})
	go s.reader(w)
}

// reader drains one worker's connection. Every Recv is bounded by the
// heartbeat timeout, so a worker that goes silent — crashed, wedged, or
// partitioned — surfaces as a fail event and its unit gets reassigned.
func (s *scheduler) reader(w *remoteWorker) {
	for {
		m, err := w.conn.Recv(s.hbTimeout)
		if err != nil {
			s.post(schedEvent{w: w, fail: fmt.Errorf("dist: worker %s: %w", w.name, err)})
			return
		}
		switch m.Kind {
		case MsgHeartbeat:
			// Liveness only; the bounded Recv above is the detector.
		case MsgResult:
			if m.Result != nil {
				s.post(schedEvent{w: w, result: m.Result})
			}
		case MsgEvent:
			// Forwarded worker telemetry: re-emitted under the worker's
			// name, with the original event carried verbatim.
			s.log("worker-event", "worker", w.name, "event", m.Event)
		case MsgError:
			s.post(schedEvent{w: w, fail: fmt.Errorf("dist: worker %s: %s", w.name, m.Error)})
			return
		}
	}
}

// execute distributes units over the worker population and invokes
// onResult once per unit, in completion order. It returns when every
// unit has a result, the context is cancelled, or onResult errs.
// Workers may join at any time; a worker death requeues its unit at the
// front of the queue. Duplicate results (a slow worker racing its own
// death sentence) are dropped — first result wins, and since results are
// deterministic, which copy wins is unobservable.
func (s *scheduler) execute(pending []*Unit, onResult func(*Result) error) error {
	if len(pending) == 0 {
		return nil
	}
	queue := make([]*Unit, len(pending))
	copy(queue, pending)
	done := make(map[int]bool, len(pending))
	outstanding := len(pending)

	for outstanding > 0 {
		// Hand queued units to idle live workers.
		for len(queue) > 0 {
			w := s.idle()
			if w == nil {
				break
			}
			u := queue[0]
			queue = queue[1:]
			w.unit = u
			if err := w.conn.Send(&Message{Kind: MsgUnit, Unit: u}); err != nil {
				queue = s.drop(w, queue, err)
			}
		}
		select {
		case ev := <-s.events:
			switch {
			case ev.join:
				ev.w.id = s.nextID
				s.nextID++
				s.workers = append(s.workers, ev.w)
				s.log("worker-join", "worker", ev.w.name, "id", ev.w.id)
			case ev.result != nil:
				if !ev.w.dead {
					ev.w.unit = nil
				}
				if done[ev.result.Unit] {
					continue // duplicate after reassignment
				}
				done[ev.result.Unit] = true
				outstanding--
				if err := onResult(ev.result); err != nil {
					return err
				}
			case ev.fail != nil:
				queue = s.drop(ev.w, queue, ev.fail)
			}
		case <-s.ctx.Done():
			return s.ctx.Err()
		}
	}
	return nil
}

// idle returns a live worker without an in-flight unit, nil when all are
// busy or dead.
func (s *scheduler) idle() *remoteWorker {
	for _, w := range s.workers {
		if !w.dead && w.unit == nil {
			return w
		}
	}
	return nil
}

// drop declares a worker dead and requeues its in-flight unit at the
// front of the queue (front, not back: the lost unit is the oldest
// outstanding work, and resuming it first keeps fold latency bounded).
func (s *scheduler) drop(w *remoteWorker, queue []*Unit, cause error) []*Unit {
	if w.dead {
		return queue
	}
	w.dead = true
	_ = w.conn.Close()
	s.log("worker-dead", "worker", w.name, "cause", cause.Error())
	if u := w.unit; u != nil {
		w.unit = nil
		s.reassigned++
		s.log("unit-reassigned", "unit", u.ID)
		return append([]*Unit{u}, queue...)
	}
	return queue
}

// shutdown sends done to every live worker and stops event delivery.
func (s *scheduler) shutdown() {
	s.once.Do(func() {
		close(s.closed)
		for _, w := range s.workers {
			if !w.dead {
				_ = w.conn.Send(&Message{Kind: MsgDone})
				_ = w.conn.Close()
			}
		}
	})
}
