// Package churn kills and restarts worker processes on a deterministic
// schedule — the process-level half of the soak harness (the wire-level
// half is transport/chaosnet). A Harness owns a fleet of worker slots;
// each scheduled event SIGKILLs one slot's process mid-campaign and
// respawns it with a bumped incarnation number, exercising exactly the
// recovery machinery dist claims to have: heartbeat-timeout death
// detection, front-of-queue reassignment, checkpoint/resume, and
// reconnect-with-resume on the worker side.
//
// The schedule is wall-clock driven by necessity — killing a process at
// a fixed virtual time would require controlling the victim's clock —
// so this package, like dist itself, is sanctioned by the wallclock
// analyzer. The determinism claim lives one level down: WHATEVER the
// kill timing does to scheduling, the campaign's report bytes must not
// change, and the soak tests assert exactly that.
package churn

import (
	"context"
	"fmt"
	"os/exec"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"expensive/internal/obs"
)

// Event is one scheduled kill: After the harness starts, the process in
// Slot is SIGKILLed and immediately respawned (incarnation + 1).
type Event struct {
	After time.Duration
	Slot  int
}

// Parse decodes a churn schedule of the form "400ms:0,900ms:1" —
// comma-separated duration:slot pairs, in any order.
func Parse(s string) ([]Event, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var events []Event
	for _, part := range strings.Split(s, ",") {
		d, slot, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, fmt.Errorf("churn: event %q: want duration:slot", part)
		}
		after, err := time.ParseDuration(d)
		if err != nil {
			return nil, fmt.Errorf("churn: event %q: %w", part, err)
		}
		if after < 0 {
			return nil, fmt.Errorf("churn: event %q: negative delay", part)
		}
		n, err := strconv.Atoi(slot)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("churn: event %q: bad slot %q", part, slot)
		}
		events = append(events, Event{After: after, Slot: n})
	}
	return events, nil
}

// Harness runs Workers worker processes and executes a kill/restart
// schedule against them. Zero value is unusable; fill the exported
// fields and call Start.
type Harness struct {
	// Workers is the number of slots (required, > 0).
	Workers int
	// Spawn builds the command for one slot's next incarnation (required).
	// It is called with incarnation 0 at Start and incarnation k+1 after
	// the k-th kill of that slot. The command must be ready to Start —
	// the harness owns Process lifetime from there.
	Spawn func(slot, incarnation int) (*exec.Cmd, error)
	// Schedule lists the kills. Events are executed in After order.
	Schedule []Event
	// Ctx stops the schedule early and carries the obs recorder for the
	// churn_kills / churn_restarts counters; nil means background.
	Ctx context.Context

	mu          sync.Mutex
	procs       []*worker
	kills       int
	restarts    int
	stopped     bool
	stopCh      chan struct{}
	scheduleEnd sync.WaitGroup

	killsC    *obs.Counter
	restartsC *obs.Counter
}

// worker is one slot's current process.
type worker struct {
	cmd         *exec.Cmd
	incarnation int
	waited      chan struct{} // closed once Wait returns (process reaped)
}

// Start spawns every slot at incarnation 0 and launches the schedule.
func (h *Harness) Start() error {
	if h.Workers <= 0 {
		return fmt.Errorf("churn: need at least one worker slot")
	}
	if h.Spawn == nil {
		return fmt.Errorf("churn: Spawn is required")
	}
	for _, ev := range h.Schedule {
		if ev.Slot < 0 || ev.Slot >= h.Workers {
			return fmt.Errorf("churn: event slot %d out of range [0, %d)", ev.Slot, h.Workers)
		}
	}
	rec := obs.From(h.Ctx)
	h.killsC = rec.Counter("churn_kills")
	h.restartsC = rec.Counter("churn_restarts")
	h.stopCh = make(chan struct{})
	h.procs = make([]*worker, h.Workers)
	for slot := 0; slot < h.Workers; slot++ {
		w, err := h.spawn(slot, 0)
		if err != nil {
			h.Stop()
			return err
		}
		h.procs[slot] = w
	}
	h.scheduleEnd.Add(1)
	go h.run()
	return nil
}

// spawn starts one incarnation and its reaper.
func (h *Harness) spawn(slot, incarnation int) (*worker, error) {
	cmd, err := h.Spawn(slot, incarnation)
	if err != nil {
		return nil, fmt.Errorf("churn: spawn slot %d incarnation %d: %w", slot, incarnation, err)
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("churn: start slot %d incarnation %d: %w", slot, incarnation, err)
	}
	w := &worker{cmd: cmd, incarnation: incarnation, waited: make(chan struct{})}
	go func() {
		_ = cmd.Wait()
		close(w.waited)
	}()
	return w, nil
}

// run executes the schedule: sleep to each event's offset, kill, respawn.
func (h *Harness) run() {
	defer h.scheduleEnd.Done()
	events := make([]Event, len(h.Schedule))
	copy(events, h.Schedule)
	sort.SliceStable(events, func(i, j int) bool { return events[i].After < events[j].After })
	var ctxDone <-chan struct{}
	if h.Ctx != nil {
		ctxDone = h.Ctx.Done()
	}
	elapsed := time.Duration(0)
	for _, ev := range events {
		if wait := ev.After - elapsed; wait > 0 {
			t := time.NewTimer(wait)
			select {
			case <-t.C:
			case <-h.stopCh:
				t.Stop()
				return
			case <-ctxDone:
				t.Stop()
				return
			}
			elapsed = ev.After
		}
		h.killAndRespawn(ev.Slot)
	}
}

// killAndRespawn executes one churn event against a slot.
func (h *Harness) killAndRespawn(slot int) {
	h.mu.Lock()
	if h.stopped {
		h.mu.Unlock()
		return
	}
	w := h.procs[slot]
	h.mu.Unlock()
	if w == nil {
		return
	}
	if w.cmd.Process != nil {
		_ = w.cmd.Process.Kill()
	}
	<-w.waited // reap before respawn: at most one live process per slot
	h.killsC.Inc()
	h.mu.Lock()
	h.kills++
	h.mu.Unlock()
	next, err := h.spawn(slot, w.incarnation+1)
	if err != nil {
		return // slot stays down; the campaign sees one fewer worker
	}
	h.restartsC.Inc()
	h.mu.Lock()
	if h.stopped {
		// Stop raced the respawn: do not leak the new process.
		h.mu.Unlock()
		_ = next.cmd.Process.Kill()
		<-next.waited
		return
	}
	h.procs[slot] = next
	h.restarts++
	h.mu.Unlock()
}

// Stop halts the schedule and kills every live worker, reaping them all
// before returning. Idempotent.
func (h *Harness) Stop() {
	h.mu.Lock()
	if h.stopped {
		h.mu.Unlock()
		return
	}
	h.stopped = true
	if h.stopCh != nil {
		close(h.stopCh)
	}
	procs := make([]*worker, len(h.procs))
	copy(procs, h.procs)
	h.mu.Unlock()
	h.scheduleEnd.Wait()
	for _, w := range procs {
		if w == nil {
			continue
		}
		if w.cmd.Process != nil {
			_ = w.cmd.Process.Kill()
		}
		<-w.waited
	}
}

// Kills returns how many scheduled kills completed (kill + respawn).
func (h *Harness) Kills() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.kills
}

// Restarts returns how many respawns succeeded.
func (h *Harness) Restarts() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.restarts
}

// Incarnation returns a slot's current incarnation number.
func (h *Harness) Incarnation(slot int) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	if slot < 0 || slot >= len(h.procs) || h.procs[slot] == nil {
		return -1
	}
	return h.procs[slot].incarnation
}
