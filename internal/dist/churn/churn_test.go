package churn

import (
	"context"
	"os/exec"
	"sync"
	"testing"
	"time"

	"expensive/internal/obs"
)

func TestParse(t *testing.T) {
	events, err := Parse(" 400ms:0, 900ms:1 ")
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{{After: 400 * time.Millisecond, Slot: 0}, {After: 900 * time.Millisecond, Slot: 1}}
	if len(events) != len(want) {
		t.Fatalf("got %v", events)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Errorf("event %d: got %+v, want %+v", i, events[i], want[i])
		}
	}
	if events, err := Parse(""); err != nil || events != nil {
		t.Errorf("empty schedule: got %v, %v", events, err)
	}
	for _, bad := range []string{"400ms", "x:0", "400ms:x", "-1s:0", "400ms:-1"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestHarnessValidates(t *testing.T) {
	spawn := func(slot, inc int) (*exec.Cmd, error) { return exec.Command("sleep", "10"), nil }
	for _, h := range []*Harness{
		{Workers: 0, Spawn: spawn},
		{Workers: 2},
		{Workers: 2, Spawn: spawn, Schedule: []Event{{Slot: 2}}},
	} {
		if err := h.Start(); err == nil {
			h.Stop()
			t.Errorf("harness %+v started", h)
		}
	}
}

func TestKillRestartSchedule(t *testing.T) {
	rec := obs.New()
	ctx := obs.Into(context.Background(), rec)
	var mu sync.Mutex
	spawned := map[int][]int{} // slot -> incarnations seen
	h := &Harness{
		Workers: 2,
		Spawn: func(slot, inc int) (*exec.Cmd, error) {
			mu.Lock()
			spawned[slot] = append(spawned[slot], inc)
			mu.Unlock()
			return exec.Command("sleep", "30"), nil
		},
		Schedule: []Event{
			{After: 30 * time.Millisecond, Slot: 1},
			{After: 90 * time.Millisecond, Slot: 0},
			{After: 60 * time.Millisecond, Slot: 1}, // out of order on purpose
		},
		Ctx: ctx,
	}
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	defer h.Stop()
	deadline := time.Now().Add(10 * time.Second)
	for h.Kills() < 3 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if h.Kills() != 3 || h.Restarts() != 3 {
		t.Fatalf("kills=%d restarts=%d, want 3/3", h.Kills(), h.Restarts())
	}
	if got := h.Incarnation(0); got != 1 {
		t.Errorf("slot 0 incarnation %d, want 1", got)
	}
	if got := h.Incarnation(1); got != 2 {
		t.Errorf("slot 1 incarnation %d, want 2", got)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(spawned[0]) != 2 || len(spawned[1]) != 3 {
		t.Errorf("spawn history %v, want slot0 x2 slot1 x3", spawned)
	}
	for slot, incs := range spawned {
		for i, inc := range incs {
			if inc != i {
				t.Errorf("slot %d spawn %d had incarnation %d", slot, i, inc)
			}
		}
	}
	if rec.Counter("churn_kills").Value() != 3 || rec.Counter("churn_restarts").Value() != 3 {
		t.Errorf("counters kills=%d restarts=%d, want 3/3",
			rec.Counter("churn_kills").Value(), rec.Counter("churn_restarts").Value())
	}
}

func TestStopKillsFleetAndIsIdempotent(t *testing.T) {
	h := &Harness{
		Workers: 3,
		Spawn:   func(slot, inc int) (*exec.Cmd, error) { return exec.Command("sleep", "600"), nil },
		Schedule: []Event{
			{After: time.Hour, Slot: 0}, // never fires; Stop must interrupt it
		},
	}
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		h.Stop()
		h.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Stop hung")
	}
	for slot := 0; slot < 3; slot++ {
		w := h.procs[slot]
		select {
		case <-w.waited:
		default:
			t.Errorf("slot %d process not reaped after Stop", slot)
		}
	}
}

func TestContextCancelStopsSchedule(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	h := &Harness{
		Workers:  1,
		Spawn:    func(slot, inc int) (*exec.Cmd, error) { return exec.Command("sleep", "600"), nil },
		Schedule: []Event{{After: time.Hour, Slot: 0}},
		Ctx:      ctx,
	}
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	cancel()
	done := make(chan struct{})
	go func() { h.scheduleEnd.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("schedule did not exit on context cancel")
	}
	h.Stop()
}
