// Package stress fuzzes the sound protocols with seeded random
// adversaries and checks the agreement-problem invariants plus the
// Appendix-A execution guarantees on every recorded trace. Since the
// adversary subsystem exists, the package is a thin layer of campaign
// configurations: the strategies, trace validation, conformance
// re-execution, and property checks all live in internal/adversary, and
// every probe here replays from its explicit seed.
package stress

import (
	"fmt"
	"testing"

	"expensive/internal/adversary"
	"expensive/internal/crypto/sig"
	"expensive/internal/msg"
	"expensive/internal/proc"
	"expensive/internal/protocols/dolevstrong"
	"expensive/internal/protocols/phaseking"
	"expensive/internal/protocols/weak"
)

const fuzzSeeds = 60

// hunt runs one campaign and fails the test on any violation (the
// campaign itself already fails on invalid traces or non-conformant
// machines, which are harness bugs).
func hunt(t *testing.T, c *adversary.Campaign) *adversary.CampaignReport {
	t.Helper()
	rep, err := c.Run()
	if err != nil {
		t.Fatalf("campaign %s vs %s: %v", c.Strategy.Name, c.Protocol, err)
	}
	for _, v := range rep.Violations {
		t.Errorf("campaign %s vs %s: %v", c.Strategy.Name, c.Protocol, v)
	}
	return rep
}

// binaryStrong is Strong Validity plus the binary-decision domain check.
func binaryStrong(proposals []msg.Value, correct proc.Set, decision msg.Value) error {
	if !msg.IsBit(decision) {
		return fmt.Errorf("non-binary decision %q", decision)
	}
	return adversary.StrongValidity(proposals, correct, decision)
}

func TestPhaseKingUnderRandomByzantine(t *testing.T) {
	n, tf := 9, 2
	factory := phaseking.New(phaseking.Config{N: n, T: tf})
	for _, strategy := range []adversary.Strategy{
		adversary.Chaos(),
		adversary.Equivocate(),
		adversary.TwoFaced(),
	} {
		hunt(t, &adversary.Campaign{
			Protocol: "phase-king",
			Factory:  factory,
			Rounds:   phaseking.RoundBound(tf),
			N:        n,
			T:        tf,
			Strategy: strategy,
			Seeds:    adversary.SeedRange{From: 0, To: fuzzSeeds},
			Validity: binaryStrong,
		})
	}
}

func TestPhaseKingUnderRandomOmissions(t *testing.T) {
	n, tf := 9, 2
	hunt(t, &adversary.Campaign{
		Protocol: "phase-king",
		Factory:  phaseking.New(phaseking.Config{N: n, T: tf}),
		Rounds:   phaseking.RoundBound(tf),
		N:        n,
		T:        tf,
		Strategy: adversary.RandomOmission(40),
		Seeds:    adversary.SeedRange{From: 1000, To: 1000 + fuzzSeeds},
		Validity: binaryStrong,
	})
}

func TestPhaseKingUnderCombinedAdversary(t *testing.T) {
	// The storm the old suite could not express: omissions and Byzantine
	// chatter in one plan, gated and attenuated by the combinators.
	n, tf := 9, 2
	strategy := adversary.Union(
		adversary.Biased(adversary.RandomOmission(60), 70),
		adversary.Chaos(),
	)
	hunt(t, &adversary.Campaign{
		Protocol: "phase-king",
		Factory:  phaseking.New(phaseking.Config{N: n, T: tf}),
		Rounds:   phaseking.RoundBound(tf),
		N:        n,
		T:        tf,
		Strategy: strategy,
		Seeds:    adversary.SeedRange{From: 0, To: fuzzSeeds / 2},
		Validity: binaryStrong,
	})
}

func TestWeakEIGUnderRandomByzantine(t *testing.T) {
	n, tf := 7, 2
	factory, rounds := weak.ViaEIG(n, tf)
	hunt(t, &adversary.Campaign{
		Protocol: "weak-via-eig",
		Factory:  factory,
		Rounds:   rounds,
		N:        n,
		T:        tf,
		Strategy: adversary.Chaos(),
		Seeds:    adversary.SeedRange{From: 2000, To: 2000 + fuzzSeeds/2},
		Validity: adversary.WeakValidity,
	})
}

func TestWeakICUnderRandomByzantine(t *testing.T) {
	n, tf := 6, 2
	factory, rounds := weak.ViaIC(n, tf, sig.NewIdeal("stress-ic"))
	hunt(t, &adversary.Campaign{
		Protocol: "weak-via-ic",
		Factory:  factory,
		Rounds:   rounds,
		N:        n,
		T:        tf,
		Strategy: adversary.Chaos(),
		Seeds:    adversary.SeedRange{From: 3000, To: 3000 + fuzzSeeds/3},
		Validity: adversary.WeakValidity,
	})
}

func TestDolevStrongUnderRandomByzantine(t *testing.T) {
	n, tf := 7, 2
	cfg := dolevstrong.Config{N: n, T: tf, Sender: 0, Scheme: sig.NewIdeal("stress-ds"), Tag: "bb", Default: "⊥"}
	hunt(t, &adversary.Campaign{
		Protocol: "dolev-strong",
		Factory:  dolevstrong.New(cfg),
		Rounds:   dolevstrong.RoundBound(tf),
		N:        n,
		T:        tf,
		Strategy: adversary.Chaos(),
		Seeds:    adversary.SeedRange{From: 4000, To: 4000 + fuzzSeeds},
		Validity: adversary.SenderValidity(0),
	})
}

func TestCampaignsReplayFromSeeds(t *testing.T) {
	// The replayability contract the whole suite rests on: re-running a
	// campaign yields the identical report, probe for probe.
	n, tf := 9, 2
	campaign := func() *adversary.Campaign {
		return &adversary.Campaign{
			Protocol: "phase-king",
			Factory:  phaseking.New(phaseking.Config{N: n, T: tf}),
			Rounds:   phaseking.RoundBound(tf),
			N:        n,
			T:        tf,
			Strategy: adversary.RandomOmission(40),
			Seeds:    adversary.SeedRange{From: 0, To: 10},
		}
	}
	a, err := campaign().Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := campaign().Run()
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(a.Messages) != fmt.Sprint(b.Messages) || fmt.Sprint(a.RoundsHist) != fmt.Sprint(b.RoundsHist) {
		t.Fatalf("replayed campaign differs:\n%v\n%v", a, b)
	}
}
