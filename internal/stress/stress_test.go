// Package stress fuzzes the sound protocols with seeded random
// adversaries — randomized omission patterns and randomized Byzantine
// machines — and checks the agreement-problem invariants plus the
// Appendix-A execution guarantees on every recorded trace. All randomness
// is derived from explicit seeds, so every discovered failure replays.
package stress

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"testing"

	"expensive/internal/crypto/sig"
	"expensive/internal/msg"
	"expensive/internal/omission"
	"expensive/internal/proc"
	"expensive/internal/protocols/dolevstrong"
	"expensive/internal/protocols/phaseking"
	"expensive/internal/protocols/weak"
	"expensive/internal/sim"
)

// coin makes a deterministic pseudo-random boolean decision for a message
// under a seed: the same (seed, message) always lands the same way, which
// keeps fault plans valid deterministic adversaries.
func coin(seed int64, m msg.Message, bias uint32) bool {
	h := fnv.New32a()
	fmt.Fprintf(h, "%d|%d|%d|%d", seed, m.Sender, m.Receiver, m.Round)
	return h.Sum32()%100 < bias
}

// randomOmissionPlan corrupts a random subset of up to t processes and
// drops each of their inbound/outbound messages with the given bias.
func randomOmissionPlan(r *rand.Rand, n, t int, bias uint32) sim.OmissionPlan {
	var faulty proc.Set
	count := 1 + r.Intn(t)
	for faulty.Len() < count {
		faulty = faulty.Add(proc.ID(r.Intn(n)))
	}
	seedSend, seedRecv := r.Int63(), r.Int63()
	return sim.OmissionPlan{
		F:         faulty,
		SendFn:    func(m msg.Message) bool { return coin(seedSend, m, bias) },
		ReceiveFn: func(m msg.Message) bool { return coin(seedRecv, m, bias) },
	}
}

// chaosMachine is a randomized Byzantine process: each round it sends a
// deterministic-pseudo-random payload to a pseudo-random subset of peers.
type chaosMachine struct {
	n     int
	id    proc.ID
	seed  int64
	quiet int // stop after this many rounds to bound the run
}

var _ sim.Machine = (*chaosMachine)(nil)

func (m *chaosMachine) emit(round int) []sim.Outgoing {
	var out []sim.Outgoing
	for p := 0; p < m.n; p++ {
		if proc.ID(p) == m.id {
			continue
		}
		probe := msg.Message{Sender: m.id, Receiver: proc.ID(p), Round: round}
		if !coin(m.seed, probe, 60) {
			continue
		}
		payload := string(msg.Bit(int(m.seed+int64(p)+int64(round)) % 2))
		if coin(m.seed+1, probe, 20) {
			payload = `{"garbage":` // malformed on purpose
		}
		out = append(out, sim.Outgoing{To: proc.ID(p), Payload: payload})
	}
	return out
}

func (m *chaosMachine) Init() []sim.Outgoing { return m.emit(1) }

func (m *chaosMachine) Step(round int, _ []msg.Message) []sim.Outgoing {
	if round >= m.quiet {
		return nil
	}
	return m.emit(round + 1)
}

func (m *chaosMachine) Decision() (msg.Value, bool) { return msg.NoDecision, false }
func (m *chaosMachine) Quiescent() bool             { return false }

func randomByzantinePlan(r *rand.Rand, n, t, horizon int) sim.ByzantinePlan {
	machines := make(map[proc.ID]sim.Machine)
	count := 1 + r.Intn(t)
	for len(machines) < count {
		id := proc.ID(r.Intn(n))
		machines[id] = &chaosMachine{n: n, id: id, seed: r.Int63(), quiet: horizon}
	}
	return sim.ByzantinePlan{Machines: machines}
}

func randomProposals(r *rand.Rand, n int) []msg.Value {
	out := make([]msg.Value, n)
	for i := range out {
		out[i] = msg.Bit(r.Intn(2))
	}
	return out
}

const fuzzRuns = 60

func TestPhaseKingUnderRandomByzantine(t *testing.T) {
	n, tf := 9, 2
	factory := phaseking.New(phaseking.Config{N: n, T: tf})
	rounds := phaseking.RoundBound(tf)
	for seed := int64(0); seed < fuzzRuns; seed++ {
		r := rand.New(rand.NewSource(seed))
		plan := randomByzantinePlan(r, n, tf, rounds+1)
		proposals := randomProposals(r, n)
		cfg := sim.Config{N: n, T: tf, Proposals: proposals, MaxRounds: rounds + 2}
		e, err := sim.Run(cfg, factory, plan)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		correct := e.Correct()
		d, err := e.CommonDecision(correct)
		if err != nil {
			t.Fatalf("seed %d: agreement/termination: %v", seed, err)
		}
		if !msg.IsBit(d) {
			t.Fatalf("seed %d: non-binary decision %q", seed, d)
		}
		// Strong Validity: unanimous correct proposals must win.
		if u, ok := unanimous(proposals, correct); ok && d != u {
			t.Fatalf("seed %d: correct unanimously proposed %q but decided %q", seed, u, d)
		}
	}
}

func TestPhaseKingUnderRandomOmissions(t *testing.T) {
	n, tf := 9, 2
	factory := phaseking.New(phaseking.Config{N: n, T: tf})
	rounds := phaseking.RoundBound(tf)
	for seed := int64(0); seed < fuzzRuns; seed++ {
		r := rand.New(rand.NewSource(1000 + seed))
		plan := randomOmissionPlan(r, n, tf, 40)
		proposals := randomProposals(r, n)
		cfg := sim.Config{N: n, T: tf, Proposals: proposals, MaxRounds: rounds + 2}
		e, err := sim.Run(cfg, factory, plan)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Every engine-produced trace must satisfy the execution model.
		if err := omission.Validate(e); err != nil {
			t.Fatalf("seed %d: invalid trace: %v", seed, err)
		}
		// Honest machines (all of them: omission faults keep machines honest)
		// must conform to the recording.
		if err := sim.Conforms(e, factory, proc.Set{}); err != nil {
			t.Fatalf("seed %d: conformance: %v", seed, err)
		}
		correct := e.Correct()
		d, err := e.CommonDecision(correct)
		if err != nil {
			t.Fatalf("seed %d: agreement/termination: %v", seed, err)
		}
		if u, ok := unanimous(proposals, correct); ok && d != u {
			t.Fatalf("seed %d: validity: unanimous %q, decided %q", seed, u, d)
		}
	}
}

func TestWeakEIGUnderRandomByzantine(t *testing.T) {
	n, tf := 7, 2
	factory, rounds := weak.ViaEIG(n, tf)
	for seed := int64(0); seed < fuzzRuns/2; seed++ {
		r := rand.New(rand.NewSource(2000 + seed))
		plan := randomByzantinePlan(r, n, tf, rounds+1)
		proposals := randomProposals(r, n)
		cfg := sim.Config{N: n, T: tf, Proposals: proposals, MaxRounds: rounds + 2}
		e, err := sim.Run(cfg, factory, plan)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if _, err := e.CommonDecision(e.Correct()); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestWeakICUnderRandomByzantine(t *testing.T) {
	n, tf := 6, 2
	factory, rounds := weak.ViaIC(n, tf, sig.NewIdeal("stress-ic"))
	for seed := int64(0); seed < fuzzRuns/3; seed++ {
		r := rand.New(rand.NewSource(3000 + seed))
		plan := randomByzantinePlan(r, n, tf, rounds+1)
		proposals := randomProposals(r, n)
		cfg := sim.Config{N: n, T: tf, Proposals: proposals, MaxRounds: rounds + 2}
		e, err := sim.Run(cfg, factory, plan)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if _, err := e.CommonDecision(e.Correct()); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestDolevStrongUnderRandomByzantine(t *testing.T) {
	n, tf := 7, 2
	scheme := sig.NewIdeal("stress-ds")
	cfg := dolevstrong.Config{N: n, T: tf, Sender: 0, Scheme: scheme, Tag: "bb", Default: "⊥"}
	factory := dolevstrong.New(cfg)
	rounds := dolevstrong.RoundBound(tf)
	for seed := int64(0); seed < fuzzRuns; seed++ {
		r := rand.New(rand.NewSource(4000 + seed))
		plan := randomByzantinePlan(r, n, tf, rounds+1)
		proposals := randomProposals(r, n)
		sc := sim.Config{N: n, T: tf, Proposals: proposals, MaxRounds: rounds + 2}
		e, err := sim.Run(sc, factory, plan)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		correct := e.Correct()
		d, err := e.CommonDecision(correct)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Sender Validity when the sender stayed correct.
		if correct.Contains(0) && d != proposals[0] {
			t.Fatalf("seed %d: correct sender proposed %q, decided %q", seed, proposals[0], d)
		}
	}
}

func unanimous(proposals []msg.Value, group proc.Set) (msg.Value, bool) {
	members := group.Members()
	if len(members) == 0 {
		return msg.NoDecision, false
	}
	v := proposals[members[0]]
	for _, id := range members[1:] {
		if proposals[id] != v {
			return msg.NoDecision, false
		}
	}
	return v, true
}
