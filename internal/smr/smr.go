// Package smr is the application layer the paper's introduction motivates:
// state machine replication built on repeated Byzantine agreement. Each
// log slot runs one instance of an agreement protocol; replicas feed their
// pending commands as proposals and append the decided command.
//
// The layer is substrate-agnostic: any sim.Factory solving an agreement
// problem (Phase-King, IC+Γ, External-Validity agreement, ...) drives it,
// and slots can execute either in the recording simulator or over the live
// transports. Because every slot is a full agreement instance, the
// replicated log inherits the paper's price tag: Ω(t²) messages per slot,
// no matter which validity property the application picks.
package smr

import (
	"fmt"

	"expensive/internal/msg"
	"expensive/internal/proc"
	"expensive/internal/sim"
)

// Command is an application command (opaque value).
type Command = msg.Value

// Entry is one committed log slot.
type Entry struct {
	Slot    int
	Command Command
	// Messages is the number of messages correct replicas spent on the slot.
	Messages int
	// Rounds is the number of synchronous rounds the slot consumed.
	Rounds int
}

// Config wires a replicated log.
type Config struct {
	N int
	T int
	// Protocol builds one agreement instance; it is invoked once per slot.
	Protocol func(slot int) (sim.Factory, int)
	// Plan optionally injects faults per slot (nil = fault-free).
	Plan func(slot int) sim.FaultPlan
	// NoOp is proposed by replicas with empty queues and committed when a
	// slot decides it; it must be a value the protocol can decide.
	NoOp Command
}

// Log is a deterministic replicated log driven by repeated agreement.
type Log struct {
	cfg     Config
	queues  [][]Command
	entries []Entry
}

// New creates an empty replicated log with one command queue per replica.
func New(cfg Config) (*Log, error) {
	switch {
	case cfg.N < 2 || cfg.T < 0 || cfg.T >= cfg.N:
		return nil, fmt.Errorf("smr: need 0 <= t < n, n >= 2 (n=%d t=%d)", cfg.N, cfg.T)
	case cfg.Protocol == nil:
		return nil, fmt.Errorf("smr: nil protocol constructor")
	}
	return &Log{cfg: cfg, queues: make([][]Command, cfg.N)}, nil
}

// Submit enqueues a command at one replica (as if a client contacted it).
func (l *Log) Submit(replica proc.ID, cmd Command) error {
	if replica < 0 || int(replica) >= l.cfg.N {
		return fmt.Errorf("smr: unknown replica %v", replica)
	}
	l.queues[replica] = append(l.queues[replica], cmd)
	return nil
}

// Entries returns the committed log.
func (l *Log) Entries() []Entry {
	out := make([]Entry, len(l.entries))
	copy(out, l.entries)
	return out
}

// Pending reports the number of commands still queued across replicas.
func (l *Log) Pending() int {
	total := 0
	for _, q := range l.queues {
		total += len(q)
	}
	return total
}

// CommitSlot runs one agreement instance over the replicas' current queue
// heads and appends the decided command. A replica whose queue is empty
// proposes NoOp. The decided command is dequeued wherever it is queued.
func (l *Log) CommitSlot() (Entry, error) {
	slot := len(l.entries)
	factory, rounds := l.cfg.Protocol(slot)
	proposals := make([]msg.Value, l.cfg.N)
	for i := range proposals {
		if len(l.queues[i]) > 0 {
			proposals[i] = l.queues[i][0]
		} else {
			proposals[i] = l.cfg.NoOp
		}
	}
	plan := sim.FaultPlan(sim.NoFaults{})
	if l.cfg.Plan != nil {
		if p := l.cfg.Plan(slot); p != nil {
			plan = p
		}
	}
	cfg := sim.Config{N: l.cfg.N, T: l.cfg.T, Proposals: proposals, MaxRounds: rounds + 2}
	exec, err := sim.Run(cfg, factory, plan)
	if err != nil {
		return Entry{}, fmt.Errorf("smr slot %d: %w", slot, err)
	}
	decision, err := exec.CommonDecision(exec.Correct())
	if err != nil {
		return Entry{}, fmt.Errorf("smr slot %d: %w", slot, err)
	}
	// Dequeue the committed command everywhere it is pending.
	for i := range l.queues {
		for j, cmd := range l.queues[i] {
			if cmd == decision {
				l.queues[i] = append(l.queues[i][:j], l.queues[i][j+1:]...)
				break
			}
		}
	}
	entry := Entry{Slot: slot, Command: decision, Messages: exec.CorrectMessages(), Rounds: exec.Rounds}
	l.entries = append(l.entries, entry)
	return entry, nil
}

// Drain commits slots until no commands are pending or maxSlots is
// reached, returning the committed entries.
func (l *Log) Drain(maxSlots int) ([]Entry, error) {
	var out []Entry
	for len(out) < maxSlots && l.Pending() > 0 {
		e, err := l.CommitSlot()
		if err != nil {
			return out, err
		}
		out = append(out, e)
	}
	return out, nil
}
