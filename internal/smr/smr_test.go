package smr_test

import (
	"testing"

	"expensive/internal/crypto/sig"
	"expensive/internal/msg"
	"expensive/internal/proc"
	"expensive/internal/protocols/external"
	"expensive/internal/protocols/ic"
	"expensive/internal/protocols/reduction"
	"expensive/internal/sim"
	"expensive/internal/smr"
)

// agreementProtocol builds a multi-valued agreement instance: IC plus the
// first-nonempty selector, so any proposed command can be committed.
func agreementProtocol(n, t int, scheme sig.Scheme) func(slot int) (sim.Factory, int) {
	return func(slot int) (sim.Factory, int) {
		icf := ic.New(ic.Config{N: n, T: t, Scheme: scheme, Default: "noop"})
		gamma := reduction.GammaFirstValid(func(v msg.Value) bool { return v != "noop" && v != "" }, "noop")
		return reduction.FromIC(icf, gamma), ic.RoundBound(t)
	}
}

func TestLogCommitsSubmittedCommands(t *testing.T) {
	n, tf := 4, 1
	scheme := sig.NewIdeal("smr-test")
	log, err := smr.New(smr.Config{
		N: n, T: tf,
		Protocol: agreementProtocol(n, tf, scheme),
		NoOp:     "noop",
	})
	if err != nil {
		t.Fatal(err)
	}
	cmds := []smr.Command{"cmd-a", "cmd-b", "cmd-c"}
	for i, c := range cmds {
		if err := log.Submit(proc.ID(i%n), c); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := log.Drain(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("committed %d entries, want 3", len(entries))
	}
	committed := make(map[smr.Command]bool)
	for _, e := range entries {
		committed[e.Command] = true
		if e.Messages == 0 {
			t.Errorf("slot %d committed for free — contradicts the paper", e.Slot)
		}
	}
	for _, c := range cmds {
		if !committed[c] {
			t.Errorf("command %q never committed", c)
		}
	}
	if log.Pending() != 0 {
		t.Errorf("%d commands still pending", log.Pending())
	}
}

func TestLogCommitsNoOpWhenIdle(t *testing.T) {
	n, tf := 4, 1
	scheme := sig.NewIdeal("smr-idle")
	log, err := smr.New(smr.Config{N: n, T: tf, Protocol: agreementProtocol(n, tf, scheme), NoOp: "noop"})
	if err != nil {
		t.Fatal(err)
	}
	e, err := log.CommitSlot()
	if err != nil {
		t.Fatal(err)
	}
	if e.Command != "noop" {
		t.Errorf("idle slot committed %q", e.Command)
	}
}

func TestLogSurvivesSilentReplica(t *testing.T) {
	n, tf := 4, 1
	scheme := sig.NewIdeal("smr-byz")
	log, err := smr.New(smr.Config{
		N: n, T: tf,
		Protocol: agreementProtocol(n, tf, scheme),
		Plan: func(slot int) sim.FaultPlan {
			return sim.ByzantinePlan{Machines: map[proc.ID]sim.Machine{3: silent{}}}
		},
		NoOp: "noop",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := log.Submit(0, "important"); err != nil {
		t.Fatal(err)
	}
	entries, err := log.Drain(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Command != "important" {
		t.Fatalf("entries = %+v", entries)
	}
}

type silent struct{}

func (silent) Init() []sim.Outgoing                   { return nil }
func (silent) Step(int, []msg.Message) []sim.Outgoing { return nil }
func (silent) Decision() (msg.Value, bool)            { return msg.NoDecision, false }
func (silent) Quiescent() bool                        { return true }

func TestBlockchainSMR(t *testing.T) {
	// External-Validity agreement as the slot protocol: only client-signed
	// transactions commit, even when a replica proposes garbage.
	n, tf := 4, 1
	scheme := sig.NewIdeal("smr-chain")
	auth := external.NewAuthority(scheme)
	genesis, err := auth.NewTx(external.ClientBase, "genesis")
	if err != nil {
		t.Fatal(err)
	}
	factory := external.New(external.Config{N: n, T: tf, Scheme: scheme, Authority: auth, Fallback: genesis})
	log, err := smr.New(smr.Config{
		N: n, T: tf,
		Protocol: func(int) (sim.Factory, int) { return factory, external.RoundBound(tf) },
		NoOp:     genesis,
	})
	if err != nil {
		t.Fatal(err)
	}
	tx, err := auth.NewTx(external.ClientBase, "pay-1")
	if err != nil {
		t.Fatal(err)
	}
	if err := log.Submit(0, tx); err != nil {
		t.Fatal(err)
	}
	if err := log.Submit(1, "forged-garbage"); err != nil {
		t.Fatal(err)
	}
	entries, err := log.Drain(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !auth.Valid(e.Command) {
			t.Errorf("slot %d committed invalid command %q", e.Slot, e.Command)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := smr.New(smr.Config{N: 1, T: 0}); err == nil {
		t.Error("expected n validation error")
	}
	if _, err := smr.New(smr.Config{N: 4, T: 1}); err == nil {
		t.Error("expected protocol validation error")
	}
	scheme := sig.NewIdeal("smr-v")
	log, err := smr.New(smr.Config{N: 4, T: 1, Protocol: agreementProtocol(4, 1, scheme), NoOp: "noop"})
	if err != nil {
		t.Fatal(err)
	}
	if err := log.Submit(99, "x"); err == nil {
		t.Error("expected replica range error")
	}
}
