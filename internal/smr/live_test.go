package smr

import (
	"context"
	"fmt"
	"testing"

	"expensive/internal/msg"
	"expensive/internal/obs"
	"expensive/internal/proc"
	"expensive/internal/protocols/phaseking"
	"expensive/internal/sim"
	"expensive/internal/transport"
	"expensive/internal/transport/chaosnet"
	"expensive/internal/transport/memnet"
)

// liveConfig builds the canonical live log: phase-king slots over a
// fresh chaosnet-wrapped memnet mesh per slot, the chaos plan's budget
// feeding the safety monitor's faulty set.
func liveConfig(t *testing.T, n, tf int, profile string, seed int64, ctx context.Context) LiveConfig {
	t.Helper()
	var plans func(slot int) *chaosnet.Plan
	if profile != "" {
		p, ok := chaosnet.ByID(profile)
		if !ok {
			t.Fatalf("chaos profile %q missing", profile)
		}
		plans = func(slot int) *chaosnet.Plan {
			// One plan per slot, derived from the soak seed: every slot
			// sees different — but reproducible — chaos.
			return p.Build(seed+int64(slot), chaosnet.Env{N: n, T: tf})
		}
	}
	cfg := LiveConfig{
		N:    n,
		T:    tf,
		NoOp: "0",
		Protocol: func(slot int) (sim.Factory, int) {
			return phaseking.New(phaseking.Config{N: n, T: tf}), phaseking.RoundBound(tf)
		},
		Mesh: func(slot int) ([]transport.Endpoint, func() error, error) {
			mesh := memnet.New(n, nil)
			eps := mesh.Endpoints()
			if plans != nil {
				eps = chaosnet.Wrap(eps, plans(slot), obs.From(ctx))
			}
			return eps, eps[0].Close, nil
		},
		Ctx: ctx,
	}
	if plans != nil {
		cfg.Faulty = func(slot int) proc.Set { return plans(slot).Budget() }
	}
	return cfg
}

func TestLiveLogCommitsCleanMesh(t *testing.T) {
	log, err := NewLive(liveConfig(t, 4, 0, "", 0, context.Background()))
	if err != nil {
		t.Fatal(err)
	}
	// A clear majority per slot: binary phase-king commits the majority
	// proposal, so every queued "1" drains (minority commands would only
	// livelock against the NoOp majority — a property of the toy binary
	// protocol, not of the log).
	for i, cmd := range []Command{"1", "1", "1"} {
		if err := log.Submit(proc.ID(i), cmd); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := log.Drain(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 || log.Pending() != 0 {
		t.Fatalf("drain left %d pending after %d entries", log.Pending(), len(entries))
	}
	if d := log.Divergences(); len(d) != 0 {
		t.Fatalf("clean mesh diverged: %+v", d)
	}
	for i, e := range entries {
		if e.Slot != i {
			t.Errorf("entry %d has slot %d", i, e.Slot)
		}
		if e.Messages == 0 || e.Rounds == 0 {
			t.Errorf("entry %d missing cost accounting: %+v", i, e)
		}
	}
}

func TestLiveLogUnderChaosStorm(t *testing.T) {
	// The SMR soak core: phase-king slots over the storm profile
	// (drop + delay + partition within a T=1 budget). The online safety
	// monitor must stay silent and every slot must commit — Byzantine
	// agreement per slot is exactly what tolerates the budgeted faults.
	rec := obs.New()
	ctx := obs.Into(context.Background(), rec)
	n, tf := 5, 1
	log, err := NewLive(liveConfig(t, n, tf, "storm", 33, ctx))
	if err != nil {
		t.Fatal(err)
	}
	for slot := 0; slot < 6; slot++ {
		for r := 0; r < n; r++ {
			if err := log.Submit(proc.ID(r), Command(fmt.Sprintf("%d", slot%2))); err != nil {
				t.Fatal(err)
			}
		}
	}
	for log.Pending() > 0 && len(log.Entries()) < 64 {
		if _, err := log.CommitSlot(); err != nil {
			t.Fatalf("slot %d: %v", len(log.Entries()), err)
		}
	}
	if d := log.Divergences(); len(d) != 0 {
		t.Fatalf("safety violated under budgeted storm: %+v", d)
	}
	if got := rec.Counter("smr_live_commits").Value(); got != int64(len(log.Entries())) {
		t.Errorf("liveness counter %d, entries %d", got, len(log.Entries()))
	}
	p50, p99 := log.LatencyP50P99()
	if p50 <= 0 || p99 < p50 {
		t.Errorf("liveness histogram implausible: p50=%d p99=%d", p50, p99)
	}
}

// splitFactory decides each replica's own proposal without agreement —
// a deliberately unsafe "protocol" to prove the safety monitor fires.
type splitMachine struct{ v msg.Value }

func (m *splitMachine) Init() []sim.Outgoing                   { return nil }
func (m *splitMachine) Step(int, []msg.Message) []sim.Outgoing { return nil }
func (m *splitMachine) Decision() (msg.Value, bool)            { return m.v, true }
func (m *splitMachine) Quiescent() bool                        { return true }

func TestLiveLogSafetyMonitorDetectsDivergence(t *testing.T) {
	rec := obs.New()
	ctx := obs.Into(context.Background(), rec)
	cfg := liveConfig(t, 3, 0, "", 0, ctx)
	cfg.Protocol = func(slot int) (sim.Factory, int) {
		return func(id proc.ID, proposal msg.Value) sim.Machine {
			return &splitMachine{v: proposal}
		}, 1
	}
	log, err := NewLive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, cmd := range []Command{"a", "b", "c"} {
		if err := log.Submit(proc.ID(i), cmd); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := log.CommitSlot(); err != nil {
		t.Fatal(err)
	}
	d := log.Divergences()
	if len(d) != 1 || d[0].Slot != 0 || len(d[0].Decisions) != 3 {
		t.Fatalf("monitor missed the split: %+v", d)
	}
	if rec.Counter("smr_live_divergences").Value() != 1 {
		t.Errorf("divergence counter %d, want 1", rec.Counter("smr_live_divergences").Value())
	}
	// The log still committed (lowest-ID decision) so the soak can report
	// every violation rather than halting on the first.
	if entries := log.Entries(); len(entries) != 1 || entries[0].Command != "a" {
		t.Errorf("entries after divergence: %+v", entries)
	}
}

func TestLiveLogDeterministicUnderSameSeed(t *testing.T) {
	run := func() []Entry {
		log, err := NewLive(liveConfig(t, 5, 1, "storm", 77, context.Background()))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			if err := log.Submit(proc.ID(i), Command(fmt.Sprintf("%d", i%2))); err != nil {
				t.Fatal(err)
			}
		}
		entries, err := log.Drain(16)
		if err != nil {
			t.Fatal(err)
		}
		return entries
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("entry counts diverged: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Command != b[i].Command || a[i].Slot != b[i].Slot {
			t.Errorf("slot %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}
