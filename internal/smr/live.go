package smr

import (
	"context"
	"fmt"

	"expensive/internal/experiments/runner"
	"expensive/internal/msg"
	"expensive/internal/obs"
	"expensive/internal/proc"
	"expensive/internal/sim"
	"expensive/internal/transport"
)

// LiveConfig wires a replicated log that commits slots over a real
// transport mesh instead of the recording simulator — the configuration
// the chaos soak drives: each slot is one live agreement instance, and
// the mesh builder typically hands back chaosnet-wrapped endpoints so
// every slot runs under deterministic wire faults.
type LiveConfig struct {
	N int
	T int
	// Protocol builds one agreement instance per slot: the machine factory
	// and its round bound.
	Protocol func(slot int) (sim.Factory, int)
	// Mesh builds a fresh mesh for one slot: the endpoints and a teardown.
	// Fresh per slot by design — cross-slot frame leakage would alias
	// rounds between agreement instances. Wrap the endpoints here
	// (chaosnet.Wrap, tcpnet, ...) to pick the substrate and faults.
	Mesh func(slot int) (eps []transport.Endpoint, closeMesh func() error, err error)
	// Faulty names the processes the safety monitor must not trust at a
	// slot (a chaos plan's budget set, typically). Nil means all correct.
	Faulty func(slot int) proc.Set
	// NoOp is proposed by replicas with empty queues.
	NoOp Command
	// Ctx carries the obs recorder for the liveness monitor's metrics
	// (smr_live_commits, smr_live_divergences, smr_commit_ns histogram).
	Ctx context.Context
}

// Divergence is a safety-monitor finding: at a slot, processes outside
// the faulty set failed to agree. Under a chaos plan whose faults stay
// within the protocol's resilience this must never happen — one recorded
// divergence fails the soak.
type Divergence struct {
	Slot      int
	Detail    string
	Decisions map[proc.ID]msg.Value
}

// LiveLog is the over-the-wire replicated log with online monitors:
// safety (non-faulty replicas never diverge) checked at every commit,
// liveness (slots keep committing, latency histogram) fed to obs.
type LiveLog struct {
	cfg    LiveConfig
	queues [][]Command

	entries     []Entry
	divergences []Divergence

	commitsC   *obs.Counter
	divergedC  *obs.Counter
	commitHist *obs.Histogram
}

// NewLive creates an empty live replicated log.
func NewLive(cfg LiveConfig) (*LiveLog, error) {
	switch {
	case cfg.N < 2 || cfg.T < 0 || cfg.T >= cfg.N:
		return nil, fmt.Errorf("smr: need 0 <= t < n, n >= 2 (n=%d t=%d)", cfg.N, cfg.T)
	case cfg.Protocol == nil:
		return nil, fmt.Errorf("smr: nil protocol constructor")
	case cfg.Mesh == nil:
		return nil, fmt.Errorf("smr: live log needs a mesh builder")
	}
	rec := obs.From(cfg.Ctx)
	return &LiveLog{
		cfg:        cfg,
		queues:     make([][]Command, cfg.N),
		commitsC:   rec.Counter("smr_live_commits"),
		divergedC:  rec.Counter("smr_live_divergences"),
		commitHist: rec.Histogram("smr_commit_ns"),
	}, nil
}

// Submit enqueues a command at one replica.
func (l *LiveLog) Submit(replica proc.ID, cmd Command) error {
	if replica < 0 || int(replica) >= l.cfg.N {
		return fmt.Errorf("smr: unknown replica %v", replica)
	}
	l.queues[replica] = append(l.queues[replica], cmd)
	return nil
}

// Entries returns the committed log.
func (l *LiveLog) Entries() []Entry {
	out := make([]Entry, len(l.entries))
	copy(out, l.entries)
	return out
}

// Divergences returns every safety violation the monitor recorded.
func (l *LiveLog) Divergences() []Divergence {
	out := make([]Divergence, len(l.divergences))
	copy(out, l.divergences)
	return out
}

// Pending reports the number of commands still queued across replicas.
func (l *LiveLog) Pending() int {
	total := 0
	for _, q := range l.queues {
		total += len(q)
	}
	return total
}

// correct is the trusted set at a slot: everyone minus the faulty set.
func (l *LiveLog) correct(slot int) proc.Set {
	all := proc.Universe(l.cfg.N)
	if l.cfg.Faulty == nil {
		return all
	}
	return all.Diff(l.cfg.Faulty(slot))
}

// CommitSlot runs one live agreement instance over a fresh mesh and
// appends the committed entry. The safety monitor runs inline: if the
// trusted replicas split, the divergence is recorded (and counted in
// obs) and the slot commits the lowest-ID trusted decision so the log —
// and the soak driving it — keeps moving and can report every violation
// instead of dying on the first.
func (l *LiveLog) CommitSlot() (Entry, error) {
	if ctx := l.cfg.Ctx; ctx != nil {
		select {
		case <-ctx.Done():
			return Entry{}, ctx.Err()
		default:
		}
	}
	slot := len(l.entries)
	factory, rounds := l.cfg.Protocol(slot)
	proposals := make([]msg.Value, l.cfg.N)
	for i := range proposals {
		if len(l.queues[i]) > 0 {
			proposals[i] = l.queues[i][0]
		} else {
			proposals[i] = l.cfg.NoOp
		}
	}
	eps, closeMesh, err := l.cfg.Mesh(slot)
	if err != nil {
		return Entry{}, fmt.Errorf("smr slot %d: mesh: %w", slot, err)
	}
	sw := runner.StartWall()
	results, err := transport.Cluster{
		N:         l.cfg.N,
		Endpoints: eps,
		Factory:   factory,
		Proposals: proposals,
		Rounds:    rounds,
	}.Run()
	if closeMesh != nil {
		_ = closeMesh()
	}
	if err != nil {
		return Entry{}, fmt.Errorf("smr slot %d: %w", slot, err)
	}
	l.commitHist.Observe(int64(sw.Wall()))

	correct := l.correct(slot)
	decision, derr := transport.CommonDecision(results, correct)
	if derr != nil {
		// Safety violation (or a trusted replica stuck undecided): record
		// it, pick the lowest-ID trusted decision, and keep committing.
		seen := make(map[proc.ID]msg.Value, correct.Len())
		decision = msg.NoDecision
		for _, id := range correct.Members() {
			if results[id].Decided {
				seen[id] = results[id].Decision
				if decision == msg.NoDecision {
					decision = results[id].Decision
				}
			}
		}
		l.divergences = append(l.divergences, Divergence{Slot: slot, Detail: derr.Error(), Decisions: seen})
		l.divergedC.Inc()
		if decision == msg.NoDecision {
			return Entry{}, fmt.Errorf("smr slot %d: no trusted replica decided: %w", slot, derr)
		}
	}

	for i := range l.queues {
		for j, cmd := range l.queues[i] {
			if cmd == decision {
				l.queues[i] = append(l.queues[i][:j], l.queues[i][j+1:]...)
				break
			}
		}
	}
	sent := 0
	for _, id := range correct.Members() {
		sent += results[id].Sent
	}
	entry := Entry{Slot: slot, Command: decision, Messages: sent, Rounds: rounds}
	l.entries = append(l.entries, entry)
	l.commitsC.Inc()
	return entry, nil
}

// Drain commits slots until no commands are pending or maxSlots is
// reached, returning the committed entries.
func (l *LiveLog) Drain(maxSlots int) ([]Entry, error) {
	var out []Entry
	for len(out) < maxSlots && l.Pending() > 0 {
		e, err := l.CommitSlot()
		if err != nil {
			return out, err
		}
		out = append(out, e)
	}
	return out, nil
}

// LatencyP50P99 reads the liveness monitor: the p50 and p99 commit
// latencies in nanoseconds observed so far (zeros before any commit).
func (l *LiveLog) LatencyP50P99() (p50, p99 int64) {
	return l.commitHist.Quantile(0.50), l.commitHist.Quantile(0.99)
}
