package validity_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"expensive/internal/msg"
	"expensive/internal/proc"
	"expensive/internal/validity"
)

func mustConfig(t *testing.T, n int, assign map[proc.ID]msg.Value) validity.InputConfig {
	t.Helper()
	c, err := validity.NewConfig(n, assign)
	if err != nil {
		t.Fatalf("NewConfig: %v", err)
	}
	return c
}

func TestContainmentExampleFromPaper(t *testing.T) {
	// §4.2's example with n = 3: ⟨(p0,v0),(p1,v1),(p2,v2)⟩ contains
	// ⟨(p0,v0),(p2,v2)⟩ but not ⟨(p0,v0),(p2,v2')⟩.
	full := mustConfig(t, 3, map[proc.ID]msg.Value{0: "v0", 1: "v1", 2: "v2"})
	sub := mustConfig(t, 3, map[proc.ID]msg.Value{0: "v0", 2: "v2"})
	wrong := mustConfig(t, 3, map[proc.ID]msg.Value{0: "v0", 2: "v2'"})
	if !full.Contains(sub) {
		t.Error("containment rejected")
	}
	if full.Contains(wrong) {
		t.Error("containment accepted despite proposal mismatch")
	}
	if !full.Contains(full) {
		t.Error("containment not reflexive")
	}
	if sub.Contains(full) {
		t.Error("containment not antisymmetric on strict subsets")
	}
}

func TestContainmentIsPartialOrder(t *testing.T) {
	// Reflexivity, antisymmetry and transitivity over random configs.
	gen := func(seed int64) validity.InputConfig {
		r := rand.New(rand.NewSource(seed))
		assign := make(map[proc.ID]msg.Value)
		for i := 0; i < 5; i++ {
			if r.Intn(2) == 0 {
				assign[proc.ID(i)] = msg.Bit(r.Intn(2))
			}
		}
		c, _ := validity.NewConfig(5, assign)
		return c
	}
	prop := func(s1, s2, s3 int64) bool {
		a, b, c := gen(s1), gen(s2), gen(s3)
		if !a.Contains(a) {
			return false
		}
		if a.Contains(b) && b.Contains(a) && a.Key() != b.Key() {
			return false
		}
		if a.Contains(b) && b.Contains(c) && !a.Contains(c) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestRestrictAndContainmentSet(t *testing.T) {
	full := validity.FullConfig([]msg.Value{"0", "1", "0"})
	if _, err := full.Restrict(proc.NewSet(0, 7)); err == nil {
		t.Error("restrict to non-subset should fail")
	}
	cnt := full.ContainmentSet(2)
	// Subsets of size 2 and 3: C(3,2) + 1 = 4.
	if len(cnt) != 4 {
		t.Errorf("|Cnt| = %d, want 4", len(cnt))
	}
	for _, sub := range cnt {
		if !full.Contains(sub) {
			t.Errorf("enumerated non-contained config %v", sub)
		}
	}
}

func TestVectorAndUnanimity(t *testing.T) {
	full := validity.FullConfig([]msg.Value{"1", "1", "1"})
	if v, ok := full.Unanimous(); !ok || v != "1" {
		t.Errorf("Unanimous = %q/%v", v, ok)
	}
	vec, err := full.Vector()
	if err != nil || len(vec) != 3 {
		t.Errorf("Vector: %v %v", vec, err)
	}
	partial := mustConfig(t, 3, map[proc.ID]msg.Value{0: "1"})
	if _, err := partial.Vector(); err == nil {
		t.Error("Vector on partial config should fail")
	}
	mixed := validity.FullConfig([]msg.Value{"1", "0", "1"})
	if _, ok := mixed.Unanimous(); ok {
		t.Error("mixed config reported unanimous")
	}
}

func TestTriviality(t *testing.T) {
	if _, trivial := validity.Weak(4, 1).IsTrivial(); trivial {
		t.Error("weak consensus reported trivial")
	}
	if _, trivial := validity.Strong(4, 1).IsTrivial(); trivial {
		t.Error("strong consensus reported trivial")
	}
	v, trivial := validity.Constant(4, 1, msg.One).IsTrivial()
	if !trivial || v != msg.One {
		t.Errorf("constant problem: trivial=%v v=%q", trivial, v)
	}
}

func TestCCStandardProblems(t *testing.T) {
	cases := []struct {
		name string
		p    validity.Problem
		want bool
	}{
		{"weak n=4 t=3", validity.Weak(4, 3), true},
		{"weak n=4 t=1", validity.Weak(4, 1), true},
		{"strong n=4 t=1", validity.Strong(4, 1), true},
		{"strong n=4 t=2 (n=2t)", validity.Strong(4, 2), false},
		{"strong n=5 t=2 (n=2t+1)", validity.Strong(5, 2), true},
		{"strong n=6 t=3 (n=2t)", validity.Strong(6, 3), false},
		{"broadcast n=4 t=3", validity.Broadcast(4, 3, 0), true},
		{"correct-source n=4 t=2", validity.CorrectSource(4, 2), false},
		{"correct-source n=5 t=2", validity.CorrectSource(5, 2), true},
		{"interactive n=4 t=2", validity.Interactive(4, 2), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.p.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			res := tc.p.CheckCC()
			if res.Holds != tc.want {
				t.Fatalf("CC = %v, want %v", res.Holds, tc.want)
			}
			if res.Holds {
				// Γ must be defined on every configuration and admissible
				// under the whole containment set.
				for _, c := range tc.p.Configs() {
					g, ok := res.Gamma[c.Key()]
					if !ok {
						t.Fatalf("Γ undefined on %v", c)
					}
					for _, sub := range c.ContainmentSet(tc.p.N - tc.p.T) {
						if !tc.p.Admissible(sub, g) {
							t.Fatalf("Γ(%v)=%q not admissible under contained %v", c, g, sub)
						}
					}
				}
			} else if res.Witness == nil {
				t.Error("CC fails without witness")
			}
		})
	}
}

func TestTheorem5Witness(t *testing.T) {
	// Strong consensus at n = 2t: the witness must exhibit the exact shape
	// of the Theorem 5 proof — a configuration containing two
	// sub-configurations with disjoint admissible sets.
	p := validity.Strong(4, 2)
	res := p.CheckCC()
	if res.Holds {
		t.Fatal("CC should fail at n = 2t")
	}
	w := res.Witness
	if w == nil || !w.HasPair {
		t.Fatalf("witness missing or incomplete: %+v", w)
	}
	if !w.C.Contains(w.C1) || !w.C.Contains(w.C2) {
		t.Error("witness pair not contained in c")
	}
	vals1 := make(map[msg.Value]bool)
	for _, v := range w.Val1 {
		vals1[v] = true
	}
	for _, v := range w.Val2 {
		if vals1[v] {
			t.Errorf("witness admissible sets intersect at %q", v)
		}
	}
	if w.String() == "" {
		t.Error("witness renders empty")
	}
}

func TestSolvabilityVerdicts(t *testing.T) {
	cases := []struct {
		p       validity.Problem
		auth    bool
		unauth  bool
		trivial bool
	}{
		{validity.Weak(4, 1), true, true, false},     // n > 3t
		{validity.Weak(4, 2), true, false, false},    // n <= 3t
		{validity.Weak(4, 3), true, false, false},    // n <= 3t
		{validity.Strong(4, 2), false, false, false}, // CC fails
		{validity.Strong(5, 2), true, false, false},  // n=2t+1 <= 3t
		{validity.Strong(7, 2), true, true, false},   // n > 3t
		{validity.Broadcast(4, 3, 0), true, false, false},
		{validity.Constant(4, 3, msg.One), true, true, true},
	}
	for _, tc := range cases {
		s := tc.p.Solve()
		if s.Authenticated != tc.auth || s.Unauthenticated != tc.unauth || s.Trivial != tc.trivial {
			t.Errorf("%s n=%d t=%d: got auth=%v unauth=%v trivial=%v, want %v/%v/%v",
				tc.p.Name, tc.p.N, tc.p.T, s.Authenticated, s.Unauthenticated, s.Trivial,
				tc.auth, tc.unauth, tc.trivial)
		}
	}
}

func TestGammaFuncClampsForeignEntries(t *testing.T) {
	p := validity.Weak(4, 1)
	res := p.CheckCC()
	gamma, err := p.GammaFunc(res)
	if err != nil {
		t.Fatalf("GammaFunc: %v", err)
	}
	// A broadcast default "⊥" in a faulty slot is clamped; unanimity of the
	// remaining entries is spoiled, so Γ_weak picks a value admissible for
	// the actual (smaller) input configuration — anything binary works.
	out := gamma([]msg.Value{"1", "1", "⊥", "1"})
	if !msg.IsBit(out) {
		t.Errorf("Γ returned non-domain value %q", out)
	}
	// Fully unanimous in-domain vector must return the unanimous value.
	if out := gamma([]msg.Value{"1", "1", "1", "1"}); out != "1" {
		t.Errorf("Γ(1,1,1,1) = %q", out)
	}
	if _, err := p.GammaFunc(validity.CCResult{}); err == nil {
		t.Error("GammaFunc without CC should fail")
	}
}

func TestProblemValidate(t *testing.T) {
	bad := validity.Weak(4, 1)
	bad.N = 12
	if err := bad.Validate(); err == nil {
		t.Error("n too large for exact enumeration should be rejected")
	}
	bad2 := validity.Weak(4, 1)
	bad2.Admissible = nil
	if err := bad2.Validate(); err == nil {
		t.Error("nil predicate should be rejected")
	}
}

func TestConfigsEnumeration(t *testing.T) {
	p := validity.Weak(3, 1)
	configs := p.Configs()
	// Sizes 2 and 3 over binary inputs: C(3,2)*4 + 1*8 = 20.
	if len(configs) != 20 {
		t.Errorf("|I| = %d, want 20", len(configs))
	}
	full := p.FullConfigs()
	if len(full) != 8 {
		t.Errorf("|I_n| = %d, want 8", len(full))
	}
	seen := make(map[string]bool)
	for _, c := range configs {
		if seen[c.Key()] {
			t.Errorf("duplicate config %v", c)
		}
		seen[c.Key()] = true
	}
}
