package validity

import (
	"fmt"

	"expensive/internal/msg"
	"expensive/internal/proc"
)

// Check is a pluggable per-execution validity property: given the
// proposal vector, the correct set, and the correct processes' common
// decision, a non-nil error is a validity violation. Termination and
// Agreement are checked by the caller (the campaign engine) before a
// Check runs.
//
// The concrete checks below are the runtime counterparts of the
// admissibility predicates in this package: problems state validity over
// input configurations; checks verdict one recorded execution.
type Check func(proposals []msg.Value, correct proc.Set, decision msg.Value) error

// Compat is a pairwise decision-compatibility relation replacing strict
// Agreement equality for protocols whose correct outputs legitimately
// differ — graded broadcast guarantees G2/G3 (neighboring grades, equal
// values for grades >= 1), not identical outputs. It must be symmetric;
// a non-nil error means the two correct decisions conflict.
type Compat func(a, b msg.Value) error

// StrongCheck is the strong consensus property: whenever the correct
// processes' proposals are unanimous — faulty or not — that value must be
// the decision. Use it only against protocols that claim strong validity
// (Phase-King); minimum-style protocols like FloodSet legitimately adopt
// a faulty process's value.
func StrongCheck(proposals []msg.Value, correct proc.Set, decision msg.Value) error {
	members := correct.Members()
	if len(members) == 0 {
		return nil
	}
	u := proposals[members[0]]
	for _, id := range members[1:] {
		if proposals[id] != u {
			return nil
		}
	}
	if decision != u {
		return fmt.Errorf("correct processes unanimously proposed %q but decided %q", u, decision)
	}
	return nil
}

// WeakCheck is the paper's Weak Validity: in a *fully correct* execution
// with unanimous proposals, the decision must be that value. With any
// fault present it imposes nothing.
func WeakCheck(proposals []msg.Value, correct proc.Set, decision msg.Value) error {
	if correct.Len() != len(proposals) {
		return nil // a process is faulty; Weak Validity is vacuous
	}
	return StrongCheck(proposals, correct, decision)
}

// SenderCheck returns the broadcast validity property: when the
// designated sender stays correct, the decision must be its proposal.
func SenderCheck(sender proc.ID) Check {
	return func(proposals []msg.Value, correct proc.Set, decision msg.Value) error {
		if correct.Contains(sender) && decision != proposals[sender] {
			return fmt.Errorf("correct sender %s proposed %q but the correct processes decided %q",
				sender, proposals[sender], decision)
		}
		return nil
	}
}

// VectorCheck is interactive consistency's IC-Validity: the decision is
// an encoded n-vector whose entry for every correct process must be that
// process's actual proposal.
func VectorCheck(proposals []msg.Value, correct proc.Set, decision msg.Value) error {
	vec, err := msg.DecodeVector(decision)
	if err != nil {
		return fmt.Errorf("decision %q is not an IC vector: %w", decision, err)
	}
	if len(vec) != len(proposals) {
		return fmt.Errorf("decided vector has %d entries, want %d", len(vec), len(proposals))
	}
	for _, id := range correct.Members() {
		if vec[id] != proposals[id] {
			return fmt.Errorf("correct %s proposed %q but the decided vector carries %q", id, proposals[id], vec[id])
		}
	}
	return nil
}

// AdmissibleCheck checks a decision against a problem's own validity
// property: it rebuilds the input configuration of the correct processes
// and requires the decision to be admissible under it.
func AdmissibleCheck(p Problem) Check {
	return func(proposals []msg.Value, correct proc.Set, decision msg.Value) error {
		assign := make(map[proc.ID]msg.Value, correct.Len())
		for _, id := range correct.Members() {
			assign[id] = proposals[id]
		}
		c, err := NewConfig(p.N, assign)
		if err != nil {
			return fmt.Errorf("rebuild input configuration: %w", err)
		}
		if !p.Admissible(c, decision) {
			return fmt.Errorf("decided %q, which is not admissible under %v", decision, c)
		}
		return nil
	}
}
