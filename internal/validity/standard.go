package validity

import (
	"expensive/internal/msg"
	"expensive/internal/proc"
)

// BinaryInputs is the binary proposal domain {0, 1}.
func BinaryInputs() []msg.Value { return []msg.Value{msg.Zero, msg.One} }

// Weak builds binary weak consensus [28, 37, 79, 101]: if all processes
// are correct and propose the same value, that value must be decided;
// otherwise anything goes. The paper proves this is the weakest
// non-trivial agreement problem (§4.2).
func Weak(n, t int) Problem {
	return Problem{
		Name:    "weak-consensus",
		N:       n,
		T:       t,
		Inputs:  BinaryInputs(),
		Outputs: BinaryInputs(),
		Admissible: func(c InputConfig, v msg.Value) bool {
			if !c.Full() {
				return true
			}
			u, ok := c.Unanimous()
			if !ok {
				return true
			}
			return v == u
		},
	}
}

// Strong builds binary strong consensus [37, 45, 78]: if all correct
// processes propose the same value, that value must be decided. Theorem 5:
// authenticated-solvable iff n > 2t.
func Strong(n, t int) Problem {
	return Problem{
		Name:    "strong-consensus",
		N:       n,
		T:       t,
		Inputs:  BinaryInputs(),
		Outputs: BinaryInputs(),
		Admissible: func(c InputConfig, v msg.Value) bool {
			u, ok := c.Unanimous()
			if !ok {
				return true
			}
			return v == u
		},
	}
}

// Broadcast builds Byzantine broadcast [11, 88, 96, 98] with the given
// designated sender: if the sender is correct, its proposal must be
// decided (Sender Validity). The Dolev-Reischuk bound's original problem.
func Broadcast(n, t int, sender proc.ID) Problem {
	return Problem{
		Name:    "byzantine-broadcast",
		N:       n,
		T:       t,
		Inputs:  BinaryInputs(),
		Outputs: BinaryInputs(),
		Admissible: func(c InputConfig, v msg.Value) bool {
			sv, ok := c.Proposal(sender)
			if !ok {
				return true
			}
			return v == sv
		},
	}
}

// CorrectSource builds the "decided value was proposed by a correct
// process" property (a strengthening sometimes called justified or
// validated consensus). Like Strong, its CC frontier is n > 2t for binary
// inputs — a second datapoint for the solvability matrix.
func CorrectSource(n, t int) Problem {
	return Problem{
		Name:    "correct-source",
		N:       n,
		T:       t,
		Inputs:  BinaryInputs(),
		Outputs: BinaryInputs(),
		Admissible: func(c InputConfig, v msg.Value) bool {
			for _, id := range c.Pi().Members() {
				if p, _ := c.Proposal(id); p == v {
					return true
				}
			}
			return false
		},
	}
}

// Interactive builds interactive consistency [18, 54, 78]: processes
// decide full I_n vectors whose correct entries match the actual
// proposals — IC-Validity(c) = {c' ∈ I_n | c' ⊒ c}. The universal
// substrate of Lemma 9.
func Interactive(n, t int) Problem {
	inputs := BinaryInputs()
	var outputs []msg.Value
	total := 1
	for i := 0; i < n; i++ {
		total *= len(inputs)
	}
	for idx := 0; idx < total; idx++ {
		vec := make([]msg.Value, n)
		x := idx
		for i := 0; i < n; i++ {
			vec[i] = inputs[x%len(inputs)]
			x /= len(inputs)
		}
		outputs = append(outputs, msg.EncodeVector(vec))
	}
	return Problem{
		Name:    "interactive-consistency",
		N:       n,
		T:       t,
		Inputs:  inputs,
		Outputs: outputs,
		Admissible: func(c InputConfig, v msg.Value) bool {
			vec, err := msg.DecodeVector(v)
			if err != nil || len(vec) != n {
				return false
			}
			return FullConfig(vec).Contains(c)
		},
	}
}

// Constant builds the trivial problem that always admits the fixed value k
// (and only it). §4.1's canonical trivial problem: decidable with zero
// communication.
func Constant(n, t int, k msg.Value) Problem {
	return Problem{
		Name:    "constant",
		N:       n,
		T:       t,
		Inputs:  BinaryInputs(),
		Outputs: []msg.Value{k},
		Admissible: func(InputConfig, msg.Value) bool {
			return true
		},
	}
}

// Standard returns the catalogue used by the solvability matrix
// (experiment E6).
func Standard(n, t int) []Problem {
	return []Problem{
		Weak(n, t),
		Strong(n, t),
		Broadcast(n, t, 0),
		CorrectSource(n, t),
		Interactive(n, t),
		Constant(n, t, msg.One),
	}
}
