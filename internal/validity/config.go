// Package validity implements the validity-property formalism of §4.1 and
// the solvability machinery of §5: input configurations, the containment
// relation ⊒ and containment sets Cnt(c), triviality, the containment
// condition CC (Definition 3), and synthesis of the selector Γ that
// Algorithm 2 turns into an actual protocol.
//
// All checkers are exact finite-domain enumerations: for the small n and
// finite value sets where the solvability experiments run, every input
// configuration in I is enumerated and every admissibility constraint is
// checked — the general solvability theorem (Theorem 4) evaluated, not
// approximated.
package validity

import (
	"fmt"
	"strings"

	"expensive/internal/msg"
	"expensive/internal/proc"
)

// InputConfig is an assignment of proposals to the correct processes: a
// tuple of process–proposal pairs with n-t <= |pairs| <= n, each pair
// bound to a distinct process (§4.1).
type InputConfig struct {
	n       int
	present proc.Set
	vals    []msg.Value
}

// NewConfig builds an input configuration over Π = {0..n-1} from an
// explicit assignment. Size constraints (|c| >= n-t) are the problem's
// concern and checked by Problem.Configs; here any subset is accepted.
func NewConfig(n int, assign map[proc.ID]msg.Value) (InputConfig, error) {
	c := InputConfig{n: n, vals: make([]msg.Value, n)}
	for id, v := range assign {
		if id < 0 || int(id) >= n {
			return InputConfig{}, fmt.Errorf("config: process %v outside Π (n=%d)", id, n)
		}
		c.present = c.present.Add(id)
		c.vals[id] = v
	}
	return c, nil
}

// FullConfig builds the configuration in I_n with the given proposals
// (π(c) = Π).
func FullConfig(proposals []msg.Value) InputConfig {
	c := InputConfig{n: len(proposals), present: proc.Universe(len(proposals)), vals: append([]msg.Value{}, proposals...)}
	return c
}

// N returns the system size the configuration lives in.
func (c InputConfig) N() int { return c.n }

// Pi returns π(c), the set of correct processes.
func (c InputConfig) Pi() proc.Set { return c.present }

// Size returns |c|, the number of process–proposal pairs.
func (c InputConfig) Size() int { return c.present.Len() }

// Proposal returns c[i], reporting absence for processes outside π(c).
func (c InputConfig) Proposal(id proc.ID) (msg.Value, bool) {
	if !c.present.Contains(id) {
		return msg.NoDecision, false
	}
	return c.vals[id], true
}

// Full reports whether c ∈ I_n.
func (c InputConfig) Full() bool { return c.present.Len() == c.n }

// Vector returns the proposal vector of a full configuration.
func (c InputConfig) Vector() ([]msg.Value, error) {
	if !c.Full() {
		return nil, fmt.Errorf("config: not full (|π(c)|=%d, n=%d)", c.Size(), c.n)
	}
	return append([]msg.Value{}, c.vals...), nil
}

// Restrict returns the sub-configuration of c on s ⊆ π(c).
func (c InputConfig) Restrict(s proc.Set) (InputConfig, error) {
	if !s.SubsetOf(c.present) {
		return InputConfig{}, fmt.Errorf("config: %v not a subset of π(c)=%v", s, c.present)
	}
	out := InputConfig{n: c.n, present: s, vals: make([]msg.Value, c.n)}
	for _, id := range s.Members() {
		out.vals[id] = c.vals[id]
	}
	return out, nil
}

// Contains implements the containment relation of §4.2:
// c ⊒ c2 iff π(c) ⊇ π(c2) and the shared processes agree on proposals.
func (c InputConfig) Contains(c2 InputConfig) bool {
	if c.n != c2.n || !c2.present.SubsetOf(c.present) {
		return false
	}
	for _, id := range c2.present.Members() {
		if c.vals[id] != c2.vals[id] {
			return false
		}
	}
	return true
}

// Key is a canonical string identity usable as a map key.
func (c InputConfig) Key() string {
	var b strings.Builder
	for _, id := range c.present.Members() {
		fmt.Fprintf(&b, "%d=%s;", int(id), c.vals[id])
	}
	return b.String()
}

// String renders the configuration like the paper's tuples.
func (c InputConfig) String() string {
	parts := make([]string, 0, c.Size())
	for _, id := range c.present.Members() {
		parts = append(parts, fmt.Sprintf("(%s,%s)", id, c.vals[id]))
	}
	return "⟨" + strings.Join(parts, ",") + "⟩"
}

// Unanimous returns the common proposal when all present processes agree.
func (c InputConfig) Unanimous() (msg.Value, bool) {
	members := c.present.Members()
	if len(members) == 0 {
		return msg.NoDecision, false
	}
	v := c.vals[members[0]]
	for _, id := range members[1:] {
		if c.vals[id] != v {
			return msg.NoDecision, false
		}
	}
	return v, true
}

// ContainmentSet enumerates Cnt(c) ∩ I — every configuration contained in
// c with at least minSize pairs (minSize = n-t for the paper's I). The
// enumeration includes c itself (containment is reflexive).
func (c InputConfig) ContainmentSet(minSize int) []InputConfig {
	var out []InputConfig
	c.present.Subsets(func(s proc.Set) bool {
		if s.Len() >= minSize {
			sub, err := c.Restrict(s)
			if err == nil {
				out = append(out, sub)
			}
		}
		return true
	})
	return out
}
