package validity

import (
	"fmt"

	"expensive/internal/msg"
	"expensive/internal/proc"
)

// Problem is a Byzantine agreement problem: system parameters, finite
// proposal and decision domains, and a validity property val: I → 2^{V_O}
// given as an admissibility predicate. §4.1: the validity property alone
// defines the problem.
type Problem struct {
	Name    string
	N       int
	T       int
	Inputs  []msg.Value
	Outputs []msg.Value
	// Admissible reports v ∈ val(c).
	Admissible func(c InputConfig, v msg.Value) bool
}

// Validate checks structural sanity.
func (p Problem) Validate() error {
	switch {
	case p.N < 2 || p.T < 0 || p.T >= p.N:
		return fmt.Errorf("problem %s: need 0 <= t < n, n >= 2 (n=%d t=%d)", p.Name, p.N, p.T)
	case len(p.Inputs) == 0 || len(p.Outputs) == 0:
		return fmt.Errorf("problem %s: empty value domain", p.Name)
	case p.Admissible == nil:
		return fmt.Errorf("problem %s: nil validity predicate", p.Name)
	case p.N > 8:
		return fmt.Errorf("problem %s: exact checkers enumerate I; n=%d is too large (max 8)", p.Name, p.N)
	}
	return nil
}

// Configs enumerates I: every assignment of proposals from Inputs to every
// subset of Π of size at least n-t. Deterministic order.
func (p Problem) Configs() []InputConfig {
	var out []InputConfig
	proc.Universe(p.N).Subsets(func(s proc.Set) bool {
		if s.Len() < p.N-p.T {
			return true
		}
		members := s.Members()
		total := 1
		for range members {
			total *= len(p.Inputs)
		}
		for idx := 0; idx < total; idx++ {
			assign := make(map[proc.ID]msg.Value, len(members))
			x := idx
			for _, id := range members {
				assign[id] = p.Inputs[x%len(p.Inputs)]
				x /= len(p.Inputs)
			}
			c, err := NewConfig(p.N, assign)
			if err == nil {
				out = append(out, c)
			}
		}
		return true
	})
	return out
}

// FullConfigs enumerates I_n.
func (p Problem) FullConfigs() []InputConfig {
	var out []InputConfig
	for _, c := range p.Configs() {
		if c.Full() {
			out = append(out, c)
		}
	}
	return out
}

// AdmissibleSet returns val(c) as a slice in Outputs order.
func (p Problem) AdmissibleSet(c InputConfig) []msg.Value {
	var out []msg.Value
	for _, v := range p.Outputs {
		if p.Admissible(c, v) {
			out = append(out, v)
		}
	}
	return out
}

// IsTrivial reports whether the problem is trivial: some value is
// admissible under every input configuration (§4.1). It returns the
// always-admissible witness when one exists.
func (p Problem) IsTrivial() (msg.Value, bool) {
	configs := p.Configs()
	for _, v := range p.Outputs {
		ok := true
		for _, c := range configs {
			if !p.Admissible(c, v) {
				ok = false
				break
			}
		}
		if ok {
			return v, true
		}
	}
	return msg.NoDecision, false
}

// CCWitness explains a containment-condition failure: a configuration c
// whose containment set admits no common value, plus two contained
// configurations with disjoint admissible sets when such a pair exists
// (the shape of the Theorem 5 argument).
type CCWitness struct {
	C InputConfig
	// Disjoint pair within Cnt(C), when found.
	C1, C2     InputConfig
	Val1, Val2 []msg.Value
	HasPair    bool
}

// String renders the witness in the style of the Theorem 5 proof.
func (w CCWitness) String() string {
	if !w.HasPair {
		return fmt.Sprintf("⋂ val over Cnt(%v) = ∅", w.C)
	}
	return fmt.Sprintf("%v contains %v (val=%v) and %v (val=%v), which share no admissible value",
		w.C, w.C1, w.Val1, w.C2, w.Val2)
}

// CCResult is the outcome of the containment-condition check.
type CCResult struct {
	Holds bool
	// Gamma maps every configuration in I (by Key) to a value in
	// ⋂_{c' ∈ Cnt(c)} val(c') — the Turing-computable selector of
	// Definition 3, materialized.
	Gamma map[string]msg.Value
	// Witness is set when CC fails.
	Witness *CCWitness
}

// CheckCC decides the containment condition (Definition 3) by exact
// enumeration and synthesizes Γ when it holds.
func (p Problem) CheckCC() CCResult {
	gamma := make(map[string]msg.Value)
	for _, c := range p.Configs() {
		cnt := c.ContainmentSet(p.N - p.T)
		var pick msg.Value
		found := false
		for _, v := range p.Outputs {
			ok := true
			for _, sub := range cnt {
				if !p.Admissible(sub, v) {
					ok = false
					break
				}
			}
			if ok {
				pick, found = v, true
				break
			}
		}
		if !found {
			return CCResult{Holds: false, Witness: p.ccWitness(c, cnt)}
		}
		gamma[c.Key()] = pick
	}
	return CCResult{Holds: true, Gamma: gamma}
}

func (p Problem) ccWitness(c InputConfig, cnt []InputConfig) *CCWitness {
	w := &CCWitness{C: c}
	for i := range cnt {
		for j := i + 1; j < len(cnt); j++ {
			vi, vj := p.AdmissibleSet(cnt[i]), p.AdmissibleSet(cnt[j])
			if disjoint(vi, vj) {
				w.C1, w.C2, w.Val1, w.Val2, w.HasPair = cnt[i], cnt[j], vi, vj, true
				return w
			}
		}
	}
	return w
}

func disjoint(a, b []msg.Value) bool {
	set := make(map[msg.Value]bool, len(a))
	for _, v := range a {
		set[v] = true
	}
	for _, v := range b {
		if set[v] {
			return false
		}
	}
	return true
}

// Solvability is the Theorem 4 verdict for a problem.
type Solvability struct {
	Problem       string
	N, T          int
	Trivial       bool
	TrivialValue  msg.Value
	CC            bool
	CCWitness     *CCWitness
	Authenticated bool
	// Unauthenticated additionally requires n > 3t (Theorem 4), except for
	// trivial problems, which are solvable without communication anywhere.
	Unauthenticated bool
}

// Solve evaluates the general solvability theorem for p.
func (p Problem) Solve() Solvability {
	s := Solvability{Problem: p.Name, N: p.N, T: p.T}
	if v, ok := p.IsTrivial(); ok {
		// A trivial problem is solvable everywhere: decide v immediately.
		s.Trivial, s.TrivialValue = true, v
		s.CC = true
		s.Authenticated, s.Unauthenticated = true, true
		return s
	}
	cc := p.CheckCC()
	s.CC, s.CCWitness = cc.Holds, cc.Witness
	s.Authenticated = cc.Holds
	s.Unauthenticated = cc.Holds && p.N > 3*p.T
	return s
}

// GammaFunc materializes Γ as a selector over decided I_n vectors, for use
// with Algorithm 2 (reduction.FromIC). Vector entries outside V_I —
// possible for faulty processes' slots filled with a broadcast default —
// are clamped to Inputs[0], which is sound because IC-Validity guarantees
// the entries of correct processes are genuine proposals and Γ(vec) is
// admissible for every contained configuration either way (vec ⊒ c is
// preserved under clamping faulty-only entries... the clamped vector still
// contains the real input configuration c).
func (p Problem) GammaFunc(cc CCResult) (func(vec []msg.Value) msg.Value, error) {
	if !cc.Holds {
		return nil, fmt.Errorf("problem %s: containment condition fails; no Γ exists", p.Name)
	}
	inDomain := make(map[msg.Value]bool, len(p.Inputs))
	for _, v := range p.Inputs {
		inDomain[v] = true
	}
	clampTo := p.Inputs[0]
	return func(vec []msg.Value) msg.Value {
		clamped := make([]msg.Value, p.N)
		for i := 0; i < p.N; i++ {
			if i < len(vec) && inDomain[vec[i]] {
				clamped[i] = vec[i]
			} else {
				clamped[i] = clampTo
			}
		}
		v, ok := cc.Gamma[FullConfig(clamped).Key()]
		if !ok {
			// Unreachable when cc covers I; stay total and deterministic.
			return clampTo
		}
		return v
	}, nil
}
