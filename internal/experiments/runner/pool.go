package runner

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"expensive/internal/obs"
)

// poolObs bundles the pool's telemetry handles, resolved once per Map or
// Prefetch call from the recorder on the context. The zero value (no
// recorder) leaves every handle nil, so instrument calls cost one pointer
// check each — telemetry never touches the deterministic job semantics,
// it only counts them.
type poolObs struct {
	jobs  *obs.Counter   // runner_jobs: jobs completed across all pools
	depth *obs.Gauge     // runner_queue_depth: jobs not yet claimed
	jobNS *obs.Histogram // runner_job_ns: per-job latency
	rec   *obs.Recorder  // kept to resolve per-worker counters lazily
}

func poolObsFrom(ctx context.Context) poolObs {
	rec := obs.From(ctx)
	if rec == nil {
		return poolObs{}
	}
	return poolObs{
		jobs:  rec.Counter("runner_jobs"),
		depth: rec.Gauge("runner_queue_depth"),
		jobNS: rec.Histogram("runner_job_ns"),
		rec:   rec,
	}
}

// worker returns the per-worker attribution handles for worker w, nil
// handles when telemetry is off. Resolved once at worker-goroutine start,
// never inside the job loop.
func (p poolObs) worker(w int) (jobs *obs.Counter, busyNS *obs.Counter) {
	if p.rec == nil {
		return nil, nil
	}
	return p.rec.Counter(fmt.Sprintf("runner_worker_%d_jobs", w)),
		p.rec.Counter(fmt.Sprintf("runner_worker_%d_busy_ns", w))
}

// Workers resolves a requested parallelism level: values <= 0 mean
// runtime.NumCPU().
func Workers(parallelism int) int {
	if parallelism <= 0 {
		return runtime.NumCPU()
	}
	return parallelism
}

// Map runs fn(0), …, fn(n-1) on a pool of workers and returns the results
// in index order. workers <= 1 runs the jobs inline, in order, stopping at
// the first error — the serial semantics every parallel run must
// reproduce.
//
// With workers > 1 the jobs are pulled off a shared feed in index order.
// An error cancels the remaining (not yet started) jobs; because fn must
// be deterministic and indices are claimed monotonically, the
// lowest-index error is exactly the error a serial run would have
// returned, so Map is observationally equivalent to the serial loop.
func Map[T any](ctx context.Context, workers, n int, fn func(i int) (T, error)) ([]T, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]T, n)
	po := poolObsFrom(ctx)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		wjobs, wbusy := po.worker(0)
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			t := po.jobNS.StartTimer()
			v, err := fn(i)
			wbusy.Add(t.Stop())
			po.jobs.Inc()
			wjobs.Inc()
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, n)
	next := make(chan int)
	go func() {
		defer close(next)
		for i := 0; i < n; i++ {
			select {
			case next <- i:
				po.depth.Set(int64(n - 1 - i))
			case <-ctx.Done():
				po.depth.Set(0)
				return
			}
		}
		po.depth.Set(0)
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wjobs, wbusy := po.worker(w)
			for i := range next {
				t := po.jobNS.StartTimer()
				v, err := fn(i)
				wbusy.Add(t.Stop())
				po.jobs.Inc()
				wjobs.Inc()
				if err != nil {
					errs[i] = err
					cancel()
					continue
				}
				out[i] = v
			}
		}(w)
	}
	wg.Wait()
	for i := range errs {
		if errs[i] != nil {
			return nil, errs[i]
		}
	}
	return out, nil
}

// Promise is the deferred result of one job submitted via Prefetch.
type Promise[T any] struct {
	lazy func() (T, error) // serial mode: computed inline on first Wait
	once sync.Once
	done chan struct{} // parallel mode: closed when the job resolves
	val  T
	err  error
}

// Wait blocks until the job has run (or was cancelled) and returns its
// result. In serial mode the job is computed inline on the caller's
// goroutine at first Wait.
func (p *Promise[T]) Wait() (T, error) {
	if p.lazy != nil {
		p.once.Do(func() { p.val, p.err = p.lazy() })
		return p.val, p.err
	}
	<-p.done
	return p.val, p.err
}

// resolve publishes the job's outcome exactly once (parallel mode).
func (p *Promise[T]) resolve(v T, err error) {
	p.once.Do(func() {
		p.val, p.err = v, err
		close(p.done)
	})
}

// Prefetch launches fn(0), …, fn(n-1) speculatively on a pool of workers
// and returns one promise per job plus a cancel function. The consumer
// resolves promises in whatever order it likes — typically sequentially,
// stopping early — and calls cancel to stop the jobs it never consumed
// (in-flight jobs run to completion; unstarted ones resolve with the
// context error).
//
// The returned cancel function *joins* the pool: it stops unstarted jobs
// and then waits for in-flight ones to finish, so after cancel returns no
// speculative work is still burning CPU (or incrementing sim.Runs) in the
// background — per-experiment probe and wall-clock attribution stays
// exact.
//
// workers <= 1 degrades to fully lazy evaluation: each promise computes
// its job inline on first Wait, so a serial caller does exactly the same
// work, in exactly the same order, as a plain sequential loop — no
// speculative probes, no goroutines.
func Prefetch[T any](ctx context.Context, workers, n int, fn func(i int) (T, error)) ([]*Promise[T], context.CancelFunc) {
	if ctx == nil {
		ctx = context.Background()
	}
	promises := make([]*Promise[T], n)
	po := poolObsFrom(ctx)

	if workers <= 1 {
		for i := range promises {
			i := i
			promises[i] = &Promise[T]{lazy: func() (T, error) {
				if err := ctx.Err(); err != nil {
					var zero T
					return zero, err
				}
				t := po.jobNS.StartTimer()
				v, err := fn(i)
				t.Stop()
				po.jobs.Inc()
				return v, err
			}}
		}
		return promises, func() {}
	}

	for i := range promises {
		promises[i] = &Promise[T]{done: make(chan struct{})}
	}
	ctx, cancel := context.WithCancel(ctx)
	if workers > n {
		workers = n
	}
	next := make(chan int)
	go func() {
		defer close(next)
		for i := 0; i < n; i++ {
			select {
			case next <- i:
			case <-ctx.Done():
				var zero T
				for j := i; j < n; j++ {
					promises[j].resolve(zero, ctx.Err())
				}
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wjobs, wbusy := po.worker(w)
			for i := range next {
				t := po.jobNS.StartTimer()
				v, err := fn(i)
				wbusy.Add(t.Stop())
				po.jobs.Inc()
				wjobs.Inc()
				promises[i].resolve(v, err)
			}
		}(w)
	}
	return promises, func() {
		cancel()
		wg.Wait()
	}
}
