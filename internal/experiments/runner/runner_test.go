package runner

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

func TestMapOrdering(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		out, err := Map(nil, workers, 100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapLowestIndexError(t *testing.T) {
	// Jobs 7 and 3 fail; every run must report job 3's error, like a
	// serial loop would.
	for _, workers := range []int{1, 4} {
		_, err := Map(nil, workers, 10, func(i int) (int, error) {
			if i == 3 || i == 7 {
				return 0, fmt.Errorf("job %d failed", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "job 3 failed" {
			t.Fatalf("workers=%d: got %v, want job 3's error", workers, err)
		}
	}
}

func TestMapContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Map(ctx, 1, 5, func(i int) (int, error) { return i, nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestPrefetchSerialIsLazy(t *testing.T) {
	var computed atomic.Int32
	ps, cancel := Prefetch(nil, 1, 5, func(i int) (int, error) {
		computed.Add(1)
		return i, nil
	})
	defer cancel()
	if got := computed.Load(); got != 0 {
		t.Fatalf("serial prefetch computed %d jobs eagerly", got)
	}
	v, err := ps[2].Wait()
	if err != nil || v != 2 {
		t.Fatalf("Wait: %v, %v", v, err)
	}
	if got := computed.Load(); got != 1 {
		t.Fatalf("computed %d jobs, want exactly the one waited on", got)
	}
	// Waiting twice must not recompute.
	if _, err := ps[2].Wait(); err != nil {
		t.Fatal(err)
	}
	if got := computed.Load(); got != 1 {
		t.Fatalf("second Wait recomputed (total %d)", got)
	}
}

func TestPrefetchParallelResolvesAll(t *testing.T) {
	ps, cancel := Prefetch(nil, 4, 20, func(i int) (int, error) { return i * 10, nil })
	defer cancel()
	for i, p := range ps {
		v, err := p.Wait()
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		if v != i*10 {
			t.Fatalf("job %d: got %d", i, v)
		}
	}
}

func TestPrefetchCancelStopsUnstarted(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	ps, cancel := Prefetch(nil, 2, 50, func(i int) (int, error) {
		if i < 2 {
			started <- struct{}{}
			<-release
		}
		return i, nil
	})
	<-started
	<-started
	// Release the in-flight jobs just before cancelling: cancel *joins*
	// the pool, so it must not be called while a job blocks forever.
	close(release)
	cancel()
	// After cancel returns the pool is drained: the first two jobs were in
	// flight and must have resolved with real values.
	for i := 0; i < 2; i++ {
		if v, err := ps[i].Wait(); err != nil || v != i {
			t.Fatalf("in-flight job %d: %v, %v", i, v, err)
		}
	}
	// The tail must resolve (with either a value or a cancellation error)
	// rather than block forever, and every Wait must return immediately
	// since cancel already joined the workers.
	cancelled := 0
	for i := 2; i < 50; i++ {
		if _, err := ps[i].Wait(); err != nil {
			cancelled++
		}
	}
	if cancelled == 0 {
		t.Log("note: all 50 jobs ran before cancel — scheduling-dependent, not a failure")
	}
}

func TestRegistry(t *testing.T) {
	Register(Experiment{
		ID:     "T1",
		Title:  "test experiment",
		Params: "none",
		Run: func(o Options) (*Table, error) {
			return &Table{ID: "T1", Title: "test", Header: []string{"w"}, Rows: [][]string{{itoa(o.Workers())}}}, nil
		},
	})

	if _, ok := Lookup("T1"); !ok {
		t.Fatal("T1 not found after Register")
	}
	found := false
	for _, info := range List() {
		if info.ID == "T1" && info.Title == "test experiment" {
			found = true
		}
	}
	if !found {
		t.Fatal("T1 missing from List")
	}

	res, err := RunOne("T1", Options{Parallelism: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.Rows[0][0] != "3" {
		t.Fatalf("options not threaded through: %v", res.Table.Rows)
	}
	if res.Workers != 3 {
		t.Fatalf("result workers = %d", res.Workers)
	}

	if _, err := RunOne("NOPE", Options{}); err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("unknown ID error: %v", err)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	Register(Experiment{ID: "T1", Run: func(Options) (*Table, error) { return nil, nil }})
}

func itoa(v int) string { return fmt.Sprintf("%d", v) }

func TestTableRender(t *testing.T) {
	tab := &Table{
		ID:     "EX",
		Title:  "demo",
		Header: []string{"col", "value"},
		Rows:   [][]string{{"a", "1"}, {"bb", "22"}},
		Notes:  []string{"a note"},
	}
	out := tab.Render()
	for _, want := range []string{"EX — demo", "col", "bb", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
