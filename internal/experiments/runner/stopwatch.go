package runner

import "time"

// Stopwatch is the sanctioned wall-clock access for probe, engine and
// fold code: the balint wallclock analyzer forbids direct time.Now /
// time.Since calls on those paths and allowlists exactly StartWall and
// Stopwatch.Wall. Concentrating clock reads here keeps the
// nondeterministic timing fields of reports confined to the few fields
// the byte-identity diffs already exclude.
type Stopwatch struct {
	start time.Time
}

// StartWall starts a wall-clock stopwatch.
func StartWall() Stopwatch { return Stopwatch{start: time.Now()} }

// Wall returns the elapsed wall time since StartWall.
func (s Stopwatch) Wall() time.Duration { return time.Since(s.start) }

// WallStats folds the elapsed wall time into the trio of timing fields
// the campaign, fuzz and matrix reports share: the raw duration, rounded
// milliseconds, and probes per second (0 when no measurable time
// passed).
func (s Stopwatch) WallStats(probes int) (wall time.Duration, wallMS, perSec float64) {
	wall = s.Wall()
	wallMS = float64(wall.Microseconds()) / 1e3
	if secs := wall.Seconds(); secs > 0 {
		perSec = float64(probes) / secs
	}
	return wall, wallMS, perSec
}
