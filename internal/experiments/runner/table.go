// Package runner is the parallel experiment engine: a registry of
// experiments (each registered by ID with its default parameters), a
// worker-pool executor with deterministic result ordering, and structured
// JSON-serializable results with wall-clock and probe-count statistics.
//
// The engine owns all concurrency of the experiment layer. Individual
// simulation probes (sim.Run) stay strictly single-threaded — that is the
// determinism contract the paper's indistinguishability arguments rely
// on — and the pool fans out only *independent* probes: per-candidate
// falsifier sweeps, (n, t) grid points, and interpolation probes whose
// inputs do not depend on each other's outcomes. A registered experiment
// must therefore produce byte-identical tables at every parallelism level.
package runner

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result: structured rows plus notes. It is
// JSON-serializable, so `baexp exp -json` can emit it for downstream
// tooling.
type Table struct {
	ID     string     `json:"id"`
	Title  string     `json:"title"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	Notes  []string   `json:"notes,omitempty"`
}

// Render formats the table as aligned monospace text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len([]rune(h))
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len([]rune(cell)) > widths[i] {
				widths[i] = len([]rune(cell))
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len([]rune(c))
			}
			parts[i] = c + strings.Repeat(" ", pad)
		}
		b.WriteString("  " + strings.Join(parts, "  ") + "\n")
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}
