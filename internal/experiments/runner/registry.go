package runner

import (
	"context"
	"fmt"
	"sync"
	"time"

	"expensive/internal/obs"
	"expensive/internal/sim"
)

// Options tunes one experiment run.
type Options struct {
	// Parallelism is the worker count for the experiment's independent
	// probes; <= 0 means runtime.NumCPU(). 1 forces the serial path.
	Parallelism int
	// Ctx cancels the run; nil means context.Background().
	Ctx context.Context
}

// Workers resolves the effective worker count.
func (o Options) Workers() int { return Workers(o.Parallelism) }

// Context resolves the effective context.
func (o Options) Context() context.Context {
	if o.Ctx == nil {
		return context.Background()
	}
	return o.Ctx
}

// Experiment is a registered, concurrently executable experiment: an ID,
// a one-line title, a human-readable description of the recorded default
// parameters, and the run function. Run must be deterministic — the table
// it returns must be byte-identical at every parallelism level.
type Experiment struct {
	ID     string
	Title  string
	Params string
	Run    func(Options) (*Table, error)
}

// Info is the registration metadata of one experiment (no run function).
type Info struct {
	ID     string `json:"id"`
	Title  string `json:"title"`
	Params string `json:"params"`
}

var registry = struct {
	mu    sync.RWMutex
	byID  map[string]Experiment
	order []string
}{byID: make(map[string]Experiment)}

// Register adds an experiment to the registry. It panics on an empty ID,
// a missing run function, or a duplicate registration — all programmer
// errors at package-init time.
func Register(e Experiment) {
	if e.ID == "" || e.Run == nil {
		panic("runner: Register needs an ID and a Run function")
	}
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if _, dup := registry.byID[e.ID]; dup {
		panic(fmt.Sprintf("runner: experiment %s registered twice", e.ID))
	}
	registry.byID[e.ID] = e
	registry.order = append(registry.order, e.ID)
}

// Lookup returns the experiment registered under id.
func Lookup(id string) (Experiment, bool) {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	e, ok := registry.byID[id]
	return e, ok
}

// IDs lists the registered experiment IDs in registration order.
func IDs() []string {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	return append([]string(nil), registry.order...)
}

// List returns the registration metadata in registration order.
func List() []Info {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	out := make([]Info, 0, len(registry.order))
	for _, id := range registry.order {
		e := registry.byID[id]
		out = append(out, Info{ID: e.ID, Title: e.Title, Params: e.Params})
	}
	return out
}

// Result couples an experiment table with execution statistics.
type Result struct {
	Table *Table `json:"table"`
	// Wall is the experiment's wall-clock time.
	Wall time.Duration `json:"-"`
	// WallMS mirrors Wall in milliseconds for the JSON encoding.
	WallMS float64 `json:"wall_ms"`
	// Probes counts the simulation probes (sim.Run invocations) the
	// experiment issued, including speculative ones.
	Probes int64 `json:"probes"`
	// Workers is the parallelism level the experiment ran with.
	Workers int `json:"workers"`
}

// UnknownIDError builds the canonical error for an unregistered
// experiment ID.
func UnknownIDError(id string) error {
	return fmt.Errorf("unknown experiment %q (have %v)", id, IDs())
}

// RunOne executes one registered experiment and reports its table plus
// wall-clock and probe-count statistics. Experiments run one at a time —
// parallelism lives inside each experiment — so the probe counter delta
// is attributable to this run.
func RunOne(id string, opts Options) (*Result, error) {
	e, ok := Lookup(id)
	if !ok {
		return nil, UnknownIDError(id)
	}
	before := sim.Runs()
	sw := StartWall()
	sink := obs.From(opts.Ctx).Sink()
	if sink != nil {
		sink.Emit("experiment-start", "id", id, "title", e.Title)
	}
	tab, err := e.Run(opts)
	if err != nil {
		return nil, err
	}
	wall := sw.Wall()
	if sink != nil {
		sink.Emit("experiment-end", "id", id, "probes", sim.Runs()-before)
	}
	obs.From(opts.Ctx).Counter("experiment_runs").Inc()
	return &Result{
		Table: tab,
		Wall:  wall,
		//balint:allow obstaint Result.wall_ms is the runner's deliberate timing block, the always-on analogue of Grid.Timing: the byte-identity contract covers experiment Tables, and Result exists to carry run stats next to one
		WallMS:  float64(wall.Microseconds()) / 1e3,
		Probes:  sim.Runs() - before,
		Workers: opts.Workers(),
	}, nil
}

// RunMany executes the given experiments in order (all of them when ids
// is empty), each with per-experiment statistics.
func RunMany(ids []string, opts Options) ([]*Result, error) {
	if len(ids) == 0 {
		ids = IDs()
	}
	out := make([]*Result, 0, len(ids))
	for _, id := range ids {
		res, err := RunOne(id, opts)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}
