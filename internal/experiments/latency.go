package experiments

import (
	"fmt"

	"expensive/internal/crypto/sig"
	"expensive/internal/msg"
	"expensive/internal/proc"
	"expensive/internal/protocols/dolevstrong"
	"expensive/internal/protocols/floodset"
	"expensive/internal/sim"
)

// E12 measures good-case latency: worst-case round bounds (Dolev-Strong's
// fixed t+1; plain FloodSet's t+1) versus the early-deciding FloodSet that
// adapts to the actual number of crashes f — the latency counterpart of
// the paper's theme that worst-case costs are unavoidable while good cases
// can be cheap. The crash schedule is the adversarial cascade: one crash
// per round with empty delivery.
func E12(n, t int) (*Table, error) {
	scheme := sig.NewIdeal("e12")
	tab := &Table{
		ID:    "E12",
		Title: fmt.Sprintf("Good-case latency — early stopping adapts to actual faults f (n=%d t=%d)", n, t),
		Header: []string{
			"actual crashes f", "floodset-early (rounds)", "f+2",
			"floodset (rounds)", "dolev-strong (rounds)", "t+1",
		},
	}
	proposals := make([]msg.Value, n)
	for i := range proposals {
		proposals[i] = msg.Value(fmt.Sprintf("v%d", n-i))
	}
	for f := 0; f <= t; f++ {
		specs := make(map[proc.ID]sim.CrashSpec, f)
		for i := 0; i < f; i++ {
			specs[proc.ID(i)] = sim.CrashSpec{Round: i + 1}
		}
		correct := proc.Range(proc.ID(f), proc.ID(n))

		early, err := latencyOf(floodset.NewEarlyStopping(floodset.Config{N: n, T: t}),
			n, t, floodset.RoundBound(t), proposals, sim.Crash(specs), correct)
		if err != nil {
			return nil, fmt.Errorf("E12 early f=%d: %w", f, err)
		}
		plain, err := latencyOf(floodset.New(floodset.Config{N: n, T: t}),
			n, t, floodset.RoundBound(t), proposals, sim.Crash(specs), correct)
		if err != nil {
			return nil, fmt.Errorf("E12 plain f=%d: %w", f, err)
		}
		// Dolev-Strong: the sender must stay correct for a comparable run;
		// crash the highest IDs instead.
		dsSpecs := make(map[proc.ID]sim.CrashSpec, f)
		for i := 0; i < f; i++ {
			dsSpecs[proc.ID(n-1-i)] = sim.CrashSpec{Round: i + 1}
		}
		dsCorrect := proc.Range(0, proc.ID(n-f))
		ds, err := latencyOf(dolevstrong.New(dolevstrong.Config{
			N: n, T: t, Sender: 0, Scheme: scheme, Tag: "e12", Default: "⊥",
		}), n, t, dolevstrong.RoundBound(t), proposals, sim.Crash(dsSpecs), dsCorrect)
		if err != nil {
			return nil, fmt.Errorf("E12 ds f=%d: %w", f, err)
		}

		if early > f+2 {
			return nil, fmt.Errorf("E12: early stopping took %d > f+2 = %d rounds", early, f+2)
		}
		tab.Rows = append(tab.Rows, []string{
			itoa(f), itoa(early), itoa(f + 2), itoa(plain), itoa(ds), itoa(t + 1),
		})
	}
	tab.Notes = append(tab.Notes,
		"early stopping decides in <= f+2 rounds under f actual crashes; the fixed-bound protocols always pay t+1",
		"latency adapts to actual faults — the paper shows worst-case *messages* cannot",
	)
	return tab, nil
}

func latencyOf(factory sim.Factory, n, t, bound int, proposals []msg.Value, plan sim.FaultPlan, correct proc.Set) (int, error) {
	// Decision rounds are part of the lean record — no full trace needed.
	cfg := sim.Config{N: n, T: t, Proposals: proposals, MaxRounds: bound + 1, Recording: sim.RecordDecisions}
	e, err := sim.Run(cfg, factory, plan)
	if err != nil {
		return 0, err
	}
	if _, err := e.CommonDecision(correct); err != nil {
		return 0, err
	}
	maxR := 0
	for _, id := range correct.Members() {
		b := e.Behavior(id)
		r := b.DecisionRound()
		if r == 0 {
			r = b.RoundsRecorded() + 1
		}
		if r > maxR {
			maxR = r
		}
	}
	return maxR, nil
}
