package experiments

import (
	"fmt"

	"expensive/internal/crypto/sig"
	"expensive/internal/experiments/runner"
	"expensive/internal/lowerbound"
	"expensive/internal/msg"
	"expensive/internal/proc"
	"expensive/internal/protocols/eig"
	"expensive/internal/protocols/external"
	"expensive/internal/protocols/ic"
	"expensive/internal/protocols/phaseking"
	"expensive/internal/protocols/reduction"
	"expensive/internal/sim"
)

func uniformVals(n int, v msg.Value) []msg.Value {
	out := make([]msg.Value, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func countRun(factory sim.Factory, n, t, rounds int, proposals []msg.Value) (int, msg.Value, error) {
	// Callers read the common decision and the message count only — lean tier.
	cfg := sim.Config{N: n, T: t, Proposals: proposals, MaxRounds: rounds + 2, Recording: sim.RecordDecisions}
	e, err := sim.Run(cfg, factory, sim.NoFaults{})
	if err != nil {
		return 0, msg.NoDecision, err
	}
	d, err := e.CommonDecision(proc.Universe(n))
	if err != nil {
		return 0, msg.NoDecision, err
	}
	return e.CorrectMessages(), d, nil
}

// E5 measures Algorithm 1's zero-message overhead: weak consensus built on
// four different agreement problems has exactly the message complexity of
// the underlying protocol (Theorem 3's mechanism).
func E5(n, t int) (*Table, error) {
	scheme := sig.NewIdeal("e5")
	auth := external.NewAuthority(scheme)
	tx0, err := auth.NewTx(external.ClientBase, "block-0")
	if err != nil {
		return nil, err
	}
	tx1, err := auth.NewTx(external.ClientBase+1, "block-1")
	if err != nil {
		return nil, err
	}

	type underlying struct {
		name    string
		factory sim.Factory
		rounds  int
		c0, c1  []msg.Value
	}
	var cases []underlying
	if n > 4*t {
		cases = append(cases, underlying{
			name:    "strong consensus (phase-king)",
			factory: phaseking.New(phaseking.Config{N: n, T: t}),
			rounds:  phaseking.RoundBound(t),
			c0:      uniformVals(n, msg.Zero),
			c1:      uniformVals(n, msg.One),
		})
	}
	if n > 3*t {
		cases = append(cases, underlying{
			name:    "interactive consistency (EIG)",
			factory: eig.New(eig.Config{N: n, T: t, Default: msg.One}),
			rounds:  eig.RoundBound(t),
			c0:      uniformVals(n, msg.Zero),
			c1:      uniformVals(n, msg.One),
		})
	}
	cases = append(cases,
		underlying{
			name:    "interactive consistency (n × Dolev-Strong)",
			factory: ic.New(ic.Config{N: n, T: t, Scheme: scheme, Default: msg.One}),
			rounds:  ic.RoundBound(t),
			c0:      uniformVals(n, msg.Zero),
			c1:      uniformVals(n, msg.One),
		},
		underlying{
			name:    "external validity (IC + first-valid)",
			factory: external.New(external.Config{N: n, T: t, Scheme: scheme, Authority: auth, Fallback: tx0}),
			rounds:  external.RoundBound(t),
			c0:      uniformVals(n, tx0),
			c1:      uniformVals(n, tx1),
		},
	)

	tab := &Table{
		ID:    "E5",
		Title: fmt.Sprintf("Theorem 3 / Algorithm 1 — zero-message reduction to weak consensus (n=%d t=%d)", n, t),
		Header: []string{
			"underlying problem P", "msgs P (c0)", "msgs weak-from-P (propose 0)",
			"msgs P (c1)", "msgs weak-from-P (propose 1)", "overhead",
		},
	}
	for _, u := range cases {
		spec, err := reduction.DeriveAlg1(u.factory, n, t, u.rounds+2, u.c0, u.c1)
		if err != nil {
			return nil, fmt.Errorf("E5 %s: %w", u.name, err)
		}
		wrapped := reduction.WeakFromAgreement(u.factory, spec)

		m0, _, err := countRun(u.factory, n, t, u.rounds, u.c0)
		if err != nil {
			return nil, fmt.Errorf("E5 %s: %w", u.name, err)
		}
		w0, d0, err := countRun(wrapped, n, t, u.rounds, uniformVals(n, msg.Zero))
		if err != nil {
			return nil, fmt.Errorf("E5 %s: %w", u.name, err)
		}
		m1, _, err := countRun(u.factory, n, t, u.rounds, u.c1)
		if err != nil {
			return nil, fmt.Errorf("E5 %s: %w", u.name, err)
		}
		w1, d1, err := countRun(wrapped, n, t, u.rounds, uniformVals(n, msg.One))
		if err != nil {
			return nil, fmt.Errorf("E5 %s: %w", u.name, err)
		}
		if d0 != msg.Zero || d1 != msg.One {
			return nil, fmt.Errorf("E5 %s: weak validity broken (decided %q/%q)", u.name, d0, d1)
		}
		overhead := "0 msgs"
		if w0 != m0 || w1 != m1 {
			overhead = "NONZERO (bug)"
		}
		tab.Rows = append(tab.Rows, []string{u.name, itoa(m0), itoa(w0), itoa(m1), itoa(w1), overhead})
	}
	tab.Notes = append(tab.Notes,
		"identical columns demonstrate the reduction exchanges no extra message — the Ω(t²) bound transfers verbatim",
	)
	return tab, nil
}

// E8 runs the Corollary 1 pipeline: the sub-quadratic external-validity
// protocol is lifted to weak consensus by Algorithm 1 and falsified; the
// sound IC-based construction survives with quadratic traffic. The two
// lift-and-falsify pipelines are independent and fan out across the
// worker pool.
func E8(n, t int, opts runner.Options) (*Table, error) {
	scheme := sig.NewIdeal("e8")
	auth := external.NewAuthority(scheme)
	tx0, err := auth.NewTx(external.ClientBase, "block-0")
	if err != nil {
		return nil, err
	}
	tx1, err := auth.NewTx(external.ClientBase+1, "block-1")
	if err != nil {
		return nil, err
	}

	tab := &Table{
		ID:     "E8",
		Title:  fmt.Sprintf("Corollary 1 — External Validity agreement is quadratic too (n=%d t=%d)", n, t),
		Header: []string{"protocol", "complexity", "lifted via Alg. 1", "falsifier verdict", "max msgs", "t²/32"},
	}

	lopts := lowerbound.Options{Parallelism: opts.Parallelism, Ctx: opts.Context()}
	pipelines := []func() ([]string, error){
		// Cheap external protocol: must be falsified, certificate re-checked.
		func() ([]string, error) {
			cheapInner := external.CheapLeader(n, auth, tx0)
			spec, err := reduction.DeriveAlg1(cheapInner, n, t, external.CheapLeaderRounds+1, uniformVals(n, tx0), uniformVals(n, tx1))
			if err != nil {
				return nil, err
			}
			lifted := reduction.WeakFromAgreement(cheapInner, spec)
			rep, err := lowerbound.Falsify("cheap-external", lifted, external.CheapLeaderRounds, n, t, lopts)
			if err != nil {
				return nil, err
			}
			verdict := "survived (unexpected)"
			if rep.Broken() {
				if err := lowerbound.CheckViolation(rep.Violation, lifted, external.CheapLeaderRounds); err != nil {
					return nil, fmt.Errorf("E8 certificate recheck: %w", err)
				}
				verdict = rep.Violation.Kind + " violated (machine-checked)"
			}
			return []string{
				"leader-announce (cheap)", "n-1 msgs", "yes", verdict, itoa(rep.MaxCorrectMessages), itoa(rep.Threshold),
			}, nil
		},
		// Sound external protocol: must respect the budget.
		func() ([]string, error) {
			soundInner := external.New(external.Config{N: n, T: t, Scheme: scheme, Authority: auth, Fallback: tx0})
			soundSpec, err := reduction.DeriveAlg1(soundInner, n, t, external.RoundBound(t)+2, uniformVals(n, tx0), uniformVals(n, tx1))
			if err != nil {
				return nil, err
			}
			liftedSound := reduction.WeakFromAgreement(soundInner, soundSpec)
			repSound, err := lowerbound.Falsify("sound-external", liftedSound, external.RoundBound(t), n, t, lopts)
			if err != nil {
				return nil, err
			}
			verdictSound := "budget respected (sound)"
			if repSound.Broken() {
				verdictSound = "falsified (unexpected)"
			}
			return []string{
				"IC + first-valid (sound)", "Θ(n³) msgs", "yes", verdictSound, itoa(repSound.MaxCorrectMessages), itoa(repSound.Threshold),
			}, nil
		},
	}
	rows, err := runner.Map(opts.Context(), opts.Workers(), len(pipelines), func(i int) ([]string, error) {
		return pipelines[i]()
	})
	if err != nil {
		return nil, err
	}
	tab.Rows = rows
	tab.Notes = append(tab.Notes,
		"both protocols have two fully-correct executions deciding different transactions, so Corollary 1 applies",
	)
	return tab, nil
}
