package experiments

import (
	"fmt"

	"expensive/internal/crypto/sig"
	"expensive/internal/msg"
	"expensive/internal/proc"
	"expensive/internal/protocols/dolevstrong"
	"expensive/internal/protocols/eig"
	"expensive/internal/protocols/ic"
	"expensive/internal/protocols/phaseking"
	"expensive/internal/sim"
)

// E9 measures the message and round scaling of the matching (upper-bound)
// protocols against the t²/32 floor: the quadratic envelope the paper's
// lower bound says is unavoidable.
func E9(sizes []int) (*Table, error) {
	scheme := sig.NewIdeal("e9")
	tab := &Table{
		ID:    "E9",
		Title: "Upper bounds — message/round scaling of the matching protocols vs. the t²/32 floor",
		Header: []string{
			"protocol", "n", "t", "rounds used", "round bound",
			"msgs (correct)", "t²/32", "msgs/n²",
		},
	}
	for _, n := range sizes {
		t := (n - 1) / 3
		if t < 1 {
			t = 1
		}

		// Dolev-Strong Byzantine broadcast, t < n.
		tBB := n / 2
		bb := dolevstrong.New(dolevstrong.Config{N: n, T: tBB, Sender: 0, Scheme: scheme, Tag: "bb", Default: "⊥"})
		if err := addScalingRow(tab, "dolev-strong BB", bb, n, tBB, dolevstrong.RoundBound(tBB)); err != nil {
			return nil, err
		}

		// Authenticated IC (n parallel broadcasts).
		icf := ic.New(ic.Config{N: n, T: t, Scheme: scheme, Default: msg.One})
		if err := addScalingRow(tab, "interactive consistency (auth)", icf, n, t, ic.RoundBound(t)); err != nil {
			return nil, err
		}

		// Phase-King strong consensus, n > 4t.
		tPK := (n - 1) / 4
		if tPK >= 1 {
			pk := phaseking.New(phaseking.Config{N: n, T: tPK})
			if err := addScalingRow(tab, "phase-king", pk, n, tPK, phaseking.RoundBound(tPK)); err != nil {
				return nil, err
			}
		}

		// EIG only at small n (message size is exponential in t).
		if n <= 8 {
			ef := eig.New(eig.Config{N: n, T: t, Default: msg.One})
			if err := addScalingRow(tab, "interactive consistency (EIG)", ef, n, t, eig.RoundBound(t)); err != nil {
				return nil, err
			}
		}
	}
	tab.Notes = append(tab.Notes,
		"msgs/n² exposes the quadratic envelope: roughly constant per protocol family as n grows",
		"the t²/32 column is the Theorem 2 floor every entry must (and does) clear",
	)
	return tab, nil
}

func addScalingRow(tab *Table, name string, factory sim.Factory, n, t, bound int) error {
	proposals := make([]msg.Value, n)
	for i := range proposals {
		proposals[i] = msg.Zero
	}
	cfg := sim.Config{N: n, T: t, Proposals: proposals, MaxRounds: bound + 2}
	e, err := sim.Run(cfg, factory, sim.NoFaults{})
	if err != nil {
		return fmt.Errorf("E9 %s n=%d: %w", name, n, err)
	}
	if _, err := e.CommonDecision(proc.Universe(n)); err != nil {
		return fmt.Errorf("E9 %s n=%d: %w", name, n, err)
	}
	msgs := e.CorrectMessages()
	floor := t * t / 32
	tab.Rows = append(tab.Rows, []string{
		name, itoa(n), itoa(t), itoa(e.Rounds), itoa(bound),
		itoa(msgs), itoa(floor), fmt.Sprintf("%.2f", float64(msgs)/float64(n*n)),
	})
	if msgs < floor {
		return fmt.Errorf("E9 %s n=%d: %d messages below the t²/32 floor %d — contradicts Theorem 2",
			name, n, msgs, floor)
	}
	return nil
}

// AllIDs lists the experiment identifiers in order.
func AllIDs() []string {
	return []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12"}
}

// Run executes one experiment by ID with its default parameters.
func Run(id string) (*Table, error) {
	switch id {
	case "E1":
		return E1(DefaultE1())
	case "E2":
		return E2(20, 8, 3)
	case "E10":
		return E10(8, 2)
	case "E11":
		return E11()
	case "E12":
		return E12(10, 4)
	case "E3":
		return E3(40, 16)
	case "E4":
		return E4(24, 8)
	case "E5":
		return E5(6, 1)
	case "E6":
		return E6([][2]int{{4, 1}, {4, 2}, {5, 2}})
	case "E7":
		return E7(3)
	case "E8":
		return E8(40, 16)
	case "E9":
		return E9([]int{4, 8, 16, 24})
	default:
		return nil, fmt.Errorf("unknown experiment %q (have %v)", id, AllIDs())
	}
}
