package experiments

import (
	"fmt"

	"expensive/internal/crypto/sig"
	"expensive/internal/experiments/runner"
	"expensive/internal/msg"
	"expensive/internal/proc"
	"expensive/internal/protocols/dolevstrong"
	"expensive/internal/protocols/eig"
	"expensive/internal/protocols/ic"
	"expensive/internal/protocols/phaseking"
	"expensive/internal/sim"
)

// E9 measures the message and round scaling of the matching (upper-bound)
// protocols against the t²/32 floor: the quadratic envelope the paper's
// lower bound says is unavoidable. Every (protocol, n) grid point is an
// independent fault-free run fanned out across the worker pool; rows land
// in grid order.
func E9(sizes []int, opts runner.Options) (*Table, error) {
	scheme := sig.NewIdeal("e9")
	tab := &Table{
		ID:    "E9",
		Title: "Upper bounds — message/round scaling of the matching protocols vs. the t²/32 floor",
		Header: []string{
			"protocol", "n", "t", "rounds used", "round bound",
			"msgs (correct)", "t²/32", "msgs/n²",
		},
	}
	type point struct {
		name    string
		factory sim.Factory
		n, t    int
		bound   int
	}
	var grid []point
	for _, n := range sizes {
		t := (n - 1) / 3
		if t < 1 {
			t = 1
		}

		// Dolev-Strong Byzantine broadcast, t < n.
		tBB := n / 2
		grid = append(grid, point{
			name: "dolev-strong BB", n: n, t: tBB, bound: dolevstrong.RoundBound(tBB),
			factory: dolevstrong.New(dolevstrong.Config{N: n, T: tBB, Sender: 0, Scheme: scheme, Tag: "bb", Default: "⊥"}),
		})

		// Authenticated IC (n parallel broadcasts).
		grid = append(grid, point{
			name: "interactive consistency (auth)", n: n, t: t, bound: ic.RoundBound(t),
			factory: ic.New(ic.Config{N: n, T: t, Scheme: scheme, Default: msg.One}),
		})

		// Phase-King strong consensus, n > 4t.
		if tPK := (n - 1) / 4; tPK >= 1 {
			grid = append(grid, point{
				name: "phase-king", n: n, t: tPK, bound: phaseking.RoundBound(tPK),
				factory: phaseking.New(phaseking.Config{N: n, T: tPK}),
			})
		}

		// EIG only at small n (message size is exponential in t).
		if n <= 8 {
			grid = append(grid, point{
				name: "interactive consistency (EIG)", n: n, t: t, bound: eig.RoundBound(t),
				factory: eig.New(eig.Config{N: n, T: t, Default: msg.One}),
			})
		}
	}
	rows, err := runner.Map(opts.Context(), opts.Workers(), len(grid), func(i int) ([]string, error) {
		p := grid[i]
		return scalingRow(p.name, p.factory, p.n, p.t, p.bound)
	})
	if err != nil {
		return nil, err
	}
	tab.Rows = rows
	tab.Notes = append(tab.Notes,
		"msgs/n² exposes the quadratic envelope: roughly constant per protocol family as n grows",
		"the t²/32 column is the Theorem 2 floor every entry must (and does) clear",
	)
	return tab, nil
}

func scalingRow(name string, factory sim.Factory, n, t, bound int) ([]string, error) {
	proposals := make([]msg.Value, n)
	for i := range proposals {
		proposals[i] = msg.Zero
	}
	// The row reads decisions and message counts only — lean tier.
	cfg := sim.Config{N: n, T: t, Proposals: proposals, MaxRounds: bound + 2, Recording: sim.RecordDecisions}
	e, err := sim.Run(cfg, factory, sim.NoFaults{})
	if err != nil {
		return nil, fmt.Errorf("E9 %s n=%d: %w", name, n, err)
	}
	if _, err := e.CommonDecision(proc.Universe(n)); err != nil {
		return nil, fmt.Errorf("E9 %s n=%d: %w", name, n, err)
	}
	msgs := e.CorrectMessages()
	floor := t * t / 32
	if msgs < floor {
		return nil, fmt.Errorf("E9 %s n=%d: %d messages below the t²/32 floor %d — contradicts Theorem 2",
			name, n, msgs, floor)
	}
	return []string{
		name, itoa(n), itoa(t), itoa(e.Rounds), itoa(bound),
		itoa(msgs), itoa(floor), fmt.Sprintf("%.2f", float64(msgs)/float64(n*n)),
	}, nil
}
