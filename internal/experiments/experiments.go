// Package experiments regenerates every table and figure of the paper's
// argument as runnable experiments E1–E9 (see DESIGN.md §4 for the
// mapping). Each experiment returns a Table — structured rows plus notes —
// that cmd/baexp prints and EXPERIMENTS.md records; bench_test.go wraps
// each one in a testing.B benchmark.
package experiments

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render formats the table as aligned monospace text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len([]rune(h))
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len([]rune(cell)) > widths[i] {
				widths[i] = len([]rune(cell))
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len([]rune(c))
			}
			parts[i] = c + strings.Repeat(" ", pad)
		}
		b.WriteString("  " + strings.Join(parts, "  ") + "\n")
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

func itoa(v int) string { return fmt.Sprintf("%d", v) }
