// Package experiments regenerates every table and figure of the paper's
// argument as runnable experiments E1–E12 (see DESIGN.md §4 for the
// mapping). Each experiment is registered by ID with its default
// parameters in the runner registry (see register.go); cmd/baexp runs
// them through the parallel engine and EXPERIMENTS.md records the
// outputs; bench_test.go wraps each one in a testing.B benchmark.
package experiments

import (
	"fmt"

	"expensive/internal/experiments/runner"
)

// Table is a rendered experiment result: structured rows plus notes. It
// lives in the runner package (the engine needs it without importing the
// experiments themselves); this alias keeps the historical name.
type Table = runner.Table

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

func itoa(v int) string { return fmt.Sprintf("%d", v) }
