package experiments_test

import (
	"encoding/json"
	"runtime"
	"strings"
	"testing"

	"expensive/internal/experiments"
	"expensive/internal/experiments/runner"
)

func TestAllExperimentsRun(t *testing.T) {
	for _, id := range experiments.AllIDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			if testing.Short() && (id == "E1" || id == "E6" || id == "E8") {
				t.Skip("slow experiment skipped in -short mode")
			}
			tab, err := experiments.Run(id)
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if len(tab.Rows) == 0 {
				t.Fatalf("%s: empty table", id)
			}
			out := tab.Render()
			if !strings.Contains(out, id) {
				t.Errorf("%s: render missing id:\n%s", id, out)
			}
			t.Logf("\n%s", out)
		})
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := experiments.Run("E99"); err == nil {
		t.Error("expected error for unknown experiment")
	}
}

// TestParallelDeterminism asserts the engine's core contract: a
// registered experiment run with Parallelism 1 (fully serial) and with
// NumCPU workers produces byte-identical Table output — both the
// rendered text and the JSON encoding. The heavyweight IDs (E1, E8) are
// excluded to keep the suite fast; their machinery — the parallel
// falsifier — is covered by the cheap E3 here and by the lowerbound
// package's own determinism test.
func TestParallelDeterminism(t *testing.T) {
	workers := runtime.NumCPU()
	if workers < 4 {
		// Still exercise real pool concurrency on small CI machines.
		workers = 4
	}
	for _, id := range []string{"E2", "E3", "E4", "E5", "E6", "E7", "E9", "E10", "E11", "E12"} {
		id := id
		t.Run(id, func(t *testing.T) {
			if testing.Short() && id == "E6" {
				t.Skip("slow experiment skipped in -short mode")
			}
			serial, err := experiments.RunWith(id, runner.Options{Parallelism: 1})
			if err != nil {
				t.Fatalf("serial: %v", err)
			}
			parallel, err := experiments.RunWith(id, runner.Options{Parallelism: workers})
			if err != nil {
				t.Fatalf("parallel(%d): %v", workers, err)
			}
			if s, p := serial.Render(), parallel.Render(); s != p {
				t.Errorf("rendered tables differ between -parallel 1 and -parallel %d:\n--- serial ---\n%s\n--- parallel ---\n%s", workers, s, p)
			}
			sj, err := json.Marshal(serial)
			if err != nil {
				t.Fatal(err)
			}
			pj, err := json.Marshal(parallel)
			if err != nil {
				t.Fatal(err)
			}
			if string(sj) != string(pj) {
				t.Errorf("JSON encodings differ between -parallel 1 and -parallel %d", workers)
			}
		})
	}
}
