package experiments_test

import (
	"strings"
	"testing"

	"expensive/internal/experiments"
)

func TestAllExperimentsRun(t *testing.T) {
	for _, id := range experiments.AllIDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			if testing.Short() && (id == "E1" || id == "E6" || id == "E8") {
				t.Skip("slow experiment skipped in -short mode")
			}
			tab, err := experiments.Run(id)
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if len(tab.Rows) == 0 {
				t.Fatalf("%s: empty table", id)
			}
			out := tab.Render()
			if !strings.Contains(out, id) {
				t.Errorf("%s: render missing id:\n%s", id, out)
			}
			t.Logf("\n%s", out)
		})
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := experiments.Run("E99"); err == nil {
		t.Error("expected error for unknown experiment")
	}
}
