package experiments

import (
	"errors"
	"fmt"

	"expensive/internal/crypto/sig"
	"expensive/internal/experiments/runner"
	"expensive/internal/solve"
	"expensive/internal/validity"
)

// E6 evaluates the general solvability theorem (Theorem 4): for every
// standard validity property and several (n, t) pairs, the containment
// condition verdict is compared against an *actual protocol derivation* —
// Algorithm 2 over IC (authenticated) or EIG (unauthenticated) — whose
// decisions are then checked on every input configuration. Every
// (problem, n, t) grid point is an independent job fanned out across the
// worker pool; rows land in grid order.
func E6(pairs [][2]int, opts runner.Options) (*Table, error) {
	tab := &Table{
		ID:    "E6",
		Title: "Theorem 4 — general solvability matrix: CC verdict vs. derived-protocol check",
		Header: []string{
			"problem", "n", "t", "trivial", "CC",
			"auth solvable", "auth derived+checked", "unauth solvable", "unauth derived+checked",
		},
	}
	type cell struct {
		p    validity.Problem
		n, t int
	}
	var grid []cell
	for _, nt := range pairs {
		for _, p := range validity.Standard(nt[0], nt[1]) {
			grid = append(grid, cell{p: p, n: nt[0], t: nt[1]})
		}
	}
	rows, err := runner.Map(opts.Context(), opts.Workers(), len(grid), func(i int) ([]string, error) {
		c := grid[i]
		verdict := c.p.Solve()
		authCell, err := deriveAndCheck(c.p, true)
		if err != nil {
			return nil, fmt.Errorf("E6 %s n=%d t=%d auth: %w", c.p.Name, c.n, c.t, err)
		}
		unauthCell, err := deriveAndCheck(c.p, false)
		if err != nil {
			return nil, fmt.Errorf("E6 %s n=%d t=%d unauth: %w", c.p.Name, c.n, c.t, err)
		}
		return []string{
			c.p.Name, itoa(c.n), itoa(c.t), yesNo(verdict.Trivial), yesNo(verdict.CC),
			yesNo(verdict.Authenticated), authCell,
			yesNo(verdict.Unauthenticated), unauthCell,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	tab.Rows = rows
	tab.Notes = append(tab.Notes,
		"'derived+checked ok' means Algorithm 2 produced a protocol whose decisions were verified admissible on every input configuration in I",
		"'unsolvable (refused)' means the derivation was refused exactly when the theorem says no protocol exists",
	)
	return tab, nil
}

// deriveAndCheck attempts the derivation and, on success, checks it on
// every input configuration (with silent Byzantine processes). The
// returned cell distinguishes successful derivation from theorem-mandated
// refusal — any other combination is an error.
func deriveAndCheck(p validity.Problem, authenticated bool) (string, error) {
	var d *solve.Derived
	var err error
	if authenticated {
		d, err = solve.Authenticated(p, sig.NewIdeal("e6"))
	} else {
		d, err = solve.Unauthenticated(p)
	}
	if err != nil {
		if errors.Is(err, solve.ErrUnsolvable) {
			return "unsolvable (refused)", nil
		}
		return "", err
	}
	// Exhaustive check over I is exponential; sample every configuration
	// for small problems, full configurations otherwise.
	configs := p.Configs()
	if len(configs) > 600 {
		configs = p.FullConfigs()
	}
	for _, c := range configs {
		if err := solve.Check(p, d, c, nil); err != nil {
			return "", fmt.Errorf("derived protocol failed on %v: %w", c, err)
		}
	}
	return "ok (" + d.Mode + ")", nil
}

// E7 reproduces Theorem 5: strong consensus satisfies CC iff n > 2t, with
// the witness configurations of the paper's proof printed at the failure
// points.
func E7(maxT int) (*Table, error) {
	tab := &Table{
		ID:     "E7",
		Title:  "Theorem 5 — strong consensus is authenticated-solvable only if n > 2t",
		Header: []string{"n", "t", "regime", "CC", "witness"},
	}
	for t := 1; t <= maxT; t++ {
		for _, n := range []int{2 * t, 2*t + 1} {
			if n < 2 || n > 8 {
				continue
			}
			p := validity.Strong(n, t)
			res := p.CheckCC()
			regime := "n = 2t"
			if n == 2*t+1 {
				regime = "n = 2t+1"
			}
			witness := "-"
			if !res.Holds {
				if res.Witness == nil {
					return nil, fmt.Errorf("E7: CC fails without witness at n=%d t=%d", n, t)
				}
				witness = res.Witness.String()
			}
			if res.Holds != (n > 2*t) {
				return nil, fmt.Errorf("E7: CC=%v at n=%d t=%d contradicts Theorem 5", res.Holds, n, t)
			}
			tab.Rows = append(tab.Rows, []string{itoa(n), itoa(t), regime, yesNo(res.Holds), witness})
		}
	}
	tab.Notes = append(tab.Notes,
		"each witness is a configuration containing two sub-configurations with disjoint admissible sets — the exact shape of the Theorem 5 proof",
	)
	return tab, nil
}
