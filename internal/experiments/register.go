package experiments

import (
	"expensive/internal/experiments/runner"
)

// init registers E1–E12 with their recorded default parameters. The
// registry replaces the old hand-written switch: every experiment is a
// uniformly addressable, concurrently executable unit, and adding a new
// one is a single Register call (see doc.go for the quickstart).
func init() {
	runner.Register(runner.Experiment{
		ID:     "E1",
		Title:  "Theorem 2 / Lemma 1 — the Ω(t²) falsifier vs. weak consensus protocols",
		Params: "cheap n=40 t=16; sound n=70 t=16",
		Run:    func(o runner.Options) (*Table, error) { return E1(DefaultE1(), o) },
	})
	runner.Register(runner.Experiment{
		ID:     "E2",
		Title:  "Figure 1 — isolation anatomy of the chained-echo protocol",
		Params: "n=20 t=8 isolate@3",
		Run:    func(runner.Options) (*Table, error) { return E2(20, 8, 3) },
	})
	runner.Register(runner.Experiment{
		ID:     "E3",
		Title:  "Figure 2 / Lemmas 3-5 — the construction narrative on the star protocol",
		Params: "n=40 t=16",
		Run:    func(o runner.Options) (*Table, error) { return E3(40, 16, o) },
	})
	runner.Register(runner.Experiment{
		ID:     "E4",
		Title:  "Lemma 2 / Algorithm 4 — swap_omission on the leader protocol",
		Params: "n=24 t=8",
		Run:    func(runner.Options) (*Table, error) { return E4(24, 8) },
	})
	runner.Register(runner.Experiment{
		ID:     "E5",
		Title:  "Theorem 3 / Algorithm 1 — zero-message reduction to weak consensus",
		Params: "n=6 t=1",
		Run:    func(runner.Options) (*Table, error) { return E5(6, 1) },
	})
	runner.Register(runner.Experiment{
		ID:     "E6",
		Title:  "Theorem 4 — general solvability matrix: CC verdict vs. derived-protocol check",
		Params: "(n,t) ∈ {(4,1),(4,2),(5,2)}",
		Run:    func(o runner.Options) (*Table, error) { return E6([][2]int{{4, 1}, {4, 2}, {5, 2}}, o) },
	})
	runner.Register(runner.Experiment{
		ID:     "E7",
		Title:  "Theorem 5 — strong consensus is authenticated-solvable only if n > 2t",
		Params: "t <= 3",
		Run:    func(runner.Options) (*Table, error) { return E7(3) },
	})
	runner.Register(runner.Experiment{
		ID:     "E8",
		Title:  "Corollary 1 — External Validity agreement is quadratic too",
		Params: "n=40 t=16",
		Run:    func(o runner.Options) (*Table, error) { return E8(40, 16, o) },
	})
	runner.Register(runner.Experiment{
		ID:     "E9",
		Title:  "Upper bounds — message/round scaling vs. the t²/32 floor",
		Params: "n ∈ {4,8,16,24}",
		Run:    func(o runner.Options) (*Table, error) { return E9([]int{4, 8, 16, 24}, o) },
	})
	runner.Register(runner.Experiment{
		ID:     "E10",
		Title:  "Failure-model hierarchy — crash ⊊ omission ⊊ Byzantine",
		Params: "n=8 t=2",
		Run:    func(runner.Options) (*Table, error) { return E10(8, 2) },
	})
	runner.Register(runner.Experiment{
		ID:     "E11",
		Title:  "Ablations — each design choice is load-bearing",
		Params: "per-construction fixtures",
		Run:    func(runner.Options) (*Table, error) { return E11() },
	})
	runner.Register(runner.Experiment{
		ID:     "E12",
		Title:  "Good-case latency — early stopping adapts to actual faults",
		Params: "n=10 t=4",
		Run:    func(runner.Options) (*Table, error) { return E12(10, 4) },
	})
}

// AllIDs lists the experiment identifiers in registration order.
func AllIDs() []string { return runner.IDs() }

// Run executes one experiment by ID with its default parameters and
// default parallelism (NumCPU workers).
func Run(id string) (*Table, error) { return RunWith(id, runner.Options{}) }

// RunWith executes one experiment by ID with explicit engine options.
func RunWith(id string, opts runner.Options) (*Table, error) {
	e, ok := runner.Lookup(id)
	if !ok {
		return nil, runner.UnknownIDError(id)
	}
	return e.Run(opts)
}
