package experiments

import (
	"fmt"

	"crypto/sha256"
	"encoding/hex"

	"expensive/internal/crypto/sig"
	"expensive/internal/experiments/runner"
	"expensive/internal/lowerbound"
	"expensive/internal/msg"
	"expensive/internal/omission"
	"expensive/internal/proc"
	"expensive/internal/protocols/cheap"
	"expensive/internal/protocols/ic"
	"expensive/internal/protocols/phaseking"
	"expensive/internal/protocols/weak"
	"expensive/internal/sim"
)

// Candidates returns the weak consensus protocol catalogue the
// lower-bound experiments sweep: the sub-quadratic strawmen (which must be
// falsified) and the sound quadratic constructions (which must exceed the
// budget). Sound entries may require larger n for their resilience bound.
func Candidates() []lowerbound.Candidate {
	return []lowerbound.Candidate{
		{
			Name: "silent", Sound: false, Complexity: "0 msgs",
			Rounds: func(int, int) int { return cheap.SilentRounds },
			New:    func(n, t int) (sim.Factory, error) { return cheap.Silent(), nil },
		},
		{
			Name: "leader", Sound: false, Complexity: "n-1 msgs",
			Rounds: func(int, int) int { return cheap.LeaderRounds },
			New:    func(n, t int) (sim.Factory, error) { return cheap.Leader(n), nil },
		},
		{
			Name: "star", Sound: false, Complexity: "2(n-1) msgs",
			Rounds: func(int, int) int { return cheap.StarRounds },
			New:    func(n, t int) (sim.Factory, error) { return cheap.Star(n), nil },
		},
		{
			Name: "gossip-k3", Sound: false, Complexity: "3n msgs",
			Rounds: func(int, int) int { return cheap.GossipRounds },
			New:    func(n, t int) (sim.Factory, error) { return cheap.Gossip(n, 3), nil },
		},
		{
			// The round bounds of the sound constructions are closed-form
			// (phaseking.RoundBound, ic.RoundBound) — Rounds must not rebuild
			// and discard a whole protocol stack to learn them.
			Name: "phase-king", Sound: true, Complexity: "Θ(n²·t) msgs, n > 4t",
			Rounds: func(n, t int) int { return phaseking.RoundBound(t) },
			New: func(n, t int) (sim.Factory, error) {
				if n <= 4*t {
					return nil, fmt.Errorf("phase-king needs n > 4t")
				}
				f, _ := weak.ViaPhaseKing(n, t)
				return f, nil
			},
		},
		{
			Name: "weak-via-ic", Sound: true, Complexity: "Θ(n³) msgs (n×Dolev-Strong), any t < n",
			Rounds: func(n, t int) int { return ic.RoundBound(t) },
			New: func(n, t int) (sim.Factory, error) {
				f, _ := weak.ViaIC(n, t, sig.NewIdeal("e1-ic"))
				return f, nil
			},
		},
	}
}

// E1Params fixes the (n, t) grid of the falsifier sweep. Cheap protocols
// run at (cheapN, cheapT); sound ones at their resilience-compatible size.
type E1Params struct {
	CheapN, CheapT int
	SoundN, SoundT int
}

// DefaultE1 is the configuration used by the recorded experiment.
func DefaultE1() E1Params {
	return E1Params{CheapN: 40, CheapT: 16, SoundN: 70, SoundT: 16}
}

// E1 runs the Theorem 2 falsifier across the protocol catalogue. The
// per-candidate sweeps are independent, so they fan out across the worker
// pool; each candidate's falsifier additionally parallelizes its own
// probe family. Rows land in catalogue order regardless of parallelism.
func E1(p E1Params, opts runner.Options) (*Table, error) {
	tab := &Table{
		ID:    "E1",
		Title: "Theorem 2 / Lemma 1 — the Ω(t²) falsifier vs. weak consensus protocols",
		Header: []string{
			"protocol", "claimed complexity", "n", "t", "t²/32",
			"max msgs observed", "verdict", "certificate",
		},
	}
	cands := Candidates()
	rows, err := runner.Map(opts.Context(), opts.Workers(), len(cands), func(i int) ([]string, error) {
		c := cands[i]
		n, t := p.CheapN, p.CheapT
		if c.Sound {
			n, t = p.SoundN, p.SoundT
		}
		factory, err := c.New(n, t)
		if err != nil {
			return []string{c.Name, c.Complexity, itoa(n), itoa(t), "-", "-", "skipped: " + err.Error(), "-"}, nil
		}
		rounds := c.Rounds(n, t)
		rep, err := lowerbound.Falsify(c.Name, factory, rounds, n, t,
			lowerbound.Options{Parallelism: opts.Parallelism, Ctx: opts.Context()})
		if err != nil {
			return nil, fmt.Errorf("E1 %s: %w", c.Name, err)
		}
		verdict, cert := "budget respected (sound)", "-"
		if rep.Broken() {
			verdict = rep.Violation.Kind + " violated"
			if err := lowerbound.CheckViolation(rep.Violation, factory, rounds); err != nil {
				return nil, fmt.Errorf("E1 %s: certificate failed recheck: %w", c.Name, err)
			}
			cert = "machine-checked"
		}
		if c.Sound == rep.Broken() {
			return nil, fmt.Errorf("E1 %s: soundness expectation violated (sound=%v broken=%v)",
				c.Name, c.Sound, rep.Broken())
		}
		return []string{
			c.Name, c.Complexity, itoa(n), itoa(t), itoa(rep.Threshold),
			itoa(rep.MaxCorrectMessages), verdict, cert,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	tab.Rows = rows
	tab.Notes = append(tab.Notes,
		"every sub-quadratic protocol is falsified with a concrete, independently re-validated execution",
		"every sound protocol's probe executions exceed the t²/32 budget, as Theorem 2 requires",
	)
	return tab, nil
}

// E2 demonstrates Figure 1: behavior divergence after isolating a group at
// round R. The protocol is a chained echo — every round each process
// broadcasts a digest of everything it received in the previous round — so
// any change in a process's view propagates into its future sends. The
// table reports, per round, how many processes send exactly the same
// messages as in the fault-free execution E0: the isolated group diverges
// at round R+1 (Figure 1's red band) and the rest at round R+2 (blue).
func E2(n, t, isolateAt int) (*Table, error) {
	factory := chainedEchoFactory(n)
	part, err := proc.NewPartition(n, t)
	if err != nil {
		return nil, err
	}
	horizon := isolateAt + 5
	uniform := make([]msg.Value, n)
	for i := range uniform {
		uniform[i] = msg.Zero
	}
	e0, err := sim.Run(sim.Config{N: n, T: t, Proposals: uniform, MaxRounds: horizon, DisableEarlyStop: true}, factory, sim.NoFaults{})
	if err != nil {
		return nil, err
	}
	eIso, err := omission.RunIsolated(n, t, factory, msg.Zero, part.B, isolateAt, horizon)
	if err != nil {
		return nil, err
	}
	tab := &Table{
		ID:     "E2",
		Title:  fmt.Sprintf("Figure 1 — isolation anatomy: E0 vs E_B(%d), chained echo n=%d t=%d", isolateAt, n, t),
		Header: []string{"round", "senders matching E0", "inside B diverged", "outside B diverged"},
	}
	for r := 1; r <= eIso.Rounds; r++ {
		same, inB, outB := 0, 0, 0
		for id := proc.ID(0); id < proc.ID(n); id++ {
			s0 := e0.Behavior(id).Frag(r)
			s1 := eIso.Behavior(id).Frag(r)
			sent0 := append(append([]msg.Message{}, s0.Sent...), s0.SendOmitted...)
			sent1 := append(append([]msg.Message{}, s1.Sent...), s1.SendOmitted...)
			if msg.SameSet(sent0, sent1) {
				same++
			} else if part.B.Contains(id) {
				inB++
			} else {
				outB++
			}
		}
		tab.Rows = append(tab.Rows, []string{itoa(r), itoa(same), itoa(inB), itoa(outB)})
	}
	tab.Notes = append(tab.Notes,
		fmt.Sprintf("all sends identical through round %d; group B (receive-isolated) diverges from round %d; the rest from round %d by propagation — exactly Figure 1's green/red/blue bands",
			isolateAt, isolateAt+1, isolateAt+2),
	)
	// The note above is a claim; verify it before publishing the table:
	// nobody may diverge during the identical prefix, and processes outside
	// B may not diverge before the propagation round.
	for r := 1; r <= eIso.Rounds; r++ {
		for id := proc.ID(0); id < proc.ID(n); id++ {
			s0, s1 := e0.Behavior(id).Frag(r), eIso.Behavior(id).Frag(r)
			same := msg.SameSet(
				append(append([]msg.Message{}, s0.Sent...), s0.SendOmitted...),
				append(append([]msg.Message{}, s1.Sent...), s1.SendOmitted...),
			)
			if r <= isolateAt && !same {
				return nil, fmt.Errorf("E2: %s diverged at round %d, before isolation", id, r)
			}
			if !part.B.Contains(id) && r == isolateAt+1 && !same {
				return nil, fmt.Errorf("E2: %s (outside B) diverged one round too early", id)
			}
		}
	}
	return tab, nil
}

// chainedEchoFactory builds the Figure 1 demonstration machine: each round
// it broadcasts a digest chaining everything it has received so far, so a
// single dropped message changes all of its future sends.
func chainedEchoFactory(n int) sim.Factory {
	return func(id proc.ID, proposal msg.Value) sim.Machine {
		return &chainedEcho{n: n, id: id, digest: string(proposal)}
	}
}

type chainedEcho struct {
	n      int
	id     proc.ID
	digest string
}

var _ sim.Machine = (*chainedEcho)(nil)

func (m *chainedEcho) broadcast() []sim.Outgoing {
	out := make([]sim.Outgoing, 0, m.n-1)
	for p := proc.ID(0); p < proc.ID(m.n); p++ {
		if p != m.id {
			out = append(out, sim.Outgoing{To: p, Payload: m.digest})
		}
	}
	return out
}

func (m *chainedEcho) Init() []sim.Outgoing { return m.broadcast() }

func (m *chainedEcho) Step(round int, received []msg.Message) []sim.Outgoing {
	sum := sha256.New()
	sum.Write([]byte(m.digest))
	for _, rm := range received {
		fmt.Fprintf(sum, "|%d:%s", int(rm.Sender), rm.Payload)
	}
	m.digest = hex.EncodeToString(sum.Sum(nil))[:16]
	return m.broadcast()
}

// Decision never fires: this machine exists to visualize divergence, not
// to decide. The experiment runs with a fixed horizon.
func (m *chainedEcho) Decision() (msg.Value, bool) { return msg.NoDecision, false }

func (m *chainedEcho) Quiescent() bool { return false }

// E3 reproduces Figure 2 / Lemmas 3-5 on a cheap protocol: the decisions
// of A, B and C in the critical executions and their merge.
func E3(n, t int, opts runner.Options) (*Table, error) {
	factory := cheap.Star(n)
	rounds := cheap.StarRounds
	rep, err := lowerbound.Falsify("star", factory, rounds, n, t,
		lowerbound.Options{Parallelism: opts.Parallelism, Ctx: opts.Context()})
	if err != nil {
		return nil, err
	}
	tab := &Table{
		ID:     "E3",
		Title:  fmt.Sprintf("Figure 2 / Lemmas 3-5 — the construction narrative (star protocol, n=%d t=%d)", n, t),
		Header: []string{"step"},
	}
	for _, l := range rep.Log {
		tab.Rows = append(tab.Rows, []string{l})
	}
	if rep.Violation != nil {
		tab.Rows = append(tab.Rows, []string{"=> " + rep.Violation.String()})
	}
	return tab, nil
}

// E4 demonstrates Algorithm 4 (swap_omission) and Lemma 15's guarantees on
// the leader protocol.
func E4(n, t int) (*Table, error) {
	factory := cheap.Leader(n)
	group := proc.Range(proc.ID(n-2), proc.ID(n))
	e, err := omission.RunIsolated(n, t, factory, msg.Zero, group, 1, 3)
	if err != nil {
		return nil, err
	}
	victim := group.Min()
	mxp := len(omission.MessagesFromTo(e, e.Correct(), victim))
	swapped, err := omission.SwapOmission(e, victim)
	if err != nil {
		return nil, err
	}
	checks := []struct {
		name string
		err  error
	}{
		{"result satisfies Appendix A guarantees", omission.Validate(swapped)},
		{"indistinguishable to the victim", omission.Indistinguishable(e, swapped, victim)},
		{"trace conforms to honest machines", sim.Conforms(swapped, factory, proc.Set{})},
	}
	tab := &Table{
		ID:     "E4",
		Title:  fmt.Sprintf("Lemma 2 / Algorithm 4 — swap_omission on the leader protocol (n=%d t=%d)", n, t),
		Header: []string{"quantity", "value"},
		Rows: [][]string{
			{"isolated group", group.String()},
			{"victim p", victim.String()},
			{"|M_{X→p}| (receive-omitted from correct)", itoa(mxp)},
			{"t/2 cutoff", itoa(t / 2)},
			{"faulty before swap", e.Faulty.String()},
			{"faulty after swap", swapped.Faulty.String()},
			{"victim correct after swap", yesNo(!swapped.Faulty.Contains(victim))},
		},
	}
	for _, c := range checks {
		tab.Rows = append(tab.Rows, []string{c.name, yesNo(c.err == nil)})
		if c.err != nil {
			return nil, fmt.Errorf("E4: %s: %w", c.name, c.err)
		}
	}
	d1, _ := swapped.Decision(victim)
	d2, _ := swapped.Decision(1)
	tab.Rows = append(tab.Rows, []string{"decisions (victim vs correct p1)", fmt.Sprintf("%s vs %s", d1, d2)})
	tab.Notes = append(tab.Notes, "the swapped execution is valid, has ≤ t faults, and two correct processes disagree — Lemma 2's contradiction")
	return tab, nil
}
