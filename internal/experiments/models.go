package experiments

import (
	"fmt"

	"expensive/internal/crypto/sig"
	"expensive/internal/lowerbound"
	"expensive/internal/msg"
	"expensive/internal/proc"
	"expensive/internal/protocols/cheap"
	"expensive/internal/protocols/dolevstrong"
	"expensive/internal/protocols/floodset"
	"expensive/internal/protocols/phaseking"
	"expensive/internal/protocols/reduction"
	"expensive/internal/sim"
)

// E10 probes the failure-model hierarchy the lower bound rests on: the
// paper proves Ω(t²) against *omission* faults, strictly stronger than
// crashes. FloodSet — correct under crashes — splits under a single
// omission-faulty process, while the Byzantine-tolerant Phase-King (a
// fortiori omission-tolerant) survives the same attack.
func E10(n, t int) (*Table, error) {
	proposals := make([]msg.Value, n)
	proposals[0] = msg.Zero
	for i := 1; i < n; i++ {
		proposals[i] = msg.One
	}
	correct := proc.Range(1, proc.ID(n))

	type trial struct {
		protocol string
		factory  sim.Factory
		rounds   int
		model    string
		plan     sim.FaultPlan
		group    proc.Set
	}
	fsFactory := floodset.New(floodset.Config{N: n, T: t})
	pkFactory := phaseking.New(phaseking.Config{N: n, T: t})
	crashPlan := sim.Crash(map[proc.ID]sim.CrashSpec{
		0: {Round: 1, DeliverTo: proc.NewSet(1)},
	})
	trials := []trial{
		{"floodset", fsFactory, floodset.RoundBound(t), "no faults", sim.NoFaults{}, proc.Universe(n)},
		{"floodset", fsFactory, floodset.RoundBound(t), "crash (partial delivery)", crashPlan, correct},
		{"floodset", fsFactory, floodset.RoundBound(t), "omission (last-round reveal)", floodset.LastRoundReveal(0, 1, t), correct},
		{"phase-king", pkFactory, phaseking.RoundBound(t), "omission (last-round reveal)", floodset.LastRoundReveal(0, 1, t), correct},
	}
	tab := &Table{
		ID:     "E10",
		Title:  fmt.Sprintf("Failure-model hierarchy — crash ⊊ omission ⊊ Byzantine (n=%d t=%d)", n, t),
		Header: []string{"protocol", "tolerates", "fault model injected", "agreement among correct"},
	}
	tolerates := map[string]string{"floodset": "crash", "phase-king": "byzantine (n > 4t)"}
	for _, tr := range trials {
		// Each trial reads only the correct group's common decision — lean tier.
		cfg := sim.Config{N: n, T: t, Proposals: proposals, MaxRounds: tr.rounds + 2, Recording: sim.RecordDecisions}
		e, err := sim.Run(cfg, tr.factory, tr.plan)
		if err != nil {
			return nil, fmt.Errorf("E10 %s/%s: %w", tr.protocol, tr.model, err)
		}
		verdict := "holds"
		if _, err := e.CommonDecision(tr.group); err != nil {
			verdict = "VIOLATED: " + err.Error()
		}
		tab.Rows = append(tab.Rows, []string{tr.protocol, tolerates[tr.protocol], tr.model, verdict})
	}
	tab.Notes = append(tab.Notes,
		"crash-tolerance does not imply omission-tolerance: the Ω(t²) bound's failure model is genuinely weaker than Byzantine yet stronger than crash",
	)
	return tab, nil
}

// dsEquivocator is the E11 Byzantine sender: signed value A to the first
// half, signed value B to the rest.
type dsEquivocator struct {
	cfg    dolevstrong.Config
	signer sig.Scheme
}

func (m *dsEquivocator) item(v msg.Value) (dolevstrong.Item, error) {
	s, err := m.signer.Sign(m.cfg.Sender, dolevstrong.SignedData(m.cfg.Tag, v))
	if err != nil {
		return dolevstrong.Item{}, err
	}
	return dolevstrong.Item{V: v, C: []dolevstrong.Link{{S: int(m.cfg.Sender), G: s}}}, nil
}

func (m *dsEquivocator) Init() []sim.Outgoing {
	var out []sim.Outgoing
	for p := 1; p < m.cfg.N; p++ {
		v := msg.Value("A")
		if p > m.cfg.N/2 {
			v = "B"
		}
		it, err := m.item(v)
		if err != nil {
			continue
		}
		out = append(out, sim.Outgoing{To: proc.ID(p), Payload: msg.Encode(dolevstrong.Payload{Items: []dolevstrong.Item{it}})})
	}
	return out
}

func (m *dsEquivocator) Step(int, []msg.Message) []sim.Outgoing { return nil }
func (m *dsEquivocator) Decision() (msg.Value, bool)            { return msg.NoDecision, false }
func (m *dsEquivocator) Quiescent() bool                        { return true }

// splitKing is the E11 Byzantine phase king: 0 to the first half, 1 to the
// rest, every round.
type splitKing struct {
	n, t int
	id   proc.ID
}

func (m *splitKing) emit() []sim.Outgoing {
	var out []sim.Outgoing
	for p := 0; p < m.n; p++ {
		if proc.ID(p) == m.id {
			continue
		}
		v := msg.Zero
		if p >= m.n/2 {
			v = msg.One
		}
		out = append(out, sim.Outgoing{To: proc.ID(p), Payload: msg.Encode(struct{ V msg.Value }{v})})
	}
	return out
}

func (m *splitKing) Init() []sim.Outgoing { return m.emit() }

func (m *splitKing) Step(round int, _ []msg.Message) []sim.Outgoing {
	if round >= 2*(m.t+1) {
		return nil
	}
	return m.emit()
}

func (m *splitKing) Decision() (msg.Value, bool) { return msg.NoDecision, false }
func (m *splitKing) Quiescent() bool             { return false }

// E11 runs the ablations DESIGN.md calls out: remove one load-bearing
// mechanism from each construction and watch the corresponding guarantee
// fail; restore it and watch it hold.
func E11() (*Table, error) {
	tab := &Table{
		ID:     "E11",
		Title:  "Ablations — each design choice is load-bearing",
		Header: []string{"construction", "ablation", "with ablation", "without ablation"},
	}

	// 1. Falsifier without merge cannot break Silent (Lemma 3 load-bearing).
	n, t := 40, 16
	repAblated, err := lowerbound.Falsify("silent", cheap.Silent(), cheap.SilentRounds, n, t,
		lowerbound.Options{DisableMerge: true})
	if err != nil {
		return nil, err
	}
	repFull, err := lowerbound.Falsify("silent", cheap.Silent(), cheap.SilentRounds, n, t, lowerbound.Options{})
	if err != nil {
		return nil, err
	}
	if repAblated.Broken() || !repFull.Broken() {
		return nil, fmt.Errorf("E11 falsifier ablation: unexpected outcome (%v/%v)", repAblated.Broken(), repFull.Broken())
	}
	tab.Rows = append(tab.Rows, []string{
		"Theorem 2 falsifier", "merge step (Lemmas 3-5) disabled",
		"silent protocol survives", "silent protocol falsified",
	})

	// 2. Dolev-Strong without relaying: equivocation splits the processes.
	scheme := sig.NewIdeal("e11-ds")
	verdicts := [2]string{}
	for i, noRelay := range []bool{true, false} {
		cfg := dolevstrong.Config{N: 7, T: 2, Sender: 0, Scheme: scheme, Tag: "bb", Default: "⊥", UnsafeNoRelay: noRelay}
		adv := sim.ByzantinePlan{Machines: map[proc.ID]sim.Machine{0: &dsEquivocator{cfg: cfg, signer: scheme}}}
		proposals := make([]msg.Value, 7)
		for j := range proposals {
			proposals[j] = "x"
		}
		e, err := sim.Run(sim.Config{N: 7, T: 2, Proposals: proposals, MaxRounds: dolevstrong.RoundBound(2) + 1, Recording: sim.RecordDecisions},
			dolevstrong.New(cfg), adv)
		if err != nil {
			return nil, err
		}
		if _, err := e.CommonDecision(proc.Range(1, 7)); err != nil {
			verdicts[i] = "agreement VIOLATED"
		} else {
			verdicts[i] = "agreement holds"
		}
	}
	if verdicts[0] == verdicts[1] {
		return nil, fmt.Errorf("E11 relay ablation: no behavioral difference")
	}
	tab.Rows = append(tab.Rows, []string{
		"Dolev-Strong broadcast", "relay of accepted values removed", verdicts[0], verdicts[1],
	})

	// 3. Phase-King with t phases instead of t+1.
	for i, phases := range []int{1 /* = t */, 2 /* = t+1 */} {
		cfg := phaseking.Config{N: 5, T: 1, PhasesOverride: phases}
		adv := sim.ByzantinePlan{Machines: map[proc.ID]sim.Machine{0: &splitKing{n: 5, t: 1, id: 0}}}
		proposals := []msg.Value{"0", "0", "0", "1", "1"}
		e, err := sim.Run(sim.Config{N: 5, T: 1, Proposals: proposals, MaxRounds: 2*phases + 2, Recording: sim.RecordDecisions},
			phaseking.New(cfg), adv)
		if err != nil {
			return nil, err
		}
		if _, err := e.CommonDecision(proc.Range(1, 5)); err != nil {
			verdicts[i] = "agreement VIOLATED"
		} else {
			verdicts[i] = "agreement holds"
		}
	}
	if verdicts[0] == verdicts[1] {
		return nil, fmt.Errorf("E11 phase ablation: no behavioral difference")
	}
	tab.Rows = append(tab.Rows, []string{
		"Phase-King", "t phases instead of t+1", verdicts[0], verdicts[1],
	})

	// 4. Algorithm 1 with c1 = c0: both weak proposals map to the same
	// execution of P, so proposing 1 decides 0 — Weak Validity breaks.
	pk := phaseking.New(phaseking.Config{N: 5, T: 1})
	zeros := []msg.Value{"0", "0", "0", "0", "0"}
	ones := []msg.Value{"1", "1", "1", "1", "1"}
	goodSpec, err := reduction.DeriveAlg1(pk, 5, 1, phaseking.RoundBound(1)+2, zeros, ones)
	if err != nil {
		return nil, err
	}
	badSpec := goodSpec
	badSpec.C1 = zeros // the ablation: c1 no longer contains a config excluding v0
	for i, spec := range []reduction.Alg1Spec{badSpec, goodSpec} {
		wrapped := reduction.WeakFromAgreement(pk, spec)
		e, err := sim.Run(sim.Config{N: 5, T: 1, Proposals: ones, MaxRounds: phaseking.RoundBound(1) + 2, Recording: sim.RecordDecisions},
			wrapped, sim.NoFaults{})
		if err != nil {
			return nil, err
		}
		d, err := e.CommonDecision(proc.Universe(5))
		if err != nil {
			return nil, err
		}
		if d == msg.One {
			verdicts[i] = "weak validity holds"
		} else {
			verdicts[i] = "weak validity VIOLATED"
		}
	}
	if verdicts[0] == verdicts[1] {
		return nil, fmt.Errorf("E11 alg1 ablation: no behavioral difference")
	}
	tab.Rows = append(tab.Rows, []string{
		"Algorithm 1", "c1 chosen without v0-excluding sub-configuration", verdicts[0], verdicts[1],
	})

	tab.Notes = append(tab.Notes, "every ablated variant fails exactly the guarantee its mechanism protects; restoring the mechanism restores the guarantee")
	return tab, nil
}
