package sim

import (
	"expensive/internal/msg"
	"expensive/internal/proc"
)

// CrashSpec describes one crashing process: it behaves correctly through
// round Round-1, delivers only to DeliverTo in round Round (the classical
// "crash during a send" partial delivery), and is silent afterwards.
type CrashSpec struct {
	Round     int
	DeliverTo proc.Set
}

// Crash builds the crash-failure adversary as an omission plan: a crash is
// the special omission pattern "send-omit everything from some point on".
// This is how the library demonstrates that crash faults are a strict
// subset of omission faults (experiment E10): the paper's Ω(t²) bound is
// proven against omissions, and protocols that only survive crashes break
// under the richer pattern.
func Crash(specs map[proc.ID]CrashSpec) OmissionPlan {
	ids := make([]proc.ID, 0, len(specs))
	for id := range specs {
		ids = append(ids, id)
	}
	faulty := proc.NewSet(ids...)
	return OmissionPlan{
		F: faulty,
		SendFn: func(m msg.Message) bool {
			spec, ok := specs[m.Sender]
			if !ok {
				return false
			}
			if m.Round > spec.Round {
				return true
			}
			if m.Round == spec.Round {
				return !spec.DeliverTo.Contains(m.Receiver)
			}
			return false
		},
	}
}
