package sim_test

import (
	"strings"
	"sync"
	"testing"

	"expensive/internal/msg"
	"expensive/internal/omission"
	"expensive/internal/proc"
	"expensive/internal/sim"
)

// tierConfigs returns one full-tier and one lean-tier config over the same
// inputs.
func tierConfigs(n, t, rounds int, proposals []msg.Value) (full, lean sim.Config) {
	full = sim.Config{N: n, T: t, Proposals: proposals, MaxRounds: rounds}
	lean = full
	lean.Recording = sim.RecordDecisions
	return full, lean
}

// TestLeanMatchesFull runs the flood machine under several fault plans at
// both tiers and asserts the lean record agrees with the full one on
// everything it claims to record: rounds, quiescence, decisions, decision
// rounds, and per-round message counts.
func TestLeanMatchesFull(t *testing.T) {
	n, tf, rounds := 5, 2, 4
	proposals := []msg.Value{"b", "a", "c", "a", "b"}
	plans := map[string]sim.FaultPlan{
		"no-faults": sim.NoFaults{},
		"send-omit": sim.OmissionPlan{
			F:      proc.NewSet(0),
			SendFn: func(m msg.Message) bool { return m.Round == 1 && m.Receiver == 1 },
		},
		"receive-omit": sim.OmissionPlan{
			F:         proc.NewSet(3),
			ReceiveFn: func(m msg.Message) bool { return m.Round <= 2 },
		},
		"crash": sim.Crash(map[proc.ID]sim.CrashSpec{2: {Round: 2, DeliverTo: proc.NewSet(0)}}),
	}
	for name, plan := range plans {
		t.Run(name, func(t *testing.T) {
			fullCfg, leanCfg := tierConfigs(n, tf, rounds, proposals)
			full, err := sim.Run(fullCfg, floodFactory(n, rounds), plan)
			if err != nil {
				t.Fatal(err)
			}
			lean, err := sim.Run(leanCfg, floodFactory(n, rounds), plan)
			if err != nil {
				t.Fatal(err)
			}
			if lean.Recording != sim.RecordDecisions || full.Recording != sim.RecordFull {
				t.Fatalf("recording levels: full=%v lean=%v", full.Recording, lean.Recording)
			}
			if lean.Rounds != full.Rounds || lean.Quiesced != full.Quiesced {
				t.Fatalf("rounds/quiesced: lean (%d,%v) vs full (%d,%v)",
					lean.Rounds, lean.Quiesced, full.Rounds, full.Quiesced)
			}
			if got, want := lean.CorrectMessages(), full.CorrectMessages(); got != want {
				t.Fatalf("correct messages: lean %d vs full %d", got, want)
			}
			for i := 0; i < n; i++ {
				id := proc.ID(i)
				lb, fb := lean.Behavior(id), full.Behavior(id)
				lv, lok := lb.FinalDecision()
				fv, fok := fb.FinalDecision()
				if lok != fok || lv != fv {
					t.Fatalf("%s decision: lean (%q,%v) vs full (%q,%v)", id, lv, lok, fv, fok)
				}
				if lb.DecisionRound() != fb.DecisionRound() {
					t.Fatalf("%s decision round: lean %d vs full %d", id, lb.DecisionRound(), fb.DecisionRound())
				}
				if lb.RoundsRecorded() != fb.RoundsRecorded() {
					t.Fatalf("%s rounds recorded: lean %d vs full %d", id, lb.RoundsRecorded(), fb.RoundsRecorded())
				}
				for r := 1; r <= full.Rounds; r++ {
					f := fb.Frag(r)
					l := lb.Lean
					if l.Sent[r-1] != len(f.Sent) || l.SendOmitted[r-1] != len(f.SendOmitted) ||
						l.Received[r-1] != len(f.Received) || l.ReceiveOmitted[r-1] != len(f.ReceiveOmitted) {
						t.Fatalf("%s round %d counts: lean (%d,%d,%d,%d) vs full (%d,%d,%d,%d)",
							id, r,
							l.Sent[r-1], l.SendOmitted[r-1], l.Received[r-1], l.ReceiveOmitted[r-1],
							len(f.Sent), len(f.SendOmitted), len(f.Received), len(f.ReceiveOmitted))
					}
				}
			}
		})
	}
}

// TestLeanRejectsFullTraceAPIs verifies that the message-level APIs refuse
// lean executions with a descriptive error instead of silently treating
// absent slices as empty traces.
func TestLeanRejectsFullTraceAPIs(t *testing.T) {
	n, rounds := 4, 3
	proposals := []msg.Value{"a", "b", "a", "b"}
	_, leanCfg := tierConfigs(n, 1, rounds, proposals)
	lean, err := sim.Run(leanCfg, floodFactory(n, rounds), sim.NoFaults{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Conforms(lean, floodFactory(n, rounds), proc.Set{}); err == nil ||
		!strings.Contains(err.Error(), "full trace") {
		t.Fatalf("Conforms on lean trace: got %v, want full-trace error", err)
	}
	if err := omission.Validate(lean); err == nil || !strings.Contains(err.Error(), "full trace") {
		t.Fatalf("Validate on lean trace: got %v, want full-trace error", err)
	}
	if got := lean.Behavior(0).AllSent(); got != nil {
		t.Fatalf("AllSent on lean trace: got %d messages, want nil", len(got))
	}
}

// TestScratchPoolConcurrency hammers Run from many goroutines at both
// tiers to verify the pooled scratch buffers never leak state between
// concurrent runs (every probe must stay deterministic).
func TestScratchPoolConcurrency(t *testing.T) {
	n, rounds := 5, 4
	proposals := []msg.Value{"b", "a", "c", "a", "b"}
	fullCfg, leanCfg := tierConfigs(n, 1, rounds, proposals)
	ref, err := sim.Run(fullCfg, floodFactory(n, rounds), sim.NoFaults{})
	if err != nil {
		t.Fatal(err)
	}
	refDecision, _ := ref.Decision(0)
	refMsgs := ref.CorrectMessages()

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				cfg := fullCfg
				if i%2 == 0 {
					cfg = leanCfg
				}
				e, err := sim.Run(cfg, floodFactory(n, rounds), sim.NoFaults{})
				if err != nil {
					errs <- err
					return
				}
				d, ok := e.Decision(0)
				if !ok || d != refDecision || e.CorrectMessages() != refMsgs || e.Rounds != ref.Rounds {
					errs <- errMismatch(d, e.CorrectMessages(), e.Rounds)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

type mismatchError struct {
	d      msg.Value
	msgs   int
	rounds int
}

func (e mismatchError) Error() string {
	return "concurrent run diverged from reference: decision=" + string(e.d)
}

func errMismatch(d msg.Value, msgs, rounds int) error {
	return mismatchError{d: d, msgs: msgs, rounds: rounds}
}
