// Package sim implements the synchronous computational model of §2 and
// Appendix A.1: n deterministic state machines advancing in lock-step
// rounds, a static adversary that corrupts up to t processes before the
// run, and per-round trace recording.
//
// Recording is tiered. At RecordFull (the default) the engine produces an
// Execution — the exact object Appendix A.1.6 defines: a faulty set plus
// one Behavior per process, where a Behavior is a sequence of Fragments
// (state, sent, send-omitted, received, receive-omitted per round).
// Everything downstream — the omission-model validator, swap_omission,
// merge, and the lower-bound falsifier — operates on these traces. At
// RecordDecisions the engine records only what the probe loops actually
// read — per-process decisions and per-round message counts — and runs an
// allocation-free round loop whose scratch buffers are pooled across Run
// calls. Probe sweeps (hunt campaigns, the protocol × strategy matrix, the
// falsifier families) probe lean and deterministically re-run the rare
// violating configuration at RecordFull to reconstruct the full evidence
// object.
//
// Determinism contract: a Machine's outputs may depend only on its inputs
// (proposal, round number, received messages). The engine delivers received
// messages sorted by sender before every Step, so identical views yield
// identical behavior — the indistinguishability property the paper's proofs
// rely on. (Engine inboxes are filled in ascending sender order within a
// single round, so they are born sorted; Conforms still sorts explicitly
// because it replays recorded traces of arbitrary origin.) The received
// slice passed to Step is only valid for the duration of the call: machines
// must not retain it.
package sim

import (
	"fmt"
	"sync"
	"sync/atomic"

	"expensive/internal/msg"
	"expensive/internal/proc"
)

// runCount counts Run invocations process-wide. The experiment engine
// snapshots it around a run to attribute probe counts per experiment.
var runCount atomic.Int64

// Runs returns the total number of simulation probes (Run invocations)
// started so far in this process.
func Runs() int64 { return runCount.Load() }

// Recording selects how much of an execution the engine records.
type Recording int

const (
	// RecordFull records the complete Appendix A.1.6 trace: four message
	// slices per process per round. This is the zero value and the
	// historical behavior — output is bit-for-bit identical to the
	// pre-tiered engine.
	RecordFull Recording = iota
	// RecordDecisions is the lean tier: per-process decisions plus
	// per-round sent/omitted/received counts, no message slices. APIs that
	// need the messages themselves (Conforms, omission.Validate, swap,
	// merge, shrinking) reject lean executions; callers re-run the same
	// deterministic configuration at RecordFull when they need evidence.
	RecordDecisions
)

// String renders the recording level.
func (r Recording) String() string {
	switch r {
	case RecordFull:
		return "full"
	case RecordDecisions:
		return "decisions"
	default:
		return fmt.Sprintf("Recording(%d)", int(r))
	}
}

// Outgoing is a message a machine asks the engine to send in the next
// round. The engine stamps sender and round.
type Outgoing struct {
	To      proc.ID
	Payload string
}

// Machine is the deterministic per-process state machine of Appendix A.1.3.
//
// Init returns the messages sent in round 1 (they depend only on the
// initial state). Step consumes the messages received in round r and
// returns the messages to send in round r+1; the received slice is only
// valid for the duration of the call — at the lean recording tier it is
// backing-store the engine reuses — so machines must copy anything they
// keep. Decision exposes the decision-bit component of the state; once
// set it must never change. Quiescent reports that the machine will never
// send again regardless of future inputs — the engine uses it for sound
// early termination.
type Machine interface {
	Init() []Outgoing
	Step(round int, received []msg.Message) []Outgoing
	Decision() (msg.Value, bool)
	Quiescent() bool
}

// Factory builds the honest machine of process id with the given proposal.
type Factory func(id proc.ID, proposal msg.Value) Machine

// FaultPlan is the static adversary: it fixes the corrupted set before the
// run and controls how corrupted processes misbehave. Honest machines of
// corrupted processes still run under an omission plan (they are "honest
// but dropped"); a Byzantine plan replaces the machine outright.
type FaultPlan interface {
	// Faulty returns the corrupted set F, |F| <= t.
	Faulty() proc.Set
	// Byzantine returns a replacement machine for corrupted process id, or
	// nil to run the honest machine subject to omissions.
	Byzantine(id proc.ID) Machine
	// SendOmit reports whether the corrupted sender send-omits m.
	SendOmit(m msg.Message) bool
	// ReceiveOmit reports whether the corrupted receiver receive-omits m.
	ReceiveOmit(m msg.Message) bool
}

// NoFaults is the fully-correct fault plan (the paper's E0-style runs).
type NoFaults struct{}

var _ FaultPlan = NoFaults{}

// Faulty implements FaultPlan.
func (NoFaults) Faulty() proc.Set { return proc.Set{} }

// Byzantine implements FaultPlan.
func (NoFaults) Byzantine(proc.ID) Machine { return nil }

// SendOmit implements FaultPlan.
func (NoFaults) SendOmit(msg.Message) bool { return false }

// ReceiveOmit implements FaultPlan.
func (NoFaults) ReceiveOmit(msg.Message) bool { return false }

// OmissionPlan corrupts F with send/receive omission faults chosen by the
// two predicates (§3's failure model). Honest machines keep running.
type OmissionPlan struct {
	F         proc.Set
	SendFn    func(m msg.Message) bool
	ReceiveFn func(m msg.Message) bool
}

var _ FaultPlan = OmissionPlan{}

// Faulty implements FaultPlan.
func (p OmissionPlan) Faulty() proc.Set { return p.F }

// Byzantine implements FaultPlan.
func (p OmissionPlan) Byzantine(proc.ID) Machine { return nil }

// SendOmit implements FaultPlan.
func (p OmissionPlan) SendOmit(m msg.Message) bool {
	return p.SendFn != nil && p.F.Contains(m.Sender) && p.SendFn(m)
}

// ReceiveOmit implements FaultPlan.
func (p OmissionPlan) ReceiveOmit(m msg.Message) bool {
	return p.ReceiveFn != nil && p.F.Contains(m.Receiver) && p.ReceiveFn(m)
}

// ByzantinePlan replaces the machines of corrupted processes with
// adversarial ones.
type ByzantinePlan struct {
	Machines map[proc.ID]Machine
}

var _ FaultPlan = ByzantinePlan{}

// Faulty implements FaultPlan.
func (p ByzantinePlan) Faulty() proc.Set {
	ids := make([]proc.ID, 0, len(p.Machines))
	for id := range p.Machines {
		ids = append(ids, id)
	}
	return proc.NewSet(ids...)
}

// Byzantine implements FaultPlan.
func (p ByzantinePlan) Byzantine(id proc.ID) Machine { return p.Machines[id] }

// SendOmit implements FaultPlan.
func (p ByzantinePlan) SendOmit(msg.Message) bool { return false }

// ReceiveOmit implements FaultPlan.
func (p ByzantinePlan) ReceiveOmit(msg.Message) bool { return false }

// Config parameterizes a run.
type Config struct {
	N int
	T int
	// Proposals assigns a proposal to every process (len N). The engine
	// treats entries of corrupted processes as their nominal initial state.
	Proposals []msg.Value
	// MaxRounds is the execution horizon (must be positive). Protocol round
	// bounds are supplied by the caller; the engine may stop earlier only
	// when every machine is quiescent.
	MaxRounds int
	// DisableEarlyStop forces the engine to run exactly MaxRounds even when
	// all machines are quiescent. The lower-bound machinery uses it so all
	// probe executions share one horizon.
	DisableEarlyStop bool
	// Recording selects the trace tier. The zero value, RecordFull, is the
	// historical full Appendix A.1.6 trace.
	Recording Recording
}

func (c Config) validate() error {
	switch {
	case c.N < 2:
		return fmt.Errorf("config: need n >= 2, got %d", c.N)
	case c.T < 0 || c.T >= c.N:
		return fmt.Errorf("config: need 0 <= t < n, got n=%d t=%d", c.N, c.T)
	case len(c.Proposals) != c.N:
		return fmt.Errorf("config: need %d proposals, got %d", c.N, len(c.Proposals))
	case c.MaxRounds <= 0:
		return fmt.Errorf("config: MaxRounds must be positive, got %d", c.MaxRounds)
	case c.Recording != RecordFull && c.Recording != RecordDecisions:
		return fmt.Errorf("config: unknown recording level %d", int(c.Recording))
	}
	return nil
}

// Fragment is the Appendix A.1.4 per-round record of one process: the
// messages it sent, send-omitted, received and receive-omitted in the
// round, plus the decision component of its state at the start of the
// next round.
type Fragment struct {
	Round          int
	Sent           []msg.Message
	SendOmitted    []msg.Message
	Received       []msg.Message
	ReceiveOmitted []msg.Message
	Decided        bool
	Decision       msg.Value
}

// LeanBehavior is the RecordDecisions-tier record of one process: per-round
// message counts (parallel slices indexed by round-1) plus the decision
// trajectory. The message identities themselves are not retained.
type LeanBehavior struct {
	Sent           []int
	SendOmitted    []int
	Received       []int
	ReceiveOmitted []int
	Decided        bool
	Decision       msg.Value
	// DecidedRound is the first round (1-based) at whose end the process
	// had decided, 0 when it never decided within the recorded prefix.
	DecidedRound int
}

// Behavior is the Appendix A.1.5 full per-process record: proposal plus
// one fragment per round. Lean-tier behaviors carry counts instead of
// fragments (Lean non-nil, Fragments nil).
type Behavior struct {
	ID        proc.ID
	Proposal  msg.Value
	Fragments []Fragment
	// Lean holds the RecordDecisions-tier record; nil on full traces.
	Lean *LeanBehavior
}

// Frag returns the fragment of round r (1-based), or an empty fragment if
// the behavior is shorter (the process is silent past its recorded end).
// Lean behaviors have no fragments; Frag reports every round empty.
func (b *Behavior) Frag(r int) Fragment {
	if r < 1 || r > len(b.Fragments) {
		return Fragment{Round: r}
	}
	return b.Fragments[r-1]
}

// RoundsRecorded returns the number of rounds this behavior records, at
// either tier.
func (b *Behavior) RoundsRecorded() int {
	if b.Lean != nil {
		return len(b.Lean.Sent)
	}
	return len(b.Fragments)
}

// FinalDecision returns the process's decision at the end of the behavior.
func (b *Behavior) FinalDecision() (msg.Value, bool) {
	if b.Lean != nil {
		if !b.Lean.Decided {
			return msg.NoDecision, false
		}
		return b.Lean.Decision, true
	}
	if len(b.Fragments) == 0 {
		return msg.NoDecision, false
	}
	f := b.Fragments[len(b.Fragments)-1]
	if !f.Decided {
		return msg.NoDecision, false
	}
	return f.Decision, true
}

// DecisionRound returns the first round (1-based) at whose end the process
// had decided, or 0 when it never decided within the recorded prefix. It
// works at both recording tiers.
func (b *Behavior) DecisionRound() int {
	if b.Lean != nil {
		return b.Lean.DecidedRound
	}
	for i := range b.Fragments {
		if b.Fragments[i].Decided {
			return i + 1
		}
	}
	return 0
}

// sentCount returns the number of messages the process successfully sent,
// at either tier.
func (b *Behavior) sentCount() int {
	total := 0
	if b.Lean != nil {
		for _, c := range b.Lean.Sent {
			total += c
		}
		return total
	}
	for i := range b.Fragments {
		total += len(b.Fragments[i].Sent)
	}
	return total
}

// AllSent returns every message the process (successfully) sent. Lean
// behaviors record no message identities and return nil.
func (b *Behavior) AllSent() []msg.Message {
	total := 0
	for i := range b.Fragments {
		total += len(b.Fragments[i].Sent)
	}
	if total == 0 {
		return nil
	}
	out := make([]msg.Message, 0, total)
	for _, f := range b.Fragments {
		out = append(out, f.Sent...)
	}
	return out
}

// AllSendOmitted returns every message the process send-omitted. Lean
// behaviors record no message identities and return nil.
func (b *Behavior) AllSendOmitted() []msg.Message {
	total := 0
	for i := range b.Fragments {
		total += len(b.Fragments[i].SendOmitted)
	}
	if total == 0 {
		return nil
	}
	out := make([]msg.Message, 0, total)
	for _, f := range b.Fragments {
		out = append(out, f.SendOmitted...)
	}
	return out
}

// AllReceiveOmitted returns every message the process receive-omitted.
// Lean behaviors record no message identities and return nil.
func (b *Behavior) AllReceiveOmitted() []msg.Message {
	total := 0
	for i := range b.Fragments {
		total += len(b.Fragments[i].ReceiveOmitted)
	}
	if total == 0 {
		return nil
	}
	out := make([]msg.Message, 0, total)
	for _, f := range b.Fragments {
		out = append(out, f.ReceiveOmitted...)
	}
	return out
}

// Execution is the Appendix A.1.6 object: a bounded prefix of a (formally
// infinite) execution, with the faulty set and one behavior per process.
type Execution struct {
	N      int
	T      int
	Faulty proc.Set
	// Behaviors has length N, indexed by process ID.
	Behaviors []*Behavior
	// Rounds is the number of recorded rounds.
	Rounds int
	// Quiesced reports that the run ended because every machine was
	// quiescent (so the recorded prefix determines the infinite execution).
	Quiesced bool
	// Recording is the tier the execution was recorded at. Constructed
	// executions (swap, merge) carry full traces and inherit the zero
	// value, RecordFull.
	Recording Recording
}

// Behavior returns the behavior of process id.
func (e *Execution) Behavior(id proc.ID) *Behavior { return e.Behaviors[id] }

// Correct returns Π \ Faulty.
func (e *Execution) Correct() proc.Set { return e.Faulty.Complement(e.N) }

// Decision returns the final decision of process id.
func (e *Execution) Decision(id proc.ID) (msg.Value, bool) {
	return e.Behaviors[id].FinalDecision()
}

// CommonDecision returns the unique decision of all processes in group, or
// an error if one of them is undecided or two of them disagree.
func (e *Execution) CommonDecision(group proc.Set) (msg.Value, error) {
	var common msg.Value
	first := true
	for _, id := range group.Members() {
		v, ok := e.Decision(id)
		if !ok {
			return msg.NoDecision, fmt.Errorf("%s is undecided after %d rounds", id, e.Rounds)
		}
		if first {
			common, first = v, false
		} else if v != common {
			return msg.NoDecision, fmt.Errorf("%s decided %q, others decided %q", id, v, common)
		}
	}
	if first {
		return msg.NoDecision, fmt.Errorf("empty group")
	}
	return common, nil
}

// MessagesSentBy counts messages successfully sent by processes in group.
// On lean traces it reads the recorded per-round counts — no message
// slices are needed.
func (e *Execution) MessagesSentBy(group proc.Set) int {
	total := 0
	for _, id := range group.Members() {
		total += e.Behaviors[id].sentCount()
	}
	return total
}

// CorrectMessages is the paper's message complexity of the execution: the
// number of messages sent by correct processes.
func (e *Execution) CorrectMessages() int { return e.MessagesSentBy(e.Correct()) }

// Proposals returns the proposal vector of the execution.
func (e *Execution) Proposals() []msg.Value {
	out := make([]msg.Value, e.N)
	for i, b := range e.Behaviors {
		out[i] = b.Proposal
	}
	return out
}

// scratch holds the engine's per-run working set. The round loop is the
// hot path of every probe sweep — falsifier families, hunt campaigns, the
// protocol × strategy matrix all run it millions of rounds — so the
// routing tables, the per-round fragment staging area and the
// duplicate-receiver check are pooled and reused across Run calls.
type scratch struct {
	inboxes [][]msg.Message
	frags   []Fragment
	pending [][]Outgoing
	seen    []int // generation-stamped duplicate-receiver check
	gen     int
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// grow readies the scratch for a run with n processes. Slices keep their
// backing arrays across runs; entries are reset lazily per round.
func (s *scratch) grow(n int) {
	for len(s.inboxes) < n {
		s.inboxes = append(s.inboxes, nil)
	}
	for len(s.frags) < n {
		s.frags = append(s.frags, Fragment{})
	}
	for len(s.pending) < n {
		s.pending = append(s.pending, nil)
	}
	for len(s.seen) < n {
		s.seen = append(s.seen, 0)
	}
}

// release returns the scratch to the pool, dropping references into the
// run's output (fragment slices, machine-owned pending slices, message
// payload strings left in the inboxes) so pooled scratch never pins a
// finished execution in memory.
func (s *scratch) release() {
	clear(s.frags)
	clear(s.pending)
	for i := range s.inboxes {
		full := s.inboxes[i][:cap(s.inboxes[i])]
		clear(full)
		s.inboxes[i] = full[:0]
	}
	scratchPool.Put(s)
}

// Run executes the protocol under the fault plan and returns the recorded
// execution. Errors indicate harness misuse (bad config, a machine sending
// to itself or twice to one peer, an omission plan touching a correct
// process) — never mere protocol-property violations, which are left in
// the trace for the checkers to find.
func Run(cfg Config, factory Factory, plan FaultPlan) (*Execution, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	runCount.Add(1)
	faulty := plan.Faulty()
	if faulty.Len() > cfg.T {
		return nil, fmt.Errorf("fault plan corrupts %d > t=%d processes", faulty.Len(), cfg.T)
	}
	if !faulty.SubsetOf(proc.Universe(cfg.N)) {
		return nil, fmt.Errorf("fault plan corrupts processes outside Π: %v", faulty)
	}

	machines := make([]Machine, cfg.N)
	behArr := make([]Behavior, cfg.N)
	behaviors := make([]*Behavior, cfg.N)
	for i := 0; i < cfg.N; i++ {
		id := proc.ID(i)
		if m := plan.Byzantine(id); m != nil {
			if !faulty.Contains(id) {
				return nil, fmt.Errorf("byzantine machine supplied for correct process %s", id)
			}
			machines[i] = m
		} else {
			machines[i] = factory(id, cfg.Proposals[i])
		}
		behArr[i] = Behavior{ID: id, Proposal: cfg.Proposals[i]}
		behaviors[i] = &behArr[i]
	}

	sc := scratchPool.Get().(*scratch)
	sc.grow(cfg.N)
	defer sc.release()

	// Outgoing messages for the next round, per process.
	pending := sc.pending
	for i := range machines {
		pending[i] = machines[i].Init()
	}

	e := &Execution{
		N:         cfg.N,
		T:         cfg.T,
		Faulty:    faulty,
		Behaviors: behaviors,
		Recording: cfg.Recording,
	}
	var err error
	if cfg.Recording == RecordDecisions {
		err = runLean(cfg, e, machines, pending, plan, faulty, sc)
	} else {
		err = runFull(cfg, e, machines, pending, plan, faulty, sc)
	}
	if err != nil {
		return nil, err
	}
	return e, nil
}

// runFull is the RecordFull round loop: the historical engine, recording
// the four message slices per process per round. Its output is bit-for-bit
// identical to the pre-tiered engine.
func runFull(cfg Config, e *Execution, machines []Machine, pending [][]Outgoing, plan FaultPlan, faulty proc.Set, sc *scratch) error {
	inboxes, frags, seen := sc.inboxes, sc.frags, sc.seen

	for i := 0; i < cfg.N; i++ {
		e.Behaviors[i].Fragments = make([]Fragment, 0, cfg.MaxRounds)
	}

	for r := 1; r <= cfg.MaxRounds; r++ {
		e.Rounds = r
		for i := 0; i < cfg.N; i++ {
			inboxes[i] = inboxes[i][:0]
			frags[i] = Fragment{Round: r}
		}

		// Send phase.
		for i := 0; i < cfg.N; i++ {
			sc.gen++
			for _, out := range pending[i] {
				if out.To == proc.ID(i) {
					return fmt.Errorf("round %d: %s sent to itself", r, proc.ID(i))
				}
				if out.To < 0 || int(out.To) >= cfg.N {
					return fmt.Errorf("round %d: %s sent to unknown process %d", r, proc.ID(i), out.To)
				}
				if seen[out.To] == sc.gen {
					return fmt.Errorf("round %d: %s sent twice to %s", r, proc.ID(i), out.To)
				}
				seen[out.To] = sc.gen
				m := msg.Message{Sender: proc.ID(i), Receiver: out.To, Round: r, Payload: out.Payload}
				if plan.SendOmit(m) {
					if !faulty.Contains(m.Sender) {
						return fmt.Errorf("round %d: plan send-omits message of correct %s", r, m.Sender)
					}
					frags[i].SendOmitted = append(frags[i].SendOmitted, m)
					continue
				}
				frags[i].Sent = append(frags[i].Sent, m)
				inboxes[out.To] = append(inboxes[out.To], m)
			}
		}

		// Receive phase. Inboxes are already in delivery order: the send
		// phase visits senders in ascending ID order within one round, and
		// each sender contributes at most one message per inbox, so every
		// inbox is born sorted by (round, sender, receiver) — no sort
		// needed here.
		for j := 0; j < cfg.N; j++ {
			for _, m := range inboxes[j] {
				if plan.ReceiveOmit(m) {
					if !faulty.Contains(m.Receiver) {
						return fmt.Errorf("round %d: plan receive-omits message of correct %s", r, m.Receiver)
					}
					frags[j].ReceiveOmitted = append(frags[j].ReceiveOmitted, m)
					continue
				}
				frags[j].Received = append(frags[j].Received, m)
			}
		}

		// Compute phase: new state and next round's messages. Early stop is
		// sound only when every machine is quiescent AND decided: a quiescent
		// machine never sends again, but an undecided one might still decide
		// in a later (silent) round.
		allQuiet := true
		for i := 0; i < cfg.N; i++ {
			pending[i] = machines[i].Step(r, frags[i].Received)
			v, decided := machines[i].Decision()
			if decided {
				frags[i].Decided, frags[i].Decision = true, v
			}
			e.Behaviors[i].Fragments = append(e.Behaviors[i].Fragments, frags[i])
			if len(pending[i]) > 0 || !machines[i].Quiescent() || !decided {
				allQuiet = false
			}
		}

		if allQuiet && !cfg.DisableEarlyStop {
			e.Quiesced = true
			break
		}
	}
	return nil
}

// runLean is the RecordDecisions round loop: identical machine schedule
// and fault-plan consultation order to runFull, but the engine only counts
// messages instead of retaining them. The only per-run allocations are the
// output object itself (one flat count array carved into per-behavior
// slices) — all routing scratch comes from the pool, and receive-omission
// filtering happens in place inside the pooled inboxes.
func runLean(cfg Config, e *Execution, machines []Machine, pending [][]Outgoing, plan FaultPlan, faulty proc.Set, sc *scratch) error {
	inboxes, seen := sc.inboxes, sc.seen

	// One flat backing array for the 4·n per-round count series.
	counts := make([]int, 4*cfg.N*cfg.MaxRounds)
	leans := make([]LeanBehavior, cfg.N)
	for i := 0; i < cfg.N; i++ {
		off := 4 * i * cfg.MaxRounds
		leans[i] = LeanBehavior{
			Sent:           counts[off : off : off+cfg.MaxRounds],
			SendOmitted:    counts[off+cfg.MaxRounds : off+cfg.MaxRounds : off+2*cfg.MaxRounds],
			Received:       counts[off+2*cfg.MaxRounds : off+2*cfg.MaxRounds : off+3*cfg.MaxRounds],
			ReceiveOmitted: counts[off+3*cfg.MaxRounds : off+3*cfg.MaxRounds : off+4*cfg.MaxRounds],
		}
		e.Behaviors[i].Lean = &leans[i]
	}

	for r := 1; r <= cfg.MaxRounds; r++ {
		e.Rounds = r
		for i := 0; i < cfg.N; i++ {
			inboxes[i] = inboxes[i][:0]
			l := &leans[i]
			l.Sent = append(l.Sent, 0)
			l.SendOmitted = append(l.SendOmitted, 0)
			l.Received = append(l.Received, 0)
			l.ReceiveOmitted = append(l.ReceiveOmitted, 0)
		}

		// Send phase: same validation and plan-consultation order as
		// runFull, counting instead of recording.
		for i := 0; i < cfg.N; i++ {
			sc.gen++
			l := &leans[i]
			for _, out := range pending[i] {
				if out.To == proc.ID(i) {
					return fmt.Errorf("round %d: %s sent to itself", r, proc.ID(i))
				}
				if out.To < 0 || int(out.To) >= cfg.N {
					return fmt.Errorf("round %d: %s sent to unknown process %d", r, proc.ID(i), out.To)
				}
				if seen[out.To] == sc.gen {
					return fmt.Errorf("round %d: %s sent twice to %s", r, proc.ID(i), out.To)
				}
				seen[out.To] = sc.gen
				m := msg.Message{Sender: proc.ID(i), Receiver: out.To, Round: r, Payload: out.Payload}
				if plan.SendOmit(m) {
					if !faulty.Contains(m.Sender) {
						return fmt.Errorf("round %d: plan send-omits message of correct %s", r, m.Sender)
					}
					l.SendOmitted[r-1]++
					continue
				}
				l.Sent[r-1]++
				inboxes[out.To] = append(inboxes[out.To], m)
			}
		}

		// Receive phase: filter receive-omitted messages out of the inbox
		// in place (the inbox is not recorded, so it can be compacted).
		for j := 0; j < cfg.N; j++ {
			l := &leans[j]
			kept := inboxes[j][:0]
			for _, m := range inboxes[j] {
				if plan.ReceiveOmit(m) {
					if !faulty.Contains(m.Receiver) {
						return fmt.Errorf("round %d: plan receive-omits message of correct %s", r, m.Receiver)
					}
					l.ReceiveOmitted[r-1]++
					continue
				}
				kept = append(kept, m)
			}
			inboxes[j] = kept
			l.Received[r-1] = len(kept)
		}

		// Compute phase: identical early-stop rule to runFull.
		allQuiet := true
		for i := 0; i < cfg.N; i++ {
			pending[i] = machines[i].Step(r, inboxes[i])
			v, decided := machines[i].Decision()
			l := &leans[i]
			if decided {
				// DecidedRound mirrors full-tier DecisionRound(): the first
				// round ever decided, even if a (buggy) machine un-decides
				// later — so it is stamped once and never reset.
				if l.DecidedRound == 0 {
					l.DecidedRound = r
				}
				l.Decided, l.Decision = true, v
			} else {
				// Mirror full-tier FinalDecision semantics: it reads the last
				// round's state, so a machine that un-decides is recorded as
				// undecided here too.
				l.Decided, l.Decision = false, msg.NoDecision
			}
			if len(pending[i]) > 0 || !machines[i].Quiescent() || !decided {
				allQuiet = false
			}
		}

		if allQuiet && !cfg.DisableEarlyStop {
			e.Quiesced = true
			break
		}
	}
	return nil
}

// Conforms re-runs the honest machine of every process not in skip against
// the received messages recorded in e and verifies that the recorded send
// behavior (sent ∪ send-omitted) matches the machine's output exactly, and
// that recorded decisions match the machine's decisions. This is the
// independent validity check for constructed executions: it proves the
// trace is genuinely generated by the protocol's state machines. It
// requires a full trace: lean executions carry no message identities to
// replay against.
func Conforms(e *Execution, factory Factory, skip proc.Set) error {
	if e.Recording != RecordFull {
		return fmt.Errorf("conforms: requires a full trace, got recording level %q — re-run the configuration at RecordFull", e.Recording)
	}
	// Scratch reused across processes and rounds: Conforms runs once per
	// campaign probe at the full tier, and rebuilding three slices per
	// process per round dominated its allocation profile.
	var outgoing, received []msg.Message
	byTo := make(map[proc.ID]string)
	for i := 0; i < e.N; i++ {
		id := proc.ID(i)
		if skip.Contains(id) {
			continue
		}
		b := e.Behaviors[i]
		machine := factory(id, b.Proposal)
		out := machine.Init()
		for r := 1; r <= len(b.Fragments); r++ {
			f := b.Frag(r)
			outgoing = append(outgoing[:0], f.Sent...)
			outgoing = append(outgoing, f.SendOmitted...)
			if err := sameOutgoing(id, r, out, outgoing, byTo); err != nil {
				return err
			}
			received = append(received[:0], f.Received...)
			msg.Sort(received)
			out = machine.Step(r, received)
			v, ok := machine.Decision()
			if ok != f.Decided || (ok && v != f.Decision) {
				return fmt.Errorf("%s round %d: recorded decision (%q,%v) != machine decision (%q,%v)",
					id, r, f.Decision, f.Decided, v, ok)
			}
		}
	}
	return nil
}

// sameOutgoing checks the machine's emitted messages against the trace's
// recorded ones. byTo is caller-provided scratch, cleared on entry.
func sameOutgoing(id proc.ID, round int, out []Outgoing, recorded []msg.Message, byTo map[proc.ID]string) error {
	if len(out) != len(recorded) {
		return fmt.Errorf("%s round %d: machine emits %d messages, trace records %d",
			id, round, len(out), len(recorded))
	}
	clear(byTo)
	for _, o := range out {
		byTo[o.To] = o.Payload
	}
	for _, m := range recorded {
		p, ok := byTo[m.Receiver]
		if !ok {
			return fmt.Errorf("%s round %d: trace records message to %s the machine never emits",
				id, round, m.Receiver)
		}
		if p != m.Payload {
			return fmt.Errorf("%s round %d: payload to %s differs between machine and trace",
				id, round, m.Receiver)
		}
	}
	return nil
}
