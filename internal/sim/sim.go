// Package sim implements the synchronous computational model of §2 and
// Appendix A.1: n deterministic state machines advancing in lock-step
// rounds, a static adversary that corrupts up to t processes before the
// run, and full per-round trace recording.
//
// The engine produces an Execution — the exact object Appendix A.1.6
// defines: a faulty set plus one Behavior per process, where a Behavior is
// a sequence of Fragments (state, sent, send-omitted, received,
// receive-omitted per round). Everything downstream — the omission-model
// validator, swap_omission, merge, and the lower-bound falsifier — operates
// on these traces.
//
// Determinism contract: a Machine's outputs may depend only on its inputs
// (proposal, round number, received messages). The engine sorts received
// messages by sender before every Step, so identical views yield identical
// behavior — the indistinguishability property the paper's proofs rely on.
package sim

import (
	"fmt"
	"sync/atomic"

	"expensive/internal/msg"
	"expensive/internal/proc"
)

// runCount counts Run invocations process-wide. The experiment engine
// snapshots it around a run to attribute probe counts per experiment.
var runCount atomic.Int64

// Runs returns the total number of simulation probes (Run invocations)
// started so far in this process.
func Runs() int64 { return runCount.Load() }

// Outgoing is a message a machine asks the engine to send in the next
// round. The engine stamps sender and round.
type Outgoing struct {
	To      proc.ID
	Payload string
}

// Machine is the deterministic per-process state machine of Appendix A.1.3.
//
// Init returns the messages sent in round 1 (they depend only on the
// initial state). Step consumes the messages received in round r and
// returns the messages to send in round r+1. Decision exposes the
// decision-bit component of the state; once set it must never change.
// Quiescent reports that the machine will never send again regardless of
// future inputs — the engine uses it for sound early termination.
type Machine interface {
	Init() []Outgoing
	Step(round int, received []msg.Message) []Outgoing
	Decision() (msg.Value, bool)
	Quiescent() bool
}

// Factory builds the honest machine of process id with the given proposal.
type Factory func(id proc.ID, proposal msg.Value) Machine

// FaultPlan is the static adversary: it fixes the corrupted set before the
// run and controls how corrupted processes misbehave. Honest machines of
// corrupted processes still run under an omission plan (they are "honest
// but dropped"); a Byzantine plan replaces the machine outright.
type FaultPlan interface {
	// Faulty returns the corrupted set F, |F| <= t.
	Faulty() proc.Set
	// Byzantine returns a replacement machine for corrupted process id, or
	// nil to run the honest machine subject to omissions.
	Byzantine(id proc.ID) Machine
	// SendOmit reports whether the corrupted sender send-omits m.
	SendOmit(m msg.Message) bool
	// ReceiveOmit reports whether the corrupted receiver receive-omits m.
	ReceiveOmit(m msg.Message) bool
}

// NoFaults is the fully-correct fault plan (the paper's E0-style runs).
type NoFaults struct{}

var _ FaultPlan = NoFaults{}

// Faulty implements FaultPlan.
func (NoFaults) Faulty() proc.Set { return proc.Set{} }

// Byzantine implements FaultPlan.
func (NoFaults) Byzantine(proc.ID) Machine { return nil }

// SendOmit implements FaultPlan.
func (NoFaults) SendOmit(msg.Message) bool { return false }

// ReceiveOmit implements FaultPlan.
func (NoFaults) ReceiveOmit(msg.Message) bool { return false }

// OmissionPlan corrupts F with send/receive omission faults chosen by the
// two predicates (§3's failure model). Honest machines keep running.
type OmissionPlan struct {
	F         proc.Set
	SendFn    func(m msg.Message) bool
	ReceiveFn func(m msg.Message) bool
}

var _ FaultPlan = OmissionPlan{}

// Faulty implements FaultPlan.
func (p OmissionPlan) Faulty() proc.Set { return p.F }

// Byzantine implements FaultPlan.
func (p OmissionPlan) Byzantine(proc.ID) Machine { return nil }

// SendOmit implements FaultPlan.
func (p OmissionPlan) SendOmit(m msg.Message) bool {
	return p.SendFn != nil && p.F.Contains(m.Sender) && p.SendFn(m)
}

// ReceiveOmit implements FaultPlan.
func (p OmissionPlan) ReceiveOmit(m msg.Message) bool {
	return p.ReceiveFn != nil && p.F.Contains(m.Receiver) && p.ReceiveFn(m)
}

// ByzantinePlan replaces the machines of corrupted processes with
// adversarial ones.
type ByzantinePlan struct {
	Machines map[proc.ID]Machine
}

var _ FaultPlan = ByzantinePlan{}

// Faulty implements FaultPlan.
func (p ByzantinePlan) Faulty() proc.Set {
	ids := make([]proc.ID, 0, len(p.Machines))
	for id := range p.Machines {
		ids = append(ids, id)
	}
	return proc.NewSet(ids...)
}

// Byzantine implements FaultPlan.
func (p ByzantinePlan) Byzantine(id proc.ID) Machine { return p.Machines[id] }

// SendOmit implements FaultPlan.
func (p ByzantinePlan) SendOmit(msg.Message) bool { return false }

// ReceiveOmit implements FaultPlan.
func (p ByzantinePlan) ReceiveOmit(msg.Message) bool { return false }

// Config parameterizes a run.
type Config struct {
	N int
	T int
	// Proposals assigns a proposal to every process (len N). The engine
	// treats entries of corrupted processes as their nominal initial state.
	Proposals []msg.Value
	// MaxRounds is the execution horizon (must be positive). Protocol round
	// bounds are supplied by the caller; the engine may stop earlier only
	// when every machine is quiescent.
	MaxRounds int
	// DisableEarlyStop forces the engine to run exactly MaxRounds even when
	// all machines are quiescent. The lower-bound machinery uses it so all
	// probe executions share one horizon.
	DisableEarlyStop bool
}

func (c Config) validate() error {
	switch {
	case c.N < 2:
		return fmt.Errorf("config: need n >= 2, got %d", c.N)
	case c.T < 0 || c.T >= c.N:
		return fmt.Errorf("config: need 0 <= t < n, got n=%d t=%d", c.N, c.T)
	case len(c.Proposals) != c.N:
		return fmt.Errorf("config: need %d proposals, got %d", c.N, len(c.Proposals))
	case c.MaxRounds <= 0:
		return fmt.Errorf("config: MaxRounds must be positive, got %d", c.MaxRounds)
	}
	return nil
}

// Fragment is the Appendix A.1.4 per-round record of one process: the
// messages it sent, send-omitted, received and receive-omitted in the
// round, plus the decision component of its state at the start of the
// next round.
type Fragment struct {
	Round          int
	Sent           []msg.Message
	SendOmitted    []msg.Message
	Received       []msg.Message
	ReceiveOmitted []msg.Message
	Decided        bool
	Decision       msg.Value
}

// Behavior is the Appendix A.1.5 full per-process record: proposal plus
// one fragment per round.
type Behavior struct {
	ID        proc.ID
	Proposal  msg.Value
	Fragments []Fragment
}

// Frag returns the fragment of round r (1-based), or an empty fragment if
// the behavior is shorter (the process is silent past its recorded end).
func (b *Behavior) Frag(r int) Fragment {
	if r < 1 || r > len(b.Fragments) {
		return Fragment{Round: r}
	}
	return b.Fragments[r-1]
}

// FinalDecision returns the process's decision at the end of the behavior.
func (b *Behavior) FinalDecision() (msg.Value, bool) {
	if len(b.Fragments) == 0 {
		return msg.NoDecision, false
	}
	f := b.Fragments[len(b.Fragments)-1]
	if !f.Decided {
		return msg.NoDecision, false
	}
	return f.Decision, true
}

// AllSent returns every message the process (successfully) sent.
func (b *Behavior) AllSent() []msg.Message {
	var out []msg.Message
	for _, f := range b.Fragments {
		out = append(out, f.Sent...)
	}
	return out
}

// AllSendOmitted returns every message the process send-omitted.
func (b *Behavior) AllSendOmitted() []msg.Message {
	var out []msg.Message
	for _, f := range b.Fragments {
		out = append(out, f.SendOmitted...)
	}
	return out
}

// AllReceiveOmitted returns every message the process receive-omitted.
func (b *Behavior) AllReceiveOmitted() []msg.Message {
	var out []msg.Message
	for _, f := range b.Fragments {
		out = append(out, f.ReceiveOmitted...)
	}
	return out
}

// Execution is the Appendix A.1.6 object: a bounded prefix of a (formally
// infinite) execution, with the faulty set and one behavior per process.
type Execution struct {
	N      int
	T      int
	Faulty proc.Set
	// Behaviors has length N, indexed by process ID.
	Behaviors []*Behavior
	// Rounds is the number of recorded rounds.
	Rounds int
	// Quiesced reports that the run ended because every machine was
	// quiescent (so the recorded prefix determines the infinite execution).
	Quiesced bool
}

// Behavior returns the behavior of process id.
func (e *Execution) Behavior(id proc.ID) *Behavior { return e.Behaviors[id] }

// Correct returns Π \ Faulty.
func (e *Execution) Correct() proc.Set { return e.Faulty.Complement(e.N) }

// Decision returns the final decision of process id.
func (e *Execution) Decision(id proc.ID) (msg.Value, bool) {
	return e.Behaviors[id].FinalDecision()
}

// CommonDecision returns the unique decision of all processes in group, or
// an error if one of them is undecided or two of them disagree.
func (e *Execution) CommonDecision(group proc.Set) (msg.Value, error) {
	var common msg.Value
	first := true
	for _, id := range group.Members() {
		v, ok := e.Decision(id)
		if !ok {
			return msg.NoDecision, fmt.Errorf("%s is undecided after %d rounds", id, e.Rounds)
		}
		if first {
			common, first = v, false
		} else if v != common {
			return msg.NoDecision, fmt.Errorf("%s decided %q, others decided %q", id, v, common)
		}
	}
	if first {
		return msg.NoDecision, fmt.Errorf("empty group")
	}
	return common, nil
}

// MessagesSentBy counts messages successfully sent by processes in group.
func (e *Execution) MessagesSentBy(group proc.Set) int {
	total := 0
	for _, id := range group.Members() {
		for _, f := range e.Behaviors[id].Fragments {
			total += len(f.Sent)
		}
	}
	return total
}

// CorrectMessages is the paper's message complexity of the execution: the
// number of messages sent by correct processes.
func (e *Execution) CorrectMessages() int { return e.MessagesSentBy(e.Correct()) }

// Proposals returns the proposal vector of the execution.
func (e *Execution) Proposals() []msg.Value {
	out := make([]msg.Value, e.N)
	for i, b := range e.Behaviors {
		out[i] = b.Proposal
	}
	return out
}

// Run executes the protocol under the fault plan and returns the recorded
// execution. Errors indicate harness misuse (bad config, a machine sending
// to itself or twice to one peer, an omission plan touching a correct
// process) — never mere protocol-property violations, which are left in
// the trace for the checkers to find.
func Run(cfg Config, factory Factory, plan FaultPlan) (*Execution, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	runCount.Add(1)
	faulty := plan.Faulty()
	if faulty.Len() > cfg.T {
		return nil, fmt.Errorf("fault plan corrupts %d > t=%d processes", faulty.Len(), cfg.T)
	}
	if !faulty.SubsetOf(proc.Universe(cfg.N)) {
		return nil, fmt.Errorf("fault plan corrupts processes outside Π: %v", faulty)
	}

	machines := make([]Machine, cfg.N)
	behaviors := make([]*Behavior, cfg.N)
	for i := 0; i < cfg.N; i++ {
		id := proc.ID(i)
		if m := plan.Byzantine(id); m != nil {
			if !faulty.Contains(id) {
				return nil, fmt.Errorf("byzantine machine supplied for correct process %s", id)
			}
			machines[i] = m
		} else {
			machines[i] = factory(id, cfg.Proposals[i])
		}
		behaviors[i] = &Behavior{ID: id, Proposal: cfg.Proposals[i]}
	}

	// Outgoing messages for the next round, per process.
	pending := make([][]Outgoing, cfg.N)
	for i := range machines {
		pending[i] = machines[i].Init()
	}

	// Scratch buffers reused across rounds: per-round message routing is
	// the engine's hot path, and the probe loops above it (falsifier
	// sweeps, experiment grids) run it millions of rounds. Fragment slices
	// (Sent, Received, …) are NOT reused — each round's fragment is
	// appended to a behavior and must own its backing arrays — but the
	// routing tables and the duplicate-receiver check are.
	inboxes := make([][]msg.Message, cfg.N)
	frags := make([]Fragment, cfg.N)
	seen := make([]int, cfg.N) // generation-stamped duplicate-receiver check
	gen := 0

	rounds := 0
	quiesced := false
	for r := 1; r <= cfg.MaxRounds; r++ {
		rounds = r
		for i := range inboxes {
			inboxes[i] = inboxes[i][:0]
		}
		for i := range frags {
			frags[i] = Fragment{Round: r}
		}

		// Send phase.
		for i := 0; i < cfg.N; i++ {
			gen++
			for _, out := range pending[i] {
				if out.To == proc.ID(i) {
					return nil, fmt.Errorf("round %d: %s sent to itself", r, proc.ID(i))
				}
				if out.To < 0 || int(out.To) >= cfg.N {
					return nil, fmt.Errorf("round %d: %s sent to unknown process %d", r, proc.ID(i), out.To)
				}
				if seen[out.To] == gen {
					return nil, fmt.Errorf("round %d: %s sent twice to %s", r, proc.ID(i), out.To)
				}
				seen[out.To] = gen
				m := msg.Message{Sender: proc.ID(i), Receiver: out.To, Round: r, Payload: out.Payload}
				if plan.SendOmit(m) {
					if !faulty.Contains(m.Sender) {
						return nil, fmt.Errorf("round %d: plan send-omits message of correct %s", r, m.Sender)
					}
					frags[i].SendOmitted = append(frags[i].SendOmitted, m)
					continue
				}
				frags[i].Sent = append(frags[i].Sent, m)
				inboxes[out.To] = append(inboxes[out.To], m)
			}
		}

		// Receive phase.
		for j := 0; j < cfg.N; j++ {
			msg.Sort(inboxes[j])
			for _, m := range inboxes[j] {
				if plan.ReceiveOmit(m) {
					if !faulty.Contains(m.Receiver) {
						return nil, fmt.Errorf("round %d: plan receive-omits message of correct %s", r, m.Receiver)
					}
					frags[j].ReceiveOmitted = append(frags[j].ReceiveOmitted, m)
					continue
				}
				frags[j].Received = append(frags[j].Received, m)
			}
		}

		// Compute phase: new state and next round's messages. Early stop is
		// sound only when every machine is quiescent AND decided: a quiescent
		// machine never sends again, but an undecided one might still decide
		// in a later (silent) round.
		allQuiet := true
		for i := 0; i < cfg.N; i++ {
			pending[i] = machines[i].Step(r, frags[i].Received)
			v, decided := machines[i].Decision()
			if decided {
				frags[i].Decided, frags[i].Decision = true, v
			}
			behaviors[i].Fragments = append(behaviors[i].Fragments, frags[i])
			if len(pending[i]) > 0 || !machines[i].Quiescent() || !decided {
				allQuiet = false
			}
		}

		if allQuiet && !cfg.DisableEarlyStop {
			quiesced = true
			break
		}
	}

	return &Execution{
		N:         cfg.N,
		T:         cfg.T,
		Faulty:    faulty,
		Behaviors: behaviors,
		Rounds:    rounds,
		Quiesced:  quiesced,
	}, nil
}

// Conforms re-runs the honest machine of every process not in skip against
// the received messages recorded in e and verifies that the recorded send
// behavior (sent ∪ send-omitted) matches the machine's output exactly, and
// that recorded decisions match the machine's decisions. This is the
// independent validity check for constructed executions: it proves the
// trace is genuinely generated by the protocol's state machines.
func Conforms(e *Execution, factory Factory, skip proc.Set) error {
	for i := 0; i < e.N; i++ {
		id := proc.ID(i)
		if skip.Contains(id) {
			continue
		}
		b := e.Behaviors[i]
		machine := factory(id, b.Proposal)
		out := machine.Init()
		for r := 1; r <= len(b.Fragments); r++ {
			f := b.Frag(r)
			if err := sameOutgoing(id, r, out, append(append([]msg.Message{}, f.Sent...), f.SendOmitted...)); err != nil {
				return err
			}
			received := append([]msg.Message{}, f.Received...)
			msg.Sort(received)
			out = machine.Step(r, received)
			v, ok := machine.Decision()
			if ok != f.Decided || (ok && v != f.Decision) {
				return fmt.Errorf("%s round %d: recorded decision (%q,%v) != machine decision (%q,%v)",
					id, r, f.Decision, f.Decided, v, ok)
			}
		}
	}
	return nil
}

func sameOutgoing(id proc.ID, round int, out []Outgoing, recorded []msg.Message) error {
	if len(out) != len(recorded) {
		return fmt.Errorf("%s round %d: machine emits %d messages, trace records %d",
			id, round, len(out), len(recorded))
	}
	byTo := make(map[proc.ID]string, len(out))
	for _, o := range out {
		byTo[o.To] = o.Payload
	}
	for _, m := range recorded {
		p, ok := byTo[m.Receiver]
		if !ok {
			return fmt.Errorf("%s round %d: trace records message to %s the machine never emits",
				id, round, m.Receiver)
		}
		if p != m.Payload {
			return fmt.Errorf("%s round %d: payload to %s differs between machine and trace",
				id, round, m.Receiver)
		}
	}
	return nil
}
