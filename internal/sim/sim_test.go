package sim_test

import (
	"reflect"
	"strings"
	"testing"

	"expensive/internal/msg"
	"expensive/internal/omission"
	"expensive/internal/proc"
	"expensive/internal/sim"
)

// floodMachine broadcasts its proposal for `rounds` rounds, then decides
// the lexicographically smallest value it has seen.
type floodMachine struct {
	n, rounds int
	id        proc.ID
	min       msg.Value
	decided   bool
	done      bool
}

func floodFactory(n, rounds int) sim.Factory {
	return func(id proc.ID, proposal msg.Value) sim.Machine {
		return &floodMachine{n: n, rounds: rounds, id: id, min: proposal}
	}
}

func (m *floodMachine) broadcast() []sim.Outgoing {
	var out []sim.Outgoing
	for p := proc.ID(0); p < proc.ID(m.n); p++ {
		if p != m.id {
			out = append(out, sim.Outgoing{To: p, Payload: string(m.min)})
		}
	}
	return out
}

func (m *floodMachine) Init() []sim.Outgoing { return m.broadcast() }

func (m *floodMachine) Step(round int, received []msg.Message) []sim.Outgoing {
	for _, rm := range received {
		if v := msg.Value(rm.Payload); v < m.min {
			m.min = v
		}
	}
	if round >= m.rounds {
		m.decided, m.done = true, true
		return nil
	}
	return m.broadcast()
}

func (m *floodMachine) Decision() (msg.Value, bool) {
	if !m.decided {
		return msg.NoDecision, false
	}
	return m.min, true
}

func (m *floodMachine) Quiescent() bool { return m.done }

// badMachine misbehaves structurally on demand.
type badMachine struct {
	mode string
	id   proc.ID
}

func (m *badMachine) Init() []sim.Outgoing {
	switch m.mode {
	case "self":
		return []sim.Outgoing{{To: m.id, Payload: "x"}}
	case "dup":
		to := proc.ID(0)
		if m.id == 0 {
			to = 1
		}
		return []sim.Outgoing{{To: to, Payload: "a"}, {To: to, Payload: "b"}}
	case "range":
		return []sim.Outgoing{{To: 99, Payload: "x"}}
	}
	return nil
}

func (m *badMachine) Step(int, []msg.Message) []sim.Outgoing { return nil }
func (m *badMachine) Decision() (msg.Value, bool)            { return msg.NoDecision, false }
func (m *badMachine) Quiescent() bool                        { return true }

func proposals(vals ...string) []msg.Value {
	out := make([]msg.Value, len(vals))
	for i, v := range vals {
		out[i] = msg.Value(v)
	}
	return out
}

func TestRunFloodNoFaults(t *testing.T) {
	cfg := sim.Config{N: 4, T: 1, Proposals: proposals("3", "1", "2", "9"), MaxRounds: 10}
	e, err := sim.Run(cfg, floodFactory(4, 2), sim.NoFaults{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	d, err := e.CommonDecision(proc.Universe(4))
	if err != nil {
		t.Fatalf("CommonDecision: %v", err)
	}
	if d != "1" {
		t.Errorf("decision = %q, want 1", d)
	}
	if !e.Quiesced {
		t.Error("expected early quiescent stop")
	}
	if e.Rounds != 2 {
		t.Errorf("Rounds = %d, want 2", e.Rounds)
	}
	// 4 processes × 3 peers × 2 rounds.
	if got := e.CorrectMessages(); got != 24 {
		t.Errorf("CorrectMessages = %d, want 24", got)
	}
	if err := omission.Validate(e); err != nil {
		t.Errorf("trace invalid: %v", err)
	}
	if err := sim.Conforms(e, floodFactory(4, 2), proc.Set{}); err != nil {
		t.Errorf("Conforms: %v", err)
	}
}

func TestRunDeterminism(t *testing.T) {
	cfg := sim.Config{N: 5, T: 1, Proposals: proposals("5", "3", "4", "1", "2"), MaxRounds: 8}
	e1, err := sim.Run(cfg, floodFactory(5, 3), sim.NoFaults{})
	if err != nil {
		t.Fatal(err)
	}
	e2, err := sim.Run(cfg, floodFactory(5, 3), sim.NoFaults{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(e1.Behaviors, e2.Behaviors) {
		t.Error("two identical runs produced different traces")
	}
}

func TestConfigValidation(t *testing.T) {
	base := sim.Config{N: 3, T: 1, Proposals: proposals("0", "0", "0"), MaxRounds: 5}
	cases := []struct {
		name string
		mut  func(c sim.Config) sim.Config
	}{
		{"n too small", func(c sim.Config) sim.Config { c.N = 1; return c }},
		{"t negative", func(c sim.Config) sim.Config { c.T = -1; return c }},
		{"t >= n", func(c sim.Config) sim.Config { c.T = 3; return c }},
		{"proposal count", func(c sim.Config) sim.Config { c.Proposals = proposals("0"); return c }},
		{"max rounds", func(c sim.Config) sim.Config { c.MaxRounds = 0; return c }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := sim.Run(tc.mut(base), floodFactory(3, 1), sim.NoFaults{}); err == nil {
				t.Error("expected config error")
			}
		})
	}
}

func TestStructuralMisbehaviorRejected(t *testing.T) {
	for _, mode := range []string{"self", "dup", "range"} {
		t.Run(mode, func(t *testing.T) {
			factory := func(id proc.ID, _ msg.Value) sim.Machine {
				return &badMachine{mode: mode, id: id}
			}
			cfg := sim.Config{N: 3, T: 0, Proposals: proposals("0", "0", "0"), MaxRounds: 2}
			if _, err := sim.Run(cfg, factory, sim.NoFaults{}); err == nil {
				t.Errorf("mode %s: expected engine error", mode)
			}
		})
	}
}

func TestOmissionPlanGuards(t *testing.T) {
	// A plan whose predicates touch correct processes must be rejected.
	plan := sim.OmissionPlan{
		F:      proc.NewSet(0),
		SendFn: func(m msg.Message) bool { return true },
	}
	cfg := sim.Config{N: 3, T: 1, Proposals: proposals("0", "1", "2"), MaxRounds: 3}
	e, err := sim.Run(cfg, floodFactory(3, 2), plan)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Only p0's sends are omitted (plan guards on F internally).
	if got := len(e.Behavior(0).AllSendOmitted()); got == 0 {
		t.Error("p0 send-omissions missing")
	}
	if got := len(e.Behavior(1).AllSendOmitted()); got != 0 {
		t.Error("correct p1 send-omitted")
	}
	if err := omission.Validate(e); err != nil {
		t.Errorf("trace invalid: %v", err)
	}
}

func TestFaultPlanTooManyFaulty(t *testing.T) {
	plan := sim.OmissionPlan{F: proc.NewSet(0, 1)}
	cfg := sim.Config{N: 3, T: 1, Proposals: proposals("0", "0", "0"), MaxRounds: 2}
	if _, err := sim.Run(cfg, floodFactory(3, 1), plan); err == nil {
		t.Error("expected error: plan corrupts more than t")
	}
}

func TestByzantinePlan(t *testing.T) {
	// p0 lies: it floods "0" although its proposal is "9".
	liar := &floodMachine{n: 3, rounds: 2, id: 0, min: "0"}
	plan := sim.ByzantinePlan{Machines: map[proc.ID]sim.Machine{0: liar}}
	cfg := sim.Config{N: 3, T: 1, Proposals: proposals("9", "5", "7"), MaxRounds: 5}
	e, err := sim.Run(cfg, floodFactory(3, 2), plan)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	d, err := e.CommonDecision(proc.NewSet(1, 2))
	if err != nil {
		t.Fatalf("CommonDecision: %v", err)
	}
	if d != "0" {
		t.Errorf("correct processes decided %q, want the injected 0", d)
	}
	// Byzantine machine for a process outside the faulty set is a harness bug.
	bad := sim.ByzantinePlan{Machines: map[proc.ID]sim.Machine{}}
	if bad.Byzantine(1) != nil {
		t.Error("Byzantine(1) should be nil for empty plan")
	}
}

func TestDisableEarlyStop(t *testing.T) {
	cfg := sim.Config{N: 3, T: 0, Proposals: proposals("1", "2", "3"), MaxRounds: 6, DisableEarlyStop: true}
	e, err := sim.Run(cfg, floodFactory(3, 2), sim.NoFaults{})
	if err != nil {
		t.Fatal(err)
	}
	if e.Rounds != 6 || e.Quiesced {
		t.Errorf("Rounds = %d Quiesced = %v, want 6/false", e.Rounds, e.Quiesced)
	}
}

func TestExecutionAccessors(t *testing.T) {
	cfg := sim.Config{N: 3, T: 1, Proposals: proposals("2", "1", "3"), MaxRounds: 5}
	e, err := sim.Run(cfg, floodFactory(3, 2), sim.NoFaults{})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Proposals(); !reflect.DeepEqual(got, proposals("2", "1", "3")) {
		t.Errorf("Proposals = %v", got)
	}
	if !e.Correct().Equal(proc.Universe(3)) {
		t.Errorf("Correct = %v", e.Correct())
	}
	if _, err := e.CommonDecision(proc.Set{}); err == nil {
		t.Error("empty group should error")
	}
	b := e.Behavior(1)
	if b.Frag(99).Round != 99 || len(b.Frag(99).Received) != 0 {
		t.Error("Frag beyond length should be empty")
	}
	if v, ok := b.FinalDecision(); !ok || v != "1" {
		t.Errorf("FinalDecision = %q/%v", v, ok)
	}
}

func TestConformsDetectsForgedTrace(t *testing.T) {
	cfg := sim.Config{N: 3, T: 1, Proposals: proposals("2", "1", "3"), MaxRounds: 5}
	e, err := sim.Run(cfg, floodFactory(3, 2), sim.NoFaults{})
	if err != nil {
		t.Fatal(err)
	}
	// Tamper with a recorded decision.
	frag := &e.Behavior(2).Fragments[len(e.Behavior(2).Fragments)-1]
	frag.Decision = "999"
	err = sim.Conforms(e, floodFactory(3, 2), proc.Set{})
	if err == nil || !strings.Contains(err.Error(), "decision") {
		t.Errorf("Conforms should reject tampered decision, got %v", err)
	}
	// Skip set suppresses the check.
	if err := sim.Conforms(e, floodFactory(3, 2), proc.NewSet(2)); err != nil {
		t.Errorf("Conforms with skip: %v", err)
	}
}

func TestCommonDecisionDisagreement(t *testing.T) {
	// Isolate p2 from round 1 in a 2-round flood: it never learns "1".
	group := proc.NewSet(2)
	plan := sim.OmissionPlan{
		F: group,
		ReceiveFn: func(m msg.Message) bool {
			return group.Contains(m.Receiver) && !group.Contains(m.Sender)
		},
	}
	cfg := sim.Config{N: 3, T: 1, Proposals: proposals("2", "1", "3"), MaxRounds: 5}
	e, err := sim.Run(cfg, floodFactory(3, 2), plan)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.CommonDecision(proc.Universe(3)); err == nil {
		t.Error("expected disagreement across the isolated boundary")
	}
	if d, _ := e.Decision(2); d != "3" {
		t.Errorf("isolated process decided %q, want its own 3", d)
	}
}
