package memnet

import (
	"strings"
	"testing"

	"expensive/internal/proc"
	"expensive/internal/transport"
)

func TestDeliveryRoundTrip(t *testing.T) {
	mesh := New(3, nil)
	eps := mesh.Endpoints()

	sent := transport.Frame{From: 0, To: 2, Round: 1, Has: true, Payload: "hello"}
	if err := eps[0].Send(2, sent); err != nil {
		t.Fatalf("Send: %v", err)
	}
	got, err := eps[2].Recv()
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if got != sent {
		t.Errorf("received %+v, want %+v", got, sent)
	}
}

func TestFIFOPerLink(t *testing.T) {
	mesh := New(2, nil)
	eps := mesh.Endpoints()
	for r := 1; r <= 5; r++ {
		f := transport.Frame{From: 0, To: 1, Round: r, Has: true, Payload: "m"}
		if err := eps[0].Send(1, f); err != nil {
			t.Fatalf("Send round %d: %v", r, err)
		}
	}
	for r := 1; r <= 5; r++ {
		got, err := eps[1].Recv()
		if err != nil {
			t.Fatalf("Recv round %d: %v", r, err)
		}
		if got.Round != r {
			t.Fatalf("frame order broken: got round %d, want %d", got.Round, r)
		}
	}
}

func TestDropFilterOmission(t *testing.T) {
	// The drop filter realizes a transport-level omission: the payload is
	// dropped but the frame itself survives, preserving round synchrony.
	filter := func(from, to proc.ID, round int) bool { return from == 0 && to == 1 && round == 2 }
	mesh := New(2, filter)
	eps := mesh.Endpoints()

	for _, round := range []int{1, 2, 3} {
		f := transport.Frame{From: 0, To: 1, Round: round, Has: true, Payload: "v"}
		if err := eps[0].Send(1, f); err != nil {
			t.Fatalf("Send round %d: %v", round, err)
		}
		got, err := eps[1].Recv()
		if err != nil {
			t.Fatalf("Recv round %d: %v", round, err)
		}
		wantPayload := round != 2
		if got.Has != wantPayload {
			t.Errorf("round %d: frame Has=%v, want %v", round, got.Has, wantPayload)
		}
		if got.Has && got.Payload != "v" {
			t.Errorf("round %d: payload %q corrupted", round, got.Payload)
		}
		if !got.Has && got.Payload != "" {
			t.Errorf("round %d: dropped frame still carries payload %q", round, got.Payload)
		}
	}
}

func TestEmptyFramesPassFilter(t *testing.T) {
	// Only payloads are omission-faultable; empty frames always pass (they
	// carry the round structure).
	filter := func(from, to proc.ID, round int) bool { return true }
	mesh := New(2, filter)
	eps := mesh.Endpoints()
	if err := eps[0].Send(1, transport.Frame{From: 0, To: 1, Round: 1}); err != nil {
		t.Fatalf("Send: %v", err)
	}
	got, err := eps[1].Recv()
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if got.Has {
		t.Errorf("empty frame gained a payload: %+v", got)
	}
}

func TestSendToUnknownPeer(t *testing.T) {
	mesh := New(2, nil)
	eps := mesh.Endpoints()
	if err := eps[0].Send(5, transport.Frame{}); err == nil {
		t.Error("expected error for unknown peer")
	}
	if err := eps[0].Send(-1, transport.Frame{}); err == nil {
		t.Error("expected error for negative peer")
	}
}

func TestCloseIsIdempotentAndUnblocksRecv(t *testing.T) {
	mesh := New(3, nil)
	eps := mesh.Endpoints()

	done := make(chan error, 1)
	go func() {
		_, err := eps[1].Recv()
		done <- err
	}()

	if err := eps[0].Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Closing any endpoint closes the mesh exactly once; further closes
	// are no-ops.
	if err := eps[2].Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := <-done; err == nil || !strings.Contains(err.Error(), "closed") {
		t.Errorf("Recv after close: got %v, want mesh-closed error", err)
	}
}
