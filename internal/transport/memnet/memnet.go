// Package memnet is the in-process mesh: reliable FIFO links realized as
// buffered Go channels, one per ordered pair of processes, with optional
// transport-level fault injection. It is the default substrate for the
// examples and for tests that want live goroutine concurrency without
// sockets.
package memnet

import (
	"fmt"
	"sync"

	"expensive/internal/proc"
	"expensive/internal/transport"
)

// DropFilter decides whether the payload of a frame is dropped in flight
// (the frame itself still arrives, preserving round synchrony — this is
// exactly a transport-level send/receive-omission fault).
type DropFilter func(from, to proc.ID, round int) bool

// Mesh is a full in-memory mesh of n endpoints.
type Mesh struct {
	n      int
	inbox  []chan transport.Frame
	filter DropFilter

	mu     sync.Mutex
	closed bool
}

// New builds a mesh of n endpoints. filter may be nil (no faults).
func New(n int, filter DropFilter) *Mesh {
	m := &Mesh{n: n, inbox: make([]chan transport.Frame, n), filter: filter}
	for i := range m.inbox {
		// One frame per peer per round can be in flight; n is a safe bound
		// that keeps senders from ever blocking within a round.
		m.inbox[i] = make(chan transport.Frame, 4*n)
	}
	return m
}

// Endpoints returns the n endpoints of the mesh.
func (m *Mesh) Endpoints() []transport.Endpoint {
	eps := make([]transport.Endpoint, m.n)
	for i := 0; i < m.n; i++ {
		eps[i] = &endpoint{mesh: m, id: proc.ID(i)}
	}
	return eps
}

type endpoint struct {
	mesh *Mesh
	id   proc.ID
}

var _ transport.Endpoint = (*endpoint)(nil)

// Send implements transport.Endpoint.
func (e *endpoint) Send(to proc.ID, f transport.Frame) error {
	if to < 0 || int(to) >= e.mesh.n {
		return fmt.Errorf("memnet: unknown peer %v", to)
	}
	if f.Has && e.mesh.filter != nil && e.mesh.filter(e.id, to, f.Round) {
		f.Has, f.Payload = false, "" // payload dropped, frame survives
	}
	select {
	case e.mesh.inbox[to] <- f:
		return nil
	default:
		return fmt.Errorf("memnet: inbox of %v full (round protocol violated)", to)
	}
}

// Recv implements transport.Endpoint.
func (e *endpoint) Recv() (transport.Frame, error) {
	f, ok := <-e.mesh.inbox[e.id]
	if !ok {
		return transport.Frame{}, fmt.Errorf("memnet: mesh: %w", transport.ErrClosed)
	}
	return f, nil
}

// Close implements transport.Endpoint. Closing any endpoint closes the
// mesh exactly once.
func (e *endpoint) Close() error {
	e.mesh.mu.Lock()
	defer e.mesh.mu.Unlock()
	if !e.mesh.closed {
		e.mesh.closed = true
		for _, ch := range e.mesh.inbox {
			close(ch)
		}
	}
	return nil
}
