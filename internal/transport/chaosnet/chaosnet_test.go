package chaosnet

import (
	"testing"
	"time"

	"expensive/internal/msg"
	"expensive/internal/obs"
	"expensive/internal/proc"
	"expensive/internal/protocols/phaseking"
	"expensive/internal/transport"
	"expensive/internal/transport/memnet"
)

func TestPlanDeterministic(t *testing.T) {
	build := func(seed int64) *Plan {
		p, ok := ByID("storm")
		if !ok {
			t.Fatal("storm profile missing")
		}
		return p.Build(seed, Env{N: 8, T: 2})
	}
	a, b := build(7), build(7)
	if !a.Budget().Equal(b.Budget()) {
		t.Fatalf("budget not deterministic: %v vs %v", a.Budget(), b.Budget())
	}
	other, differs := build(8), false
	for from := proc.ID(0); from < 8; from++ {
		for to := proc.ID(0); to < 8; to++ {
			if from == to {
				continue
			}
			for seq := 0; seq < 64; seq++ {
				fa, fb := a.Faults(from, to, seq), b.Faults(from, to, seq)
				if fa != fb {
					t.Fatalf("plan not deterministic at (%v,%v,%d): %+v vs %+v", from, to, seq, fa, fb)
				}
				if fa != other.Faults(from, to, seq) || !a.Budget().Equal(other.Budget()) {
					differs = true
				}
			}
		}
	}
	if !differs {
		t.Error("seeds 7 and 8 produced identical plans — the seed is not feeding the streams")
	}
}

func TestLibraryProfiles(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range Library() {
		if p.ID == "" || p.Doc == "" || p.Build == nil {
			t.Errorf("profile %+v incomplete", p)
		}
		if seen[p.ID] {
			t.Errorf("duplicate profile ID %q", p.ID)
		}
		seen[p.ID] = true
		if plan := p.Build(1, Env{N: 4}); plan == nil || plan.Name() != p.ID {
			t.Errorf("profile %q built plan %v", p.ID, plan)
		}
	}
	if _, ok := ByID("no-such-profile"); ok {
		t.Error("ByID invented a profile")
	}
	if len(IDs()) != len(seen) {
		t.Errorf("IDs() returned %d entries, want %d", len(IDs()), len(seen))
	}
}

func TestBudgetRestrictsFaults(t *testing.T) {
	plan := NewPlan("budgeted", 3, Env{N: 6, T: 1}, Rule{Kind: Drop, Pct: 100})
	budget := plan.Budget()
	if budget.Len() != 1 {
		t.Fatalf("budget %v, want exactly one process under T=1", budget)
	}
	for from := proc.ID(0); from < 6; from++ {
		for to := proc.ID(0); to < 6; to++ {
			if from == to {
				continue
			}
			f := plan.Faults(from, to, 1)
			touches := budget.Contains(from) || budget.Contains(to)
			if f.Drop != touches {
				t.Errorf("link %v->%v: Drop=%v, budget=%v", from, to, f.Drop, budget)
			}
		}
	}
}

func TestDropIsOmission(t *testing.T) {
	mesh := memnet.New(2, nil)
	eps := Wrap(mesh.Endpoints(), NewPlan("all-drop", 1, Env{N: 2}, Rule{Kind: Drop, Pct: 100}), nil)
	if err := eps[0].Send(1, transport.Frame{From: 0, To: 1, Round: 1, Has: true, Payload: "v"}); err != nil {
		t.Fatalf("Send: %v", err)
	}
	got, err := eps[1].Recv()
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if got.Has || got.Payload != "" {
		t.Errorf("dropped payload leaked: %+v", got)
	}
	if got.Round != 1 {
		t.Errorf("frame structure mangled: %+v", got)
	}
}

func TestCorruptionDetectedAndVoided(t *testing.T) {
	rec := obs.New()
	mesh := memnet.New(2, nil)
	eps := Wrap(mesh.Endpoints(), NewPlan("all-corrupt", 1, Env{N: 2}, Rule{Kind: Corrupt, Pct: 100}), rec)
	if err := eps[0].Send(1, transport.Frame{From: 0, To: 1, Round: 1, Has: true, Payload: "v"}); err != nil {
		t.Fatalf("Send: %v", err)
	}
	got, err := eps[1].Recv()
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if got.Has {
		t.Errorf("corrupted payload survived verification: %+v", got)
	}
	if rec.Counter("chaos_corrupted").Value() != 1 || rec.Counter("chaos_detected").Value() != 1 {
		t.Errorf("counters corrupted=%d detected=%d, want 1/1",
			rec.Counter("chaos_corrupted").Value(), rec.Counter("chaos_detected").Value())
	}
}

func TestChecksumRoundTrip(t *testing.T) {
	for _, payload := range []string{"", "x", `{"V":"1"}`, "cs:looks-like-a-sum"} {
		got, ok := checkSum(sum(payload))
		if !ok || got != payload {
			t.Errorf("checksum round trip of %q: got %q ok=%v", payload, got, ok)
		}
		if _, ok := checkSum(corruptSum(payload)); ok {
			t.Errorf("corrupt sum of %q passed verification", payload)
		}
	}
	// Unsummed payloads (unwrapped senders) pass through unverified.
	if got, ok := checkSum("plain"); !ok || got != "plain" {
		t.Errorf("plain payload: got %q ok=%v", got, ok)
	}
}

// runCluster drives phase-king over a wrapped memnet mesh and returns the
// per-node results. Phase-king tolerates arbitrary behavior of up to t
// processes, so any budgeted plan must leave the correct group agreed.
func runCluster(t *testing.T, n, tf int, plan *Plan, proposals []msg.Value) []transport.NodeResult {
	t.Helper()
	mesh := memnet.New(n, nil)
	eps := Wrap(mesh.Endpoints(), plan, nil)
	cluster := transport.Cluster{
		N:         n,
		Endpoints: eps,
		Factory:   phaseking.New(phaseking.Config{N: n, T: tf}),
		Proposals: proposals,
		Rounds:    phaseking.RoundBound(tf),
	}
	results, err := cluster.Run()
	if err != nil {
		t.Fatalf("cluster under %s: %v", plan.Name(), err)
	}
	return results
}

func TestDuplicateReorderPreservesDecisions(t *testing.T) {
	// Duplicate and reorder touch timing and copies only — the hardened
	// round barrier must absorb them, leaving decisions identical to the
	// fault-free run.
	n, tf := 4, 0
	proposals := []msg.Value{"1", "0", "1", "1"}
	clean := runCluster(t, n, tf, NewPlan("none", 1, Env{N: n}), proposals)
	noisy := runCluster(t, n, tf,
		NewPlan("dup-reorder", 9, Env{N: n},
			Rule{Kind: Duplicate, Pct: 40},
			Rule{Kind: Reorder, Pct: 40}),
		proposals)
	for i := range clean {
		if clean[i].Decided != noisy[i].Decided || clean[i].Decision != noisy[i].Decision {
			t.Errorf("node %d: clean %v/%q, noisy %v/%q",
				i, clean[i].Decided, clean[i].Decision, noisy[i].Decided, noisy[i].Decision)
		}
	}
}

func TestClusterAgreesUnderBudgetedStorm(t *testing.T) {
	// The acceptance profile (drop + delay + partition) with the paper's
	// fault budget: phase-king n=5 t=1 must keep every process outside the
	// budget set agreed on one value.
	profile, ok := ByID("storm")
	if !ok {
		t.Fatal("storm profile missing")
	}
	n, tf := 5, 1
	plan := profile.Build(42, Env{N: n, T: tf})
	results := runCluster(t, n, tf, plan, []msg.Value{"1", "0", "1", "1", "0"})
	correct := proc.Universe(n).Diff(plan.Budget())
	if _, err := transport.CommonDecision(results, correct); err != nil {
		t.Errorf("correct group split under budgeted storm (budget %v): %v", plan.Budget(), err)
	}
}

func TestDeterministicDecisionsUnderStorm(t *testing.T) {
	// Same seed, same chaos: two runs under the full storm profile must
	// land identical decisions even though delays perturb real time.
	profile, _ := ByID("storm")
	n, tf := 5, 1
	proposals := []msg.Value{"1", "0", "1", "1", "0"}
	run := func() []transport.NodeResult {
		return runCluster(t, n, tf, profile.Build(11, Env{N: n, T: tf}), proposals)
	}
	a, b := run(), run()
	for i := range a {
		if a[i].Decided != b[i].Decided || a[i].Decision != b[i].Decision {
			t.Errorf("node %d diverged across identical chaos runs: %v/%q vs %v/%q",
				i, a[i].Decided, a[i].Decision, b[i].Decided, b[i].Decision)
		}
	}
}

func TestReorderHeldFrameFlushedByTimer(t *testing.T) {
	// A reordered frame with no successor to overtake it must still arrive
	// (via the hold timer), or final rounds would deadlock.
	mesh := memnet.New(2, nil)
	eps := Wrap(mesh.Endpoints(), NewPlan("all-reorder", 1, Env{N: 2}, Rule{Kind: Reorder, Pct: 100}), nil)
	if err := eps[0].Send(1, transport.Frame{From: 0, To: 1, Round: 1, Has: true, Payload: "held"}); err != nil {
		t.Fatalf("Send: %v", err)
	}
	done := make(chan transport.Frame, 1)
	go func() {
		f, err := eps[1].Recv()
		if err != nil {
			t.Errorf("Recv: %v", err)
		}
		done <- f
	}()
	select {
	case f := <-done:
		if !f.Has || f.Payload != "held" {
			t.Errorf("flushed frame mangled: %+v", f)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("held frame never flushed")
	}
}
