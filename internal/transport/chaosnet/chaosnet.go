// Package chaosnet is the fault-injecting transport wrapper: it decorates
// any transport.Endpoint mesh with per-link drop, delay, duplicate,
// reorder, corrupt and windowed-partition faults, every one of them a pure
// function of a seed. The package reuses the adversary package's
// seed/strategy idiom — a Plan is built from composable Rules by a named
// Profile exactly like a sim.FaultPlan is built by an adversary.Strategy,
// and every independent random stream is derived through adversary.SubSeed
// so one seed replays one chaos run.
//
// Determinism contract: which frames are dropped, corrupted or partitioned
// is decided by hashing (seed, link, sequence) — never by real time — so
// the information a protocol run observes is identical across replays.
// Delay and reorder perturb only timing and arrival order, which the
// hardened transport.RunNode round barrier absorbs; payload bytes and
// round structure are untouched. A cluster run under a chaos plan is
// therefore as replayable as a simulator run under a fault plan.
//
// Faults follow the transport's omission idiom (see memnet.DropFilter):
// a dropped or corruption-voided payload leaves an empty frame behind, so
// round synchrony survives while information is lost. Corruption is
// realized honestly — the sender mangles a checksum the receiver verifies,
// so "corrupt" means "detected and voided", deterministically per frame.
package chaosnet

import (
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"math/rand"
	"strings"
	"sync"
	"time"

	"expensive/internal/adversary"
	"expensive/internal/obs"
	"expensive/internal/proc"
	"expensive/internal/transport"
)

// Kind names one fault primitive a Rule injects.
type Kind string

// The fault primitives. Drop, Corrupt and Partition void payloads (the
// frame survives empty, the omission idiom); Delay and Reorder perturb
// timing only; Duplicate resends a frame (the round barrier dedups);
// Cut severs the underlying connection and is consumed by the dist wire
// injector — the mesh wrapper ignores it, since a mesh node has no
// reconnect path.
const (
	Drop      Kind = "drop"
	Delay     Kind = "delay"
	Duplicate Kind = "duplicate"
	Reorder   Kind = "reorder"
	Corrupt   Kind = "corrupt"
	Cut       Kind = "cut"
	Partition Kind = "partition"
)

// Rule is one composable fault clause of a Plan.
type Rule struct {
	Kind Kind
	// Pct is the per-frame firing probability (0..100), decided
	// deterministically per (seed, link, seq) like the adversary's coin.
	// Partition rules ignore it (their windows are periodic, not random).
	Pct int
	// MaxDelay bounds the latency a Delay rule injects (default 10ms).
	MaxDelay time.Duration
	// Lo and Hi gate the rule to the sequence window [Lo, Hi] inclusive,
	// mirroring adversary.Windowed. Hi == 0 means unbounded above.
	Lo, Hi int
	// Period and Width drive a Partition rule: within every Period
	// consecutive seqs the first Width are partitioned, and the cut set is
	// re-drawn per window so successive partitions isolate different groups.
	Period, Width int
}

// Env parameterizes plan construction, mirroring adversary.Env.
type Env struct {
	// N is the number of processes on the mesh. 0 defaults to 64, the
	// opaque-ID mode wire links use (dist keys fault streams by worker
	// slot, not by a mesh size).
	N int
	// T, when positive, imposes the paper's fault budget: the plan draws a
	// seed-chosen non-empty set of at most T processes and restricts every
	// fault to links touching that set, so a t-resilient protocol's
	// guarantees must survive the whole plan.
	T int
}

// Faults is the verdict for one frame on one directed link at one
// sequence point.
type Faults struct {
	Drop      bool
	Duplicate bool
	Reorder   bool
	Corrupt   bool
	Cut       bool
	Delay     time.Duration
}

// Plan is a frozen, seed-deterministic fault schedule. The same
// (name, seed, env, rules) always yields identical Faults verdicts.
type Plan struct {
	name      string
	env       Env
	rules     []Rule
	ruleSeeds []int64
	budget    proc.Set
}

// NewPlan freezes a fault schedule from composable rules. Each rule gets
// its own derived seed stream, so adding a rule never perturbs the
// decisions of the others — the same property adversary.Union gives its
// component strategies.
func NewPlan(name string, seed int64, env Env, rules ...Rule) *Plan {
	if env.N <= 0 {
		env.N = 64
	}
	p := &Plan{name: name, env: env, rules: rules, ruleSeeds: make([]int64, len(rules))}
	for i, r := range rules {
		p.ruleSeeds[i] = adversary.SubSeed(seed, fmt.Sprintf("chaosnet|%s|rule%d|%s", name, i, r.Kind))
	}
	if env.T > 0 {
		rng := rand.New(rand.NewSource(adversary.SubSeed(seed, "chaosnet|"+name+"|budget")))
		count := 1 + rng.Intn(env.T)
		for p.budget.Len() < count {
			p.budget = p.budget.Add(proc.ID(rng.Intn(env.N)))
		}
	}
	return p
}

// Name reports the plan's profile name.
func (p *Plan) Name() string { return p.name }

// Budget reports the fault-budget set the plan is restricted to (empty
// when the plan is unrestricted infrastructure chaos, Env.T == 0).
func (p *Plan) Budget() proc.Set { return p.budget }

// Faults returns the fault verdict for the seq-th frame on the directed
// link from -> to. On meshes seq is the round number; on dist wire
// connections it is a per-direction frame counter. Pure in
// (plan, from, to, seq).
func (p *Plan) Faults(from, to proc.ID, seq int) Faults {
	var f Faults
	if p == nil {
		return f
	}
	if !p.budget.Empty() && !p.budget.Contains(from) && !p.budget.Contains(to) {
		return f
	}
	for i, r := range p.rules {
		if seq < r.Lo || (r.Hi > 0 && seq > r.Hi) {
			continue
		}
		seed := p.ruleSeeds[i]
		if r.Kind == Partition {
			if r.Period <= 0 || r.Width <= 0 || seq%r.Period >= r.Width {
				continue
			}
			if p.crossesCut(seed, seq/r.Period, from, to) {
				f.Drop = true
			}
			continue
		}
		if !hit(seed, from, to, seq, r.Pct) {
			continue
		}
		switch r.Kind {
		case Drop:
			f.Drop = true
		case Delay:
			f.Delay = delayFor(seed, from, to, seq, r.MaxDelay)
		case Duplicate:
			f.Duplicate = true
		case Reorder:
			f.Reorder = true
		case Corrupt:
			f.Corrupt = true
		case Cut:
			f.Cut = true
		}
	}
	return f
}

// crossesCut decides whether a link crosses the partition of the given
// window. Budgeted plans isolate the budget set (the E_G(k) shape of the
// paper's lower-bound construction); unrestricted plans split the mesh
// into two seed-chosen halves, re-drawn each window.
func (p *Plan) crossesCut(seed int64, window int, from, to proc.ID) bool {
	if !p.budget.Empty() {
		return p.budget.Contains(from) != p.budget.Contains(to)
	}
	return side(seed, window, from) != side(seed, window, to)
}

func side(seed int64, window int, id proc.ID) bool {
	h := fnv.New32a()
	fmt.Fprintf(h, "%d|%d|%d", seed, window, id)
	return h.Sum32()%2 == 0
}

// hit is the chaos analogue of the adversary's per-message coin: the same
// (seed, link, seq) always lands the same way.
func hit(seed int64, from, to proc.ID, seq, pct int) bool {
	if pct <= 0 {
		return false
	}
	if pct >= 100 {
		return true
	}
	h := fnv.New32a()
	fmt.Fprintf(h, "%d|%d|%d|%d", seed, from, to, seq)
	return h.Sum32()%100 < uint32(pct)
}

// delayFor draws the deterministic latency of a fired Delay rule, in
// (0, max].
func delayFor(seed int64, from, to proc.ID, seq int, max time.Duration) time.Duration {
	if max <= 0 {
		max = 10 * time.Millisecond
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "delay|%d|%d|%d|%d", seed, from, to, seq)
	return 1 + time.Duration(h.Sum64()%uint64(max))
}

// Profile is a named plan constructor, the chaos twin of
// adversary.Strategy: Build must be a pure function of (seed, env).
type Profile struct {
	ID  string
	Doc string
	// Build derives the frozen plan of one run.
	Build func(seed int64, env Env) *Plan
}

// Library returns the built-in chaos profiles.
func Library() []Profile {
	mk := func(id, doc string, rules ...Rule) Profile {
		return Profile{ID: id, Doc: doc, Build: func(seed int64, env Env) *Plan {
			return NewPlan(id, seed, env, rules...)
		}}
	}
	return []Profile{
		mk("drop", "drops 25% of payloads per link (omission: empty frames survive)",
			Rule{Kind: Drop, Pct: 25}),
		mk("delay", "delays 35% of frames by up to 10ms",
			Rule{Kind: Delay, Pct: 35, MaxDelay: 10 * time.Millisecond}),
		mk("flaky", "drops 15% of payloads and delays 25% of frames by up to 8ms",
			Rule{Kind: Drop, Pct: 15},
			Rule{Kind: Delay, Pct: 25, MaxDelay: 8 * time.Millisecond}),
		mk("dup-reorder", "duplicates 20% and reorders 20% of frames (payloads intact)",
			Rule{Kind: Duplicate, Pct: 20},
			Rule{Kind: Reorder, Pct: 20}),
		mk("corrupt", "corrupts 20% of payloads; receivers detect and void them",
			Rule{Kind: Corrupt, Pct: 20}),
		mk("partition", "partitions the mesh for the first 3 of every 8 seqs, cut set re-drawn per window",
			Rule{Kind: Partition, Period: 8, Width: 3}),
		mk("storm", "drop 10% + delay 20% (8ms) + recurring partitions (3 of every 10 seqs) — the soak default",
			Rule{Kind: Drop, Pct: 10},
			Rule{Kind: Delay, Pct: 20, MaxDelay: 8 * time.Millisecond},
			Rule{Kind: Partition, Period: 10, Width: 3}),
		mk("cut", "severs the connection at ~2% of frames (wire links only; meshes ignore Cut)",
			Rule{Kind: Cut, Pct: 2}),
	}
}

// ByID looks a built-in profile up by its ID.
func ByID(id string) (Profile, bool) {
	for _, p := range Library() {
		if p.ID == id {
			return p, true
		}
	}
	return Profile{}, false
}

// IDs lists the built-in profile IDs in library order.
func IDs() []string {
	lib := Library()
	out := make([]string, len(lib))
	for i, p := range lib {
		out[i] = p.ID
	}
	return out
}

// counters are the chaos flight-recorder instruments. All nil-safe: a nil
// recorder records nothing at zero cost, the obs contract.
type counters struct {
	dropped, delayed, duplicated, reordered, corrupted, detected *obs.Counter
}

func newCounters(rec *obs.Recorder) counters {
	return counters{
		dropped:    rec.Counter("chaos_dropped"),
		delayed:    rec.Counter("chaos_delayed"),
		duplicated: rec.Counter("chaos_duplicated"),
		reordered:  rec.Counter("chaos_reordered"),
		corrupted:  rec.Counter("chaos_corrupted"),
		detected:   rec.Counter("chaos_detected"),
	}
}

// reorderHold bounds how long a reordered frame is held when no later
// frame comes along to overtake it: a timer flush keeps the final round
// of a run from deadlocking on a withheld frame.
const reorderHold = 15 * time.Millisecond

// Wrap decorates every endpoint of a mesh with the plan's faults. The
// wrapped endpoints inject faults on the send side (where the link
// identity is known) and verify payload checksums on the receive side.
// rec may be nil.
func Wrap(eps []transport.Endpoint, plan *Plan, rec *obs.Recorder) []transport.Endpoint {
	c := newCounters(rec)
	out := make([]transport.Endpoint, len(eps))
	for i := range eps {
		out[i] = &endpoint{inner: eps[i], id: proc.ID(i), plan: plan, c: c}
	}
	return out
}

type endpoint struct {
	inner transport.Endpoint
	id    proc.ID
	plan  *Plan
	c     counters

	mu   sync.Mutex
	held map[proc.ID]heldFrame // one reorder slot per link
}

type heldFrame struct {
	f     transport.Frame
	timer *time.Timer
}

var _ transport.Endpoint = (*endpoint)(nil)

// Send implements transport.Endpoint, applying the plan's verdict for
// (link, round). Fault precedence on the payload: Drop voids it outright,
// otherwise Corrupt mangles its checksum; either way the frame itself
// travels, preserving round synchrony.
func (e *endpoint) Send(to proc.ID, f transport.Frame) error {
	faults := e.plan.Faults(e.id, to, f.Round)
	if f.Has {
		switch {
		case faults.Drop:
			f.Has, f.Payload = false, ""
			e.c.dropped.Inc()
		case faults.Corrupt:
			f.Payload = corruptSum(f.Payload)
			e.c.corrupted.Inc()
		default:
			f.Payload = sum(f.Payload)
		}
	}
	if faults.Delay > 0 {
		e.c.delayed.Inc()
		time.Sleep(faults.Delay)
	}
	if faults.Reorder {
		e.mu.Lock()
		if _, busy := e.held[to]; !busy {
			if e.held == nil {
				e.held = make(map[proc.ID]heldFrame)
			}
			e.c.reordered.Inc()
			to := to
			e.held[to] = heldFrame{f: f, timer: time.AfterFunc(reorderHold, func() { e.flush(to) })}
			e.mu.Unlock()
			return nil
		}
		e.mu.Unlock()
	}
	if err := e.inner.Send(to, f); err != nil {
		return err
	}
	// A held older frame goes out after the newer one: the reorder.
	e.flush(to)
	if faults.Duplicate {
		e.c.duplicated.Inc()
		return e.inner.Send(to, f)
	}
	return nil
}

// flush releases the held frame of a link, if any.
func (e *endpoint) flush(to proc.ID) {
	e.mu.Lock()
	h, ok := e.held[to]
	if ok {
		delete(e.held, to)
	}
	e.mu.Unlock()
	if ok {
		h.timer.Stop()
		_ = e.inner.Send(to, h.f)
	}
}

// Recv implements transport.Endpoint, verifying payload checksums: a
// mismatch voids the payload (detected corruption becomes an omission),
// deterministically per frame.
func (e *endpoint) Recv() (transport.Frame, error) {
	f, err := e.inner.Recv()
	if err != nil || !f.Has {
		return f, err
	}
	payload, ok := checkSum(f.Payload)
	if !ok {
		e.c.detected.Inc()
		f.Has, f.Payload = false, ""
		return f, nil
	}
	f.Payload = payload
	return f, nil
}

// Close implements transport.Endpoint: held frames are released first so
// a graceful shutdown never strands a reordered frame.
func (e *endpoint) Close() error {
	e.mu.Lock()
	var pending []proc.ID
	for to := range e.held {
		pending = append(pending, to)
	}
	e.mu.Unlock()
	for _, to := range pending {
		e.flush(to)
	}
	return e.inner.Close()
}

// sumPrefix marks a checksummed payload. Payloads without the prefix
// (from an unwrapped sender) pass through unverified.
const sumPrefix = "cs:"

func sum(payload string) string {
	return fmt.Sprintf("%s%08x:%s", sumPrefix, crc32.ChecksumIEEE([]byte(payload)), payload)
}

func corruptSum(payload string) string {
	return fmt.Sprintf("%s%08x:%s", sumPrefix, crc32.ChecksumIEEE([]byte(payload))^0xdeadbeef, payload)
}

func checkSum(s string) (string, bool) {
	if !strings.HasPrefix(s, sumPrefix) {
		return s, true
	}
	body := s[len(sumPrefix):]
	i := strings.IndexByte(body, ':')
	if i != 8 {
		return "", false
	}
	var want uint32
	if _, err := fmt.Sscanf(body[:8], "%08x", &want); err != nil {
		return "", false
	}
	payload := body[9:]
	return payload, crc32.ChecksumIEEE([]byte(payload)) == want
}
