// Package transport runs the library's protocol machines over real
// message channels instead of the trace-recording simulator: one goroutine
// per process, frames exchanged through an Endpoint (in-memory channels in
// memnet, TCP loopback sockets in tcpnet).
//
// Synchrony is implemented with the classical bulk-synchronous trick: in
// every round each node sends exactly one frame to every peer — empty if
// the protocol has nothing to say — and waits for n-1 round-stamped frames
// before stepping its machine. Over reliable FIFO links this realizes the
// synchronous round model of §2 without a central coordinator, and fault
// injection (dropping payloads while keeping the empty frame) realizes the
// omission-failure model on a live network.
package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"expensive/internal/msg"
	"expensive/internal/proc"
	"expensive/internal/sim"
)

// Typed transport failures. Every mesh implementation wraps its own
// timeout and shutdown errors with these sentinels so callers classify
// failures with errors.Is instead of string matching: the dist scheduler
// distinguishes a stalled peer (ErrTimeout, reassign its work) from an
// orderly teardown (ErrClosed, stop quietly), and reconnecting workers
// retry exactly the errors a redial can cure.
var (
	// ErrTimeout marks a receive that gave up waiting on a peer.
	ErrTimeout = errors.New("transport: timeout")
	// ErrClosed marks an operation on a closed endpoint or mesh.
	ErrClosed = errors.New("transport: closed")
)

// DialRetry dials with bounded exponential backoff: up to attempts tries,
// sleeping backoff, 2*backoff, ... (capped at one second) between them.
// It exists because both mesh construction and distributed workers race
// their peer's listener coming up — a failed first dial should wait for
// the listener, not kill the run. attempts <= 0 means 1; backoff <= 0
// defaults to 25ms.
func DialRetry(network, addr string, attempts int, backoff time.Duration) (net.Conn, error) {
	if attempts <= 0 {
		attempts = 1
	}
	if backoff <= 0 {
		backoff = 25 * time.Millisecond
	}
	const maxBackoff = time.Second
	var lastErr error
	for i := 0; i < attempts; i++ {
		conn, err := net.Dial(network, addr)
		if err == nil {
			return conn, nil
		}
		lastErr = err
		if i == attempts-1 {
			break
		}
		time.Sleep(backoff)
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
	return nil, fmt.Errorf("transport: dial %s %s: %d attempts: %w", network, addr, attempts, lastErr)
}

// Frame is the wire unit: one per (sender, receiver, round), possibly
// empty. Empty frames carry the round structure; payloads carry protocol
// messages.
type Frame struct {
	From    int    `json:"from"`
	To      int    `json:"to"`
	Round   int    `json:"round"`
	Has     bool   `json:"has"`
	Payload string `json:"payload,omitempty"`
}

// Endpoint is one process's connection to the mesh.
type Endpoint interface {
	// Send transmits a frame to a peer. It must not block indefinitely when
	// all nodes follow the round protocol.
	Send(to proc.ID, f Frame) error
	// Recv returns the next incoming frame from any peer.
	Recv() (Frame, error)
	// Close releases the endpoint.
	Close() error
}

// NodeResult is the outcome of one node's run.
type NodeResult struct {
	ID       proc.ID
	Decision msg.Value
	Decided  bool
	// Sent counts non-empty frames (protocol messages) sent.
	Sent int
	Err  error
}

// RunNode drives one machine for the given number of rounds over an
// endpoint. It returns when all rounds have completed or an error occurs.
func RunNode(ep Endpoint, n int, id proc.ID, machine sim.Machine, rounds int) NodeResult {
	res := NodeResult{ID: id}
	out := machine.Init()
	// future buffers frames keyed (round, sender), first frame winning: a
	// peer may finish round r and emit r+1 before we drain r, and a chaotic
	// link may duplicate or reorder frames. Keeping exactly one frame per
	// (round, sender) and dropping stale rounds makes the bulk-synchronous
	// step immune to both — the round barrier itself provides the dedup
	// point, so no sequence numbers are needed on the wire.
	future := make(map[int]map[int]Frame)

	for r := 1; r <= rounds; r++ {
		payloads := make(map[proc.ID]string, len(out))
		for _, o := range out {
			payloads[o.To] = o.Payload
		}
		for p := proc.ID(0); p < proc.ID(n); p++ {
			if p == id {
				continue
			}
			f := Frame{From: int(id), To: int(p), Round: r}
			if body, ok := payloads[p]; ok {
				f.Has, f.Payload = true, body
				res.Sent++
			}
			if err := ep.Send(p, f); err != nil {
				res.Err = fmt.Errorf("%s round %d: send to %s: %w", id, r, p, err)
				return res
			}
		}

		frames := future[r]
		if frames == nil {
			frames = make(map[int]Frame, n-1)
		}
		delete(future, r)
		for len(frames) < n-1 {
			f, err := ep.Recv()
			if err != nil {
				res.Err = fmt.Errorf("%s round %d: recv: %w", id, r, err)
				return res
			}
			if f.Round < r || f.From == int(id) || f.From < 0 || f.From >= n {
				continue // stale duplicate of a completed round, or nonsense
			}
			if f.Round == r {
				if _, dup := frames[f.From]; !dup {
					frames[f.From] = f
				}
				continue
			}
			ahead := future[f.Round]
			if ahead == nil {
				ahead = make(map[int]Frame, n-1)
				future[f.Round] = ahead
			}
			if _, dup := ahead[f.From]; !dup {
				ahead[f.From] = f
			}
		}

		var received []msg.Message
		for p := 0; p < n; p++ {
			f, ok := frames[p]
			if !ok || !f.Has {
				continue
			}
			received = append(received, msg.Message{
				Sender:   proc.ID(f.From),
				Receiver: id,
				Round:    r,
				Payload:  f.Payload,
			})
		}
		msg.Sort(received)
		out = machine.Step(r, received)
	}

	if v, ok := machine.Decision(); ok {
		res.Decision, res.Decided = v, true
	}
	return res
}

// Cluster couples endpoints with the machines they drive.
type Cluster struct {
	N         int
	Endpoints []Endpoint
	Factory   sim.Factory
	Proposals []msg.Value
	Rounds    int
}

// Run starts one goroutine per node, waits for all of them, and returns
// the per-node results (indexed by process ID).
func (c Cluster) Run() ([]NodeResult, error) {
	if len(c.Endpoints) != c.N || len(c.Proposals) != c.N {
		return nil, fmt.Errorf("cluster: need %d endpoints and proposals, have %d/%d",
			c.N, len(c.Endpoints), len(c.Proposals))
	}
	if c.Rounds <= 0 {
		return nil, fmt.Errorf("cluster: rounds must be positive")
	}
	results := make([]NodeResult, c.N)
	var wg sync.WaitGroup
	for i := 0; i < c.N; i++ {
		id := proc.ID(i)
		machine := c.Factory(id, c.Proposals[i])
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[id] = RunNode(c.Endpoints[id], c.N, id, machine, c.Rounds)
		}()
	}
	wg.Wait()
	for i := range results {
		if results[i].Err != nil {
			return results, fmt.Errorf("node %d: %w", i, results[i].Err)
		}
	}
	return results, nil
}

// CommonDecision folds node results into the unique decision of the given
// group, mirroring sim.Execution.CommonDecision for live runs.
func CommonDecision(results []NodeResult, group proc.Set) (msg.Value, error) {
	var common msg.Value
	first := true
	for _, id := range group.Members() {
		r := results[id]
		if !r.Decided {
			return msg.NoDecision, fmt.Errorf("%s undecided", id)
		}
		if first {
			common, first = r.Decision, false
		} else if r.Decision != common {
			return msg.NoDecision, fmt.Errorf("%s decided %q, others %q", id, r.Decision, common)
		}
	}
	if first {
		return msg.NoDecision, fmt.Errorf("empty group")
	}
	return common, nil
}
