package tcpnet

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"expensive/internal/msg"
	"expensive/internal/proc"
	"expensive/internal/protocols/floodset"
	"expensive/internal/transport"
)

func TestFrameRoundTrip(t *testing.T) {
	mesh, err := New(3)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer mesh.Close()
	eps := mesh.Endpoints()

	// Every ordered pair exchanges one frame over its socket.
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if i == j {
				continue
			}
			f := transport.Frame{From: i, To: j, Round: 1, Has: true, Payload: fmt.Sprintf("%d->%d", i, j)}
			if err := eps[i].Send(proc.ID(j), f); err != nil {
				t.Fatalf("Send %d->%d: %v", i, j, err)
			}
		}
	}
	for j := 0; j < 3; j++ {
		seen := map[int]bool{}
		for k := 0; k < 2; k++ {
			got, err := eps[j].Recv()
			if err != nil {
				t.Fatalf("Recv at %d: %v", j, err)
			}
			if got.To != j || got.Payload != fmt.Sprintf("%d->%d", got.From, j) {
				t.Errorf("node %d received mangled frame %+v", j, got)
			}
			seen[got.From] = true
		}
		if len(seen) != 2 {
			t.Errorf("node %d heard from %d peers, want 2", j, len(seen))
		}
	}
}

func TestBadPeerRejected(t *testing.T) {
	mesh, err := New(2)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer mesh.Close()
	eps := mesh.Endpoints()
	if err := eps[0].Send(0, transport.Frame{}); err == nil {
		t.Error("expected self-send rejection")
	}
	if err := eps[0].Send(7, transport.Frame{}); err == nil {
		t.Error("expected unknown-peer rejection")
	}
}

func TestCleanShutdown(t *testing.T) {
	// A full protocol run followed by Close: the mesh tears down its
	// sockets and reader pumps without wedging, Close is idempotent, and
	// post-close Recv fails fast instead of blocking.
	n, tf := 4, 1
	mesh, err := New(n)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	cluster := transport.Cluster{
		N:         n,
		Endpoints: mesh.Endpoints(),
		Factory:   floodset.New(floodset.Config{N: n, T: tf}),
		Proposals: []msg.Value{"1", "0", "1", "1"},
		Rounds:    floodset.RoundBound(tf),
	}
	results, err := cluster.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if d, err := transport.CommonDecision(results, proc.Universe(n)); err != nil || d != "0" {
		t.Fatalf("decision %q err %v, want fault-free floodset minimum 0", d, err)
	}

	if err := mesh.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := mesh.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	// The reader pumps must exit once their connections die.
	pumpsDone := make(chan struct{})
	go func() {
		mesh.readers.Wait()
		close(pumpsDone)
	}()
	select {
	case <-pumpsDone:
	case <-time.After(5 * time.Second):
		t.Fatal("reader pumps still running 5s after Close")
	}

	recvDone := make(chan error, 1)
	go func() {
		_, err := mesh.Endpoints()[0].Recv()
		recvDone <- err
	}()
	select {
	case err := <-recvDone:
		if err == nil {
			t.Error("Recv after close returned a frame")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Recv still blocked 5s after Close")
	}
}

func TestCloseUnblocksWedgedPump(t *testing.T) {
	// A receiver that stops draining wedges its reader pump on the full
	// inbox channel (capacity 4n). Close must still join every pump and
	// close the inboxes — the fix for Recv-after-Close has to cover this
	// case, not just drained meshes.
	mesh, err := New(2)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	eps := mesh.Endpoints()
	for k := 0; k < 32; k++ { // far beyond the 8-frame inbox buffer
		f := transport.Frame{From: 0, To: 1, Round: k + 1, Has: true, Payload: "flood"}
		if err := eps[0].Send(1, f); err != nil {
			t.Fatalf("Send %d: %v", k, err)
		}
	}
	// Give the pump time to fill the inbox and block on the next send.
	time.Sleep(50 * time.Millisecond)
	if err := mesh.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	pumpsDone := make(chan struct{})
	go func() {
		mesh.readers.Wait()
		close(pumpsDone)
	}()
	select {
	case <-pumpsDone:
	case <-time.After(5 * time.Second):
		t.Fatal("a pump stayed wedged on a full inbox after Close")
	}
}

// TestEndpointCloseScopedToEndpoint is the regression for the scoping
// fix: closing one endpoint must sever only that node's links — siblings
// keep exchanging frames over theirs, and Mesh.Close still tears the
// whole mesh down afterwards.
func TestEndpointCloseScopedToEndpoint(t *testing.T) {
	mesh, err := New(3)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	eps := mesh.Endpoints()
	if err := eps[2].Close(); err != nil {
		t.Fatalf("endpoint Close: %v", err)
	}
	if err := eps[2].Close(); err != nil {
		t.Fatalf("second endpoint Close: %v", err)
	}

	// The closed endpoint fails fast with the typed sentinel.
	if err := eps[2].Send(0, transport.Frame{From: 2, To: 0, Round: 1}); !errors.Is(err, transport.ErrClosed) {
		t.Errorf("Send on closed endpoint = %v, want ErrClosed", err)
	}
	if _, err := eps[2].Recv(); !errors.Is(err, transport.ErrClosed) {
		t.Errorf("Recv on closed endpoint = %v, want ErrClosed", err)
	}

	// Siblings of the closed endpoint keep working: 0 <-> 1 both ways.
	for _, dir := range [][2]int{{0, 1}, {1, 0}} {
		from, to := dir[0], dir[1]
		want := transport.Frame{From: from, To: to, Round: 1, Has: true, Payload: fmt.Sprintf("%d->%d", from, to)}
		if err := eps[from].Send(proc.ID(to), want); err != nil {
			t.Fatalf("sibling Send %d->%d after endpoint close: %v", from, to, err)
		}
		got, err := eps[to].Recv()
		if err != nil {
			t.Fatalf("sibling Recv at %d after endpoint close: %v", to, err)
		}
		if got != want {
			t.Fatalf("sibling Recv = %+v, want %+v", got, want)
		}
	}

	// Full teardown still works and joins every pump.
	if err := mesh.Close(); err != nil {
		t.Fatalf("mesh Close after endpoint close: %v", err)
	}
	pumpsDone := make(chan struct{})
	go func() {
		mesh.readers.Wait()
		close(pumpsDone)
	}()
	select {
	case <-pumpsDone:
	case <-time.After(5 * time.Second):
		t.Fatal("reader pumps still running 5s after mesh Close")
	}
}

// TestRecvTimeoutOnStalledPeer is the hardening regression: with a
// RecvTimeout configured, a Recv against a peer that never sends must
// fail with a timeout error instead of blocking forever.
func TestRecvTimeoutOnStalledPeer(t *testing.T) {
	mesh, err := NewWithOptions(2, Options{RecvTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatalf("NewWithOptions: %v", err)
	}
	defer mesh.Close()
	done := make(chan error, 1)
	go func() {
		// Node 0 waits for a frame node 1 never sends.
		_, err := mesh.Endpoints()[0].Recv()
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Recv returned a frame from a silent peer")
		}
		if !errors.Is(err, transport.ErrTimeout) {
			t.Fatalf("Recv error = %v, want transport.ErrTimeout", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Recv blocked past its timeout on a stalled peer")
	}
}

// TestRecvTimeoutStillDelivers checks the deadline path does not drop
// frames that arrive in time.
func TestRecvTimeoutStillDelivers(t *testing.T) {
	mesh, err := NewWithOptions(2, Options{RecvTimeout: 5 * time.Second})
	if err != nil {
		t.Fatalf("NewWithOptions: %v", err)
	}
	defer mesh.Close()
	eps := mesh.Endpoints()
	want := transport.Frame{From: 0, To: 1, Round: 1, Has: true, Payload: "x"}
	if err := eps[0].Send(1, want); err != nil {
		t.Fatalf("Send: %v", err)
	}
	got, err := eps[1].Recv()
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if got != want {
		t.Fatalf("Recv = %+v, want %+v", got, want)
	}
}
