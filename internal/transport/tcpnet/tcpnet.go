// Package tcpnet is the socket mesh: every process listens on a loopback
// TCP port and dials every higher-numbered peer, yielding one reliable
// FIFO connection per unordered pair. Frames travel as newline-delimited
// JSON. This substrate demonstrates that every protocol in the library —
// built against the abstract synchronous model — runs unmodified over a
// real network stack.
package tcpnet

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"expensive/internal/proc"
	"expensive/internal/transport"
)

// Options hardens a mesh against flaky construction and hung peers. The
// zero value keeps the historical behavior except for dialing, which
// always retries a few times (construction races each listener coming up).
type Options struct {
	// DialAttempts and DialBackoff configure transport.DialRetry for the
	// mesh-construction dials (defaults: 3 attempts, 25ms initial backoff).
	DialAttempts int
	DialBackoff  time.Duration
	// RecvTimeout bounds every endpoint Recv: a peer that stalls past it
	// fails the round with an error instead of blocking forever. 0 means
	// block indefinitely (the historical behavior).
	RecvTimeout time.Duration
}

// Mesh is a full TCP mesh over 127.0.0.1.
type Mesh struct {
	n      int
	opts   Options
	conns  [][]net.Conn // conns[i][j]: i's connection to j (nil on diagonal)
	inbox  []chan frameOrErr
	done   chan struct{}   // closed by Close; unblocks pumps wedged on full inboxes
	epDone []chan struct{} // closed per endpoint by endpoint.Close

	mu       sync.Mutex
	closed   bool
	epClosed []bool
	readers  sync.WaitGroup
}

type frameOrErr struct {
	f   transport.Frame
	err error
}

// New builds a connected mesh of n nodes on loopback ports with default
// options. It returns an error if any listen/dial step fails.
func New(n int) (*Mesh, error) { return NewWithOptions(n, Options{}) }

// NewWithOptions builds a connected mesh of n nodes on loopback ports.
func NewWithOptions(n int, o Options) (*Mesh, error) {
	if o.DialAttempts <= 0 {
		o.DialAttempts = 3
	}
	m := &Mesh{
		n: n, opts: o,
		conns:    make([][]net.Conn, n),
		inbox:    make([]chan frameOrErr, n),
		done:     make(chan struct{}),
		epDone:   make([]chan struct{}, n),
		epClosed: make([]bool, n),
	}
	for i := range m.conns {
		m.conns[i] = make([]net.Conn, n)
		m.inbox[i] = make(chan frameOrErr, 4*n)
		m.epDone[i] = make(chan struct{})
	}

	listeners := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			m.Close()
			return nil, fmt.Errorf("tcpnet: listen node %d: %w", i, err)
		}
		listeners[i] = l
		addrs[i] = l.Addr().String()
	}
	defer func() {
		for _, l := range listeners {
			_ = l.Close()
		}
	}()

	// Accept loop per listener: peers identify themselves with a hello line.
	type accepted struct {
		node int
		from int
		conn net.Conn
		err  error
	}
	acceptCh := make(chan accepted, n*n)
	var acceptWG sync.WaitGroup
	for i := 0; i < n; i++ {
		expected := i // node i accepts from peers j < i
		acceptWG.Add(1)
		go func(node int, l net.Listener) {
			defer acceptWG.Done()
			for k := 0; k < expected; k++ {
				conn, err := l.Accept()
				if err != nil {
					acceptCh <- accepted{node: node, err: err}
					return
				}
				var hello struct{ From int }
				if err := json.NewDecoder(bufio.NewReader(conn)).Decode(&hello); err != nil {
					acceptCh <- accepted{node: node, err: fmt.Errorf("hello: %w", err)}
					return
				}
				acceptCh <- accepted{node: node, from: hello.From, conn: conn}
			}
		}(i, listeners[i])
	}

	// Dial peers with higher IDs.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			conn, err := transport.DialRetry("tcp", addrs[j], o.DialAttempts, o.DialBackoff)
			if err != nil {
				m.Close()
				return nil, fmt.Errorf("tcpnet: dial %d->%d: %w", i, j, err)
			}
			if err := json.NewEncoder(conn).Encode(struct{ From int }{From: i}); err != nil {
				m.Close()
				return nil, fmt.Errorf("tcpnet: hello %d->%d: %w", i, j, err)
			}
			m.conns[i][j] = conn
		}
	}

	acceptWG.Wait()
	close(acceptCh)
	for a := range acceptCh {
		if a.err != nil {
			m.Close()
			return nil, fmt.Errorf("tcpnet: accept at node %d: %w", a.node, a.err)
		}
		m.conns[a.node][a.from] = a.conn
	}

	// Reader pumps: one goroutine per connection endpoint.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j || m.conns[i][j] == nil {
				continue
			}
			m.readers.Add(1)
			go m.pump(i, j, m.conns[i][j])
		}
	}
	return m, nil
}

// pump reads frames from owner's connection to peer and delivers them to
// owner's inbox. A decode failure is a real error only while both ends of
// the link are still open: once the mesh or either endpoint has been
// closed, the broken read is the teardown itself and the pump exits
// silently, so siblings of a closed endpoint keep exchanging frames
// undisturbed.
func (m *Mesh) pump(owner, peer int, conn net.Conn) {
	defer m.readers.Done()
	dec := json.NewDecoder(bufio.NewReader(conn))
	for {
		var f transport.Frame
		if err := dec.Decode(&f); err != nil {
			m.mu.Lock()
			quiet := m.closed || m.epClosed[owner] || m.epClosed[peer]
			m.mu.Unlock()
			if !quiet {
				select {
				case m.inbox[owner] <- frameOrErr{err: err}:
				default:
				}
			}
			return
		}
		// The delivery must not wedge the pump forever: if the owner stops
		// draining (it errored out, closed its endpoint, or the mesh is
		// being torn down), Close still has to be able to join this
		// goroutine.
		select {
		case m.inbox[owner] <- frameOrErr{f: f}:
		case <-m.done:
			return
		case <-m.epDone[owner]:
			return
		}
	}
}

// Endpoints returns the mesh's n endpoints.
func (m *Mesh) Endpoints() []transport.Endpoint {
	eps := make([]transport.Endpoint, m.n)
	for i := 0; i < m.n; i++ {
		id := proc.ID(i)
		eps[i] = &endpoint{mesh: m, id: id}
	}
	return eps
}

// Close tears the mesh down: it closes every connection, which makes the
// reader pumps exit, and then closes the inboxes so that a Recv issued
// after Close fails fast instead of blocking forever.
func (m *Mesh) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	m.mu.Unlock()
	close(m.done) // wake pumps blocked on full inboxes
	for i := range m.conns {
		for j := range m.conns[i] {
			if c := m.conns[i][j]; c != nil {
				_ = c.Close()
			}
		}
	}
	go func() {
		// Inboxes can only be closed once no pump can write to them.
		m.readers.Wait()
		for _, ch := range m.inbox {
			close(ch)
		}
	}()
	return nil
}

type endpoint struct {
	mesh *Mesh
	id   proc.ID

	mu       sync.Mutex
	encoders map[proc.ID]*json.Encoder
}

var _ transport.Endpoint = (*endpoint)(nil)

// Send implements transport.Endpoint.
func (e *endpoint) Send(to proc.ID, f transport.Frame) error {
	if to < 0 || int(to) >= e.mesh.n || to == e.id {
		return fmt.Errorf("tcpnet: bad peer %v", to)
	}
	e.mesh.mu.Lock()
	down := e.mesh.closed || e.mesh.epClosed[e.id]
	e.mesh.mu.Unlock()
	if down {
		return fmt.Errorf("tcpnet: endpoint %v: %w", e.id, transport.ErrClosed)
	}
	conn := e.mesh.conns[e.id][to]
	if conn == nil {
		return fmt.Errorf("tcpnet: no connection %v -> %v", e.id, to)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.encoders == nil {
		e.encoders = make(map[proc.ID]*json.Encoder)
	}
	enc, ok := e.encoders[to]
	if !ok {
		enc = json.NewEncoder(conn)
		e.encoders[to] = enc
	}
	return enc.Encode(f)
}

// Recv implements transport.Endpoint. With Options.RecvTimeout set, a
// peer that stalls past the deadline fails this round instead of wedging
// the node forever.
func (e *endpoint) Recv() (transport.Frame, error) {
	var timeout <-chan time.Time
	if d := e.mesh.opts.RecvTimeout; d > 0 {
		timer := time.NewTimer(d)
		defer timer.Stop()
		timeout = timer.C
	}
	select {
	case fe, ok := <-e.mesh.inbox[e.id]:
		if !ok {
			return transport.Frame{}, fmt.Errorf("tcpnet: mesh: %w", transport.ErrClosed)
		}
		if fe.err != nil {
			return transport.Frame{}, fe.err
		}
		return fe.f, nil
	case <-e.mesh.epDone[e.id]:
		return transport.Frame{}, fmt.Errorf("tcpnet: endpoint %v: %w", e.id, transport.ErrClosed)
	case <-timeout:
		return transport.Frame{}, fmt.Errorf("tcpnet: node %v: no frame within %v (stalled peer): %w",
			e.id, e.mesh.opts.RecvTimeout, transport.ErrTimeout)
	}
}

// Close implements transport.Endpoint. It is scoped to this endpoint: it
// severs only this node's connections and wakes only this node's pumps,
// leaving the rest of the mesh exchanging frames. Use Mesh.Close for full
// teardown. Idempotent.
func (e *endpoint) Close() error { return e.mesh.closeEndpoint(int(e.id)) }

// closeEndpoint severs one node's connections. Because each conns[i][j]
// pairs with conns[j][i] as the two ends of one TCP connection, siblings'
// pumps on links to this node observe a read failure — which they treat
// as the expected teardown (see pump), not an error.
func (m *Mesh) closeEndpoint(i int) error {
	m.mu.Lock()
	if m.closed || m.epClosed[i] {
		m.mu.Unlock()
		return nil
	}
	m.epClosed[i] = true
	m.mu.Unlock()
	close(m.epDone[i])
	for _, c := range m.conns[i] {
		if c != nil {
			_ = c.Close()
		}
	}
	return nil
}
