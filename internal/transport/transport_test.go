package transport_test

import (
	"net"
	"testing"
	"time"

	"expensive/internal/crypto/sig"
	"expensive/internal/msg"
	"expensive/internal/proc"
	"expensive/internal/protocols/cheap"
	"expensive/internal/protocols/phaseking"
	"expensive/internal/protocols/weak"
	"expensive/internal/transport"
	"expensive/internal/transport/memnet"
	"expensive/internal/transport/tcpnet"
)

func uniform(n int, v msg.Value) []msg.Value {
	out := make([]msg.Value, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func TestMemnetPhaseKing(t *testing.T) {
	n, tf := 5, 1
	mesh := memnet.New(n, nil)
	cluster := transport.Cluster{
		N:         n,
		Endpoints: mesh.Endpoints(),
		Factory:   phaseking.New(phaseking.Config{N: n, T: tf}),
		Proposals: []msg.Value{"0", "1", "1", "1", "0"},
		Rounds:    phaseking.RoundBound(tf),
	}
	results, err := cluster.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if _, err := transport.CommonDecision(results, proc.Universe(n)); err != nil {
		t.Fatalf("Agreement over memnet: %v", err)
	}
}

func TestMemnetFaultInjectionSplitsLeader(t *testing.T) {
	// Transport-level omission: drop the leader's payload toward p1. The
	// cheap leader protocol splits — the same counterexample shape the
	// falsifier builds, now on a live network.
	n := 5
	filter := func(from, to proc.ID, round int) bool { return from == 0 && to == 1 }
	mesh := memnet.New(n, filter)
	cluster := transport.Cluster{
		N:         n,
		Endpoints: mesh.Endpoints(),
		Factory:   cheap.Leader(n),
		Proposals: uniform(n, msg.Zero),
		Rounds:    cheap.LeaderRounds,
	}
	results, err := cluster.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if results[1].Decision != msg.One {
		t.Errorf("victim decided %q, want default 1", results[1].Decision)
	}
	if results[2].Decision != msg.Zero {
		t.Errorf("bystander decided %q, want 0", results[2].Decision)
	}
}

func TestMemnetAuthenticatedWeakConsensus(t *testing.T) {
	n, tf := 4, 1
	factory, rounds := weak.ViaIC(n, tf, sig.NewIdeal("memnet-ic"))
	mesh := memnet.New(n, nil)
	cluster := transport.Cluster{
		N:         n,
		Endpoints: mesh.Endpoints(),
		Factory:   factory,
		Proposals: uniform(n, msg.One),
		Rounds:    rounds,
	}
	results, err := cluster.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	d, err := transport.CommonDecision(results, proc.Universe(n))
	if err != nil || d != msg.One {
		t.Fatalf("decision %q err %v", d, err)
	}
}

func TestTCPNetPhaseKing(t *testing.T) {
	n, tf := 5, 1
	mesh, err := tcpnet.New(n)
	if err != nil {
		t.Fatalf("tcpnet: %v", err)
	}
	defer mesh.Close()
	cluster := transport.Cluster{
		N:         n,
		Endpoints: mesh.Endpoints(),
		Factory:   phaseking.New(phaseking.Config{N: n, T: tf}),
		Proposals: []msg.Value{"1", "0", "1", "0", "1"},
		Rounds:    phaseking.RoundBound(tf),
	}
	results, err := cluster.Run()
	if err != nil {
		t.Fatalf("Run over TCP: %v", err)
	}
	if _, err := transport.CommonDecision(results, proc.Universe(n)); err != nil {
		t.Fatalf("Agreement over TCP: %v", err)
	}
}

func TestTCPNetMatchesSimulatorDecision(t *testing.T) {
	// Determinism across substrates: the TCP run and the simulator run
	// decide identically from the same proposals.
	n, tf := 4, 1
	factory, rounds := weak.ViaEIG(n, tf)
	proposals := []msg.Value{"0", "0", "0", "0"}

	mesh, err := tcpnet.New(n)
	if err != nil {
		t.Fatalf("tcpnet: %v", err)
	}
	defer mesh.Close()
	cluster := transport.Cluster{N: n, Endpoints: mesh.Endpoints(), Factory: factory, Proposals: proposals, Rounds: rounds}
	results, err := cluster.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	d, err := transport.CommonDecision(results, proc.Universe(n))
	if err != nil {
		t.Fatal(err)
	}
	if d != msg.Zero {
		t.Errorf("TCP decision %q, want 0 (weak validity)", d)
	}
}

func TestClusterValidation(t *testing.T) {
	mesh := memnet.New(3, nil)
	bad := transport.Cluster{N: 3, Endpoints: mesh.Endpoints()[:2], Factory: cheap.Silent(), Proposals: uniform(3, "0"), Rounds: 1}
	if _, err := bad.Run(); err == nil {
		t.Error("expected endpoint-count error")
	}
	bad2 := transport.Cluster{N: 3, Endpoints: mesh.Endpoints(), Factory: cheap.Silent(), Proposals: uniform(3, "0"), Rounds: 0}
	if _, err := bad2.Run(); err == nil {
		t.Error("expected rounds error")
	}
}

// TestDialRetryLateListener starts the listener only after the first dial
// attempt has already failed: DialRetry must ride its backoff through the
// gap and connect.
func TestDialRetryLateListener(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr := l.Addr().String()
	l.Close() // free the port; nothing is listening now

	ready := make(chan net.Listener, 1)
	go func() {
		time.Sleep(30 * time.Millisecond)
		l2, err := net.Listen("tcp", addr)
		if err != nil {
			ready <- nil
			return
		}
		ready <- l2
	}()

	conn, err := transport.DialRetry("tcp", addr, 10, 20*time.Millisecond)
	l2 := <-ready
	if l2 != nil {
		defer l2.Close()
	}
	if err != nil {
		t.Fatalf("DialRetry never connected to the late listener: %v", err)
	}
	conn.Close()
}

// TestDialRetryExhausted checks the bounded-attempts failure path.
func TestDialRetryExhausted(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr := l.Addr().String()
	l.Close()
	if _, err := transport.DialRetry("tcp", addr, 2, time.Millisecond); err == nil {
		t.Fatal("DialRetry succeeded against a dead address")
	}
}
