package adversary

// The named attack library. This used to be a hand-written table inside
// cmd/baexp; it lives here so every registry-driven surface — `baexp
// hunt`, `baexp matrix`, the catalog matrix engine — derives its strategy
// offerings from one place.

// Named couples a short, stable library ID with a strategy. The
// Strategy.Name carries the full parameterization (e.g. the omission
// bias); the ID is what CLIs and matrix grids key on.
type Named struct {
	ID       string
	Strategy Strategy
}

// Library returns the named attack library in ID order; biasPct
// parameterizes the random-omission family (and the storm union).
func Library(biasPct int) []Named {
	return []Named{
		{"chaos", Chaos()},
		{"equivocate", Equivocate()},
		{"random-omission", RandomOmission(biasPct)},
		{"random-receive-omission", RandomReceiveOmission(biasPct)},
		{"random-send-omission", RandomSendOmission(biasPct)},
		{"sender-isolation", SenderIsolation()},
		{"silent-crash", SilentCrash()},
		{"storm", Union(RandomOmission(biasPct), Chaos())},
		{"targeted-withhold", TargetedWithhold()},
		{"two-faced", TwoFaced()},
	}
}

// LibraryIDs lists the library's strategy IDs in order.
func LibraryIDs() []string {
	lib := Library(0)
	out := make([]string, len(lib))
	for i, e := range lib {
		out[i] = e.ID
	}
	return out
}

// FromLibrary resolves one library strategy by ID.
func FromLibrary(id string, biasPct int) (Strategy, bool) {
	for _, e := range Library(biasPct) {
		if e.ID == id {
			return e.Strategy, true
		}
	}
	return Strategy{}, false
}
