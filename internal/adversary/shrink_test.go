package adversary

import (
	"testing"

	"expensive/internal/msg"
	"expensive/internal/proc"
	"expensive/internal/protocols/floodset"
	"expensive/internal/sim"
)

// handmadeFloodSetViolation replays the E10 last-round-reveal attack as an
// explicit plan (attacker 0 withholds its unique minimum from everyone but
// victim 1 until the decision round) and wraps the resulting split as a
// Violation, exactly as a campaign probe would.
func handmadeFloodSetViolation(t *testing.T, n, tf int) (*Violation, ShrinkOptions) {
	t.Helper()
	rounds := floodset.RoundBound(tf)
	factory := floodset.New(floodset.Config{N: n, T: tf})
	horizon := rounds + 2

	plan := &ExplicitPlan{Faulty: []proc.ID{0}}
	for r := 1; r <= rounds; r++ {
		for p := 1; p < n; p++ {
			if r == rounds && p == 1 {
				continue // the last-round reveal to the victim
			}
			plan.SendOmit = append(plan.SendOmit, msg.Key{Sender: 0, Receiver: proc.ID(p), Round: r})
		}
	}
	proposals := make([]msg.Value, n)
	proposals[0] = msg.Zero
	for i := 1; i < n; i++ {
		proposals[i] = msg.One
	}

	env := Env{N: n, T: tf, Rounds: rounds, Horizon: horizon, Factory: factory}
	e, err := sim.Run(sim.Config{N: n, T: tf, Proposals: proposals, MaxRounds: horizon}, factory, plan.Plan(env))
	if err != nil {
		t.Fatal(err)
	}
	v := violationIn(e, proposals, WeakValidity, nil)
	if v == nil || v.Kind != "agreement" {
		t.Fatalf("handmade attack did not split FloodSet (violation: %v)", v)
	}
	v.Seed = -1
	v.Proposals = proposals
	v.Plan = plan
	opts := ShrinkOptions{
		Factory: factory,
		Rounds:  rounds,
		N:       n,
		T:       tf,
		Horizon: horizon,
		New: func(n, t int) (sim.Factory, int, error) {
			return floodset.New(floodset.Config{N: n, T: t}), floodset.RoundBound(t), nil
		},
		Validity: WeakValidity,
	}
	return v, opts
}

// TestShrinkReducesN shrinks the handmade n=8 counterexample down to the
// three processes the split actually needs: attacker, victim, bystander.
func TestShrinkReducesN(t *testing.T) {
	v, opts := handmadeFloodSetViolation(t, 8, 2)
	sh, err := Shrink(v, opts)
	if err != nil {
		t.Fatal(err)
	}
	if sh.N != 3 {
		t.Errorf("shrunk to n=%d, want 3 (attacker+victim+bystander)", sh.N)
	}
	if sh.FaultyAfter != 1 {
		t.Errorf("shrunk to %d faulty, want 1", sh.FaultyAfter)
	}
	if sh.Kind != "agreement" {
		t.Errorf("shrunk violation kind %q, want agreement", sh.Kind)
	}
	if sh.OmitAfter >= sh.OmitBefore {
		t.Errorf("omissions not reduced: %d -> %d", sh.OmitBefore, sh.OmitAfter)
	}
	v.Shrunk = sh
	if err := Recheck(v, opts); err != nil {
		t.Fatalf("recheck of shrunk certificate: %v", err)
	}
}

// TestShrinkWithoutNReduction pins the element-only path: with no New
// constructor the system size stays put but omissions still minimize.
func TestShrinkWithoutNReduction(t *testing.T) {
	v, opts := handmadeFloodSetViolation(t, 8, 2)
	opts.New = nil
	sh, err := Shrink(v, opts)
	if err != nil {
		t.Fatal(err)
	}
	if sh.N != 8 {
		t.Errorf("n changed to %d without a constructor", sh.N)
	}
	if sh.OmitAfter >= sh.OmitBefore {
		t.Errorf("omissions not reduced: %d -> %d", sh.OmitBefore, sh.OmitAfter)
	}
	if err := Recheck(v, opts); err != nil {
		t.Fatalf("recheck of found certificate: %v", err)
	}
}

// TestShrinkRederivesHorizon pins the horizon against staleness: when New
// rebuilds the protocol at a smaller n with a smaller round bound, a
// defaulted horizon must be re-derived as rounds+2 from the new bound —
// never kept from the original, larger-rounds protocol. (The shrinker
// preserves the Horizon-Rounds slack across rebuilds, which re-derives
// the rounds+2 default as a special case; this test keeps any future
// rewrite honest.)
func TestShrinkRederivesHorizon(t *testing.T) {
	// A rounds bound that tracks n (max(t+1, n-1)), so shrinking n shrinks
	// the round bound too. FloodSet itself only needs t+1 rounds, so the
	// inflated bound is sound — the extra rounds are silent.
	rebuild := func(n, tf int) (sim.Factory, int, error) {
		r := floodset.RoundBound(tf)
		if n-1 > r {
			r = n - 1
		}
		return floodset.New(floodset.Config{N: n, T: tf}), r, nil
	}
	v, opts := handmadeFloodSetViolation(t, 8, 2)
	factory, rounds, err := rebuild(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	opts.Factory, opts.Rounds, opts.New = factory, rounds, rebuild
	opts.Horizon = 0 // defaulted: Shrink derives rounds+2 and must keep re-deriving
	sh, err := Shrink(v, opts)
	if err != nil {
		t.Fatal(err)
	}
	if sh.N >= 8 {
		t.Fatalf("n did not shrink (n=%d): the rounds-reduction path was not exercised", sh.N)
	}
	if sh.Rounds >= rounds {
		t.Fatalf("round bound did not shrink with n: %d -> %d", rounds, sh.Rounds)
	}
	if sh.Horizon != sh.Rounds+2 {
		t.Errorf("stale horizon: got %d at round bound %d, want the re-derived default %d",
			sh.Horizon, sh.Rounds, sh.Rounds+2)
	}
	v.Shrunk = sh
	if err := Recheck(v, opts); err != nil {
		t.Fatalf("recheck of rounds-reduced certificate: %v", err)
	}
}

// TestShrinkRejectsPlanless refuses violations without replayable plans.
func TestShrinkRejectsPlanless(t *testing.T) {
	v, opts := handmadeFloodSetViolation(t, 8, 2)
	v.Plan = nil
	if _, err := Shrink(v, opts); err == nil {
		t.Fatal("expected error for planless violation")
	}
}

// TestRecheckRejectsTampered demands Recheck fail when the recorded
// violation does not match the replay.
func TestRecheckRejectsTampered(t *testing.T) {
	v, opts := handmadeFloodSetViolation(t, 8, 2)
	if err := Recheck(v, opts); err != nil {
		t.Fatalf("genuine certificate rejected: %v", err)
	}
	v.Kind = "termination"
	if err := Recheck(v, opts); err == nil {
		t.Fatal("tampered certificate accepted")
	}
}
