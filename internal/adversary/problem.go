package adversary

import (
	"expensive/internal/msg"
	"expensive/internal/validity"
)

// DomainProposals returns the seed-deterministic proposal generator that
// draws every process's input uniformly from the given domain — the
// generator problem-derived hunts use (see solve.HuntCampaign).
func DomainProposals(inputs []msg.Value) func(seed int64, env Env) []msg.Value {
	return func(seed int64, env Env) []msg.Value {
		r := rng(seed, "problem-proposals")
		out := make([]msg.Value, env.N)
		for i := range out {
			out[i] = inputs[r.Intn(len(inputs))]
		}
		return out
	}
}

// ProblemValidity checks a decision against a problem's validity property
// (validity.AdmissibleCheck).
func ProblemValidity(p validity.Problem) ValidityFunc { return validity.AdmissibleCheck(p) }
