package adversary

import (
	"fmt"

	"expensive/internal/msg"
	"expensive/internal/proc"
	"expensive/internal/solve"
	"expensive/internal/validity"
)

// ForProblem builds a campaign that hunts a problem's derived protocol:
// the adversary attacks the Algorithm 2 synthesis while every probe
// checks Termination, Agreement, and the problem's own validity property
// (the decision must be admissible under the correct processes' input
// configuration). Proposals are drawn seed-deterministically from the
// problem's input domain.
func ForProblem(p validity.Problem, d *solve.Derived, strategy Strategy, seeds SeedRange) (*Campaign, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if d == nil || d.Factory == nil {
		return nil, fmt.Errorf("adversary: problem %s has no derived protocol", p.Name)
	}
	return &Campaign{
		Protocol: p.Name + "/" + d.Mode,
		Factory:  d.Factory,
		Rounds:   d.Rounds,
		N:        p.N,
		T:        p.T,
		Strategy: strategy,
		Seeds:    seeds,
		Proposals: func(seed int64, env Env) []msg.Value {
			r := rng(seed, "problem-proposals")
			out := make([]msg.Value, env.N)
			for i := range out {
				out[i] = p.Inputs[r.Intn(len(p.Inputs))]
			}
			return out
		},
		Validity: ProblemValidity(p),
	}, nil
}

// ProblemValidity checks a decision against a problem's validity property:
// it rebuilds the input configuration of the correct processes and
// requires the decision to be admissible under it.
func ProblemValidity(p validity.Problem) ValidityFunc {
	return func(proposals []msg.Value, correct proc.Set, decision msg.Value) error {
		assign := make(map[proc.ID]msg.Value, correct.Len())
		for _, id := range correct.Members() {
			assign[id] = proposals[id]
		}
		c, err := validity.NewConfig(p.N, assign)
		if err != nil {
			return fmt.Errorf("rebuild input configuration: %w", err)
		}
		if !p.Admissible(c, decision) {
			return fmt.Errorf("decided %q, which is not admissible under %v", decision, c)
		}
		return nil
	}
}
