package adversary

import (
	"fmt"

	"expensive/internal/msg"
	"expensive/internal/obs"
	"expensive/internal/omission"
	"expensive/internal/proc"
	"expensive/internal/sim"
)

// ShrinkOptions parameterize the shrinker with the protocol the violation
// was found against.
type ShrinkOptions struct {
	// Factory and Rounds describe the protocol at the violation's original
	// system size N (all required, along with T).
	Factory sim.Factory
	Rounds  int
	N, T    int
	// Horizon is the probe execution length (default Rounds+2).
	Horizon int
	// New optionally rebuilds the protocol at a smaller system size,
	// enabling n-shrinking. Returning an error refuses a size.
	New func(n, t int) (sim.Factory, int, error)
	// Validity is the property the original campaign checked.
	Validity ValidityFunc
	// Agreement is the campaign's pairwise compatibility relation, when it
	// replaced strict equal-decision Agreement.
	Agreement AgreementFunc
	// Obs optionally receives shrink telemetry (a shrink_steps counter and
	// shrink-step trace events). Nil — the default — costs one pointer
	// check per candidate replay; the ShrinkResult itself never depends on
	// it.
	Obs *obs.Recorder
}

// ShrinkResult is a minimized counterexample: an explicit fault plan from
// which no single corruption or omission can be removed (and, when New is
// available, no process dropped) without the violation disappearing.
type ShrinkResult struct {
	// N and Rounds are the (possibly reduced) system size and round bound;
	// Horizon is the execution length the minimal plan was validated at.
	N       int `json:"n"`
	Rounds  int `json:"round_bound"`
	Horizon int `json:"horizon"`
	// Plan is the minimal fault plan.
	Plan ExplicitPlan `json:"plan"`
	// Proposals is the (possibly truncated) input configuration.
	Proposals []msg.Value `json:"proposals"`
	// Kind and Detail describe the violation the minimal plan produces
	// (shrinking preserves failure, not necessarily the original kind).
	Kind     string    `json:"kind"`
	Detail   string    `json:"detail"`
	Witness1 int       `json:"witness1"`
	D1       msg.Value `json:"d1,omitempty"`
	Witness2 int       `json:"witness2"`
	D2       msg.Value `json:"d2,omitempty"`
	// FaultyBefore/After and OmitBefore/After measure the reduction;
	// NBefore records the original system size.
	FaultyBefore int `json:"faulty_before"`
	FaultyAfter  int `json:"faulty_after"`
	OmitBefore   int `json:"omit_before"`
	OmitAfter    int `json:"omit_after"`
	NBefore      int `json:"n_before"`
	// Steps counts the candidate replays the shrinker evaluated.
	Steps int `json:"steps"`
}

// String summarizes the reduction.
func (s *ShrinkResult) String() string {
	return fmt.Sprintf("%s violation with %d faulty (was %d), %d omissions (was %d), n=%d (was %d) after %d replays",
		s.Kind, s.FaultyAfter, s.FaultyBefore, s.OmitAfter, s.OmitBefore, s.N, s.NBefore, s.Steps)
}

// shrinker carries the mutable state of one minimization.
type shrinker struct {
	opts  ShrinkOptions
	steps int

	// Telemetry handles, nil when opts.Obs is nil.
	obsSteps *obs.Counter // shrink_steps: candidate replays evaluated
	sink     *obs.Sink

	// Current protocol instance (changes when n shrinks).
	n       int
	factory sim.Factory
	rounds  int
	horizon int

	plan      ExplicitPlan
	proposals []msg.Value
	last      *Violation // violation of the current (accepted) state
}

// replay runs a candidate plan from scratch and returns the violation it
// produces, or nil when the candidate no longer fails (or is not even a
// valid, conformant execution — such candidates are rejected, keeping
// every accepted step machine-checkable).
func (s *shrinker) replay(plan ExplicitPlan, n int, factory sim.Factory, horizon int, proposals []msg.Value) *Violation {
	s.steps++
	s.obsSteps.Inc()
	env := Env{N: n, T: s.opts.T, Rounds: s.rounds, Horizon: horizon, Factory: factory}
	fp := plan.Plan(env)
	cfg := sim.Config{N: n, T: s.opts.T, Proposals: proposals, MaxRounds: horizon}
	e, err := sim.Run(cfg, factory, fp)
	if err != nil {
		return nil
	}
	if omission.Validate(e) != nil {
		return nil
	}
	if sim.Conforms(e, factory, byzSkip(fp, e.Faulty)) != nil {
		return nil
	}
	v := violationIn(e, proposals, s.opts.Validity, s.opts.Agreement)
	if v != nil {
		v.Proposals = proposals
	}
	return v
}

// try evaluates a candidate plan at the current size and accepts it when
// the violation persists.
func (s *shrinker) try(cand ExplicitPlan) bool {
	v := s.replay(cand, s.n, s.factory, s.horizon, s.proposals)
	if v == nil {
		return false
	}
	s.plan, s.last = cand, v
	if s.sink != nil {
		s.sink.Emit("shrink-step",
			"n", s.n, "faulty", len(s.plan.Faulty), "omissions", s.plan.Omissions(), "step", s.steps)
	}
	return true
}

// minimizeElements greedily removes corrupted processes and omitted
// message identities until no single removal preserves the violation
// (1-minimality). Candidates are tried in deterministic order.
func (s *shrinker) minimizeElements() {
	for improved := true; improved; {
		improved = false
		ids := append([]proc.ID(nil), s.plan.Faulty...)
		for _, id := range ids {
			if !s.plan.FaultySet().Contains(id) {
				continue // removed together with an earlier candidate
			}
			if s.try(s.plan.withoutProc(id)) {
				improved = true
			}
		}
		for i := 0; i < len(s.plan.SendOmit); {
			if s.try(s.plan.withoutSendOmit(i)) {
				improved = true // same index now names the next key
			} else {
				i++
			}
		}
		for i := 0; i < len(s.plan.ReceiveOmit); {
			if s.try(s.plan.withoutReceiveOmit(i)) {
				improved = true
			} else {
				i++
			}
		}
	}
}

// minimizeN drops the highest-numbered process while the protocol can be
// rebuilt at the smaller size and the violation persists.
func (s *shrinker) minimizeN() {
	if s.opts.New == nil {
		return
	}
	for s.n > 2 && s.n-1 > s.opts.T {
		n2 := s.n - 1
		factory2, rounds2, err := s.opts.New(n2, s.opts.T)
		if err != nil {
			return
		}
		// Re-derive the horizon for the rebuilt protocol by preserving the
		// slack (Horizon - Rounds), never the absolute number: when New
		// returns a smaller round bound, a defaulted horizon (slack 2)
		// becomes rounds2+2 and a custom horizon keeps its semantics at
		// the smaller size. Carrying the original horizon over would
		// replay a smaller-rounds protocol past (or short of) the window
		// the violation was defined in — TestShrinkRederivesHorizon pins
		// this with a rounds-reducing New.
		horizon2 := rounds2 + (s.horizon - s.rounds)
		plan2 := s.plan.filterTo(n2)
		proposals2 := append([]msg.Value(nil), s.proposals[:n2]...)
		// rounds must be updated before replay builds the Env.
		oldRounds := s.rounds
		s.rounds = rounds2
		v := s.replay(plan2, n2, factory2, horizon2, proposals2)
		if v == nil {
			s.rounds = oldRounds
			return
		}
		s.n, s.factory, s.horizon = n2, factory2, horizon2
		s.plan, s.proposals, s.last = plan2, proposals2, v
	}
}

// Shrink minimizes a campaign violation into a 1-minimal explicit fault
// plan, re-validating every candidate step against the execution
// guarantees and machine conformance. The violation must carry a
// replayable plan (Violation.Plan != nil).
func Shrink(v *Violation, opts ShrinkOptions) (*ShrinkResult, error) {
	if v == nil || v.Plan == nil {
		return nil, fmt.Errorf("shrink: violation carries no replayable plan")
	}
	if opts.Factory == nil || opts.Rounds <= 0 || opts.N < 2 {
		return nil, fmt.Errorf("shrink: options need Factory, Rounds and N")
	}
	horizon := opts.Horizon
	if horizon <= 0 {
		horizon = opts.Rounds + 2
	}
	s := &shrinker{
		opts:      opts,
		n:         opts.N,
		factory:   opts.Factory,
		rounds:    opts.Rounds,
		horizon:   horizon,
		plan:      v.Plan.clone(),
		proposals: append([]msg.Value(nil), v.Proposals...),
		obsSteps:  opts.Obs.Counter("shrink_steps"),
		sink:      opts.Obs.Sink(),
	}
	// The materialized plan must reproduce a violation before anything is
	// removed; if it does not, the certificate was never replayable.
	if s.last = s.replay(s.plan, s.n, s.factory, s.horizon, s.proposals); s.last == nil {
		return nil, fmt.Errorf("shrink: violation of seed %d does not replay from its explicit plan", v.Seed)
	}

	// Shrink the system size before individual elements: the element pass
	// is free to concentrate the surviving omissions on high process IDs,
	// which would block n-reduction if it ran first. Each pass can expose
	// work for the other, so iterate to a fixpoint (progress is monotone —
	// n, |faulty| and omission counts only ever decrease).
	for {
		n, faulty, omits := s.n, len(s.plan.Faulty), s.plan.Omissions()
		s.minimizeN()
		s.minimizeElements()
		if s.n == n && len(s.plan.Faulty) == faulty && s.plan.Omissions() == omits {
			break
		}
	}

	return &ShrinkResult{
		N:            s.n,
		Rounds:       s.rounds,
		Horizon:      s.horizon,
		Plan:         s.plan,
		Proposals:    s.proposals,
		Kind:         s.last.Kind,
		Detail:       s.last.Detail,
		Witness1:     int(s.last.Witness1),
		D1:           s.last.D1,
		Witness2:     int(s.last.Witness2),
		D2:           s.last.D2,
		FaultyBefore: len(v.Plan.Faulty),
		FaultyAfter:  len(s.plan.Faulty),
		OmitBefore:   v.Plan.Omissions(),
		OmitAfter:    s.plan.Omissions(),
		NBefore:      opts.N,
		Steps:        s.steps,
	}, nil
}

// Recheck independently re-validates a violation certificate,
// CheckViolation-style: the explicit plan (the shrunken one when present)
// is replayed from scratch; the resulting execution must satisfy the five
// Appendix A.1.6 guarantees, stay within the fault budget, conform to the
// protocol's honest machines, and exhibit exactly the recorded violation.
func Recheck(v *Violation, opts ShrinkOptions) error {
	if v == nil {
		return fmt.Errorf("recheck: nil violation")
	}
	plan, n, factory, rounds := v.Plan, opts.N, opts.Factory, opts.Rounds
	proposals := v.Proposals
	kind, w1, d1, w2, d2 := v.Kind, int(v.Witness1), v.D1, int(v.Witness2), v.D2
	horizon := opts.Horizon
	if horizon <= 0 {
		horizon = rounds + 2
	}
	if v.Shrunk != nil {
		sh := v.Shrunk
		plan, n, rounds, proposals = &sh.Plan, sh.N, sh.Rounds, sh.Proposals
		kind, w1, d1, w2, d2 = sh.Kind, sh.Witness1, sh.D1, sh.Witness2, sh.D2
		// Replay at the horizon the shrinker validated the minimal plan
		// under (it tracks the campaign's Horizon slack across n changes).
		horizon = sh.Horizon
		if horizon <= 0 {
			horizon = rounds + 2
		}
		if n != opts.N {
			if opts.New == nil {
				return fmt.Errorf("recheck: shrunk to n=%d but no protocol constructor supplied", n)
			}
			var err error
			factory, rounds, err = opts.New(n, opts.T)
			if err != nil {
				return fmt.Errorf("recheck: rebuild protocol at n=%d: %w", n, err)
			}
		}
	}
	if plan == nil {
		return fmt.Errorf("recheck: violation carries no replayable plan")
	}
	if factory == nil {
		return fmt.Errorf("recheck: options carry no factory")
	}

	env := Env{N: n, T: opts.T, Rounds: rounds, Horizon: horizon, Factory: factory}
	fp := plan.Plan(env)
	cfg := sim.Config{N: n, T: opts.T, Proposals: proposals, MaxRounds: horizon}
	e, err := sim.Run(cfg, factory, fp)
	if err != nil {
		return fmt.Errorf("recheck: replay: %w", err)
	}
	if err := omission.Validate(e); err != nil {
		return fmt.Errorf("recheck: execution invalid: %w", err)
	}
	if e.Faulty.Len() > opts.T {
		return fmt.Errorf("recheck: %d faulty processes exceed t=%d", e.Faulty.Len(), opts.T)
	}
	if err := sim.Conforms(e, factory, byzSkip(fp, e.Faulty)); err != nil {
		return fmt.Errorf("recheck: trace does not conform to the protocol: %w", err)
	}
	got := violationIn(e, proposals, opts.Validity, opts.Agreement)
	if got == nil {
		return fmt.Errorf("recheck: replayed execution exhibits no violation")
	}
	if got.Kind != kind || int(got.Witness1) != w1 || got.D1 != d1 || int(got.Witness2) != w2 || got.D2 != d2 {
		return fmt.Errorf("recheck: replayed violation %q (%s/%s) does not match recorded %q (p%d/p%d)",
			got.Kind, got.Witness1, got.Witness2, kind, w1, w2)
	}
	return nil
}
