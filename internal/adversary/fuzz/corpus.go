package fuzz

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"

	"expensive/internal/adversary"
	"expensive/internal/msg"
	"expensive/internal/sim"
)

// Entry is one corpus member: a replayable probe (explicit fault plan plus
// proposal vector) that exercised engine behavior no earlier probe did,
// tagged with its coverage hash and provenance (which parent it was
// mutated from, by which operator, in which generation).
type Entry struct {
	// ID is the entry's position in discovery order (0-based).
	ID int `json:"id"`
	// Gen is the generation the entry was discovered in (0 = seeding).
	Gen int `json:"gen"`
	// Parent is the ID of the corpus entry this one was mutated from, -1
	// for seeded entries.
	Parent int `json:"parent"`
	// Op names the mutation operator that produced the entry ("seed" for
	// generation 0).
	Op string `json:"op"`
	// Cov is the coverage hash of the entry's lean execution.
	Cov uint64 `json:"cov"`
	// Violating marks entries whose probe violated a protocol property.
	Violating bool `json:"violating,omitempty"`
	// Plan and Proposals replay the probe exactly.
	Plan      adversary.ExplicitPlan `json:"plan"`
	Proposals []msg.Value            `json:"proposals"`
}

// Corpus is the persisted population of a fuzzing run. Its JSON encoding
// is deterministic: entries are appended in discovery order, and discovery
// order is a pure function of the fuzzer's inputs (generation batches are
// processed in index order), so corpora are byte-identical at every
// parallelism level.
type Corpus struct {
	// Protocol, N and T identify the target the corpus was grown against;
	// a fuzzer refuses to resume from a corpus for a different target.
	Protocol string `json:"protocol"`
	N        int    `json:"n"`
	T        int    `json:"t"`
	// Entries, in discovery order.
	Entries []*Entry `json:"entries"`
}

// NewCorpus returns an empty corpus for the given target.
func NewCorpus(protocol string, n, t int) *Corpus {
	return &Corpus{Protocol: protocol, N: n, T: t}
}

// Size returns the number of entries.
func (c *Corpus) Size() int { return len(c.Entries) }

// add appends a novel entry and returns it.
func (c *Corpus) add(e Entry) *Entry {
	e.ID = len(c.Entries)
	c.Entries = append(c.Entries, &e)
	return c.Entries[e.ID]
}

// Save writes the corpus as indented JSON. The encoding is deterministic,
// so saved corpora can be diffed across runs and parallelism levels.
func (c *Corpus) Save(path string) error {
	out, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return fmt.Errorf("corpus: encode: %w", err)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return fmt.Errorf("corpus: write: %w", err)
	}
	return nil
}

// LoadCorpus reads a corpus saved by Save.
func LoadCorpus(path string) (*Corpus, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("corpus: read: %w", err)
	}
	c := &Corpus{}
	if err := json.Unmarshal(raw, c); err != nil {
		return nil, fmt.Errorf("corpus: decode %s: %w", path, err)
	}
	return c, nil
}

// coverage computes the novelty hash of an execution: per-process,
// per-round sent/send-omitted/received/receive-omitted count vectors plus
// the decision pattern (decided, value, decision round) and the overall
// round count. Two executions with the same hash drove the engine through
// the same observable schedule shape; a new hash is new behavior worth
// keeping in the corpus.
//
// The hash reads counts only, so it is tier-independent: a RecordDecisions
// run and the RecordFull replay of the same configuration hash
// identically (the engine's tier-equivalence contract).
func coverage(e *sim.Execution) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	word := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	word(uint64(e.Rounds))
	for _, b := range e.Behaviors {
		rounds := b.RoundsRecorded()
		for r := 1; r <= rounds; r++ {
			var sent, somit, recv, romit int
			if b.Lean != nil {
				sent, somit = b.Lean.Sent[r-1], b.Lean.SendOmitted[r-1]
				recv, romit = b.Lean.Received[r-1], b.Lean.ReceiveOmitted[r-1]
			} else {
				//balint:allow leantier full-trace branch: lean traces take the b.Lean fast path above
				f := b.Frag(r)
				sent, somit = len(f.Sent), len(f.SendOmitted)
				recv, romit = len(f.Received), len(f.ReceiveOmitted)
			}
			word(uint64(sent)<<48 | uint64(somit)<<32 | uint64(recv)<<16 | uint64(romit))
		}
		if d, ok := b.FinalDecision(); ok {
			word(uint64(b.DecisionRound()))
			h.Write([]byte(d))
		} else {
			word(0)
		}
		h.Write([]byte{0xff}) // behavior separator
	}
	return h.Sum64()
}
