package fuzz

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"expensive/internal/obs"
)

// TestFuzzerTelemetryNeverTouchesTheReport applies the flight recorder's
// contract to the fuzzer: report AND corpus bytes are identical with
// telemetry off, with telemetry on, and at every parallelism level, while
// the side channel records the coverage-growth curve.
func TestFuzzerTelemetryNeverTouchesTheReport(t *testing.T) {
	const budget = 512
	encode := func(parallelism int, rec *obs.Recorder) (report, corpus []byte) {
		f := floodsetFuzzer(4, 3, budget, parallelism)
		f.Corpus = NewCorpus("floodset", 4, 3)
		f.Ctx = obs.Into(context.Background(), rec)
		rep, err := f.Run()
		if err != nil {
			t.Fatal(err)
		}
		report, err = json.MarshalIndent(rep, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		corpus, err = json.MarshalIndent(f.Corpus, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		return report, corpus
	}

	baseRep, baseCorpus := encode(1, nil)
	rec := obs.New()
	var events bytes.Buffer
	rec.SetSink(obs.NewSink(&events))
	for _, tc := range []struct {
		name        string
		parallelism int
		rec         *obs.Recorder
	}{
		{"telemetry-on serial", 1, rec},
		{"telemetry-on parallel", 8, rec},
	} {
		rep, corpus := encode(tc.parallelism, tc.rec)
		if !bytes.Equal(baseRep, rep) {
			t.Errorf("%s: report diverged from the telemetry-off serial baseline", tc.name)
		}
		if !bytes.Equal(baseCorpus, corpus) {
			t.Errorf("%s: corpus diverged from the telemetry-off serial baseline", tc.name)
		}
	}

	if probes := rec.Counter("fuzz_probes").Value(); probes != 2*budget {
		t.Errorf("fuzz_probes = %d, want %d (2 instrumented runs × budget)", probes, 2*budget)
	}
	if g := rec.Counter("fuzz_generations").Value(); g == 0 {
		t.Error("fuzz_generations = 0")
	}
	if nc := rec.Counter("fuzz_new_coverage").Value(); nc == 0 {
		t.Error("fuzz_new_coverage = 0: a fresh corpus must grow")
	}
	if cs := rec.Gauge("fuzz_corpus_size").Value(); cs == 0 {
		t.Error("fuzz_corpus_size gauge = 0 after growth")
	}
	for _, want := range []string{`"name":"fuzz-start"`, `"name":"generation"`, `"name":"fuzz-end"`} {
		if !bytes.Contains(events.Bytes(), []byte(want)) {
			t.Errorf("trace sink missing %s events", want)
		}
	}
}
