package fuzz

import (
	"bytes"
	"encoding/json"
	"testing"
)

// driveSession folds a session forward, snapshotting after snapshotAfter
// generations (0 = never) and returning the marshaled snapshot alongside
// the finished report when it kept going.
func driveSession(t *testing.T, s *Session, snapshotAfter int) ([]byte, *Report) {
	t.Helper()
	folded := 0
	for g := s.NextGeneration(); g != nil; g = s.NextGeneration() {
		results := make([]Outcome, g.Count)
		for i := range results {
			out, err := s.Probe(g, i)
			if err != nil {
				t.Fatalf("probe %d of gen %d: %v", i, g.Gen, err)
			}
			results[i] = out
		}
		s.Fold(g, results)
		folded++
		if snapshotAfter > 0 && folded == snapshotAfter {
			snap, err := json.Marshal(s.State())
			if err != nil {
				t.Fatalf("marshal snapshot: %v", err)
			}
			return snap, nil
		}
	}
	rep, err := s.Finish()
	if err != nil {
		t.Fatalf("finish: %v", err)
	}
	return nil, rep
}

// TestSessionResumeByteIdentical is the checkpoint/resume contract at the
// session layer: stop a fuzzing run after a few generations, round-trip
// its state through JSON (exactly what a coordinator checkpoint does),
// resume on a freshly configured fuzzer, and the finished report and
// corpus must be byte-identical to an uninterrupted run's.
func TestSessionResumeByteIdentical(t *testing.T) {
	// Uninterrupted reference run.
	ref := floodsetFuzzer(4, 3, 512, 1)
	refRep, err := ref.Run()
	if err != nil {
		t.Fatal(err)
	}
	refJSON, _ := json.Marshal(refRep)
	refCorpus, _ := json.Marshal(ref.Corpus)

	// Interrupted run: snapshot after 3 generations, discard the session.
	f1 := floodsetFuzzer(4, 3, 512, 1)
	s1, err := f1.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	snap, _ := driveSession(t, s1, 3)
	if snap == nil {
		t.Fatal("run finished before the snapshot point; lower snapshotAfter")
	}

	// Resume from the JSON round-trip on a fresh, identically configured
	// fuzzer and run to completion.
	var st SessionState
	if err := json.Unmarshal(snap, &st); err != nil {
		t.Fatalf("unmarshal snapshot: %v", err)
	}
	f2 := floodsetFuzzer(4, 3, 512, 1)
	s2, err := f2.ResumeSession(&st)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	_, rep2 := driveSession(t, s2, 0)
	gotJSON, _ := json.Marshal(rep2)
	gotCorpus, _ := json.Marshal(f2.Corpus)

	if !bytes.Equal(gotJSON, refJSON) {
		t.Errorf("resumed report diverged:\nresumed: %s\nreference: %s", gotJSON, refJSON)
	}
	if !bytes.Equal(gotCorpus, refCorpus) {
		t.Errorf("resumed corpus diverged from the uninterrupted run's")
	}
}

// TestSessionMatchesRun pins the session protocol driven manually to
// Fuzzer.Run's output.
func TestSessionMatchesRun(t *testing.T) {
	a := floodsetFuzzer(4, 3, 256, 0)
	repA, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	b := floodsetFuzzer(4, 3, 256, 1)
	s, err := b.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	_, repB := driveSession(t, s, 0)
	ja, _ := json.Marshal(repA)
	jb, _ := json.Marshal(repB)
	if !bytes.Equal(ja, jb) {
		t.Errorf("session-driven report diverged from Run:\nsession: %s\nrun: %s", jb, ja)
	}
}
