package fuzz

import (
	"fmt"

	"expensive/internal/adversary"
	"expensive/internal/experiments/runner"
	"expensive/internal/obs"
)

// Session is the fuzzer's resumable core: the sequential half of the
// generation loop — candidate derivation, corpus growth, report folding —
// split out from probe execution so a scheduler (Run's local worker pool
// or the distributed coordinator) can execute probes anywhere while the
// session keeps every byte of the report and corpus
// scheduling-independent. The protocol is strict: NextGeneration, then
// every probe of that generation, then Fold, repeated until
// NextGeneration returns nil, then Finish.
//
// A Session's externally visible state is JSON-serializable (State), and
// ResumeSession rebuilds an equivalent session from a snapshot: fold a
// resumed session forward through the remaining generations and its
// report and corpus are byte-identical to an uninterrupted run's.
type Session struct {
	f      *Fuzzer
	env    adversary.Env
	fo     fuzzObs
	corpus *Corpus
	seen   map[uint64]bool
	report *Report
	m      mutator

	// msgCounts and roundCounts accumulate the exact-value histogram
	// multisets as counts rather than slices so snapshots stay small at
	// billion-probe budgets. NewHistogramFromCounts folds them into the
	// same histograms NewHistogram builds over the equivalent slices.
	msgCounts   map[int]int
	roundCounts map[int]int

	// nextGen is the generation NextGeneration derives next: 0 before the
	// seeding generation has been issued, g+1 after generation g.
	nextGen int
}

// Generation is one derived batch of probes. For the seeding generation
// (Seed true) probe i is the seed strategy's i-th plan; otherwise probe i
// executes Candidates[i]. Count is the batch size.
type Generation struct {
	Gen        int         `json:"gen"`
	Seed       bool        `json:"seed,omitempty"`
	Count      int         `json:"count"`
	Candidates []Candidate `json:"candidates,omitempty"`
}

// NewSession validates the fuzzer and opens a session positioned before
// the seeding generation. It installs a fresh corpus on the fuzzer when
// none was supplied, resolves telemetry from f.Ctx, and emits the
// fuzz-start event.
func (f *Fuzzer) NewSession() (*Session, error) {
	if err := f.validate(); err != nil {
		return nil, err
	}
	s := f.newSession()
	if s.fo.sink != nil {
		s.fo.sink.Emit("fuzz-start",
			"protocol", f.Protocol, "seed_strategy", f.Seed.Name,
			"n", f.N, "t", f.T, "budget", f.Budget, "workers", s.report.Workers)
	}
	return s, nil
}

func (f *Fuzzer) newSession() *Session {
	horizon := f.horizon()
	if f.Corpus == nil {
		f.Corpus = NewCorpus(f.Protocol, f.N, f.T)
	}
	s := &Session{
		f:      f,
		env:    adversary.Env{N: f.N, T: f.T, Rounds: f.Rounds, Horizon: horizon, Factory: f.Factory},
		fo:     fuzzObsFrom(f.Ctx),
		corpus: f.Corpus,
		seen:   make(map[uint64]bool, f.Corpus.Size()),
		m:      mutator{n: f.N, t: f.T, horizon: horizon},
		report: &Report{
			Protocol:     f.Protocol,
			SeedStrategy: f.Seed.Name,
			N:            f.N,
			T:            f.T,
			Rounds:       f.Rounds,
			Horizon:      horizon,
			Budget:       f.Budget,
			CorpusLoaded: f.Corpus.Size(),
			Workers:      runner.Workers(f.Parallelism),
		},
		msgCounts:   make(map[int]int),
		roundCounts: make(map[int]int),
	}
	for _, e := range s.corpus.Entries {
		s.seen[e.Cov] = true
	}
	return s
}

// NextGeneration derives the next batch, or returns nil when the session
// is done: budget exhausted, corpus empty (nothing to mutate), or
// StopOnViolation tripped. The first call issues the seeding generation
// when the corpus started empty; every later call derives GenSize
// candidates sequentially from the corpus as folded so far — exactly the
// derivation order of a single-process run.
func (s *Session) NextGeneration() *Generation {
	if s.nextGen == 0 {
		s.nextGen = 1
		if s.corpus.Size() == 0 {
			return &Generation{Gen: 0, Seed: true, Count: min(s.f.seedCount(), s.f.Budget)}
		}
	}
	if s.report.Probes >= s.f.Budget || s.corpus.Size() == 0 {
		return nil
	}
	if s.f.StopOnViolation && s.report.ViolationCount > 0 {
		return nil
	}
	g := &Generation{Gen: s.nextGen, Count: min(s.f.genSize(), s.f.Budget-s.report.Probes)}
	g.Candidates = make([]Candidate, g.Count)
	for i := range g.Candidates {
		g.Candidates[i] = s.m.mutate(stream(s.f.FuzzSeed, fmt.Sprintf("g%d|s%d", g.Gen, i)), s.corpus)
	}
	s.nextGen++
	return g
}

// Probe executes probe i of generation g locally. Distributed schedulers
// bypass this and run the equivalent Prober calls on workers.
func (s *Session) Probe(g *Generation, i int) (Outcome, error) {
	if g.Seed {
		return s.f.seedProbe(i, s.env, s.fo)
	}
	return s.f.mutantProbe(&g.Candidates[i], s.env, s.fo)
}

// Fold integrates one generation's outcomes into the corpus and report in
// slot order — the sequential step that keeps everything
// scheduling-independent. results must hold exactly g.Count outcomes in
// probe-index order.
func (s *Session) Fold(g *Generation, results []Outcome) {
	report, corpus := s.report, s.corpus
	covBefore, violBefore := report.NewCoverage, report.ViolationCount
	for i, out := range results {
		probe := report.Probes + i + 1
		s.msgCounts[out.Messages]++
		s.roundCounts[out.Rounds]++
		if !s.seen[out.Cov] && out.Cand != nil {
			s.seen[out.Cov] = true
			report.NewCoverage++
			corpus.add(Entry{
				Gen:       g.Gen,
				Parent:    out.Cand.Parent,
				Op:        out.Cand.Op,
				Cov:       out.Cov,
				Violating: out.V != nil,
				Plan:      out.Cand.Plan,
				Proposals: out.Cand.Proposals,
			})
		}
		if out.V == nil {
			continue
		}
		if report.FirstViolationProbe == 0 {
			report.FirstViolationProbe = probe
		}
		report.ViolationCount++
		if s.f.MaxViolations > 0 && len(report.Violations) >= s.f.MaxViolations {
			continue
		}
		out.V.Seed = int64(probe)
		report.Violations = append(report.Violations, out.V)
	}
	report.Probes += len(results)
	report.Generations++
	s.fo.generations.Inc()
	s.fo.newCoverage.Add(int64(report.NewCoverage - covBefore))
	s.fo.violations.Add(int64(report.ViolationCount - violBefore))
	s.fo.corpusSize.Set(int64(corpus.Size()))
	if s.fo.sink != nil {
		// The coverage-growth curve: one point per folded generation.
		s.fo.sink.Emit("generation",
			"gen", g.Gen, "probes", report.Probes,
			"new_coverage", report.NewCoverage-covBefore,
			"violations", report.ViolationCount-violBefore,
			"corpus_size", corpus.Size())
	}
}

// Finish seals the report: histograms, final corpus size, shrinking of
// recorded violations, and the fuzz-end event. The returned report's
// timing fields are zero — schedulers own wall-clock measurement.
func (s *Session) Finish() (*Report, error) {
	report := s.report
	report.CorpusSize = s.corpus.Size()
	report.Messages = adversary.NewHistogramFromCounts(s.msgCounts)
	report.RoundsHist = adversary.NewHistogramFromCounts(s.roundCounts)

	if s.f.Shrink {
		opts := s.f.ShrinkOptions()
		opts.Obs = obs.From(s.f.Ctx)
		for _, v := range report.Violations {
			if v.Plan == nil {
				continue // not replayable (foreign seed machines): report unshrunk
			}
			sh, err := adversary.Shrink(v, opts)
			if err != nil {
				return nil, fmt.Errorf("fuzz %s probe %d: shrink: %w", s.f.Protocol, v.Seed, err)
			}
			v.Shrunk = sh
		}
	}
	if s.fo.sink != nil {
		s.fo.sink.Emit("fuzz-end",
			"protocol", s.f.Protocol, "probes", report.Probes,
			"generations", report.Generations, "violations", report.ViolationCount,
			"first_violation_probe", report.FirstViolationProbe,
			"corpus_size", report.CorpusSize, "new_coverage", report.NewCoverage)
	}
	return report, nil
}

// SessionState is a session snapshot: everything needed to resume folding
// where a previous session stopped. It marshals deterministically
// (encoding/json sorts the count-map keys).
type SessionState struct {
	Report      *Report     `json:"report"`
	MsgCounts   map[int]int `json:"msg_counts,omitempty"`
	RoundCounts map[int]int `json:"round_counts,omitempty"`
	NextGen     int         `json:"next_gen"`
	Corpus      *Corpus     `json:"corpus"`
}

// State snapshots the session between generations. The snapshot shares
// structure with the live session — marshal it before the next Fold.
func (s *Session) State() *SessionState {
	return &SessionState{
		Report:      s.report,
		MsgCounts:   s.msgCounts,
		RoundCounts: s.roundCounts,
		NextGen:     s.nextGen,
		Corpus:      s.corpus,
	}
}

// ResumeSession reopens a session from a snapshot taken by State. The
// fuzzer must be configured identically to the original run (same
// protocol, sizes, seeds, budget); its Corpus field is replaced by the
// snapshot's. Generations folded after resuming continue the original
// derivation sequence, so the finished report and corpus are
// byte-identical to a run that never stopped.
func (f *Fuzzer) ResumeSession(st *SessionState) (*Session, error) {
	if st == nil || st.Report == nil || st.Corpus == nil {
		return nil, fmt.Errorf("fuzz: resume: incomplete session state")
	}
	f.Corpus = st.Corpus
	if err := f.validate(); err != nil {
		return nil, err
	}
	s := f.newSession()
	s.report = st.Report
	s.report.Workers = runner.Workers(f.Parallelism)
	if st.MsgCounts != nil {
		s.msgCounts = st.MsgCounts
	}
	if st.RoundCounts != nil {
		s.roundCounts = st.RoundCounts
	}
	s.nextGen = st.NextGen
	return s, nil
}
