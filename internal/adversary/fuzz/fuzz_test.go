package fuzz

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"slices"
	"sync"
	"testing"

	"expensive/internal/adversary"
	"expensive/internal/msg"
	"expensive/internal/proc"
	"expensive/internal/protocols/floodset"
	"expensive/internal/sim"
)

// floodsetFuzzer is the canonical hunt target: FloodSet at t = n-1,
// seeded with the blind random-send-omission strategy the fuzzer is
// benchmarked against. The split it must find is the E10 withholding
// attack, which blind random sweeps essentially never produce at n >= 4.
func floodsetFuzzer(n, t, budget, parallelism int) *Fuzzer {
	return &Fuzzer{
		Protocol: "floodset",
		Factory:  floodset.New(floodset.Config{N: n, T: t}),
		Rounds:   floodset.RoundBound(t),
		N:        n,
		T:        t,
		Seed:     adversary.RandomSendOmission(40),
		Budget:   budget,
		Validity: adversary.WeakValidity,
		New: func(n2, t2 int) (sim.Factory, int, error) {
			return floodset.New(floodset.Config{N: n2, T: t2}), floodset.RoundBound(t2), nil
		},
		Parallelism: parallelism,
	}
}

// TestFuzzerFindsAndShrinksFloodSetSplit is the subsystem's acceptance
// path: coverage-guided mutation reaches the FloodSet agreement split at
// t = n-1 within budget, the violation shrinks to a minimal plan, and the
// certificate survives independent re-checking — while the blind sweep of
// the same seed strategy over the same budget finds nothing (pinned by
// the bench comparison in scripts/bench.sh).
func TestFuzzerFindsAndShrinksFloodSetSplit(t *testing.T) {
	f := floodsetFuzzer(4, 3, 2048, 0)
	f.Shrink = true
	f.StopOnViolation = true
	f.MaxViolations = 3
	rep, err := f.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Broken() {
		t.Fatalf("no violation within %d probes (corpus %d)", rep.Probes, rep.CorpusSize)
	}
	if rep.FirstViolationProbe <= 0 || rep.FirstViolationProbe > rep.Probes {
		t.Fatalf("first violation probe %d outside 1..%d", rep.FirstViolationProbe, rep.Probes)
	}
	v := rep.Violations[0]
	if v.Kind != "agreement" {
		t.Fatalf("expected an agreement split, got %v", v)
	}
	if v.Plan == nil {
		t.Fatal("violation carries no replayable plan")
	}
	if v.Shrunk == nil {
		t.Fatal("violation was not shrunk")
	}
	// The shrinker is 1-minimal, not globally minimal: a fuzz-found split
	// may genuinely need two cooperating withholders. It must never grow.
	if v.Shrunk.FaultyAfter > v.Shrunk.FaultyBefore || v.Shrunk.OmitAfter > v.Shrunk.OmitBefore {
		t.Errorf("shrink grew the plan: %v", v.Shrunk)
	}
	if err := adversary.Recheck(v, f.ShrinkOptions()); err != nil {
		t.Fatalf("certificate failed independent recheck: %v", err)
	}
}

// TestFuzzerParallelDeterminism is the repo-wide invariant applied to the
// fuzzer: the JSON encodings of both the report and the grown corpus are
// byte-identical at parallelism 1 and 8 — generation batching makes
// corpus growth a pure function of the fuzzer's inputs.
func TestFuzzerParallelDeterminism(t *testing.T) {
	encode := func(parallelism int) (report, corpus []byte) {
		f := floodsetFuzzer(4, 3, 768, parallelism)
		f.Corpus = NewCorpus("floodset", 4, 3)
		rep, err := f.Run()
		if err != nil {
			t.Fatal(err)
		}
		report, err = json.MarshalIndent(rep, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		corpus, err = json.MarshalIndent(f.Corpus, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		return report, corpus
	}
	serialRep, serialCorpus := encode(1)
	parallelRep, parallelCorpus := encode(8)
	if !bytes.Equal(serialRep, parallelRep) {
		t.Errorf("fuzz reports differ between parallelism levels:\nserial:\n%s\nparallel:\n%s", serialRep, parallelRep)
	}
	if !bytes.Equal(serialCorpus, parallelCorpus) {
		t.Error("fuzz corpora differ between parallelism levels")
	}
}

// TestFuzzerCorpusRoundTripAndResume pins the persistence path: a saved
// corpus reloads byte-identically, resumes a fuzzer without a seed
// strategy, and refuses targets it was not grown against.
func TestFuzzerCorpusRoundTripAndResume(t *testing.T) {
	f := floodsetFuzzer(4, 3, 128, 1)
	f.Corpus = NewCorpus("floodset", 4, 3)
	if _, err := f.Run(); err != nil {
		t.Fatal(err)
	}
	if f.Corpus.Size() == 0 {
		t.Fatal("run grew no corpus")
	}

	path := filepath.Join(t.TempDir(), "corpus.json")
	if err := f.Corpus.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCorpus(path)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(f.Corpus)
	got, _ := json.Marshal(loaded)
	if !bytes.Equal(want, got) {
		t.Fatal("corpus did not round-trip through Save/Load")
	}

	// Resume: no seed strategy, population from the loaded corpus.
	resumed := floodsetFuzzer(4, 3, 64, 1)
	resumed.Seed = adversary.Strategy{}
	resumed.Corpus = loaded
	rep, err := resumed.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.CorpusLoaded != loaded.Size()-rep.NewCoverage {
		t.Errorf("CorpusLoaded = %d, want %d (final %d - new %d)",
			rep.CorpusLoaded, loaded.Size()-rep.NewCoverage, loaded.Size(), rep.NewCoverage)
	}
	if rep.Probes != 64 {
		t.Errorf("resumed run executed %d probes, want 64", rep.Probes)
	}
	if rep.Generations == 0 {
		t.Error("resumed run processed no generations")
	}

	// A corpus grown against a different target is refused.
	foreign := floodsetFuzzer(5, 4, 64, 1)
	foreign.Corpus = loaded
	if _, err := foreign.Run(); err == nil {
		t.Error("expected a target-mismatch error for a foreign corpus")
	}
}

// TestFuzzerValidation rejects malformed fuzzers.
func TestFuzzerValidation(t *testing.T) {
	cases := []func(f *Fuzzer){
		func(f *Fuzzer) { f.Factory = nil },
		func(f *Fuzzer) { f.Rounds = 0 },
		func(f *Fuzzer) { f.T = 0 },
		func(f *Fuzzer) { f.Budget = 0 },
		func(f *Fuzzer) { f.Seed = adversary.Strategy{} }, // no strategy, no corpus
	}
	for i, breakIt := range cases {
		f := floodsetFuzzer(4, 3, 64, 1)
		breakIt(f)
		if _, err := f.Run(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

// TestCoverageTierIndependence pins the coverage hash across recording
// tiers: the lean probe and the full replay of one configuration must
// hash identically, or violating corpus entries would drift from their
// evidence replays.
func TestCoverageTierIndependence(t *testing.T) {
	n, tf := 5, 2
	factory := floodset.New(floodset.Config{N: n, T: tf})
	plan := adversary.ExplicitPlan{
		Faulty: []proc.ID{0, 2},
		SendOmit: []msg.Key{
			{Sender: 0, Receiver: 1, Round: 1},
			{Sender: 0, Receiver: 3, Round: 2},
			{Sender: 2, Receiver: 4, Round: 1},
		},
		ReceiveOmit: []msg.Key{{Sender: 1, Receiver: 2, Round: 2}},
	}
	proposals := []msg.Value{msg.Zero, msg.One, msg.One, msg.Zero, msg.One}
	env := adversary.Env{N: n, T: tf, Rounds: floodset.RoundBound(tf), Horizon: 5, Factory: factory}
	run := func(rec sim.Recording) uint64 {
		cfg := sim.Config{N: n, T: tf, Proposals: proposals, MaxRounds: 5, Recording: rec}
		e, err := sim.Run(cfg, factory, plan.Plan(env))
		if err != nil {
			t.Fatal(err)
		}
		return coverage(e)
	}
	if lean, full := run(sim.RecordDecisions), run(sim.RecordFull); lean != full {
		t.Fatalf("coverage hash differs between tiers: lean %x, full %x", lean, full)
	}
}

// TestMutatorInvariants hammers the operator table and checks that every
// candidate keeps the plan invariants the engine enforces — corrupted set
// within budget, omissions hanging off corrupted endpoints, canonical
// element order — and that the engine accepts the plan without a harness
// error.
func TestMutatorInvariants(t *testing.T) {
	n, tf, horizon := 5, 3, 6
	m := mutator{n: n, t: tf, horizon: horizon}
	corpus := NewCorpus("floodset", n, tf)
	corpus.add(Entry{
		Parent: -1,
		Op:     "seed",
		Plan: adversary.ExplicitPlan{
			Faulty:   []proc.ID{1},
			SendOmit: []msg.Key{{Sender: 1, Receiver: 0, Round: 1}},
		},
		Proposals: []msg.Value{msg.Zero, msg.One, msg.One, msg.Zero, msg.One},
	})
	factory := floodset.New(floodset.Config{N: n, T: tf})
	env := adversary.Env{N: n, T: tf, Rounds: floodset.RoundBound(tf), Horizon: horizon, Factory: factory}

	for i := 0; i < 600; i++ {
		c := m.mutate(stream(42, string(rune(i))), corpus)
		p := &c.Plan
		if len(p.Faulty) > tf {
			t.Fatalf("op %s: %d faulty > t=%d", c.Op, len(p.Faulty), tf)
		}
		if !slices.IsSorted(p.Faulty) {
			t.Fatalf("op %s: faulty set not sorted: %v", c.Op, p.Faulty)
		}
		fset := proc.NewSet(p.Faulty...)
		for _, k := range p.SendOmit {
			if !fset.Contains(k.Sender) || k.Round < 1 || k.Round > horizon {
				t.Fatalf("op %s: invalid send-omit %v (faulty %v)", c.Op, k, p.Faulty)
			}
		}
		for _, k := range p.ReceiveOmit {
			if !fset.Contains(k.Receiver) || k.Round < 1 || k.Round > horizon {
				t.Fatalf("op %s: invalid receive-omit %v (faulty %v)", c.Op, k, p.Faulty)
			}
		}
		for _, e := range p.Byzantine {
			if !fset.Contains(e.ID) {
				t.Fatalf("op %s: byzantine entry for correct %s", c.Op, e.ID)
			}
		}
		if len(c.Proposals) != n {
			t.Fatalf("op %s: %d proposals, want %d", c.Op, len(c.Proposals), n)
		}
		// Every tenth candidate is actually executed: normalize must make
		// plans the engine never rejects.
		if i%10 == 0 {
			cfg := sim.Config{N: n, T: tf, Proposals: c.Proposals, MaxRounds: horizon, Recording: sim.RecordDecisions}
			if _, err := sim.Run(cfg, factory, c.Plan.Plan(env)); err != nil {
				t.Fatalf("op %s: engine rejected normalized plan: %v", c.Op, err)
			}
		}
		// Feed some candidates back so later mutations see mixed lineage.
		if i%7 == 0 {
			corpus.add(Entry{Parent: c.Parent, Op: c.Op, Plan: c.Plan, Proposals: c.Proposals})
		}
	}
}

// TestFuzzerCorpusConcurrencyRace drives several parallel fuzzers at once
// — shared engine scratch pool, per-fuzzer corpora, full worker fan-out —
// so `go test -race` patrols the corpus handling and the generation
// barrier for data races (the CI bench job runs exactly this test under
// -race).
func TestFuzzerCorpusConcurrencyRace(t *testing.T) {
	var wg sync.WaitGroup
	reports := make([]*Report, 4)
	errs := make([]error, 4)
	for i := range reports {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f := floodsetFuzzer(4, 3, 256, 4)
			f.Corpus = NewCorpus("floodset", 4, 3)
			reports[i], errs[i] = f.Run()
		}(i)
	}
	wg.Wait()
	want, _ := json.Marshal(reports[0])
	for i := 1; i < len(reports); i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		got, _ := json.Marshal(reports[i])
		if !bytes.Equal(want, got) {
			t.Errorf("concurrent fuzzer %d diverged from fuzzer 0", i)
		}
	}
}
