package fuzz

import (
	"math/rand"
	"slices"

	"expensive/internal/adversary"
	"expensive/internal/msg"
	"expensive/internal/proc"
)

// Candidate is one derived probe awaiting execution: a normalized explicit
// plan, its proposal vector, and its provenance for the corpus record. It
// is JSON-serializable because the distributed coordinator derives
// candidates centrally and ships them to workers over the wire.
type Candidate struct {
	Plan      adversary.ExplicitPlan `json:"plan"`
	Proposals []msg.Value            `json:"proposals"`
	// Parent is the corpus entry ID the candidate was mutated from (-1 for
	// generation-0 seed extractions); Op names the operator that derived it.
	Parent int    `json:"parent"`
	Op     string `json:"op"`
}

// stream returns the deterministic random stream of (seed, salt), derived
// through the strategy library's own seed mixer (adversary.SubSeed) so
// every (generation, slot) pair owns an independent stream and seed
// derivation stays interoperable with campaigns.
func stream(seed int64, salt string) *rand.Rand {
	return rand.New(rand.NewSource(adversary.SubSeed(seed, salt)))
}

// mutator derives candidates from corpus parents. All choices come from
// the candidate's private rand stream, so derivation is a pure function of
// (master seed, generation, slot, corpus-at-generation-start) — the
// determinism the byte-identical-corpus guarantee rests on.
type mutator struct {
	n, t, horizon int
}

// opNames indexes the operator table. The omission-growing operators are
// over-weighted: building up consistent withholding patterns is the
// productive direction for reaching splitting attacks, and a lone
// add-omission only ever takes one step at a time.
var opNames = []string{
	"add-omission",
	"add-omission",
	"add-streak",
	"add-streak",
	"drop-omission",
	"retarget-omission",
	"shift-round",
	"promote-byzantine",
	"drop-process",
	"crossover",
	"reseed-proposals",
}

// frontier is the tail of the corpus parent selection favors: half the
// candidates mutate one of the newest frontier entries, the other half an
// entry chosen uniformly. New coverage means unexplored neighborhood, so
// concentrating there keeps the search moving even as the corpus grows
// into the thousands.
const frontier = 64

// pickParent selects a corpus entry, biased towards the discovery
// frontier.
func pickParent(r *rand.Rand, corpus *Corpus) *Entry {
	n := len(corpus.Entries)
	if n > frontier && r.Intn(2) == 0 {
		return corpus.Entries[n-frontier+r.Intn(frontier)]
	}
	return corpus.Entries[r.Intn(n)]
}

// mutate derives one candidate: pick a parent, apply one operator,
// normalize. The corpus must be non-empty.
func (m mutator) mutate(r *rand.Rand, corpus *Corpus) Candidate {
	parent := pickParent(r, corpus)
	c := Candidate{
		Plan:      clonePlan(parent.Plan),
		Proposals: append([]msg.Value(nil), parent.Proposals...),
		Parent:    parent.ID,
	}
	c.Op = opNames[r.Intn(len(opNames))]
	switch c.Op {
	case "add-omission":
		m.addOmission(r, &c.Plan)
	case "add-streak":
		m.addStreak(r, &c.Plan)
	case "drop-omission":
		if !m.dropOmission(r, &c.Plan) {
			c.Op = "add-omission" // nothing to drop: grow instead
			m.addOmission(r, &c.Plan)
		}
	case "retarget-omission":
		if !m.retargetOmission(r, &c.Plan) {
			c.Op = "add-omission"
			m.addOmission(r, &c.Plan)
		}
	case "shift-round":
		if !m.shiftRound(r, &c.Plan) {
			c.Op = "add-omission"
			m.addOmission(r, &c.Plan)
		}
	case "promote-byzantine":
		m.promoteByzantine(r, &c.Plan)
	case "drop-process":
		if !m.dropProcess(r, &c.Plan) {
			c.Op = "add-omission"
			m.addOmission(r, &c.Plan)
		}
	case "crossover":
		other := corpus.Entries[r.Intn(len(corpus.Entries))]
		m.crossover(r, &c.Plan, &other.Plan)
	case "reseed-proposals":
		c.Proposals = m.reseedProposals(r)
	}
	m.normalize(&c.Plan)
	return c
}

// clonePlan deep-copies a plan so mutations never alias corpus entries.
func clonePlan(p adversary.ExplicitPlan) adversary.ExplicitPlan {
	return adversary.ExplicitPlan{
		Faulty:      append([]proc.ID(nil), p.Faulty...),
		SendOmit:    append([]msg.Key(nil), p.SendOmit...),
		ReceiveOmit: append([]msg.Key(nil), p.ReceiveOmit...),
		Byzantine:   append([]adversary.ByzEntry(nil), p.Byzantine...),
	}
}

// faultyFor returns the faulty process an omission should hang off:
// usually an existing corrupted process, occasionally (budget permitting)
// a freshly corrupted one, so the corrupted set itself is searched too.
func (m mutator) faultyFor(r *rand.Rand, p *adversary.ExplicitPlan) proc.ID {
	if len(p.Faulty) == 0 || (len(p.Faulty) < m.t && r.Intn(4) == 0) {
		id := proc.ID(r.Intn(m.n))
		if !slices.Contains(p.Faulty, id) {
			p.Faulty = append(p.Faulty, id)
		}
		return id
	}
	return p.Faulty[r.Intn(len(p.Faulty))]
}

// peer picks a process other than id.
func (m mutator) peer(r *rand.Rand, id proc.ID) proc.ID {
	q := proc.ID(r.Intn(m.n - 1))
	if q >= id {
		q++
	}
	return q
}

// addOmission appends one omitted message identity committed by a faulty
// process (send- or receive-side, uniformly).
func (m mutator) addOmission(r *rand.Rand, p *adversary.ExplicitPlan) {
	id := m.faultyFor(r, p)
	round := 1 + r.Intn(m.horizon)
	if r.Intn(2) == 0 {
		p.SendOmit = append(p.SendOmit, msg.Key{Sender: id, Receiver: m.peer(r, id), Round: round})
	} else {
		p.ReceiveOmit = append(p.ReceiveOmit, msg.Key{Sender: m.peer(r, id), Receiver: id, Round: round})
	}
}

// addStreak send-omits one faulty sender's messages over a round interval
// — towards a single peer, or (one time in four) towards everyone. This is
// the crash/withholding shape: sustained suppression of one information
// flow, the pattern both the E10 attack and the paper's isolation
// construction are made of, which single-omission steps only reach one
// round at a time.
func (m mutator) addStreak(r *rand.Rand, p *adversary.ExplicitPlan) {
	id := m.faultyFor(r, p)
	from := 1 + r.Intn(m.horizon)
	to := from + r.Intn(m.horizon-from+1)
	if r.Intn(4) == 0 {
		for q := 0; q < m.n; q++ {
			if proc.ID(q) == id {
				continue
			}
			for round := from; round <= to; round++ {
				p.SendOmit = append(p.SendOmit, msg.Key{Sender: id, Receiver: proc.ID(q), Round: round})
			}
		}
		return
	}
	peer := m.peer(r, id)
	for round := from; round <= to; round++ {
		p.SendOmit = append(p.SendOmit, msg.Key{Sender: id, Receiver: peer, Round: round})
	}
}

// pickOmission selects one omission uniformly across both sides; false
// when the plan has none. send reports which slice index i refers to.
func pickOmission(r *rand.Rand, p *adversary.ExplicitPlan) (i int, send, ok bool) {
	total := len(p.SendOmit) + len(p.ReceiveOmit)
	if total == 0 {
		return 0, false, false
	}
	i = r.Intn(total)
	if i < len(p.SendOmit) {
		return i, true, true
	}
	return i - len(p.SendOmit), false, true
}

// dropOmission removes one omitted identity; false when there is none.
func (m mutator) dropOmission(r *rand.Rand, p *adversary.ExplicitPlan) bool {
	i, send, ok := pickOmission(r, p)
	if !ok {
		return false
	}
	if send {
		p.SendOmit = append(p.SendOmit[:i], p.SendOmit[i+1:]...)
	} else {
		p.ReceiveOmit = append(p.ReceiveOmit[:i], p.ReceiveOmit[i+1:]...)
	}
	return true
}

// retargetOmission re-aims one omission at a different peer, keeping its
// faulty endpoint and round.
func (m mutator) retargetOmission(r *rand.Rand, p *adversary.ExplicitPlan) bool {
	i, send, ok := pickOmission(r, p)
	if !ok {
		return false
	}
	if send {
		p.SendOmit[i].Receiver = m.peer(r, p.SendOmit[i].Sender)
	} else {
		p.ReceiveOmit[i].Sender = m.peer(r, p.ReceiveOmit[i].Receiver)
	}
	return true
}

// shiftRound moves one omission a round earlier or later (clamped to the
// horizon).
func (m mutator) shiftRound(r *rand.Rand, p *adversary.ExplicitPlan) bool {
	i, send, ok := pickOmission(r, p)
	if !ok {
		return false
	}
	delta := 1
	if r.Intn(2) == 0 {
		delta = -1
	}
	var k *msg.Key
	if send {
		k = &p.SendOmit[i]
	} else {
		k = &p.ReceiveOmit[i]
	}
	k.Round += delta
	if k.Round < 1 {
		k.Round = 1
	}
	if k.Round > m.horizon {
		k.Round = m.horizon
	}
	return true
}

// byzKinds are the replayable machine kinds a promotion can install.
var byzKinds = []string{adversary.KindChaos, adversary.KindEquivocate, adversary.KindTwoFaced}

// promoteByzantine upgrades one faulty process from omission-faulty
// (crash-shaped) to a fully Byzantine machine — or re-seeds its machine if
// it already has one.
func (m mutator) promoteByzantine(r *rand.Rand, p *adversary.ExplicitPlan) {
	id := m.faultyFor(r, p)
	spec := adversary.MachineSpec{Kind: byzKinds[r.Intn(len(byzKinds))], Seed: r.Int63()}
	for i := range p.Byzantine {
		if p.Byzantine[i].ID == id {
			p.Byzantine[i].Spec = spec
			return
		}
	}
	p.Byzantine = append(p.Byzantine, adversary.ByzEntry{ID: id, Spec: spec})
}

// dropProcess un-corrupts one faulty process, removing its machine and
// every omission it commits — the in-search counterpart of the shrinker's
// element removal.
func (m mutator) dropProcess(r *rand.Rand, p *adversary.ExplicitPlan) bool {
	if len(p.Faulty) == 0 {
		return false
	}
	id := p.Faulty[r.Intn(len(p.Faulty))]
	p.Faulty = slices.DeleteFunc(p.Faulty, func(f proc.ID) bool { return f == id })
	p.SendOmit = slices.DeleteFunc(p.SendOmit, func(k msg.Key) bool { return k.Sender == id })
	p.ReceiveOmit = slices.DeleteFunc(p.ReceiveOmit, func(k msg.Key) bool { return k.Receiver == id })
	p.Byzantine = slices.DeleteFunc(p.Byzantine, func(e adversary.ByzEntry) bool { return e.ID == id })
	return true
}

// crossover unions two parents: corrupted sets, omissions and machines are
// merged (first parent winning machine ties); normalize then trims the
// union back inside the fault budget.
func (m mutator) crossover(_ *rand.Rand, p, other *adversary.ExplicitPlan) {
	for _, f := range other.Faulty {
		if !slices.Contains(p.Faulty, f) {
			p.Faulty = append(p.Faulty, f)
		}
	}
	p.SendOmit = append(p.SendOmit, other.SendOmit...)
	p.ReceiveOmit = append(p.ReceiveOmit, other.ReceiveOmit...)
	for _, e := range other.Byzantine {
		if !slices.ContainsFunc(p.Byzantine, func(b adversary.ByzEntry) bool { return b.ID == e.ID }) {
			p.Byzantine = append(p.Byzantine, e)
		}
	}
}

// reseedProposals draws a fresh input configuration: uniform random bits,
// with one candidate in four using the lone-dissenter pattern splitting
// attacks need.
func (m mutator) reseedProposals(r *rand.Rand) []msg.Value {
	out := make([]msg.Value, m.n)
	if r.Intn(4) == 0 {
		lone := r.Intn(m.n)
		v := msg.Bit(r.Intn(2))
		for i := range out {
			if i == lone {
				out[i] = v
			} else {
				out[i] = msg.FlipBit(v)
			}
		}
		return out
	}
	for i := range out {
		out[i] = msg.Bit(r.Intn(2))
	}
	return out
}

// keyLess orders message identities (round, sender, receiver).
func keyLess(a, b msg.Key) int {
	if a.Round != b.Round {
		return a.Round - b.Round
	}
	if a.Sender != b.Sender {
		return int(a.Sender) - int(b.Sender)
	}
	return int(a.Receiver) - int(b.Receiver)
}

// normalize restores the plan invariants the engine enforces and the
// canonical element order the corpus encoding depends on: the corrupted
// set is sorted, deduplicated and truncated to the fault budget; every
// omission references in-range processes and rounds and hangs off a
// corrupted endpoint; omission lists are sorted and deduplicated; machine
// entries cover only corrupted processes, one per process, in ID order.
// Every mutation funnels through here, so candidates can never make
// sim.Run reject the plan.
func (m mutator) normalize(p *adversary.ExplicitPlan) {
	slices.Sort(p.Faulty)
	p.Faulty = slices.Compact(p.Faulty)
	p.Faulty = slices.DeleteFunc(p.Faulty, func(f proc.ID) bool { return f < 0 || int(f) >= m.n })
	if len(p.Faulty) > m.t {
		p.Faulty = p.Faulty[:m.t]
	}
	fset := proc.NewSet(p.Faulty...)

	keep := func(k msg.Key, faultySide proc.ID) bool {
		return k.Round >= 1 && k.Round <= m.horizon &&
			k.Sender >= 0 && int(k.Sender) < m.n &&
			k.Receiver >= 0 && int(k.Receiver) < m.n &&
			k.Sender != k.Receiver && fset.Contains(faultySide)
	}
	p.SendOmit = slices.DeleteFunc(p.SendOmit, func(k msg.Key) bool { return !keep(k, k.Sender) })
	slices.SortFunc(p.SendOmit, keyLess)
	p.SendOmit = slices.Compact(p.SendOmit)
	p.ReceiveOmit = slices.DeleteFunc(p.ReceiveOmit, func(k msg.Key) bool { return !keep(k, k.Receiver) })
	slices.SortFunc(p.ReceiveOmit, keyLess)
	p.ReceiveOmit = slices.Compact(p.ReceiveOmit)

	p.Byzantine = slices.DeleteFunc(p.Byzantine, func(e adversary.ByzEntry) bool { return !fset.Contains(e.ID) })
	slices.SortStableFunc(p.Byzantine, func(a, b adversary.ByzEntry) int { return int(a.ID) - int(b.ID) })
	p.Byzantine = slices.CompactFunc(p.Byzantine, func(a, b adversary.ByzEntry) bool { return a.ID == b.ID })
}
