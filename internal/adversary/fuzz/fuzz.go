// Package fuzz implements coverage-guided adaptive hunting over the
// adversary layer: instead of sweeping fresh seeds blindly (the campaign
// engine's strategy), it grows a corpus of explicit fault plans and
// mutates them — adding, dropping, retargeting and round-shifting
// omissions, promoting omission-faulty processes to Byzantine machines,
// crossing corpus parents over, re-seeding proposal vectors — steering the
// search with a coverage signal read off the engine's lean
// RecordDecisions tier: a novelty hash over per-round
// sent/omitted/received count vectors plus the decision pattern. Probes
// that exercise new engine behavior enter a persisted, replayable JSON
// corpus; probes that violate a property flow into the campaign
// subsystem's evidence pipeline — deterministic RecordFull replay,
// Appendix A.1.6 validation, machine conformance, plan extraction,
// shrinking, and independent recheck.
//
// Scheduling is generation-batched on the experiment runner pool: every
// generation's candidates are derived sequentially from the
// corpus-at-generation-start, probed in parallel, and folded back into
// the corpus sequentially in slot order. Corpus growth and the report
// therefore depend only on the fuzzer's inputs, never on scheduling —
// reports and corpora are byte-identical at every parallelism level, the
// repo-wide invariant.
package fuzz

import (
	"context"
	"fmt"
	"time"

	"expensive/internal/adversary"
	"expensive/internal/experiments/runner"
	"expensive/internal/msg"
	"expensive/internal/obs"
	"expensive/internal/omission"
	"expensive/internal/sim"
)

// fuzzObs bundles the fuzzer's telemetry handles, resolved once per Run
// from the recorder on f.Ctx. The zero value (telemetry off) leaves every
// handle nil, so each instrument call costs one pointer check. Nothing
// here feeds back into candidate derivation, probing, or folding — the
// report and corpus stay byte-identical with telemetry on or off.
type fuzzObs struct {
	probes      *obs.Counter   // fuzz_probes: candidates executed
	violations  *obs.Counter   // fuzz_violations: violating candidates
	generations *obs.Counter   // fuzz_generations: batches folded
	newCoverage *obs.Counter   // fuzz_new_coverage: novel coverage hashes
	corpusSize  *obs.Gauge     // fuzz_corpus_size: current population
	probeNS     *obs.Histogram // fuzz_probe_ns: per-candidate latency
	sink        *obs.Sink
}

func fuzzObsFrom(ctx context.Context) fuzzObs {
	rec := obs.From(ctx)
	if rec == nil {
		return fuzzObs{}
	}
	return fuzzObs{
		probes:      rec.Counter("fuzz_probes"),
		violations:  rec.Counter("fuzz_violations"),
		generations: rec.Counter("fuzz_generations"),
		newCoverage: rec.Counter("fuzz_new_coverage"),
		corpusSize:  rec.Gauge("fuzz_corpus_size"),
		probeNS:     rec.Histogram("fuzz_probe_ns"),
		sink:        rec.Sink(),
	}
}

// Fuzzer is one coverage-guided hunt: a target protocol, a seed strategy
// (or a resumed corpus) and a probe budget.
type Fuzzer struct {
	// Protocol names the target for reports and corpus compatibility.
	Protocol string
	// Factory builds the target's honest machines; Rounds is its
	// decision-round bound. Both are required.
	Factory sim.Factory
	Rounds  int
	N, T    int
	// Seed is the strategy whose plans populate generation 0. Required
	// unless a non-empty Corpus is supplied.
	Seed adversary.Strategy
	// Budget is the total number of candidate probes (required, positive).
	Budget int
	// SeedProbes sizes generation 0 (default 32); GenSize sizes every
	// mutation generation (default 64). Both are scheduling-independent.
	SeedProbes int
	GenSize    int
	// FuzzSeed is the master seed every deterministic choice derives from.
	FuzzSeed int64
	// Horizon overrides the probe execution length (default Rounds+2).
	Horizon int
	// Validity is the optional validity property checked after Termination
	// and Agreement; Agreement optionally replaces strict equal-decision
	// Agreement with a pairwise compatibility relation.
	Validity  adversary.ValidityFunc
	Agreement adversary.AgreementFunc
	// Shrink minimizes every recorded violation after the run.
	Shrink bool
	// New optionally rebuilds the protocol at a different system size,
	// enabling the shrinker to reduce n.
	New func(n, t int) (sim.Factory, int, error)
	// MaxViolations caps the violations recorded in the report (0 = all).
	MaxViolations int
	// StopOnViolation ends the run after the first generation that found a
	// violation (the whole generation still completes and is folded in, so
	// the report stays scheduling-independent).
	StopOnViolation bool
	// Corpus optionally resumes from a previous run's population (its
	// protocol/n/t must match). Run appends novel entries to it; when nil,
	// Run installs a fresh corpus here so the grown population is
	// available (and persistable) after the run.
	Corpus *Corpus
	// Parallelism is the probe worker count; <= 0 means NumCPU, 1 serial.
	Parallelism int
	// Ctx cancels the run; nil means context.Background().
	Ctx context.Context
}

// Report is the deterministic outcome of a fuzzing run: everything in the
// JSON encoding depends only on the fuzzer's inputs (including a resumed
// corpus), never on scheduling — reports are byte-identical at every
// parallelism level. Wall-clock statistics are carried alongside but
// excluded from the encoding.
type Report struct {
	Protocol     string `json:"protocol"`
	SeedStrategy string `json:"seed_strategy,omitempty"`
	N            int    `json:"n"`
	T            int    `json:"t"`
	Rounds       int    `json:"round_bound"`
	Horizon      int    `json:"horizon"`
	Budget       int    `json:"budget"`
	// Probes counts executed candidate probes; Generations counts the
	// processed batches (seeding included).
	Probes      int `json:"probes"`
	Generations int `json:"generations"`
	// CorpusLoaded is the resumed population size; CorpusSize the final
	// one; NewCoverage the entries this run added (novel coverage hashes).
	CorpusLoaded int `json:"corpus_loaded"`
	CorpusSize   int `json:"corpus_size"`
	NewCoverage  int `json:"new_coverage"`
	// ViolationCount counts every violating probe; Violations records up
	// to MaxViolations of them in probe order. A violation's Seed field
	// carries the 1-based global probe index that found it.
	ViolationCount int                    `json:"violation_count"`
	Violations     []*adversary.Violation `json:"violations,omitempty"`
	// FirstViolationProbe is the 1-based index of the first violating
	// probe, 0 when the run stayed clean — the probes-to-first-violation
	// metric the blind-sweep comparison reads.
	FirstViolationProbe int `json:"first_violation_probe"`
	// Messages and RoundsHist are exact-value histograms over the probes'
	// correct-message counts and recorded round counts.
	Messages   adversary.Histogram `json:"messages"`
	RoundsHist adversary.Histogram `json:"rounds"`

	// Timing statistics (excluded from the JSON encoding: they vary run to
	// run while the report above must not).
	Wall         time.Duration `json:"-"`
	WallMS       float64       `json:"-"`
	ProbesPerSec float64       `json:"-"`
	Workers      int           `json:"-"`
}

// Broken reports whether the run found at least one violation.
func (r *Report) Broken() bool { return r.ViolationCount > 0 }

func (f *Fuzzer) validate() error {
	switch {
	case f.Factory == nil:
		return fmt.Errorf("fuzz: nil factory")
	case f.Rounds <= 0:
		return fmt.Errorf("fuzz: round bound must be positive, got %d", f.Rounds)
	case f.N < 2 || f.T < 1 || f.T >= f.N:
		return fmt.Errorf("fuzz: need n >= 2 and 1 <= t < n, got n=%d t=%d", f.N, f.T)
	case f.Budget <= 0:
		return fmt.Errorf("fuzz: probe budget must be positive, got %d", f.Budget)
	case f.Seed.Build == nil && (f.Corpus == nil || f.Corpus.Size() == 0):
		return fmt.Errorf("fuzz: need a seed strategy or a non-empty corpus")
	}
	if f.Corpus != nil && f.Corpus.Size() > 0 &&
		(f.Corpus.Protocol != f.Protocol || f.Corpus.N != f.N || f.Corpus.T != f.T) {
		return fmt.Errorf("fuzz: corpus was grown against %s n=%d t=%d, fuzzing %s n=%d t=%d",
			f.Corpus.Protocol, f.Corpus.N, f.Corpus.T, f.Protocol, f.N, f.T)
	}
	return nil
}

func (f *Fuzzer) horizon() int {
	if f.Horizon > 0 {
		return f.Horizon
	}
	return f.Rounds + 2
}

func (f *Fuzzer) seedCount() int {
	if f.SeedProbes > 0 {
		return f.SeedProbes
	}
	return 32
}

func (f *Fuzzer) genSize() int {
	if f.GenSize > 0 {
		return f.GenSize
	}
	return 64
}

// ShrinkOptions returns the configuration for shrinking and independently
// re-checking violations this fuzzer found.
func (f *Fuzzer) ShrinkOptions() adversary.ShrinkOptions {
	return adversary.ShrinkOptions{
		Factory:   f.Factory,
		Rounds:    f.Rounds,
		N:         f.N,
		T:         f.T,
		Horizon:   f.horizon(),
		New:       f.New,
		Validity:  f.Validity,
		Agreement: f.Agreement,
	}
}

// Outcome is one probe's deterministic result. It is JSON-serializable
// because distributed workers execute probes remotely and ship outcomes
// back to the coordinator's fold.
type Outcome struct {
	Cov      uint64               `json:"cov"`
	Messages int                  `json:"messages"`
	Rounds   int                  `json:"rounds"`
	V        *adversary.Violation `json:"violation,omitempty"`
	// Cand carries the probe's replayable form: the candidate itself for
	// mutants, the extracted explicit plan for seed probes (nil when the
	// seed plan is not replayable — it is then reported but not grown
	// from).
	Cand *Candidate `json:"candidate,omitempty"`
}

// Run executes the hunt and returns the report. Errors indicate harness
// failures — an invalid fuzzer, an engine-invalid trace, a non-conformant
// honest machine, a full replay diverging from its lean probe — never mere
// protocol-property violations, which land in the report.
//
// Run is a thin scheduling loop over the Session API: derive a generation,
// probe it on the worker pool, fold it back in slot order. The distributed
// coordinator drives the identical Session with remote probes, which is
// why its reports and corpora are byte-identical to Run's.
func (f *Fuzzer) Run() (*Report, error) {
	sw := runner.StartWall()
	s, err := f.NewSession()
	if err != nil {
		return nil, err
	}
	workers := runner.Workers(f.Parallelism)
	for g := s.NextGeneration(); g != nil; g = s.NextGeneration() {
		results, err := runner.Map(f.Ctx, workers, g.Count, func(i int) (Outcome, error) {
			return s.Probe(g, i)
		})
		if err != nil {
			return nil, err
		}
		s.Fold(g, results)
	}
	report, err := s.Finish()
	if err != nil {
		return nil, err
	}
	report.Wall, report.WallMS, report.ProbesPerSec = sw.WallStats(report.Probes)
	return report, nil
}

// Prober resolves the fuzzer's probe environment once for a batch of
// externally scheduled probes — the distributed worker's path, where the
// coordinator owns the corpus and the session state and ships this side
// only (generation, index) pairs and derived candidates.
type Prober struct {
	f   *Fuzzer
	env adversary.Env
	fo  fuzzObs
}

// Prober returns a probe executor bound to this fuzzer's environment.
func (f *Fuzzer) Prober() *Prober {
	return &Prober{
		f:   f,
		env: adversary.Env{N: f.N, T: f.T, Rounds: f.Rounds, Horizon: f.horizon(), Factory: f.Factory},
		fo:  fuzzObsFrom(f.Ctx),
	}
}

// Seed executes generation-0 probe i (the strategy-seeded probes).
func (p *Prober) Seed(i int) (Outcome, error) { return p.f.seedProbe(i, p.env, p.fo) }

// Candidate executes one derived candidate at the lean tier with full
// replay of violations, exactly like a mutation-generation probe.
func (p *Prober) Candidate(c *Candidate) (Outcome, error) { return p.f.mutantProbe(c, p.env, p.fo) }

// seedProbe runs one generation-0 probe: the seed strategy's plan at
// RecordFull (the trace is needed to extract the replayable explicit plan
// the mutation generations grow from), held to the evidence-grade checks —
// Appendix A.1.6 validation and machine conformance — on every seed.
func (f *Fuzzer) seedProbe(i int, env adversary.Env, fo fuzzObs) (Outcome, error) {
	t := fo.probeNS.StartTimer()
	defer func() {
		t.Stop()
		fo.probes.Inc()
	}()
	seed := adversary.SubSeed(f.FuzzSeed, fmt.Sprintf("seed|%d", i))
	plan := f.Seed.Build(seed, env)
	proposals := f.seedProposals(seed, env)
	cfg := sim.Config{N: f.N, T: f.T, Proposals: proposals, MaxRounds: env.Horizon}
	e, err := sim.Run(cfg, f.Factory, plan)
	if err != nil {
		return Outcome{}, fmt.Errorf("seed probe %d: %w", i, err)
	}
	if err := omission.Validate(e); err != nil {
		return Outcome{}, fmt.Errorf("seed probe %d: invalid trace: %w", i, err)
	}
	if err := sim.Conforms(e, f.Factory, adversary.ByzantineSkip(plan, e.Faulty)); err != nil {
		return Outcome{}, fmt.Errorf("seed probe %d: conformance: %w", i, err)
	}
	out := Outcome{Cov: coverage(e), Messages: e.CorrectMessages(), Rounds: e.Rounds}
	v := adversary.CheckExecution(e, proposals, f.Validity, f.Agreement)
	ep, eerr := adversary.Extract(e, plan)
	if eerr == nil {
		out.Cand = &Candidate{Plan: *ep, Proposals: proposals, Parent: -1, Op: "seed"}
	}
	if v != nil {
		v.Proposals = proposals
		if eerr == nil {
			v.Plan = ep
		}
		out.V = v
	}
	return out, nil
}

// seedProposals resolves a seed probe's input configuration: the seed
// strategy's own generator when it has one, else the generic seeded
// pattern (random bits with an occasional lone dissenter).
func (f *Fuzzer) seedProposals(seed int64, env adversary.Env) []msg.Value {
	if f.Seed.Proposals != nil {
		if out := f.Seed.Proposals(seed, env); len(out) == env.N {
			return out
		}
	}
	m := mutator{n: f.N, t: f.T, horizon: env.Horizon}
	return m.reseedProposals(stream(seed, "proposals"))
}

// mutantProbe runs one mutated candidate at the lean RecordDecisions tier
// — enough for the coverage hash and the property verdict — and only a
// violating candidate pays for the full pipeline: a deterministic re-run
// at RecordFull, trace validation, conformance re-execution, and evidence
// extraction, exactly as campaign probes do.
func (f *Fuzzer) mutantProbe(c *Candidate, env adversary.Env, fo fuzzObs) (Outcome, error) {
	t := fo.probeNS.StartTimer()
	defer func() {
		t.Stop()
		fo.probes.Inc()
	}()
	fp := c.Plan.Plan(env)
	cfg := sim.Config{N: f.N, T: f.T, Proposals: c.Proposals, MaxRounds: env.Horizon, Recording: sim.RecordDecisions}
	e, err := sim.Run(cfg, f.Factory, fp)
	if err != nil {
		return Outcome{}, fmt.Errorf("mutant (%s of entry %d): %w", c.Op, c.Parent, err)
	}
	out := Outcome{Cov: coverage(e), Messages: e.CorrectMessages(), Rounds: e.Rounds, Cand: c}
	lean := adversary.CheckExecution(e, c.Proposals, f.Validity, f.Agreement)
	if lean == nil {
		return out, nil
	}

	// Violation: replay at RecordFull (fresh machines — they are stateful)
	// and run the full evidence pipeline. The engine is deterministic, so
	// any divergence from the lean verdict is an engine or
	// protocol-determinism bug, not a protocol violation.
	fp2 := c.Plan.Plan(env)
	cfg.Recording = sim.RecordFull
	e2, err := sim.Run(cfg, f.Factory, fp2)
	if err != nil {
		return Outcome{}, fmt.Errorf("mutant (%s of entry %d): full replay: %w", c.Op, c.Parent, err)
	}
	//balint:allow leantier guarded: the replay above runs at sim.RecordFull
	if err := omission.Validate(e2); err != nil {
		return Outcome{}, fmt.Errorf("mutant (%s of entry %d): invalid trace: %w", c.Op, c.Parent, err)
	}
	//balint:allow leantier guarded: the replay above runs at sim.RecordFull
	if err := sim.Conforms(e2, f.Factory, adversary.ByzantineSkip(fp2, e2.Faulty)); err != nil {
		return Outcome{}, fmt.Errorf("mutant (%s of entry %d): conformance: %w", c.Op, c.Parent, err)
	}
	full := adversary.CheckExecution(e2, c.Proposals, f.Validity, f.Agreement)
	if full == nil || full.Kind != lean.Kind || full.Witness1 != lean.Witness1 ||
		full.Witness2 != lean.Witness2 || full.D1 != lean.D1 || full.D2 != lean.D2 {
		return Outcome{}, fmt.Errorf("mutant (%s of entry %d): full replay does not reproduce the lean probe's %s violation — engine or protocol nondeterminism", c.Op, c.Parent, lean.Kind)
	}
	full.Proposals = c.Proposals
	if ep, err := adversary.Extract(e2, fp2); err == nil {
		full.Plan = ep
	}
	out.V = full
	return out, nil
}
