package adversary

import (
	"context"
	"fmt"
	"sort"
	"time"

	"expensive/internal/experiments/runner"
	"expensive/internal/msg"
	"expensive/internal/obs"
	"expensive/internal/omission"
	"expensive/internal/proc"
	"expensive/internal/sim"
	"expensive/internal/validity"
)

// campaignObs bundles the campaign's telemetry handles, resolved once per
// Run from the recorder on c.Ctx. The zero value (telemetry off) leaves
// every handle nil, so each instrument call in the probe loop costs one
// pointer check. Telemetry is strictly a side channel: nothing here feeds
// back into probes, verdicts, or the report, which stays byte-identical
// with telemetry on or off.
type campaignObs struct {
	probes     *obs.Counter   // campaign_probes: seeds executed
	violations *obs.Counter   // campaign_violations: violating seeds
	replays    *obs.Counter   // campaign_replays: lean→full replays
	messages   *obs.Counter   // campaign_messages: correct messages observed
	probeNS    *obs.Histogram // campaign_probe_ns: per-probe latency
	sink       *obs.Sink
}

func campaignObsFrom(ctx context.Context) campaignObs {
	rec := obs.From(ctx)
	if rec == nil {
		return campaignObs{}
	}
	return campaignObs{
		probes:     rec.Counter("campaign_probes"),
		violations: rec.Counter("campaign_violations"),
		replays:    rec.Counter("campaign_replays"),
		messages:   rec.Counter("campaign_messages"),
		probeNS:    rec.Histogram("campaign_probe_ns"),
		sink:       rec.Sink(),
	}
}

// SeedRange is the half-open seed interval [From, To) a campaign sweeps.
type SeedRange struct {
	From int64 `json:"from"`
	To   int64 `json:"to"`
}

// MaxSeeds is the largest seed-range width a campaign accepts. The cap
// exists for arithmetic safety, not policy: 2³¹ probes is days of compute,
// while a width anywhere near the int64 range used to wrap Count negative,
// slip past the Count()==0 validation, and panic runner.Map's make.
const MaxSeeds = 1 << 31

// Count returns the number of seeds in the range. The width is computed
// in uint64 so a huge To-From cannot wrap negative (From may be negative,
// making the width exceed MaxInt64); widths beyond MaxSeeds are clamped
// to MaxSeeds+1 — still over the cap, so Err reports them — rather than
// truncated into a plausible-looking small count.
func (r SeedRange) Count() int {
	if r.To <= r.From {
		return 0
	}
	if w := uint64(r.To) - uint64(r.From); w > MaxSeeds {
		return MaxSeeds + 1
	}
	return int(r.To - r.From)
}

// Err validates the range: non-empty and within MaxSeeds. Campaign
// validation and the CLI seed-range parser both go through it.
func (r SeedRange) Err() error {
	if r.Count() == 0 {
		return fmt.Errorf("empty seed range [%d, %d)", r.From, r.To)
	}
	if r.Count() > MaxSeeds {
		return fmt.Errorf("seed range [%d, %d) exceeds %d seeds", r.From, r.To, MaxSeeds)
	}
	return nil
}

// Split partitions the range into at most k contiguous ascending
// sub-ranges that cover it exactly, with widths differing by at most one
// (the leading sub-ranges absorb the remainder). Fewer than k sub-ranges
// come back when the range holds fewer than k seeds. An invalid range —
// empty, or wider than MaxSeeds (the clamp Err reports) — yields nil: a
// range that cannot be swept cannot be sharded either.
//
// The partition depends only on (r, k), never on who executes the parts,
// which is what lets the distributed coordinator shard a hunt into
// worker-count-independent units and still merge a byte-identical report.
func (r SeedRange) Split(k int) []SeedRange {
	if r.Err() != nil {
		return nil
	}
	n := int64(r.Count())
	if k <= 0 {
		k = 1
	}
	if int64(k) > n {
		k = int(n)
	}
	out := make([]SeedRange, 0, k)
	base, rem := n/int64(k), n%int64(k)
	from := r.From
	for i := 0; i < k; i++ {
		w := base
		if int64(i) < rem {
			w++
		}
		out = append(out, SeedRange{From: from, To: from + w})
		from += w
	}
	return out
}

// ValidityFunc checks the validity property of one probe outcome: the
// proposal vector, the correct set, and the correct processes' common
// decision. A non-nil error is a validity violation. Termination and
// Agreement are checked by the campaign itself before validity runs.
//
// The concrete checks live in package validity (next to the problem
// formalism they verdict) so that protocol packages can attach their
// validity property to catalog specs without importing this layer; the
// names below are kept as the campaign-facing vocabulary.
type ValidityFunc = validity.Check

// AgreementFunc optionally replaces the strict equal-decision Agreement
// check with a pairwise compatibility relation (validity.Compat) for
// protocols whose correct outputs legitimately differ, like graded
// broadcast. When set, the validity property is checked against every
// correct decision instead of the (then ill-defined) common one.
type AgreementFunc = validity.Compat

// StrongValidity is the strong consensus property: whenever the correct
// processes' proposals are unanimous — faulty or not — that value must be
// the decision (validity.StrongCheck).
func StrongValidity(proposals []msg.Value, correct proc.Set, decision msg.Value) error {
	return validity.StrongCheck(proposals, correct, decision)
}

// WeakValidity is the paper's Weak Validity: vacuous under any fault
// (validity.WeakCheck).
func WeakValidity(proposals []msg.Value, correct proc.Set, decision msg.Value) error {
	return validity.WeakCheck(proposals, correct, decision)
}

// SenderValidity returns the broadcast validity check: when the designated
// sender stays correct, the decision must be its proposal
// (validity.SenderCheck).
func SenderValidity(sender proc.ID) ValidityFunc { return validity.SenderCheck(sender) }

// Violation is a protocol failure found by a campaign probe, carrying
// everything needed to replay, shrink, and independently re-check it.
type Violation struct {
	Seed int64 `json:"seed"`
	// Kind is "termination", "agreement" or "validity".
	Kind string `json:"kind"`
	// Witness1/D1 and Witness2/D2 locate the violation: for "agreement",
	// two correct processes with different decisions; for "termination", a
	// correct undecided process (Witness2); for "validity", the correct
	// process whose common decision breaks the property (Witness2/D2).
	Witness1 proc.ID   `json:"witness1"`
	D1       msg.Value `json:"d1,omitempty"`
	Witness2 proc.ID   `json:"witness2"`
	D2       msg.Value `json:"d2,omitempty"`
	// Detail narrates the violation.
	Detail string `json:"detail"`
	// Proposals is the input configuration of the probe.
	Proposals []msg.Value `json:"proposals"`
	// Plan is the materialized fault plan exercised by the probe (nil only
	// when the strategy's machines are not replayable).
	Plan *ExplicitPlan `json:"plan,omitempty"`
	// Shrunk is the minimized counterexample, when shrinking ran. The
	// violating execution itself is deliberately not retained: the explicit
	// plan replays it exactly, and holding full traces for every violating
	// seed of a long hunt would dominate the report's footprint.
	Shrunk *ShrinkResult `json:"shrunk,omitempty"`
}

// String renders the violation for diagnostics.
func (v *Violation) String() string {
	return fmt.Sprintf("seed %d: %s violation: %s", v.Seed, v.Kind, v.Detail)
}

// violationIn checks Termination, Agreement, and the validity property on
// a recorded execution and returns the first violation found (scanning
// correct processes in ID order, so the verdict is deterministic).
//
// With a nil compat relation, Agreement is strict decision equality and
// validity is checked once against the common decision. With a compat
// relation, Agreement is the relation over all correct pairs and validity
// is checked against every correct decision.
func violationIn(e *sim.Execution, proposals []msg.Value, validity ValidityFunc, compat AgreementFunc) *Violation {
	correct := e.Correct()
	members := correct.Members()
	if compat == nil {
		// Strict path: Termination and Agreement interleave in member
		// order, so the first anomaly in ID order is the verdict (an
		// agreement split at a low ID is reported even when a higher ID is
		// also undecided — the historical, determinism-pinned precedence).
		var common msg.Value
		var first proc.ID = -1
		for _, id := range members {
			d, ok := e.Decision(id)
			if !ok {
				return &Violation{
					Kind:     "termination",
					Witness2: id,
					Detail:   fmt.Sprintf("correct %s undecided after %d rounds", id, e.Rounds),
				}
			}
			if first < 0 {
				common, first = d, id
			} else if d != common {
				return &Violation{
					Kind:     "agreement",
					Witness1: first,
					D1:       common,
					Witness2: id,
					D2:       d,
					Detail:   fmt.Sprintf("correct %s decided %q, correct %s decided %q", first, common, id, d),
				}
			}
		}
		if first < 0 {
			return nil // no correct processes to violate anything
		}
		if validity != nil {
			if err := validity(proposals, correct, common); err != nil {
				return &Violation{
					Kind:     "validity",
					Witness2: first,
					D2:       common,
					Detail:   err.Error(),
				}
			}
		}
		return nil
	}
	// Relational path: the pairwise relation needs every decision, so
	// Termination is established first.
	decisions := make([]msg.Value, len(members))
	for i, id := range members {
		d, ok := e.Decision(id)
		if !ok {
			return &Violation{
				Kind:     "termination",
				Witness2: id,
				Detail:   fmt.Sprintf("correct %s undecided after %d rounds", id, e.Rounds),
			}
		}
		decisions[i] = d
	}
	for i := range members {
		for j := i + 1; j < len(members); j++ {
			if err := compat(decisions[i], decisions[j]); err != nil {
				return &Violation{
					Kind:     "agreement",
					Witness1: members[i],
					D1:       decisions[i],
					Witness2: members[j],
					D2:       decisions[j],
					Detail: fmt.Sprintf("correct %s decided %q, correct %s decided %q: %v",
						members[i], decisions[i], members[j], decisions[j], err),
				}
			}
		}
	}
	if validity != nil {
		for i, id := range members {
			if err := validity(proposals, correct, decisions[i]); err != nil {
				return &Violation{
					Kind:     "validity",
					Witness2: id,
					D2:       decisions[i],
					Detail:   err.Error(),
				}
			}
		}
	}
	return nil
}

// CheckExecution returns the first Termination/Agreement/validity
// violation of a recorded execution, in the campaign's deterministic
// verdict order, or nil when every property holds. It works at both
// recording tiers and is the probe verdict shared by campaigns and the
// coverage-guided fuzzer (package fuzz).
func CheckExecution(e *sim.Execution, proposals []msg.Value, validity ValidityFunc, compat AgreementFunc) *Violation {
	return violationIn(e, proposals, validity, compat)
}

// ByzantineSkip returns the processes whose machines the plan replaced —
// the set sim.Conforms must skip, since no honest machine produced their
// behavior.
func ByzantineSkip(plan sim.FaultPlan, faulty proc.Set) proc.Set {
	return byzSkip(plan, faulty)
}

// byzSkip returns the processes whose machines the plan replaced — the
// set sim.Conforms must skip, since no honest machine produced their
// behavior.
func byzSkip(plan sim.FaultPlan, faulty proc.Set) proc.Set {
	skip := proc.Set{}
	for _, id := range faulty.Members() {
		if plan.Byzantine(id) != nil {
			skip = skip.Add(id)
		}
	}
	return skip
}

// Bucket is one exact-value histogram bucket.
type Bucket struct {
	Value int `json:"value"`
	Count int `json:"count"`
}

// Histogram is a deterministic exact-value histogram over the probes of a
// campaign (message counts, round counts).
type Histogram struct {
	Min     int      `json:"min"`
	Max     int      `json:"max"`
	Sum     int      `json:"sum"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// NewHistogram builds the deterministic exact-value histogram of values —
// the statistic campaign and fuzz reports carry for message and round
// counts.
func NewHistogram(values []int) Histogram { return histogramOf(values) }

func histogramOf(values []int) Histogram {
	if len(values) == 0 {
		return Histogram{}
	}
	counts := make(map[int]int)
	for _, v := range values {
		counts[v]++
	}
	return NewHistogramFromCounts(counts)
}

// NewHistogramFromCounts builds the histogram of a multiset given as a
// value → occurrence-count map: exactly what NewHistogram produces over
// the expanded value slice, without materializing it. This is the form a
// checkpointable fold carries (a counts map serializes; a growing value
// slice does not scale to billion-probe campaigns).
func NewHistogramFromCounts(counts map[int]int) Histogram {
	values := make([]int, 0, len(counts))
	for v := range counts {
		values = append(values, v)
	}
	sort.Ints(values)
	h := Histogram{}
	for _, v := range values {
		if counts[v] <= 0 {
			continue
		}
		h.Buckets = append(h.Buckets, Bucket{Value: v, Count: counts[v]})
	}
	if len(h.Buckets) == 0 {
		return Histogram{}
	}
	h.Min = h.Buckets[0].Value
	h.Max = h.Buckets[len(h.Buckets)-1].Value
	for _, b := range h.Buckets {
		h.Sum += b.Value * b.Count
	}
	return h
}

// Merge returns the histogram of the union multiset — the histogram
// NewHistogram would build over the two underlying value slices
// concatenated. Exact-value histograms merge commutatively and
// associatively, which is what lets the distributed coordinator fold
// per-unit sub-reports into the byte-identical single-process histogram.
func (h Histogram) Merge(o Histogram) Histogram {
	if len(h.Buckets) == 0 {
		return o
	}
	if len(o.Buckets) == 0 {
		return h
	}
	out := Histogram{
		Min: min(h.Min, o.Min),
		Max: max(h.Max, o.Max),
		Sum: h.Sum + o.Sum,
	}
	out.Buckets = make([]Bucket, 0, len(h.Buckets)+len(o.Buckets))
	i, j := 0, 0
	for i < len(h.Buckets) || j < len(o.Buckets) {
		switch {
		case j >= len(o.Buckets) || (i < len(h.Buckets) && h.Buckets[i].Value < o.Buckets[j].Value):
			out.Buckets = append(out.Buckets, h.Buckets[i])
			i++
		case i >= len(h.Buckets) || o.Buckets[j].Value < h.Buckets[i].Value:
			out.Buckets = append(out.Buckets, o.Buckets[j])
			j++
		default:
			out.Buckets = append(out.Buckets, Bucket{Value: h.Buckets[i].Value, Count: h.Buckets[i].Count + o.Buckets[j].Count})
			i, j = i+1, j+1
		}
	}
	return out
}

// Campaign is a seeded adversarial hunt: one strategy versus one protocol
// over a range of seeds, every probe fully checked.
type Campaign struct {
	// Protocol names the target for reports.
	Protocol string
	// Factory builds the target's honest machines; Rounds is its
	// decision-round bound. Both are required.
	Factory sim.Factory
	Rounds  int
	N, T    int
	// Strategy is the adversary (required).
	Strategy Strategy
	// Seeds is the half-open seed range to sweep (required, non-empty).
	Seeds SeedRange
	// Horizon overrides the probe execution length (default Rounds+2).
	Horizon int
	// Proposals overrides the per-seed proposal generator. Default: the
	// strategy's own generator if it has one, else seeded random bits with
	// an occasional lone-dissenter pattern.
	Proposals func(seed int64, env Env) []msg.Value
	// Validity is the optional validity property checked after Termination
	// and Agreement.
	Validity ValidityFunc
	// Agreement optionally replaces strict equal-decision Agreement with a
	// pairwise compatibility relation (graded broadcast).
	Agreement AgreementFunc
	// Shrink minimizes every recorded violation after the sweep.
	Shrink bool
	// New optionally rebuilds the protocol at a different system size,
	// enabling the shrinker to reduce n. Returning an error refuses a size.
	New func(n, t int) (sim.Factory, int, error)
	// MaxViolations caps the violations recorded in the report (0 = all).
	// Probes beyond the cap are still counted in ViolationCount.
	MaxViolations int
	// RecordFull forces full Appendix A.1.6 trace recording plus the
	// per-probe trace validation and conformance re-execution on every
	// seed (the pre-tiered behavior). By default the campaign probes at
	// sim.RecordDecisions — an allocation-free engine loop recording only
	// decisions and message counts — and deterministically re-runs just
	// the violating seeds at sim.RecordFull, where the full validation
	// pipeline runs before the evidence (ExplicitPlan, shrink input) is
	// extracted. Reports are byte-identical at both settings.
	RecordFull bool
	// Parallelism is the probe worker count; <= 0 means NumCPU, 1 serial.
	Parallelism int
	// Ctx cancels the sweep; nil means context.Background().
	Ctx context.Context
}

// CampaignReport is the deterministic outcome of a campaign: everything
// in the JSON encoding depends only on the campaign's inputs, never on
// scheduling — reports are byte-identical at every parallelism level.
// Wall-clock statistics are carried alongside but excluded from the
// encoding.
type CampaignReport struct {
	Protocol string    `json:"protocol"`
	Strategy string    `json:"strategy"`
	N        int       `json:"n"`
	T        int       `json:"t"`
	Rounds   int       `json:"round_bound"`
	Horizon  int       `json:"horizon"`
	Seeds    SeedRange `json:"seeds"`
	// Probes counts the executed probes (one per seed).
	Probes int `json:"probes"`
	// ViolationCount counts every violating seed; Violations records up to
	// MaxViolations of them in seed order.
	ViolationCount int          `json:"violation_count"`
	Violations     []*Violation `json:"violations,omitempty"`
	// FirstViolationProbe is the 1-based index of the first violating probe
	// (seed order), 0 when the sweep stayed clean — the probes-to-first-
	// violation metric the blind-sweep vs adaptive-fuzzing comparison reads.
	FirstViolationProbe int `json:"first_violation_probe"`
	// Messages and RoundsHist are exact-value histograms over the probes'
	// correct-message counts and recorded round counts.
	Messages   Histogram `json:"messages"`
	RoundsHist Histogram `json:"rounds"`

	// Timing statistics (excluded from the JSON encoding: they vary run to
	// run while the report above must not).
	Wall         time.Duration `json:"-"`
	WallMS       float64       `json:"-"`
	ProbesPerSec float64       `json:"-"`
	Workers      int           `json:"-"`
}

// Broken reports whether the campaign found at least one violation.
func (r *CampaignReport) Broken() bool { return r.ViolationCount > 0 }

func (c *Campaign) validate() error {
	switch {
	case c.Factory == nil:
		return fmt.Errorf("campaign: nil factory")
	case c.Strategy.Build == nil:
		return fmt.Errorf("campaign: strategy has no Build function")
	case c.Rounds <= 0:
		return fmt.Errorf("campaign: round bound must be positive, got %d", c.Rounds)
	case c.N < 2 || c.T < 1 || c.T >= c.N:
		return fmt.Errorf("campaign: need n >= 2 and 1 <= t < n, got n=%d t=%d", c.N, c.T)
	}
	if err := c.Seeds.Err(); err != nil {
		return fmt.Errorf("campaign: %w", err)
	}
	return nil
}

// env resolves the probe environment of the campaign.
func (c *Campaign) env() Env {
	horizon := c.Horizon
	if horizon <= 0 {
		horizon = c.Rounds + 2
	}
	return Env{N: c.N, T: c.T, Rounds: c.Rounds, Horizon: horizon, Factory: c.Factory}
}

// defaultProposals is the generic seeded input generator: uniform random
// bits, with one probe in four using the "lone dissenter" pattern (a
// single process proposing the minority value) — the shape most splitting
// attacks need.
func defaultProposals(seed int64, env Env) []msg.Value {
	r := rng(seed, "proposals")
	out := make([]msg.Value, env.N)
	if r.Intn(4) == 0 {
		lone := r.Intn(env.N)
		v := msg.Bit(r.Intn(2))
		for i := range out {
			if i == lone {
				out[i] = v
			} else {
				out[i] = msg.FlipBit(v)
			}
		}
		return out
	}
	for i := range out {
		out[i] = msg.Bit(r.Intn(2))
	}
	return out
}

func (c *Campaign) proposalsFor(seed int64, env Env) []msg.Value {
	var out []msg.Value
	switch {
	case c.Proposals != nil:
		out = c.Proposals(seed, env)
	case c.Strategy.Proposals != nil:
		out = c.Strategy.Proposals(seed, env)
	}
	if len(out) != env.N {
		return defaultProposals(seed, env)
	}
	return out
}

// probeResult is one seed's deterministic outcome.
type probeResult struct {
	messages int
	rounds   int
	v        *Violation
}

// Run sweeps the seed range on the worker pool and returns the report.
// Errors indicate harness failures — an invalid campaign, a strategy
// breaking the fault budget, an engine-invalid trace, or a
// non-conformant honest machine — never mere protocol-property
// violations, which land in the report.
func (c *Campaign) Run() (*CampaignReport, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	env := c.env()
	workers := runner.Workers(c.Parallelism)
	sw := runner.StartWall()
	co := campaignObsFrom(c.Ctx)
	if co.sink != nil {
		co.sink.Emit("campaign-start",
			"protocol", c.Protocol, "strategy", c.Strategy.Name,
			"n", c.N, "t", c.T, "seeds", c.Seeds.Count(), "workers", workers)
	}

	results, err := runner.Map(c.Ctx, workers, c.Seeds.Count(), func(i int) (probeResult, error) {
		return c.probe(c.Seeds.From+int64(i), env, co)
	})
	if err != nil {
		return nil, err
	}

	report := &CampaignReport{
		Protocol: c.Protocol,
		Strategy: c.Strategy.Name,
		N:        c.N,
		T:        c.T,
		Rounds:   c.Rounds,
		Horizon:  env.Horizon,
		Seeds:    c.Seeds,
		Probes:   len(results),
		Workers:  workers,
	}
	messages := make([]int, 0, len(results))
	rounds := make([]int, 0, len(results))
	for i, res := range results {
		messages = append(messages, res.messages)
		rounds = append(rounds, res.rounds)
		if res.v == nil {
			continue
		}
		if report.FirstViolationProbe == 0 {
			report.FirstViolationProbe = i + 1
		}
		report.ViolationCount++
		if c.MaxViolations > 0 && len(report.Violations) >= c.MaxViolations {
			continue
		}
		report.Violations = append(report.Violations, res.v)
	}
	report.Messages = histogramOf(messages)
	report.RoundsHist = histogramOf(rounds)

	if c.Shrink {
		opts := c.shrinkOptions(env)
		opts.Obs = obs.From(c.Ctx)
		for _, v := range report.Violations {
			if v.Plan == nil {
				continue // not replayable (foreign Byzantine machines): report unshrunk
			}
			sh, err := Shrink(v, opts)
			if err != nil {
				return nil, fmt.Errorf("campaign %s seed %d: shrink: %w", c.Protocol, v.Seed, err)
			}
			v.Shrunk = sh
		}
	}

	report.Wall, report.WallMS, report.ProbesPerSec = sw.WallStats(report.Probes)
	if co.sink != nil {
		co.sink.Emit("campaign-end",
			"protocol", c.Protocol, "strategy", c.Strategy.Name,
			"probes", report.Probes, "violations", report.ViolationCount,
			"first_violation_probe", report.FirstViolationProbe)
	}
	return report, nil
}

// RecheckOptions returns the configuration for independently re-checking
// (or further shrinking) violations this campaign found — the same
// factory, validity property, rebuild hook and resolved horizon the
// campaign itself used, without rebuilding anything.
func (c *Campaign) RecheckOptions() ShrinkOptions {
	return c.shrinkOptions(c.env())
}

// shrinkOptions derives the shrinker configuration from the campaign.
func (c *Campaign) shrinkOptions(env Env) ShrinkOptions {
	return ShrinkOptions{
		Factory:   c.Factory,
		Rounds:    c.Rounds,
		N:         c.N,
		T:         c.T,
		Horizon:   env.Horizon,
		New:       c.New,
		Validity:  c.Validity,
		Agreement: c.Agreement,
	}
}

// probe executes one seed. At the default lean tier it runs the engine at
// sim.RecordDecisions — enough to read decisions, rounds and message
// counts — and only a seed whose probe violates a property pays for the
// full pipeline: a deterministic re-run at sim.RecordFull, trace
// validation against the Appendix A.1.6 guarantees, conformance
// re-execution of every honest machine, and evidence extraction. With
// RecordFull set, every seed runs that pipeline (the pre-tiered behavior).
func (c *Campaign) probe(seed int64, env Env, co campaignObs) (probeResult, error) {
	t := co.probeNS.StartTimer()
	defer func() {
		t.Stop()
		co.probes.Inc()
	}()
	plan := c.Strategy.Build(seed, env)
	proposals := c.proposalsFor(seed, env)
	rec := sim.RecordDecisions
	if c.RecordFull {
		rec = sim.RecordFull
	}
	cfg := sim.Config{N: c.N, T: c.T, Proposals: proposals, MaxRounds: env.Horizon, Recording: rec}
	e, err := sim.Run(cfg, c.Factory, plan)
	if err != nil {
		return probeResult{}, fmt.Errorf("seed %d: %w", seed, err)
	}
	if c.RecordFull {
		// Every engine-produced trace must satisfy the execution model, and
		// every honest machine must conform to its recording — failures here
		// are engine or protocol-determinism bugs, not protocol violations.
		//balint:allow leantier guarded by c.RecordFull: this branch only sees full traces
		if err := omission.Validate(e); err != nil {
			return probeResult{}, fmt.Errorf("seed %d: invalid trace: %w", seed, err)
		}
		//balint:allow leantier guarded by c.RecordFull: this branch only sees full traces
		if err := sim.Conforms(e, c.Factory, byzSkip(plan, e.Faulty)); err != nil {
			return probeResult{}, fmt.Errorf("seed %d: conformance: %w", seed, err)
		}
	}

	res := probeResult{messages: e.CorrectMessages(), rounds: e.Rounds}
	co.messages.Add(int64(res.messages))
	v := violationIn(e, proposals, c.Validity, c.Agreement)
	if v == nil {
		return res, nil
	}
	co.violations.Inc()
	if co.sink != nil {
		co.sink.Emit("violation-found",
			"protocol", c.Protocol, "strategy", c.Strategy.Name,
			"seed", seed, "kind", v.Kind, "detail", v.Detail)
	}
	if !c.RecordFull {
		co.replays.Inc()
		e, plan, err = c.replayFull(seed, env, proposals, v)
		if err != nil {
			return probeResult{}, err
		}
	}
	v.Seed = seed
	v.Proposals = proposals
	// Materialize the exercised plan for replay and shrinking. Foreign
	// Byzantine machines are the only non-replayable case; the violation
	// is still reported, just without a plan.
	if ep, err := Extract(e, plan); err == nil {
		v.Plan = ep
	}
	res.v = v
	return res, nil
}

// replayFull re-runs a violating seed at sim.RecordFull: a fresh plan
// (Byzantine machines are stateful), the same proposals, the same horizon.
// The engine is deterministic, so the replay reproduces the lean probe's
// execution exactly — now with the message slices the validation pipeline
// and the evidence extraction need. The replayed trace is held to the same
// standard the pre-tiered campaign held every probe to, and the replayed
// violation must match the lean verdict; any divergence is an engine or
// protocol-determinism bug.
func (c *Campaign) replayFull(seed int64, env Env, proposals []msg.Value, lean *Violation) (*sim.Execution, sim.FaultPlan, error) {
	plan := c.Strategy.Build(seed, env)
	cfg := sim.Config{N: c.N, T: c.T, Proposals: proposals, MaxRounds: env.Horizon}
	e, err := sim.Run(cfg, c.Factory, plan)
	if err != nil {
		return nil, nil, fmt.Errorf("seed %d: full replay: %w", seed, err)
	}
	//balint:allow leantier replayFull records at the default RecordFull tier
	if err := omission.Validate(e); err != nil {
		return nil, nil, fmt.Errorf("seed %d: invalid trace: %w", seed, err)
	}
	//balint:allow leantier replayFull records at the default RecordFull tier
	if err := sim.Conforms(e, c.Factory, byzSkip(plan, e.Faulty)); err != nil {
		return nil, nil, fmt.Errorf("seed %d: conformance: %w", seed, err)
	}
	full := violationIn(e, proposals, c.Validity, c.Agreement)
	if full == nil || full.Kind != lean.Kind || full.Witness1 != lean.Witness1 ||
		full.Witness2 != lean.Witness2 || full.D1 != lean.D1 || full.D2 != lean.D2 {
		return nil, nil, fmt.Errorf("seed %d: full replay does not reproduce the lean probe's %s violation — engine or protocol nondeterminism", seed, lean.Kind)
	}
	return e, plan, nil
}
