package adversary

import (
	"fmt"
	"slices"

	"expensive/internal/msg"
	"expensive/internal/proc"
	"expensive/internal/sim"
)

// ExplicitPlan is a fully materialized, JSON-serializable fault plan: the
// corrupted set, the exact message identities omitted, and replayable
// machine specs for Byzantine processes. Unlike the predicate-based plans
// strategies build, an explicit plan is finite data — it can be printed,
// stored, compared, shrunk element by element, and replayed bit-for-bit.
type ExplicitPlan struct {
	Faulty      []proc.ID  `json:"faulty"`
	SendOmit    []msg.Key  `json:"send_omit,omitempty"`
	ReceiveOmit []msg.Key  `json:"receive_omit,omitempty"`
	Byzantine   []ByzEntry `json:"byzantine,omitempty"`
}

// FaultySet returns the corrupted set as a proc.Set.
func (p *ExplicitPlan) FaultySet() proc.Set { return proc.NewSet(p.Faulty...) }

// Omissions returns the total number of omitted message identities.
func (p *ExplicitPlan) Omissions() int { return len(p.SendOmit) + len(p.ReceiveOmit) }

// String summarizes the plan for diagnostics.
func (p *ExplicitPlan) String() string {
	return fmt.Sprintf("%d faulty, %d send-omits, %d receive-omits, %d byzantine",
		len(p.Faulty), len(p.SendOmit), len(p.ReceiveOmit), len(p.Byzantine))
}

// sortKeys orders message identities deterministically (round, sender,
// receiver), in place, and returns them.
func sortKeys(ks []msg.Key) []msg.Key {
	slices.SortFunc(ks, func(a, b msg.Key) int {
		if a.Round != b.Round {
			return a.Round - b.Round
		}
		if a.Sender != b.Sender {
			return int(a.Sender) - int(b.Sender)
		}
		return int(a.Receiver) - int(b.Receiver)
	})
	return ks
}

// clone deep-copies the plan so shrink candidates never alias.
func (p *ExplicitPlan) clone() ExplicitPlan {
	return ExplicitPlan{
		Faulty:      append([]proc.ID(nil), p.Faulty...),
		SendOmit:    append([]msg.Key(nil), p.SendOmit...),
		ReceiveOmit: append([]msg.Key(nil), p.ReceiveOmit...),
		Byzantine:   append([]ByzEntry(nil), p.Byzantine...),
	}
}

// withoutProc returns the plan with process id un-corrupted: its machine
// replacement and every omission it commits (as faulty sender of a
// send-omit or faulty receiver of a receive-omit) are removed with it.
func (p *ExplicitPlan) withoutProc(id proc.ID) ExplicitPlan {
	out := ExplicitPlan{}
	for _, f := range p.Faulty {
		if f != id {
			out.Faulty = append(out.Faulty, f)
		}
	}
	for _, k := range p.SendOmit {
		if k.Sender != id {
			out.SendOmit = append(out.SendOmit, k)
		}
	}
	for _, k := range p.ReceiveOmit {
		if k.Receiver != id {
			out.ReceiveOmit = append(out.ReceiveOmit, k)
		}
	}
	for _, e := range p.Byzantine {
		if e.ID != id {
			out.Byzantine = append(out.Byzantine, e)
		}
	}
	return out
}

// withoutSendOmit returns the plan minus one send-omitted identity.
func (p *ExplicitPlan) withoutSendOmit(i int) ExplicitPlan {
	out := p.clone()
	out.SendOmit = append(out.SendOmit[:i:i], out.SendOmit[i+1:]...)
	return out
}

// withoutReceiveOmit returns the plan minus one receive-omitted identity.
func (p *ExplicitPlan) withoutReceiveOmit(i int) ExplicitPlan {
	out := p.clone()
	out.ReceiveOmit = append(out.ReceiveOmit[:i:i], out.ReceiveOmit[i+1:]...)
	return out
}

// filterTo restricts the plan to the universe {0..n-1}, dropping every
// corruption and omission that references a removed process.
func (p *ExplicitPlan) filterTo(n int) ExplicitPlan {
	out := ExplicitPlan{}
	for _, f := range p.Faulty {
		if int(f) < n {
			out.Faulty = append(out.Faulty, f)
		}
	}
	for _, k := range p.SendOmit {
		if int(k.Sender) < n && int(k.Receiver) < n {
			out.SendOmit = append(out.SendOmit, k)
		}
	}
	for _, k := range p.ReceiveOmit {
		if int(k.Sender) < n && int(k.Receiver) < n {
			out.ReceiveOmit = append(out.ReceiveOmit, k)
		}
	}
	for _, e := range p.Byzantine {
		if int(e.ID) < n {
			out.Byzantine = append(out.Byzantine, e)
		}
	}
	return out
}

// Plan instantiates the explicit plan as a live sim.FaultPlan, building
// fresh Byzantine machines from the specs (machines are stateful; every
// run needs its own).
func (p *ExplicitPlan) Plan(env Env) sim.FaultPlan {
	fp := &explicitFaultPlan{
		faulty:   p.FaultySet(),
		send:     make(map[msg.Key]bool, len(p.SendOmit)),
		recv:     make(map[msg.Key]bool, len(p.ReceiveOmit)),
		machines: make(map[proc.ID]sim.Machine, len(p.Byzantine)),
		specs:    append([]ByzEntry(nil), p.Byzantine...),
	}
	for _, k := range p.SendOmit {
		fp.send[k] = true
	}
	for _, k := range p.ReceiveOmit {
		fp.recv[k] = true
	}
	for _, e := range p.Byzantine {
		fp.machines[e.ID] = e.Spec.build(env, e.ID)
	}
	return fp
}

// explicitFaultPlan is the live form of an ExplicitPlan.
type explicitFaultPlan struct {
	faulty   proc.Set
	send     map[msg.Key]bool
	recv     map[msg.Key]bool
	machines map[proc.ID]sim.Machine
	specs    []ByzEntry
}

var _ sim.FaultPlan = (*explicitFaultPlan)(nil)

// Faulty implements sim.FaultPlan.
func (p *explicitFaultPlan) Faulty() proc.Set { return p.faulty }

// Byzantine implements sim.FaultPlan.
func (p *explicitFaultPlan) Byzantine(id proc.ID) sim.Machine { return p.machines[id] }

// SendOmit implements sim.FaultPlan.
func (p *explicitFaultPlan) SendOmit(m msg.Message) bool { return p.send[m.Key()] }

// ReceiveOmit implements sim.FaultPlan.
func (p *explicitFaultPlan) ReceiveOmit(m msg.Message) bool { return p.recv[m.Key()] }

// Specs implements the replayable-machines hook.
func (p *explicitFaultPlan) Specs() []ByzEntry { return p.specs }

// Extract materializes the fault plan actually exercised by execution e:
// the omitted message identities recorded in the trace, plus the machine
// specs of the plan's Byzantine processes. Replaying the result
// reproduces e exactly — the omission decisions on messages never
// attempted cannot matter, and the machines are deterministic. It fails
// when the plan replaced machines it cannot describe (a plan built
// outside this package's strategy library).
func Extract(e *sim.Execution, plan sim.FaultPlan) (*ExplicitPlan, error) {
	out := &ExplicitPlan{Faulty: e.Faulty.Members()}
	for _, b := range e.Behaviors {
		for _, f := range b.Fragments {
			for _, m := range f.SendOmitted {
				out.SendOmit = append(out.SendOmit, m.Key())
			}
			for _, m := range f.ReceiveOmitted {
				out.ReceiveOmit = append(out.ReceiveOmit, m.Key())
			}
		}
	}
	sortKeys(out.SendOmit)
	sortKeys(out.ReceiveOmit)

	specs := make(map[proc.ID]MachineSpec)
	for _, entry := range specsOf(plan) {
		specs[entry.ID] = entry.Spec
	}
	for _, id := range e.Faulty.Members() {
		if plan.Byzantine(id) == nil {
			continue
		}
		spec, ok := specs[id]
		if !ok {
			return nil, fmt.Errorf("extract: byzantine machine of %s has no replayable spec", id)
		}
		out.Byzantine = append(out.Byzantine, ByzEntry{ID: id, Spec: spec})
	}
	sortEntries(out.Byzantine)
	return out, nil
}
