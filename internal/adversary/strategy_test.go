package adversary

import (
	"reflect"
	"testing"

	"expensive/internal/msg"
	"expensive/internal/proc"
	"expensive/internal/protocols/floodset"
	"expensive/internal/sim"
)

// testEnv builds a small FloodSet probe environment.
func testEnv(n, t int) Env {
	rounds := floodset.RoundBound(t)
	return Env{
		N: n, T: t, Rounds: rounds, Horizon: rounds + 2,
		Factory: floodset.New(floodset.Config{N: n, T: t}),
	}
}

func bits(pattern ...int) []msg.Value {
	out := make([]msg.Value, len(pattern))
	for i, b := range pattern {
		out[i] = msg.Bit(b)
	}
	return out
}

// allStrategies is the full library, combinators included.
func allStrategies() []Strategy {
	return []Strategy{
		RandomSendOmission(40),
		RandomReceiveOmission(40),
		RandomOmission(40),
		SilentCrash(),
		TargetedWithhold(),
		SenderIsolation(),
		Chaos(),
		Equivocate(),
		TwoFaced(),
		Union(RandomOmission(40), Chaos()),
		Windowed(RandomOmission(80), 2, 3),
		Biased(RandomOmission(80), 50),
	}
}

// TestStrategyDeterminism replays every strategy from the same seed twice
// and demands identical executions — the contract every campaign and
// every shrink step relies on.
func TestStrategyDeterminism(t *testing.T) {
	env := testEnv(6, 2)
	proposals := bits(0, 1, 0, 1, 1, 0)
	for _, s := range allStrategies() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			var execs [2]*sim.Execution
			for i := range execs {
				plan := s.Build(7, env)
				cfg := sim.Config{N: env.N, T: env.T, Proposals: proposals, MaxRounds: env.Horizon}
				e, err := sim.Run(cfg, env.Factory, plan)
				if err != nil {
					t.Fatalf("run %d: %v", i, err)
				}
				execs[i] = e
			}
			if !reflect.DeepEqual(execs[0], execs[1]) {
				t.Fatalf("strategy %s is not seed-deterministic", s.Name)
			}
		})
	}
}

// TestStrategiesRespectFaultBudget runs every strategy over many seeds
// and checks no plan ever corrupts more than t processes.
func TestStrategiesRespectFaultBudget(t *testing.T) {
	for _, tf := range []int{1, 2, 3} {
		env := testEnv(7, tf)
		for _, s := range allStrategies() {
			for seed := int64(0); seed < 25; seed++ {
				f := s.Build(seed, env).Faulty()
				if f.Len() > tf {
					t.Fatalf("%s seed %d corrupts %d > t=%d processes", s.Name, seed, f.Len(), tf)
				}
				if !f.SubsetOf(proc.Universe(env.N)) {
					t.Fatalf("%s seed %d corrupts outside Π: %v", s.Name, seed, f)
				}
			}
		}
	}
}

// TestWindowedGatesRounds verifies the round-window combinator: every
// omission in the trace lands inside the window.
func TestWindowedGatesRounds(t *testing.T) {
	env := testEnv(6, 2)
	s := Windowed(RandomOmission(90), 2, 3)
	for seed := int64(0); seed < 20; seed++ {
		plan := s.Build(seed, env)
		cfg := sim.Config{N: env.N, T: env.T, Proposals: bits(0, 1, 0, 1, 1, 0), MaxRounds: env.Horizon}
		e, err := sim.Run(cfg, env.Factory, plan)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, b := range e.Behaviors {
			for _, m := range append(b.AllSendOmitted(), b.AllReceiveOmitted()...) {
				if m.Round < 2 || m.Round > 3 {
					t.Fatalf("seed %d: omission %v outside window [2,3]", seed, m)
				}
			}
		}
	}
}

// TestBiasedAttenuates verifies the biased combinator commits a subset of
// the inner strategy's omissions.
func TestBiasedAttenuates(t *testing.T) {
	env := testEnv(6, 2)
	inner := RandomOmission(90)
	outer := Biased(inner, 40)
	for seed := int64(0); seed < 10; seed++ {
		pi := inner.Build(seed, env)
		po := outer.Build(seed, env)
		if !pi.Faulty().Equal(po.Faulty()) {
			t.Fatalf("seed %d: biased changed the corrupted set", seed)
		}
		for round := 1; round <= env.Horizon; round++ {
			for s := 0; s < env.N; s++ {
				for r := 0; r < env.N; r++ {
					if s == r {
						continue
					}
					m := msg.Message{Sender: proc.ID(s), Receiver: proc.ID(r), Round: round}
					if po.SendOmit(m) && !pi.SendOmit(m) {
						t.Fatalf("seed %d: biased send-omits %v the inner plan does not", seed, m)
					}
					if po.ReceiveOmit(m) && !pi.ReceiveOmit(m) {
						t.Fatalf("seed %d: biased receive-omits %v the inner plan does not", seed, m)
					}
				}
			}
		}
	}
}

// TestUnionCombinesFaults checks Union plans unite both sides' corruption
// while staying inside the shared budget (covered above) and or-ing the
// omissions.
func TestUnionCombinesFaults(t *testing.T) {
	env := testEnv(7, 3)
	u := Union(RandomSendOmission(80), Chaos())
	sawOmission, sawByzantine := false, false
	for seed := int64(0); seed < 30; seed++ {
		plan := u.Build(seed, env)
		for _, id := range plan.Faulty().Members() {
			if plan.Byzantine(id) != nil {
				sawByzantine = true
			} else {
				sawOmission = true
			}
		}
	}
	if !sawOmission || !sawByzantine {
		t.Fatalf("union never produced both fault classes (omission=%v byzantine=%v)", sawOmission, sawByzantine)
	}
}

// TestUnionWithTargetedRespectsBudget pins the t=1 regression: Union hands
// one side a zero budget, and TargetedWithhold must yield to it.
func TestUnionWithTargetedRespectsBudget(t *testing.T) {
	env := testEnv(6, 1)
	u := Union(SilentCrash(), TargetedWithhold())
	for seed := int64(0); seed < 20; seed++ {
		if f := u.Build(seed, env).Faulty(); f.Len() > 1 {
			t.Fatalf("seed %d: union corrupts %d > t=1 processes (%v)", seed, f.Len(), f)
		}
	}
}
