package adversary

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"testing"

	"expensive/internal/protocols/floodset"
	"expensive/internal/protocols/phaseking"
	"expensive/internal/sim"
)

// floodsetCampaign is the canonical hunt: the targeted withholding attack
// against the crash-model FloodSet, which must split (experiment E10).
func floodsetCampaign(parallelism int) *Campaign {
	n, tf := 8, 2
	return &Campaign{
		Protocol: "floodset",
		Factory:  floodset.New(floodset.Config{N: n, T: tf}),
		Rounds:   floodset.RoundBound(tf),
		N:        n,
		T:        tf,
		Strategy: TargetedWithhold(),
		Seeds:    SeedRange{From: 0, To: 32},
		Validity: WeakValidity,
		Shrink:   true,
		New: func(n, t int) (sim.Factory, int, error) {
			return floodset.New(floodset.Config{N: n, T: t}), floodset.RoundBound(t), nil
		},
		Parallelism: parallelism,
	}
}

// TestCampaignFindsAndShrinksFloodSetSplit is the subsystem's acceptance
// path: the hunt finds the E10 agreement split, shrinks it to a 1-minimal
// fault plan, and the certificate survives independent re-checking.
func TestCampaignFindsAndShrinksFloodSetSplit(t *testing.T) {
	c := floodsetCampaign(1)
	rep, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Broken() {
		t.Fatal("campaign found no violation; the E10 attack should split FloodSet")
	}
	var agreement *Violation
	for _, v := range rep.Violations {
		if v.Kind == "agreement" {
			agreement = v
			break
		}
	}
	if agreement == nil {
		t.Fatalf("no agreement violation among %d violations", len(rep.Violations))
	}
	sh := agreement.Shrunk
	if sh == nil {
		t.Fatal("violation was not shrunk")
	}
	if sh.OmitAfter > sh.OmitBefore || sh.FaultyAfter > sh.FaultyBefore {
		t.Fatalf("shrink grew the plan: %v", sh)
	}
	// How far n shrinks depends on where the seed placed attacker and
	// victim (high-ID participants block the drop); TestShrinkReducesN pins
	// the full reduction deterministically.
	if sh.N > sh.NBefore {
		t.Errorf("shrink grew n: %d -> %d", sh.NBefore, sh.N)
	}
	if sh.FaultyAfter != 1 {
		t.Errorf("minimal FloodSet split needs exactly 1 faulty process, got %d", sh.FaultyAfter)
	}

	opts := c.shrinkOptions(c.env())
	for _, v := range rep.Violations {
		if err := Recheck(v, opts); err != nil {
			t.Fatalf("seed %d: recheck: %v", v.Seed, err)
		}
	}

	// 1-minimality: removing any single remaining element of the shrunk
	// plan must make the violation disappear.
	factory, rounds, err := c.New(sh.N, c.T)
	if err != nil {
		t.Fatal(err)
	}
	env := Env{N: sh.N, T: c.T, Rounds: rounds, Horizon: rounds + 2, Factory: factory}
	stillViolates := func(p ExplicitPlan) bool {
		e, err := sim.Run(sim.Config{N: sh.N, T: c.T, Proposals: sh.Proposals, MaxRounds: env.Horizon},
			factory, p.Plan(env))
		if err != nil {
			return false
		}
		return violationIn(e, sh.Proposals, c.Validity, c.Agreement) != nil
	}
	if !stillViolates(sh.Plan) {
		t.Fatal("shrunk plan does not violate on replay")
	}
	for _, id := range sh.Plan.Faulty {
		if stillViolates(sh.Plan.withoutProc(id)) {
			t.Errorf("shrunk plan still violates without faulty %s — not minimal", id)
		}
	}
	for i := range sh.Plan.SendOmit {
		if stillViolates(sh.Plan.withoutSendOmit(i)) {
			t.Errorf("shrunk plan still violates without send-omit %v — not minimal", sh.Plan.SendOmit[i])
		}
	}
	for i := range sh.Plan.ReceiveOmit {
		if stillViolates(sh.Plan.withoutReceiveOmit(i)) {
			t.Errorf("shrunk plan still violates without receive-omit %v — not minimal", sh.Plan.ReceiveOmit[i])
		}
	}
}

// TestCampaignReportDeterminism is the parallelism contract: the JSON
// encoding of a campaign report — violations, shrunken plans, histograms
// — is byte-identical at parallelism 1 and NumCPU.
func TestCampaignReportDeterminism(t *testing.T) {
	encode := func(parallelism int) []byte {
		rep, err := floodsetCampaign(parallelism).Run()
		if err != nil {
			t.Fatal(err)
		}
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := encode(1)
	parallel := encode(0)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("campaign reports differ between parallelism levels:\nserial:\n%s\nparallel:\n%s", serial, parallel)
	}
	if !bytes.Contains(serial, []byte(`"kind": "agreement"`)) {
		t.Fatal("deterministic report does not contain the expected agreement violation")
	}
}

// TestCampaignSoundProtocols hunts protocols inside their resilience
// bounds with every Byzantine strategy: no violations may appear.
func TestCampaignSoundProtocols(t *testing.T) {
	n, tf := 5, 1
	factory := phaseking.New(phaseking.Config{N: n, T: tf})
	rounds := phaseking.RoundBound(tf)
	for _, s := range []Strategy{Chaos(), Equivocate(), TwoFaced(), RandomOmission(40), SilentCrash()} {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			c := &Campaign{
				Protocol: "phase-king",
				Factory:  factory,
				Rounds:   rounds,
				N:        n,
				T:        tf,
				Strategy: s,
				Seeds:    SeedRange{From: 0, To: 20},
				Validity: StrongValidity,
			}
			rep, err := c.Run()
			if err != nil {
				t.Fatal(err)
			}
			if rep.Broken() {
				t.Fatalf("sound phase-king broken: %v", rep.Violations[0])
			}
			if rep.Probes != 20 {
				t.Fatalf("expected 20 probes, got %d", rep.Probes)
			}
		})
	}
}

// The problem-derived hunt lifecycle (formerly TestForProblem here) lives
// in internal/solve/campaign_test.go: HuntCampaign moved to package solve
// so the adversary layer stays below the protocol catalog.

// TestCampaignMaxViolations caps the recorded violations while counting
// all of them.
func TestCampaignMaxViolations(t *testing.T) {
	c := floodsetCampaign(1)
	c.Shrink = false
	c.MaxViolations = 1
	rep, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 1 {
		t.Fatalf("recorded %d violations, want 1", len(rep.Violations))
	}
	if rep.ViolationCount <= 1 {
		t.Fatalf("expected more than one violating seed in 0:32, got %d", rep.ViolationCount)
	}
}

// TestCampaignValidation rejects malformed campaigns.
func TestCampaignValidation(t *testing.T) {
	base := floodsetCampaign(1)
	cases := []func(c *Campaign){
		func(c *Campaign) { c.Factory = nil },
		func(c *Campaign) { c.Strategy = Strategy{} },
		func(c *Campaign) { c.Rounds = 0 },
		func(c *Campaign) { c.T = 0 },
		func(c *Campaign) { c.Seeds = SeedRange{From: 5, To: 5} },
		// The overflow regression: this width wraps int64 negative, which
		// used to pass the emptiness check and panic runner.Map's make.
		func(c *Campaign) { c.Seeds = SeedRange{From: math.MinInt64, To: math.MaxInt64} },
		func(c *Campaign) { c.Seeds = SeedRange{From: 0, To: math.MaxInt64} },
	}
	for i, breakIt := range cases {
		c := *base
		breakIt(&c)
		if _, err := c.Run(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

// TestSeedRangeCount pins Count and Err across the overflow regression
// cases: reversed, empty, and near-MaxInt64 ranges must report a
// non-negative count and fail validation instead of wrapping int and
// panicking the worker pool.
func TestSeedRangeCount(t *testing.T) {
	cases := []struct {
		name  string
		r     SeedRange
		count int
		valid bool
	}{
		{"small", SeedRange{From: 0, To: 64}, 64, true},
		{"negative from", SeedRange{From: -32, To: 32}, 64, true},
		{"empty", SeedRange{From: 5, To: 5}, 0, false},
		{"reversed", SeedRange{From: 10, To: -10}, 0, false},
		{"at cap", SeedRange{From: 0, To: MaxSeeds}, MaxSeeds, true},
		{"over cap", SeedRange{From: 0, To: MaxSeeds + 1}, MaxSeeds + 1, false},
		{"near MaxInt64", SeedRange{From: 0, To: math.MaxInt64}, MaxSeeds + 1, false},
		{"full int64 width", SeedRange{From: math.MinInt64, To: math.MaxInt64}, MaxSeeds + 1, false},
		{"reversed extremes", SeedRange{From: math.MaxInt64, To: math.MinInt64}, 0, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.r.Count(); got != tc.count {
				t.Errorf("Count() = %d, want %d", got, tc.count)
			}
			if got := tc.r.Count(); got < 0 {
				t.Errorf("Count() = %d is negative — the overflow the fix removes", got)
			}
			if err := tc.r.Err(); (err == nil) != tc.valid {
				t.Errorf("Err() = %v, want valid=%v", err, tc.valid)
			}
		})
	}
}

// TestHistogramDeterminism pins the histogram shape.
func TestHistogramDeterminism(t *testing.T) {
	h := histogramOf([]int{3, 1, 3, 2, 3})
	want := Histogram{Min: 1, Max: 3, Sum: 12, Buckets: []Bucket{{1, 1}, {2, 1}, {3, 3}}}
	if fmt.Sprint(h) != fmt.Sprint(want) {
		t.Fatalf("histogram %v, want %v", h, want)
	}
}

func TestSeedRangeSplit(t *testing.T) {
	cases := []struct {
		name string
		r    SeedRange
		k    int
		want []SeedRange
	}{
		{"even", SeedRange{0, 8}, 4, []SeedRange{{0, 2}, {2, 4}, {4, 6}, {6, 8}}},
		{"uneven", SeedRange{0, 10}, 4, []SeedRange{{0, 3}, {3, 6}, {6, 8}, {8, 10}}},
		{"offset uneven", SeedRange{5, 12}, 3, []SeedRange{{5, 8}, {8, 10}, {10, 12}}},
		{"k exceeds width", SeedRange{0, 3}, 8, []SeedRange{{0, 1}, {1, 2}, {2, 3}}},
		{"k one", SeedRange{3, 9}, 1, []SeedRange{{3, 9}}},
		{"k nonpositive", SeedRange{0, 4}, 0, []SeedRange{{0, 4}}},
		{"single seed", SeedRange{7, 8}, 4, []SeedRange{{7, 8}}},
		{"empty", SeedRange{5, 5}, 3, nil},
		{"inverted", SeedRange{5, 2}, 3, nil},
		{"beyond MaxSeeds", SeedRange{0, MaxSeeds + 1}, 2, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.r.Split(tc.k)
			if len(got) != len(tc.want) {
				t.Fatalf("Split(%d) = %v, want %v", tc.k, got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("Split(%d)[%d] = %v, want %v", tc.k, i, got[i], tc.want[i])
				}
			}
		})
	}
}

// TestSeedRangeSplitCovers fuzzes the partition invariants: contiguous,
// ascending, exactly covering, widths differing by at most one.
func TestSeedRangeSplitCovers(t *testing.T) {
	for _, r := range []SeedRange{{0, 64}, {100, 1000}, {-50, 13}, {0, MaxSeeds}} {
		for _, k := range []int{1, 2, 3, 7, 16, 100} {
			parts := r.Split(k)
			if len(parts) == 0 {
				t.Fatalf("Split(%v, %d): empty partition of a valid range", r, k)
			}
			var total int64
			lo, hi := parts[0].Count(), parts[0].Count()
			at := r.From
			for _, p := range parts {
				if p.From != at || p.To <= p.From {
					t.Fatalf("Split(%v, %d): discontiguous part %v at %d", r, k, p, at)
				}
				at = p.To
				c := p.Count()
				total += int64(c)
				lo, hi = min(lo, c), max(hi, c)
			}
			if at != r.To || total != int64(r.Count()) {
				t.Fatalf("Split(%v, %d): covers [%d, %d), want [%d, %d)", r, k, r.From, at, r.From, r.To)
			}
			if hi-lo > 1 {
				t.Fatalf("Split(%v, %d): widths differ by %d", r, k, hi-lo)
			}
		}
	}
}

// TestHistogramFromCountsMatchesSlices pins the checkpointable counts-map
// path to the slice path byte for byte.
func TestHistogramFromCountsMatchesSlices(t *testing.T) {
	values := []int{5, 3, 5, 9, 3, 3, 0, 12, 5}
	counts := map[int]int{5: 3, 3: 3, 9: 1, 0: 1, 12: 1}
	a, b := NewHistogram(values), NewHistogramFromCounts(counts)
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatalf("FromCounts = %s, NewHistogram = %s", jb, ja)
	}
	if e := NewHistogramFromCounts(map[int]int{7: 0}); len(e.Buckets) != 0 {
		t.Fatalf("zero-count bucket leaked: %+v", e)
	}
}

// TestHistogramMerge checks Merge against NewHistogram over concatenated
// value slices — the identity the distributed fold relies on.
func TestHistogramMerge(t *testing.T) {
	a := []int{1, 4, 4, 9}
	b := []int{0, 4, 7, 9, 9}
	got := NewHistogram(a).Merge(NewHistogram(b))
	want := NewHistogram(append(append([]int{}, a...), b...))
	jg, _ := json.Marshal(got)
	jw, _ := json.Marshal(want)
	if string(jg) != string(jw) {
		t.Fatalf("Merge = %s, want %s", jg, jw)
	}
	if m := NewHistogram(nil).Merge(NewHistogram(a)); m.Sum != 18 {
		t.Fatalf("empty.Merge = %+v", m)
	}
	if m := NewHistogram(a).Merge(NewHistogram(nil)); m.Sum != 18 {
		t.Fatalf("Merge(empty) = %+v", m)
	}
}
