// Package adversary is the reusable attack layer of the library: a
// library of composable, seed-deterministic fault-plan strategies, a
// parallel campaign engine that hunts protocol violations over seed
// ranges, and a counterexample shrinker that minimizes whatever the hunt
// finds into a small, machine-checkable fault plan.
//
// The paper's whole argument runs on adversarial executions — hand-built
// omission and Byzantine fault plans that make protocols fail or pay the
// Ω(t²) price. Before this package the repo could express them in exactly
// two bespoke ways: the Theorem 2 falsifier (internal/lowerbound) and the
// ad-hoc randomness of the stress tests. This package generalizes both
// into a subsystem every layer can use:
//
//   - Strategy (strategy.go, machines.go) — a named, seed-deterministic
//     generator of sim.FaultPlan values. The library covers random and
//     targeted send/receive omission, silent crashes, Definition 1 style
//     group isolation, and Byzantine machines (chaos, equivocation,
//     two-faced honest twins), plus combinators: Union splits the fault
//     budget between two strategies, Windowed gates omissions to a round
//     interval, Biased attenuates them per message. Everything a strategy
//     does derives from its explicit seed, so every discovered failure
//     replays bit-for-bit.
//
//   - Campaign (campaign.go, problem.go) — fans a seed range out over the
//     experiment engine's worker pool (internal/experiments/runner). Each
//     probe builds the strategy's plan for its seed, runs the protocol in
//     the deterministic simulator, validates the trace against the five
//     Appendix A.1.6 execution guarantees, re-runs every honest machine
//     against its recorded inputs (sim.Conforms), and checks Termination,
//     Agreement, and a pluggable validity property. The CampaignReport is
//     JSON-serializable and byte-identical at every parallelism level:
//     probes are computed concurrently but aggregated strictly in seed
//     order, and wall-clock statistics stay out of the encoding.
//
//   - Shrink (plan.go, shrink.go) — minimizes a found violation in the
//     delta-debugging style: the fault plan exercised by the violating
//     trace is first materialized as an ExplicitPlan (exact omitted
//     message identities plus replayable Byzantine machine specs), then
//     greedily reduced — fewer corrupted processes, fewer omitted
//     messages, and, when the protocol is available at smaller sizes, a
//     smaller n — re-validating every candidate with omission.Validate
//     and sim.Conforms. Recheck independently re-validates the final
//     certificate from scratch, CheckViolation-style.
//
// The falsifier proves one theorem's construction; campaigns search the
// whole space around it. Both end the same way: a minimal execution a
// machine can check.
package adversary
