package adversary

import (
	"fmt"
	"hash/fnv"
	"math/rand"

	"expensive/internal/msg"
	"expensive/internal/omission"
	"expensive/internal/proc"
	"expensive/internal/sim"
)

// Env is the probe environment a strategy builds its fault plan for: the
// system parameters, the protocol's decision-round bound and the probe
// horizon, and the honest-machine factory (used by strategies that run
// honest machines adversarially, like TwoFaced).
type Env struct {
	N, T    int
	Rounds  int
	Horizon int
	Factory sim.Factory
}

// Strategy is a named, seed-deterministic generator of fault plans. The
// same (seed, Env) must always yield an identical adversary — that is what
// makes campaign reports reproducible and every found violation
// replayable from its seed alone.
type Strategy struct {
	Name string
	// Build derives the fault plan of one probe. It must corrupt at most
	// Env.T processes and be a pure function of (seed, env).
	Build func(seed int64, env Env) sim.FaultPlan
	// Proposals optionally overrides the campaign's proposal generator:
	// the §3 adversary chooses the input configuration as well as the
	// faults, and targeted strategies exploit that. Nil keeps the
	// campaign's default. Must be a pure function of (seed, env).
	Proposals func(seed int64, env Env) []msg.Value
}

// subSeed mixes a seed with a salt string into a derived seed, so the
// independent random choices of one probe never share a stream.
func subSeed(seed int64, salt string) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s", seed, salt)
	return int64(h.Sum64())
}

// SubSeed exposes the seed mixer to the fuzz package: campaign seed
// sweeps and the fuzzer's seed generation must derive their streams the
// same way, so there is exactly one mixer.
func SubSeed(seed int64, salt string) int64 { return subSeed(seed, salt) }

// rng returns the deterministic random stream of (seed, salt).
func rng(seed int64, salt string) *rand.Rand {
	return rand.New(rand.NewSource(subSeed(seed, salt)))
}

// coin makes a deterministic pseudo-random decision for a message under a
// seed: the same (seed, message identity) always lands the same way, which
// keeps predicate-based fault plans valid static adversaries. Percentages
// outside 0..100 behave as the nearest bound (never/always).
func coin(seed int64, m msg.Message, biasPct int) bool {
	if biasPct <= 0 {
		return false
	}
	if biasPct >= 100 {
		return true
	}
	h := fnv.New32a()
	fmt.Fprintf(h, "%d|%d|%d|%d", seed, m.Sender, m.Receiver, m.Round)
	return h.Sum32()%100 < uint32(biasPct)
}

// randomFaulty draws a non-empty random subset of at most t processes
// (empty when the budget t is zero, as happens under Union sub-budgets).
func randomFaulty(r *rand.Rand, n, t int) proc.Set {
	var f proc.Set
	if t < 1 {
		return f
	}
	count := 1 + r.Intn(t)
	for f.Len() < count {
		f = f.Add(proc.ID(r.Intn(n)))
	}
	return f
}

// RandomSendOmission corrupts a random subset of at most t processes and
// drops each of their outbound messages with the given percentage.
func RandomSendOmission(biasPct int) Strategy {
	name := fmt.Sprintf("random-send-omission(bias=%d%%)", biasPct)
	return Strategy{Name: name, Build: func(seed int64, env Env) sim.FaultPlan {
		r := rng(seed, name)
		f := randomFaulty(r, env.N, env.T)
		s := r.Int63()
		return sim.OmissionPlan{
			F:      f,
			SendFn: func(m msg.Message) bool { return coin(s, m, biasPct) },
		}
	}}
}

// RandomReceiveOmission corrupts a random subset of at most t processes
// and drops each of their inbound messages with the given percentage.
func RandomReceiveOmission(biasPct int) Strategy {
	name := fmt.Sprintf("random-receive-omission(bias=%d%%)", biasPct)
	return Strategy{Name: name, Build: func(seed int64, env Env) sim.FaultPlan {
		r := rng(seed, name)
		f := randomFaulty(r, env.N, env.T)
		s := r.Int63()
		return sim.OmissionPlan{
			F:         f,
			ReceiveFn: func(m msg.Message) bool { return coin(s, m, biasPct) },
		}
	}}
}

// RandomOmission corrupts a random subset of at most t processes and drops
// each of their inbound and outbound messages with the given percentage —
// the full §3 omission adversary, randomized.
func RandomOmission(biasPct int) Strategy {
	name := fmt.Sprintf("random-omission(bias=%d%%)", biasPct)
	return Strategy{Name: name, Build: func(seed int64, env Env) sim.FaultPlan {
		r := rng(seed, name)
		f := randomFaulty(r, env.N, env.T)
		sendSeed, recvSeed := r.Int63(), r.Int63()
		return sim.OmissionPlan{
			F:         f,
			SendFn:    func(m msg.Message) bool { return coin(sendSeed, m, biasPct) },
			ReceiveFn: func(m msg.Message) bool { return coin(recvSeed, m, biasPct) },
		}
	}}
}

// SilentCrash crashes a random subset of at most t processes at random
// rounds, each with classical partial delivery (the crash interrupts the
// round's sends, reaching only a random subset of peers).
func SilentCrash() Strategy {
	const name = "silent-crash"
	return Strategy{Name: name, Build: func(seed int64, env Env) sim.FaultPlan {
		r := rng(seed, name)
		f := randomFaulty(r, env.N, env.T)
		specs := make(map[proc.ID]sim.CrashSpec, f.Len())
		for _, id := range f.Members() {
			deliver := proc.Set{}
			for p := 0; p < env.N; p++ {
				if proc.ID(p) != id && r.Intn(2) == 0 {
					deliver = deliver.Add(proc.ID(p))
				}
			}
			specs[id] = sim.CrashSpec{Round: 1 + r.Intn(env.Horizon), DeliverTo: deliver}
		}
		return sim.Crash(specs)
	}}
}

// targetParams draws the (attacker, victim, pivot) triple of the targeted
// withholding attack. Build and Proposals share it, so the proposal vector
// always gives the attacker the uniquely small value its attack needs.
func targetParams(seed int64, env Env) (attacker, victim proc.ID, pivot int) {
	r := rng(seed, "targeted-withhold")
	attacker = proc.ID(r.Intn(env.N))
	victim = proc.ID(r.Intn(env.N - 1))
	if victim >= attacker {
		victim++
	}
	pivot = 1 + r.Intn(env.Horizon)
	return attacker, victim, pivot
}

// TargetedWithhold is the targeted send-omission attack that separates the
// crash model from the omission model (experiment E10, generalized): a
// seed-chosen attacker holds the uniquely small proposal, send-omits
// everything before a seed-chosen pivot round, and from the pivot on
// delivers only to a single victim. When the pivot lands on the
// protocol's decision round, crash-tolerant protocols like FloodSet split.
func TargetedWithhold() Strategy {
	return Strategy{
		Name: "targeted-withhold",
		Build: func(seed int64, env Env) sim.FaultPlan {
			if env.T < 1 {
				return sim.NoFaults{} // no budget (e.g. the small side of a Union split)
			}
			attacker, victim, pivot := targetParams(seed, env)
			return sim.OmissionPlan{
				F: proc.NewSet(attacker),
				SendFn: func(m msg.Message) bool {
					if m.Sender != attacker {
						return false
					}
					if m.Round < pivot {
						return true // withhold everything before the pivot
					}
					return m.Receiver != victim // then reveal to the victim only
				},
			}
		},
		Proposals: func(seed int64, env Env) []msg.Value {
			attacker, _, _ := targetParams(seed, env)
			out := make([]msg.Value, env.N)
			for i := range out {
				out[i] = msg.One
			}
			out[attacker] = msg.Zero
			return out
		},
	}
}

// SenderIsolation replays the paper's Definition 1 isolation pattern as a
// randomized strategy: a seed-chosen group of at most t processes
// receive-omits everything arriving from outside the group from a
// seed-chosen round on — the E_G(k) shape the lower-bound construction
// probes, aimed at arbitrary protocols.
func SenderIsolation() Strategy {
	const name = "sender-isolation"
	return Strategy{Name: name, Build: func(seed int64, env Env) sim.FaultPlan {
		r := rng(seed, name)
		group := randomFaulty(r, env.N, env.T)
		from := 1 + r.Intn(env.Horizon)
		return omission.Isolation(group, from)
	}}
}

// Union combines two strategies into one adversary: the fault budget is
// split between them (⌈t/2⌉ and ⌊t/2⌋, so the union never exceeds t), the
// corrupted sets are united, omissions are or-ed, and Byzantine machines
// of the first strategy win ties.
func Union(a, b Strategy) Strategy {
	name := fmt.Sprintf("union(%s, %s)", a.Name, b.Name)
	s := Strategy{
		Name: name,
		Build: func(seed int64, env Env) sim.FaultPlan {
			envA, envB := env, env
			envA.T = (env.T + 1) / 2
			envB.T = env.T / 2
			return unionPlan{
				a: a.Build(subSeed(seed, name+"|a"), envA),
				b: b.Build(subSeed(seed, name+"|b"), envB),
			}
		},
	}
	// Adopt a child's proposal preference, first strategy winning ties.
	switch {
	case a.Proposals != nil:
		s.Proposals = func(seed int64, env Env) []msg.Value {
			return a.Proposals(subSeed(seed, name+"|a"), env)
		}
	case b.Proposals != nil:
		s.Proposals = func(seed int64, env Env) []msg.Value {
			return b.Proposals(subSeed(seed, name+"|b"), env)
		}
	}
	return s
}

type unionPlan struct{ a, b sim.FaultPlan }

var _ sim.FaultPlan = unionPlan{}

// Faulty implements sim.FaultPlan.
func (u unionPlan) Faulty() proc.Set { return u.a.Faulty().Union(u.b.Faulty()) }

// Byzantine implements sim.FaultPlan.
func (u unionPlan) Byzantine(id proc.ID) sim.Machine {
	if m := u.a.Byzantine(id); m != nil {
		return m
	}
	return u.b.Byzantine(id)
}

// SendOmit implements sim.FaultPlan.
func (u unionPlan) SendOmit(m msg.Message) bool { return u.a.SendOmit(m) || u.b.SendOmit(m) }

// ReceiveOmit implements sim.FaultPlan.
func (u unionPlan) ReceiveOmit(m msg.Message) bool { return u.a.ReceiveOmit(m) || u.b.ReceiveOmit(m) }

// Specs implements the replayable-machines hook by collecting both sides'.
func (u unionPlan) Specs() []ByzEntry {
	out := append(specsOf(u.a), specsOf(u.b)...)
	// A process can only carry one machine (a wins ties in Byzantine), so
	// keep the first spec per ID, in ID order.
	seen := make(map[proc.ID]bool, len(out))
	var uniq []ByzEntry
	for _, e := range out {
		if !seen[e.ID] {
			seen[e.ID] = true
			uniq = append(uniq, e)
		}
	}
	return sortEntries(uniq)
}

// Windowed gates a strategy's omission faults to the round interval
// [lo, hi] (inclusive). Byzantine machines pass through unchanged — a
// replaced machine misbehaves for the whole run by definition.
func Windowed(s Strategy, lo, hi int) Strategy {
	name := fmt.Sprintf("windowed(%s, %d..%d)", s.Name, lo, hi)
	return Strategy{
		Name: name,
		Build: func(seed int64, env Env) sim.FaultPlan {
			return filteredPlan{
				inner: s.Build(seed, env),
				keep:  func(m msg.Message) bool { return m.Round >= lo && m.Round <= hi },
			}
		},
		Proposals: s.Proposals,
	}
}

// Biased attenuates a strategy: every omission the inner plan commits is
// kept only with the given percentage, decided deterministically per
// message. Byzantine machines pass through unchanged.
func Biased(s Strategy, keepPct int) Strategy {
	name := fmt.Sprintf("biased(%s, keep=%d%%)", s.Name, keepPct)
	return Strategy{
		Name: name,
		Build: func(seed int64, env Env) sim.FaultPlan {
			keepSeed := subSeed(seed, name)
			return filteredPlan{
				inner: s.Build(seed, env),
				keep:  func(m msg.Message) bool { return coin(keepSeed, m, keepPct) },
			}
		},
		Proposals: s.Proposals,
	}
}

// filteredPlan keeps the inner plan's corruption and machines but commits
// only the omissions its keep predicate admits. Since kept omissions are a
// subset of the inner plan's, they still touch only faulty processes.
type filteredPlan struct {
	inner sim.FaultPlan
	keep  func(msg.Message) bool
}

var _ sim.FaultPlan = filteredPlan{}

// Faulty implements sim.FaultPlan.
func (p filteredPlan) Faulty() proc.Set { return p.inner.Faulty() }

// Byzantine implements sim.FaultPlan.
func (p filteredPlan) Byzantine(id proc.ID) sim.Machine { return p.inner.Byzantine(id) }

// SendOmit implements sim.FaultPlan.
func (p filteredPlan) SendOmit(m msg.Message) bool { return p.inner.SendOmit(m) && p.keep(m) }

// ReceiveOmit implements sim.FaultPlan.
func (p filteredPlan) ReceiveOmit(m msg.Message) bool { return p.inner.ReceiveOmit(m) && p.keep(m) }

// Specs implements the replayable-machines hook by delegating inward.
func (p filteredPlan) Specs() []ByzEntry { return specsOf(p.inner) }
