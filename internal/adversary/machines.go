package adversary

import (
	"fmt"
	"sort"

	"expensive/internal/msg"
	"expensive/internal/proc"
	"expensive/internal/sim"
)

// MachineSpec is the replayable description of a Byzantine machine from
// the strategy library: kind plus seed fully determine its behavior at a
// given (n, id, horizon). Specs are what make campaign counterexamples
// with Byzantine processes serializable, replayable, and shrinkable.
type MachineSpec struct {
	Kind string `json:"kind"`
	Seed int64  `json:"seed"`
}

// The machine kinds of the library.
const (
	KindSilent     = "silent"
	KindChaos      = "chaos"
	KindEquivocate = "equivocate"
	KindTwoFaced   = "two-faced"
)

// build constructs a fresh machine from the spec. Machines are stateful,
// so every run must build its own. Unknown kinds degrade to silence —
// specs are produced only by this package, so that is a defensive default,
// not an expected path. Two-faced machines need env.Factory; without one
// they degrade to silence too.
func (s MachineSpec) build(env Env, id proc.ID) sim.Machine {
	switch s.Kind {
	case KindChaos:
		return &chaosMachine{n: env.N, id: id, seed: s.Seed, quiet: env.Horizon}
	case KindEquivocate:
		return &equivocator{n: env.N, id: id, seed: s.Seed, quiet: env.Horizon}
	case KindTwoFaced:
		if env.Factory != nil {
			return newTwoFaced(env, id, s.Seed)
		}
	}
	return silentMachine{}
}

// ByzEntry assigns a replayable machine spec to one corrupted process.
type ByzEntry struct {
	ID   proc.ID     `json:"id"`
	Spec MachineSpec `json:"machine"`
}

// sortEntries orders entries by process ID, in place, and returns them.
func sortEntries(es []ByzEntry) []ByzEntry {
	sort.Slice(es, func(i, j int) bool { return es[i].ID < es[j].ID })
	return es
}

// speccedPlan is the hook through which Extract learns how to rebuild a
// plan's Byzantine machines. All plans produced by this package's
// Byzantine strategies implement it; combinator plans delegate.
type speccedPlan interface {
	Specs() []ByzEntry
}

// specsOf returns the plan's machine specs, or nil when the plan carries
// none (pure omission plans) or is not replayable (foreign plans).
func specsOf(plan sim.FaultPlan) []ByzEntry {
	if sp, ok := plan.(speccedPlan); ok {
		return sp.Specs()
	}
	return nil
}

// byzPlan couples a ByzantinePlan with the specs that rebuild it.
type byzPlan struct {
	sim.ByzantinePlan
	specs []ByzEntry
}

// Specs implements the replayable-machines hook.
func (p byzPlan) Specs() []ByzEntry { return p.specs }

// byzStrategy corrupts a random subset of at most t processes and replaces
// each with a freshly seeded machine of the given kind.
func byzStrategy(name, kind string) Strategy {
	return Strategy{Name: name, Build: func(seed int64, env Env) sim.FaultPlan {
		r := rng(seed, name)
		f := randomFaulty(r, env.N, env.T)
		machines := make(map[proc.ID]sim.Machine, f.Len())
		entries := make([]ByzEntry, 0, f.Len())
		for _, id := range f.Members() {
			spec := MachineSpec{Kind: kind, Seed: r.Int63()}
			machines[id] = spec.build(env, id)
			entries = append(entries, ByzEntry{ID: id, Spec: spec})
		}
		return byzPlan{ByzantinePlan: sim.ByzantinePlan{Machines: machines}, specs: entries}
	}}
}

// Chaos replaces a random subset of at most t processes with randomized
// Byzantine chatterers: each round they send deterministic-pseudo-random
// bit payloads — sometimes deliberately malformed — to a pseudo-random
// subset of peers.
func Chaos() Strategy { return byzStrategy("chaos", KindChaos) }

// Equivocate replaces a random subset of at most t processes with
// equivocators: every round each one tells a fixed pseudo-random half of
// Π "0" and the other half "1".
func Equivocate() Strategy { return byzStrategy("equivocate", KindEquivocate) }

// TwoFaced replaces a random subset of at most t processes with two-faced
// machines: each runs two honest copies of the protocol machine with
// opposite proposals and shows every peer a consistent view of one copy —
// the classical equivocation that is honest to either side in isolation.
func TwoFaced() Strategy { return byzStrategy("two-faced", KindTwoFaced) }

// silentMachine never sends and never decides (the weakest Byzantine
// behavior, and the defensive fallback for unbuildable specs).
type silentMachine struct{}

var _ sim.Machine = silentMachine{}

// Init implements sim.Machine.
func (silentMachine) Init() []sim.Outgoing { return nil }

// Step implements sim.Machine.
func (silentMachine) Step(int, []msg.Message) []sim.Outgoing { return nil }

// Decision implements sim.Machine.
func (silentMachine) Decision() (msg.Value, bool) { return msg.NoDecision, false }

// Quiescent implements sim.Machine.
func (silentMachine) Quiescent() bool { return true }

// chaosMachine is the randomized Byzantine chatterer (ported from the
// stress suite): each round it sends a deterministic-pseudo-random payload
// to a pseudo-random subset of peers, occasionally malformed on purpose.
type chaosMachine struct {
	n     int
	id    proc.ID
	seed  int64
	quiet int // stop after this many rounds to bound the run
}

var _ sim.Machine = (*chaosMachine)(nil)

func (m *chaosMachine) emit(round int) []sim.Outgoing {
	var out []sim.Outgoing
	for p := 0; p < m.n; p++ {
		if proc.ID(p) == m.id {
			continue
		}
		probe := msg.Message{Sender: m.id, Receiver: proc.ID(p), Round: round}
		if !coin(m.seed, probe, 60) {
			continue
		}
		payload := string(msg.Bit(int(m.seed+int64(p)+int64(round)) % 2))
		if coin(m.seed+1, probe, 20) {
			payload = `{"garbage":` // malformed on purpose
		}
		out = append(out, sim.Outgoing{To: proc.ID(p), Payload: payload})
	}
	return out
}

// Init implements sim.Machine.
func (m *chaosMachine) Init() []sim.Outgoing { return m.emit(1) }

// Step implements sim.Machine.
func (m *chaosMachine) Step(round int, _ []msg.Message) []sim.Outgoing {
	if round >= m.quiet {
		return nil
	}
	return m.emit(round + 1)
}

// Decision implements sim.Machine.
func (m *chaosMachine) Decision() (msg.Value, bool) { return msg.NoDecision, false }

// Quiescent implements sim.Machine.
func (m *chaosMachine) Quiescent() bool { return false }

// equivocator tells a fixed pseudo-random half of Π "0" and the rest "1",
// every round. The split is per-execution, not per-round: each peer sees a
// consistent story, which is what makes equivocation hard to detect
// without signatures or cross-checking.
type equivocator struct {
	n     int
	id    proc.ID
	seed  int64
	quiet int
}

var _ sim.Machine = (*equivocator)(nil)

func (m *equivocator) emit() []sim.Outgoing {
	out := make([]sim.Outgoing, 0, m.n-1)
	for p := 0; p < m.n; p++ {
		if proc.ID(p) == m.id {
			continue
		}
		side := msg.Message{Sender: m.id, Receiver: proc.ID(p)} // round 0: split is round-invariant
		v := msg.Zero
		if coin(m.seed, side, 50) {
			v = msg.One
		}
		out = append(out, sim.Outgoing{To: proc.ID(p), Payload: string(v)})
	}
	return out
}

// Init implements sim.Machine.
func (m *equivocator) Init() []sim.Outgoing { return m.emit() }

// Step implements sim.Machine.
func (m *equivocator) Step(round int, _ []msg.Message) []sim.Outgoing {
	if round >= m.quiet {
		return nil
	}
	return m.emit()
}

// Decision implements sim.Machine.
func (m *equivocator) Decision() (msg.Value, bool) { return msg.NoDecision, false }

// Quiescent implements sim.Machine.
func (m *equivocator) Quiescent() bool { return false }

// twoFaced runs two honest copies of the protocol machine with opposite
// proposals, feeds both the full received view, and routes each peer the
// messages of one fixed copy (chosen pseudo-randomly per peer). Either
// side of the split observes a perfectly protocol-conformant process.
type twoFaced struct {
	id   proc.ID
	a, b sim.Machine
	seed int64
}

var _ sim.Machine = (*twoFaced)(nil)

func newTwoFaced(env Env, id proc.ID, seed int64) *twoFaced {
	return &twoFaced{
		id:   id,
		a:    env.Factory(id, msg.Zero),
		b:    env.Factory(id, msg.One),
		seed: seed,
	}
}

// sideA reports whether peer p is shown copy a's behavior.
func (m *twoFaced) sideA(p proc.ID) bool {
	return coin(m.seed, msg.Message{Sender: m.id, Receiver: p}, 50)
}

func (m *twoFaced) route(outA, outB []sim.Outgoing) []sim.Outgoing {
	var out []sim.Outgoing
	for _, o := range outA {
		if m.sideA(o.To) {
			out = append(out, o)
		}
	}
	for _, o := range outB {
		if !m.sideA(o.To) {
			out = append(out, o)
		}
	}
	return out
}

// Init implements sim.Machine.
func (m *twoFaced) Init() []sim.Outgoing { return m.route(m.a.Init(), m.b.Init()) }

// Step implements sim.Machine.
func (m *twoFaced) Step(round int, received []msg.Message) []sim.Outgoing {
	// Each copy gets its own slice: machines may retain what they are given.
	recvB := append([]msg.Message(nil), received...)
	return m.route(m.a.Step(round, received), m.b.Step(round, recvB))
}

// Decision implements sim.Machine.
func (m *twoFaced) Decision() (msg.Value, bool) { return msg.NoDecision, false }

// Quiescent implements sim.Machine.
func (m *twoFaced) Quiescent() bool { return m.a.Quiescent() && m.b.Quiescent() }

// String renders a spec for diagnostics.
func (s MachineSpec) String() string { return fmt.Sprintf("%s(seed=%d)", s.Kind, s.Seed) }
