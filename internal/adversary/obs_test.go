package adversary

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"expensive/internal/obs"
)

// TestCampaignTelemetryNeverTouchesTheReport is the flight recorder's
// contract applied to campaigns: the JSON report is byte-identical with
// telemetry off, with telemetry on, and at every parallelism level — the
// recorder is a pure side channel. It also asserts the side channel
// actually recorded the hunt.
func TestCampaignTelemetryNeverTouchesTheReport(t *testing.T) {
	encode := func(parallelism int, rec *obs.Recorder) []byte {
		c := floodsetCampaign(parallelism)
		c.Ctx = obs.Into(context.Background(), rec)
		rep, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	baseline := encode(1, nil)
	rec := obs.New()
	var events bytes.Buffer
	rec.SetSink(obs.NewSink(&events))
	for _, tc := range []struct {
		name        string
		parallelism int
		rec         *obs.Recorder
	}{
		{"telemetry-on serial", 1, rec},
		{"telemetry-on parallel", 0, rec},
		{"telemetry-off parallel", 0, nil},
	} {
		if got := encode(tc.parallelism, tc.rec); !bytes.Equal(baseline, got) {
			t.Errorf("%s: report diverged from the telemetry-off serial baseline:\nbaseline:\n%s\ngot:\n%s",
				tc.name, baseline, got)
		}
	}

	// Two instrumented runs of 32 seeds each flowed through the recorder.
	probes := rec.Counter("campaign_probes").Value()
	if probes != 64 {
		t.Errorf("campaign_probes = %d, want 64 (2 runs × 32 seeds)", probes)
	}
	if v := rec.Counter("campaign_violations").Value(); v == 0 {
		t.Error("campaign_violations = 0 despite a broken protocol")
	}
	if r := rec.Counter("campaign_replays").Value(); r == 0 {
		t.Error("campaign_replays = 0: violating lean probes must replay at full")
	}
	if s := rec.Counter("shrink_steps").Value(); s == 0 {
		t.Error("shrink_steps = 0 despite Shrink being on")
	}
	if n := rec.Histogram("campaign_probe_ns").Count(); n != probes {
		t.Errorf("campaign_probe_ns count = %d, want %d (one timing per probe)", n, probes)
	}
	for _, want := range []string{`"name":"campaign-start"`, `"name":"violation-found"`, `"name":"shrink-step"`, `"name":"campaign-end"`} {
		if !bytes.Contains(events.Bytes(), []byte(want)) {
			t.Errorf("trace sink missing %s events", want)
		}
	}
}
