package lowerbound

import (
	"testing"

	"expensive/internal/crypto/sig"
	"expensive/internal/protocols/cheap"
	"expensive/internal/protocols/weak"
	"expensive/internal/sim"
)

const (
	testN = 40
	testT = 16
)

func mustFalsify(t *testing.T, name string, factory sim.Factory, rounds int, opts Options) *Report {
	t.Helper()
	rep, err := Falsify(name, factory, rounds, testN, testT, opts)
	if err != nil {
		t.Fatalf("Falsify(%s): %v", name, err)
	}
	return rep
}

func TestFalsifyCheapProtocols(t *testing.T) {
	cases := []struct {
		name    string
		factory sim.Factory
		rounds  int
	}{
		{"silent", cheap.Silent(), cheap.SilentRounds},
		{"leader", cheap.Leader(testN), cheap.LeaderRounds},
		{"star", cheap.Star(testN), cheap.StarRounds},
		{"gossip-k4", cheap.Gossip(testN, 4), cheap.GossipRounds},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := mustFalsify(t, tc.name, tc.factory, tc.rounds, Options{})
			if !rep.Broken() {
				t.Fatalf("expected a violation for sub-quadratic protocol %s; log:\n%v", tc.name, rep.Log)
			}
			if err := CheckViolation(rep.Violation, tc.factory, tc.rounds); err != nil {
				t.Fatalf("certificate for %s does not verify: %v\nviolation: %v", tc.name, err, rep.Violation)
			}
			t.Logf("%s: %v", tc.name, rep.Violation)
		})
	}
}

func TestCheapProtocolsUnderBudgetAtScale(t *testing.T) {
	// At n=129, t=128 the paper's budget t²/32 = 512 genuinely dominates the
	// sub-quadratic protocols' message counts, and the falsifier still
	// produces certificates: the lower bound's exact regime.
	n, tf := 129, 128
	cases := []struct {
		name    string
		factory sim.Factory
		rounds  int
	}{
		{"silent", cheap.Silent(), cheap.SilentRounds},
		{"leader", cheap.Leader(n), cheap.LeaderRounds},
		{"star", cheap.Star(n), cheap.StarRounds},
		{"gossip-k3", cheap.Gossip(n, 3), cheap.GossipRounds},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep, err := Falsify(tc.name, tc.factory, tc.rounds, n, tf, Options{})
			if err != nil {
				t.Fatalf("Falsify: %v", err)
			}
			if !rep.Broken() {
				t.Fatalf("expected violation; log:\n%v", rep.Log)
			}
			if rep.MaxCorrectMessages >= rep.Threshold {
				t.Errorf("probe sent %d >= t²/32 = %d messages; protocol not in the cheap regime",
					rep.MaxCorrectMessages, rep.Threshold)
			}
			if err := CheckViolation(rep.Violation, tc.factory, tc.rounds); err != nil {
				t.Fatalf("certificate does not verify: %v", err)
			}
		})
	}
}

func TestSoundProtocolRespectsBudget(t *testing.T) {
	// Phase-King requires n > 4t: use a larger system.
	n, tf := 70, 16
	factory, rounds := weak.ViaPhaseKing(n, tf)
	rep, err := Falsify("phase-king", factory, rounds, n, tf, Options{})
	if err != nil {
		t.Fatalf("Falsify(phase-king): %v", err)
	}
	if rep.Broken() {
		t.Fatalf("sound protocol falsified: %v\nlog:\n%v", rep.Violation, rep.Log)
	}
	if rep.MaxCorrectMessages < rep.Threshold {
		t.Errorf("sound protocol stayed under t²/32 = %d (max %d) without being falsified — contradicts Theorem 2",
			rep.Threshold, rep.MaxCorrectMessages)
	}
}

func TestSoundAuthenticatedProtocolRespectsBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("authenticated IC sweep is slow")
	}
	n, tf := 24, 8
	scheme := sig.NewIdeal("falsifier-test")
	factory, rounds := weak.ViaIC(n, tf, scheme)
	rep, err := Falsify("weak-via-ic", factory, rounds, n, tf, Options{})
	if err != nil {
		t.Fatalf("Falsify(weak-via-ic): %v", err)
	}
	if rep.Broken() {
		t.Fatalf("sound protocol falsified: %v\nlog:\n%v", rep.Violation, rep.Log)
	}
}

func TestMergeAblation(t *testing.T) {
	// Without the merge step the falsifier cannot break Silent: in every
	// single isolation probe all processes decide their own (uniform)
	// proposal, so no process ever disagrees and Lemma 2 has no candidate.
	// Only merging the all-0 and all-1 round-1 isolations (Lemma 3) exposes
	// the disagreement. The merge argument is load-bearing.
	rep := mustFalsify(t, "silent", cheap.Silent(), cheap.SilentRounds, Options{DisableMerge: true})
	if rep.Broken() {
		t.Fatalf("merge-ablated falsifier unexpectedly broke silent: %v", rep.Violation)
	}
	full := mustFalsify(t, "silent", cheap.Silent(), cheap.SilentRounds, Options{})
	if !full.Broken() {
		t.Fatalf("full falsifier failed to break silent")
	}
	if err := CheckViolation(full.Violation, cheap.Silent(), cheap.SilentRounds); err != nil {
		t.Fatalf("certificate does not verify: %v", err)
	}
}
