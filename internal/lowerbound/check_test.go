package lowerbound

import (
	"strings"
	"testing"

	"expensive/internal/msg"
	"expensive/internal/proc"
	"expensive/internal/protocols/cheap"
)

// genuineViolation produces a verified certificate to tamper with.
func genuineViolation(t *testing.T) (*Violation, func() *Violation) {
	t.Helper()
	factory := cheap.Leader(testN)
	fresh := func() *Violation {
		rep, err := Falsify("leader", factory, cheap.LeaderRounds, testN, testT, Options{})
		if err != nil {
			t.Fatalf("Falsify: %v", err)
		}
		if !rep.Broken() {
			t.Fatal("leader not falsified")
		}
		return rep.Violation
	}
	return fresh(), fresh
}

func TestCheckViolationRejectsTampering(t *testing.T) {
	factory := cheap.Leader(testN)
	_, fresh := genuineViolation(t)

	mutations := []struct {
		name string
		mut  func(v *Violation)
		want string
	}{
		{
			"nil violation",
			nil,
			"nil",
		},
		{
			"forged decision in trace",
			func(v *Violation) {
				b := v.Exec.Behavior(v.Witness2)
				for i := range b.Fragments {
					if b.Fragments[i].Decided {
						b.Fragments[i].Decision = msg.FlipBit(b.Fragments[i].Decision)
					}
				}
			},
			"conform",
		},
		{
			"witness not correct",
			func(v *Violation) {
				v.Exec.Faulty = v.Exec.Faulty.Add(v.Witness2)
			},
			"correct",
		},
		{
			"agreeing witnesses",
			func(v *Violation) {
				// Point both witnesses at the same process.
				v.Witness1 = v.Witness2
			},
			"agree",
		},
		{
			"unknown kind",
			func(v *Violation) { v.Kind = "mystery" },
			"unknown",
		},
		{
			"phantom message injected",
			func(v *Violation) {
				b := v.Exec.Behavior(v.Witness1)
				b.Fragments[0].Received = append(b.Fragments[0].Received,
					msg.Message{Sender: 5, Receiver: v.Witness1, Round: 1, Payload: "ghost"})
			},
			"",
		},
		{
			"fault budget exceeded",
			func(v *Violation) {
				for i := 0; i < v.Exec.T+1; i++ {
					v.Exec.Faulty = v.Exec.Faulty.Add(proc.ID(i))
				}
				// Keep the witnesses outside the enlarged faulty set.
				v.Witness1 = proc.ID(v.Exec.N - 1)
				v.Witness2 = proc.ID(v.Exec.N - 2)
			},
			"",
		},
	}
	for _, tc := range mutations {
		t.Run(tc.name, func(t *testing.T) {
			var v *Violation
			if tc.mut != nil {
				v = fresh()
				tc.mut(v)
			}
			err := CheckViolation(v, factory, cheap.LeaderRounds)
			if err == nil {
				t.Fatal("tampered certificate accepted")
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestCheckViolationTerminationNeedsHorizon(t *testing.T) {
	// A "termination" claim on an execution shorter than the protocol's
	// round bound is not yet a violation and must be rejected.
	v, _ := genuineViolation(t)
	v.Kind = "termination"
	// Witness2 actually decided, so this must be rejected either way.
	if err := CheckViolation(v, cheap.Leader(testN), cheap.LeaderRounds); err == nil {
		t.Fatal("decided process accepted as termination witness")
	}
}

func TestViolationString(t *testing.T) {
	v, _ := genuineViolation(t)
	if s := v.String(); !strings.Contains(s, "agreement") {
		t.Errorf("String = %q", s)
	}
	v.Kind = "termination"
	if s := v.String(); !strings.Contains(s, "never decides") {
		t.Errorf("String = %q", s)
	}
	v.Kind = "weak-validity"
	if s := v.String(); !strings.Contains(s, "unanimous") {
		t.Errorf("String = %q", s)
	}
}

func TestFalsifyParameterValidation(t *testing.T) {
	if _, err := Falsify("x", cheap.Silent(), 1, 10, 4, Options{}); err == nil {
		t.Error("expected error for t < 8")
	}
	if _, err := Falsify("x", cheap.Silent(), 1, 8, 8, Options{}); err == nil {
		t.Error("expected error for t >= n")
	}
}

func TestCandidateString(t *testing.T) {
	c := Candidate{Name: "x", Complexity: "O(1)"}
	if got := c.String(); got != "x (O(1))" {
		t.Errorf("String = %q", got)
	}
	if got := BitProposals(3, msg.One); len(got) != 3 || got[0] != msg.One {
		t.Errorf("BitProposals = %v", got)
	}
}
