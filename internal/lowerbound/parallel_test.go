package lowerbound_test

import (
	"reflect"
	"testing"

	"expensive/internal/lowerbound"
	"expensive/internal/protocols/cheap"
	"expensive/internal/sim"
)

// The falsifier's parallel mode computes probes speculatively but must
// analyze them in construction order, so the whole report — executions
// observed, max messages, log narrative, violation — is identical at
// every parallelism level.
func TestFalsifyParallelDeterminism(t *testing.T) {
	const n, tf = 40, 16
	for _, tc := range []struct {
		name    string
		factory sim.Factory
		rounds  int
	}{
		{"star", cheap.Star(n), cheap.StarRounds},
		{"leader", cheap.Leader(n), cheap.LeaderRounds},
		{"silent", cheap.Silent(), cheap.SilentRounds},
		{"gossip-k3", cheap.Gossip(n, 3), cheap.GossipRounds},
	} {
		t.Run(tc.name, func(t *testing.T) {
			serial, err := lowerbound.Falsify(tc.name, tc.factory, tc.rounds, n, tf,
				lowerbound.Options{Parallelism: 1})
			if err != nil {
				t.Fatal(err)
			}
			parallel, err := lowerbound.Falsify(tc.name, tc.factory, tc.rounds, n, tf,
				lowerbound.Options{Parallelism: 4})
			if err != nil {
				t.Fatal(err)
			}
			if serial.Executions != parallel.Executions {
				t.Errorf("executions: serial %d, parallel %d", serial.Executions, parallel.Executions)
			}
			if serial.MaxCorrectMessages != parallel.MaxCorrectMessages {
				t.Errorf("max msgs: serial %d, parallel %d", serial.MaxCorrectMessages, parallel.MaxCorrectMessages)
			}
			if !reflect.DeepEqual(serial.Log, parallel.Log) {
				t.Errorf("log narratives differ:\nserial: %v\nparallel: %v", serial.Log, parallel.Log)
			}
			sb, pb := serial.Broken(), parallel.Broken()
			if sb != pb {
				t.Fatalf("verdicts differ: serial broken=%v, parallel broken=%v", sb, pb)
			}
			if sb && serial.Violation.String() != parallel.Violation.String() {
				t.Errorf("violations differ:\nserial: %s\nparallel: %s", serial.Violation, parallel.Violation)
			}
		})
	}
}
