package lowerbound

import (
	"strings"
	"testing"

	"expensive/internal/msg"
	"expensive/internal/proc"
	"expensive/internal/sim"
)

// detectorMachine is the "default on detected misbehavior" protocol shape
// the paper's introduction highlights as the obstacle for classical proof
// techniques: every round each process broadcasts a heartbeat carrying its
// proposal and a fault flag; any missing heartbeat or raised flag flips
// the flag; at round rStar the process decides 1 on any anomaly and the
// unanimous proposal otherwise.
//
// Against this protocol the falsifier must walk the *entire* §3
// construction: both round-1 isolations yield the default 1 (Lemma 3), the
// all-0 family flips at a late critical round (Lemma 4), and the final
// merge (Lemma 5) runs — after which Lemma 2 finds no candidate because
// the protocol pays Θ(n²) messages per round. The test pins that the deep
// path executes and correctly certifies the budget.
type detectorMachine struct {
	n, rStar int
	id       proc.ID
	proposal msg.Value

	flag     bool
	sawFlag  bool
	values   map[msg.Value]bool
	heard    int
	decided  bool
	decision msg.Value
	done     bool
}

func detectorFactory(n, rStar int) sim.Factory {
	return func(id proc.ID, proposal msg.Value) sim.Machine {
		return &detectorMachine{n: n, rStar: rStar, id: id, proposal: proposal,
			values: map[msg.Value]bool{proposal: true}}
	}
}

func (m *detectorMachine) hb() []sim.Outgoing {
	flag := "0"
	if m.flag || m.sawFlag {
		flag = "1"
	}
	body := "hb|" + flag + "|" + string(m.proposal)
	out := make([]sim.Outgoing, 0, m.n-1)
	for p := proc.ID(0); p < proc.ID(m.n); p++ {
		if p != m.id {
			out = append(out, sim.Outgoing{To: p, Payload: body})
		}
	}
	return out
}

func (m *detectorMachine) Init() []sim.Outgoing { return m.hb() }

func (m *detectorMachine) Step(round int, received []msg.Message) []sim.Outgoing {
	if m.done {
		return nil
	}
	if len(received) != m.n-1 {
		m.flag = true
	}
	for _, rm := range received {
		parts := strings.SplitN(rm.Payload, "|", 3)
		if len(parts) != 3 || parts[0] != "hb" {
			m.flag = true
			continue
		}
		if parts[1] == "1" {
			m.sawFlag = true
		}
		m.values[msg.Value(parts[2])] = true
		m.heard++
	}
	if round >= m.rStar {
		m.decision = msg.One
		if !m.flag && !m.sawFlag && len(m.values) == 1 && m.proposal == msg.Zero {
			m.decision = msg.Zero
		}
		// Unanimous-1 fault-free executions decide 1 via the default, which
		// satisfies Weak Validity for the all-1 case.
		m.decided, m.done = true, true
		return nil
	}
	return m.hb()
}

func (m *detectorMachine) Decision() (msg.Value, bool) {
	if !m.decided {
		return msg.NoDecision, false
	}
	return m.decision, true
}

func (m *detectorMachine) Quiescent() bool { return m.done }

func TestFalsifierWalksFullInterpolation(t *testing.T) {
	const rStar = 5
	factory := detectorFactory(testN, rStar)
	rep := mustFalsify(t, "detector", factory, rStar, Options{})
	if rep.Broken() {
		t.Fatalf("detector is quadratic; the construction must not break it: %v", rep.Violation)
	}
	joined := strings.Join(rep.Log, "\n")
	for _, want := range []string{
		"interpolating over the unanimous-0 family", // Lemma 4 family selected
		"critical round R=",                         // the flip was found
		"merging E_B(",                              // Lemma 5 merge executed
		"no Lemma 2 candidate",                      // pigeonhole correctly empty
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("log missing %q:\n%s", want, joined)
		}
	}
	if rep.MaxCorrectMessages < rep.Threshold {
		t.Errorf("detector sent %d < t²/32 = %d messages yet survived — contradicts Theorem 2",
			rep.MaxCorrectMessages, rep.Threshold)
	}
}

// constantMachine ignores everything and decides k: a Weak Validity
// violation the falsifier must catch at the very first probe.
type constantMachine struct {
	k       msg.Value
	decided bool
}

func (m *constantMachine) Init() []sim.Outgoing { return nil }
func (m *constantMachine) Step(round int, _ []msg.Message) []sim.Outgoing {
	if round == 1 {
		m.decided = true
	}
	return nil
}
func (m *constantMachine) Decision() (msg.Value, bool) {
	if !m.decided {
		return msg.NoDecision, false
	}
	return m.k, true
}
func (m *constantMachine) Quiescent() bool { return true }

func TestFalsifierCatchesWeakValidityViolation(t *testing.T) {
	factory := func(proc.ID, msg.Value) sim.Machine { return &constantMachine{k: msg.One} }
	rep := mustFalsify(t, "constant-1", factory, 1, Options{})
	if !rep.Broken() || rep.Violation.Kind != "weak-validity" {
		t.Fatalf("expected weak-validity violation, got %v", rep.Violation)
	}
	if err := CheckViolation(rep.Violation, factory, 1); err != nil {
		t.Fatalf("certificate: %v", err)
	}
}

// muteMachine never decides: a Termination violation at the first probe.
type muteMachine struct{}

func (muteMachine) Init() []sim.Outgoing                   { return nil }
func (muteMachine) Step(int, []msg.Message) []sim.Outgoing { return nil }
func (muteMachine) Decision() (msg.Value, bool)            { return msg.NoDecision, false }
func (muteMachine) Quiescent() bool                        { return true }

func TestFalsifierCatchesTerminationViolation(t *testing.T) {
	factory := func(proc.ID, msg.Value) sim.Machine { return muteMachine{} }
	rep := mustFalsify(t, "mute", factory, 1, Options{})
	if !rep.Broken() || rep.Violation.Kind != "termination" {
		t.Fatalf("expected termination violation, got %v", rep.Violation)
	}
	if err := CheckViolation(rep.Violation, factory, 1); err != nil {
		t.Fatalf("certificate: %v", err)
	}
}

// halfSplitMachine decides its own id's parity — an agreement violation
// among correct processes inside the very first fully-correct probe.
type halfSplitMachine struct {
	id      proc.ID
	decided bool
}

func (m *halfSplitMachine) Init() []sim.Outgoing { return nil }
func (m *halfSplitMachine) Step(round int, _ []msg.Message) []sim.Outgoing {
	if round == 1 {
		m.decided = true
	}
	return nil
}
func (m *halfSplitMachine) Decision() (msg.Value, bool) {
	if !m.decided {
		return msg.NoDecision, false
	}
	return msg.Bit(int(m.id) % 2), true
}
func (m *halfSplitMachine) Quiescent() bool { return true }

func TestFalsifierCatchesDirectAgreementViolation(t *testing.T) {
	factory := func(id proc.ID, _ msg.Value) sim.Machine { return &halfSplitMachine{id: id} }
	rep := mustFalsify(t, "half-split", factory, 1, Options{})
	if !rep.Broken() {
		t.Fatal("expected a violation")
	}
	// The split is visible among correct processes in any probe: either a
	// weak-validity or agreement certificate is acceptable, and it must
	// verify.
	if err := CheckViolation(rep.Violation, factory, 1); err != nil {
		t.Fatalf("certificate: %v", err)
	}
}
